package repro_test

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// timelineExports runs one telemetry-instrumented replay and returns the
// Chrome trace-event JSON and CSV exports plus the replay result.
func timelineExports(t *testing.T, alg harness.Algorithm) (machine.Result, []byte, []byte) {
	t.Helper()
	res, tel, err := harness.RunTimeline(alg, goldenWorkload(), 16, 10*units.Microsecond, fault.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var chrome, csv bytes.Buffer
	if err := tel.ExportChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := tel.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return res, chrome.Bytes(), csv.Bytes()
}

// TestTimelineDeterministic re-runs the telemetry pipeline under different
// GOMAXPROCS and requires byte-identical exports — the telemetry analogue
// of the golden Table I digest. Sampling rides the event loop's FIFO
// ordering, so any nondeterminism in probe registration, track ordering, or
// phase snapshots shows up here as a byte diff.
func TestTimelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay workload; skipped in -short")
	}
	_, chrome0, csv0 := timelineExports(t, harness.AlgNMSort)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		_, chrome, csv := timelineExports(t, harness.AlgNMSort)
		runtime.GOMAXPROCS(prev)
		if !bytes.Equal(chrome, chrome0) {
			t.Errorf("GOMAXPROCS=%d: chrome export differs (%d vs %d bytes)", procs, len(chrome), len(chrome0))
		}
		if !bytes.Equal(csv, csv0) {
			t.Errorf("GOMAXPROCS=%d: CSV export differs (%d vs %d bytes)", procs, len(csv), len(csv0))
		}
	}
	if err := telemetry.ValidateChromeJSON(chrome0); err != nil {
		t.Errorf("chrome export does not validate: %v", err)
	}
}

// TestTimelineSweepParByteIdentity runs the timeline experiment — the
// sweep whose points carry live telemetry recorders — at every replay
// worker count and requires byte-identical text. Each point owns a private
// recorder, so parallel sampling may not reorder or drop a single probe.
func TestTimelineSweepParByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("replay workload; skipped in -short")
	}
	render := func(par int) string {
		w := goldenWorkload()
		w.Par = par
		s, err := harness.TimelineSweep(w, 16, 10*units.Microsecond)
		if err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
		return s.String()
	}
	want := render(1)
	for _, par := range []int{8, 0} {
		if got := render(par); got != want {
			t.Errorf("Par=%d: timeline sweep differs from sequential output", par)
		}
	}
}

// TestTimelinePhases checks that both the NMsort pipeline and the merge
// baseline attribute their full runtime to named phases, and that the
// breakdown is consistent (phase durations cover the run, bytes move in
// every compute-heavy phase).
func TestTimelinePhases(t *testing.T) {
	if testing.Short() {
		t.Skip("replay workload; skipped in -short")
	}
	wantPhases := map[harness.Algorithm][]string{
		harness.AlgNMSort:  {"pivots", "p1:sort-chunks", "p2:merge-batches"},
		harness.AlgGNUSort: {"sort-runs", "merge-runs", "copy-back"},
	}
	for alg, names := range wantPhases {
		res, _, _ := timelineExports(t, alg)
		if len(res.Phases) == 0 {
			t.Fatalf("%s: replay produced no phase breakdown", alg)
		}
		got := map[string]bool{}
		var covered units.Time
		for _, p := range res.Phases {
			got[p.Name] = true
			if p.End < p.Start {
				t.Errorf("%s: phase %q ends before it starts", alg, p.Name)
			}
			covered += p.Duration()
		}
		for _, name := range names {
			if !got[name] {
				t.Errorf("%s: phase %q missing from breakdown %v", alg, name, keys(got))
			}
		}
		if covered != res.SimTime {
			t.Errorf("%s: phases cover %v of %v simulated time", alg, covered, res.SimTime)
		}
	}
}

// TestTimelinePhasesWithoutTelemetry confirms phase attribution is
// machine-native: a plain replay (no Recorder attached) of a marker-bearing
// trace still yields the per-phase breakdown the sweep reports print.
func TestTimelinePhasesWithoutTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("replay workload; skipped in -short")
	}
	s, err := harness.CoreSweep(goldenWorkload(), []int{8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range s.Points {
		if len(p.Result.Phases) == 0 {
			t.Errorf("%s: no phase breakdown without telemetry", p.Label)
		}
	}
	if !strings.Contains(s.String(), "phase breakdown") {
		t.Error("sweep text report lacks the phase-breakdown section")
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
