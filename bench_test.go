package repro_test

// This file regenerates the paper's evaluation as Go benchmarks — one
// benchmark (or family) per table, figure-level claim, and model-validation
// experiment in DESIGN.md's index. Simulation outcomes are attached as
// benchmark metrics: simtime-ms (the paper's "Sim Time" row), far-acc and
// near-acc (the "DRAM Accesses" / "Scratchpad Accesses" rows), so
//
//	go test -bench=. -benchmem
//
// prints the reproduced numbers alongside the host-side cost of producing
// them. Benchmark sizes are scaled down from the cmd/ tools so the full
// suite runs in minutes; run `go run ./cmd/nmsim` and `go run ./cmd/sweep`
// for the full-size experiments recorded in EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/kmeans"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/par"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/xrand"
)

// benchWorkload is the scaled Table I workload used by the simulation
// benchmarks: small enough for tens of iterations, large enough that runs
// exceed L2 shares and chunks exceed the aggregate L2.
func benchWorkload() harness.Workload {
	return harness.Workload{N: 1 << 17, Seed: 2015, Threads: 64, SP: units.MiB}
}

// reportSim attaches simulation outcomes as benchmark metrics.
func reportSim(b *testing.B, res machine.Result) {
	b.ReportMetric(res.SimTime.Seconds()*1e3, "simtime-ms")
	b.ReportMetric(float64(res.FarAccesses), "far-acc")
	b.ReportMetric(float64(res.NearAccesses), "near-acc")
}

// --- T1: Table I ---------------------------------------------------------

// benchTable1 records the algorithm once and replays it per iteration on
// the node with the given near-memory channels.
func benchTable1(b *testing.B, alg harness.Algorithm, channels int) {
	w := benchWorkload()
	rec, err := harness.Record(alg, w)
	if err != nil {
		b.Fatal(err)
	}
	var res machine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = machine.Run(harness.NodeFor(w.Threads, channels, w.SP), rec.Trace)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSim(b, res)
}

func BenchmarkTable1GNUSort(b *testing.B)  { benchTable1(b, harness.AlgGNUSort, 8) }
func BenchmarkTable1NMSort2X(b *testing.B) { benchTable1(b, harness.AlgNMSort, 8) }
func BenchmarkTable1NMSort4X(b *testing.B) { benchTable1(b, harness.AlgNMSort, 16) }
func BenchmarkTable1NMSort8X(b *testing.B) { benchTable1(b, harness.AlgNMSort, 32) }

// --- C1: bandwidth scaling (the ρ sweep behind "linear reduction") -------

func BenchmarkBandwidthSweep(b *testing.B) {
	w := benchWorkload()
	rec, err := harness.Record(harness.AlgNMSort, w)
	if err != nil {
		b.Fatal(err)
	}
	for _, ch := range []int{8, 16, 32} {
		name := map[int]string{8: "rho2", 16: "rho4", 32: "rho8"}[ch]
		b.Run(name, func(b *testing.B) {
			var res machine.Result
			for i := 0; i < b.N; i++ {
				res, err = machine.Run(harness.NodeFor(w.Threads, ch, w.SP), rec.Trace)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, res)
		})
	}
}

// --- C2: memory-bound crossover (core-count sweep) ------------------------

func BenchmarkCoreSweep(b *testing.B) {
	for _, cores := range []int{32, 64, 128} {
		for _, alg := range []harness.Algorithm{harness.AlgGNUSort, harness.AlgNMSort} {
			w := benchWorkload()
			w.Threads = cores
			b.Run(string(alg)+"/cores"+itoa(cores), func(b *testing.B) {
				rec, err := harness.Record(alg, w)
				if err != nil {
					b.Fatal(err)
				}
				var res machine.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err = machine.Run(harness.NodeFor(cores, 32, w.SP), rec.Trace)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportSim(b, res)
			})
		}
	}
}

// --- C3/C4 are derived from T1's access columns and cmd/membound ---------

// --- M1: Theorem 6 block-transfer validation ------------------------------

func BenchmarkBlockTransfersSeqSort(b *testing.B) {
	const sp = 64 * units.KiB
	for _, n := range []int{1 << 15, 1 << 17} {
		b.Run("n"+itoa(n), func(b *testing.B) {
			var far, near uint64
			for i := 0; i < b.N; i++ {
				rec := trace.NewRecorder(1, harness.ScaledL1, trace.DefaultCosts())
				env := core.NewEnv(1, sp, rec, uint64(i))
				a := env.AllocFar(n)
				xrand.New(uint64(n + i)).Keys(a.D)
				core.SeqScratchpadSort(env, a, core.SeqOptions{})
				c := rec.Finish().Count()
				far, near = c.Far(), c.Near()
			}
			p := model.Params{N: int64(n), Elem: 8, B: 64, Rho: 4,
				M: sp, Z: harness.ScaledL1.Capacity, P: 1, PPrime: 1}
			pred := p.ScratchpadSort()
			b.ReportMetric(float64(far), "far-lines")
			b.ReportMetric(float64(near), "near-lines")
			b.ReportMetric(float64(far)/pred.DRAMBlocks, "far-vs-model")
			b.ReportMetric(float64(near)/(pred.SPBlocks*p.Rho), "near-vs-model")
		})
	}
}

// --- M3: Corollary 7 — quicksort vs mergesort inside the scratchpad ------

func BenchmarkInnerSort(b *testing.B) {
	// Corollary 3 in isolation: sort a scratchpad-resident array with the
	// multiway mergesort (log_{Z/B} passes) vs quicksort (lg(x/Z) passes)
	// and report near-memory line transfers. The quicksort/mergesort gap
	// grows with x/Z, which is Corollary 7's point.
	const n = 1 << 18
	for _, quick := range []bool{false, true} {
		name := "mergesort"
		if quick {
			name = "quicksort"
		}
		b.Run(name, func(b *testing.B) {
			var near uint64
			for i := 0; i < b.N; i++ {
				rec := trace.NewRecorder(1, harness.ScaledL1, trace.DefaultCosts())
				env := core.NewEnv(1, units.Bytes(n)*24, rec, 3)
				a := env.MustAllocSP(n)
				tmp := env.MustAllocSP(n)
				xrand.New(9).Keys(a.D)
				tp := rec.Thread(0)
				if quick {
					core.QuickSort(tp, a)
				} else {
					core.MultiwayMergeSort(tp, a, tmp, 128, 8)
				}
				near = rec.Finish().Count().Near()
			}
			b.ReportMetric(float64(near), "near-lines")
			b.ReportMetric(float64(near)/float64(n), "near-lines/elem")
		})
	}
}

// --- A1: bucket-metadata batching ablation (Section IV-D) -----------------

func BenchmarkAblationSmallAppends(b *testing.B) {
	w := benchWorkload()
	w.Buckets = int(w.SP / 256) // the paper's Θ(M/B) bucket count
	for _, alg := range []harness.Algorithm{harness.AlgNMSort, harness.AlgNMScatter} {
		b.Run(string(alg), func(b *testing.B) {
			rec, err := harness.Record(alg, w)
			if err != nil {
				b.Fatal(err)
			}
			var res machine.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = machine.Run(harness.NodeFor(w.Threads, 16, w.SP), rec.Trace)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, res)
		})
	}
}

// --- A2: DMA-engine ablation (§VII future work) ---------------------------

func BenchmarkAblationDMA(b *testing.B) {
	w := benchWorkload()
	for _, alg := range []harness.Algorithm{harness.AlgNMSort, harness.AlgNMSortDM} {
		b.Run(string(alg), func(b *testing.B) {
			rec, err := harness.Record(alg, w)
			if err != nil {
				b.Fatal(err)
			}
			var res machine.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err = machine.Run(harness.NodeFor(w.Threads, 16, w.SP), rec.Trace)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, res)
		})
	}
}

// --- K1: k-means extension (§VII) -----------------------------------------

func BenchmarkKMeans(b *testing.B) {
	const n, d, k = 1 << 13, 8, 16
	for _, scratch := range []bool{false, true} {
		name := "far"
		if scratch {
			name = "scratchpad"
		}
		b.Run(name, func(b *testing.B) {
			var far uint64
			for i := 0; i < b.N; i++ {
				rec := trace.NewRecorder(8, harness.ScaledL1, trace.DefaultCosts())
				env := core.NewEnv(8, 2*units.MiB, rec, 5)
				pts := kmeans.Points{V: env.AllocFar(n * d), Dims: d}
				kmeans.GenerateClustered(pts, k, 31)
				cfg := kmeans.DefaultConfig(k, d)
				cfg.MaxIters = 8
				if scratch {
					kmeans.Scratchpad(env, pts, cfg)
				} else {
					kmeans.Far(env, pts, cfg)
				}
				far = rec.Finish().Count().Far()
			}
			b.ReportMetric(float64(far), "far-lines")
		})
	}
}

// --- Native algorithm speed (uninstrumented) ------------------------------

func BenchmarkPureNMSort(b *testing.B) {
	const n = 1 << 18
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := core.NewEnv(8, units.MiB, nil, 1)
		a := env.AllocFar(n)
		xrand.New(uint64(i)).Keys(a.D)
		b.StartTimer()
		core.NMSort(env, a, core.NMOptions{})
	}
	b.SetBytes(n * 8)
}

func BenchmarkPureGNUSort(b *testing.B) {
	const n = 1 << 18
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := core.NewEnv(8, units.MiB, nil, 1)
		a := env.AllocFar(n)
		xrand.New(uint64(i)).Keys(a.D)
		b.StartTimer()
		core.GNUSort(env, a)
	}
	b.SetBytes(n * 8)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- Theorem 8: PEM sort scaling --------------------------------------

// BenchmarkPEMSortScaling measures the in-scratchpad parallel multiway
// mergesort (the PEM algorithm NMsort calls per chunk) across thread
// counts: sim time should fall with p' until the near channels saturate —
// Theorem 8's (N/p'L)·log_{Z/L}(N/L) block-transfer steps.
func BenchmarkPEMSortScaling(b *testing.B) {
	const n = 1 << 16
	for _, p := range []int{4, 16, 64} {
		b.Run("p"+itoa(p), func(b *testing.B) {
			var res machine.Result
			for i := 0; i < b.N; i++ {
				rec := trace.NewRecorder(p, harness.ScaledL1, trace.DefaultCosts())
				env := core.NewEnv(p, 4*units.MiB, rec, 3)
				src := env.MustAllocSP(n)
				dst := env.MustAllocSP(n)
				sample := env.AllocFar(core.SampleLen(p))
				sampleTmp := env.AllocFar(core.SampleLen(p))
				xrand.New(uint64(i)).Keys(src.D)
				bar := par.NewBarrier(p)
				ps := core.NewPMSort(p, src, dst, dst, sample, sampleTmp, bar)
				par.RunPoison(p, rec, bar, func(tid int, tp *trace.TP) {
					ps.Run(tid, tp)
				})
				if !core.IsSorted(dst.D) {
					b.Fatal("not sorted")
				}
				tr := rec.Finish()
				var err error
				res, err = machine.Run(harness.NodeFor((p+3)/4*4, 16, 4*units.MiB), tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, res)
		})
	}
}
