package repro_test

// Allocation budget of the replay hot path. Machine construction allocates
// (cores, channels, the pre-sized event queue), but the steady state —
// schedule, dispatch, heap maintenance — must not: the event queue stores
// events unboxed, per-core callbacks are bound once at setup, and
// post-to-memory carriers recycle through a free list. The budget here is
// amortized allocations per simulated event, so O(cores) setup noise
// vanishes into the millions of events a replay executes.

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
)

// TestReplayAllocsPerEvent replays a recorded trace and asserts the
// amortized allocation rate. The bound of 0.01 allocs/event leaves room
// for setup (hundreds of allocations) against the ~10^5 events of even
// this small workload while still failing if any per-event path regresses
// to boxing or closure capture.
func TestReplayAllocsPerEvent(t *testing.T) {
	if testing.Short() {
		t.Skip("replay workload; skipped in -short")
	}
	w := goldenWorkload()
	rec, err := harness.Record(harness.AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness.NodeFor(w.Threads, 16, w.SP)
	res, err := machine.Run(cfg, rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 {
		t.Fatal("replay executed no events")
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := machine.Run(cfg, rec.Trace); err != nil {
			t.Fatal(err)
		}
	})
	perEvent := allocs / float64(res.Events)
	t.Logf("replay: %.0f allocs over %d events = %.5f allocs/event", allocs, res.Events, perEvent)
	if perEvent > 0.01 {
		t.Errorf("replay allocates %.5f per event (%.0f over %d events), want amortized ~0 (< 0.01)",
			perEvent, allocs, res.Events)
	}
}
