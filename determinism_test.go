package repro_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/units"
)

// recordReplayDigests runs the full pipeline — native record of NMsort under
// instrumentation, then replay on a simulated node — and returns a SHA-256
// over the serialized trace bytes plus a rendering of every field of the
// simulation result. Bit-identical digests across runs are the property the
// whole experimental methodology rests on (and what nmlint polices
// statically).
func recordReplayDigests(t *testing.T, w harness.Workload) (traceDigest, resultDigest string) {
	t.Helper()
	rec, err := harness.Record(harness.AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rec.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())

	res, err := machine.Run(harness.NodeFor(w.Threads, 16, w.SP), rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// %+v covers every stat the simulator reports, including the per-barrier
	// release times — a full timeline fingerprint, not just the end time.
	return hex.EncodeToString(sum[:]), fmt.Sprintf("%+v", res)
}

// TestRecordReplayDeterminism runs the record→replay pipeline twice in one
// process, then a third time under a different GOMAXPROCS, and demands
// bit-identical trace and result digests. Record time really forks p
// goroutines, so this catches any scheduling- or parallelism-dependent
// leak into the recorded streams; replay is single-threaded and must be a
// pure function of the trace.
func TestRecordReplayDeterminism(t *testing.T) {
	w := harness.Workload{N: 1 << 13, Seed: 7, Threads: 8, SP: 64 * units.KiB}

	tr1, res1 := recordReplayDigests(t, w)
	tr2, res2 := recordReplayDigests(t, w)
	if tr1 != tr2 {
		t.Errorf("trace digest differs between identical runs: %s vs %s", tr1, tr2)
	}
	if res1 != res2 {
		t.Errorf("replay result differs between identical runs:\n%s\nvs\n%s", res1, res2)
	}

	// Re-run with a different degree of host parallelism: logical threads
	// multiplex differently onto OS threads, every barrier interleaving
	// changes, and the digests still may not move.
	old := runtime.GOMAXPROCS(0)
	alt := 1
	if old == 1 {
		alt = 2
	}
	runtime.GOMAXPROCS(alt)
	defer runtime.GOMAXPROCS(old)
	tr3, res3 := recordReplayDigests(t, w)
	if tr1 != tr3 {
		t.Errorf("trace digest depends on GOMAXPROCS (%d vs %d): %s vs %s", old, alt, tr1, tr3)
	}
	if res1 != res3 {
		t.Errorf("replay result depends on GOMAXPROCS (%d vs %d):\n%s\nvs\n%s", old, alt, res1, res3)
	}
}
