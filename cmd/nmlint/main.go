// Command nmlint runs the repository's determinism & concurrency
// static-analysis suite (internal/lint) over the whole module.
//
// Usage:
//
//	nmlint [-json] [dir | ./...]
//
// With no argument (or "./...") it analyzes the module containing the
// current directory. Diagnostics print as "file:line:col: [analyzer]
// message"; the exit code is 1 when any diagnostic survives, 2 on a load
// failure. Suppress a finding with a trailing or preceding comment:
//
//	//nmlint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nmlint [-json] [-analyzers] [dir | ./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	target := "."
	switch flag.NArg() {
	case 0:
	case 1:
		if arg := flag.Arg(0); arg != "./..." {
			target = arg
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	root, err := lint.FindModuleRoot(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmlint:", err)
		os.Exit(2)
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(mod)

	// Print paths relative to the working directory when possible, so
	// diagnostics are clickable from the invocation site.
	wd, _ := os.Getwd()
	for i := range diags {
		if wd == "" {
			break
		}
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "nmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
