// Command nmlint runs the repository's determinism & concurrency
// static-analysis suite (internal/lint) over the whole module.
//
// Usage:
//
//	nmlint [-json] [-escape-check] [dir | ./...]
//
// With no argument (or "./...") it analyzes the module containing the
// current directory. Diagnostics print as "file:line:col: [analyzer]
// message"; the exit code is 1 when any diagnostic survives, 2 on a load
// failure. Suppress a finding with a trailing or preceding comment:
//
//	//nmlint:ignore <analyzer> <reason>
//
// With -escape-check, instead of the AST suite nmlint cross-checks the
// //nmlint:hotpath regions against the compiler's own escape analysis: it
// rebuilds the packages containing hot regions with -gcflags=-m=2 and
// fails on any compiler-reported heap escape inside a region the AST
// analyzer did not already explain (cold lines and reasoned ignores are
// excused). This catches allocations the conservative syntax pass cannot
// see — stdlib calls that leak an argument, variables the compiler moves
// to the heap.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	escCheck := flag.Bool("escape-check", false,
		"cross-check hot regions against go build -gcflags=-m=2 escape analysis")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nmlint [-json] [-analyzers] [-escape-check] [dir | ./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	target := "."
	switch flag.NArg() {
	case 0:
	case 1:
		if arg := flag.Arg(0); arg != "./..." {
			target = arg
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	root, err := lint.FindModuleRoot(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmlint:", err)
		os.Exit(2)
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nmlint:", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	if *escCheck {
		diags, err = escapeCheck(mod)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nmlint:", err)
			os.Exit(2)
		}
	} else {
		diags = lint.Run(mod)
	}

	// Print paths relative to the working directory when possible, so
	// diagnostics are clickable from the invocation site.
	wd, _ := os.Getwd()
	for i := range diags {
		if wd == "" {
			break
		}
		if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "nmlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// escapeCheck rebuilds the packages containing hot regions with the
// compiler's escape diagnostics enabled and cross-checks the output
// against the regions.
func escapeCheck(mod *lint.Module) ([]lint.Diagnostic, error) {
	rs := lint.HotRegions(mod)
	pkgs := regionPackages(mod, rs)
	if len(pkgs) == 0 {
		return nil, nil // nothing annotated yet
	}
	out, err := buildWithEscapes(mod.Root, pkgs, false)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(out) == "" {
		// The build cache satisfied every compile, so the compiler never
		// ran and printed nothing; force a rebuild to get the diagnostics.
		if out, err = buildWithEscapes(mod.Root, pkgs, true); err != nil {
			return nil, err
		}
	}
	return lint.CrossCheck(mod, rs, lint.ParseEscapes(out)), nil
}

// regionPackages maps the region files back to ./-relative package
// directories for the go build invocation.
func regionPackages(mod *lint.Module, rs *lint.RegionSet) []string {
	set := map[string]bool{}
	for _, f := range rs.Files() {
		rel, err := filepath.Rel(mod.Root, filepath.Dir(f))
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		set["./"+filepath.ToSlash(rel)] = true
	}
	pkgs := make([]string, 0, len(set))
	for p := range set {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	return pkgs
}

// buildWithEscapes runs go build -gcflags=-m=2 over pkgs from the module
// root and returns the compiler's stderr. force adds -a to defeat the
// build cache (a cached compile prints no diagnostics).
func buildWithEscapes(root string, pkgs []string, force bool) (string, error) {
	args := []string{"build", "-gcflags=-m=2"}
	if force {
		args = append(args, "-a")
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var sb strings.Builder
	cmd.Stderr = &sb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m=2 failed: %v\n%s", err, sb.String())
	}
	return sb.String(), nil
}
