package main_test

// End-to-end tests for the nmlint command: exit codes and -json output,
// exercised against throwaway modules built in a temp dir. The binary is
// compiled once per test run with the ambient toolchain.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildNmlint compiles the command into dir and returns the binary path.
func buildNmlint(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "nmlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building nmlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes files (path → contents) as a Go module under a
// fresh temp dir and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const badSrc = `package scratch

import "math/rand"

func Pick(n int) int { return rand.Intn(n) }
`

const cleanSrc = `package scratch

func Pick(n int) int { return n / 2 }
`

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running nmlint: %v", err)
	}
	return ee.ExitCode()
}

func TestNmlintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and type-checks scratch modules")
	}
	bin := buildNmlint(t, t.TempDir())

	t.Run("bad module exits 1 with a diagnostic", func(t *testing.T) {
		root := writeModule(t, map[string]string{
			"go.mod": "module scratch\n\ngo 1.24\n",
			"bad.go": badSrc,
			"ok.go":  "package scratch\n",
		})
		cmd := exec.Command(bin, root)
		out, err := cmd.CombinedOutput()
		if code := exitCode(t, err); code != 1 {
			t.Fatalf("exit code = %d, want 1; output:\n%s", code, out)
		}
		if !strings.Contains(string(out), "noglobalrand") || !strings.Contains(string(out), "bad.go:5") {
			t.Errorf("diagnostic output missing analyzer or position:\n%s", out)
		}
	})

	t.Run("json output carries positions and analyzer names", func(t *testing.T) {
		root := writeModule(t, map[string]string{
			"go.mod": "module scratch\n\ngo 1.24\n",
			"bad.go": badSrc,
		})
		cmd := exec.Command(bin, "-json", root)
		out, err := cmd.Output()
		if code := exitCode(t, err); code != 1 {
			t.Fatalf("exit code = %d, want 1; output:\n%s", code, out)
		}
		var diags []struct {
			File     string `json:"File"`
			Line     int    `json:"Line"`
			Col      int    `json:"Col"`
			Analyzer string `json:"Analyzer"`
			Message  string `json:"Message"`
		}
		if err := json.Unmarshal(out, &diags); err != nil {
			t.Fatalf("output is not a JSON array: %v\n%s", err, out)
		}
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
		}
		d := diags[0]
		if d.Analyzer != "noglobalrand" || d.Line != 5 || d.Col == 0 ||
			!strings.HasSuffix(d.File, "bad.go") || d.Message == "" {
			t.Errorf("unexpected diagnostic fields: %+v", d)
		}
	})

	t.Run("clean module exits 0 with empty json array", func(t *testing.T) {
		root := writeModule(t, map[string]string{
			"go.mod":   "module scratch\n\ngo 1.24\n",
			"clean.go": cleanSrc,
		})
		cmd := exec.Command(bin, "-json", root)
		out, err := cmd.Output()
		if code := exitCode(t, err); code != 0 {
			t.Fatalf("exit code = %d, want 0; output:\n%s", code, out)
		}
		var diags []json.RawMessage
		if err := json.Unmarshal(out, &diags); err != nil || len(diags) != 0 {
			t.Errorf("want empty JSON array, got %q (err %v)", out, err)
		}
	})

	t.Run("non-module dir exits 2", func(t *testing.T) {
		cmd := exec.Command(bin, t.TempDir())
		out, _ := cmd.CombinedOutput()
		if code := cmd.ProcessState.ExitCode(); code != 2 {
			t.Fatalf("exit code = %d, want 2; output:\n%s", code, out)
		}
	})
}
