package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestFlagValidation drives the parse/validate split through good and bad
// flag combinations.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of validate error; "" means valid
	}{
		{"defaults", nil, ""},
		{"port zero", []string{"-addr", "127.0.0.1:0"}, ""},
		{"tuned", []string{"-workers", "8", "-queue", "128", "-store-mb", "64", "-cache-entries", "16", "-drain", "1s"}, ""},
		{"empty addr", []string{"-addr", ""}, "-addr"},
		{"addr without port", []string{"-addr", "localhost"}, "-addr"},
		{"negative workers", []string{"-workers", "-1"}, "-workers"},
		{"negative queue", []string{"-queue", "-1"}, "-queue"},
		{"zero store", []string{"-store-mb", "0"}, "-store-mb"},
		{"negative cache", []string{"-cache-entries", "-1"}, "-cache-entries"},
		{"negative drain", []string{"-drain", "-1s"}, "-drain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, _, err := parseFlags(tc.args)
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			err = o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%v) = %v, want error mentioning %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestParseError checks unknown flags surface as parse errors, not panics.
func TestParseError(t *testing.T) {
	if _, _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("parseFlags accepted an unknown flag")
	}
}

// TestRunServesAndDrains boots the daemon on a free port, serves one real
// request through the public API, cancels the context, and checks run
// returns nil (the exit-0 graceful-drain contract).
func TestRunServesAndDrains(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o, _, err := parseFlags([]string{"-drain", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out strings.Builder
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, lis, &out) }()

	c := &serve.Client{BaseURL: "http://" + lis.Addr().String()}
	// The listener is live before run is called, so the request may race
	// only with Serve picking it up; retry briefly.
	var st serve.Stats
	for i := 0; ; i++ {
		st, err = c.Stats(context.Background())
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("daemon never answered /v1/stats: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Traces != 0 || st.JobsDone != 0 {
		t.Fatalf("fresh daemon reported non-empty stats: %+v", st)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not drain after cancel")
	}
	if !strings.Contains(out.String(), "nmsimd: listening on "+lis.Addr().String()) {
		t.Fatalf("startup line missing or wrong: %q", out.String())
	}
}
