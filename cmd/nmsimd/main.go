// Command nmsimd is the sweep-as-a-service daemon: a long-running HTTP
// server exposing the deterministic replay kernel — content-addressed
// trace store (record or upload once, shared read-only by every replay),
// CellKey-addressed result cache (identical jobs answered without
// re-simulation, byte for byte), bounded admission gate (429 on
// overload), and NDJSON streaming telemetry for long jobs.
//
// Usage:
//
//	nmsimd [-addr host:port] [-workers n] [-queue n] [-store-mb n]
//	       [-cache-entries n] [-slice n] [-max-events n] [-drain dur]
//
// Endpoints (see internal/serve): POST /v1/traces, POST /v1/traces/record,
// GET /v1/traces/{digest}, POST /v1/jobs, POST /v1/sweeps, GET /v1/stats,
// GET /v1/experiments. cmd/sweep -server and cmd/nmsim -server are the
// first-party clients.
//
// SIGINT/SIGTERM drains gracefully: the listener closes, in-flight jobs
// run to completion (bounded by -drain), and the process exits 0. A
// second signal kills it the default way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

// Exit codes: 0 clean (including signal-initiated drain), 1 fatal, 2 usage.
const (
	exitFatal = 1
	exitUsage = 2
)

// options holds every flag value; validation is separated from parsing so
// bad combinations fail fast with a usage hint and are testable.
type options struct {
	addr         string
	workers      int
	queue        int
	storeMB      int
	cacheEntries int
	slice        uint64
	maxEvents    uint64
	drain        time.Duration
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (options, *flag.FlagSet, error) {
	var o options
	fs := flag.NewFlagSet("nmsimd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	fs.IntVar(&o.workers, "workers", 0, "concurrently running jobs (0 = 4)")
	fs.IntVar(&o.queue, "queue", 64, "jobs waiting beyond -workers before 429")
	fs.IntVar(&o.storeMB, "store-mb", 256, "trace store budget in MiB (pinned in-flight traces may exceed it)")
	fs.IntVar(&o.cacheEntries, "cache-entries", 4096, "result cache capacity in completed cells")
	fs.Uint64Var(&o.slice, "slice", 0, "events per supervised replay slice; cancellation and streaming happen between slices (0 = default)")
	fs.Uint64Var(&o.maxEvents, "max-events", 0, "default per-job event budget when requests set none (0 = generous default)")
	fs.DurationVar(&o.drain, "drain", 10*time.Second, "grace period for in-flight jobs on shutdown (0 = wait forever)")
	err := fs.Parse(args)
	return o, fs, err
}

// validate rejects inconsistent flag values before any work is done.
func (o options) validate() error {
	switch {
	case o.addr == "":
		return fmt.Errorf("-addr must not be empty")
	case o.workers < 0:
		return fmt.Errorf("-workers %d is negative (0 means the default)", o.workers)
	case o.queue < 0:
		return fmt.Errorf("-queue %d is negative", o.queue)
	case o.storeMB <= 0:
		return fmt.Errorf("-store-mb %d must be positive", o.storeMB)
	case o.cacheEntries < 0:
		return fmt.Errorf("-cache-entries %d is negative", o.cacheEntries)
	case o.drain < 0:
		return fmt.Errorf("-drain %v is negative", o.drain)
	}
	if _, _, err := net.SplitHostPort(o.addr); err != nil {
		return fmt.Errorf("-addr %q: %v", o.addr, err)
	}
	return nil
}

// run serves on lis until ctx is cancelled, then drains gracefully:
// Shutdown waits for in-flight requests up to -drain, after which the
// server force-closes (cancelling each request's context, so supervised
// replays abandon at their next slice boundary). The listener is passed
// in so tests and port-0 callers learn the bound address; the printed
// line is the startup handshake scripts wait for.
func run(ctx context.Context, o options, lis net.Listener, out io.Writer) error {
	srv := serve.New(serve.Config{
		Workers:      o.workers,
		Queue:        o.queue,
		StoreBytes:   int64(o.storeMB) << 20,
		CacheEntries: o.cacheEntries,
		Slice:        o.slice,
		MaxEvents:    o.maxEvents,
	})
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "nmsimd: listening on %s\n", lis.Addr())
	// context.AfterFunc is the shutdown trigger (the runtime runs the
	// callback on its own goroutine — this package, like the rest of the
	// repo outside internal/par, contains no go statements).
	unregister := context.AfterFunc(ctx, func() {
		dctx := context.Background()
		if o.drain > 0 {
			var cancel context.CancelFunc
			dctx, cancel = context.WithTimeout(dctx, o.drain)
			defer cancel()
		}
		if err := hs.Shutdown(dctx); err != nil {
			// Drain expired: force-close, which cancels in-flight request
			// contexts and unblocks Serve.
			hs.Close()
		}
	})
	defer unregister()
	err := hs.Serve(lis)
	if errors.Is(err, http.ErrServerClosed) {
		return nil // clean drain
	}
	return err
}

func main() {
	o, fs, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(exitUsage) // the FlagSet already printed the error and usage
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "nmsimd: %v\n", err)
		fs.Usage()
		os.Exit(exitUsage)
	}
	lis, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmsimd: %v\n", err)
		os.Exit(exitFatal)
	}
	// First SIGINT/SIGTERM starts the drain; a second kills the process
	// the default way (NotifyContext unregisters after cancellation).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, lis, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nmsimd: %v\n", err)
		os.Exit(exitFatal)
	}
}
