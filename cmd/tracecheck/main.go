// Command tracecheck validates Chrome trace-event JSON files produced by
// nmsim's -telemetry-out (or any other trace-event source): each file must
// parse as a trace-event container with a non-empty traceEvents array whose
// entries all carry a phase and a name. CI uses it to prove the telemetry
// exporter's output is loadable before anyone drags it into Perfetto.
//
// Usage:
//
//	tracecheck file.trace.json [more.trace.json ...]
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck file.trace.json [more.trace.json ...]")
		os.Exit(2)
	}
	if !check(os.Args[1:], os.Stdout, os.Stderr) {
		os.Exit(1)
	}
}

// check validates each file, reporting per-file verdicts, and returns
// whether every file passed.
func check(paths []string, out, errw io.Writer) bool {
	ok := true
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err == nil {
			err = telemetry.ValidateChromeJSON(data)
		}
		if err != nil {
			fmt.Fprintf(errw, "tracecheck: %s: %v\n", path, err)
			ok = false
			continue
		}
		fmt.Fprintf(out, "%s: ok\n", path)
	}
	return ok
}
