package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.trace.json")
	bad := filepath.Join(dir, "bad.trace.json")
	if err := os.WriteFile(good, []byte(`{"traceEvents":[{"ph":"X","name":"p","ts":"0","dur":"1","pid":1,"tid":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errw strings.Builder
	if !check([]string{good}, &out, &errw) {
		t.Errorf("valid file rejected: %s", errw.String())
	}
	if !strings.Contains(out.String(), "good.trace.json: ok") {
		t.Errorf("verdict missing: %q", out.String())
	}

	out.Reset()
	errw.Reset()
	if check([]string{good, bad}, &out, &errw) {
		t.Error("invalid file accepted")
	}
	if !strings.Contains(out.String(), "ok") || !strings.Contains(errw.String(), "bad.trace.json") {
		t.Errorf("mixed verdicts wrong: out=%q err=%q", out.String(), errw.String())
	}

	if check([]string{filepath.Join(dir, "missing.json")}, &out, &errw) {
		t.Error("missing file accepted")
	}
}
