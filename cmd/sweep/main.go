// Command sweep regenerates the series behind the paper's Section V
// claims:
//
//	-exp=bandwidth  claim C1 — NMsort's runtime falls as near bandwidth
//	                rises 2X→8X while the baseline is insensitive to it
//	-exp=cores      claim C2 — the scratchpad pays off in the memory-bound
//	                regime (256 cores) and not below it (128 cores)
//	-exp=dma        experiment A2 — the §VII DMA-engine extension
//
// Usage:
//
//	sweep -exp=bandwidth [-n keys] [-cores n] [-sp MiB] [-seed s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	var (
		exp    = flag.String("exp", "bandwidth", "experiment: bandwidth, cores, dma, appends, kmeans")
		n      = flag.Int("n", 1<<20, "keys to sort")
		cores  = flag.Int("cores", 256, "simulated cores for the bandwidth/dma sweeps")
		list   = flag.String("corelist", "64,128,192,256", "core counts for -exp=cores")
		spMiB  = flag.Int("sp", 8, "scratchpad capacity in MiB")
		seed   = flag.Uint64("seed", 2015, "input seed")
		format = flag.String("format", "text", "output format: text, csv, markdown")
	)
	flag.Parse()
	f, ferr := report.ParseFormat(*format)
	if ferr != nil {
		log.Fatalf("sweep: %v", ferr)
	}

	w := harness.Workload{
		N:       *n,
		Seed:    *seed,
		Threads: *cores,
		SP:      units.Bytes(*spMiB) * units.MiB,
	}

	var (
		s   harness.Sweep
		err error
	)
	switch *exp {
	case "bandwidth":
		s, err = harness.BandwidthSweep(w)
	case "cores":
		var cc []int
		for _, f := range strings.Split(*list, ",") {
			v, perr := strconv.Atoi(strings.TrimSpace(f))
			if perr != nil || v <= 0 || v%4 != 0 {
				log.Fatalf("sweep: bad core count %q (must be a positive multiple of 4)", f)
			}
			cc = append(cc, v)
		}
		s, err = harness.CoreSweep(w, cc)
	case "dma":
		s, err = harness.AblationDMA(w, 16)
	case "appends":
		s, err = harness.AblationSmallAppends(w, 16)
	case "kmeans":
		kw := harness.DefaultKMeans()
		kw.Th = *cores
		s, err = harness.KMeansSweep(kw)
	default:
		log.Fatalf("sweep: unknown experiment %q", *exp)
	}
	if err != nil {
		log.Fatalf("sweep: %v", err)
	}
	if f == report.Text {
		fmt.Fprint(os.Stdout, s.String())
		return
	}
	if err := s.Report().Render(os.Stdout, f); err != nil {
		log.Fatalf("sweep: %v", err)
	}
}
