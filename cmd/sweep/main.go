// Command sweep regenerates the series behind the paper's Section V
// claims:
//
//	-exp=bandwidth  claim C1 — NMsort's runtime falls as near bandwidth
//	                rises 2X→8X while the baseline is insensitive to it
//	-exp=cores      claim C2 — the scratchpad pays off in the memory-bound
//	                regime (256 cores) and not below it (128 cores)
//	-exp=dma        experiment A2 — the §VII DMA-engine extension
//	-exp=appends    experiment A1 — bucket-metadata batching ablation
//	-exp=kmeans     the §VII k-means extension
//	-exp=faults     experiment F1 — slowdown, retry counts, and MemFault
//	                outcomes vs. the far memory's uncorrectable-error rate,
//	                NMsort vs. the merge baseline
//
// Usage:
//
//	sweep -exp=bandwidth [-n keys] [-cores n] [-sp MiB] [-seed s]
//	sweep -exp=faults [-fault-seed s] [-fault-rates r1,r2,...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/units"
)

// experiments names every valid -exp value.
var experiments = map[string]bool{
	"bandwidth": true, "cores": true, "dma": true,
	"appends": true, "kmeans": true, "faults": true,
}

// options holds every flag value; validation is separated from parsing so
// bad combinations fail fast with a usage hint and are testable.
type options struct {
	exp        string
	n          int
	cores      int
	list       string
	spMiB      int
	seed       uint64
	format     string
	faultSeed  uint64
	faultRates string
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (options, *flag.FlagSet, error) {
	var o options
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.StringVar(&o.exp, "exp", "bandwidth", "experiment: bandwidth, cores, dma, appends, kmeans, faults")
	fs.IntVar(&o.n, "n", 1<<20, "keys to sort")
	fs.IntVar(&o.cores, "cores", 256, "simulated cores for the bandwidth/dma/faults sweeps")
	fs.StringVar(&o.list, "corelist", "64,128,192,256", "core counts for -exp=cores")
	fs.IntVar(&o.spMiB, "sp", 8, "scratchpad capacity in MiB")
	fs.Uint64Var(&o.seed, "seed", 2015, "input seed")
	fs.StringVar(&o.format, "format", "text", "output format: text, csv, markdown")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed for -exp=faults (0 disables injection)")
	fs.StringVar(&o.faultRates, "fault-rates", "", "comma-separated bit error rates for -exp=faults (empty = default axis)")
	err := fs.Parse(args)
	return o, fs, err
}

// validate rejects inconsistent flag combinations before any work is done.
func (o options) validate() error {
	if !experiments[o.exp] {
		return fmt.Errorf("unknown experiment %q (want bandwidth, cores, dma, appends, kmeans, or faults)", o.exp)
	}
	switch {
	case o.n < 0:
		return fmt.Errorf("-n %d is negative", o.n)
	case o.cores <= 0 || o.cores%4 != 0:
		return fmt.Errorf("-cores %d must be a positive multiple of 4", o.cores)
	case o.spMiB <= 0:
		return fmt.Errorf("-sp %d MiB must be positive", o.spMiB)
	}
	if _, err := report.ParseFormat(o.format); err != nil {
		return err
	}
	if o.exp == "cores" {
		if _, err := parseCoreList(o.list); err != nil {
			return err
		}
	}
	if o.exp == "faults" {
		if _, err := parseRates(o.faultRates); err != nil {
			return err
		}
	}
	return nil
}

// parseCoreList parses the -corelist flag: positive multiples of 4.
func parseCoreList(list string) ([]int, error) {
	var cc []int
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 || v%4 != 0 {
			return nil, fmt.Errorf("bad core count %q (must be a positive multiple of 4)", f)
		}
		cc = append(cc, v)
	}
	return cc, nil
}

// parseRates parses the -fault-rates flag: probabilities in [0, 1]. An
// empty flag selects the default axis.
func parseRates(list string) ([]float64, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var rates []float64
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v > 1 || v != v {
			return nil, fmt.Errorf("bad fault rate %q (must be in [0, 1])", f)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// run executes the selected experiment and writes the series to w.
func run(o options, out io.Writer) error {
	f, _ := report.ParseFormat(o.format)
	w := harness.Workload{
		N:       o.n,
		Seed:    o.seed,
		Threads: o.cores,
		SP:      units.Bytes(o.spMiB) * units.MiB,
	}

	// The faults experiment has its own table shape (per-rate fault
	// counters), so it renders through its own type.
	if o.exp == "faults" {
		rates, _ := parseRates(o.faultRates)
		s, err := harness.RunFaultSweep(w, 16, o.faultSeed, rates)
		if err != nil {
			return err
		}
		if f == report.Text {
			_, err := fmt.Fprint(out, s.String())
			return err
		}
		return s.Report().Render(out, f)
	}

	var (
		s   harness.Sweep
		err error
	)
	switch o.exp {
	case "bandwidth":
		s, err = harness.BandwidthSweep(w)
	case "cores":
		cc, _ := parseCoreList(o.list)
		s, err = harness.CoreSweep(w, cc)
	case "dma":
		s, err = harness.AblationDMA(w, 16)
	case "appends":
		s, err = harness.AblationSmallAppends(w, 16)
	case "kmeans":
		kw := harness.DefaultKMeans()
		kw.Th = o.cores
		s, err = harness.KMeansSweep(kw)
	}
	if err != nil {
		return err
	}
	if f == report.Text {
		_, err := fmt.Fprint(out, s.String())
		return err
	}
	return s.Report().Render(out, f)
}

func main() {
	o, fs, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2) // the FlagSet already printed the error and usage
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		fs.Usage()
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}
