// Command sweep regenerates the series behind the paper's Section V
// claims. Run "sweep -help" for the experiment list; every experiment is a
// row of the registry below, which is also the single source of the usage
// text.
//
// Usage:
//
//	sweep -exp=bandwidth [-n keys] [-cores n] [-sp MiB] [-seed s]
//	sweep -exp=faults [-fault-seed s] [-fault-rates r1,r2,...]
//	sweep -exp=timeline [-epoch dur]
//	sweep -exp=bandwidth -manifest run.json [-resume] [-slice n] [-retries n] [-timeout dur]
//	sweep -exp=bandwidth -server http://127.0.0.1:8080 [-job-timeout dur]
//
// Every replay runs under the supervised runtime: SIGINT/SIGTERM (or
// -timeout) cancels the sweep at the next slice boundary and the partial
// report is still written (exit code 130); with -manifest each completed
// cell is checkpointed atomically, and -resume skips checkpointed cells to
// produce a byte-identical report. A sweep that completes with failed
// cells exits 3 with the failures marked in the report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/units"
)

// Exit codes: 0 success, 1 fatal error, 2 usage, 3 completed with failed
// cells (the report carries marked rows), 130 interrupted by signal or
// -timeout (partial report and manifest flushed).
const (
	exitFatal       = 1
	exitUsage       = 2
	exitFailedCells = 3
	exitInterrupted = 130
)

// The experiment registry lives in harness.Experiments — shared with the
// nmsimd serving layer so the two front ends agree on experiment names.
// This command owns only the flag-string parsing into ExperimentParams.

// usageTable renders the registry as the experiment section of the usage
// text: one aligned row per experiment.
func usageTable() string {
	var b strings.Builder
	for _, e := range harness.Experiments {
		fmt.Fprintf(&b, "  %-10s %s\n", e.Name, e.Desc)
	}
	return b.String()
}

// params parses the selected experiment's string flags into registry
// parameters. Only the flags the experiment consumes are parsed, keeping
// the historical behavior that a junk -corelist is ignored outside
// -exp=cores.
func (o options) params() (harness.ExperimentParams, error) {
	p := harness.ExperimentParams{FaultSeed: o.faultSeed}
	switch o.exp {
	case "cores":
		cc, err := parseCoreList(o.list)
		if err != nil {
			return p, err
		}
		p.CoreList = cc
	case "faults":
		rates, err := parseRates(o.faultRates)
		if err != nil {
			return p, err
		}
		p.FaultRates = rates
	case "timeline":
		epoch, err := units.ParseTime(o.epoch)
		if err != nil {
			return p, err
		}
		p.Epoch = epoch
	}
	return p, nil
}

// options holds every flag value; validation is separated from parsing so
// bad combinations fail fast with a usage hint and are testable.
type options struct {
	exp        string
	n          int
	cores      int
	list       string
	spMiB      int
	seed       uint64
	format     string
	faultSeed  uint64
	faultRates string
	epoch      string
	par        int
	shards     int
	cpuProfile string
	memProfile string

	manifest   string
	resume     bool
	slice      uint64
	retries    int
	retrySeed  uint64
	timeout    time.Duration
	traceCache string

	server     string
	jobTimeout time.Duration
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (options, *flag.FlagSet, error) {
	var o options
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.StringVar(&o.exp, "exp", "bandwidth", "experiment: "+strings.Join(harness.ExperimentNames(), ", "))
	fs.IntVar(&o.n, "n", 1<<20, "keys to sort")
	fs.IntVar(&o.cores, "cores", 256, "simulated cores for the bandwidth/dma/faults/timeline sweeps")
	fs.StringVar(&o.list, "corelist", "64,128,192,256", "core counts for -exp=cores")
	fs.IntVar(&o.spMiB, "sp", 8, "scratchpad capacity in MiB")
	fs.Uint64Var(&o.seed, "seed", 2015, "input seed")
	fs.StringVar(&o.format, "format", "text", "output format: text, csv, markdown")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed for -exp=faults (0 disables injection)")
	fs.StringVar(&o.faultRates, "fault-rates", "", "comma-separated bit error rates for -exp=faults (empty = default axis)")
	fs.StringVar(&o.epoch, "epoch", "10us", "telemetry sampling epoch for -exp=timeline (e.g. 500ns, 10us)")
	fs.IntVar(&o.par, "par", 0, "replay worker count; output is byte-identical at any value (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&o.shards, "shards", 0, "intra-replay event-queue shards; output is byte-identical at any value (0 = sequential engine, -1 = auto)")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.manifest, "manifest", "", "checkpoint completed sweep cells to this JSON file (written atomically after each cell)")
	fs.BoolVar(&o.resume, "resume", false, "load -manifest and skip cells it already holds; the final report is byte-identical to an uninterrupted run")
	fs.Uint64Var(&o.slice, "slice", 0, "events per supervised replay slice; cancellation is polled between slices (0 = default)")
	fs.IntVar(&o.retries, "retries", 0, "deterministic re-replays of cells ending in a transient MemFault outcome")
	fs.Uint64Var(&o.retrySeed, "retry-seed", 1, "seed for the deterministic retry reseeding chain")
	fs.DurationVar(&o.timeout, "timeout", 0, "wall-clock bound on the whole sweep (0 = none); on expiry the partial report and manifest are flushed")
	fs.StringVar(&o.traceCache, "trace-cache", "", "directory caching recorded traces as columnar .nmt3 files across runs (byte-neutral)")
	fs.StringVar(&o.server, "server", "", "run the sweep on this nmsimd daemon (e.g. http://127.0.0.1:8080) instead of in-process; the printed report is byte-identical")
	fs.DurationVar(&o.jobTimeout, "job-timeout", 0, "HTTP deadline for the -server request (0 = none)")
	def := fs.Usage
	fs.Usage = func() {
		def()
		fmt.Fprintf(fs.Output(), "\nexperiments:\n%s", usageTable())
	}
	err := fs.Parse(args)
	return o, fs, err
}

// validate rejects inconsistent flag combinations before any work is done.
func (o options) validate() error {
	if _, ok := harness.FindExperiment(o.exp); !ok {
		return fmt.Errorf("unknown experiment %q (want one of: %s)", o.exp, strings.Join(harness.ExperimentNames(), ", "))
	}
	switch {
	case o.n < 0:
		return fmt.Errorf("-n %d is negative", o.n)
	case o.cores <= 0 || o.cores%4 != 0:
		return fmt.Errorf("-cores %d must be a positive multiple of 4", o.cores)
	case o.spMiB <= 0:
		return fmt.Errorf("-sp %d MiB must be positive", o.spMiB)
	case o.par < 0:
		return fmt.Errorf("-par %d is negative (0 means GOMAXPROCS)", o.par)
	case o.shards < -1:
		return fmt.Errorf("-shards %d is invalid (0 = sequential engine, -1 = auto)", o.shards)
	case o.retries < 0:
		return fmt.Errorf("-retries %d is negative", o.retries)
	case o.timeout < 0:
		return fmt.Errorf("-timeout %v is negative", o.timeout)
	case o.resume && o.manifest == "":
		return fmt.Errorf("-resume requires -manifest")
	case o.jobTimeout < 0:
		return fmt.Errorf("-job-timeout %v is negative", o.jobTimeout)
	case o.jobTimeout > 0 && o.server == "":
		return fmt.Errorf("-job-timeout requires -server")
	}
	if o.server != "" {
		if err := serve.ValidateServerURL(o.server); err != nil {
			return err
		}
		switch {
		case o.manifest != "":
			return fmt.Errorf("-manifest is local-only and conflicts with -server (the daemon keeps its own result cache)")
		case o.resume:
			return fmt.Errorf("-resume conflicts with -server")
		case o.traceCache != "":
			return fmt.Errorf("-trace-cache is local-only and conflicts with -server (the daemon keeps its own trace store)")
		case o.n == 0:
			return fmt.Errorf("-n 0 cannot travel to -server (the wire treats 0 as the default %d)", 1<<20)
		case o.seed == 0:
			return fmt.Errorf("-seed 0 cannot travel to -server (the wire treats 0 as the default 2015)")
		}
	}
	if _, err := report.ParseFormat(o.format); err != nil {
		return err
	}
	if o.exp == "cores" {
		if _, err := parseCoreList(o.list); err != nil {
			return err
		}
	}
	if o.exp == "faults" {
		if _, err := parseRates(o.faultRates); err != nil {
			return err
		}
	}
	if o.exp == "timeline" {
		epoch, err := units.ParseTime(o.epoch)
		if err != nil {
			return fmt.Errorf("-epoch: %v", err)
		}
		if epoch <= 0 {
			return fmt.Errorf("-epoch %s must be positive", o.epoch)
		}
	}
	return nil
}

// parseCoreList parses the -corelist flag: positive multiples of 4.
func parseCoreList(list string) ([]int, error) {
	var cc []int
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 || v%4 != 0 {
			return nil, fmt.Errorf("bad core count %q (must be a positive multiple of 4)", f)
		}
		cc = append(cc, v)
	}
	return cc, nil
}

// parseRates parses the -fault-rates flag: probabilities in [0, 1]. An
// empty flag selects the default axis.
func parseRates(list string) ([]float64, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var rates []float64
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v > 1 || v != v {
			return nil, fmt.Errorf("bad fault rate %q (must be in [0, 1])", f)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// supervisor builds the supervised runtime from the flags: cancellation
// from ctx, the manifest (fresh or resumed), and the retry policy. Every
// sweep cell runs under it; a do-nothing supervisor is byte-identical to
// the historical unsupervised path (pinned in internal/harness).
func supervisor(ctx context.Context, o options) (*harness.Supervisor, error) {
	sup := &harness.Supervisor{
		Ctx:       ctx,
		Slice:     o.slice,
		Retries:   o.retries,
		RetrySeed: o.retrySeed,
	}
	if o.traceCache != "" {
		rc, err := harness.NewDiskRecordCache(o.traceCache)
		if err != nil {
			return nil, err
		}
		sup.Records = rc
	}
	if o.manifest == "" {
		return sup, nil
	}
	if o.resume {
		man, err := harness.OpenManifest(o.manifest)
		if err != nil {
			return nil, err
		}
		sup.Manifest = man
		return sup, nil
	}
	// A fresh (non-resume) run must not inherit stale cells: reset the file
	// now so a crash before the first completed cell leaves a valid empty
	// manifest, not last week's.
	sup.Manifest = harness.NewManifest(o.manifest)
	if err := sup.Manifest.Flush(); err != nil {
		return nil, err
	}
	return sup, nil
}

// runRemote ships the sweep to an nmsimd daemon and prints the returned
// report verbatim. The daemon renders through the same registry and
// report code, so the bytes match the in-process path — the smoke script
// cmp's exactly this. The failed-cell count arrives in a header, keeping
// the local exit-code contract.
func runRemote(ctx context.Context, o options, out io.Writer) (int, error) {
	p, err := o.params()
	if err != nil {
		return 0, err
	}
	if o.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.jobTimeout)
		defer cancel()
	}
	c := &serve.Client{BaseURL: o.server}
	body, failed, err := c.Sweep(ctx, serve.SweepRequest{
		Exp:        o.exp,
		N:          o.n,
		Seed:       o.seed,
		Cores:      o.cores,
		SPMiB:      o.spMiB,
		Format:     o.format,
		CoreList:   p.CoreList,
		FaultSeed:  p.FaultSeed,
		FaultRates: p.FaultRates,
		EpochPS:    int64(p.Epoch),
		Par:        o.par,
		Shards:     o.shards,
		Retries:    o.retries,
		RetrySeed:  o.retrySeed,
		Slice:      o.slice,
	})
	if err != nil {
		return 0, err
	}
	_, err = out.Write(body)
	return failed, err
}

// run executes the selected experiment under supervision and writes the
// series to out — including after cancellation or cell failures, when the
// partially-filled report (with marked rows) is the flush the shutdown
// path promises. It returns the count of failed cells. Every experiment
// yields a harness.Sweep, so fault, timeline, and plain sweeps all render
// through the same table path.
func run(ctx context.Context, o options, out io.Writer) (int, error) {
	if o.server != "" {
		return runRemote(ctx, o, out)
	}
	f, _ := report.ParseFormat(o.format)
	sup, err := supervisor(ctx, o)
	if err != nil {
		return 0, err
	}
	w := harness.Workload{
		N:       o.n,
		Seed:    o.seed,
		Threads: o.cores,
		SP:      units.Bytes(o.spMiB) * units.MiB,
		Par:     o.par,
		Shards:  o.shards,
		Sup:     sup,
	}
	e, _ := harness.FindExperiment(o.exp)
	p, err := o.params()
	if err != nil {
		return 0, err
	}
	s, err := e.Run(p, w)
	if err != nil {
		return 0, err
	}
	if f == report.Text {
		if _, err := fmt.Fprint(out, s.String()); err != nil {
			return s.Failed(), err
		}
	} else if err := s.Report().Render(out, f); err != nil {
		return s.Failed(), err
	}
	if sup.Manifest != nil {
		if err := sup.Manifest.Flush(); err != nil {
			return s.Failed(), err
		}
	}
	return s.Failed(), nil
}

func main() {
	o, fs, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(exitUsage) // the FlagSet already printed the error and usage
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		fs.Usage()
		os.Exit(exitUsage)
	}
	profiles, err := prof.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(exitFatal)
	}
	// Graceful shutdown: the first SIGINT/SIGTERM cancels the context, the
	// running slice finishes, untouched cells cancel, and run still writes
	// the partial report (the manifest is already on disk per cell). A
	// second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	failed, runErr := run(ctx, o, os.Stdout)
	// Stop even on failure: a profile of the partial run is still useful.
	if err := profiles.Stop(); runErr == nil {
		runErr = err
	}
	switch {
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "sweep: %v\n", runErr)
		if ctx.Err() != nil && errors.Is(runErr, ctx.Err()) {
			// The error IS the interrupt: report it under the interrupt code.
			os.Exit(exitInterrupted)
		}
		os.Exit(exitFatal)
	case ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "sweep: interrupted (%v); partial report written, %d cells incomplete\n", ctx.Err(), failed)
		os.Exit(exitInterrupted)
	case failed > 0:
		fmt.Fprintf(os.Stderr, "sweep: completed with %d failed cells (marked in the report)\n", failed)
		os.Exit(exitFailedCells)
	}
}
