// Command sweep regenerates the series behind the paper's Section V
// claims. Run "sweep -help" for the experiment list; every experiment is a
// row of the registry below, which is also the single source of the usage
// text.
//
// Usage:
//
//	sweep -exp=bandwidth [-n keys] [-cores n] [-sp MiB] [-seed s]
//	sweep -exp=faults [-fault-seed s] [-fault-rates r1,r2,...]
//	sweep -exp=timeline [-epoch dur]
//	sweep -exp=bandwidth -manifest run.json [-resume] [-slice n] [-retries n] [-timeout dur]
//
// Every replay runs under the supervised runtime: SIGINT/SIGTERM (or
// -timeout) cancels the sweep at the next slice boundary and the partial
// report is still written (exit code 130); with -manifest each completed
// cell is checkpointed atomically, and -resume skips checkpointed cells to
// produce a byte-identical report. A sweep that completes with failed
// cells exits 3 with the failures marked in the report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/harness"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/units"
)

// Exit codes: 0 success, 1 fatal error, 2 usage, 3 completed with failed
// cells (the report carries marked rows), 130 interrupted by signal or
// -timeout (partial report and manifest flushed).
const (
	exitFatal       = 1
	exitUsage       = 2
	exitFailedCells = 3
	exitInterrupted = 130
)

// experiment is one registered -exp value: its one-line description (the
// usage text is generated from these) and its runner.
type experiment struct {
	name string
	desc string
	run  func(o options, w harness.Workload) (harness.Sweep, error)
}

// experiments is the registry, in display order. Adding an experiment here
// is the whole job: -exp validation and the usage text follow.
var experiments = []experiment{
	{"bandwidth", "claim C1 — NMsort's runtime falls as near bandwidth rises 2X→8X; the baseline is insensitive",
		func(o options, w harness.Workload) (harness.Sweep, error) {
			return harness.BandwidthSweep(w)
		}},
	{"cores", "claim C2 — the scratchpad pays off in the memory-bound regime (256 cores) and not below it",
		func(o options, w harness.Workload) (harness.Sweep, error) {
			cc, err := parseCoreList(o.list)
			if err != nil {
				return harness.Sweep{}, err
			}
			return harness.CoreSweep(w, cc)
		}},
	{"dma", "experiment A2 — the §VII DMA-engine extension",
		func(o options, w harness.Workload) (harness.Sweep, error) {
			return harness.AblationDMA(w, 16)
		}},
	{"appends", "experiment A1 — bucket-metadata batching ablation",
		func(o options, w harness.Workload) (harness.Sweep, error) {
			return harness.AblationSmallAppends(w, 16)
		}},
	{"kmeans", "the §VII k-means extension",
		func(o options, w harness.Workload) (harness.Sweep, error) {
			kw := harness.DefaultKMeans()
			kw.Th = o.cores
			kw.Par = w.Par
			kw.Sup = w.Sup
			return harness.KMeansSweep(kw)
		}},
	{"faults", "experiment F1 — slowdown, retry counts, and MemFault outcomes vs. the far memory's error rate",
		func(o options, w harness.Workload) (harness.Sweep, error) {
			rates, err := parseRates(o.faultRates)
			if err != nil {
				return harness.Sweep{}, err
			}
			return harness.RunFaultSweep(w, 16, o.faultSeed, rates)
		}},
	{"timeline", "telemetry-instrumented replay at 4X — per-phase bandwidth and utilization, NMsort vs. the baseline",
		func(o options, w harness.Workload) (harness.Sweep, error) {
			epoch, err := units.ParseTime(o.epoch)
			if err != nil {
				return harness.Sweep{}, err
			}
			return harness.TimelineSweep(w, 16, epoch)
		}},
}

// findExperiment looks a name up in the registry.
func findExperiment(name string) (experiment, bool) {
	for _, e := range experiments {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

// experimentNames returns the registered names in display order.
func experimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

// usageTable renders the registry as the experiment section of the usage
// text: one aligned row per experiment.
func usageTable() string {
	var b strings.Builder
	for _, e := range experiments {
		fmt.Fprintf(&b, "  %-10s %s\n", e.name, e.desc)
	}
	return b.String()
}

// options holds every flag value; validation is separated from parsing so
// bad combinations fail fast with a usage hint and are testable.
type options struct {
	exp        string
	n          int
	cores      int
	list       string
	spMiB      int
	seed       uint64
	format     string
	faultSeed  uint64
	faultRates string
	epoch      string
	par        int
	shards     int
	cpuProfile string
	memProfile string

	manifest  string
	resume    bool
	slice     uint64
	retries   int
	retrySeed uint64
	timeout   time.Duration
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (options, *flag.FlagSet, error) {
	var o options
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.StringVar(&o.exp, "exp", "bandwidth", "experiment: "+strings.Join(experimentNames(), ", "))
	fs.IntVar(&o.n, "n", 1<<20, "keys to sort")
	fs.IntVar(&o.cores, "cores", 256, "simulated cores for the bandwidth/dma/faults/timeline sweeps")
	fs.StringVar(&o.list, "corelist", "64,128,192,256", "core counts for -exp=cores")
	fs.IntVar(&o.spMiB, "sp", 8, "scratchpad capacity in MiB")
	fs.Uint64Var(&o.seed, "seed", 2015, "input seed")
	fs.StringVar(&o.format, "format", "text", "output format: text, csv, markdown")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed for -exp=faults (0 disables injection)")
	fs.StringVar(&o.faultRates, "fault-rates", "", "comma-separated bit error rates for -exp=faults (empty = default axis)")
	fs.StringVar(&o.epoch, "epoch", "10us", "telemetry sampling epoch for -exp=timeline (e.g. 500ns, 10us)")
	fs.IntVar(&o.par, "par", 0, "replay worker count; output is byte-identical at any value (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&o.shards, "shards", 0, "intra-replay event-queue shards; output is byte-identical at any value (0 = sequential engine, -1 = auto)")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.manifest, "manifest", "", "checkpoint completed sweep cells to this JSON file (written atomically after each cell)")
	fs.BoolVar(&o.resume, "resume", false, "load -manifest and skip cells it already holds; the final report is byte-identical to an uninterrupted run")
	fs.Uint64Var(&o.slice, "slice", 0, "events per supervised replay slice; cancellation is polled between slices (0 = default)")
	fs.IntVar(&o.retries, "retries", 0, "deterministic re-replays of cells ending in a transient MemFault outcome")
	fs.Uint64Var(&o.retrySeed, "retry-seed", 1, "seed for the deterministic retry reseeding chain")
	fs.DurationVar(&o.timeout, "timeout", 0, "wall-clock bound on the whole sweep (0 = none); on expiry the partial report and manifest are flushed")
	def := fs.Usage
	fs.Usage = func() {
		def()
		fmt.Fprintf(fs.Output(), "\nexperiments:\n%s", usageTable())
	}
	err := fs.Parse(args)
	return o, fs, err
}

// validate rejects inconsistent flag combinations before any work is done.
func (o options) validate() error {
	if _, ok := findExperiment(o.exp); !ok {
		return fmt.Errorf("unknown experiment %q (want one of: %s)", o.exp, strings.Join(experimentNames(), ", "))
	}
	switch {
	case o.n < 0:
		return fmt.Errorf("-n %d is negative", o.n)
	case o.cores <= 0 || o.cores%4 != 0:
		return fmt.Errorf("-cores %d must be a positive multiple of 4", o.cores)
	case o.spMiB <= 0:
		return fmt.Errorf("-sp %d MiB must be positive", o.spMiB)
	case o.par < 0:
		return fmt.Errorf("-par %d is negative (0 means GOMAXPROCS)", o.par)
	case o.shards < -1:
		return fmt.Errorf("-shards %d is invalid (0 = sequential engine, -1 = auto)", o.shards)
	case o.retries < 0:
		return fmt.Errorf("-retries %d is negative", o.retries)
	case o.timeout < 0:
		return fmt.Errorf("-timeout %v is negative", o.timeout)
	case o.resume && o.manifest == "":
		return fmt.Errorf("-resume requires -manifest")
	}
	if _, err := report.ParseFormat(o.format); err != nil {
		return err
	}
	if o.exp == "cores" {
		if _, err := parseCoreList(o.list); err != nil {
			return err
		}
	}
	if o.exp == "faults" {
		if _, err := parseRates(o.faultRates); err != nil {
			return err
		}
	}
	if o.exp == "timeline" {
		epoch, err := units.ParseTime(o.epoch)
		if err != nil {
			return fmt.Errorf("-epoch: %v", err)
		}
		if epoch <= 0 {
			return fmt.Errorf("-epoch %s must be positive", o.epoch)
		}
	}
	return nil
}

// parseCoreList parses the -corelist flag: positive multiples of 4.
func parseCoreList(list string) ([]int, error) {
	var cc []int
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 || v%4 != 0 {
			return nil, fmt.Errorf("bad core count %q (must be a positive multiple of 4)", f)
		}
		cc = append(cc, v)
	}
	return cc, nil
}

// parseRates parses the -fault-rates flag: probabilities in [0, 1]. An
// empty flag selects the default axis.
func parseRates(list string) ([]float64, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	var rates []float64
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v < 0 || v > 1 || v != v {
			return nil, fmt.Errorf("bad fault rate %q (must be in [0, 1])", f)
		}
		rates = append(rates, v)
	}
	return rates, nil
}

// supervisor builds the supervised runtime from the flags: cancellation
// from ctx, the manifest (fresh or resumed), and the retry policy. Every
// sweep cell runs under it; a do-nothing supervisor is byte-identical to
// the historical unsupervised path (pinned in internal/harness).
func supervisor(ctx context.Context, o options) (*harness.Supervisor, error) {
	sup := &harness.Supervisor{
		Ctx:       ctx,
		Slice:     o.slice,
		Retries:   o.retries,
		RetrySeed: o.retrySeed,
	}
	if o.manifest == "" {
		return sup, nil
	}
	if o.resume {
		man, err := harness.OpenManifest(o.manifest)
		if err != nil {
			return nil, err
		}
		sup.Manifest = man
		return sup, nil
	}
	// A fresh (non-resume) run must not inherit stale cells: reset the file
	// now so a crash before the first completed cell leaves a valid empty
	// manifest, not last week's.
	sup.Manifest = harness.NewManifest(o.manifest)
	if err := sup.Manifest.Flush(); err != nil {
		return nil, err
	}
	return sup, nil
}

// run executes the selected experiment under supervision and writes the
// series to out — including after cancellation or cell failures, when the
// partially-filled report (with marked rows) is the flush the shutdown
// path promises. It returns the count of failed cells. Every experiment
// yields a harness.Sweep, so fault, timeline, and plain sweeps all render
// through the same table path.
func run(ctx context.Context, o options, out io.Writer) (int, error) {
	f, _ := report.ParseFormat(o.format)
	sup, err := supervisor(ctx, o)
	if err != nil {
		return 0, err
	}
	w := harness.Workload{
		N:       o.n,
		Seed:    o.seed,
		Threads: o.cores,
		SP:      units.Bytes(o.spMiB) * units.MiB,
		Par:     o.par,
		Shards:  o.shards,
		Sup:     sup,
	}
	e, _ := findExperiment(o.exp)
	s, err := e.run(o, w)
	if err != nil {
		return 0, err
	}
	if f == report.Text {
		if _, err := fmt.Fprint(out, s.String()); err != nil {
			return s.Failed(), err
		}
	} else if err := s.Report().Render(out, f); err != nil {
		return s.Failed(), err
	}
	if sup.Manifest != nil {
		if err := sup.Manifest.Flush(); err != nil {
			return s.Failed(), err
		}
	}
	return s.Failed(), nil
}

func main() {
	o, fs, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(exitUsage) // the FlagSet already printed the error and usage
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		fs.Usage()
		os.Exit(exitUsage)
	}
	profiles, err := prof.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(exitFatal)
	}
	// Graceful shutdown: the first SIGINT/SIGTERM cancels the context, the
	// running slice finishes, untouched cells cancel, and run still writes
	// the partial report (the manifest is already on disk per cell). A
	// second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	failed, runErr := run(ctx, o, os.Stdout)
	// Stop even on failure: a profile of the partial run is still useful.
	if err := profiles.Stop(); runErr == nil {
		runErr = err
	}
	switch {
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "sweep: %v\n", runErr)
		if ctx.Err() != nil && errors.Is(runErr, ctx.Err()) {
			// The error IS the interrupt: report it under the interrupt code.
			os.Exit(exitInterrupted)
		}
		os.Exit(exitFatal)
	case ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "sweep: interrupted (%v); partial report written, %d cells incomplete\n", ctx.Err(), failed)
		os.Exit(exitInterrupted)
	case failed > 0:
		fmt.Fprintf(os.Stderr, "sweep: completed with %d failed cells (marked in the report)\n", failed)
		os.Exit(exitFailedCells)
	}
}
