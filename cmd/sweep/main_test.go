package main

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/serve"
)

// TestValidate exercises the up-front flag validation, including the
// experiment-specific list flags.
func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = valid
	}{
		{"defaults", nil, ""},
		{"unknown experiment", []string{"-exp", "latency"}, "unknown experiment"},
		{"negative n", []string{"-n", "-5"}, "-n"},
		{"bad cores", []string{"-cores", "10"}, "-cores"},
		{"zero scratchpad", []string{"-sp", "0"}, "-sp"},
		{"bad format", []string{"-format", "yaml"}, "format"},
		{"bad corelist entry", []string{"-exp", "cores", "-corelist", "64,91"}, "core count"},
		{"empty corelist entry", []string{"-exp", "cores", "-corelist", "64,,128"}, "core count"},
		{"corelist ignored elsewhere", []string{"-exp", "dma", "-corelist", "64,91"}, ""},
		{"bad fault rate", []string{"-exp", "faults", "-fault-rates", "0.1,2"}, "fault rate"},
		{"negative fault rate", []string{"-exp", "faults", "-fault-rates", "-1e-3"}, "fault rate"},
		{"garbage fault rate", []string{"-exp", "faults", "-fault-rates", "lots"}, "fault rate"},
		{"fault rates ignored elsewhere", []string{"-exp", "cores", "-fault-rates", "9"}, ""},
		{"negative par", []string{"-par", "-2"}, "-par"},
		{"valid faults", []string{"-exp", "faults", "-fault-rates", "1e-4,1e-3", "-fault-seed", "3"}, ""},
		{"valid kmeans", []string{"-exp", "kmeans"}, ""},
		{"valid par", []string{"-par", "4"}, ""},
		{"bad shards", []string{"-shards", "-3"}, "-shards"},
		{"valid shards", []string{"-shards", "2"}, ""},
		{"valid shards auto", []string{"-shards", "-1"}, ""},
		{"valid profiles", []string{"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof"}, ""},
		{"valid server", []string{"-server", "http://127.0.0.1:8080"}, ""},
		{"valid server with timeout", []string{"-server", "http://127.0.0.1:8080", "-job-timeout", "30s"}, ""},
		{"server bad scheme", []string{"-server", "ftp://host:1"}, "http"},
		{"server no host", []string{"-server", "http://"}, "host"},
		{"server garbage", []string{"-server", "::"}, "-server"},
		{"job-timeout without server", []string{"-job-timeout", "5s"}, "-job-timeout requires -server"},
		{"negative job-timeout", []string{"-server", "http://h:1", "-job-timeout", "-1s"}, "-job-timeout"},
		{"server conflicts manifest", []string{"-server", "http://h:1", "-manifest", "m.json"}, "-manifest"},
		{"server conflicts resume", []string{"-server", "http://h:1", "-manifest", "m.json", "-resume"}, "-manifest"},
		{"server zero n", []string{"-server", "http://h:1", "-n", "0"}, "-n 0"},
		{"server zero seed", []string{"-server", "http://h:1", "-seed", "0"}, "-seed 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, _, err := parseFlags(tc.args)
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			err = o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%v) = nil, want error mentioning %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("validate(%v) = %q, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunRemoteMatchesLocal is the client-parity check: the same sweep
// flags through -server against an in-process nmsimd stack print the same
// bytes and failed count as the local path.
func TestRunRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	hs := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer hs.Close()
	args := []string{"-exp", "dma", "-n", "8192", "-cores", "16", "-sp", "1", "-seed", "7"}
	var local, remote strings.Builder
	for _, pass := range []struct {
		extra []string
		out   *strings.Builder
	}{
		{nil, &local},
		{[]string{"-server", hs.URL}, &remote},
	} {
		o, _, err := parseFlags(append(args, pass.extra...))
		if err != nil {
			t.Fatal(err)
		}
		if err := o.validate(); err != nil {
			t.Fatal(err)
		}
		failed, err := run(context.Background(), o, pass.out)
		if err != nil {
			t.Fatalf("run(%v): %v", pass.extra, err)
		}
		if failed != 0 {
			t.Fatalf("run(%v) reported %d failed cells", pass.extra, failed)
		}
	}
	if local.String() != remote.String() {
		t.Fatalf("remote report differs from local:\n--- local\n%s\n--- remote\n%s", local.String(), remote.String())
	}
}

// TestParseCoreList checks round-tripping of the happy path.
func TestParseCoreList(t *testing.T) {
	cc, err := parseCoreList(" 64, 128 ,256")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{64, 128, 256}
	if len(cc) != len(want) {
		t.Fatalf("parseCoreList = %v, want %v", cc, want)
	}
	for i := range want {
		if cc[i] != want[i] {
			t.Fatalf("parseCoreList = %v, want %v", cc, want)
		}
	}
}

// TestParseRatesEmpty confirms the empty flag selects the default axis.
func TestParseRatesEmpty(t *testing.T) {
	rates, err := parseRates("  ")
	if err != nil || rates != nil {
		t.Fatalf("parseRates(blank) = %v, %v; want nil, nil", rates, err)
	}
}

// TestRunFaultsSmall runs a tiny fault sweep end to end through run().
func TestRunFaultsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	o, _, err := parseFlags([]string{"-exp", "faults", "-n", "4096", "-cores", "8",
		"-sp", "1", "-fault-rates", "1e-3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	failed, err := run(context.Background(), o, &b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failed != 0 {
		t.Fatalf("run reported %d failed cells", failed)
	}
	out := b.String()
	if !strings.Contains(out, "nmsort") || !strings.Contains(out, "gnusort") {
		t.Errorf("fault sweep output missing algorithm rows:\n%s", out)
	}
}

// TestExperimentRegistry checks the registry drives both lookup and the
// usage text: every registered experiment resolves, appears in the usage
// table with its description, and the timeline entry is present.
func TestExperimentRegistry(t *testing.T) {
	names := harness.ExperimentNames()
	if len(names) != len(harness.Experiments) {
		t.Fatalf("ExperimentNames() = %v, want %d entries", names, len(harness.Experiments))
	}
	usage := usageTable()
	for _, e := range harness.Experiments {
		if got, ok := harness.FindExperiment(e.Name); !ok || got.Name != e.Name {
			t.Errorf("FindExperiment(%q) failed", e.Name)
		}
		if !strings.Contains(usage, e.Name) || !strings.Contains(usage, e.Desc) {
			t.Errorf("usage table missing %q:\n%s", e.Name, usage)
		}
	}
	found := false
	for _, n := range names {
		if n == "timeline" {
			found = true
		}
	}
	if !found {
		t.Errorf("timeline not registered: %v", names)
	}
	if _, ok := harness.FindExperiment("nope"); ok {
		t.Error("FindExperiment accepted an unknown name")
	}
}

// TestValidateTimelineEpoch covers the -epoch flag gating for -exp=timeline.
func TestValidateTimelineEpoch(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"bad epoch", []string{"-exp", "timeline", "-epoch", "10"}, "-epoch"},
		{"zero epoch", []string{"-exp", "timeline", "-epoch", "0us"}, "-epoch"},
		{"valid epoch", []string{"-exp", "timeline", "-epoch", "2us"}, ""},
		{"epoch ignored elsewhere", []string{"-exp", "cores", "-epoch", "10"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, _, err := parseFlags(tc.args)
			if err != nil {
				t.Fatal(err)
			}
			err = o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%v) = %v, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunTimelineSmall runs a tiny timeline sweep end to end: both
// algorithms must report a phase breakdown.
func TestRunTimelineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	o, _, err := parseFlags([]string{"-exp", "timeline", "-n", "4096", "-cores", "8",
		"-sp", "1", "-epoch", "5us"})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	failed, err := run(context.Background(), o, &b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failed != 0 {
		t.Fatalf("run reported %d failed cells", failed)
	}
	out := b.String()
	if !strings.Contains(out, "phase breakdown") {
		t.Errorf("timeline output missing phase breakdown:\n%s", out)
	}
	for _, phase := range []string{"p1:sort-chunks", "sort-runs"} {
		if !strings.Contains(out, phase) {
			t.Errorf("timeline output missing phase %q:\n%s", phase, out)
		}
	}
}

// TestValidateSupervision covers the supervision flags' validation rules.
func TestValidateSupervision(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"resume without manifest", []string{"-resume"}, "-resume requires -manifest"},
		{"resume with manifest", []string{"-resume", "-manifest", "m.json"}, ""},
		{"negative retries", []string{"-retries", "-1"}, "-retries"},
		{"negative timeout", []string{"-timeout", "-1s"}, "-timeout"},
		{"valid supervision", []string{"-manifest", "m.json", "-slice", "4096", "-retries", "2", "-retry-seed", "9", "-timeout", "30s"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, _, err := parseFlags(tc.args)
			if err != nil {
				t.Fatal(err)
			}
			err = o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%v) = %v, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestRunResumeByteIdentical runs a sweep with a manifest, then resumes
// from it: the resumed report must be byte-identical and must come from
// the checkpoints (cells skip replaying, so a poisoned resume would show).
func TestRunResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	manifest := filepath.Join(t.TempDir(), "m.json")
	args := []string{"-exp", "dma", "-n", "4096", "-cores", "8", "-sp", "1", "-manifest", manifest}
	o, _, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	var first strings.Builder
	if failed, err := run(context.Background(), o, &first); err != nil || failed != 0 {
		t.Fatalf("first run: failed=%d err=%v", failed, err)
	}

	ro, _, err := parseFlags(append(args, "-resume"))
	if err != nil {
		t.Fatal(err)
	}
	var second strings.Builder
	if failed, err := run(context.Background(), ro, &second); err != nil || failed != 0 {
		t.Fatalf("resume run: failed=%d err=%v", failed, err)
	}
	if first.String() != second.String() {
		t.Errorf("resumed report differs:\n%s\nwant:\n%s", second.String(), first.String())
	}
}

// TestRunCancelled: a pre-cancelled context still yields a report, with
// every cell marked cancelled and counted as failed.
func TestRunCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	o, _, err := parseFlags([]string{"-exp", "dma", "-n", "4096", "-cores", "8", "-sp", "1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	failed, err := run(ctx, o, &b)
	if err != nil {
		t.Fatalf("cancelled run must still report: %v", err)
	}
	if failed == 0 {
		t.Fatal("cancelled run reported no failed cells")
	}
	if !strings.Contains(b.String(), "[cancelled]") {
		t.Errorf("report missing cancelled marks:\n%s", b.String())
	}
}
