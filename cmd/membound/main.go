// Command membound evaluates the paper's Section V-A memory-boundedness
// analysis: sorting is memory-bandwidth bound exactly when y·log Z < x,
// where x is the aggregate processing rate (comparisons/s), y the off-chip
// bandwidth (elements/s), and Z the on-chip cache in blocks — a condition
// independent of the instance size N.
//
// Usage:
//
//	membound [-cores n] [-ghz f] [-cycles c] [-bw GB/s] [-elem bytes] [-z blocks]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/model"
)

func main() {
	log.SetFlags(0)
	var (
		cores  = flag.Int("cores", 256, "cores on the node")
		ghz    = flag.Float64("ghz", 1.7, "core clock in GHz")
		cycles = flag.Float64("cycles", 16, "core cycles per comparison")
		bw     = flag.Float64("bw", 8, "effective off-chip bandwidth in GB/s of useful sorted data")
		elem   = flag.Float64("elem", 8, "element size in bytes")
		z      = flag.Float64("z", 1e6, "on-chip cache size in blocks")
	)
	flag.Parse()

	x, y := model.NodeRates(*cores, *ghz*1e9, *cycles, *bw*1e9, *elem)
	a := model.MemoryBound(x, y, *z)
	fmt.Printf("Section V-A analysis (y·log Z < x ⇔ memory bound; N cancels)\n\n")
	fmt.Printf("  processing rate x      = %.3g comparisons/s (%d cores @ %.2f GHz, %.0f cyc/cmp)\n",
		a.ProcessingRate, *cores, *ghz, *cycles)
	fmt.Printf("  memory rate    y·lgZ   = %.3g elements/s (y = %.3g elem/s, Z = %.3g blocks)\n",
		a.MemoryRate, y, *z)
	fmt.Printf("  ratio x/(y·lgZ)        = %.3f\n", a.Ratio)
	if a.MemoryBound {
		fmt.Printf("  verdict: MEMORY-BANDWIDTH BOUND — a scratchpad helps\n")
	} else {
		fmt.Printf("  verdict: compute bound — extra bandwidth is wasted\n")
	}

	min := model.MinCoresForMemoryBound(*ghz*1e9, *cycles, *bw*1e9, *elem, *z)
	fmt.Printf("\n  crossover: sorting becomes memory bound at >= %d cores on this node\n", min)

	// Vendor guidance (paper §VII: "The core counts and minimum values of
	// rho could guide vendors"), using the traffic profile from the
	// paper's own Table I access counts.
	g := model.VendorGuidance(*ghz*1e9, *cycles, *bw*1e9, *elem, *z, model.PaperProfile())
	fmt.Printf("\nVendor guidance (Table I traffic profile, bandwidth-bound regime):\n")
	fmt.Printf("  minimum useful expansion rho*   = %.2f\n", g.MinRho)
	fmt.Printf("  NMsort speedup at 2X/4X/8X      = %.2fx / %.2fx / %.2fx\n",
		g.SpeedupAt2X, g.SpeedupAt4X, g.SpeedupAt8X)
	fmt.Printf("  ceiling as rho -> inf           = %.2fx (far-traffic ratio)\n", g.Ceiling)
}
