package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// TestValidate exercises the up-front flag validation: every rejected
// combination must carry a hint naming the offending flag.
func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = valid
	}{
		{"defaults", nil, ""},
		{"negative n", []string{"-n", "-1"}, "-n"},
		{"zero cores", []string{"-cores", "0"}, "-cores"},
		{"negative cores", []string{"-cores", "-8"}, "-cores"},
		{"cores not multiple of 4", []string{"-cores", "6"}, "-cores"},
		{"zero scratchpad", []string{"-sp", "0"}, "-sp"},
		{"negative scratchpad", []string{"-sp", "-2"}, "-sp"},
		{"negative fault rate", []string{"-fault-rate", "-0.5"}, "-fault-rate"},
		{"fault rate above one", []string{"-fault-rate", "1.5"}, "-fault-rate"},
		{"bad format", []string{"-format", "xml"}, "format"},
		{"bad distribution", []string{"-dist", "bimodal"}, "bimodal"},
		{"negative par", []string{"-par", "-1"}, "-par"},
		{"valid faults", []string{"-fault-rate", "1e-4", "-fault-seed", "9"}, ""},
		{"valid zipf csv", []string{"-dist", "zipf", "-format", "csv"}, ""},
		{"valid par", []string{"-par", "8"}, ""},
		{"valid par auto", []string{"-par", "0"}, ""},
		{"bad shards", []string{"-shards", "-2"}, "-shards"},
		{"valid shards", []string{"-shards", "4"}, ""},
		{"valid shards auto", []string{"-shards", "-1"}, ""},
		{"valid profiles", []string{"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof"}, ""},
		{"valid server", []string{"-server", "http://127.0.0.1:8080"}, ""},
		{"valid server with timeout", []string{"-server", "http://127.0.0.1:8080", "-job-timeout", "1m"}, ""},
		{"server bad scheme", []string{"-server", "unix:///tmp/s"}, "http"},
		{"server no host", []string{"-server", "https://"}, "host"},
		{"job-timeout without server", []string{"-job-timeout", "5s"}, "-job-timeout requires -server"},
		{"negative job-timeout", []string{"-server", "http://h:1", "-job-timeout", "-1s"}, "-job-timeout"},
		{"server conflicts telemetry", []string{"-server", "http://h:1", "-telemetry-out", "t.json"}, "-telemetry-out"},
		{"server conflicts telemetry csv", []string{"-server", "http://h:1", "-telemetry-csv", "t.csv"}, "-telemetry-out"},
		{"server zero n", []string{"-server", "http://h:1", "-n", "0"}, "-n 0"},
		{"server zero seed", []string{"-server", "http://h:1", "-seed", "0"}, "-seed 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, _, err := parseFlags(tc.args)
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			err = o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%v) = nil, want error mentioning %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("validate(%v) = %q, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestParseFlagsUnknown confirms unknown flags fail at parse time.
func TestParseFlagsUnknown(t *testing.T) {
	fs := []string{"-frobnicate"}
	if _, _, err := parseFlags(fs); err == nil {
		t.Fatalf("parseFlags(%v) = nil, want error", fs)
	}
}

// TestFaultConfigDisabled confirms -fault-rate 0 yields a disabled config
// regardless of the seed, preserving the fault-free default path.
func TestFaultConfigDisabled(t *testing.T) {
	o, _, err := parseFlags([]string{"-fault-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if fc := o.faultConfig(); fc.Enabled() {
		t.Fatalf("faultConfig() = %+v, want disabled at rate 0", fc)
	}
}

// TestRunSmall runs a tiny workload end to end through run().
func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	o, _, err := parseFlags([]string{"-n", "4096", "-cores", "8", "-sp", "1", "-fault-rate", "1e-3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	failed, err := run(context.Background(), o, &b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failed != 0 {
		t.Fatalf("run reported %d failed replays", failed)
	}
	if !strings.Contains(b.String(), "NMsort") {
		t.Errorf("output missing NMsort rows:\n%s", b.String())
	}
}

// TestRunRemoteMatchesLocal is the client-parity check: the same flags
// through -server against an in-process nmsimd stack print the same bytes
// as the local path.
func TestRunRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	hs := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer hs.Close()
	args := []string{"-n", "4096", "-cores", "8", "-sp", "1", "-seed", "7"}
	var local, remote strings.Builder
	for _, pass := range []struct {
		extra []string
		out   *strings.Builder
	}{
		{nil, &local},
		{[]string{"-server", hs.URL}, &remote},
	} {
		o, _, err := parseFlags(append(args, pass.extra...))
		if err != nil {
			t.Fatal(err)
		}
		if err := o.validate(); err != nil {
			t.Fatal(err)
		}
		if _, err := run(context.Background(), o, pass.out); err != nil {
			t.Fatalf("run(%v): %v", pass.extra, err)
		}
	}
	if local.String() != remote.String() {
		t.Fatalf("remote table differs from local:\n--- local\n%s\n--- remote\n%s", local.String(), remote.String())
	}
}

// TestValidateTelemetry covers the telemetry flag family: the epoch must be
// a positive unit-suffixed duration, and either output flag switches the
// telemetry replay on.
func TestValidateTelemetry(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"bad epoch", []string{"-telemetry-out", "x.json", "-telemetry-epoch", "10"}, "-telemetry-epoch"},
		{"zero epoch", []string{"-telemetry-out", "x.json", "-telemetry-epoch", "0ns"}, "-telemetry-epoch"},
		{"negative epoch", []string{"-telemetry-csv", "x.csv", "-telemetry-epoch", "-5us"}, "-telemetry-epoch"},
		{"valid chrome", []string{"-telemetry-out", "x.json", "-telemetry-epoch", "50us"}, ""},
		{"valid csv only", []string{"-telemetry-csv", "x.csv"}, ""},
		{"epoch ignored when off", []string{"-telemetry-epoch", "10"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, _, err := parseFlags(tc.args)
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			err = o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%v) = %v, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}

	o, _, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.telemetry() {
		t.Error("telemetry() = true with no output flags")
	}
}

// TestRunTelemetrySmall runs a tiny workload with both exporters on and
// checks the files land and the trace validates.
func TestRunTelemetrySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.trace.json")
	csvPath := filepath.Join(dir, "out.csv")
	o, _, err := parseFlags([]string{"-n", "4096", "-cores", "8", "-sp", "1",
		"-telemetry-out", tracePath, "-telemetry-csv", csvPath, "-telemetry-epoch", "5us"})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	failed, err := run(context.Background(), o, &b)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if failed != 0 {
		t.Fatalf("run reported %d failed replays", failed)
	}
	if !strings.Contains(b.String(), "timeline") {
		t.Errorf("output missing phase table:\n%s", b.String())
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateChromeJSON(raw); err != nil {
		t.Errorf("exported trace does not validate: %v", err)
	}
	csvRaw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvRaw), "t_ps,") {
		t.Errorf("csv export lacks header: %q", string(csvRaw[:40]))
	}
}

// TestRunCancelled: a pre-cancelled context still writes the table, with
// every replay marked cancelled and counted as failed.
func TestRunCancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	o, _, err := parseFlags([]string{"-n", "4096", "-cores", "8", "-sp", "1"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	failed, err := run(ctx, o, &b)
	if err != nil {
		t.Fatalf("cancelled run must still report: %v", err)
	}
	if failed == 0 {
		t.Fatal("cancelled run reported no failed replays")
	}
	if !strings.Contains(b.String(), "[cancelled]") {
		t.Errorf("table missing cancelled marks:\n%s", b.String())
	}
}
