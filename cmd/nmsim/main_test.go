package main

import (
	"strings"
	"testing"
)

// TestValidate exercises the up-front flag validation: every rejected
// combination must carry a hint naming the offending flag.
func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // "" = valid
	}{
		{"defaults", nil, ""},
		{"negative n", []string{"-n", "-1"}, "-n"},
		{"zero cores", []string{"-cores", "0"}, "-cores"},
		{"negative cores", []string{"-cores", "-8"}, "-cores"},
		{"cores not multiple of 4", []string{"-cores", "6"}, "-cores"},
		{"zero scratchpad", []string{"-sp", "0"}, "-sp"},
		{"negative scratchpad", []string{"-sp", "-2"}, "-sp"},
		{"negative fault rate", []string{"-fault-rate", "-0.5"}, "-fault-rate"},
		{"fault rate above one", []string{"-fault-rate", "1.5"}, "-fault-rate"},
		{"bad format", []string{"-format", "xml"}, "format"},
		{"bad distribution", []string{"-dist", "bimodal"}, "bimodal"},
		{"valid faults", []string{"-fault-rate", "1e-4", "-fault-seed", "9"}, ""},
		{"valid zipf csv", []string{"-dist", "zipf", "-format", "csv"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, _, err := parseFlags(tc.args)
			if err != nil {
				t.Fatalf("parseFlags(%v): %v", tc.args, err)
			}
			err = o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%v) = %v, want nil", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate(%v) = nil, want error mentioning %q", tc.args, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("validate(%v) = %q, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

// TestParseFlagsUnknown confirms unknown flags fail at parse time.
func TestParseFlagsUnknown(t *testing.T) {
	fs := []string{"-frobnicate"}
	if _, _, err := parseFlags(fs); err == nil {
		t.Fatalf("parseFlags(%v) = nil, want error", fs)
	}
}

// TestFaultConfigDisabled confirms -fault-rate 0 yields a disabled config
// regardless of the seed, preserving the fault-free default path.
func TestFaultConfigDisabled(t *testing.T) {
	o, _, err := parseFlags([]string{"-fault-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if fc := o.faultConfig(); fc.Enabled() {
		t.Fatalf("faultConfig() = %+v, want disabled at rate 0", fc)
	}
}

// TestRunSmall runs a tiny workload end to end through run().
func TestRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full replay")
	}
	o, _, err := parseFlags([]string{"-n", "4096", "-cores", "8", "-sp", "1", "-fault-rate", "1e-3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(o, &b); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(b.String(), "NMsort") {
		t.Errorf("output missing NMsort rows:\n%s", b.String())
	}
}
