// Command nmsim reproduces the paper's Table I: it records the GNU-sort
// baseline and NMsort on a scaled workload, replays the traces through the
// simulated two-level-memory node at 2X/4X/8X near-memory bandwidth, and
// prints the sim time and per-level access counts. With -fault-rate > 0
// the replays run under the deterministic fault environment of
// internal/fault (ECC corrections and retries in the far memory, degraded
// near channels, NoC retransmissions); rows whose replay returned
// uncorrected data are marked "!".
//
// With -telemetry-out (Chrome trace-event JSON, loadable in Perfetto)
// and/or -telemetry-csv (time-series dump), nmsim additionally replays the
// NMsort trace on the 4X node with a telemetry recorder sampling every
// -telemetry-epoch of simulated time, writes the export files, and appends
// the per-phase bandwidth breakdown. Telemetry output is bit-identical
// across runs: same flags, same bytes.
//
// Usage:
//
//	nmsim [-n keys] [-cores n] [-sp MiB] [-seed s] [-dma]
//	      [-fault-seed s] [-fault-rate r] [-max-events n] [-par n] [-shards n]
//	      [-telemetry-out f.trace.json] [-telemetry-csv f.csv] [-telemetry-epoch dur]
//	nmsim -server http://127.0.0.1:8080 [-job-timeout dur]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/units"
	"repro/internal/workload"
)

// Exit codes: 0 success, 1 fatal error, 2 usage, 3 completed with failed
// replays (marked in the table), 130 interrupted by SIGINT/SIGTERM (the
// partial table is still written).
const (
	exitFatal       = 1
	exitUsage       = 2
	exitFailedCells = 3
	exitInterrupted = 130
)

// options holds every flag value; validation is separated from flag
// parsing so bad combinations are rejected up front with a usage hint and
// a non-zero exit, and so the rules are testable without a process.
type options struct {
	n         int
	cores     int
	spMiB     int
	seed      uint64
	dma       bool
	format    string
	dist      string
	faultSeed uint64
	faultRate float64
	maxEvents uint64
	par       int
	shards    int

	telemetryOut   string
	telemetryCSV   string
	telemetryEpoch string

	cpuProfile string
	memProfile string

	traceCache string

	server     string
	jobTimeout time.Duration
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (options, *flag.FlagSet, error) {
	var o options
	fs := flag.NewFlagSet("nmsim", flag.ContinueOnError)
	fs.IntVar(&o.n, "n", 1<<20, "keys to sort")
	fs.IntVar(&o.cores, "cores", 256, "simulated cores (multiple of 4)")
	fs.IntVar(&o.spMiB, "sp", 2, "scratchpad capacity in MiB")
	fs.Uint64Var(&o.seed, "seed", 2015, "input seed")
	fs.BoolVar(&o.dma, "dma", false, "use the §VII DMA engines in NMsort")
	fs.StringVar(&o.format, "format", "text", "output format: text, csv, markdown")
	fs.StringVar(&o.dist, "dist", "uniform", "key distribution: uniform, zipf, sorted, reverse, fewkeys, gaussian, runblend")
	fs.Uint64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed (0 disables injection)")
	fs.Float64Var(&o.faultRate, "fault-rate", 0, "far-memory bit error rate per read, in [0, 1] (0 disables injection)")
	fs.Uint64Var(&o.maxEvents, "max-events", 0, "per-replay event budget (0 = generous default)")
	fs.IntVar(&o.par, "par", 0, "replay worker count; output is byte-identical at any value (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&o.shards, "shards", 0, "intra-replay event-queue shards; output is byte-identical at any value (0 = sequential engine, -1 = auto)")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&o.telemetryOut, "telemetry-out", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) of the NMsort replay to this file")
	fs.StringVar(&o.telemetryCSV, "telemetry-csv", "", "write the sampled time series of the NMsort replay to this CSV file")
	fs.StringVar(&o.telemetryEpoch, "telemetry-epoch", "10us", "telemetry sampling resolution in simulated time (e.g. 500ns, 10us)")
	fs.StringVar(&o.traceCache, "trace-cache", "", "directory caching recorded traces as columnar .nmt3 files across runs (byte-neutral)")
	fs.StringVar(&o.server, "server", "", "run Table I on this nmsimd daemon (e.g. http://127.0.0.1:8080) instead of in-process; the printed table is byte-identical")
	fs.DurationVar(&o.jobTimeout, "job-timeout", 0, "HTTP deadline for the -server request (0 = none)")
	err := fs.Parse(args)
	return o, fs, err
}

// telemetry reports whether any telemetry export was requested.
func (o options) telemetry() bool { return o.telemetryOut != "" || o.telemetryCSV != "" }

// validate rejects inconsistent flag combinations before any work is done.
func (o options) validate() error {
	switch {
	case o.n < 0:
		return fmt.Errorf("-n %d is negative", o.n)
	case o.cores <= 0 || o.cores%4 != 0:
		return fmt.Errorf("-cores %d must be a positive multiple of 4", o.cores)
	case o.spMiB <= 0:
		return fmt.Errorf("-sp %d MiB must be positive", o.spMiB)
	case o.faultRate < 0 || o.faultRate > 1:
		return fmt.Errorf("-fault-rate %v must be in [0, 1]", o.faultRate)
	case o.par < 0:
		return fmt.Errorf("-par %d is negative (0 means GOMAXPROCS)", o.par)
	case o.shards < -1:
		return fmt.Errorf("-shards %d is invalid (0 = sequential engine, -1 = auto)", o.shards)
	case o.jobTimeout < 0:
		return fmt.Errorf("-job-timeout %v is negative", o.jobTimeout)
	case o.jobTimeout > 0 && o.server == "":
		return fmt.Errorf("-job-timeout requires -server")
	}
	if o.server != "" {
		if err := serve.ValidateServerURL(o.server); err != nil {
			return err
		}
		switch {
		case o.telemetry():
			return fmt.Errorf("-telemetry-out/-telemetry-csv are local-only and conflict with -server (stream jobs via the API instead)")
		case o.traceCache != "":
			return fmt.Errorf("-trace-cache is local-only and conflicts with -server (the daemon keeps its own trace store)")
		case o.n == 0:
			return fmt.Errorf("-n 0 cannot travel to -server (the wire treats 0 as the default %d)", 1<<20)
		case o.seed == 0:
			return fmt.Errorf("-seed 0 cannot travel to -server (the wire treats 0 as the default 2015)")
		}
	}
	if _, err := report.ParseFormat(o.format); err != nil {
		return err
	}
	if _, err := workload.Parse(o.dist); err != nil {
		return err
	}
	if o.telemetry() {
		epoch, err := units.ParseTime(o.telemetryEpoch)
		if err != nil {
			return fmt.Errorf("-telemetry-epoch: %v", err)
		}
		if epoch <= 0 {
			return fmt.Errorf("-telemetry-epoch %s must be positive", o.telemetryEpoch)
		}
	}
	if o.faultRate > 0 {
		return o.faultConfig().Validate()
	}
	return nil
}

// faultConfig derives the injected fault environment from the flags.
func (o options) faultConfig() fault.Config {
	if o.faultRate == 0 {
		return fault.Config{}
	}
	return fault.Profile(o.faultSeed, o.faultRate)
}

// runRemote ships Table I to an nmsimd daemon and prints the returned
// table verbatim; the daemon runs the same Table1Faults code, so the
// bytes match the in-process path.
func runRemote(ctx context.Context, o options, w io.Writer) (int, error) {
	if o.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.jobTimeout)
		defer cancel()
	}
	c := &serve.Client{BaseURL: o.server}
	body, failed, err := c.Sweep(ctx, serve.SweepRequest{
		Exp:       "table1",
		N:         o.n,
		Seed:      o.seed,
		Cores:     o.cores,
		SPMiB:     o.spMiB,
		Format:    o.format,
		DMA:       o.dma,
		Dist:      o.dist,
		FaultSeed: o.faultSeed,
		FaultRate: o.faultRate,
		MaxEvents: o.maxEvents,
		Par:       o.par,
		Shards:    o.shards,
	})
	if err != nil {
		return 0, err
	}
	_, err = w.Write(body)
	return failed, err
}

// run executes the experiment under supervision and writes the table to w,
// including after cancellation, when the partially-filled table (with
// marked rows) is the graceful-shutdown flush. It returns the count of
// replays that did not complete.
func run(ctx context.Context, o options, w io.Writer) (int, error) {
	if o.server != "" {
		return runRemote(ctx, o, w)
	}
	f, _ := report.ParseFormat(o.format)
	d, _ := workload.Parse(o.dist)
	sup := &harness.Supervisor{Ctx: ctx}
	if o.traceCache != "" {
		rc, err := harness.NewDiskRecordCache(o.traceCache)
		if err != nil {
			return 0, err
		}
		sup.Records = rc
	}
	wl := harness.Workload{
		N:         o.n,
		Seed:      o.seed,
		Threads:   o.cores,
		SP:        units.Bytes(o.spMiB) * units.MiB,
		Dist:      d,
		MaxEvents: o.maxEvents,
		Par:       o.par,
		Shards:    o.shards,
		Sup:       sup,
	}
	t, err := harness.Table1Faults(wl, o.dma, o.faultConfig())
	if err != nil {
		return 0, err
	}
	failed := t.Failed()
	if f == report.Text {
		if _, err := fmt.Fprint(w, t.String()); err != nil {
			return failed, err
		}
	} else if err := t.Report().Render(w, f); err != nil {
		return failed, err
	}
	if o.telemetry() {
		return failed, runTelemetry(o, wl, w, f)
	}
	return failed, nil
}

// runTelemetry replays the NMsort trace on the 4X node with a telemetry
// recorder, writes the requested export files, and appends the per-phase
// breakdown to the report.
func runTelemetry(o options, wl harness.Workload, w io.Writer, f report.Format) error {
	epoch, _ := units.ParseTime(o.telemetryEpoch)
	alg := harness.AlgNMSort
	if o.dma {
		alg = harness.AlgNMSortDM
	}
	res, tel, err := harness.RunTimeline(alg, wl, 16, epoch, o.faultConfig())
	if err != nil {
		return err
	}
	if o.telemetryOut != "" {
		if err := writeFile(o.telemetryOut, tel.ExportChrome); err != nil {
			return err
		}
	}
	if o.telemetryCSV != "" {
		if err := writeFile(o.telemetryCSV, tel.WriteCSV); err != nil {
			return err
		}
	}
	pt := harness.PhaseTable(
		fmt.Sprintf("%s timeline, 4X near bandwidth, epoch %s", alg, epoch),
		res.SimTime, res.Phases)
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return pt.Render(w, f)
}

// writeFile writes one telemetry export, surfacing both write and close
// errors (a full disk shows up at close).
func writeFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return write(f)
}

func main() {
	o, fs, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(exitUsage) // the FlagSet already printed the error and usage
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "nmsim: %v\n", err)
		fs.Usage()
		os.Exit(exitUsage)
	}
	profiles, err := prof.Start(o.cpuProfile, o.memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nmsim: %v\n", err)
		os.Exit(exitFatal)
	}
	// Graceful shutdown: the first SIGINT/SIGTERM cancels the context, the
	// supervised replays stop at their next slice boundary, and run still
	// writes the partial table. A second signal kills the process the
	// default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	failed, runErr := run(ctx, o, os.Stdout)
	// Stop even on failure: a profile of the partial run is still useful.
	if err := profiles.Stop(); runErr == nil {
		runErr = err
	}
	switch {
	case runErr != nil:
		fmt.Fprintf(os.Stderr, "nmsim: %v\n", runErr)
		if ctx.Err() != nil && errors.Is(runErr, ctx.Err()) {
			// The error IS the interrupt (e.g. the telemetry replay was
			// cancelled mid-flight): report it under the interrupt code.
			os.Exit(exitInterrupted)
		}
		os.Exit(exitFatal)
	case ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "nmsim: interrupted (%v); partial table written, %d replays incomplete\n", ctx.Err(), failed)
		os.Exit(exitInterrupted)
	case failed > 0:
		fmt.Fprintf(os.Stderr, "nmsim: completed with %d failed replays (marked in the table)\n", failed)
		os.Exit(exitFailedCells)
	}
}
