// Command nmsim reproduces the paper's Table I: it records the GNU-sort
// baseline and NMsort on a scaled workload, replays the traces through the
// simulated two-level-memory node at 2X/4X/8X near-memory bandwidth, and
// prints the sim time and per-level access counts.
//
// Usage:
//
//	nmsim [-n keys] [-cores n] [-sp bytes] [-seed s] [-dma]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	var (
		n      = flag.Int("n", 1<<20, "keys to sort")
		cores  = flag.Int("cores", 256, "simulated cores (multiple of 4)")
		spMiB  = flag.Int("sp", 2, "scratchpad capacity in MiB")
		seed   = flag.Uint64("seed", 2015, "input seed")
		dma    = flag.Bool("dma", false, "use the §VII DMA engines in NMsort")
		format = flag.String("format", "text", "output format: text, csv, markdown")
		dist   = flag.String("dist", "uniform", "key distribution: uniform, zipf, sorted, reverse, fewkeys, gaussian, runblend")
	)
	flag.Parse()
	f, ferr := report.ParseFormat(*format)
	if ferr != nil {
		log.Fatalf("nmsim: %v", ferr)
	}

	d, derr := workload.Parse(*dist)
	if derr != nil {
		log.Fatalf("nmsim: %v", derr)
	}
	w := harness.Workload{
		N:       *n,
		Seed:    *seed,
		Threads: *cores,
		SP:      units.Bytes(*spMiB) * units.MiB,
		Dist:    d,
	}
	t, err := harness.Table1(w, *dma)
	if err != nil {
		log.Fatalf("nmsim: %v", err)
	}
	if f == report.Text {
		fmt.Fprint(os.Stdout, t.String())
		return
	}
	if err := t.Report().Render(os.Stdout, f); err != nil {
		log.Fatalf("nmsim: %v", err)
	}
}
