package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// testTrace records a small but representative trace: both windows,
// compute gaps, atomics, DMA, and barriers across three threads.
func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder(3, trace.L1Geometry{
		Capacity: 4 * 1024, Ways: 4, LineSize: 64,
	}, trace.DefaultCosts())
	for tid := 0; tid < 3; tid++ {
		tp := rec.Thread(tid)
		for i := 0; i < 300; i++ {
			tp.Compute(int64(100 + i%7))
			tp.Load(addr.FarBase+addr.Addr(tid<<20+i*64), 8)
			if i%3 == 0 {
				tp.Store(addr.NearBase+addr.Addr(tid<<16+(i%64)*64), 8)
			}
			if i%100 == 50 {
				tp.Atomic(addr.NearBase + addr.Addr(tid<<16))
				tp.DMA(addr.FarBase+addr.Addr(tid<<20), addr.NearBase+addr.Addr(tid<<16), 4096)
				tp.DMAWait()
				tp.Barrier()
			}
		}
		tp.Barrier()
	}
	return rec.Finish()
}

// writeV2 serializes tr as a v2 stream at path and returns the bytes.
func writeV2(t *testing.T, tr *trace.Trace, path string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestConvertRoundTrip pins the satellite contract: converting a trace
// between serializations and back reproduces the input file byte for
// byte, in both directions.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	v2a := filepath.Join(dir, "a.nmt")
	v3a := filepath.Join(dir, "a.nmt3")
	v2b := filepath.Join(dir, "b.nmt")
	v3b := filepath.Join(dir, "b.nmt3")

	orig := writeV2(t, testTrace(t), v2a)

	// v2 -> v3 -> v2 must reproduce the v2 bytes.
	if err := convertFile(v2a, v3a, ""); err != nil {
		t.Fatalf("convert v2->v3: %v", err)
	}
	if err := convertFile(v3a, v2b, ""); err != nil {
		t.Fatalf("convert v3->v2: %v", err)
	}
	back, err := os.ReadFile(v2b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, back) {
		t.Fatalf("v2 -> v3 -> v2 changed the bytes: %d vs %d", len(orig), len(back))
	}

	// v3 -> v2 -> v3 must reproduce the v3 bytes.
	v3orig, err := os.ReadFile(v3a)
	if err != nil {
		t.Fatal(err)
	}
	if err := convertFile(v2b, v3b, "v3"); err != nil {
		t.Fatalf("convert v2->v3 (explicit): %v", err)
	}
	v3back, err := os.ReadFile(v3b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v3orig, v3back) {
		t.Fatalf("v3 -> v2 -> v3 changed the bytes: %d vs %d", len(v3orig), len(v3back))
	}

	// Digests agree across all four files.
	var digests []uint64
	for _, p := range []string{v2a, v3a, v2b, v3b} {
		src, err := trace.Load(p)
		if err != nil {
			t.Fatalf("Load %s: %v", p, err)
		}
		d, err := src.Digest()
		if err != nil {
			t.Fatalf("Digest %s: %v", p, err)
		}
		if col, ok := src.(*trace.Columnar); ok {
			col.Close()
		}
		digests = append(digests, d)
	}
	for _, d := range digests[1:] {
		if d != digests[0] {
			t.Fatalf("digest mismatch across conversions: %x", digests)
		}
	}
}

// TestConvertRejectsInvalid: conversion must refuse a trace that fails
// validation rather than propagate it into the other serialization.
func TestConvertRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bad.nmt")
	// An unterminated stream (no OpEnd) fails Validate.
	bad := &trace.Trace{
		Streams: [][]trace.Op{{{Kind: trace.OpAccess, Addr: uint64(addr.FarBase)}}},
		Costs:   trace.DefaultCosts(),
		L1:      trace.L1Geometry{Capacity: 4 * 1024, Ways: 4, LineSize: 64},
	}
	writeV2(t, bad, in)
	if err := convertFile(in, filepath.Join(dir, "bad.nmt3"), ""); err == nil {
		t.Fatal("convertFile accepted an invalid trace")
	}
}

// TestStatFile smoke-tests the stat surface on both serializations.
func TestStatFile(t *testing.T) {
	dir := t.TempDir()
	v2p := filepath.Join(dir, "a.nmt")
	v3p := filepath.Join(dir, "a.nmt3")
	writeV2(t, testTrace(t), v2p)
	if err := convertFile(v2p, v3p, ""); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := statFile(&out, v2p); err != nil {
		t.Fatalf("statFile v2: %v", err)
	}
	s := out.String()
	for _, want := range []string{"serialization: v2", "digest:", "threads:       3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("v2 stat output missing %q:\n%s", want, s)
		}
	}

	out.Reset()
	if err := statFile(&out, v3p); err != nil {
		t.Fatalf("statFile v3: %v", err)
	}
	s = out.String()
	for _, want := range []string{"serialization: v3", "file size:", "sections:", "tags", "addrs"} {
		if !strings.Contains(s, want) {
			t.Fatalf("v3 stat output missing %q:\n%s", want, s)
		}
	}
}
