// Command nmtrace separates the two halves of the co-design pipeline:
// record an algorithm's memory trace to a file once (expensive: native
// execution under instrumentation), then replay or inspect it as many
// times as needed.
//
//	nmtrace record  -alg nmsort -n 1048576 -cores 256 -sp 4 -o nmsort.nmt
//	nmtrace convert -i nmsort.nmt -o nmsort.nmt3
//	nmtrace replay  -i nmsort.nmt3 -near 16
//	nmtrace info    -i nmsort.nmt3
//	nmtrace stat    -i nmsort.nmt3
//
// Trace files come in two serializations sharing one content digest: the
// row-oriented v2 stream (.nmt) and the columnar v3 layout (.nmt3), which
// replays straight from the file without decoding into memory. Every
// subcommand sniffs the format from the file, not the extension.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/addr"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "convert":
		convert(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  nmtrace record  -alg {gnusort|nmsort|nmsort-dma|nmsort-scatter} [-n keys] [-cores n] [-sp MiB] [-seed s] -o file
  nmtrace convert -i file -o file [-to v2|v3]
  nmtrace replay  -i file [-cores n] [-near channels] [-sp MiB]
  nmtrace info    -i file
  nmtrace stat    -i file
`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	alg := fs.String("alg", "nmsort", "algorithm to record")
	n := fs.Int("n", 1<<20, "keys to sort")
	cores := fs.Int("cores", 256, "logical threads")
	spMiB := fs.Int("sp", 4, "scratchpad capacity in MiB")
	seed := fs.Uint64("seed", 2015, "input seed")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("nmtrace record: -o is required")
	}

	w := harness.Workload{N: *n, Seed: *seed, Threads: *cores,
		SP: units.Bytes(*spMiB) * units.MiB}
	res, err := harness.Record(harness.Algorithm(*alg), w)
	if err != nil {
		log.Fatalf("nmtrace record: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("nmtrace record: %v", err)
	}
	defer f.Close()
	nBytes, err := res.Trace.WriteTo(f)
	if err != nil {
		log.Fatalf("nmtrace record: writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("nmtrace record: %v", err)
	}
	fmt.Printf("recorded %s: %d threads, %d ops, %d bytes (%.1f bits/op)\n",
		*alg, len(res.Trace.Streams), res.Trace.Ops(), nBytes,
		8*float64(nBytes)/float64(res.Trace.Ops()))
	c := res.Counts
	fmt.Printf("L1-filtered lines: far %d (r %d / w %d), near %d (r %d / w %d), atomics %d\n",
		c.Far(), c.FarReads, c.FarWrites, c.Near(), c.NearReads, c.NearWrites, c.Atomics)
}

// load opens a trace file in either serialization (sniffed by magic).
func load(path string) trace.Source {
	src, err := trace.Load(path)
	if err != nil {
		log.Fatalf("nmtrace: %v", err)
	}
	return src
}

// materialize decodes a source into a *Trace (columnar files decode on
// demand; v2 files already arrive decoded).
func materialize(src trace.Source) *trace.Trace {
	switch s := src.(type) {
	case *trace.Trace:
		return s
	case *trace.Columnar:
		tr, err := s.Decode()
		if err != nil {
			log.Fatalf("nmtrace: decoding columnar trace: %v", err)
		}
		return tr
	default:
		log.Fatalf("nmtrace: unknown trace source %T", src)
		return nil
	}
}

func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	out := fs.String("o", "", "output trace file (required)")
	to := fs.String("to", "", "target serialization: v2 or v3 (default: from the -o extension, .nmt3 = v3)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		log.Fatal("nmtrace convert: -i and -o are required")
	}
	if err := convertFile(*in, *out, *to); err != nil {
		log.Fatalf("nmtrace convert: %v", err)
	}
}

// convertFile rewrites the trace at in as serialization to ("v2" or "v3";
// "" infers v3 from a .nmt3 output extension, v2 otherwise) at out.
// Conversion is lossless and digest-preserving in both directions:
// v2 -> v3 -> v2 and v3 -> v2 -> v3 both reproduce the input bytes.
func convertFile(in, out, to string) error {
	if to == "" {
		to = "v2"
		if strings.HasSuffix(out, ".nmt3") {
			to = "v3"
		}
	}
	src, err := trace.Load(in)
	if err != nil {
		return err
	}
	if err := src.Validate(); err != nil {
		return fmt.Errorf("invalid trace %s: %w", in, err)
	}
	var data []byte
	switch to {
	case "v3":
		if data, err = trace.EncodeColumnar(src); err != nil {
			return err
		}
	case "v2":
		var buf bytes.Buffer
		tr, ok := src.(*trace.Trace)
		if !ok {
			if tr, err = src.(*trace.Columnar).Decode(); err != nil {
				return err
			}
		}
		if _, err = tr.WriteTo(&buf); err != nil {
			return err
		}
		data = buf.Bytes()
	default:
		return fmt.Errorf("unknown target serialization %q (want v2 or v3)", to)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	d, err := src.Digest()
	if err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s (%s): %d threads, %d ops, %d bytes, digest %016x\n",
		in, out, to, src.Threads(), src.Ops(), len(data), d)
	return nil
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("nmtrace stat: -i is required")
	}
	if err := statFile(os.Stdout, *in); err != nil {
		log.Fatalf("nmtrace stat: %v", err)
	}
}

// statFile prints the physical layout of a trace file: serialization,
// digest, per-thread op counts, and (for columnar files) every column
// segment with its file offset and size.
func statFile(w io.Writer, path string) error {
	src, err := trace.Load(path)
	if err != nil {
		return err
	}
	d, err := src.Digest()
	if err != nil {
		return err
	}
	version := "v2 (row stream)"
	if _, ok := src.(*trace.Columnar); ok {
		version = "v3 (columnar)"
	}
	fmt.Fprintf(w, "serialization: %s\n", version)
	fmt.Fprintf(w, "digest:        %016x\n", d)
	fmt.Fprintf(w, "threads:       %d\n", src.Threads())
	fmt.Fprintf(w, "total ops:     %d\n", src.Ops())
	for t := 0; t < src.Threads(); t++ {
		fmt.Fprintf(w, "  thread %4d: %d ops\n", t, src.ThreadOps(t))
	}
	col, ok := src.(*trace.Columnar)
	if !ok {
		return nil
	}
	fmt.Fprintf(w, "file size:     %d bytes\n", col.Size())
	byCol := make(map[string]int64)
	for _, s := range col.Sections() {
		byCol[s.Column] += s.Bytes
	}
	fmt.Fprintf(w, "column bytes (all threads):\n")
	for _, s := range col.Sections()[:minInt(5, len(col.Sections()))] {
		fmt.Fprintf(w, "  %-6s %12d\n", s.Column, byCol[s.Column])
	}
	fmt.Fprintf(w, "sections:\n")
	for _, s := range col.Sections() {
		fmt.Fprintf(w, "  thread %4d %-6s off %10d  %10d bytes  (shift %d)\n",
			s.Thread, s.Column, s.Offset, s.Bytes, col.Shift(s.Thread))
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	cores := fs.Int("cores", 0, "simulated cores (0 = trace thread count rounded up to x4)")
	near := fs.Int("near", 16, "near-memory channels (8/16/32 = 2X/4X/8X)")
	spMiB := fs.Int("sp", 4, "scratchpad capacity in MiB")
	phases := fs.Int("phases", 0, "print the N longest inter-barrier phases")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("nmtrace replay: -i is required")
	}
	tr := load(*in)

	c := *cores
	if c == 0 {
		c = (tr.Threads() + 3) / 4 * 4
	}
	cfg := harness.NodeFor(c, *near, units.Bytes(*spMiB)*units.MiB)
	res, err := machine.Run(cfg, tr)
	if err != nil {
		log.Fatalf("nmtrace replay: %v", err)
	}
	fmt.Printf("node: %d cores, near %dX (%v), far %v\n",
		cfg.Cores, *near/4, cfg.Near.TotalBandwidth(), cfg.Far.TotalBandwidth())
	fmt.Printf("sim time:            %v\n", res.SimTime)
	fmt.Printf("scratchpad accesses: %d\n", res.NearAccesses)
	fmt.Printf("DRAM accesses:       %d (row-hit rate %.1f%%)\n",
		res.FarAccesses, 100*res.FarStats.RowHitRate())
	fmt.Printf("L2: %.1f%% miss rate; utilization far %.1f%% near %.1f%% noc %.1f%%\n",
		100*res.L2.MissRate(), 100*res.FarUtilization,
		100*res.NearUtilization, 100*res.NoCUtilization)
	fmt.Printf("events: %d, barriers: %d\n", res.Events, len(res.BarrierTimes))

	if *phases > 0 && len(res.BarrierTimes) > 0 {
		type span struct {
			idx int
			d   units.Time
		}
		spans := make([]span, 0, len(res.BarrierTimes))
		prev := units.Time(0)
		for i, bt := range res.BarrierTimes {
			spans = append(spans, span{idx: i, d: bt - prev})
			prev = bt
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].d > spans[b].d })
		if *phases < len(spans) {
			spans = spans[:*phases]
		}
		fmt.Printf("\nlongest inter-barrier phases:\n")
		for _, sp := range spans {
			fmt.Printf("  barrier %4d: %12s (%.1f%% of total)\n",
				sp.idx, sp.d, 100*float64(sp.d)/float64(res.SimTime))
		}
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("nmtrace info: -i is required")
	}
	tr := materialize(load(*in))
	if err := tr.Validate(); err != nil {
		log.Fatalf("nmtrace info: invalid trace: %v", err)
	}

	var kinds [8]uint64
	var gaps uint64
	minOps, maxOps := int(^uint(0)>>1), 0
	for _, s := range tr.Streams {
		if len(s) < minOps {
			minOps = len(s)
		}
		if len(s) > maxOps {
			maxOps = len(s)
		}
		for _, op := range s {
			kinds[op.Kind]++
			gaps += uint64(op.Gap)
		}
	}
	c := tr.Count()
	fmt.Printf("threads:      %d (ops per thread %d..%d)\n", len(tr.Streams), minOps, maxOps)
	fmt.Printf("total ops:    %d\n", tr.Ops())
	fmt.Printf("  accesses:   %d (far %d, near %d)\n", kinds[trace.OpAccess], c.Far(), c.Near())
	fmt.Printf("  atomics:    %d\n", kinds[trace.OpAtomic])
	fmt.Printf("  barriers:   %d (%d per thread)\n", kinds[trace.OpBarrier],
		kinds[trace.OpBarrier]/uint64(len(tr.Streams)))
	fmt.Printf("  dma:        %d (+%d waits)\n", kinds[trace.OpDMA], kinds[trace.OpDMAWait])
	fmt.Printf("compute:      %d core cycles total\n", gaps)
	fmt.Printf("L1 geometry:  %v %d-way, %vB lines\n", tr.L1.Capacity, tr.L1.Ways, int64(tr.L1.LineSize))
	fmt.Printf("costs:        issue %d, L1 hit %d, compare %d, atomic %d cycles\n",
		tr.Costs.IssueCycles, tr.Costs.L1HitCycles, tr.Costs.CompareCycles, tr.Costs.AtomicCycles)
	_ = addr.FarBase
}
