// Command nmtrace separates the two halves of the co-design pipeline:
// record an algorithm's memory trace to a file once (expensive: native
// execution under instrumentation), then replay or inspect it as many
// times as needed.
//
//	nmtrace record -alg nmsort -n 1048576 -cores 256 -sp 4 -o nmsort.trc
//	nmtrace replay -i nmsort.trc -near 16
//	nmtrace info   -i nmsort.trc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/addr"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  nmtrace record -alg {gnusort|nmsort|nmsort-dma|nmsort-scatter} [-n keys] [-cores n] [-sp MiB] [-seed s] -o file
  nmtrace replay -i file [-cores n] [-near channels] [-sp MiB]
  nmtrace info   -i file
`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	alg := fs.String("alg", "nmsort", "algorithm to record")
	n := fs.Int("n", 1<<20, "keys to sort")
	cores := fs.Int("cores", 256, "logical threads")
	spMiB := fs.Int("sp", 4, "scratchpad capacity in MiB")
	seed := fs.Uint64("seed", 2015, "input seed")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("nmtrace record: -o is required")
	}

	w := harness.Workload{N: *n, Seed: *seed, Threads: *cores,
		SP: units.Bytes(*spMiB) * units.MiB}
	res, err := harness.Record(harness.Algorithm(*alg), w)
	if err != nil {
		log.Fatalf("nmtrace record: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("nmtrace record: %v", err)
	}
	defer f.Close()
	nBytes, err := res.Trace.WriteTo(f)
	if err != nil {
		log.Fatalf("nmtrace record: writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("nmtrace record: %v", err)
	}
	fmt.Printf("recorded %s: %d threads, %d ops, %d bytes (%.1f bits/op)\n",
		*alg, len(res.Trace.Streams), res.Trace.Ops(), nBytes,
		8*float64(nBytes)/float64(res.Trace.Ops()))
	c := res.Counts
	fmt.Printf("L1-filtered lines: far %d (r %d / w %d), near %d (r %d / w %d), atomics %d\n",
		c.Far(), c.FarReads, c.FarWrites, c.Near(), c.NearReads, c.NearWrites, c.Atomics)
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("nmtrace: %v", err)
	}
	defer f.Close()
	tr, err := trace.ReadTrace(f)
	if err != nil {
		log.Fatalf("nmtrace: %v", err)
	}
	return tr
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	cores := fs.Int("cores", 0, "simulated cores (0 = trace thread count rounded up to x4)")
	near := fs.Int("near", 16, "near-memory channels (8/16/32 = 2X/4X/8X)")
	spMiB := fs.Int("sp", 4, "scratchpad capacity in MiB")
	phases := fs.Int("phases", 0, "print the N longest inter-barrier phases")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("nmtrace replay: -i is required")
	}
	tr := load(*in)

	c := *cores
	if c == 0 {
		c = (len(tr.Streams) + 3) / 4 * 4
	}
	cfg := harness.NodeFor(c, *near, units.Bytes(*spMiB)*units.MiB)
	res, err := machine.Run(cfg, tr)
	if err != nil {
		log.Fatalf("nmtrace replay: %v", err)
	}
	fmt.Printf("node: %d cores, near %dX (%v), far %v\n",
		cfg.Cores, *near/4, cfg.Near.TotalBandwidth(), cfg.Far.TotalBandwidth())
	fmt.Printf("sim time:            %v\n", res.SimTime)
	fmt.Printf("scratchpad accesses: %d\n", res.NearAccesses)
	fmt.Printf("DRAM accesses:       %d (row-hit rate %.1f%%)\n",
		res.FarAccesses, 100*res.FarStats.RowHitRate())
	fmt.Printf("L2: %.1f%% miss rate; utilization far %.1f%% near %.1f%% noc %.1f%%\n",
		100*res.L2.MissRate(), 100*res.FarUtilization,
		100*res.NearUtilization, 100*res.NoCUtilization)
	fmt.Printf("events: %d, barriers: %d\n", res.Events, len(res.BarrierTimes))

	if *phases > 0 && len(res.BarrierTimes) > 0 {
		type span struct {
			idx int
			d   units.Time
		}
		spans := make([]span, 0, len(res.BarrierTimes))
		prev := units.Time(0)
		for i, bt := range res.BarrierTimes {
			spans = append(spans, span{idx: i, d: bt - prev})
			prev = bt
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].d > spans[b].d })
		if *phases < len(spans) {
			spans = spans[:*phases]
		}
		fmt.Printf("\nlongest inter-barrier phases:\n")
		for _, sp := range spans {
			fmt.Printf("  barrier %4d: %12s (%.1f%% of total)\n",
				sp.idx, sp.d, 100*float64(sp.d)/float64(res.SimTime))
		}
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("nmtrace info: -i is required")
	}
	tr := load(*in)
	if err := tr.Validate(); err != nil {
		log.Fatalf("nmtrace info: invalid trace: %v", err)
	}

	var kinds [8]uint64
	var gaps uint64
	minOps, maxOps := int(^uint(0)>>1), 0
	for _, s := range tr.Streams {
		if len(s) < minOps {
			minOps = len(s)
		}
		if len(s) > maxOps {
			maxOps = len(s)
		}
		for _, op := range s {
			kinds[op.Kind]++
			gaps += uint64(op.Gap)
		}
	}
	c := tr.Count()
	fmt.Printf("threads:      %d (ops per thread %d..%d)\n", len(tr.Streams), minOps, maxOps)
	fmt.Printf("total ops:    %d\n", tr.Ops())
	fmt.Printf("  accesses:   %d (far %d, near %d)\n", kinds[trace.OpAccess], c.Far(), c.Near())
	fmt.Printf("  atomics:    %d\n", kinds[trace.OpAtomic])
	fmt.Printf("  barriers:   %d (%d per thread)\n", kinds[trace.OpBarrier],
		kinds[trace.OpBarrier]/uint64(len(tr.Streams)))
	fmt.Printf("  dma:        %d (+%d waits)\n", kinds[trace.OpDMA], kinds[trace.OpDMAWait])
	fmt.Printf("compute:      %d core cycles total\n", gaps)
	fmt.Printf("L1 geometry:  %v %d-way, %vB lines\n", tr.L1.Capacity, tr.L1.Ways, int64(tr.L1.LineSize))
	fmt.Printf("costs:        issue %d, L1 hit %d, compare %d, atomic %d cycles\n",
		tr.Costs.IssueCycles, tr.Costs.L1HitCycles, tr.Costs.CompareCycles, tr.Costs.AtomicCycles)
	_ = addr.FarBase
}
