// Kmeans demonstrates the paper's §VII extension: k-means clustering that
// pins its point set in the scratchpad and reruns every Lloyd iteration
// against near memory, cutting far-memory traffic by roughly the iteration
// count — the mechanism behind "all our k-means algorithms run a factor of
// ρ faster using scratchpad".
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	const (
		nPoints = 1 << 14
		dims    = 8
		k       = 16
	)

	run := func(scratch bool) (kmeans.Result, trace.LevelCounts) {
		rec := trace.NewRecorder(8, trace.L1Geometry{Capacity: 2 * units.KiB, LineSize: 64, Ways: 2},
			trace.DefaultCosts())
		env := core.NewEnv(8, 2*units.MiB, rec, 5)
		pts := kmeans.Points{V: env.AllocFar(nPoints * dims), Dims: dims}
		kmeans.GenerateClustered(pts, k, 31)
		cfg := kmeans.DefaultConfig(k, dims)
		cfg.MaxIters = 10
		var res kmeans.Result
		if scratch {
			res = kmeans.Scratchpad(env, pts, cfg)
		} else {
			res = kmeans.Far(env, pts, cfg)
		}
		return res, rec.Finish().Count()
	}

	far, fc := run(false)
	sp, sc := run(true)
	if far.Iters != sp.Iters {
		log.Fatalf("variants diverged: %d vs %d iterations", far.Iters, sp.Iters)
	}

	fmt.Printf("k-means: %d points, %d dims, k=%d, %d iterations (converged=%v)\n\n",
		nPoints, dims, k, far.Iters, far.Converged)
	fmt.Printf("%-22s %14s %14s\n", "variant", "far lines", "near lines")
	fmt.Printf("%-22s %14d %14d\n", "DRAM-only baseline", fc.Far(), fc.Near())
	fmt.Printf("%-22s %14d %14d\n", "scratchpad-pinned", sc.Far(), sc.Near())
	fmt.Printf("\nfar-traffic reduction: %.1fx (iterating against near memory)\n",
		float64(fc.Far())/float64(sc.Far()))
	fmt.Printf("with a rho-times-faster near memory, iteration time drops by ~rho\n")
}
