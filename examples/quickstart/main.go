// Quickstart: sort 64-bit keys with NMsort, the paper's two-level
// main-memory sorting algorithm, in pure (untraced) mode — the fastest way
// to see the public API end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)

	// A node with 8 worker threads and a 1 MiB scratchpad. Passing a nil
	// recorder runs the algorithms natively with zero instrumentation.
	env := core.NewEnv(8, units.MiB, nil, 42)

	// Allocate the input in (simulated) far memory and fill it with the
	// paper's workload: uniform random 64-bit integers.
	const n = 1 << 18
	a := env.AllocFar(n)
	xrand.New(7).Keys(a.D)
	before := core.Checksum(a.D)

	// Sort. NMsort streams scratchpad-sized chunks through near memory
	// (Phase 1), then merges bucket batches (Phase 2).
	stats := core.NMSort(env, a, core.NMOptions{})

	if !core.IsSorted(a.D) || core.Checksum(a.D) != before {
		log.Fatal("quickstart: sort failed verification")
	}
	fmt.Printf("sorted %d keys\n", n)
	fmt.Printf("  chunks:            %d x %d elements\n", stats.Chunks, stats.ChunkElems)
	fmt.Printf("  buckets:           %d\n", stats.Buckets)
	fmt.Printf("  phase-2 batches:   %d (largest %d elements)\n", stats.Batches, stats.MaxBatchElems)
	fmt.Printf("  metadata overhead: %.2f%% of input\n", 100*stats.MetadataOverhead())
	fmt.Printf("  scratchpad peak:   %d bytes of %v\n", stats.SPPeakBytes, env.M)

	// The same API runs the baseline the paper compares against.
	b := env.AllocFar(n)
	xrand.New(7).Keys(b.D)
	core.GNUSort(env, b)
	fmt.Printf("baseline GNU-style sort agrees: %v\n", core.IsSorted(b.D))
}
