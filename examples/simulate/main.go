// Simulate runs the full record-and-replay pipeline on a small workload:
// it records NMsort's memory behaviour once (the Ariel role), replays the
// identical trace on simulated nodes with 2X, 4X, and 8X near-memory
// bandwidth (the SST role), and prints a Table-I-style report — the whole
// co-design loop of the paper in one command.
//
//	go run ./examples/simulate
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	// 128 cores put the node in the memory-bound regime where near-memory
	// bandwidth matters (claim C2); at low core counts the sweep would be
	// flat.
	w := harness.Workload{N: 1 << 18, Seed: 1, Threads: 128, SP: 2 * units.MiB}

	fmt.Printf("recording NMsort on %d keys with %d threads...\n", w.N, w.Threads)
	rec, err := harness.Record(harness.AlgNMSort, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trace: %d ops, far %d / near %d L1-filtered lines, sorted=%v\n\n",
		rec.Trace.Ops(), rec.Counts.Far(), rec.Counts.Near(), rec.Sorted)

	fmt.Printf("replaying the identical trace on three machines:\n\n")
	fmt.Printf("%8s %14s %14s %14s %8s\n", "near BW", "sim time", "near acc", "far acc", "nearU")
	var base machine.Result
	for i, ch := range []int{8, 16, 32} {
		cfg := harness.NodeFor(w.Threads, ch, w.SP)
		res, err := machine.Run(cfg, rec.Trace)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		fmt.Printf("%7.0fX %14s %14d %14d %7.1f%%   (%.3fx vs 2X)\n",
			cfg.BandwidthExpansion(), res.SimTime, res.NearAccesses, res.FarAccesses,
			100*res.NearUtilization, res.SimTime.Seconds()/base.SimTime.Seconds())
	}
	fmt.Printf("\naccess counts are identical across machines (same trace);\n")
	fmt.Printf("only the timing responds to the added near-memory channels.\n")
}
