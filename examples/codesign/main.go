// Codesign closes the paper's loop from measurement to hardware guidance:
// it records both sorting algorithms, measures their traffic profile on
// the simulated node, feeds the profile into the bandwidth-bound model,
// and prints the numbers the paper's conclusion says should "guide vendors
// in the design of future scratchpad-based systems" — the minimum useful
// bandwidth expansion ρ* and the core count where sorting turns
// memory-bound.
//
//	go run ./examples/codesign
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	w := harness.Workload{N: 1 << 17, Seed: 7, Threads: 64, SP: units.MiB}

	fmt.Printf("measuring traffic profiles on the simulated node...\n")
	gnu, err := harness.Record(harness.AlgGNUSort, w)
	if err != nil {
		log.Fatal(err)
	}
	nm, err := harness.Record(harness.AlgNMSort, w)
	if err != nil {
		log.Fatal(err)
	}
	gres, err := machine.Run(harness.NodeFor(w.Threads, 8, w.SP), gnu.Trace)
	if err != nil {
		log.Fatal(err)
	}
	nres, err := machine.Run(harness.NodeFor(w.Threads, 8, w.SP), nm.Trace)
	if err != nil {
		log.Fatal(err)
	}

	profile := model.TrafficProfile{
		BaseFar: float64(gres.FarAccesses),
		NMFar:   float64(nres.FarAccesses),
		NMNear:  float64(nres.NearAccesses),
	}
	fmt.Printf("\nmeasured device accesses (N=%d keys, %d cores):\n", w.N, w.Threads)
	fmt.Printf("  baseline far:  %.0f\n", profile.BaseFar)
	fmt.Printf("  NMsort far:    %.0f\n", profile.NMFar)
	fmt.Printf("  NMsort near:   %.0f\n", profile.NMNear)
	if !profile.Valid() {
		log.Fatal("profile cannot favor the scratchpad; nothing to design for")
	}

	fmt.Printf("\nbandwidth-bound co-design guidance from this profile:\n")
	fmt.Printf("  minimum useful expansion rho* = %.2f\n", profile.MinRho())
	for _, rho := range []float64{2, 4, 8} {
		fmt.Printf("  predicted NMsort speedup at %.0fX = %.2fx\n", rho, profile.Speedup(rho))
	}
	fmt.Printf("  ceiling as rho -> inf         = %.2fx\n", profile.AsymptoticSpeedup())

	// And the compute side: when does the node become memory-bound at all?
	min := model.MinCoresForMemoryBound(1.7e9, 16, 8e9, 8, 1e6)
	fmt.Printf("\nSection V-A: sorting is memory-bandwidth bound from ~%d cores up;\n", min)
	fmt.Printf("below that, extra near-memory bandwidth is wasted on this workload.\n")
}
