// Blocktransfers validates Theorem 6 empirically: it runs the sequential
// scratchpad sort of Section III under instrumentation across a range of
// input sizes and compares the measured far- and near-memory line
// transfers against the model's Θ((N/B)·log_{M/B}(N/B)) and
// Θ((N/ρB)·log_{Z/ρB}(N/B)) predictions (experiment M1 in DESIGN.md).
//
//	go run ./examples/blocktransfers
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	const (
		sp  = 64 * units.KiB // scratchpad M
		l1  = 2 * units.KiB  // record-time private cache (the model's Z)
		rho = 4.0
	)

	fmt.Printf("Sequential scratchpad sort: measured line transfers vs Theorem 6\n")
	fmt.Printf("M=%v, Z=%v, B=64B, rho=%.0f\n\n", sp, l1, rho)
	fmt.Printf("%10s %12s %12s %10s | %12s %12s\n",
		"N", "far lines", "near lines", "scans", "model far", "model near")

	for exp := 14; exp <= 19; exp++ {
		n := 1 << exp
		rec := trace.NewRecorder(1, trace.L1Geometry{Capacity: l1, LineSize: 64, Ways: 2},
			trace.DefaultCosts())
		env := core.NewEnv(1, sp, rec, 99)
		a := env.AllocFar(n)
		xrand.New(uint64(n)).Keys(a.D)
		st := core.SeqScratchpadSort(env, a, core.SeqOptions{})
		if !core.IsSorted(a.D) {
			log.Fatalf("N=%d: sort failed", n)
		}
		c := rec.Finish().Count()

		p := model.Params{
			N: int64(n), Elem: 8, B: 64, Rho: rho,
			M: sp, Z: l1, P: 1, PPrime: 1,
		}
		pred := p.ScratchpadSort()
		// The model counts B-sized far blocks and ρB-sized near blocks;
		// our counters are 64-byte lines, so near lines = ρ x near blocks.
		fmt.Printf("%10d %12d %12d %10d | %12.0f %12.0f\n",
			n, c.Far(), c.Near(), st.Scans,
			pred.DRAMBlocks, pred.SPBlocks*rho)
	}

	fmt.Printf("\nThe measured counts should track the model columns within a\n")
	fmt.Printf("small constant factor, with matching growth in N (the paper's\n")
	fmt.Printf("\"memory access counts from simulations corroborate predicted\n")
	fmt.Printf("performance\").\n")
}
