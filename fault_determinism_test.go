package repro_test

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/units"
)

// goldenWorkload is the fixed anchor workload shared by the golden and
// fault-determinism tests below.
func goldenWorkload() harness.Workload {
	return harness.Workload{N: 1 << 13, Seed: 7, Threads: 8, SP: 64 * units.KiB}
}

// goldenTable1 is the SHA-256 of Table1(goldenWorkload, dma=false).String()
// captured on the commit immediately before the fault layer landed. The
// fault-injection code is threaded through every device's timing path, so
// this digest moving means the disabled fault layer (seed 0) perturbed a
// fault-free simulation — the one thing it must never do.
const goldenTable1 = "ad1a9cdeb60699fe31b478ccb4df8f3e250b5c4dbdffd0da445e0135d28c872b"

func table1Digest(t *testing.T, fc fault.Config) string {
	t.Helper()
	tb, err := harness.Table1Faults(goldenWorkload(), false, fc)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(tb.String()))
	return hex.EncodeToString(sum[:])
}

// TestFaultSeedZeroGolden pins the regression anchor: with no fault config,
// and with a disabled (Seed == 0) fault config at maximal rates, Table I is
// byte-identical to its pre-fault-layer output.
func TestFaultSeedZeroGolden(t *testing.T) {
	if got := table1Digest(t, fault.Config{}); got != goldenTable1 {
		t.Errorf("Table1 with zero fault config = %s, want golden %s", got, goldenTable1)
	}
	// Seed 0 disables injection no matter how hostile the rates are.
	if got := table1Digest(t, fault.Profile(0, 1)); got != goldenTable1 {
		t.Errorf("Table1 with seed-0 fault config = %s, want golden %s", got, goldenTable1)
	}
}

// faultSweepDigest renders a full fault sweep (both algorithms, several
// rates, every fault counter) and hashes it.
func faultSweepDigest(t *testing.T) string {
	t.Helper()
	s, err := harness.RunFaultSweep(goldenWorkload(), 16, 99, []float64{1e-3, 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(s.String()))
	return hex.EncodeToString(sum[:])
}

// TestFaultSweepDeterminism extends the determinism guarantee to the fault
// layer: the same (trace, config, fault seed) yields a bit-identical fault
// sweep across repeated runs and across GOMAXPROCS settings, and a
// different fault seed yields a different schedule.
func TestFaultSweepDeterminism(t *testing.T) {
	d1 := faultSweepDigest(t)
	d2 := faultSweepDigest(t)
	if d1 != d2 {
		t.Errorf("fault sweep differs between identical runs: %s vs %s", d1, d2)
	}

	old := runtime.GOMAXPROCS(0)
	alt := 1
	if old == 1 {
		alt = 2
	}
	runtime.GOMAXPROCS(alt)
	defer runtime.GOMAXPROCS(old)
	d3 := faultSweepDigest(t)
	if d1 != d3 {
		t.Errorf("fault sweep depends on GOMAXPROCS (%d vs %d): %s vs %s", old, alt, d1, d3)
	}

	// A different fault seed must actually change the injected schedule.
	s, err := harness.RunFaultSweep(goldenWorkload(), 16, 100, []float64{1e-3, 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(s.String()))
	if hex.EncodeToString(sum[:]) == d1 {
		t.Error("fault seeds 99 and 100 produced identical sweeps")
	}
}

// TestFaultSweepInjects sanity-checks that the sweep's fault rates actually
// inject: the highest-rate points must report fault activity and slow down
// relative to their fault-free anchors.
func TestFaultSweepInjects(t *testing.T) {
	s, err := harness.RunFaultSweep(goldenWorkload(), 16, 99, []float64{1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 { // (gnusort, nmsort) x (0, 1e-2)
		t.Fatalf("sweep has %d points, want 4", len(s.Points))
	}
	for i := 1; i < len(s.Points); i += 2 {
		p := s.Points[i]
		f := p.Result.Faults
		if f.FarBitErrors == 0 {
			t.Errorf("%s at rate %v injected nothing", p.Label, p.Rate)
		}
		if p.Slowdown <= 1 {
			t.Errorf("%s at rate %v slowdown %v, want > 1", p.Label, p.Rate, p.Slowdown)
		}
	}
}
