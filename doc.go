// Package repro is a from-scratch Go reproduction of "Two-Level Main
// Memory Co-Design: Multi-Threaded Algorithmic Primitives, Analysis, and
// Simulation" (Bender et al., IEEE IPDPS 2015).
//
// The paper studies a node whose main memory has two levels side by side —
// a large, low-bandwidth far DRAM and a small, high-bandwidth near
// "scratchpad" — and co-designs sorting algorithms with that architecture.
// This module contains every system the study needs:
//
//   - internal/model — the algorithmic scratchpad model (Section II) and
//     every theorem/corollary's cost function;
//   - internal/core — the paper's algorithms: the sequential recursive
//     scratchpad sample sort (Section III), the practical multithreaded
//     NMsort (Section IV-D), and the GNU-parallel-style multiway mergesort
//     baseline, plus the shared merging primitives;
//   - internal/{engine,dram,spmem,noc,cachesim,machine} — a discrete-event
//     simulator of the Figure 4/5/7 node, standing in for SST + Ariel +
//     DRAMSim2 + Merlin;
//   - internal/trace — the record side of the Ariel-style record/replay
//     pipeline (native execution, L1-filtered memory op streams);
//   - internal/harness — the experiment drivers that regenerate Table I
//     and the Section V claims;
//   - internal/kmeans — the §VII scratchpad k-means extension.
//
// The benchmarks in this directory regenerate every quantitative result in
// the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured comparisons.
package repro
