package repro_test

// Byte-identity of every rendered report across replay worker counts: the
// parallel sweep pool (internal/harness/parallel.go) must be invisible in
// the output. Each replay point owns a private engine, machine, and fault
// injector and writes its outcome to a pre-assigned slot, so Table I, the
// sweeps, and the fault axis are required to produce the same bytes at
// -par 1, -par 8, and whatever GOMAXPROCS resolves to.

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
)

// digest hashes a rendered report for compact comparison failures.
func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// parVariants is the worker-count axis every byte-identity test runs over:
// forced-sequential, oversubscribed, and auto (GOMAXPROCS).
var parVariants = []int{1, 8, 0}

// TestTable1ParByteIdentity pins Table I to the golden digest at every
// worker count — the pool may not move a single output byte, including the
// anchor the fault layer is checked against.
func TestTable1ParByteIdentity(t *testing.T) {
	for _, par := range parVariants {
		w := goldenWorkload()
		w.Par = par
		tb, err := harness.Table1Faults(w, false, fault.Config{})
		if err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
		if got := digest(tb.String()); got != goldenTable1 {
			t.Errorf("Par=%d: Table1 digest = %s, want golden %s", par, got, goldenTable1)
		}
	}
}

// TestBandwidthSweepParByteIdentity requires the C1 sweep text to be
// byte-identical at every worker count, including under a different
// GOMAXPROCS (the auto value -par 0 resolves to).
func TestBandwidthSweepParByteIdentity(t *testing.T) {
	render := func(par int) string {
		w := goldenWorkload()
		w.Par = par
		s, err := harness.BandwidthSweep(w)
		if err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
		return s.String()
	}
	want := render(1)
	for _, par := range parVariants[1:] {
		if got := render(par); got != want {
			t.Errorf("Par=%d: bandwidth sweep differs from sequential output", par)
		}
	}
	old := runtime.GOMAXPROCS(0)
	alt := 1
	if old == 1 {
		alt = 4
	}
	runtime.GOMAXPROCS(alt)
	defer runtime.GOMAXPROCS(old)
	if got := render(0); got != want {
		t.Errorf("GOMAXPROCS=%d: bandwidth sweep differs from sequential output", alt)
	}
}

// TestFaultSweepParByteIdentity extends the identity to the fault axis: the
// injectors are counter-keyed per replay, so the schedule may not depend on
// which worker ran which point.
func TestFaultSweepParByteIdentity(t *testing.T) {
	render := func(par int) string {
		w := goldenWorkload()
		w.Par = par
		s, err := harness.RunFaultSweep(w, 16, 99, []float64{1e-3, 1e-2})
		if err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
		return s.String()
	}
	want := render(1)
	for _, par := range parVariants[1:] {
		if got := render(par); got != want {
			t.Errorf("Par=%d: fault sweep differs from sequential output", par)
		}
	}
}
