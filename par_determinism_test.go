package repro_test

// Byte-identity of every rendered report across replay worker counts: the
// parallel sweep pool (internal/harness/parallel.go) must be invisible in
// the output. Each replay point owns a private engine, machine, and fault
// injector and writes its outcome to a pre-assigned slot, so Table I, the
// sweeps, and the fault axis are required to produce the same bytes at
// -par 1, -par 8, and whatever GOMAXPROCS resolves to.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/units"
)

// digest hashes a rendered report for compact comparison failures.
func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// parVariants is the worker-count axis every byte-identity test runs over:
// forced-sequential, oversubscribed, and auto (GOMAXPROCS).
var parVariants = []int{1, 8, 0}

// TestTable1ParByteIdentity pins Table I to the golden digest at every
// worker count — the pool may not move a single output byte, including the
// anchor the fault layer is checked against.
func TestTable1ParByteIdentity(t *testing.T) {
	for _, par := range parVariants {
		w := goldenWorkload()
		w.Par = par
		tb, err := harness.Table1Faults(w, false, fault.Config{})
		if err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
		if got := digest(tb.String()); got != goldenTable1 {
			t.Errorf("Par=%d: Table1 digest = %s, want golden %s", par, got, goldenTable1)
		}
	}
}

// TestBandwidthSweepParByteIdentity requires the C1 sweep text to be
// byte-identical at every worker count, including under a different
// GOMAXPROCS (the auto value -par 0 resolves to).
func TestBandwidthSweepParByteIdentity(t *testing.T) {
	render := func(par int) string {
		w := goldenWorkload()
		w.Par = par
		s, err := harness.BandwidthSweep(w)
		if err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
		return s.String()
	}
	want := render(1)
	for _, par := range parVariants[1:] {
		if got := render(par); got != want {
			t.Errorf("Par=%d: bandwidth sweep differs from sequential output", par)
		}
	}
	old := runtime.GOMAXPROCS(0)
	alt := 1
	if old == 1 {
		alt = 4
	}
	runtime.GOMAXPROCS(alt)
	defer runtime.GOMAXPROCS(old)
	if got := render(0); got != want {
		t.Errorf("GOMAXPROCS=%d: bandwidth sweep differs from sequential output", alt)
	}
}

// shardVariants is the intra-replay shard axis every sharded-engine
// byte-identity test runs over: single shard (sharded machinery, sequential
// width), two and four explicit shards, and auto (min(groups, GOMAXPROCS)).
// 0 — the sequential engine — is the reference the others are held to.
var shardVariants = []int{1, 2, 4, -1}

// TestTable1ShardByteIdentity pins Table I to the golden digest at every
// shard count under both a single-CPU and a multi-CPU scheduler: the
// conservative parallel engine may not move a single output byte.
func TestTable1ShardByteIdentity(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, shards := range shardVariants {
			w := goldenWorkload()
			w.Shards = shards
			tb, err := harness.Table1Faults(w, false, fault.Config{})
			if err != nil {
				t.Fatalf("Shards=%d GOMAXPROCS=%d: %v", shards, procs, err)
			}
			if got := digest(tb.String()); got != goldenTable1 {
				t.Errorf("Shards=%d GOMAXPROCS=%d: Table1 digest = %s, want golden %s",
					shards, procs, got, goldenTable1)
			}
		}
	}
}

// TestTable1FaultShardByteIdentity extends the shard identity to fault
// injection: the injected environment (ECC corrections, retries, degraded
// channels) must render the same bytes whether events drain through one
// queue or several.
func TestTable1FaultShardByteIdentity(t *testing.T) {
	render := func(shards int) string {
		w := goldenWorkload()
		w.Shards = shards
		tb, err := harness.Table1Faults(w, false, fault.Profile(99, 1e-3))
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		return tb.String()
	}
	want := render(0)
	for _, shards := range shardVariants {
		if got := render(shards); got != want {
			t.Errorf("Shards=%d: fault-injected Table1 differs from sequential engine", shards)
		}
	}
}

// TestTimelineShardByteIdentity replays the telemetry run on the sharded
// engine and requires the Perfetto (Chrome trace-event) export — epoch
// samples included — to be byte-identical to the sequential engine's.
func TestTimelineShardByteIdentity(t *testing.T) {
	render := func(shards int) string {
		w := goldenWorkload()
		w.Shards = shards
		_, tel, err := harness.RunTimeline(harness.AlgNMSort, w, 16, 5*units.Microsecond, fault.Config{})
		if err != nil {
			t.Fatalf("Shards=%d: %v", shards, err)
		}
		var b bytes.Buffer
		if err := tel.ExportChrome(&b); err != nil {
			t.Fatalf("Shards=%d: ExportChrome: %v", shards, err)
		}
		return b.String()
	}
	want := render(0)
	for _, shards := range shardVariants {
		if got := render(shards); got != want {
			t.Errorf("Shards=%d: Perfetto export differs from sequential engine", shards)
		}
	}
}

// TestFaultSweepParByteIdentity extends the identity to the fault axis: the
// injectors are counter-keyed per replay, so the schedule may not depend on
// which worker ran which point.
func TestFaultSweepParByteIdentity(t *testing.T) {
	render := func(par int) string {
		w := goldenWorkload()
		w.Par = par
		s, err := harness.RunFaultSweep(w, 16, 99, []float64{1e-3, 1e-2})
		if err != nil {
			t.Fatalf("Par=%d: %v", par, err)
		}
		return s.String()
	}
	want := render(1)
	for _, par := range parVariants[1:] {
		if got := render(par); got != want {
			t.Errorf("Par=%d: fault sweep differs from sequential output", par)
		}
	}
}
