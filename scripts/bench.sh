#!/usr/bin/env bash
# bench.sh — replay- and sweep-throughput benchmark harness.
#
# Runs two benchmark families and maintains two committed performance
# trajectories next to the repo root:
#
#   BenchmarkReplay*      (root)             -> BENCH_replay.json
#       baseline replay, telemetry idle, telemetry actively sampling, and
#       the intra-replay sharded engine at 1 and 4 shards; the per-event
#       cost of the simulation kernel itself.
#   BenchmarkSweepTable1* (internal/harness) -> BENCH_sweep.json
#       the Table I replay batch through the sweep worker pool at one
#       worker and at GOMAXPROCS; the wall-clock win of -par.
#   BenchmarkTraceOpen*   (internal/trace)   -> BENCH_replay.json
#       time-to-ready for a trace file in each serialization: v2 reads
#       and decodes the whole stream, v3 maps the file and checks its
#       footer. Each point also reports the on-disk file size.
#
# Each trajectory is a JSON array with one flat object per run (one line
# per entry, so awk/grep can read it without a JSON parser). A run appends
# its entry; commit the updated files to extend the recorded history.
#
# Gates (non-zero exit):
#   - idle-telemetry overhead vs. the bare replay >= MAX_OVERHEAD_PCT (5%)
#   - baseline ns/event more than MAX_REGRESSION_PCT (10%) above the last
#     committed BENCH_replay.json entry
#   - columnar open speedup below MIN_OPEN_SPEEDUP (5x) or columnar file
#     size above MAX_SIZE_RATIO (0.8) of the v2 stream — both are
#     host-independent properties of the serialization itself
# The Par1/ParMax sweep ratio and the Shards1/Shards4 intra-replay ratio
# are report-only: they depend on host core count, which is not a property
# of the code under test. Each entry records gomaxprocs and the host cpu
# count so a 1.0x "speedup" measured on a single-proc run is legible as
# such; GOMAXPROCS=1 also prints a warning that the ParMax and Shards4
# points degenerate.
#
# Usage:  scripts/bench.sh [benchtime]     (default 10x)
#         BENCH_LABEL=pr5 scripts/bench.sh 20x
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5}"
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-10}"
MIN_OPEN_SPEEDUP="${MIN_OPEN_SPEEDUP:-5}"
MAX_SIZE_RATIO="${MAX_SIZE_RATIO:-0.8}"
LABEL="${BENCH_LABEL:-local}"
STAMP="$(date -u +%Y-%m-%d)"
CPUS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
REPLAY_OUT="BENCH_replay.json"
SWEEP_OUT="BENCH_sweep.json"
RAW_REPLAY="$(mktemp)"
RAW_SWEEP="$(mktemp)"
RAW_OPEN="$(mktemp)"
trap 'rm -f "$RAW_REPLAY" "$RAW_SWEEP" "$RAW_OPEN"' EXIT

echo "== go test -bench BenchmarkReplay -benchtime $BENCHTIME =="
go test -run '^$' -bench '^BenchmarkReplay' -benchtime "$BENCHTIME" -benchmem . | tee "$RAW_REPLAY"

echo "== go test -bench BenchmarkSweepTable1 -benchtime $BENCHTIME ./internal/harness =="
go test -run '^$' -bench '^BenchmarkSweepTable1' -benchtime "$BENCHTIME" ./internal/harness | tee "$RAW_SWEEP"

echo "== go test -bench BenchmarkTraceOpen -benchtime $BENCHTIME ./internal/trace =="
go test -run '^$' -bench '^BenchmarkTraceOpen' -benchtime "$BENCHTIME" ./internal/trace | tee "$RAW_OPEN"

# last_value FILE KEY: the KEY of the most recent trajectory entry, or ""
last_value() {
	[ -f "$1" ] || return 0
	grep -o "\"$2\": [0-9.eE+-]*" "$1" | tail -1 | awk '{print $2}'
}

# append FILE ENTRY: append one entry line to a JSON-array trajectory,
# creating the file when absent. Entries are one line each; the closing
# bracket is always the last line.
append() {
	local file="$1" entry="$2"
	if [ ! -s "$file" ]; then
		printf '[\n  %s\n]\n' "$entry" >"$file"
		return
	fi
	local tmp
	tmp="$(mktemp)"
	sed '$d' "$file" | sed '$ s/$/,/' >"$tmp"
	printf '  %s\n]\n' "$entry" >>"$tmp"
	mv "$tmp" "$file"
}

# --- parse the replay family ---------------------------------------------
# "BenchmarkReplayX-N  iters  T ns/op  ...  V ns/event ...  A allocs/op"
read -r BASE_NSOP BASE_NSEV BASE_EPS BASE_ALLOCS IDLE_NSOP IDLE_NSEV ACTIVE_NSEV SH1_NSOP SH4_NSOP REPLAY_PROCS < <(awk '
/^BenchmarkReplay/ {
	name = $1
	if (match(name, /-[0-9]+$/)) procs = substr(name, RSTART + 1)
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")      nsop[name] = $i
		if ($(i+1) == "ns/event")   nsev[name] = $i
		if ($(i+1) == "events/sec") eps[name] = $i
		if ($(i+1) == "allocs/op")  allocs[name] = $i
	}
}
END {
	b = "BenchmarkReplayBaseline"; i = "BenchmarkReplayTelemetryIdle"; a = "BenchmarkReplayTelemetryActive"
	s1 = "BenchmarkReplayShards1"; s4 = "BenchmarkReplayShards4"
	if (!(b in nsev)) { print "bench.sh: no baseline result" > "/dev/stderr"; exit 1 }
	if (!(s1 in nsop) || !(s4 in nsop)) { print "bench.sh: missing shard results" > "/dev/stderr"; exit 1 }
	print nsop[b], nsev[b], eps[b], allocs[b], nsop[i], nsev[i], nsev[a], nsop[s1], nsop[s4], procs+0
}' "$RAW_REPLAY")

# --- parse the sweep family ----------------------------------------------
read -r PAR1_NSOP PARMAX_NSOP GOMAXPROCS < <(awk '
/^BenchmarkSweepTable1/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	nsop[name] = $3
	for (i = 2; i < NF; i++) if ($(i+1) == "gomaxprocs") procs = $i
}
END {
	p1 = "BenchmarkSweepTable1Par1"; pm = "BenchmarkSweepTable1ParMax"
	if (!(p1 in nsop) || !(pm in nsop)) { print "bench.sh: missing sweep results" > "/dev/stderr"; exit 1 }
	print nsop[p1], nsop[pm], procs+0
}' "$RAW_SWEEP")

# --- parse the trace-open family ------------------------------------------
read -r OPEN_V2_NSOP OPEN_V3_NSOP V2_BYTES V3_BYTES < <(awk '
/^BenchmarkTraceOpen/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")      nsop[name] = $i
		if ($(i+1) == "file-bytes") bytes[name] = $i
	}
}
END {
	v2 = "BenchmarkTraceOpenV2"; v3 = "BenchmarkTraceOpenV3"
	if (!(v2 in nsop) || !(v3 in nsop)) { print "bench.sh: missing trace-open results" > "/dev/stderr"; exit 1 }
	print nsop[v2], nsop[v3], bytes[v2], bytes[v3]
}' "$RAW_OPEN")

# --- gate 1: idle-telemetry overhead --------------------------------------
awk -v max="$MAX_OVERHEAD_PCT" -v base="$BASE_NSOP" -v idle="$IDLE_NSOP" 'BEGIN {
	if (base+0 == 0 || idle+0 == 0) { print "bench.sh: missing baseline or idle result" > "/dev/stderr"; exit 1 }
	pct = (idle - base) * 100 / base
	printf "== idle-telemetry overhead: %.2f%% (budget %s%%) ==\n", pct, max
	if (pct >= max) { print "bench.sh: idle telemetry overhead exceeds budget" > "/dev/stderr"; exit 1 }
}'

# --- gate 2: baseline ns/event vs. the committed trajectory ---------------
PREV_NSEV="$(last_value "$REPLAY_OUT" baseline_ns_per_event)"
if [ -n "$PREV_NSEV" ]; then
	awk -v max="$MAX_REGRESSION_PCT" -v prev="$PREV_NSEV" -v cur="$BASE_NSEV" 'BEGIN {
		pct = (cur - prev) * 100 / prev
		printf "== baseline ns/event: %.1f vs committed %.1f (%+.2f%%, fail at +%s%%) ==\n", cur, prev, pct, max
		if (pct > max) { print "bench.sh: replay ns/event regressed past budget" > "/dev/stderr"; exit 1 }
	}'
else
	echo "== no committed baseline in $REPLAY_OUT; recording first entry =="
fi

# --- gate 3: columnar open speedup and file size --------------------------
awk -v minsp="$MIN_OPEN_SPEEDUP" -v maxratio="$MAX_SIZE_RATIO" \
	-v v2="$OPEN_V2_NSOP" -v v3="$OPEN_V3_NSOP" -v b2="$V2_BYTES" -v b3="$V3_BYTES" 'BEGIN {
	if (v3+0 == 0 || b2+0 == 0) { print "bench.sh: missing trace-open numbers" > "/dev/stderr"; exit 1 }
	sp = v2 / v3; ratio = b3 / b2
	printf "== trace open: v2 %.0f ns/op (%.0f bytes), v3 %.0f ns/op (%.0f bytes): %.1fx faster, %.3fx the size (fail under %sx / over %s) ==\n", \
		v2, b2, v3, b3, sp, ratio, minsp, maxratio
	if (sp < minsp) { print "bench.sh: columnar open speedup below budget" > "/dev/stderr"; exit 1 }
	if (ratio > maxratio) { print "bench.sh: columnar file size above budget" > "/dev/stderr"; exit 1 }
}'

# --- report-only: intra-replay shard speedup ------------------------------
awk -v s1="$SH1_NSOP" -v s4="$SH4_NSOP" -v procs="$REPLAY_PROCS" 'BEGIN {
	printf "== intra-replay shards: shards1 %.0f ns/op, shards4 %.0f ns/op, speedup %.2fx at GOMAXPROCS=%d (report-only) ==\n", \
		s1, s4, s1 / s4, procs
}'
if [ "$REPLAY_PROCS" -le 1 ]; then
	echo "== warning: GOMAXPROCS=1 — the Shards4 point runs its windows sequentially and the recorded shard speedup is meaningless; rerun with GOMAXPROCS>1 for a real multi-proc entry =="
fi

# --- report-only: sweep pool speedup --------------------------------------
awk -v p1="$PAR1_NSOP" -v pm="$PARMAX_NSOP" -v procs="$GOMAXPROCS" 'BEGIN {
	printf "== sweep pool: par1 %.0f ns/op, parmax %.0f ns/op, speedup %.2fx at GOMAXPROCS=%d (report-only) ==\n", \
		p1, pm, p1 / pm, procs
}'
if [ "$GOMAXPROCS" -le 1 ]; then
	echo "== warning: GOMAXPROCS=1 — the ParMax point degenerates to Par1 and the recorded speedup is meaningless; rerun with GOMAXPROCS>1 for a real multi-proc entry =="
fi

# --- extend both trajectories ---------------------------------------------
append "$REPLAY_OUT" "$(printf '{"label": "%s", "date": "%s", "benchtime": "%s", "baseline_ns_per_event": %s, "baseline_events_per_sec": %s, "baseline_allocs_per_op": %s, "idle_ns_per_event": %s, "active_ns_per_event": %s, "shards1_ns_per_op": %s, "shards4_ns_per_op": %s, "shard_speedup": %s, "open_v2_ns_per_op": %s, "open_v3_ns_per_op": %s, "open_speedup": %s, "v2_file_bytes": %s, "v3_file_bytes": %s, "gomaxprocs": %s, "cpus": %s}' \
	"$LABEL" "$STAMP" "$BENCHTIME" "$BASE_NSEV" "$BASE_EPS" "$BASE_ALLOCS" "${IDLE_NSEV:-0}" "${ACTIVE_NSEV:-0}" \
	"$SH1_NSOP" "$SH4_NSOP" \
	"$(awk -v s1="$SH1_NSOP" -v s4="$SH4_NSOP" 'BEGIN { printf "%.3f", s1 / s4 }')" \
	"$OPEN_V2_NSOP" "$OPEN_V3_NSOP" \
	"$(awk -v v2="$OPEN_V2_NSOP" -v v3="$OPEN_V3_NSOP" 'BEGIN { printf "%.1f", v2 / v3 }')" \
	"$V2_BYTES" "$V3_BYTES" \
	"$REPLAY_PROCS" "$CPUS")"
append "$SWEEP_OUT" "$(printf '{"label": "%s", "date": "%s", "benchtime": "%s", "gomaxprocs": %s, "cpus": %s, "par1_ns_per_op": %s, "parmax_ns_per_op": %s, "speedup": %s}' \
	"$LABEL" "$STAMP" "$BENCHTIME" "$GOMAXPROCS" "$CPUS" "$PAR1_NSOP" "$PARMAX_NSOP" \
	"$(awk -v p1="$PAR1_NSOP" -v pm="$PARMAX_NSOP" 'BEGIN { printf "%.3f", p1 / pm }')")"

echo "== wrote $REPLAY_OUT =="
cat "$REPLAY_OUT"
echo "== wrote $SWEEP_OUT =="
cat "$SWEEP_OUT"
