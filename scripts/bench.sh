#!/usr/bin/env bash
# bench.sh — replay-throughput benchmark harness for the telemetry budget.
#
# Runs the BenchmarkReplay* family (baseline replay, telemetry attached but
# idle, telemetry actively sampling) with -benchmem, emits the parsed
# numbers as BENCH_replay.json next to this script's repo root, and fails
# when the idle-telemetry variant is more than MAX_OVERHEAD_PCT slower than
# the baseline — the "disabled telemetry costs nothing" acceptance bound.
#
# Usage:  scripts/bench.sh [benchtime]     (default 10x)
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${1:-10x}"
MAX_OVERHEAD_PCT="${MAX_OVERHEAD_PCT:-5}"
OUT="BENCH_replay.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench BenchmarkReplay -benchtime $BENCHTIME =="
go test -run '^$' -bench '^BenchmarkReplay' -benchtime "$BENCHTIME" -benchmem . | tee "$RAW"

# Parse "BenchmarkReplayX-N  iters  T ns/op  E events/sec  ...  A allocs/op"
# lines into a JSON object keyed by benchmark name.
awk -v out="$OUT" '
/^BenchmarkReplay/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkReplay/, "", name)
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")      nsop[name] = $i
		if ($(i+1) == "events/sec") eps[name] = $i
		if ($(i+1) == "ns/event")   nsev[name] = $i
		if ($(i+1) == "allocs/op")  allocs[name] = $i
	}
	order[n++] = name
}
END {
	if (n == 0) { print "bench.sh: no BenchmarkReplay results" > "/dev/stderr"; exit 1 }
	printf "{\n" > out
	for (i = 0; i < n; i++) {
		name = order[i]
		printf "  \"%s\": {\"ns_per_op\": %s, \"events_per_sec\": %s, \"ns_per_event\": %s, \"allocs_per_op\": %s}%s\n", \
			name, nsop[name], eps[name], nsev[name], allocs[name], (i < n-1 ? "," : "") > out
	}
	printf "}\n" > out
}' "$RAW"

echo "== wrote $OUT =="
cat "$OUT"

# Enforce the idle-overhead budget: telemetry wired but not sampling must
# stay within MAX_OVERHEAD_PCT of the bare replay.
awk -v max="$MAX_OVERHEAD_PCT" '
/^BenchmarkReplayBaseline/      { base = $3 }
/^BenchmarkReplayTelemetryIdle/ { idle = $3 }
END {
	if (base == 0 || idle == 0) { print "bench.sh: missing baseline or idle result" > "/dev/stderr"; exit 1 }
	pct = (idle - base) * 100 / base
	printf "== idle-telemetry overhead: %.2f%% (budget %s%%) ==\n", pct, max
	if (pct >= max) { print "bench.sh: idle telemetry overhead exceeds budget" > "/dev/stderr"; exit 1 }
}' "$RAW"
