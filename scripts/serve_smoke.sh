#!/usr/bin/env bash
# serve_smoke.sh — the nmsimd daemon smoke test.
#
# Boots the daemon on an ephemeral port, runs the golden dma sweep three
# ways — locally via cmd/sweep, remotely cold, remotely again (answered
# from the daemon's result cache) — and requires all three reports to be
# byte-identical. Then checks the cache actually hit via /v1/stats and
# that SIGTERM drains the daemon to a clean exit 0.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build =="
go build -o "$workdir/nmsimd" ./cmd/nmsimd
go build -o "$workdir/sweep" ./cmd/sweep

echo "== start daemon =="
"$workdir/nmsimd" -addr 127.0.0.1:0 > "$workdir/daemon.out" &
daemon_pid=$!
# The startup line carries the bound address; wait for it.
for i in $(seq 1 100); do
	addr=$(sed -n 's/^nmsimd: listening on //p' "$workdir/daemon.out")
	[ -n "$addr" ] && break
	kill -0 "$daemon_pid" 2>/dev/null || { cat "$workdir/daemon.out"; echo "daemon died"; exit 1; }
	sleep 0.1
done
[ -n "$addr" ] && echo "daemon at $addr" || { echo "daemon never printed its address"; exit 1; }

args="-exp=dma -n 8192 -cores 16 -sp 1"
echo "== local sweep =="
"$workdir/sweep" $args > "$workdir/local.txt"
echo "== remote sweep (cold) =="
"$workdir/sweep" $args -server "http://$addr" > "$workdir/cold.txt"
echo "== remote sweep (cache hit) =="
"$workdir/sweep" $args -server "http://$addr" > "$workdir/warm.txt"

echo "== byte-identity =="
cmp "$workdir/local.txt" "$workdir/cold.txt"
cmp "$workdir/local.txt" "$workdir/warm.txt"

echo "== cache hit check =="
stats=$(curl -sSf "http://$addr/v1/stats")
echo "$stats"
hits=$(echo "$stats" | sed -n 's/.*"cache_hits":\([0-9]*\).*/\1/p')
[ "${hits:-0}" -gt 0 ] || { echo "result cache never hit"; exit 1; }

echo "== graceful shutdown =="
kill -TERM "$daemon_pid"
rc=0; wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || { echo "daemon exited $rc on SIGTERM, want 0"; exit 1; }

echo "== serve smoke passed =="
