#!/usr/bin/env bash
# serve_smoke.sh — the nmsimd daemon smoke test.
#
# Boots the daemon on an ephemeral port, runs the golden dma sweep three
# ways — locally via cmd/sweep, remotely cold, remotely again (answered
# from the daemon's result cache) — and requires all three reports to be
# byte-identical. Then checks the cache actually hit via /v1/stats and
# that SIGTERM drains the daemon to a clean exit 0.
#
# A second pass smoke-tests the columnar (v3) serving path: record a trace
# with nmtrace, convert it to .nmt3 (asserting the size win), upload the v2
# stream to one fresh daemon and the v3 file to another, submit the same
# job to both, and require byte-identical response bodies.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
daemon2_pid=""
cleanup() {
	[ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
	[ -n "$daemon2_pid" ] && kill -9 "$daemon2_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build =="
go build -o "$workdir/nmsimd" ./cmd/nmsimd
go build -o "$workdir/sweep" ./cmd/sweep
go build -o "$workdir/nmtrace" ./cmd/nmtrace

# wait_addr PID OUTFILE: echo the bound address a daemon printed on start.
wait_addr() {
	local pid="$1" out="$2" a=""
	for i in $(seq 1 100); do
		a=$(sed -n 's/^nmsimd: listening on //p' "$out")
		[ -n "$a" ] && break
		kill -0 "$pid" 2>/dev/null || { cat "$out" >&2; echo "daemon died" >&2; return 1; }
		sleep 0.1
	done
	[ -n "$a" ] || { echo "daemon never printed its address" >&2; return 1; }
	echo "$a"
}

echo "== start daemon =="
"$workdir/nmsimd" -addr 127.0.0.1:0 > "$workdir/daemon.out" &
daemon_pid=$!
addr=$(wait_addr "$daemon_pid" "$workdir/daemon.out")
echo "daemon at $addr"

args="-exp=dma -n 8192 -cores 16 -sp 1"
echo "== local sweep =="
"$workdir/sweep" $args > "$workdir/local.txt"
echo "== remote sweep (cold) =="
"$workdir/sweep" $args -server "http://$addr" > "$workdir/cold.txt"
echo "== remote sweep (cache hit) =="
"$workdir/sweep" $args -server "http://$addr" > "$workdir/warm.txt"

echo "== byte-identity =="
cmp "$workdir/local.txt" "$workdir/cold.txt"
cmp "$workdir/local.txt" "$workdir/warm.txt"

echo "== cache hit check =="
stats=$(curl -sSf "http://$addr/v1/stats")
echo "$stats"
hits=$(echo "$stats" | sed -n 's/.*"cache_hits":\([0-9]*\).*/\1/p')
[ "${hits:-0}" -gt 0 ] || { echo "result cache never hit"; exit 1; }

echo "== graceful shutdown =="
kill -TERM "$daemon_pid"
rc=0; wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || { echo "daemon exited $rc on SIGTERM, want 0"; exit 1; }

echo "== record and convert (v2 -> v3) =="
"$workdir/nmtrace" record -alg nmsort -n 8192 -cores 16 -sp 1 -o "$workdir/t.nmt"
"$workdir/nmtrace" convert -i "$workdir/t.nmt" -o "$workdir/t.nmt3"
v2_bytes=$(wc -c < "$workdir/t.nmt")
v3_bytes=$(wc -c < "$workdir/t.nmt3")
echo "v2 $v2_bytes bytes, v3 $v3_bytes bytes"
[ $((v3_bytes * 5)) -le $((v2_bytes * 4)) ] || { echo "v3 is not <= 80% of v2"; exit 1; }

echo "== start v2/v3 daemon pair =="
"$workdir/nmsimd" -addr 127.0.0.1:0 > "$workdir/daemon_v2.out" &
daemon_pid=$!
addr_v2=$(wait_addr "$daemon_pid" "$workdir/daemon_v2.out")
"$workdir/nmsimd" -addr 127.0.0.1:0 > "$workdir/daemon_v3.out" &
daemon2_pid=$!
addr_v3=$(wait_addr "$daemon2_pid" "$workdir/daemon_v3.out")
echo "v2 daemon at $addr_v2, v3 daemon at $addr_v3"

echo "== upload both serializations =="
d2=$(curl -sSf --data-binary @"$workdir/t.nmt" "http://$addr_v2/v1/traces" |
	sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p')
d3=$(curl -sSf --data-binary @"$workdir/t.nmt3" "http://$addr_v3/v1/traces" |
	sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p')
echo "v2 digest $d2, v3 digest $d3"
[ -n "$d2" ] && [ "$d2" = "$d3" ] || { echo "digest differs across serializations"; exit 1; }

echo "== same job against both =="
job() {
	curl -sSf -H 'Content-Type: application/json' \
		-d "{\"trace_digest\":\"$1\",\"cores\":16,\"near_channels\":16,\"sp_mib\":1}" \
		"http://$2/v1/jobs"
}
job "$d2" "$addr_v2" > "$workdir/job_v2.json"
job "$d3" "$addr_v3" > "$workdir/job_v3.json"
cmp "$workdir/job_v2.json" "$workdir/job_v3.json"

kill -TERM "$daemon_pid" && wait "$daemon_pid" || true
kill -TERM "$daemon2_pid" && wait "$daemon2_pid" || true
daemon_pid=""
daemon2_pid=""

echo "== serve smoke passed =="
