#!/usr/bin/env bash
# check.sh — the one-command tier-1 verification pipeline.
#
# Runs, in order:
#   1. go build ./...                 compile everything
#   2. go run ./cmd/nmlint ./...      determinism & concurrency lint suite
#                                     (incl. simpure: event-callback purity,
#                                     hotpath: allocation-freedom)
#   3. nmlint -escape-check           compiler escape analysis cross-check
#                                     over the //nmlint:hotpath regions
#   4. go vet ./...                   the stock vet checks
#   5. go test ./...                  full test suite (includes the
#                                     record→replay determinism regression)
#   6. go test -race -short ./...     race detector over the short suite
#   7. chaos smoke                    the short-mode interrupt/resume chaos
#                                     test: sweeps killed at seeded slice
#                                     boundaries must resume byte-identically
#   8. fuzz smoke                     10s each of FuzzReadTrace (v2 decoder)
#                                     and FuzzOpenColumnar (v3 open/cursor
#                                     path): no panics on hostile bytes,
#                                     every failure a *DecodeError
#   9. serve smoke                    boot nmsimd, run the golden sweep
#                                     locally + remotely cold + remotely
#                                     cached, cmp all three byte-identical,
#                                     SIGTERM-drain to exit 0
#
# Any stage failing fails the whole script. Run from anywhere inside the
# repository.
set -euo pipefail

cd "$(dirname "$0")/.."

step() {
	echo "== $* =="
	"$@"
}

step go build ./...
step go run ./cmd/nmlint ./...
step go run ./cmd/nmlint -escape-check ./...
step go vet ./...
step go test ./...
step go test -race -short ./...
step go test -run='^TestChaosInterruptResume$' -short -count=1 ./internal/harness
step go test -run='^$' -fuzz='^FuzzReadTrace$' -fuzztime=10s ./internal/trace
step go test -run='^$' -fuzz='^FuzzOpenColumnar$' -fuzztime=10s ./internal/trace
step ./scripts/serve_smoke.sh

echo "== all checks passed =="
