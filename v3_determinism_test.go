package repro_test

// Byte-identity of Table I when every recorded trace is round-tripped
// through the columnar v3 serialization: a sweep whose recordings are
// served from converted .nmt3 files must render the golden digest at
// every worker count, shard count, and GOMAXPROCS — the on-disk format
// may not move a single output byte.

import (
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/harness"
)

// TestTable1FromConvertedV3ByteIdentity populates a disk cache of columnar
// v3 traces, then re-renders Table I from those files across the -par and
// -shards axes under two schedulers, pinning each render to goldenTable1.
func TestTable1FromConvertedV3ByteIdentity(t *testing.T) {
	rc, err := harness.NewDiskRecordCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// First pass records fresh and persists each trace as .nmt3.
	w := goldenWorkload()
	w.Sup = &harness.Supervisor{Records: rc}
	tb, err := harness.Table1Faults(w, false, fault.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := digest(tb.String()); got != goldenTable1 {
		t.Fatalf("priming pass: Table1 digest = %s, want golden %s", got, goldenTable1)
	}

	// Every later pass replays from the converted v3 files.
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, par := range []int{1, 8, 0} {
			for _, shards := range []int{0, 4} {
				w := goldenWorkload()
				w.Par = par
				w.Shards = shards
				w.Sup = &harness.Supervisor{Records: rc}
				tb, err := harness.Table1Faults(w, false, fault.Config{})
				if err != nil {
					t.Fatalf("par=%d shards=%d procs=%d: %v", par, shards, procs, err)
				}
				if got := digest(tb.String()); got != goldenTable1 {
					t.Errorf("par=%d shards=%d procs=%d: v3-served Table1 digest = %s, want golden %s",
						par, shards, procs, got, goldenTable1)
				}
			}
		}
	}
}
