package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/units"
)

// TestSerializeReplayEquivalence exercises the whole nmtrace workflow in
// process: a trace replayed directly and a trace that has been through the
// binary serialization round trip must produce bit-identical simulation
// results.
func TestSerializeReplayEquivalence(t *testing.T) {
	w := harness.Workload{N: 1 << 13, Seed: 3, Threads: 16, SP: 128 * units.KiB}
	rec, err := harness.Record(harness.AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := rec.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := machine.Run(harness.NodeFor(w.Threads, 16, w.SP), rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	roundTripped, err := machine.Run(harness.NodeFor(w.Threads, 16, w.SP), loaded)
	if err != nil {
		t.Fatal(err)
	}

	if direct.SimTime != roundTripped.SimTime ||
		direct.FarAccesses != roundTripped.FarAccesses ||
		direct.NearAccesses != roundTripped.NearAccesses ||
		direct.Events != roundTripped.Events {
		t.Errorf("serialized replay diverged:\ndirect: %+v\nloaded: %+v", direct, roundTripped)
	}
}

// TestCrossAlgorithmPipeline runs every registered algorithm through the
// full record-replay pipeline on one node and sanity-checks the global
// orderings the paper's evaluation depends on.
func TestCrossAlgorithmPipeline(t *testing.T) {
	w := harness.Workload{N: 1 << 14, Seed: 2015, Threads: 32, SP: 256 * units.KiB}
	results := map[harness.Algorithm]machine.Result{}
	for _, alg := range []harness.Algorithm{
		harness.AlgGNUSort, harness.AlgNMSort, harness.AlgNMSortDM, harness.AlgParSort,
	} {
		rec, err := harness.Record(alg, w)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		res, err := machine.Run(harness.NodeFor(w.Threads, 16, w.SP), rec.Trace)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		results[alg] = res
	}

	if results[harness.AlgGNUSort].NearAccesses != 0 {
		t.Error("baseline must not touch near memory")
	}
	for _, alg := range []harness.Algorithm{harness.AlgNMSort, harness.AlgNMSortDM, harness.AlgParSort} {
		if results[alg].NearAccesses == 0 {
			t.Errorf("%s must touch near memory", alg)
		}
	}
	// The far-traffic ordering only holds for NMsort's streaming design;
	// the recursive parsort writes fresh (cold) bucket regions every level
	// and pays for it at small scale (see EXPERIMENTS.md for the scaled
	// comparisons).
	for _, alg := range []harness.Algorithm{harness.AlgNMSort, harness.AlgNMSortDM} {
		if results[alg].FarAccesses >= results[harness.AlgGNUSort].FarAccesses {
			t.Errorf("%s far accesses %d not below baseline %d", alg,
				results[alg].FarAccesses, results[harness.AlgGNUSort].FarAccesses)
		}
	}
}
