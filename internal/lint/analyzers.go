package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// inspect walks every file of the unit, optionally skipping _test.go files.
func inspect(u *Unit, skipTests bool, visit func(f *ast.File, n ast.Node) bool) {
	for _, f := range u.Files {
		if skipTests && u.TestFiles[f] {
			continue
		}
		f := f
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return visit(f, n)
		})
	}
}

// wallClockFuncs are the time-package functions that read or wait on the
// host's clock. Pure constructors and formatters (time.Duration arithmetic,
// time.Unix, Parse) are allowed; anything observing real time is not.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// NoWallClock forbids wall-clock reads in simulator packages. Simulated
// components must take time from engine.Sim / units.Time only: one
// time.Now() in a component makes replay results depend on host speed.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Since/Sleep and timers in simulator packages; all time must be units.Time",
	Run: func(u *Unit, report ReportFunc) {
		if !u.IsSimulatorPackage() {
			return
		}
		inspect(u, false, func(f *ast.File, n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || pkgNameOf(u, id) != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			report(sel.Pos(), "time.%s reads the host clock; simulator code must use units.Time via engine.Sim", sel.Sel.Name)
			return true
		})
	},
}

// NoGlobalRand forbids math/rand's package-level functions everywhere
// outside internal/xrand. The global source is shared mutable state seeded
// once per process; replay requires every random stream to come from an
// explicitly seeded generator (internal/xrand).
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "forbid math/rand top-level functions outside internal/xrand; use a seeded *xrand.RNG",
	Run: func(u *Unit, report ReportFunc) {
		if rel := u.RelPath(); rel == "internal/xrand" || rel == "internal/xrand_test" {
			return
		}
		inspect(u, false, func(f *ast.File, n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path := pkgNameOf(u, id)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			fn, ok := u.Info.Uses[sel.Sel].(*types.Func)
			if !ok || strings.HasPrefix(fn.Name(), "New") {
				return true // types and explicit-source constructors are tolerated
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // method on an explicit *rand.Rand
			}
			report(sel.Pos(), "rand.%s draws from the unseeded global source; use a seeded *xrand.RNG", sel.Sel.Name)
			return true
		})
	},
}

// SortedMapRange forbids ranging over maps in simulator packages. Go map
// iteration order is deliberately randomized; a map range feeding
// engine.Sim scheduling (or any recorded stream) breaks the FIFO tie-break
// guarantee and with it bit-identical replay. Extract and sort the keys,
// then range over the slice. The key-collection loop of that idiom —
// `for k := range m { keys = append(keys, k) }` — is recognized and
// allowed; anything else must be restructured or suppressed with
// //nmlint:ignore sortedmaprange when the body is provably
// order-insensitive.
var SortedMapRange = &Analyzer{
	Name: "sortedmaprange",
	Doc:  "forbid ranging over maps in simulator packages; iterate sorted keys instead",
	Run: func(u *Unit, report ReportFunc) {
		if !u.IsSimulatorPackage() {
			return
		}
		inspect(u, false, func(f *ast.File, n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := u.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectionLoop(rs) {
				return true
			}
			report(rs.Pos(), "range over map has randomized order; collect and sort the keys, then range the slice (determinism)")
			return true
		})
	},
}

// isKeyCollectionLoop recognizes the sanctioned first half of the
// sort-the-keys idiom: a map range whose entire body appends the key (and
// nothing derived from map values) to a slice, i.e.
//
//	for k := range m { keys = append(keys, k) }
//
// Iteration order cannot leak: the slice's contents are order-dependent
// only until the mandatory sort that follows.
func isKeyCollectionLoop(rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Key == nil {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok || len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Tok != token.ASSIGN {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return false
	}
	lhs, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || lhs.Name != dst.Name {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// ParOnlyGoroutines forbids raw go statements in non-test code outside
// internal/par. All parallelism must flow through par.Run's fork-join
// p-thread abstraction, which pins the thread↔probe mapping and joins with
// panic propagation; a stray goroutine racing on simulator or recorder
// state silently corrupts traces.
var ParOnlyGoroutines = &Analyzer{
	Name: "paronlygoroutines",
	Doc:  "forbid raw go statements outside internal/par; use par.Run / par.RunPoison",
	Run: func(u *Unit, report ReportFunc) {
		if rel := u.RelPath(); rel == "internal/par" || rel == "internal/par_test" {
			return
		}
		inspect(u, true, func(f *ast.File, n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				report(g.Pos(), "raw go statement; route parallelism through par.Run so threads stay deterministic and joined")
			}
			return true
		})
	},
}

// UnitsLit flags bare untyped integer literals passed where a units.Time or
// units.Bytes parameter is expected. A bare 4096 at such a call site is a
// latent unit-confusion bug (picoseconds? bytes? lines?); write
// 4096*units.Picosecond, 4*units.KiB, or a named constant. Literal 0 is
// unit-safe and allowed.
var UnitsLit = &Analyzer{
	Name: "unitslit",
	Doc:  "flag untyped integer literals passed as units.Time/units.Bytes arguments",
	Run: func(u *Unit, report ReportFunc) {
		unitsPath := u.ModulePath + "/internal/units"
		isUnitsParam := func(t types.Type) (string, bool) {
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			obj := named.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != unitsPath {
				return "", false
			}
			switch obj.Name() {
			case "Time", "Bytes":
				return obj.Name(), true
			}
			return "", false
		}
		inspect(u, true, func(f *ast.File, n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion like units.Time(x), not a call
			}
			sig, ok := u.Info.TypeOf(call.Fun).(*types.Signature)
			if !ok {
				return true // builtin or type error
			}
			for i, arg := range call.Args {
				lit := bareIntLiteral(arg)
				if lit == nil || lit.Value == "0" {
					continue
				}
				pt := paramType(sig, i, call.Ellipsis.IsValid())
				if pt == nil {
					continue
				}
				if name, ok := isUnitsParam(pt); ok {
					report(arg.Pos(), "bare literal %s passed as units.%s; spell the unit (e.g. %s) or use a named constant",
						lit.Value, name, exampleFor(name, lit.Value))
				}
			}
			return true
		})
	},
}

// bareIntLiteral unwraps parentheses and unary +/- and returns the integer
// BasicLit underneath, or nil.
func bareIntLiteral(e ast.Expr) *ast.BasicLit {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.ADD && x.Op != token.SUB {
				return nil
			}
			e = x.X
		case *ast.BasicLit:
			if x.Kind == token.INT {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// paramType returns the type of parameter i of sig, accounting for
// variadics. A nil return means "not a checkable positional parameter"
// (e.g. a slice passed with ... spread).
func paramType(sig *types.Signature, i int, hasEllipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if hasEllipsis {
			return nil // arg is the whole slice, not an element
		}
		slice, ok := params.At(n - 1).Type().(*types.Slice)
		if !ok {
			return nil
		}
		return slice.Elem()
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// exampleFor renders a fix suggestion for the diagnostic.
func exampleFor(unit, lit string) string {
	if unit == "Time" {
		return lit + "*units.Nanosecond"
	}
	return lit + "*units.KiB"
}
