package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/callgraph"
)

// SimPure verifies that every callback scheduled on engine.Sim.At/After —
// and every module-internal helper such a callback calls, transitively —
// touches only simulator-owned state. Event callbacks execute inside the
// deterministic event loop: one fmt.Println, wall-clock read, channel
// operation, or write to a captured host variable makes the replay's
// behavior (or its observable output) depend on something outside the
// (trace, config) pair, which is exactly what the record/replay methodology
// forbids.
//
// "Simulator-owned" is approximated statically: a write inside a callback
// is allowed when its root is declared inside the callback, or when it
// goes through a selector/index/dereference whose root variable's type is
// (a pointer to) a named type declared in a simulator package or in the
// scheduling package itself — i.e. state reachable from the component
// graph. Bare assignments to captured variables, package-level variables,
// and writes through captured non-component values (raw pointers, maps,
// slices) are violations.
//
// Known soundness limits, by design: interface method calls and calls into
// packages outside the module are trusted (except the host-facing packages
// and wall-clock functions, which are rejected on sight), and callbacks
// passed as opaque function values cannot be traversed — those are flagged
// so the author either names the function or suppresses with a reason.
// internal/engine itself is exempt: it is the kernel being trusted.
var SimPure = &Analyzer{
	Name: "simpure",
	Doc:  "event callbacks scheduled on engine.Sim must touch only simulator-owned state",
	Run:  runSimPure,
}

// simpureHostPackages are packages whose use inside an event callback is an
// immediate violation: they reach host I/O, processes, or the network.
var simpureHostPackages = map[string]string{
	"os":        "host process and file-system state",
	"os/exec":   "spawns host processes",
	"os/signal": "host signal delivery",
	"net":       "network I/O",
	"net/http":  "network I/O",
	"net/rpc":   "network I/O",
	"syscall":   "raw system calls",
	"io/ioutil": "host file-system I/O",
	"log":       "writes to host stderr",
}

// simpureFmtPrinters are the fmt functions that write to host stdout.
// Sprintf and friends are pure and stay allowed.
var simpureFmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// spFinding is one purity violation found while walking a callback body,
// positioned wherever the offending syntax lives (possibly another unit).
type spFinding struct {
	pos token.Pos
	msg string
}

type simpureChecker struct {
	u      *Unit
	report ReportFunc
	g      *callgraph.Graph // shared decl + field-store index (see callgraph)

	files   map[string]bool        // filenames belonging to the scheduling unit
	visited map[string]bool        // decls entered (recursion guard)
	cache   map[string][]spFinding // memoized per-decl findings
	seen    map[string]bool        // emitted diagnostics (dedup across call sites)

	fieldVisited map[string]bool        // fields entered (recursion guard)
	fieldCache   map[string][]spFinding // memoized per-field findings
}

func runSimPure(u *Unit, report ReportFunc) {
	// The event kernel itself manipulates heap and clock state that no other
	// package may touch; it is the trusted base, not a subject.
	if rel := u.RelPath(); rel == "internal/engine" || rel == "internal/engine_test" {
		return
	}
	c := &simpureChecker{
		u:            u,
		report:       report,
		g:            graphFor(u),
		visited:      map[string]bool{},
		cache:        map[string][]spFinding{},
		seen:         map[string]bool{},
		fieldVisited: map[string]bool{},
		fieldCache:   map[string][]spFinding{},
	}
	c.files = map[string]bool{}
	for _, f := range u.Files {
		c.files[u.Fset.Position(f.Pos()).Filename] = true
	}
	inspect(u, true, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.isSchedule(call) {
			return true
		}
		// The callback is the last argument on every schedule method:
		// At(t, fn), After(d, fn), AtShard(shard, t, fn).
		c.checkCallback(call.Args[len(call.Args)-1])
		return true
	})
}

// isSchedule reports whether call invokes (*engine.Sim).At, .After, or
// .AtShard with its expected argument count.
func (c *simpureChecker) isSchedule(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.u.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "At", "After":
		if len(call.Args) != 2 {
			return false
		}
	case "AtShard":
		if len(call.Args) != 3 {
			return false
		}
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sim" && obj.Pkg() != nil &&
		obj.Pkg().Path() == c.u.ModulePath+"/internal/engine"
}

func (c *simpureChecker) posKey(pos token.Pos) string { return c.g.PosKey(pos) }

// checkCallback dispatches on the shape of the scheduled callback argument.
func (c *simpureChecker) checkCallback(arg ast.Expr) {
	switch e := unparenExpr(arg).(type) {
	case *ast.FuncLit:
		c.emit(arg, c.checkBody(c.u.asSource(), e, e.Body))
	case *ast.Ident:
		c.checkNamedCallback(arg, e)
	case *ast.SelectorExpr:
		c.checkNamedCallback(arg, e.Sel)
	default:
		c.emitOne(arg.Pos(),
			"scheduled callback is a computed expression that cannot be statically verified; pass a function literal or method value")
	}
}

func (c *simpureChecker) checkNamedCallback(arg ast.Expr, id *ast.Ident) {
	switch obj := c.u.Info.Uses[id].(type) {
	case *types.Func:
		c.emit(arg, c.checkFunc(obj))
	case *types.Var:
		if obj.IsField() {
			// A pre-bound event field (the pooled-callback idiom): verified
			// through every assignment to the field instead of at this site.
			c.emit(arg, c.checkEventField(obj))
			return
		}
		c.emitOne(arg.Pos(),
			"scheduled callback %s is a function value that cannot be statically verified; pass a function literal or method value", id.Name)
	default:
		c.emitOne(arg.Pos(),
			"scheduled callback %s is a function value that cannot be statically verified; pass a function literal or method value", id.Name)
	}
}

// checkEventField verifies a callback scheduled through a struct field (a
// pre-bound event, the allocation-free idiom internal/machine uses on its
// hot path): the field is pure iff every assignment to it, anywhere in the
// loaded set, stores a verifiable callback — a function literal, a named
// function, or a method value. Field object identity is bridged across
// units by declaration position, like the function index.
func (c *simpureChecker) checkEventField(v *types.Var) []spFinding {
	key := c.posKey(v.Pos())
	if c.fieldVisited[key] {
		return c.fieldCache[key]
	}
	c.fieldVisited[key] = true
	stores := c.g.FieldStores(v)
	if len(stores) == 0 {
		return []spFinding{{v.Pos(), fmt.Sprintf(
			"event field %s is scheduled but never assigned a callback the analyzer can see; bind it to a function literal or method value", v.Name())}}
	}
	var fs []spFinding
	for _, st := range stores {
		fs = append(fs, c.checkStore(st, key)...)
	}
	c.fieldCache[key] = fs
	return fs
}

// checkStore verifies one assignment to a scheduled event field.
func (c *simpureChecker) checkStore(st callgraph.FieldStore, selfKey string) []spFinding {
	if st.Rhs == nil {
		return []spFinding{{st.Pos,
			"event field is bound through a multi-value assignment that cannot be statically verified; bind it from a single assignment"}}
	}
	switch e := unparenExpr(st.Rhs).(type) {
	case *ast.FuncLit:
		return c.checkBody(st.Src, e, e.Body)
	case *ast.Ident:
		return c.checkStoredNamed(st, e, selfKey)
	case *ast.SelectorExpr:
		return c.checkStoredNamed(st, e.Sel, selfKey)
	default:
		return []spFinding{{st.Rhs.Pos(),
			"event field is bound to a computed expression that cannot be statically verified; bind a function literal or method value"}}
	}
}

func (c *simpureChecker) checkStoredNamed(st callgraph.FieldStore, id *ast.Ident, selfKey string) []spFinding {
	switch obj := st.Src.Info.Uses[id].(type) {
	case *types.Func:
		return c.checkFunc(obj)
	case *types.Var:
		if obj.IsField() {
			if c.posKey(obj.Pos()) == selfKey {
				return nil // copying the field onto itself
			}
			return c.checkEventField(obj)
		}
	}
	return []spFinding{{st.Rhs.Pos(), fmt.Sprintf(
		"event field is bound to function value %s, which cannot be statically verified; bind a function literal or method value", id.Name)}}
}

// checkFunc resolves a module-internal function object to its declaration
// and verifies the body. Callees outside the module (and bodiless decls)
// are trusted here; direct host-package uses inside analyzed bodies are
// still caught selector-by-selector.
func (c *simpureChecker) checkFunc(fn *types.Func) []spFinding {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	path := pkg.Path()
	if path != c.u.ModulePath && !strings.HasPrefix(path, c.u.ModulePath+"/") {
		return nil
	}
	if path == c.u.ModulePath+"/internal/engine" {
		return nil
	}
	d, ok := c.g.DeclOf(fn)
	if !ok {
		return nil // outside the loaded set (fixture mode); trusted
	}
	return c.checkDecl(d)
}

// checkDecl verifies one declaration, memoized. Recursive call chains
// terminate because a decl already being checked returns its (so far
// empty) cache entry.
func (c *simpureChecker) checkDecl(d callgraph.Decl) []spFinding {
	key := c.posKey(d.Fn.Name.Pos())
	if c.visited[key] {
		return c.cache[key]
	}
	c.visited[key] = true
	if d.Fn.Body == nil {
		return nil
	}
	fs := c.checkBody(d.Src, d.Fn, d.Fn.Body)
	c.cache[key] = fs
	return fs
}

// checkBody walks one function body looking for purity violations. owner is
// the unit whose type info resolves the body's identifiers; root delimits
// "inside the callback" for the capture analysis (the FuncLit or FuncDecl
// whose body this is — anything declared within it is local, anything
// outside is captured).
func (c *simpureChecker) checkBody(owner *callgraph.Source, root ast.Node, body *ast.BlockStmt) []spFinding {
	var fs []spFinding
	add := func(pos token.Pos, format string, args ...any) {
		fs = append(fs, spFinding{pos, fmt.Sprintf(format, args...)})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			add(n.Pos(), "event callback spawns a goroutine; callbacks run to completion on the event loop's single logical thread")
		case *ast.SendStmt:
			add(n.Pos(), "channel send inside an event callback; callbacks must not synchronize with host goroutines")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				add(n.Pos(), "channel receive inside an event callback; callbacks must not synchronize with host goroutines")
			}
		case *ast.SelectStmt:
			add(n.Pos(), "select inside an event callback; callbacks must not synchronize with host goroutines")
		case *ast.RangeStmt:
			if t := owner.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add(n.X.Pos(), "range over a channel inside an event callback; callbacks must not synchronize with host goroutines")
				}
			}
			if n.Tok == token.ASSIGN {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if e != nil {
						c.checkWrite(owner, root, e, add)
					}
				}
			}
		case *ast.SelectorExpr:
			c.checkSelector(owner, n, add)
		case *ast.CallExpr:
			c.checkCall(owner, n, add)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if n.Tok == token.DEFINE {
					if id, ok := lhs.(*ast.Ident); ok && owner.Info.Defs[id] != nil {
						continue // a genuinely new variable, not a write
					}
				}
				c.checkWrite(owner, root, lhs, add)
			}
		case *ast.IncDecStmt:
			c.checkWrite(owner, root, n.X, add)
		}
		return true
	})
	return fs
}

// checkSelector rejects package-qualified uses of host-facing packages,
// wall-clock reads, stdout printers, and sync/atomic primitives.
func (c *simpureChecker) checkSelector(owner *callgraph.Source, sel *ast.SelectorExpr, add func(token.Pos, string, ...any)) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	path := pkgPathOf(owner.Info, id)
	if path == "" {
		return
	}
	obj := owner.Info.Uses[sel.Sel]
	if obj == nil {
		return
	}
	if _, isType := obj.(*types.TypeName); isType {
		return // naming a type (time.Duration, os.FileMode) is harmless
	}
	switch {
	case simpureHostPackages[path] != "":
		add(sel.Pos(), "%s.%s inside an event callback (%s); callbacks may touch only simulator state",
			pkgBase(path), sel.Sel.Name, simpureHostPackages[path])
	case path == "time" && wallClockFuncs[sel.Sel.Name]:
		add(sel.Pos(), "time.%s reads the host clock inside an event callback; simulated time comes from engine.Sim", sel.Sel.Name)
	case path == "fmt" && simpureFmtPrinters[sel.Sel.Name]:
		add(sel.Pos(), "fmt.%s writes to host stdout inside an event callback; record results on the component instead", sel.Sel.Name)
	case path == "sync" || path == "sync/atomic":
		add(sel.Pos(), "%s.%s inside an event callback; the event loop is single-threaded — locks and atomics hide cross-thread state",
			pkgBase(path), sel.Sel.Name)
	}
}

// checkCall handles the call-shaped rules: the close builtin, sync methods
// reached through values, opaque function values, and — the transitive
// step — module-internal helpers, whose findings are folded into the
// caller's.
func (c *simpureChecker) checkCall(owner *callgraph.Source, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	if tv, ok := owner.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	var id *ast.Ident
	switch f := unparenExpr(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.FuncLit:
		return // immediately-invoked literal: its body is in this walk
	default:
		add(call.Pos(), "call through a computed function expression inside an event callback cannot be verified")
		return
	}
	switch obj := owner.Info.Uses[id].(type) {
	case *types.Builtin:
		if obj.Name() == "close" {
			add(call.Pos(), "close of a channel inside an event callback; callbacks must not synchronize with host goroutines")
		}
	case *types.Var:
		add(call.Pos(), "call through function value %s inside an event callback cannot be verified; call a named function or method", id.Name)
	case *types.Func:
		pkg := obj.Pkg()
		if pkg == nil {
			return
		}
		path := pkg.Path()
		if path == "sync" || path == "sync/atomic" {
			// Methods like (*sync.Mutex).Lock arrive through a value
			// selector, which the package-qualified rule cannot see.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				add(call.Pos(), "%s.%s inside an event callback; the event loop is single-threaded — locks and atomics hide cross-thread state",
					pkgBase(path), obj.Name())
			}
			return
		}
		if path != c.u.ModulePath && !strings.HasPrefix(path, c.u.ModulePath+"/") {
			return // stdlib and friends: trusted unless host-facing (selector rule)
		}
		if path == c.u.ModulePath+"/internal/engine" {
			return // the kernel's own API (At/After/Now/…) is the trusted base
		}
		if d, ok := c.g.DeclOf(obj); ok {
			// Fold the callee's findings into ours; the emitter re-anchors
			// positions that fall outside the scheduling unit.
			for _, f := range c.checkDecl(d) {
				add(f.pos, "%s", f.msg)
			}
		}
	}
}

// checkWrite vets one assignment target inside a callback.
func (c *simpureChecker) checkWrite(owner *callgraph.Source, root ast.Node, lhs ast.Expr, add func(token.Pos, string, ...any)) {
	id, direct := rootIdentOf(lhs)
	if id == nil || id.Name == "_" {
		return
	}
	if owner.Info.Defs[id] != nil {
		return // defined at this site, inside the callback by construction
	}
	obj := owner.Info.Uses[id]
	if pn, ok := obj.(*types.PkgName); ok {
		add(lhs.Pos(), "write to a package-level variable of %s inside an event callback; replay state must live in the component graph",
			pn.Imported().Path())
		return
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		add(lhs.Pos(), "write to package-level variable %s inside an event callback; replay state must live in the component graph", v.Name())
		return
	}
	if v.Pos() >= root.Pos() && v.Pos() <= root.End() {
		return // declared inside the callback: locals, params, receiver
	}
	if direct {
		add(lhs.Pos(), "assignment to captured variable %s inside an event callback; state a callback mutates must hang off a simulator component", v.Name())
		return
	}
	if !c.simOwned(owner, v.Type()) {
		add(lhs.Pos(), "write through captured %s mutates state of type %s, which is not simulator-owned; reach it via a component field", v.Name(), v.Type())
	}
}

// simOwned reports whether t is (a pointer to) a named type declared in a
// simulator package or in the scheduling unit's own package — the static
// approximation of "reachable from the component graph".
func (c *simpureChecker) simOwned(owner *callgraph.Source, t types.Type) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			pkg := tt.Obj().Pkg()
			if pkg == nil {
				return false
			}
			if pkg == owner.Pkg {
				return true
			}
			return simulatorPackages[strings.TrimPrefix(pkg.Path(), c.u.ModulePath+"/")]
		default:
			return false
		}
	}
}

// emit reports a batch of findings for one scheduling site. Findings inside
// the scheduling unit keep their own positions (so suppression comments sit
// next to the offending line); findings reached transitively in another
// unit are re-anchored to the call site, naming the remote location.
func (c *simpureChecker) emit(at ast.Expr, fs []spFinding) {
	for _, f := range fs {
		p := c.u.Fset.Position(f.pos)
		if c.files[p.Filename] {
			c.emitOne(f.pos, "%s", f.msg)
		} else {
			c.emitOne(at.Pos(), "callback reaches impure code at %s:%d: %s",
				filepath.Base(p.Filename), p.Line, f.msg)
		}
	}
}

// emitOne reports once per (position, message): the same helper reached
// from several scheduling sites yields one diagnostic.
func (c *simpureChecker) emitOne(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := c.posKey(pos) + " " + msg
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.report(pos, "%s", msg)
}

// rootIdentOf unwraps an assignment target to its root identifier. direct
// is true when the target IS the identifier (a bare captured write) rather
// than a selector/index/dereference path through it.
func rootIdentOf(e ast.Expr) (id *ast.Ident, direct bool) { return callgraph.RootIdent(e) }

// unparenExpr strips any number of enclosing parentheses.
func unparenExpr(e ast.Expr) ast.Expr { return callgraph.Unparen(e) }

// pkgBase returns the final element of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
