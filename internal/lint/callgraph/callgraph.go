// Package callgraph is the shared call-resolution substrate of the lint
// suite. Two analyzers walk transitive callee closures over the module —
// simpure (event-callback purity) and hotpath (allocation freedom) — and
// both must answer the same questions identically: which declaration does
// this call resolve to, and which expressions were ever stored into this
// struct field (the pre-bound event/callback idiom the replay kernel uses
// on its hot path)? This package owns those indexes so the answers cannot
// drift between analyzers.
//
// Identity across parses: objects resolved through the loader's import
// cache point at a separate parse of the same files, so token.Pos values
// differ between ASTs while file positions agree. Every index is therefore
// keyed by the "file:line:col" of the declaring identifier (PosKey), never
// by token.Pos or object pointer.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Source is one type-checked package: the syntax plus the type info that
// resolves identifiers within its files. The lint loader's units convert
// to Sources; the graph never needs the loader itself.
type Source struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// Decl is a function declaration paired with the Source whose type info
// resolves its body.
type Decl struct {
	Src *Source
	Fn  *ast.FuncDecl
}

// FieldStore is one assignment to a struct field: the stored expression
// and the Source that resolves it. A nil Rhs marks a store whose value
// cannot be matched to the field (a multi-value assignment from a call).
type FieldStore struct {
	Src *Source
	Rhs ast.Expr
	Pos token.Pos
}

// Graph indexes every function declaration and struct-field store across a
// set of sources (the whole module for Load-built units, a single package
// for fixture units). Build one per resolution scope and share it between
// analyzers.
type Graph struct {
	fset    *token.FileSet
	sources []*Source
	decls   map[string]Decl
	fields  map[string][]FieldStore // built lazily by FieldStores
}

// New builds the declaration index over sources. All sources must share
// fset. The field-store index is deferred until the first FieldStores call:
// only analyses that chase stored callbacks pay for that walk.
func New(fset *token.FileSet, sources []*Source) *Graph {
	g := &Graph{fset: fset, sources: sources, decls: map[string]Decl{}}
	for _, src := range sources {
		for _, f := range src.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					g.decls[g.PosKey(fd.Name.Pos())] = Decl{Src: src, Fn: fd}
				}
			}
		}
	}
	return g
}

// PosKey renders a position as the parse-independent "file:line:col"
// identity key used by every index.
func (g *Graph) PosKey(pos token.Pos) string {
	p := g.fset.Position(pos)
	return p.Filename + ":" + strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Column)
}

// DeclAt returns the declaration whose name sits at the given position key.
func (g *Graph) DeclAt(key string) (Decl, bool) {
	d, ok := g.decls[key]
	return d, ok
}

// DeclOf resolves a function object to its declaration in the loaded set.
// ok is false for functions outside the set (stdlib, import-cache-only
// packages in fixture mode) and for bodiless declarations' objects that
// were never parsed here.
func (g *Graph) DeclOf(fn *types.Func) (Decl, bool) {
	return g.DeclAt(g.PosKey(fn.Pos()))
}

// FieldStores returns every assignment to the struct field declared by v,
// anywhere in the loaded set: plain and multi-value assignments through a
// selector, and keyed composite-literal elements. Field identity is
// bridged across parses by declaration position, like the function index.
func (g *Graph) FieldStores(v *types.Var) []FieldStore {
	g.buildFields()
	return g.fields[g.PosKey(v.Pos())]
}

// buildFields walks every source once, recording stores by the position
// key of the field written.
func (g *Graph) buildFields() {
	if g.fields != nil {
		return
	}
	g.fields = map[string][]FieldStore{}
	record := func(src *Source, id *ast.Ident, st FieldStore) {
		v, ok := src.Info.Uses[id].(*types.Var)
		if !ok || !v.IsField() {
			return
		}
		key := g.PosKey(v.Pos())
		g.fields[key] = append(g.fields[key], st)
	}
	for _, src := range g.sources {
		src := src
		for _, f := range src.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						sel, ok := Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						st := FieldStore{Src: src, Pos: lhs.Pos()}
						if len(n.Rhs) == len(n.Lhs) {
							st.Rhs = n.Rhs[i]
						}
						record(src, sel.Sel, st)
					}
				case *ast.CompositeLit:
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						id, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						record(src, id, FieldStore{Src: src, Rhs: kv.Value, Pos: kv.Pos()})
					}
				}
				return true
			})
		}
	}
}

// CalleeIdent returns the identifier naming a call's target: the Ident
// itself for f(x), the selector's Sel for a.b(x), nil for computed
// expressions (immediately-invoked literals, index expressions) whose
// handling is analyzer-specific.
func CalleeIdent(call *ast.CallExpr) *ast.Ident {
	switch f := Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f
	case *ast.SelectorExpr:
		return f.Sel
	}
	return nil
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// RootIdent unwraps an assignment target or value path to its root
// identifier. direct is true when the expression IS the identifier rather
// than a selector/index/dereference/slice path through it.
func RootIdent(e ast.Expr) (id *ast.Ident, direct bool) {
	direct = true
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, direct
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e, direct = x.X, false
		case *ast.IndexExpr:
			e, direct = x.X, false
		case *ast.StarExpr:
			e, direct = x.X, false
		case *ast.SliceExpr:
			e, direct = x.X, false
		default:
			return nil, false
		}
	}
}
