package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe matches a "// want" marker with an optional expected count:
// "// want" (one diagnostic) or "// want 2".
var wantRe = regexp.MustCompile(`// want(?: (\d+))?\s*$`)

// wantMarkers scans every .go file in dir for want markers and returns the
// expected diagnostic count per file:line.
func wantMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	want := map[string]int{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			n := 1
			if m[1] != "" {
				n, _ = strconv.Atoi(m[1])
			}
			want[fmt.Sprintf("%s:%d", path, line)] = n
		}
		f.Close()
	}
	return want
}

// moduleRoot locates the repository root from the test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// checkFixture loads testdata/<name> under importPath, runs the single
// analyzer, and compares diagnostics against the fixture's want markers.
func checkFixture(t *testing.T, a *lint.Analyzer, name, importPath string) {
	t.Helper()
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", name)
	u, err := lint.LoadDirAs(root, dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := lint.RunUnit(u, []*lint.Analyzer{a})

	got := map[string]int{}
	for _, d := range diags {
		if d.Analyzer != a.Name {
			t.Errorf("diagnostic from wrong analyzer: %s", d)
		}
		got[fmt.Sprintf("%s:%d", d.File, d.Line)]++
	}
	want := wantMarkers(t, dir)
	for loc, n := range want {
		if got[loc] != n {
			t.Errorf("%s: want %d diagnostic(s), got %d", loc, n, got[loc])
		}
	}
	for loc, n := range got {
		if want[loc] == 0 {
			t.Errorf("%s: unexpected diagnostic(s) (%d): %v", loc, n, diags)
		}
	}
}

func TestNoWallClockFixture(t *testing.T) {
	// Loaded as a simulator package, every clock read fires.
	checkFixture(t, lint.NoWallClock, "wallclock", "repro/internal/engine")
}

func TestNoWallClockScopedToSimulatorPackages(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "wallclock")
	u, err := lint.LoadDirAs(root, dir, "repro/internal/report")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunUnit(u, []*lint.Analyzer{lint.NoWallClock}); len(diags) != 0 {
		t.Errorf("non-simulator package should be exempt, got %v", diags)
	}
}

func TestNoGlobalRandFixture(t *testing.T) {
	// Applies everywhere outside internal/xrand.
	checkFixture(t, lint.NoGlobalRand, "globalrand", "repro/internal/workload")
}

func TestNoGlobalRandExemptsXrand(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "globalrand")
	u, err := lint.LoadDirAs(root, dir, "repro/internal/xrand")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunUnit(u, []*lint.Analyzer{lint.NoGlobalRand}); len(diags) != 0 {
		t.Errorf("internal/xrand should be exempt, got %v", diags)
	}
}

func TestSortedMapRangeFixture(t *testing.T) {
	checkFixture(t, lint.SortedMapRange, "maprange", "repro/internal/machine")
}

func TestSortedMapRangeScopedToSimulatorPackages(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "maprange")
	u, err := lint.LoadDirAs(root, dir, "repro/internal/model")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunUnit(u, []*lint.Analyzer{lint.SortedMapRange}); len(diags) != 0 {
		t.Errorf("non-simulator package should be exempt, got %v", diags)
	}
}

func TestParOnlyGoroutinesFixture(t *testing.T) {
	checkFixture(t, lint.ParOnlyGoroutines, "goroutine", "repro/internal/core")
}

func TestParOnlyGoroutinesExemptsPar(t *testing.T) {
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "goroutine")
	u, err := lint.LoadDirAs(root, dir, "repro/internal/par")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunUnit(u, []*lint.Analyzer{lint.ParOnlyGoroutines}); len(diags) != 0 {
		t.Errorf("internal/par should be exempt, got %v", diags)
	}
}

func TestUnitsLitFixture(t *testing.T) {
	checkFixture(t, lint.UnitsLit, "unitslit", "repro/internal/lintfixture")
}

func TestSimPureFixture(t *testing.T) {
	// Loaded as a simulator package so the fixture's own component types
	// count as simulator-owned.
	checkFixture(t, lint.SimPure, "simpure", "repro/internal/machine")
}

func TestSimPureExemptsEngine(t *testing.T) {
	// The event kernel is the trusted base: the same violating fixture
	// loaded under internal/engine must produce nothing.
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "simpure")
	u, err := lint.LoadDirAs(root, dir, "repro/internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.RunUnit(u, []*lint.Analyzer{lint.SimPure}); len(diags) != 0 {
		t.Errorf("internal/engine should be exempt, got %v", diags)
	}
}

func TestHotPathFixture(t *testing.T) {
	// One want marker (or count) per allocation construct class; good.go
	// must stay silent.
	checkFixture(t, lint.HotPath, "hotpath", "repro/internal/hotfixture")
}

func TestHotPathBareIgnore(t *testing.T) {
	// A bare //nmlint:ignore hotpath must not suppress the finding and is
	// itself reported; a reasoned one suppresses. Asserted on messages
	// because the bare directive occupies its own line and cannot carry a
	// want marker.
	root := moduleRoot(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "hotpathignore")
	u, err := lint.LoadDirAs(root, dir, "repro/internal/hotignore")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunUnit(u, []*lint.Analyzer{lint.HotPath})
	var bareReports, appendReports int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "suppressing hotpath requires a reason"):
			bareReports++
		case strings.Contains(d.Message, "append may grow"):
			appendReports++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if bareReports != 1 {
		t.Errorf("bare ignore reports = %d, want 1 (diags: %v)", bareReports, diags)
	}
	if appendReports != 1 {
		t.Errorf("append reports = %d, want 1: the bare ignore must not suppress and the reasoned one must (diags: %v)", appendReports, diags)
	}
}

// TestWholeModuleClean is the self-referential acceptance gate: the suite
// must load, type-check, and pass every analyzer over this repository.
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type check is the slow path; covered by scripts/check.sh")
	}
	mod, err := lint.Load(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Units()) < 20 {
		t.Fatalf("suspiciously few units loaded: %d", len(mod.Units()))
	}
	for _, d := range lint.Run(mod) {
		t.Errorf("%s", d)
	}
}
