package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/callgraph"
)

// Unit is one analyzable package: its syntax plus full type information.
// Directories with test files yield a unit whose Files include the
// in-package _test.go files (type-checked together, as the go tool does);
// external test packages (package foo_test) form their own unit.
type Unit struct {
	ModulePath string
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	TestFiles  map[*ast.File]bool // which Files came from _test.go
	Pkg        *types.Package
	Info       *types.Info

	// Mod links back to the whole loaded module when the unit came from
	// Load; module-wide analyses (the simpure and hotpath transitive call
	// walks) use it to resolve callees declared in sibling packages. Units
	// built by LoadDirAs stand alone and leave it nil.
	Mod *Module

	src *callgraph.Source // memoized callgraph view of this unit
	cg  *callgraph.Graph  // single-unit graph for LoadDirAs fixtures
}

// Module is a loaded module tree.
type Module struct {
	Root  string // absolute module root directory
	Path  string // module path from go.mod
	Fset  *token.FileSet
	units []*Unit
	cg    *callgraph.Graph // shared module-wide call graph, built on demand
}

// Units returns every analyzable unit, sorted by import path (external test
// packages sort after their package).
func (m *Module) Units() []*Unit { return m.units }

// Ignores unions the suppression directives of every unit, so transitive
// analyzers that report findings in sibling packages honor the ignore
// comment sitting next to the flagged construct.
func (m *Module) Ignores() ignoreSet {
	set := ignoreSet{}
	for _, u := range m.units {
		for file, byLine := range collectIgnores(u) {
			dst := set[file]
			if dst == nil {
				set[file] = byLine
				continue
			}
			for line, names := range byLine {
				dst[line] = append(dst[line], names...)
			}
		}
	}
	return set
}

// asSource converts the unit to its callgraph view, memoized so object
// identity of the Source is stable across analyzers.
func (u *Unit) asSource() *callgraph.Source {
	if u.src == nil {
		u.src = &callgraph.Source{Fset: u.Fset, Files: u.Files, Info: u.Info, Pkg: u.Pkg}
	}
	return u.src
}

// graphFor returns the call graph covering the unit's resolution scope: the
// whole module for Load-built units (built once, cached on the Module, and
// shared by every analyzer), or the unit alone for LoadDirAs fixtures.
func graphFor(u *Unit) *callgraph.Graph {
	if u.Mod != nil {
		if u.Mod.cg == nil {
			srcs := make([]*callgraph.Source, 0, len(u.Mod.units))
			for _, uu := range u.Mod.units {
				srcs = append(srcs, uu.asSource())
			}
			u.Mod.cg = callgraph.New(u.Fset, srcs)
		}
		return u.Mod.cg
	}
	if u.cg == nil {
		u.cg = callgraph.New(u.Fset, []*callgraph.Source{u.asSource()})
	}
	return u.cg
}

// loader resolves imports for type checking: module-internal paths load
// from source under the module root (memoized), everything else delegates
// to the standard library's source importer rooted at GOROOT.
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*types.Package
	loading map[string]bool
}

func newLoader(root, modPath string, fset *token.FileSet) *loader {
	return &loader{
		root:    root,
		modPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if pkg, ok := l.cache[path]; ok {
			return pkg, nil
		}
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath)))
		files, _, _, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("lint: no Go files in %s", dir)
		}
		pkg, _, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// parseDir parses every .go file in dir, split into regular files,
// in-package test files, and external (package foo_test) test files.
func (l *loader) parseDir(dir string) (regular, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS.go name
		// suffixes) so the loader type-checks the same file set go build
		// compiles — otherwise platform-split files (trace's mmap_unix.go /
		// mmap_other.go pair) look like duplicate declarations.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		case strings.HasSuffix(name, "_test.go"):
			inTest = append(inTest, f)
		default:
			regular = append(regular, f)
		}
	}
	return regular, inTest, extTest, nil
}

// check type-checks one file set as a package.
func (l *loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return pkg, info, fmt.Errorf("lint: type errors in %s: %v", path, errs[0])
	}
	if err != nil {
		return pkg, info, err
	}
	return pkg, info, nil
}

// Load parses and type-checks every package under the module root and
// returns the analyzable units.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := newLoader(root, modPath, fset)
	mod := &Module{Root: root, Path: modPath, Fset: fset}

	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		regular, inTest, extTest, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if len(regular)+len(inTest)+len(extTest) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}

		if len(regular) > 0 {
			// Warm the import cache with the regular-files-only package so
			// external test units (and other packages) import the canonical
			// API, then analyze regular + in-package test files together.
			if _, err := l.Import(importPath); err != nil {
				return nil, err
			}
			files := append(append([]*ast.File{}, regular...), inTest...)
			pkg, info, err := l.check(importPath, files)
			if err != nil {
				return nil, err
			}
			mod.units = append(mod.units, &Unit{
				ModulePath: modPath,
				ImportPath: importPath,
				Dir:        dir,
				Fset:       fset,
				Files:      files,
				TestFiles:  markTests(fset, files),
				Pkg:        pkg,
				Info:       info,
			})
		}
		if len(extTest) > 0 {
			pkg, info, err := l.check(importPath+"_test", extTest)
			if err != nil {
				return nil, err
			}
			mod.units = append(mod.units, &Unit{
				ModulePath: modPath,
				ImportPath: importPath + "_test",
				Dir:        dir,
				Fset:       fset,
				Files:      extTest,
				TestFiles:  markTests(fset, extTest),
				Pkg:        pkg,
				Info:       info,
			})
		}
	}
	for _, u := range mod.units {
		u.Mod = mod
	}
	return mod, nil
}

// LoadDirAs parses and type-checks a single directory as a package with the
// given import path, resolving module-internal imports against root. The
// analyzer tests use it to load fixture packages under import paths that
// trigger path-scoped rules.
func LoadDirAs(root, dir, importPath string) (*Unit, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := newLoader(root, modPath, fset)
	regular, inTest, extTest, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	files := append(append(regular, inTest...), extTest...)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	pkg, info, err := l.check(importPath, files)
	if err != nil {
		return nil, err
	}
	return &Unit{
		ModulePath: modPath,
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		TestFiles:  markTests(fset, files),
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// markTests records which files in the unit are _test.go files.
func markTests(fset *token.FileSet, files []*ast.File) map[*ast.File]bool {
	m := map[*ast.File]bool{}
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			m[f] = true
		}
	}
	return m
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
