package lint

// White-box tests for the -escape-check plumbing: the compiler-output
// parser and the region/cold-line bookkeeping CrossCheck filters through.
// The end-to-end path (go build -gcflags=-m=2 over the real module) runs
// in scripts/check.sh and CI, where the toolchain is guaranteed present.

import (
	"path/filepath"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	out := `# repro/internal/engine
./internal/engine/engine.go:10:6: can inline (*queue).pop
./internal/engine/engine.go:42:13: leaking param: fn
./internal/engine/engine.go:42:13: fn escapes to heap:
./internal/engine/engine.go:42:13:   flow: {heap} = fn:
./internal/engine/engine.go:42:13:     from item{...} (composite literal) at ./internal/engine/engine.go:44:20
./internal/engine/engine.go:57:9: moved to heap: it
./internal/engine/engine.go:60:11: make([]byte, n) does not escape
./internal/machine/machine.go:99:12: &postOp{...} escapes to heap
not a diagnostic line
`
	escs := ParseEscapes(out)
	want := []Escape{
		{File: "./internal/engine/engine.go", Line: 42, Col: 13, Msg: "fn escapes to heap"},
		{File: "./internal/engine/engine.go", Line: 57, Col: 9, Msg: "moved to heap: it"},
		{File: "./internal/machine/machine.go", Line: 99, Col: 12, Msg: "&postOp{...} escapes to heap"},
	}
	if len(escs) != len(want) {
		t.Fatalf("ParseEscapes returned %d escapes, want %d: %v", len(escs), len(want), escs)
	}
	for i, e := range escs {
		if e != want[i] {
			t.Errorf("escape %d = %+v, want %+v", i, e, want[i])
		}
	}
}

func TestRegionSetCovers(t *testing.T) {
	rs := NewRegionSet()
	rs.add(Region{File: "/m/a.go", Func: "hot", StartLine: 10, EndLine: 30})
	rs.addCold("/m/a.go", 20, 22)

	if _, ok := rs.Covers("/m/a.go", 15); !ok {
		t.Error("line 15 should be inside the hot region")
	}
	if _, ok := rs.Covers("/m/a.go", 21); ok {
		t.Error("line 21 is cold (panic/error exit) and must not be covered")
	}
	if _, ok := rs.Covers("/m/a.go", 31); ok {
		t.Error("line 31 is outside the region")
	}
	if _, ok := rs.Covers("/m/b.go", 15); ok {
		t.Error("other files are not covered")
	}
	if got, ok := rs.Covers("/m/a.go", 10); !ok || got.Func != "hot" {
		t.Errorf("Covers should name the region, got %+v ok=%v", got, ok)
	}
}

func TestCrossCheck(t *testing.T) {
	mod := &Module{Root: "/m"}
	rs := NewRegionSet()
	rs.add(Region{File: filepath.Join("/m", "internal", "engine", "engine.go"), Func: "step", StartLine: 40, EndLine: 60})
	rs.addCold(filepath.Join("/m", "internal", "engine", "engine.go"), 50, 52)

	escs := []Escape{
		{File: "./internal/engine/engine.go", Line: 45, Col: 3, Msg: "x escapes to heap"}, // inside: reported
		{File: "./internal/engine/engine.go", Line: 51, Col: 3, Msg: "y escapes to heap"}, // cold line: excused
		{File: "./internal/engine/engine.go", Line: 70, Col: 3, Msg: "z escapes to heap"}, // outside region
		{File: "./internal/machine/machine.go", Line: 45, Col: 3, Msg: "w escapes to heap"} /* other file */}
	diags := CrossCheck(mod, rs, escs)
	if len(diags) != 1 {
		t.Fatalf("CrossCheck returned %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "escape-check" || d.Line != 45 {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
