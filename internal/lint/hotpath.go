package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/callgraph"
)

// HotPath verifies that every function annotated //nmlint:hotpath — and
// every module-internal function, method, or bound callback field it
// reaches, transitively — is free of allocation-inducing constructs. The
// replay kernel's throughput rests on a ~0 allocs/event steady state
// (replay_alloc_test.go enforces it at runtime); this analyzer enforces it
// at review time, pointing at the exact expression that would allocate.
//
// Flagged constructs: new and &composite literals, slice/map literals,
// make of slice/map/chan, append (growth is an allocation unless the
// buffer was pre-sized — justify amortized growth with an ignore reason),
// capturing func literals, method values (they bind a receiver into a
// fresh closure), interface boxing at call arguments, assignments, and
// conversions, map iteration, string concatenation and string<->[]byte
// conversions, defer inside a loop, channel operations, go statements,
// and known allocating stdlib helpers (fmt, errors.New, strconv/strings
// formatting).
//
// Cold paths are excluded: the arguments of a panic call and any return
// whose final result is a non-nil error expression are failure exits, not
// steady state, so allocations there (fmt.Errorf and friends) are fine.
//
// Soundness limits, by design: calls into packages outside the module and
// through interface methods are trusted, and &composite/append findings
// are conservative (the construct may stay on the stack or never grow).
// The -escape-check mode closes the first gap with the compiler's own
// escape analysis; ignore comments with reasons document the second.
//
// Suppression is stricter than for other analyzers: //nmlint:ignore
// hotpath must carry a reason, and a bare one suppresses nothing and is
// itself reported.
var HotPath = &Analyzer{
	Name: hotpathName,
	Doc:  "functions annotated //nmlint:hotpath must not reach allocating constructs",
	Run:  runHotPath,
}

// hotpathName is the analyzer's name as a constant, so the suppression
// machinery can refer to it without an initialization cycle through the
// Analyzer value.
const hotpathName = "hotpath"

// hotpathMarker is the root annotation, written in a function's doc
// comment.
const hotpathMarker = "//nmlint:hotpath"

// hpFinding is one allocation finding, positioned at the allocating
// expression (possibly in another unit than the annotated root).
type hpFinding struct {
	pos token.Pos
	msg string
}

type hotpathChecker struct {
	u      *Unit
	report ReportFunc
	g      *callgraph.Graph // shared decl + field-store index (see callgraph)

	visited  map[string]bool        // decls entered (recursion guard)
	cache    map[string][]hpFinding // memoized per-decl findings
	seen     map[string]bool        // emitted diagnostics (dedup across roots)
	callFuns map[ast.Expr]bool      // selector exprs that are a call's Fun

	fieldVisited map[string]bool        // callback fields entered (recursion guard)
	fieldCache   map[string][]hpFinding // memoized per-field findings

	// regions, when non-nil, collects every hot code span the walk visits
	// (and the cold lines excluded from it) for the -escape-check
	// cross-check against the compiler's escape analysis.
	regions *RegionSet
}

func newHotpathChecker(u *Unit, report ReportFunc, regions *RegionSet) *hotpathChecker {
	return &hotpathChecker{
		u:            u,
		report:       report,
		g:            graphFor(u),
		visited:      map[string]bool{},
		cache:        map[string][]hpFinding{},
		seen:         map[string]bool{},
		callFuns:     map[ast.Expr]bool{},
		fieldVisited: map[string]bool{},
		fieldCache:   map[string][]hpFinding{},
		regions:      regions,
	}
}

func runHotPath(u *Unit, report ReportFunc) {
	newHotpathChecker(u, report, nil).run()
}

func (c *hotpathChecker) run() {
	src := c.u.asSource()
	for _, f := range c.u.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !isHotAnnotated(fd) {
				continue
			}
			c.emit(c.checkDecl(callgraph.Decl{Src: src, Fn: fd}))
		}
	}
	c.reportBareIgnores()
}

// isHotAnnotated reports whether the declaration's doc comment carries the
// //nmlint:hotpath marker.
func isHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, cm := range fd.Doc.List {
		if cm.Text == hotpathMarker || strings.HasPrefix(cm.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// emit reports findings at their true positions, once per (position,
// message) — several roots reaching one helper yield one diagnostic, and
// Run's module-wide pass dedups across units.
func (c *hotpathChecker) emit(fs []hpFinding) {
	for _, f := range fs {
		key := c.g.PosKey(f.pos) + " " + f.msg
		if c.seen[key] {
			continue
		}
		c.seen[key] = true
		c.report(f.pos, "%s", f.msg)
	}
}

// reportBareIgnores flags //nmlint:ignore hotpath comments with no reason.
// collectIgnores refuses to register them, so the report is not
// self-suppressed: an unexplained suppression on a hot path is itself a
// violation of the annotation contract.
func (c *hotpathChecker) reportBareIgnores() {
	for _, f := range c.u.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if !strings.HasPrefix(cm.Text, ignorePrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(cm.Text, ignorePrefix))
				if len(fields) != 1 {
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name == hotpathName {
						c.report(cm.Pos(), "suppressing hotpath requires a reason: //nmlint:ignore hotpath <why this allocation is acceptable>")
					}
				}
			}
		}
	}
}

// checkDecl verifies one declaration, memoized. Recursive call chains
// terminate because a decl already being checked returns its (so far
// empty) cache entry.
func (c *hotpathChecker) checkDecl(d callgraph.Decl) []hpFinding {
	key := c.g.PosKey(d.Fn.Name.Pos())
	if c.visited[key] {
		return c.cache[key]
	}
	c.visited[key] = true
	if d.Fn.Body == nil {
		return nil
	}
	c.noteRegion(d.Src, d.Fn.Name.Name, d.Fn)
	fs := c.checkBody(d.Src, d.Fn.Body)
	c.cache[key] = fs
	return fs
}

// posSpan is a half-open-ish source span used for defer-in-loop detection.
type posSpan struct{ lo, hi token.Pos }

func (s posSpan) contains(p token.Pos) bool { return p >= s.lo && p <= s.hi }

// checkBody walks one function (or stored func literal) body, flagging
// every allocation-inducing construct and folding in the findings of
// module-internal callees. Cold subtrees — panic arguments and error
// returns — are skipped and recorded as excluded lines for -escape-check.
func (c *hotpathChecker) checkBody(owner *callgraph.Source, body *ast.BlockStmt) []hpFinding {
	var fs []hpFinding
	add := func(pos token.Pos, format string, args ...any) {
		fs = append(fs, hpFinding{pos, fmt.Sprintf(format, args...)})
	}

	// Pre-pass for defer-in-loop: a defer allocates per iteration only
	// when its innermost function boundary contains the loop too.
	var loops, lits []posSpan
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, posSpan{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posSpan{n.Body.Pos(), n.Body.End()})
		case *ast.FuncLit:
			lits = append(lits, posSpan{n.Pos(), n.End()})
		}
		return true
	})
	inLoop := func(p token.Pos) bool {
		for _, l := range loops {
			if !l.contains(p) {
				continue
			}
			blocked := false
			for _, f := range lits {
				if f.contains(p) && !(l.lo >= f.lo && l.hi <= f.hi) {
					blocked = true // the defer's closure sits inside the loop
					break
				}
			}
			if !blocked {
				return true
			}
		}
		return false
	}

	info := owner.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.callFuns[callgraph.Unparen(n.Fun)] = true
			if isPanicCall(info, n) {
				c.noteCold(owner, n)
				return false // failure exit: formatting the message is fine
			}
			c.checkCall(owner, n, add)
		case *ast.ReturnStmt:
			if isColdReturn(info, n) {
				c.noteCold(owner, n)
				return false // error exit: fmt.Errorf and friends are fine
			}
		case *ast.FuncLit:
			c.checkCaptures(owner, n, add)
		case *ast.UnaryExpr:
			switch n.Op {
			case token.AND:
				if _, ok := callgraph.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "&composite literal on the hot path; the value escapes (or forces escape analysis) — allocate it at setup and reuse")
				}
			case token.ARROW:
				add(n.Pos(), "channel receive on the hot path; channels allocate and synchronize — hot code must stay on the event loop")
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal allocates its backing array on the hot path; hoist it to setup")
				case *types.Map:
					add(n.Pos(), "map literal allocates on the hot path; hoist it to setup")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if isStringType(info.TypeOf(n.Lhs[0])) {
					add(n.Pos(), "string concatenation allocates on the hot path; use a pre-sized byte buffer")
				}
			}
			if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if t := info.TypeOf(lhs); t != nil {
						c.checkBox(owner, t, n.Rhs[i], "assignment", add)
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				if tv := info.Types[n]; tv.Value == nil { // constant folds at compile time
					add(n.Pos(), "string concatenation allocates on the hot path; use a pre-sized byte buffer")
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					add(n.X.Pos(), "map iteration on the hot path; maps cost hashing and (elsewhere) break determinism — use a slice")
				case *types.Chan:
					add(n.X.Pos(), "range over a channel on the hot path; channels allocate and synchronize")
				}
			}
		case *ast.SendStmt:
			add(n.Pos(), "channel send on the hot path; channels allocate and synchronize — hot code must stay on the event loop")
		case *ast.SelectStmt:
			add(n.Pos(), "select on the hot path; channels allocate and synchronize")
		case *ast.GoStmt:
			add(n.Pos(), "go statement on the hot path allocates a goroutine stack; parallelism belongs in internal/par at setup")
		case *ast.DeferStmt:
			if inLoop(n.Pos()) {
				add(n.Pos(), "defer inside a loop allocates a deferred frame per iteration; hoist it or close over the loop body")
			}
		case *ast.SelectorExpr:
			c.checkMethodValue(owner, n, add)
		}
		return true
	})
	return fs
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := callgraph.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isColdReturn reports whether ret is an error exit: its final result is a
// non-nil expression of a type implementing error. Such returns are the
// failure path of a decode/validate step, not steady state.
func isColdReturn(info *types.Info, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	last := ret.Results[len(ret.Results)-1]
	if tv, ok := info.Types[last]; ok && tv.IsNil() {
		return false
	}
	t := info.TypeOf(last)
	return t != nil && types.Implements(t, errorIface)
}

// isStringType reports whether t's underlying type is a string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether values of t fit in one word and can be
// stored in an interface without allocating: pointers, channels, maps,
// funcs, unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// checkBox flags src when storing it into dst (an interface type) would
// box: concrete, non-pointer-shaped, non-constant values heap-allocate the
// interface payload. Constants convert to static read-only data and
// pointer-shaped values are stored directly, so neither allocates.
func (c *hotpathChecker) checkBox(owner *callgraph.Source, dst types.Type, src ast.Expr, what string, add func(token.Pos, string, ...any)) {
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	if tv, ok := owner.Info.Types[src]; ok && (tv.Value != nil || tv.IsNil()) {
		return
	}
	if id, ok := callgraph.Unparen(src).(*ast.Ident); ok {
		switch owner.Info.Uses[id].(type) {
		case *types.Const, *types.Nil:
			return
		}
	}
	t := owner.Info.TypeOf(src)
	if t == nil {
		return
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := t.Underlying().(*types.Interface); ok {
		return // interface-to-interface copies the existing word pair
	}
	if pointerShaped(t) {
		return
	}
	add(src.Pos(), "%s boxes a %s into an interface, which allocates on the hot path; avoid the interface or pre-box at setup", what, t)
}

// checkCall dispatches one call: conversions, builtins, known stdlib
// allocators, module-internal callees (recursed), callback fields (chased
// through every store), and unverifiable function values.
func (c *hotpathChecker) checkCall(owner *callgraph.Source, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := owner.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(owner, call, add)
		return
	}
	if _, ok := callgraph.Unparen(call.Fun).(*ast.FuncLit); ok {
		return // immediately-invoked literal: body and captures are in this walk
	}
	id := callgraph.CalleeIdent(call)
	if id == nil {
		add(call.Pos(), "call through a computed function expression on the hot path cannot be verified for allocation; call a named function")
		return
	}
	switch obj := info.Uses[id].(type) {
	case *types.Builtin:
		c.checkBuiltin(info, obj.Name(), call, add)
	case *types.Var:
		if obj.IsField() {
			// The pre-bound callback idiom: the call allocates nothing here,
			// but every value ever bound to the field must be hot-clean.
			for _, f := range c.checkFieldCall(obj) {
				add(f.pos, "%s", f.msg)
			}
			c.checkArgs(owner, call, add)
			return
		}
		add(call.Pos(), "call through function value %s on the hot path cannot be verified for allocation; call a named function or a bound field", id.Name)
	case *types.Func:
		if !c.checkNamedCall(owner, call, obj, add) {
			c.checkArgs(owner, call, add)
		}
	}
}

// checkNamedCall handles a call to a named function or method. It returns
// true when the call was flagged as a known allocator, in which case the
// per-argument boxing check is skipped (fmt's ...any boxing is implied by
// the allocator diagnostic).
func (c *hotpathChecker) checkNamedCall(owner *callgraph.Source, call *ast.CallExpr, fn *types.Func, add func(token.Pos, string, ...any)) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
		if msg := allocatorMsg(path, fn.Name()); msg != "" {
			add(call.Pos(), "%s on the hot path; move formatting off the steady state", msg)
			return true
		}
	}
	mod := c.u.ModulePath
	if path != mod && !strings.HasPrefix(path, mod+"/") {
		return false // stdlib and friends: trusted (escape-check backstops)
	}
	if d, ok := c.g.DeclOf(fn); ok {
		for _, f := range c.checkDecl(d) {
			add(f.pos, "%s", f.msg)
		}
	}
	// Unresolvable module-internal functions are interface methods or
	// import-cache shadows (fixture mode); both are trusted, documented
	// soundness limits that -escape-check narrows.
	return false
}

// allocatorMsg names stdlib helpers that always allocate their result.
func allocatorMsg(path, name string) string {
	switch path {
	case "fmt":
		return "fmt." + name + " formats into fresh allocations"
	case "errors":
		if name == "New" || name == "Join" {
			return "errors." + name + " allocates"
		}
	case "strconv":
		switch name {
		case "Itoa", "Quote", "QuoteRune", "Unquote",
			"FormatInt", "FormatUint", "FormatFloat", "FormatBool", "FormatComplex":
			return "strconv." + name + " allocates its result string"
		}
	case "strings":
		switch name {
		case "Join", "Repeat", "Split", "SplitN", "Fields",
			"ToUpper", "ToLower", "Map", "Replace", "ReplaceAll":
			return "strings." + name + " allocates"
		}
	}
	return ""
}

// checkBuiltin flags the allocating builtins.
func (c *hotpathChecker) checkBuiltin(info *types.Info, name string, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	switch name {
	case "new":
		add(call.Pos(), "new(T) allocates on the hot path; allocate at setup and reuse")
	case "append":
		add(call.Pos(), "append may grow the backing array on the hot path; pre-size the buffer at setup or justify the amortization with an ignore reason")
	case "make":
		switch info.TypeOf(call).Underlying().(type) {
		case *types.Slice:
			add(call.Pos(), "make of a slice allocates its backing array on the hot path; hoist the buffer to setup")
		case *types.Map:
			add(call.Pos(), "make of a map allocates on the hot path; hoist it to setup")
		case *types.Chan:
			add(call.Pos(), "make of a channel on the hot path; channels allocate and synchronize")
		}
	case "close":
		add(call.Pos(), "close of a channel on the hot path; channels allocate and synchronize")
	}
}

// checkConversion flags conversions that copy or box: string <-> byte/rune
// slices and concrete values into interface types.
func (c *hotpathChecker) checkConversion(owner *callgraph.Source, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	if len(call.Args) != 1 {
		return
	}
	dst := owner.Info.TypeOf(call)
	src := owner.Info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	switch dst.Underlying().(type) {
	case *types.Interface:
		c.checkBox(owner, dst, call.Args[0], "conversion", add)
	case *types.Basic:
		if isStringType(dst) {
			if _, ok := src.Underlying().(*types.Slice); ok {
				add(call.Pos(), "string(...) conversion copies and allocates on the hot path")
			}
		}
	case *types.Slice:
		if isStringType(src) {
			add(call.Pos(), "byte/rune-slice conversion of a string copies and allocates on the hot path")
		}
	}
}

// checkArgs flags interface boxing at each argument position, including
// interface-typed variadics (a concrete ...T pack usually stays on the
// stack and is left to -escape-check).
func (c *hotpathChecker) checkArgs(owner *callgraph.Source, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	sig, ok := owner.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(n - 1).Type() // slice passed through as-is
			} else if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.checkBox(owner, pt, arg, "argument", add)
		}
	}
}

// checkMethodValue flags x.M used as a value (not called): a method value
// allocates a closure binding its receiver every time it is evaluated.
// Method expressions (T.M) are static and fine.
func (c *hotpathChecker) checkMethodValue(owner *callgraph.Source, sel *ast.SelectorExpr, add func(token.Pos, string, ...any)) {
	if c.callFuns[sel] {
		return
	}
	fn, ok := owner.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if tv, ok := owner.Info.Types[sel.X]; ok && tv.IsType() {
		return
	}
	add(sel.Pos(), "method value %s allocates a closure binding its receiver on the hot path; bind it once at setup", fn.Name())
}

// checkCaptures flags every variable a func literal captures: a capturing
// closure allocates when created, a non-capturing one is a static value.
func (c *hotpathChecker) checkCaptures(owner *callgraph.Source, lit *ast.FuncLit, add func(token.Pos, string, ...any)) {
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := owner.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level access, not a capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal: locals, params
		}
		seen[v] = true
		add(id.Pos(), "func literal captures %s and so allocates a closure on the hot path; pass state through a component field instead", v.Name())
		return true
	})
}

// checkFieldCall verifies a call through a func-typed struct field (the
// pre-bound event idiom): the field is hot-clean iff everything ever
// stored into it, anywhere in the loaded set, is. Memoized per field.
func (c *hotpathChecker) checkFieldCall(v *types.Var) []hpFinding {
	key := c.g.PosKey(v.Pos())
	if c.fieldVisited[key] {
		return c.fieldCache[key]
	}
	c.fieldVisited[key] = true
	stores := c.g.FieldStores(v)
	if len(stores) == 0 {
		return []hpFinding{{v.Pos(), fmt.Sprintf(
			"hot-path call through field %s, which is never bound to a callback the analyzer can see; bind a function literal or named function", v.Name())}}
	}
	var fs []hpFinding
	for _, st := range stores {
		fs = append(fs, c.checkFieldStore(st, key)...)
	}
	c.fieldCache[key] = fs
	return fs
}

// checkFieldStore verifies one binding of a hot callback field.
func (c *hotpathChecker) checkFieldStore(st callgraph.FieldStore, selfKey string) []hpFinding {
	if st.Rhs == nil {
		return []hpFinding{{st.Pos,
			"hot-path callback field is bound through a multi-value assignment that cannot be verified for allocation; bind it from a single assignment"}}
	}
	switch e := callgraph.Unparen(st.Rhs).(type) {
	case *ast.FuncLit:
		// The binding happens at setup (cold); only the body runs hot.
		c.noteRegionLit(st.Src, e)
		return c.checkBody(st.Src, e.Body)
	case *ast.Ident:
		return c.checkStoredFuncIdent(st, e, selfKey)
	case *ast.SelectorExpr:
		return c.checkStoredFuncIdent(st, e.Sel, selfKey)
	default:
		return []hpFinding{{st.Rhs.Pos(),
			"hot-path callback field is bound to a computed expression that cannot be verified for allocation; bind a function literal or named function"}}
	}
}

func (c *hotpathChecker) checkStoredFuncIdent(st callgraph.FieldStore, id *ast.Ident, selfKey string) []hpFinding {
	switch obj := st.Src.Info.Uses[id].(type) {
	case *types.Func:
		return c.checkFunc(obj)
	case *types.Nil:
		return nil // unbinding; the call site would crash before allocating
	case *types.Var:
		if obj.IsField() {
			if c.g.PosKey(obj.Pos()) == selfKey {
				return nil // copying the field onto itself
			}
			return c.checkFieldCall(obj)
		}
	}
	return []hpFinding{{st.Rhs.Pos(), fmt.Sprintf(
		"hot-path callback field is bound to function value %s, which cannot be verified for allocation; bind a function literal or named function", id.Name)}}
}

// checkFunc resolves a module-internal function object and verifies its
// body; external and unresolvable functions are trusted (escape-check
// narrows that gap).
func (c *hotpathChecker) checkFunc(fn *types.Func) []hpFinding {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	path := pkg.Path()
	mod := c.u.ModulePath
	if path != mod && !strings.HasPrefix(path, mod+"/") {
		return nil
	}
	d, ok := c.g.DeclOf(fn)
	if !ok {
		return nil
	}
	return c.checkDecl(d)
}

// noteRegion records a walked declaration's span for -escape-check.
func (c *hotpathChecker) noteRegion(src *callgraph.Source, name string, n ast.Node) {
	if c.regions == nil {
		return
	}
	p0, p1 := src.Fset.Position(n.Pos()), src.Fset.Position(n.End())
	c.regions.add(Region{File: p0.Filename, Func: name, StartLine: p0.Line, EndLine: p1.Line})
}

// noteRegionLit records a walked stored-literal span for -escape-check.
func (c *hotpathChecker) noteRegionLit(src *callgraph.Source, lit *ast.FuncLit) {
	c.noteRegion(src, "(bound func literal)", lit)
}

// noteCold records a skipped cold subtree's lines so -escape-check excuses
// compiler-reported escapes there too.
func (c *hotpathChecker) noteCold(owner *callgraph.Source, n ast.Node) {
	if c.regions == nil {
		return
	}
	p0, p1 := owner.Fset.Position(n.Pos()), owner.Fset.Position(n.End())
	c.regions.addCold(p0.Filename, p0.Line, p1.Line)
}
