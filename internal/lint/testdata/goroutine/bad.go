// Package fixture seeds paronlygoroutines violations: raw go statements in
// non-test code outside internal/par.
package fixture

// Race forks unjoined goroutines mutating shared state — the hazard the
// rule exists to prevent.
func Race(counts []int) {
	for i := range counts {
		i := i
		go func() { // want
			counts[i]++
		}()
	}
}

// Background leaks a goroutine past its caller.
func Background(ch chan int) {
	go produce(ch) // want
}

func produce(ch chan int) { ch <- 1 }
