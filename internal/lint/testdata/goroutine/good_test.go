package fixture

// Test files may use raw goroutines (test-local helpers often do); the
// analyzer only polices non-test code. Nothing in this file may be flagged.
func helperFromTest(done chan struct{}) {
	go func() {
		done <- struct{}{}
	}()
}
