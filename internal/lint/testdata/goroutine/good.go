package fixture

import (
	"repro/internal/par"
	"repro/internal/trace"
)

// Fanout routes its parallelism through the p-thread abstraction: threads
// are statically partitioned, joined, and panic-propagating.
func Fanout(counts []int, p int) {
	par.Run(p, nil, func(tid int, tp *trace.TP) {
		lo, hi := par.Span(len(counts), p, tid)
		for i := lo; i < hi; i++ {
			counts[i]++
		}
	})
}
