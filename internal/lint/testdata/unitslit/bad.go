// Package fixture seeds unitslit violations: bare untyped integer literals
// at call sites whose parameters are units.Time or units.Bytes.
package fixture

import "repro/internal/units"

type link struct{ lat units.Time }

func (l *link) setLatency(t units.Time) { l.lat = t }

func configure(lat units.Time, line units.Bytes) units.Time {
	return lat + units.Time(line)
}

func waitAll(deadlines ...units.Time) units.Time {
	var max units.Time
	for _, d := range deadlines {
		if d > max {
			max = d
		}
	}
	return max
}

// Bad passes unitless magic numbers: picoseconds? nanoseconds? lines?
func Bad() units.Time {
	var l link
	l.setLatency(20000)       // want
	t := configure(100, 4096) // want 2
	t += configure(-5, 0)     // want
	t += waitAll(7, 9)        // want 2
	return t
}
