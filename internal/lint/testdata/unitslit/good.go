package fixture

import "repro/internal/units"

// l2Latency is a named constant: the unit is pinned at the declaration.
const l2Latency = 10 * units.Nanosecond

// Good spells every quantity's unit at the call site.
func Good() units.Time {
	var l link
	l.setLatency(20 * units.Nanosecond)
	t := configure(l2Latency, 4*units.KiB)
	t += configure(0, 0)                            // zero is unit-safe
	t += configure(units.Time(99), units.Bytes(64)) // explicit conversions pin the unit
	t += waitAll()                                  // empty variadic
	ds := []units.Time{t}
	t += waitAll(ds...) // spread slice, not a literal element
	return t + plain(42)
}

// plain takes an ordinary int; bare literals are fine here.
func plain(n int) units.Time { return units.Time(n) }
