// Package hotignore exercises the hotpath suppression contract: a bare
// //nmlint:ignore hotpath registers nothing (the flagged construct stays
// reported) and is itself a diagnostic, while a reasoned ignore
// suppresses. Checked by TestHotPathBareIgnore, which asserts on messages
// rather than want markers — the bare directive is a full-line comment
// and cannot carry one.
package hotignore

type state struct{ buf []int }

//nmlint:hotpath
func bare(s *state, n int) {
	//nmlint:ignore hotpath
	s.buf = append(s.buf, n)
}

//nmlint:hotpath
func reasoned(s *state, n int) {
	//nmlint:ignore hotpath amortized growth; buffer recycled across events
	s.buf = append(s.buf, n)
}
