package hotfixture

import "fmt"

// goodFlat: index writes, address-of-element, and struct value literals
// are allocation-free.
//
//nmlint:hotpath
func goodFlat(s *sink, xs []int, n int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	s.buf[0] = t
	p := &s.buf[0]
	_ = p
	v := sink{depth: n}
	_ = v
	return t
}

// goodColdPaths: panic arguments and error returns are failure exits, not
// steady state — formatting there is fine.
//
//nmlint:hotpath
func goodColdPaths(xs []int, n int) (int, error) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	if n >= len(xs) {
		return 0, fmt.Errorf("n %d out of range %d", n, len(xs))
	}
	return xs[n], nil
}

// goodStatic: a non-capturing func literal is a static value, and a
// method expression is a plain function — neither allocates.
//
//nmlint:hotpath
func goodStatic(s *sink) {
	s.ev = func() {}
	_ = (*worker).tick
}

// goodPointerBox: pointer-shaped values, nil, and constants store into
// interfaces without allocating.
//
//nmlint:hotpath
func goodPointerBox(s *sink) {
	global = s
	global = nil
	takeAny(s)
	_ = any(3)
	const k = "static"
	global = k
}

type goodCarrier struct{ ev func() }

func tickFlat() {}

// bindGood binds the hot callback field only to verifiable, clean values.
func bindGood(c *goodCarrier) {
	c.ev = tickFlat
	c.ev = func() {}
	c.ev = nil
}

// goodFieldCall: every binding of goodCarrier.ev is hot-clean, so the
// dispatch is too.
//
//nmlint:hotpath
func goodFieldCall(c *goodCarrier) {
	c.ev()
}

func sum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// goodVariadic: a concrete-typed variadic pack usually stays on the
// stack; it is left to -escape-check, not flagged here.
//
//nmlint:hotpath
func goodVariadic(a, b int) int {
	return sum(a, b)
}

// goodDefer: a defer outside any loop is open-coded and allocation-free.
//
//nmlint:hotpath
func goodDefer(s *sink) {
	defer tickFlat()
	s.depth++
}

// goodReasonedIgnore: an ignore that carries a reason is the sanctioned
// escape hatch.
//
//nmlint:hotpath
func goodReasonedIgnore(s *sink, n int) {
	//nmlint:ignore hotpath amortized growth; buffer is pre-sized at setup
	s.buf = append(s.buf, n)
}
