// Package hotfixture is the hotpath fixture: bad.go holds one violation of
// each allocation construct class (every want marker is one diagnostic),
// good.go the allocation-free idioms the analyzer must accept.
package hotfixture

import (
	"fmt"
	"strconv"
)

type sink struct {
	buf   []int
	ev    func()
	depth int
}

var global any

//nmlint:hotpath
func badConstructs(s *sink, n int) {
	p := new(int) // want
	_ = p
	q := &sink{} // want
	_ = q
	sl := []int{1, 2, 3} // want
	_ = sl
	m := map[int]int{} // want
	_ = m
	mm := make(map[int]int) // want
	_ = mm
	b := make([]byte, n) // want
	_ = b
	s.buf = append(s.buf, n) // want
}

//nmlint:hotpath
func badChannels(ch chan int, n int) {
	ch <- n  // want
	<-ch     // want
	select { // want
	default:
	}
	close(ch)            // want
	go tickFlatBad()     // want
	cc := make(chan int) // want
	_ = cc
	for range ch { // want
	}
}

func tickFlatBad() {}

//nmlint:hotpath
func badMapIter(m map[int]int) int {
	t := 0
	for k := range m { // want
		t += k
	}
	return t
}

//nmlint:hotpath
func badClosures(s *sink, n int) {
	s.ev = func() { s.depth = n } // want 2
	_ = s.ev
}

type worker struct{ count int }

func (w *worker) tick() { w.count++ }

//nmlint:hotpath
func badMethodValue(w *worker) {
	f := w.tick // want
	f()         // want
}

//nmlint:hotpath
func badDeferLoop(n int) {
	for i := 0; i < n; i++ {
		defer tickFlatBad() // want
	}
}

//nmlint:hotpath
func badStrings(a, b string, bs []byte) string {
	c := a + b      // want
	c += a          // want
	d := string(bs) // want
	_ = d
	e := []byte(a) // want
	_ = e
	return c
}

//nmlint:hotpath
func badBoxing(s *sink, v int) {
	global = v               // want
	takeAny(v)               // want
	_ = any(v)               // want
	_ = fmt.Sprintf("%d", v) // want
	_ = strconv.Itoa(v)      // want
}

func takeAny(x any) { _ = x }

//nmlint:hotpath
func badTransitive(s *sink) {
	helper(s)
}

// helper is not annotated itself: its append is reported because a hot
// root reaches it.
func helper(s *sink) {
	s.buf = append(s.buf, 1) // want
}

type carrier struct {
	ev func()
}

//nmlint:hotpath
func badFieldCall(c *carrier) {
	c.ev()
}

// bindBad binds a hot callback field to a literal whose body allocates;
// the finding lands in the body, not at the (cold, setup-time) binding.
func bindBad(c *carrier) {
	c.ev = func() {
		_ = make([]int, 8) // want
	}
}

// bindOpaque binds the same field to an opaque function value, which the
// analyzer cannot chase.
func bindOpaque(c *carrier, f func()) {
	c.ev = f // want
}
