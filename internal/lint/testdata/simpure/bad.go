// Package simpure is the simpure fixture: bad.go holds the violations
// (every want marker is one diagnostic), good.go the allowed idioms.
package simpure

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/units"
)

var hits int

type comp struct {
	sim *engine.Sim
}

// badCaptures: callbacks may not mutate state that lives outside the
// component graph — captured locals, package-level vars, or anything
// reached through captured non-component values.
func badCaptures(sim *engine.Sim) {
	count := 0
	m := map[string]int{}
	p := new(int)
	sim.At(0, func() {
		count++    // want
		hits++     // want
		m["k"] = 1 // want
		*p = 2     // want
	})
}

// badHost: no host I/O, wall clock, or synchronization inside a callback.
func badHost(sim *engine.Sim, mu *sync.Mutex, ch chan int) {
	sim.At(0, func() {
		fmt.Println("tick")   // want
		_ = os.Getenv("HOME") // want
		_ = time.Now()        // want
		mu.Lock()             // want
		ch <- 1               // want
		<-ch                  // want
		close(ch)             // want
		go func() {}()        // want
	})
}

// badOpaque: a bare function value cannot be traversed, so it is flagged.
func badOpaque(sim *engine.Sim, f func()) {
	sim.At(0, f) // want
}

// badAtShard: the sharded-engine schedule entry point is analyzed exactly
// like At/After — its callback is the last argument.
func badAtShard(sim *engine.Sim, f func()) {
	sim.AtShard(1, 0, f) // want
	n := 0
	sim.AtShard(0, 0, func() {
		n++ // want
	})
}

// badFieldCall: calls through func-typed fields are equally opaque.
type hooks struct {
	fn func()
}

func badFieldCall(sim *engine.Sim, h *hooks) {
	sim.At(0, func() {
		h.fn() // want
	})
}

// badPool: a scheduled event field is verified through every assignment to
// it; one store of an opaque function value poisons the field.
type badPool struct {
	sim *engine.Sim
	ev  engine.Event
}

func (b *badPool) bind(f func()) {
	b.ev = f // want
}

func (b *badPool) schedule() {
	b.sim.At(0, b.ev)
}

// unbound: scheduling a field no assignment ever binds is flagged at the
// field's declaration.
type unbound struct {
	sim *engine.Sim
	ev  engine.Event // want
}

func (u *unbound) schedule() {
	u.sim.At(0, u.ev)
}

// badPoolLit: an impure callback stored into an event field is reported
// where the impurity lives, exactly like a directly scheduled literal.
type badPoolLit struct {
	sim *engine.Sim
	ev  engine.Event
}

func (b *badPoolLit) bind() {
	b.ev = func() {
		hits++ // want
	}
}

func (b *badPoolLit) schedule() {
	b.sim.At(0, b.ev)
}

// badTransitive: the walk follows method values through module-internal
// helpers; the violation is reported where it lives, not at the call site.
func (c *comp) leak() {
	c.helper()
}

func (c *comp) helper() {
	os.Exit(1) // want
}

func (c *comp) schedule() {
	c.sim.After(units.Nanosecond, c.leak)
}
