package simpure

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/units"
)

type node struct {
	sim  *engine.Sim
	seen []units.Time
	tab  map[string]int
}

// tick mutates only receiver-rooted state and reads simulated time from
// the kernel: the canonical pure callback.
func (g *node) tick() {
	g.seen = append(g.seen, g.sim.Now())
}

// schedule shows the allowed idioms: method values, writes through a
// captured component pointer, locals, pure fmt, and nested scheduling.
func (g *node) schedule() {
	g.sim.At(0, g.tick)
	g.sim.After(units.Nanosecond, func() {
		g.tab["k"]++
		g.seen = g.seen[:0]
		s := fmt.Sprintf("%d", len(g.seen))
		local := map[string]bool{s: true}
		delete(local, s)
		g.sim.At(g.sim.Now(), func() { g.tab["t"] = len(local) })
	})
}

// shardedSchedule: AtShard is a schedule entry point like At/After; its
// callback (the last argument) gets the same treatment, and the leading
// shard index is ignored.
func (g *node) shardedSchedule() {
	g.sim.AtShard(1, 0, g.tick)
	g.sim.AtShard(0, g.sim.Now(), func() {
		g.seen = append(g.seen, g.sim.Now())
	})
}

// sortedDrain: ordinary pure stdlib helpers (sort, append to locals) are
// fine inside callbacks.
func sortedDrain(sim *engine.Sim, g *node) {
	sim.At(0, func() {
		keys := make([]string, 0, len(g.tab))
		for k := range g.tab {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g.tab[k]++
		}
	})
}

// pooled shows the pre-bound event-field idiom from internal/machine's hot
// path: a field bound once to a method value (or a named function in a
// composite literal) and scheduled repeatedly without allocating. The
// analyzer verifies the field through its assignments.
type pooled struct {
	sim *engine.Sim
	n   int
	ev  engine.Event
	alt engine.Event
}

func (p *pooled) step() { p.n++ }

func pureTick() {}

func newPooled(sim *engine.Sim) *pooled {
	p := &pooled{sim: sim, alt: pureTick}
	p.ev = p.step
	return p
}

func (p *pooled) schedule() {
	p.sim.At(0, p.ev)
	p.sim.After(units.Nanosecond, p.alt)
}

// suppressed: a real violation (bare captured counter) silenced with an
// ignore directive and a reason — the escape hatch the analyzer honors.
func suppressed(sim *engine.Sim) {
	total := 0
	sim.At(0, func() {
		//nmlint:ignore simpure scratch counter, reset before every Run in the harness
		total++
	})
	_ = total
}
