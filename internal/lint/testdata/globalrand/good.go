package fixture

import (
	"math/rand"

	"repro/internal/xrand"
)

// Seeded draws from an explicitly seeded generator: methods on an instance
// are tolerated (the constructors New/NewSource are not global-source), and
// the repository idiom — a seeded *xrand.RNG — is what the diagnostic
// recommends.
func Seeded(seed uint64, n int) int {
	legacy := rand.New(rand.NewSource(int64(seed)))
	_ = legacy.Intn(n)
	return xrand.New(seed).Intn(n)
}
