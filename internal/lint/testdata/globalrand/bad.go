// Package fixture seeds noglobalrand violations: math/rand's package-level
// functions draw from the shared, unseeded global source.
package fixture

import "math/rand"

// Pivot picks a random pivot from the global source — unreplayable.
func Pivot(n int) int {
	return rand.Intn(n) // want
}

// Mix uses more global-source functions.
func Mix(keys []uint64) {
	rand.Shuffle(len(keys), func(i, j int) { // want
		keys[i], keys[j] = keys[j], keys[i]
	})
	keys[0] = rand.Uint64() // want
	_ = rand.Float64()      // want
}
