package fixture

import "time"

// Epoch uses time only for pure value construction — no clock reads, so
// nothing here may be flagged.
func Epoch() time.Time {
	return time.Unix(0, 0)
}

// Scale does duration arithmetic on constants, which is allowed.
func Scale(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// Suppressed exercises the ignore directive: a real violation silenced by
// an explanatory comment.
func Suppressed() time.Time {
	return time.Now() //nmlint:ignore nowallclock fixture: proves suppression works
}

// SuppressedAbove exercises the directive on the preceding line.
func SuppressedAbove() time.Time {
	//nmlint:ignore nowallclock fixture: preceding-line form
	return time.Now()
}
