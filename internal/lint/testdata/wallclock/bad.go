// Package fixture seeds nowallclock violations. The test loads this
// directory under a simulator import path, so every host-clock read below
// must be flagged.
package fixture

import "time"

// Elapsed measures host time — exactly what a simulator component must
// never do.
func Elapsed() time.Duration {
	start := time.Now()          // want
	time.Sleep(time.Millisecond) // want
	return time.Since(start)     // want
}

// Deadline uses timer plumbing, which reads the clock indirectly.
func Deadline() {
	t := time.NewTimer(time.Second) // want
	<-t.C
	<-time.After(time.Second) // want
}
