package fixture

import "sort"

// DrainSorted is the sanctioned idiom: collect the keys (the one permitted
// map range), sort them, then range over the slice.
func DrainSorted(pending map[uint64]func()) {
	keys := make([]uint64, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		pending[k]()
	}
}

// Slices and channels range deterministically; nothing to flag.
func SliceSum(xs []int) (sum int) {
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Suppressed is order-insensitive by construction and says so.
func Suppressed(m map[int]int) (sum int) {
	//nmlint:ignore sortedmaprange commutative sum, order cannot leak
	for _, v := range m {
		sum += v
	}
	return sum
}
