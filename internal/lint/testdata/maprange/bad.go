// Package fixture seeds sortedmaprange violations. The test loads this
// directory under a simulator import path; the same files loaded under a
// non-simulator path must produce no diagnostics.
package fixture

// Drain visits pending events in map order — the exact bug class that
// breaks FIFO tie-breaking in the event queue.
func Drain(pending map[uint64]func()) {
	for _, fn := range pending { // want
		fn()
	}
}

// Keys iterates keys but does more than collect them, so order leaks.
func Keys(m map[int]int) (sum int) {
	for k := range m { // want
		sum += k
	}
	return sum
}
