package lint

// The -escape-check cross-check: the hotpath analyzer is a conservative
// AST pass, so constructs it cannot see (a stdlib call that leaks an
// argument, a variable the compiler moves to the heap for reasons no
// syntax rule names) can still allocate inside an annotated region. This
// file closes that gap with the compiler's own escape analysis: HotRegions
// re-runs the hotpath walk to collect every hot code span, ParseEscapes
// reads `go build -gcflags=-m=2` diagnostics, and CrossCheck reports every
// compiler-confirmed heap escape inside a hot region that is neither on a
// cold (panic / error-return) line nor excused by a reasoned ignore. The
// two passes guard each other: the AST pass explains *why* a construct
// allocates and works without building; the compiler pass is ground truth.

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Region is one hot code span the hotpath walk visited: an annotated
// function, a transitively reached module-internal callee, or a func
// literal bound to a hot callback field.
type Region struct {
	File      string // absolute path
	Func      string // name of the walked declaration
	StartLine int
	EndLine   int
}

// RegionSet collects hot regions and the cold lines excluded from them.
type RegionSet struct {
	Regions []Region
	cold    map[string][][2]int // file → (startLine, endLine) cold ranges
	seen    map[Region]bool
}

// NewRegionSet returns an empty set.
func NewRegionSet() *RegionSet {
	return &RegionSet{cold: map[string][][2]int{}, seen: map[Region]bool{}}
}

func (rs *RegionSet) add(r Region) {
	if rs.seen[r] {
		return
	}
	rs.seen[r] = true
	rs.Regions = append(rs.Regions, r)
}

func (rs *RegionSet) addCold(file string, start, end int) {
	rs.cold[file] = append(rs.cold[file], [2]int{start, end})
}

// Covers returns the hot region containing file:line, if any; cold lines
// are not covered.
func (rs *RegionSet) Covers(file string, line int) (Region, bool) {
	for _, cr := range rs.cold[file] {
		if line >= cr[0] && line <= cr[1] {
			return Region{}, false
		}
	}
	for _, r := range rs.Regions {
		if r.File == file && line >= r.StartLine && line <= r.EndLine {
			return r, true
		}
	}
	return Region{}, false
}

// Files returns the sorted unique files containing hot regions; the
// escape-check driver derives the package list to rebuild from them.
func (rs *RegionSet) Files() []string {
	set := map[string]bool{}
	for _, r := range rs.Regions {
		set[r.File] = true
	}
	files := make([]string, 0, len(set))
	for f := range set {
		files = append(files, f)
	}
	sort.Strings(files)
	return files
}

// HotRegions re-runs the hotpath walk over every unit, discarding findings
// and keeping only the visited spans.
func HotRegions(mod *Module) *RegionSet {
	rs := NewRegionSet()
	discard := func(token.Pos, string, ...any) {}
	for _, u := range mod.Units() {
		newHotpathChecker(u, discard, rs).run()
	}
	return rs
}

// Escape is one compiler escape diagnostic.
type Escape struct {
	File string // as printed by the compiler (usually module-relative)
	Line int
	Col  int
	Msg  string
}

// escapeLineRE matches compiler diagnostic lines: file.go:line:col: msg.
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// ParseEscapes extracts heap-escape diagnostics from `go build
// -gcflags=-m=2` output. Only actual escapes survive: "escapes to heap"
// and "moved to heap" lines, not the "does not escape" confirmations or
// the indented flow-explanation lines -m=2 adds.
func ParseEscapes(output string) []Escape {
	var escs []Escape
	for _, line := range strings.Split(output, "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") || strings.Contains(msg, "does not escape") {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		// -m=2 prints each escape twice: once bare and once as the header
		// of an indented flow explanation, with a trailing colon. Normalize
		// so the pair dedups to one diagnostic downstream.
		msg = strings.TrimSuffix(msg, ":")
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		escs = append(escs, Escape{File: m[1], Line: ln, Col: col, Msg: msg})
	}
	return escs
}

// CrossCheck returns one diagnostic per compiler escape that lands inside
// a hot region without an excuse: not on a cold line, not suppressed by a
// reasoned hotpath ignore or an escape-check ignore at that position.
func CrossCheck(mod *Module, rs *RegionSet, escs []Escape) []Diagnostic {
	ignores := mod.Ignores()
	var diags []Diagnostic
	seen := map[string]bool{}
	for _, e := range escs {
		file := e.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(mod.Root, filepath.FromSlash(strings.TrimPrefix(file, "./")))
		}
		reg, ok := rs.Covers(file, e.Line)
		if !ok {
			continue
		}
		p := token.Position{Filename: file, Line: e.Line, Column: e.Col}
		if ignores.suppressed(p, hotpathName) || ignores.suppressed(p, "escape-check") {
			continue
		}
		d := Diagnostic{
			Pos: p, File: file, Line: e.Line, Col: e.Col,
			Analyzer: "escape-check",
			Message:  fmt.Sprintf("compiler escape analysis reports %q inside hot region %s", e.Msg, reg.Func),
		}
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		diags = append(diags, d)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return diags
}
