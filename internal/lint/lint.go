// Package lint is nmlint's engine: a repo-specific static-analysis suite
// that enforces the determinism and concurrency invariants the simulator's
// replay methodology depends on. The discrete-event kernel promises that a
// given component graph and input trace always produce bit-identical
// results; these analyzers make the promise checkable. Everything here uses
// only the standard library (go/ast, go/parser, go/token, go/types) — the
// module is dependency-free and must stay so.
//
// The seven analyzers:
//
//   - nowallclock: no time.Now/Since/Sleep (or timers) in simulator
//     packages, where all time must be units.Time.
//   - noglobalrand: no math/rand global-source functions anywhere outside
//     internal/xrand, so every random stream is seeded and replayable.
//   - sortedmaprange: no ranging over maps in simulator packages — map
//     iteration order feeding the event queue destroys FIFO tie-breaking.
//   - paronlygoroutines: no raw go statements in non-test code outside
//     internal/par; all parallelism goes through the p-thread abstraction.
//   - unitslit: no bare untyped integer literals passed where units.Time or
//     units.Bytes parameters are expected (literal 0 is unit-safe).
//   - simpure: every callback scheduled on engine.Sim.At/After — and every
//     module-internal helper it calls, transitively — touches only
//     simulator-owned state: no host I/O, wall clock, channel/sync
//     operations, or writes to captured variables outside the component
//     graph.
//   - hotpath: every function annotated //nmlint:hotpath — and everything
//     it reaches, transitively — is free of allocation-inducing
//     constructs: escaping composite literals, unsized append growth,
//     maps, capturing closures, interface boxing, defer-in-loop, string
//     building, and channel operations.
//
// simpure and hotpath resolve callees, struct-field callbacks, and method
// values through one shared index (internal/lint/callgraph), so the two
// closures can never disagree about what a scheduling or annotation site
// reaches.
//
// A finding can be suppressed with a comment on the same line or the line
// above: //nmlint:ignore <analyzer> [reason]. The hotpath analyzer demands
// the reason: a bare "//nmlint:ignore hotpath" suppresses nothing and is
// itself reported, so every allocation left on an annotated path carries
// its justification in the source.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the canonical file:line: [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// ReportFunc is the callback analyzers emit diagnostics through.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // short name used in diagnostics and ignore comments
	Doc  string // one-line description
	Run  func(u *Unit, report ReportFunc)
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoWallClock,
		NoGlobalRand,
		SortedMapRange,
		ParOnlyGoroutines,
		UnitsLit,
		SimPure,
		HotPath,
	}
}

// simulatorPackages are the import-path suffixes (under the module path)
// whose code runs inside, or records input for, the discrete-event
// simulation. Rules that guard replay determinism apply only here.
var simulatorPackages = map[string]bool{
	"internal/engine":    true,
	"internal/machine":   true,
	"internal/dram":      true,
	"internal/noc":       true,
	"internal/trace":     true,
	"internal/cachesim":  true,
	"internal/spmem":     true,
	"internal/fault":     true,
	"internal/telemetry": true,
	// serve answers jobs from the replay kernel; wall-clock reads or map
	// iteration there would leak nondeterminism into cached responses.
	"internal/serve": true,
}

// IsSimulatorPackage reports whether the import path (relative to the
// module) is one of the simulator packages.
func (u *Unit) IsSimulatorPackage() bool {
	return simulatorPackages[u.RelPath()]
}

// RelPath returns the unit's import path relative to the module path
// ("internal/engine" for "repro/internal/engine").
func (u *Unit) RelPath() string {
	if u.ImportPath == u.ModulePath {
		return "."
	}
	return strings.TrimPrefix(u.ImportPath, u.ModulePath+"/")
}

// Run executes every analyzer over every unit of the module and returns the
// surviving (non-suppressed) diagnostics sorted by position. Suppression
// directives are collected module-wide before any analyzer runs: the
// transitive analyzers (simpure, hotpath) report findings at the offending
// expression even when it lives in a different package than the scheduling
// or annotation site, and the ignore comment must work where the construct
// is, not where the walk started. Identical findings reached from several
// units (two root sets walking into one shared helper) collapse to one.
func Run(mod *Module) []Diagnostic {
	ignores := mod.Ignores()
	var diags []Diagnostic
	for _, u := range mod.Units() {
		diags = append(diags, runUnit(u, Analyzers(), ignores)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	dedup := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}

// RunUnit executes the given analyzers over one unit, applying the unit's
// own suppression comments. Fixture self-tests use it; whole-module runs go
// through Run, which unions suppressions across units first.
func RunUnit(u *Unit, analyzers []*Analyzer) []Diagnostic {
	return runUnit(u, analyzers, collectIgnores(u))
}

func runUnit(u *Unit, analyzers []*Analyzer, ignores ignoreSet) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(u, func(pos token.Pos, format string, args ...any) {
			p := u.Fset.Position(pos)
			if ignores.suppressed(p, a.Name) {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:      p,
				File:     p.Filename,
				Line:     p.Line,
				Col:      p.Column,
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}
	return diags
}

// ignoreSet maps file → line → set of suppressed analyzer names. The special
// name "all" suppresses every analyzer.
type ignoreSet map[string]map[int][]string

const ignorePrefix = "//nmlint:ignore"

// collectIgnores scans every comment in the unit for suppression directives.
// A directive suppresses findings on its own line and on the line directly
// below (so it can sit above the flagged statement).
func collectIgnores(u *Unit) ignoreSet {
	set := ignoreSet{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				p := u.Fset.Position(c.Pos())
				byLine := set[p.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[p.Filename] = byLine
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name == HotPath.Name && len(fields) < 2 {
						// hotpath demands a justification: a bare ignore
						// suppresses nothing, and the analyzer reports the
						// comment itself.
						continue
					}
					byLine[p.Line] = append(byLine[p.Line], name)
				}
			}
		}
	}
	return set
}

func (s ignoreSet) suppressed(p token.Position, analyzer string) bool {
	byLine := s[p.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, name := range byLine[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" when it is not a package name.
func pkgNameOf(u *Unit, id *ast.Ident) string { return pkgPathOf(u.Info, id) }

// pkgPathOf is pkgNameOf over bare type info, for walks that cross units.
func pkgPathOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
