// Package noc models the on-chip network connecting core groups to the
// memory directory controllers — the role Merlin plays in the paper's SST
// setup (Figure 5). Each quad-core group has its own injection/ejection
// link (72 GB/s in Figure 4); a hop costs a fixed 20ns latency plus
// bandwidth occupancy for the 64-byte payload. The NoC's job in this study
// is to add realistic latency without being the bottleneck, and a
// bandwidth-accounted crossbar reproduces exactly that.
package noc

import (
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Config describes the network.
type Config struct {
	Groups    int                  // number of endpoints (core groups)
	LinkBW    units.BytesPerSecond // per-group link bandwidth, per direction
	HopLat    units.Time           // one-way latency
	Payload   units.Bytes          // data payload per message (cache line)
	HeaderLat units.Time           // extra per-message router overhead
}

// Paper returns the Figure 4 network: 72GB/s per group connection, 20ns
// hop latency, 64B lines.
func Paper(groups int) Config {
	return Config{
		Groups:  groups,
		LinkBW:  units.GBps(72),
		HopLat:  20 * units.Nanosecond,
		Payload: 64,
	}
}

// MinTransit returns the smallest latency any message can add crossing
// the network: one hop plus the per-message router overhead, before any
// bandwidth occupancy or contention. The sharded engine uses it as a
// conservative lookahead component — an event on one shard cannot affect
// another shard's components any sooner than this.
func (c Config) MinTransit() units.Time {
	return c.HopLat + c.HeaderLat
}

// Network is an instantiated NoC.
type Network struct {
	cfg   Config
	tx    []*engine.Resource // group -> memory direction
	rx    []*engine.Resource // memory -> group direction
	msgs  uint64
	bytes uint64
	inj   *fault.Injector // nil or disabled: lossless network
}

// New builds the network on sim.
func New(sim *engine.Sim, cfg Config) *Network {
	if cfg.Groups <= 0 {
		panic("noc: need at least one group")
	}
	n := &Network{cfg: cfg,
		tx: make([]*engine.Resource, cfg.Groups),
		rx: make([]*engine.Resource, cfg.Groups),
	}
	for i := 0; i < cfg.Groups; i++ {
		n.tx[i] = engine.NewResource(sim, cfg.LinkBW)
		n.rx[i] = engine.NewResource(sim, cfg.LinkBW)
	}
	return n
}

// Send delivers a request of n payload bytes from group g toward the
// memory side, arriving at the returned time. Requests without payload
// (read commands) pass n = 0 and pay only latency. A message the fault
// layer marks corrupted is retransmitted: each retransmission re-occupies
// the link and pays the hop latency again (corruption is detected at the
// receiver), keyed by the global message index so the schedule is fixed up
// front.
func (nw *Network) Send(at units.Time, g int, n units.Bytes) units.Time {
	return nw.transfer(nw.tx[g], at, n)
}

// Deliver returns a response of n payload bytes from the memory side to
// group g, arriving at the returned time; it retransmits corrupted
// messages like Send.
func (nw *Network) Deliver(at units.Time, g int, n units.Bytes) units.Time {
	return nw.transfer(nw.rx[g], at, n)
}

// transfer moves one message over link, including any fault-injected
// retransmissions.
func (nw *Network) transfer(link *engine.Resource, at units.Time, n units.Bytes) units.Time {
	nw.msgs++
	nw.bytes += uint64(n)
	resends := nw.inj.NoCResends(nw.msgs - 1)
	arr := at + nw.cfg.HopLat + nw.cfg.HeaderLat
	if n > 0 {
		arr = link.AcquireAt(at, n) + nw.cfg.HopLat + nw.cfg.HeaderLat
	}
	for k := 0; k < resends; k++ {
		if n > 0 {
			arr = link.AcquireAt(arr, n) + nw.cfg.HopLat + nw.cfg.HeaderLat
		} else {
			arr += nw.cfg.HopLat + nw.cfg.HeaderLat
		}
	}
	return arr
}

// SetFaults attaches a fault injector; nil (the default) models a lossless
// network. Call before the first message.
func (nw *Network) SetFaults(in *fault.Injector) { nw.inj = in }

// RegisterProbes registers the network's telemetry counters on the "noc"
// track: messages, payload bytes, and summed link busy time. Per-link
// tracks would add hundreds of columns for a 64-group node, so the network
// reports aggregates.
func (nw *Network) RegisterProbes(tel *telemetry.Recorder) {
	tel.Counter("noc", "msgs", func() uint64 { return nw.msgs })
	tel.Counter("noc", "bytes", func() uint64 { return nw.bytes })
	tel.Counter("noc", "busy_ps", func() uint64 { return uint64(nw.BusyTime()) })
}

// BusyTime returns the summed busy time across all links, both directions.
func (nw *Network) BusyTime() units.Time {
	var t units.Time
	for i := range nw.tx {
		t += nw.tx[i].BusyTime() + nw.rx[i].BusyTime()
	}
	return t
}

// Messages returns the total messages routed.
func (nw *Network) Messages() uint64 { return nw.msgs }

// Bytes returns the total payload bytes routed.
func (nw *Network) Bytes() uint64 { return nw.bytes }

// Utilization returns the mean link utilization across both directions.
func (nw *Network) Utilization() float64 {
	var u float64
	for i := range nw.tx {
		u += nw.tx[i].Utilization() + nw.rx[i].Utilization()
	}
	return u / float64(2*len(nw.tx))
}

// BusyUntil returns the latest time any link in either direction is
// occupied. A drained replay must report SimTime at or after this point.
func (nw *Network) BusyUntil() units.Time {
	var t units.Time
	for i := range nw.tx {
		if b := nw.tx[i].BusyUntil(); b > t {
			t = b
		}
		if b := nw.rx[i].BusyUntil(); b > t {
			t = b
		}
	}
	return t
}

// Config returns the network configuration.
func (nw *Network) Config() Config { return nw.cfg }
