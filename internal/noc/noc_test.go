package noc

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/units"
)

func TestPaperConfig(t *testing.T) {
	c := Paper(64)
	if c.Groups != 64 || c.LinkBW != units.GBps(72) || c.HopLat != 20*units.Nanosecond {
		t.Errorf("config = %+v", c)
	}
}

func TestCommandPaysOnlyLatency(t *testing.T) {
	s := engine.New()
	n := New(s, Paper(2))
	if got := n.Send(0, 0, 0); got != 20*units.Nanosecond {
		t.Errorf("command arrival = %v, want 20ns", got)
	}
}

func TestPayloadOccupiesLink(t *testing.T) {
	s := engine.New()
	n := New(s, Paper(2))
	// Two back-to-back 64B responses on one link: second queues behind the
	// first's bus time (889ps at 72GB/s).
	a := n.Deliver(0, 0, 64)
	b := n.Deliver(0, 0, 64)
	if b-a != units.GBps(72).TransferTime(64) {
		t.Errorf("second response not serialized: %v then %v", a, b)
	}
}

func TestLinksIndependent(t *testing.T) {
	s := engine.New()
	n := New(s, Paper(2))
	a := n.Deliver(0, 0, 64)
	b := n.Deliver(0, 1, 64)
	if a != b {
		t.Errorf("different groups should not contend: %v vs %v", a, b)
	}
}

func TestDirectionsIndependent(t *testing.T) {
	s := engine.New()
	n := New(s, Paper(2))
	a := n.Send(0, 0, 64)
	b := n.Deliver(0, 0, 64)
	if a != b {
		t.Errorf("tx and rx should not contend: %v vs %v", a, b)
	}
}

func TestCounters(t *testing.T) {
	s := engine.New()
	n := New(s, Paper(2))
	n.Send(0, 0, 0)
	n.Deliver(0, 1, 64)
	if n.Messages() != 2 || n.Bytes() != 64 {
		t.Errorf("msgs=%d bytes=%d", n.Messages(), n.Bytes())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(engine.New(), Config{})
}

func TestUtilizationAfterTraffic(t *testing.T) {
	s := engine.New()
	n := New(s, Paper(2))
	s.At(0, func() {
		for i := 0; i < 100; i++ {
			n.Deliver(0, 0, 64)
		}
	})
	s.At(10*units.Microsecond, func() {})
	s.Run()
	if u := n.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if n.Config().Groups != 2 {
		t.Errorf("Config lost: %+v", n.Config())
	}
}
