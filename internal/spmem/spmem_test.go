package spmem

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/units"
)

func TestPaperConfigs(t *testing.T) {
	// 8/16/32 channels must give 2X/4X/8X the 4-channel far bandwidth.
	farBW := units.BytesPerSecond(4 * 1066e6 * 8)
	for _, tc := range []struct {
		ch  int
		rho float64
	}{{8, 2}, {16, 4}, {32, 8}} {
		c := Paper(tc.ch, 64*units.MiB)
		if got := float64(c.TotalBandwidth()) / float64(farBW); got != tc.rho {
			t.Errorf("%d channels: expansion %v, want %v", tc.ch, got, tc.rho)
		}
		if c.Latency != 50*units.Nanosecond {
			t.Errorf("latency = %v, want 50ns", c.Latency)
		}
	}
}

func TestConstantLatency(t *testing.T) {
	s := engine.New()
	d := New(s, Paper(8, units.MiB), addr.NearBase)
	cfg := d.Config()
	burst := cfg.ChannelBW.TransferTime(cfg.LineSize)
	for i := 0; i < 4; i++ {
		// Each access goes to a different channel: no queueing, so the
		// completion is exactly latency + burst.
		at := units.Time(i) * units.Microsecond
		got := d.Access(at, addr.NearBase+addr.Addr(i*64), false) - at
		if got != cfg.Latency+burst {
			t.Errorf("access %d latency = %v, want %v", i, got, cfg.Latency+burst)
		}
	}
}

func TestChannelInterleaving(t *testing.T) {
	s := engine.New()
	d := New(s, Paper(8, units.MiB), addr.NearBase)
	// 8 simultaneous accesses to 8 consecutive lines: all parallel.
	var max units.Time
	for i := 0; i < 8; i++ {
		if done := d.Access(0, addr.NearBase+addr.Addr(i*64), false); done > max {
			max = done
		}
	}
	cfg := d.Config()
	if want := cfg.Latency + cfg.ChannelBW.TransferTime(cfg.LineSize); max != want {
		t.Errorf("8-wide parallel access finished at %v, want %v", max, want)
	}
	// A 9th access to line 8 (channel 0 again) must queue.
	if done := d.Access(0, addr.NearBase+addr.Addr(8*64), false); done <= max {
		t.Errorf("same-channel access should queue: %v", done)
	}
}

func TestStatsAndUtilization(t *testing.T) {
	s := engine.New()
	d := New(s, Paper(8, units.MiB), addr.NearBase)
	d.Access(0, addr.NearBase, false)
	d.Access(0, addr.NearBase+64, true)
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Accesses() != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBulkAcquireDirectionStats(t *testing.T) {
	s := engine.New()
	d := New(s, Paper(8, units.MiB), addr.NearBase)
	lines := uint64(units.MiB / 64)
	d.BulkAcquire(0, units.MiB, true) // device is the copy's destination
	if st := d.Stats(); st.Writes != lines || st.Reads != 0 {
		t.Errorf("destination bulk transfer miscounted: %+v", st)
	}
	d.BulkAcquire(0, units.MiB, false) // device is the copy's source
	if st := d.Stats(); st.Writes != lines || st.Reads != lines {
		t.Errorf("source bulk transfer miscounted: %+v", st)
	}
	if d.BusyUntil() == 0 {
		t.Error("BusyUntil should reflect the reserved bus time")
	}
}

func TestBulkAcquireScalesWithChannels(t *testing.T) {
	mk := func(ch int) units.Time {
		s := engine.New()
		d := New(s, Paper(ch, 64*units.MiB), addr.NearBase)
		return d.BulkAcquire(0, 8*units.MiB, true)
	}
	t8, t32 := mk(8), mk(32)
	ratio := float64(t8) / float64(t32)
	if ratio < 3 || ratio > 5 {
		t.Errorf("32 vs 8 channels bulk speedup = %v, want ~4", ratio)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(engine.New(), Config{}, addr.NearBase)
}
