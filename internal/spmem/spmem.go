// Package spmem models the near memory — the scratchpad of the paper's
// Figure 4: a stacked-DRAM part with a constant device latency (50ns at a
// 500MHz clock) and 8, 16, or 32 line-interleaved channels giving 2X, 4X,
// or 8X the far memory's bandwidth. The scratchpad's defining property in
// the co-design study is exactly this: latency comparable to DRAM,
// bandwidth a ρ factor higher.
package spmem

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Config describes a near-memory device.
type Config struct {
	Channels  int                  // line-interleaved channels
	LineSize  units.Bytes          // transfer granularity
	ChannelBW units.BytesPerSecond // per-channel bandwidth
	Latency   units.Time           // constant device access latency
	Capacity  units.Bytes          // scratchpad size M
}

// Paper returns the Figure 4 near memory with the given channel count
// (8, 16, or 32 for 2X/4X/8X) and capacity. Per-channel bandwidth matches
// a far-memory DDR-1066 channel, so the bandwidth expansion factor is
// channels/4 when the far memory has its standard 4 channels.
func Paper(channels int, capacity units.Bytes) Config {
	return Config{
		Channels:  channels,
		LineSize:  64,
		ChannelBW: units.BytesPerSecond(1066e6 * 8),
		Latency:   50 * units.Nanosecond,
		Capacity:  capacity,
	}
}

// MinService returns the smallest time any single access can occupy the
// device: the constant access latency plus one line's channel transfer.
// Like dram.Config.MinService, it lower-bounds every completion's distance
// from its issue and so feeds the sharded engine's lookahead.
func (c Config) MinService() units.Time {
	return c.Latency + c.ChannelBW.TransferTime(c.LineSize)
}

// TotalBandwidth returns the aggregate bandwidth across channels.
func (c Config) TotalBandwidth() units.BytesPerSecond {
	return c.ChannelBW * units.BytesPerSecond(c.Channels)
}

// Stats counts device activity.
type Stats struct {
	Reads  uint64
	Writes uint64
}

// Accesses returns total device requests.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Device is a scratchpad instance attached to a simulation.
type Device struct {
	cfg      Config
	base     addr.Addr
	channels []*engine.Resource
	stats    Stats
	inj      *fault.Injector // nil or disabled: perfect memory
}

// New builds a device servicing the window starting at base.
func New(sim *engine.Sim, cfg Config, base addr.Addr) *Device {
	if cfg.Channels <= 0 {
		panic("spmem: need at least one channel")
	}
	d := &Device{cfg: cfg, base: base, channels: make([]*engine.Resource, cfg.Channels)}
	for i := range d.channels {
		d.channels[i] = engine.NewResource(sim, cfg.ChannelBW)
	}
	return d
}

// Access services one line transfer arriving at time at and returns its
// completion time: the constant device latency followed by channel bus
// occupancy. With a fault layer attached, an access that lands in a
// degraded (channel, epoch) window is served at a fraction of the channel
// bandwidth — the fault model of thermal throttling or refresh storms in a
// stacked part; the degradation schedule is a pure function of
// (seed, channel, epoch), fixed up front for all simulated time.
func (d *Device) Access(at units.Time, a addr.Addr, write bool) units.Time {
	line := uint64(a-d.base) / uint64(d.cfg.LineSize)
	ch := int(line % uint64(len(d.channels)))
	bus := d.channels[ch]
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return bus.AcquireAtFactor(at+d.cfg.Latency, d.cfg.LineSize, d.inj.NearFactor(ch, at))
}

// SetFaults attaches a fault injector; nil (the default) models perfect
// memory. Call before the first access.
func (d *Device) SetFaults(in *fault.Injector) { d.inj = in }

// BulkAcquire reserves channel bandwidth for n bytes spread evenly across
// all channels starting at time at (DMA streaming). write selects the
// accounting direction: the device a copy streams out of counts the
// transfer as Reads, the device it lands in counts it as Writes. DMA
// streams bypass the channel-degradation fault model (see DESIGN.md's
// fault-model section).
func (d *Device) BulkAcquire(at units.Time, n units.Bytes, write bool) units.Time {
	//nmlint:ignore escape-check inlined CeilDiv panic string; the escape is on the cold divide-by-zero exit
	per := units.Bytes(units.CeilDiv(int64(n), int64(len(d.channels))))
	var done units.Time
	for _, bus := range d.channels {
		if t := bus.AcquireAt(at+d.cfg.Latency, per); t > done {
			done = t
		}
	}
	//nmlint:ignore escape-check inlined CeilDiv panic string; cold exit only
	lines := uint64(units.CeilDiv(int64(n), int64(d.cfg.LineSize)))
	if write {
		d.stats.Writes += lines
	} else {
		d.stats.Reads += lines
	}
	return done
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// RegisterProbes registers the device's telemetry counters: device-level
// request counters on the "near" track and per-channel bytes/busy time on
// "near.ch<i>" tracks.
func (d *Device) RegisterProbes(tel *telemetry.Recorder) {
	tel.Counter("near", "reads", func() uint64 { return d.stats.Reads })
	tel.Counter("near", "writes", func() uint64 { return d.stats.Writes })
	for i, bus := range d.channels {
		bus := bus
		track := fmt.Sprintf("near.ch%d", i)
		tel.Counter(track, "bytes", bus.Bytes)
		tel.Counter(track, "busy_ps", func() uint64 { return uint64(bus.BusyTime()) })
	}
}

// BytesMoved returns the total bytes transferred across all channels.
func (d *Device) BytesMoved() uint64 {
	var n uint64
	for _, bus := range d.channels {
		n += bus.Bytes()
	}
	return n
}

// BusyTime returns the summed busy time across all channels.
func (d *Device) BusyTime() units.Time {
	var t units.Time
	for _, bus := range d.channels {
		t += bus.BusyTime()
	}
	return t
}

// Channels returns the channel count.
func (d *Device) Channels() int { return len(d.channels) }

// Utilization returns the mean channel utilization.
func (d *Device) Utilization() float64 {
	var u float64
	for _, bus := range d.channels {
		u += bus.Utilization()
	}
	return u / float64(len(d.channels))
}

// BusyUntil returns the latest time any channel bus is occupied. A drained
// replay must report SimTime at or after this point.
func (d *Device) BusyUntil() units.Time {
	var t units.Time
	for _, bus := range d.channels {
		if b := bus.BusyUntil(); b > t {
			t = b
		}
	}
	return t
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }
