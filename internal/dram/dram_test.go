package dram

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/units"
)

func dev() (*engine.Sim, *Device) {
	s := engine.New()
	return s, New(s, DDR1066(4), addr.FarBase)
}

func TestDDR1066Shape(t *testing.T) {
	c := DDR1066(4)
	if c.Channels != 4 || c.Banks != 8 {
		t.Errorf("config = %+v", c)
	}
	// 4 channels of 1066MT/s x 8B ≈ 34GB/s aggregate.
	if bw := c.TotalBandwidth(); bw < units.GBps(30) || bw > units.GBps(40) {
		t.Errorf("aggregate bandwidth = %v", bw)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	s, d := dev()
	cfg := d.Config()
	// First access opens a row (row miss).
	t1 := d.Access(0, addr.FarBase, false)
	// Same row, next line on the same channel: channels interleave by
	// line, so +4 lines returns to channel 0 at channel-local line 1,
	// still inside channel-local row 0.
	t2 := d.Access(t1, addr.FarBase+4*64, false) - t1
	// A distant line on the same channel lands in a different
	// channel-local row (and possibly a different bank).
	off := addr.Addr(uint64(cfg.RowBytes) * uint64(cfg.Banks))
	t3 := d.Access(2*t1, addr.FarBase+off, false) // may also be a fresh bank
	_ = t3
	burst := cfg.ChannelBW.TransferTime(cfg.LineSize)
	if want := cfg.TCas + burst; t2 != want {
		t.Errorf("row hit latency = %v, want %v", t2, want)
	}
	_ = s
}

func TestRowStateTracking(t *testing.T) {
	_, d := dev()
	d.Access(0, addr.FarBase, false)         // opens row 0 on ch0/bank0
	d.Access(1000, addr.FarBase+4*64, false) // row hit (same row, ch0)
	st := d.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Now a conflicting row on the same channel and bank. With 4 channels
	// the channel-local row spans RowBytes*Channels of the global space:
	// off = rowBytes*banks*4 -> line = off/64 (line%4 == 0 -> channel 0),
	// channel-local line = line/4, row = chLine/(rowBytes/64) = banks,
	// bank = banks%banks = 0. Same bank as row 0, different row: conflict.
	cfg := d.Config()
	conflict := addr.FarBase + addr.Addr(uint64(cfg.RowBytes)*uint64(cfg.Banks)*4)
	d.Access(2000, conflict, false)
	if st := d.Stats(); st.RowConflicts != 1 {
		t.Errorf("conflicts = %d, want 1 (stats %+v)", st.RowConflicts, st)
	}
}

func TestChannelParallelism(t *testing.T) {
	// Simultaneous requests to different channels should finish together;
	// to the same channel, serially.
	_, d := dev()
	a := d.Access(0, addr.FarBase, false)    // ch 0
	b := d.Access(0, addr.FarBase+64, false) // ch 1
	if a != b {
		t.Errorf("parallel channels should finish together: %v vs %v", a, b)
	}
	_, d2 := dev()
	a = d2.Access(0, addr.FarBase, false)       // ch 0
	c := d2.Access(0, addr.FarBase+4*64, false) // ch 0 again
	if c <= a {
		t.Errorf("same-channel requests must serialize: %v then %v", a, c)
	}
}

func TestReadWriteCounting(t *testing.T) {
	_, d := dev()
	d.Access(0, addr.FarBase, false)
	d.Access(0, addr.FarBase+64, true)
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Accesses() != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSustainedBandwidthNearPeak(t *testing.T) {
	// Stream 1MiB sequentially; sustained bandwidth should be within 2x of
	// peak (row hits dominate, latency amortizes).
	s, d := dev()
	var last units.Time
	for off := addr.Addr(0); off < 1<<20; off += 64 {
		if done := d.Access(0, addr.FarBase+off, false); done > last {
			last = done
		}
	}
	bw := float64(1<<20) / last.Seconds()
	peak := float64(d.Config().TotalBandwidth())
	if bw < peak/2 {
		t.Errorf("sustained %v of peak %v", units.BytesPerSecond(bw), units.BytesPerSecond(peak))
	}
	if bw > peak {
		t.Errorf("sustained %v exceeds peak %v", units.BytesPerSecond(bw), units.BytesPerSecond(peak))
	}
	_ = s
}

func TestRowMappingChannelLocal(t *testing.T) {
	// The row buffer is channel-local: global offsets 0 and RowBytes both
	// map to channel 0 (line%4 == 0) and, because a channel only sees
	// every 4th line, both fall in channel-local row 0 — a row hit. The
	// old global mapping (row = off/RowBytes) called the second access a
	// different row on a different bank.
	_, d := dev()
	cfg := d.Config()
	d.Access(0, addr.FarBase, false)
	d.Access(1000, addr.FarBase+addr.Addr(cfg.RowBytes), false)
	st := d.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 {
		t.Errorf("channel-local row mapping broken: stats = %+v", st)
	}
}

func TestBulkAcquire(t *testing.T) {
	s, d := dev()
	done := d.BulkAcquire(0, units.MiB, false)
	// 1MiB over 34GB/s aggregate ≈ 31us.
	if done < 25*units.Microsecond || done > 45*units.Microsecond {
		t.Errorf("bulk 1MiB took %v", done)
	}
	_ = s
}

func TestBulkAcquireDirectionStats(t *testing.T) {
	_, d := dev()
	lines := uint64(units.MiB / 64)
	d.BulkAcquire(0, units.MiB, false) // device is the copy's source
	if st := d.Stats(); st.Reads != lines || st.Writes != 0 {
		t.Errorf("source bulk transfer miscounted: %+v", st)
	}
	d.BulkAcquire(0, units.MiB, true) // device is the copy's destination
	if st := d.Stats(); st.Reads != lines || st.Writes != lines {
		t.Errorf("destination bulk transfer miscounted: %+v", st)
	}
	if d.BusyUntil() == 0 {
		t.Error("BusyUntil should reflect the reserved bus time")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(engine.New(), Config{}, addr.FarBase)
}
