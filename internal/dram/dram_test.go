package dram

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/units"
)

func dev() (*engine.Sim, *Device) {
	s := engine.New()
	return s, New(s, DDR1066(4), addr.FarBase)
}

func TestDDR1066Shape(t *testing.T) {
	c := DDR1066(4)
	if c.Channels != 4 || c.Banks != 8 {
		t.Errorf("config = %+v", c)
	}
	// 4 channels of 1066MT/s x 8B ≈ 34GB/s aggregate.
	if bw := c.TotalBandwidth(); bw < units.GBps(30) || bw > units.GBps(40) {
		t.Errorf("aggregate bandwidth = %v", bw)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	s, d := dev()
	cfg := d.Config()
	// First access opens a row (row miss).
	t1 := d.Access(0, addr.FarBase, false)
	// Same row, next line on the same channel: channels interleave by
	// line, so +4 lines returns to channel 0 within the same 8KiB row.
	t2 := d.Access(t1, addr.FarBase+4*64, false) - t1
	// Different row, same bank (same channel): +rowBytes*banks keeps the
	// bank index and changes the row -> conflict.
	off := addr.Addr(uint64(cfg.RowBytes) * uint64(cfg.Banks))
	t3 := d.Access(2*t1, addr.FarBase+off, false) // may also be a fresh bank
	_ = t3
	burst := cfg.ChannelBW.TransferTime(cfg.LineSize)
	if want := cfg.TCas + burst; t2 != want {
		t.Errorf("row hit latency = %v, want %v", t2, want)
	}
	_ = s
}

func TestRowStateTracking(t *testing.T) {
	_, d := dev()
	d.Access(0, addr.FarBase, false)         // opens row 0 on ch0/bank0
	d.Access(1000, addr.FarBase+4*64, false) // row hit (same row, ch0)
	st := d.Stats()
	if st.RowMisses != 1 || st.RowHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Now a conflicting row on the same channel and bank.
	cfg := d.Config()
	conflict := addr.FarBase + addr.Addr(uint64(cfg.RowBytes)*uint64(cfg.Banks)*4)
	// offset by channels factor: row index = off/rowBytes; bank = row%banks.
	// off = rowBytes*banks*4 -> row = banks*4, bank 0; line = off/64 with
	// line%4 == 0 -> channel 0. Conflict confirmed.
	d.Access(2000, conflict, false)
	if st := d.Stats(); st.RowConflicts != 1 {
		t.Errorf("conflicts = %d, want 1 (stats %+v)", st.RowConflicts, st)
	}
}

func TestChannelParallelism(t *testing.T) {
	// Simultaneous requests to different channels should finish together;
	// to the same channel, serially.
	_, d := dev()
	a := d.Access(0, addr.FarBase, false)    // ch 0
	b := d.Access(0, addr.FarBase+64, false) // ch 1
	if a != b {
		t.Errorf("parallel channels should finish together: %v vs %v", a, b)
	}
	_, d2 := dev()
	a = d2.Access(0, addr.FarBase, false)       // ch 0
	c := d2.Access(0, addr.FarBase+4*64, false) // ch 0 again
	if c <= a {
		t.Errorf("same-channel requests must serialize: %v then %v", a, c)
	}
}

func TestReadWriteCounting(t *testing.T) {
	_, d := dev()
	d.Access(0, addr.FarBase, false)
	d.Access(0, addr.FarBase+64, true)
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Accesses() != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSustainedBandwidthNearPeak(t *testing.T) {
	// Stream 1MiB sequentially; sustained bandwidth should be within 2x of
	// peak (row hits dominate, latency amortizes).
	s, d := dev()
	var last units.Time
	for off := addr.Addr(0); off < 1<<20; off += 64 {
		if done := d.Access(0, addr.FarBase+off, false); done > last {
			last = done
		}
	}
	bw := float64(1<<20) / last.Seconds()
	peak := float64(d.Config().TotalBandwidth())
	if bw < peak/2 {
		t.Errorf("sustained %v of peak %v", units.BytesPerSecond(bw), units.BytesPerSecond(peak))
	}
	if bw > peak {
		t.Errorf("sustained %v exceeds peak %v", units.BytesPerSecond(bw), units.BytesPerSecond(peak))
	}
	_ = s
}

func TestBulkAcquire(t *testing.T) {
	s, d := dev()
	done := d.BulkAcquire(0, units.MiB)
	// 1MiB over 34GB/s aggregate ≈ 31us.
	if done < 25*units.Microsecond || done > 45*units.Microsecond {
		t.Errorf("bulk 1MiB took %v", done)
	}
	_ = s
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(engine.New(), Config{}, addr.FarBase)
}
