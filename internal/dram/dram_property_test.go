package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/units"
)

// TestAccessCompletionMonotone: for requests arriving in non-decreasing
// time order, completions never precede arrivals and per-channel service
// is work-conserving (completion >= arrival + minimal latency).
func TestAccessCompletionMonotone(t *testing.T) {
	f := func(offsets []uint32) bool {
		s := engine.New()
		d := New(s, DDR1066(4), addr.FarBase)
		cfg := d.Config()
		minLat := cfg.TCas + cfg.ChannelBW.TransferTime(cfg.LineSize)
		at := units.Time(0)
		for i, off := range offsets {
			at += units.Time(off % 1000)
			done := d.Access(at, addr.FarBase+addr.Addr(off%(1<<24))*64, i%4 == 0)
			if done < at+minLat {
				t.Logf("request %d: done %v < arrival %v + min %v", i, done, at, minLat)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStatsConservation: hits + misses + conflicts == accesses.
func TestStatsConservation(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := engine.New()
		d := New(s, DDR1066(2), addr.FarBase)
		for i, off := range offsets {
			d.Access(units.Time(i)*100, addr.FarBase+addr.Addr(off)*64, false)
		}
		st := d.Stats()
		return st.RowHits+st.RowMisses+st.RowConflicts == st.Accesses()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMoreChannelsNeverSlower: the same request stream on a device with
// more channels finishes no later.
func TestMoreChannelsNeverSlower(t *testing.T) {
	f := func(offsets []uint16) bool {
		run := func(channels int) units.Time {
			s := engine.New()
			d := New(s, DDR1066(channels), addr.FarBase)
			var last units.Time
			for _, off := range offsets {
				if done := d.Access(0, addr.FarBase+addr.Addr(off)*64, false); done > last {
					last = done
				}
			}
			return last
		}
		return run(8) <= run(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRowHitRateZeroOnEmpty(t *testing.T) {
	var st Stats
	if st.RowHitRate() != 0 {
		t.Error("empty stats should report 0 hit rate")
	}
}
