// Package dram models the far (capacity) memory of the two-level system —
// the role DRAMSim2 plays in the paper's SST configuration. It captures
// the properties the co-design study depends on: a small number of
// channels, each with a bounded data bus, and bank/row-buffer state that
// makes access latency depend on locality (row hit vs row miss vs row
// conflict, with DDR-1066-derived timing).
//
// Requests are serviced per channel in arrival order (FCFS) with an
// open-page row-buffer policy. The event loop's deterministic ordering
// makes the whole device deterministic.
package dram

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Config describes a far-memory device.
type Config struct {
	Channels  int                  // independent channels, line-interleaved
	Banks     int                  // banks per channel
	RowBytes  units.Bytes          // row-buffer size
	LineSize  units.Bytes          // transfer granularity (cache line)
	ChannelBW units.BytesPerSecond // per-channel data-bus bandwidth
	TCas      units.Time           // column access (row already open)
	TRcd      units.Time           // row activate
	TRp       units.Time           // precharge (row conflict adds this)
}

// DDR1066 returns the paper's far-memory configuration (Figure 4): a
// 1066MHz DDR part with the given number of channels. Per-channel peak is
// 1066 MT/s x 8 bytes ≈ 8.5 GB/s; the paper uses 4 channels.
func DDR1066(channels int) Config {
	return Config{
		Channels:  channels,
		Banks:     8,
		RowBytes:  8 * units.KiB,
		LineSize:  64,
		ChannelBW: units.BytesPerSecond(1066e6 * 8),
		TCas:      13 * units.Nanosecond,
		TRcd:      13 * units.Nanosecond,
		TRp:       13 * units.Nanosecond,
	}
}

// TotalBandwidth returns the aggregate peak bandwidth across channels.
// MinService returns the smallest time any single access can occupy the
// device: a row-hit column access plus one line's bus transfer. Every
// Access/BulkAcquire completion lands at least this far after its issue,
// which makes it a safe lookahead component for the sharded engine.
func (c Config) MinService() units.Time {
	return c.TCas + c.ChannelBW.TransferTime(c.LineSize)
}

func (c Config) TotalBandwidth() units.BytesPerSecond {
	return c.ChannelBW * units.BytesPerSecond(c.Channels)
}

type bank struct {
	openRow uint64
	open    bool
}

type channel struct {
	bus   *engine.Resource
	banks []bank
}

// Stats counts device activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	RowConflicts uint64
}

// Accesses returns total device requests.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	t := s.Accesses()
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// Device is a far-memory instance attached to a simulation.
type Device struct {
	cfg      Config
	base     addr.Addr
	channels []channel
	stats    Stats
	inj      *fault.Injector // nil or disabled: perfect memory
}

// New builds a device servicing the window starting at base.
func New(sim *engine.Sim, cfg Config, base addr.Addr) *Device {
	if cfg.Channels <= 0 || cfg.Banks <= 0 {
		panic("dram: need at least one channel and bank")
	}
	if cfg.LineSize <= 0 || cfg.RowBytes < cfg.LineSize {
		panic("dram: row buffer must hold at least one line")
	}
	d := &Device{cfg: cfg, base: base, channels: make([]channel, cfg.Channels)}
	for i := range d.channels {
		d.channels[i] = channel{
			bus:   engine.NewResource(sim, cfg.ChannelBW),
			banks: make([]bank, cfg.Banks),
		}
	}
	return d
}

// Access services one line transfer arriving at time at and returns its
// completion time. The request experiences the bank's row-buffer latency
// followed by the channel data-bus occupancy.
//
// Address mapping: lines are interleaved across channels (channel =
// line mod Channels), so a channel sees every Channels-th line. Each
// channel has its own banks and row buffers, so the row index derives from
// the channel-local line index (line div Channels): channel-local row
// RowBytes/LineSize lines wide, bank = row mod Banks. Deriving the row
// from the global offset instead would smear one "row" across all
// channels and misattribute row hits.
func (d *Device) Access(at units.Time, a addr.Addr, write bool) units.Time {
	off := uint64(a - d.base)
	line := off / uint64(d.cfg.LineSize)
	nch := uint64(len(d.channels))
	ch := &d.channels[line%nch]
	chLine := line / nch
	row := chLine / (uint64(d.cfg.RowBytes) / uint64(d.cfg.LineSize))
	bk := &ch.banks[row%uint64(d.cfg.Banks)]

	var lat units.Time
	switch {
	case bk.open && bk.openRow == row:
		lat = d.cfg.TCas
		d.stats.RowHits++
	case bk.open:
		lat = d.cfg.TRp + d.cfg.TRcd + d.cfg.TCas
		d.stats.RowConflicts++
	default:
		lat = d.cfg.TRcd + d.cfg.TCas
		d.stats.RowMisses++
	}
	bk.open, bk.openRow = true, row

	if write {
		d.stats.Writes++
		return ch.bus.AcquireAt(at+lat, d.cfg.LineSize)
	}
	d.stats.Reads++
	done := ch.bus.AcquireAt(at+lat, d.cfg.LineSize)

	// ECC SECDED on the read path: a corrected single-bit error costs fixed
	// controller latency; an uncorrectable error triggers re-reads with
	// bounded exponential backoff, each re-occupying the channel bus (the
	// row stays open, so only the column access repeats). A read that
	// exhausts its retry budget returns poisoned data — recorded here and
	// surfaced by the machine as a MemFault outcome. The decision is keyed
	// by the read index, so the fault schedule is fixed up front.
	plan := d.inj.FarRead(d.stats.Reads - 1)
	if plan.Corrected {
		done += d.inj.CorrectLatency()
	}
	for k := 0; k < plan.Retries; k++ {
		done = ch.bus.AcquireAt(done+d.inj.Backoff(k)+d.cfg.TCas, d.cfg.LineSize)
	}
	if plan.Fatal {
		d.inj.NoteMemFault(uint64(a), done, plan.Retries)
	}
	return done
}

// SetFaults attaches a fault injector; nil (the default) models perfect
// memory. Call before the first access.
func (d *Device) SetFaults(in *fault.Injector) { d.inj = in }

// BulkAcquire reserves channel bandwidth for n bytes spread evenly across
// all channels starting at time at, returning when the slowest channel
// finishes. Used by the DMA engines, which stream large extents without
// per-line commands. write selects the accounting direction: the device a
// copy streams out of counts the transfer as Reads, the device it lands in
// counts it as Writes, so Table I access counts stay direction-faithful.
// DMA streams bypass the per-read ECC retry model: the engines are assumed
// to carry transfer-level CRC with end-to-end recovery (see DESIGN.md's
// fault-model section).
func (d *Device) BulkAcquire(at units.Time, n units.Bytes, write bool) units.Time {
	//nmlint:ignore escape-check inlined CeilDiv panic string; the escape is on the cold divide-by-zero exit
	per := units.Bytes(units.CeilDiv(int64(n), int64(len(d.channels))))
	var done units.Time
	for i := range d.channels {
		if t := d.channels[i].bus.AcquireAt(at+d.cfg.TRcd+d.cfg.TCas, per); t > done {
			done = t
		}
	}
	//nmlint:ignore escape-check inlined CeilDiv panic string; cold exit only
	lines := uint64(units.CeilDiv(int64(n), int64(d.cfg.LineSize)))
	if write {
		d.stats.Writes += lines
	} else {
		d.stats.Reads += lines
	}
	return done
}

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// RegisterProbes registers the device's telemetry counters: device-level
// request and row-buffer counters on the "far" track, and per-channel bytes
// and busy time on "far.ch<i>" tracks. Probe closures read simulator-owned
// counters only.
func (d *Device) RegisterProbes(tel *telemetry.Recorder) {
	tel.Counter("far", "reads", func() uint64 { return d.stats.Reads })
	tel.Counter("far", "writes", func() uint64 { return d.stats.Writes })
	tel.Counter("far", "row_hits", func() uint64 { return d.stats.RowHits })
	tel.Counter("far", "row_misses", func() uint64 { return d.stats.RowMisses })
	tel.Counter("far", "row_conflicts", func() uint64 { return d.stats.RowConflicts })
	for i := range d.channels {
		bus := d.channels[i].bus
		track := fmt.Sprintf("far.ch%d", i)
		tel.Counter(track, "bytes", bus.Bytes)
		tel.Counter(track, "busy_ps", func() uint64 { return uint64(bus.BusyTime()) })
	}
}

// BytesMoved returns the total bytes transferred across all channel buses.
func (d *Device) BytesMoved() uint64 {
	var n uint64
	for i := range d.channels {
		n += d.channels[i].bus.Bytes()
	}
	return n
}

// BusyTime returns the summed busy time across all channel buses (the raw
// material for per-phase utilization: divide a delta by duration x channels).
func (d *Device) BusyTime() units.Time {
	var t units.Time
	for i := range d.channels {
		t += d.channels[i].bus.BusyTime()
	}
	return t
}

// Channels returns the channel count.
func (d *Device) Channels() int { return len(d.channels) }

// Utilization returns the mean data-bus utilization across channels.
func (d *Device) Utilization() float64 {
	var u float64
	for i := range d.channels {
		u += d.channels[i].bus.Utilization()
	}
	return u / float64(len(d.channels))
}

// BusyUntil returns the latest time any channel data bus is occupied. A
// drained replay must report SimTime at or after this point.
func (d *Device) BusyUntil() units.Time {
	var t units.Time
	for i := range d.channels {
		if b := d.channels[i].bus.BusyUntil(); b > t {
			t = b
		}
	}
	return t
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }
