package harness

// Sweep-throughput benchmarks backing BENCH_sweep.json: the same Table I
// replay batch pushed through the worker pool at one worker and at
// GOMAXPROCS. The trace is recorded once outside the timed region, so the
// Par1/ParMax ratio isolates the pool's wall-clock win (it approaches the
// core count on a multi-core host and 1.0 on a single-core one — the
// rendered output is byte-identical either way, which TestRunReplays*
// and the root-level par determinism tests enforce).

import (
	"runtime"
	"testing"

	"repro/internal/trace"
	"repro/internal/units"
)

// benchSweepJobs builds the Table I replay batch — the gnusort baseline at
// 2X plus NMsort at 2X/4X/8X — from one pair of recorded traces.
func benchSweepJobs(b *testing.B) []replayJob {
	b.Helper()
	w := Workload{N: 1 << 16, Seed: 2015, Threads: 32, SP: 512 * units.KiB}
	gnu, err := Record(AlgGNUSort, w)
	if err != nil {
		b.Fatal(err)
	}
	nm, err := Record(AlgNMSort, w)
	if err != nil {
		b.Fatal(err)
	}
	channels := []int{8, 8, 16, 32}
	traces := []*trace.Trace{gnu.Trace, nm.Trace, nm.Trace, nm.Trace}
	jobs := make([]replayJob, len(channels))
	for i, ch := range channels {
		jobs[i] = replayJob{cfg: NodeFor(w.Threads, ch, w.SP), tr: traces[i]}
	}
	return jobs
}

// benchSweep replays the batch once per iteration on a pool of the given
// size and reports per-job wall time.
func benchSweep(b *testing.B, workers int) {
	jobs := benchSweepJobs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs := runReplays(nil, workers, jobs)
		for _, o := range outs {
			if o.err != nil {
				b.Fatal(o.err)
			}
		}
	}
	b.StopTimer()
	perIter := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(perIter*1e9/float64(len(jobs)), "ns/job")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

func BenchmarkSweepTable1Par1(b *testing.B) { benchSweep(b, 1) }

func BenchmarkSweepTable1ParMax(b *testing.B) {
	benchSweep(b, replayPar(0, 4))
}
