package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/units"
	"repro/internal/xrand"
)

// renderSweep is the byte-identity probe: the aligned text plus the CSV
// encoding, so both render paths are pinned at once.
func renderSweep(t *testing.T, s Sweep) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(s.String())
	if err := s.Report().Render(&b, "csv"); err != nil {
		t.Fatalf("render csv: %v", err)
	}
	return b.String()
}

// TestSupervisedMatchesUnsupervised pins the core byte-identity claim: a
// supervisor with nothing to do (no cancellation, no chaos, no manifest)
// renders the exact bytes of the historical unsupervised sweep.
func TestSupervisedMatchesUnsupervised(t *testing.T) {
	w := tinyWorkload()
	golden, err := BandwidthSweep(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, slice := range []uint64{0, 1 << 12} {
		sw := w
		sw.Sup = &Supervisor{Slice: slice}
		got, err := BandwidthSweep(sw)
		if err != nil {
			t.Fatalf("slice %d: %v", slice, err)
		}
		if got.Failed() != 0 {
			t.Fatalf("slice %d: %d failed cells", slice, got.Failed())
		}
		if g, want := renderSweep(t, got), renderSweep(t, golden); g != want {
			t.Errorf("slice %d: supervised output differs from unsupervised:\n%s\nwant:\n%s", slice, g, want)
		}
	}
}

// TestChaosInterruptResume is the deterministic chaos test: sweeps are
// killed at seeded slice boundaries via the Interrupt hook, resumed from
// the on-disk manifest (reloaded through OpenManifest each round, as a
// fresh process would), and the final resumed report must be byte-identical
// to an uninterrupted golden run — across worker counts and across engine
// sharding (the manifest key deliberately ignores Shards).
func TestChaosInterruptResume(t *testing.T) {
	w := tinyWorkload()
	golden, err := BandwidthSweep(w)
	if err != nil {
		t.Fatal(err)
	}
	want := renderSweep(t, golden)

	pars := []int{1, 4}
	if testing.Short() {
		pars = []int{2}
	}
	const chaosSeed = 0xC4A05
	for _, par := range pars {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			if par > 1 {
				// The widest matrix point also runs host-constrained:
				// byte-identity must hold at any GOMAXPROCS.
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
			}
			path := filepath.Join(t.TempDir(), "manifest.json")
			for round := 0; ; round++ {
				if round > 50 {
					t.Fatal("chaos rounds did not converge")
				}
				man, err := OpenManifest(path)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				// The kill threshold is seeded and grows with the round, so
				// every schedule eventually outruns the chaos.
				kill := 1 + xrand.Mix(chaosSeed, uint64(round))%20 + uint64(round)*5
				var slices atomic.Uint64
				chaos := errors.New("chaos kill")
				sw := w
				sw.Par = par
				sw.Shards = []int{0, 2}[round%2] // resume must cross -shards values
				sw.Sup = &Supervisor{
					Slice:    1 << 12,
					Manifest: man,
					Interrupt: func() error {
						if slices.Add(1) >= kill {
							return chaos
						}
						return nil
					},
				}
				s, err := BandwidthSweep(sw)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if s.Failed() == 0 {
					if got := renderSweep(t, s); got != want {
						t.Errorf("resumed sweep differs from golden:\n%s\nwant:\n%s", got, want)
					}
					t.Logf("converged after %d rounds, %d cells checkpointed", round+1, man.Len())
					return
				}
				for _, p := range s.Points {
					if p.Fail != "" && p.Fail != "cancelled" {
						t.Fatalf("round %d: cell %q failed with %q, want cancelled", round, p.Label, p.Fail)
					}
					if p.Fail != "" && !strings.Contains(pointLabel(p), "[cancelled]") {
						t.Fatalf("round %d: cancelled cell %q not marked: %q", round, p.Label, pointLabel(p))
					}
				}
			}
		})
	}
}

// TestPanicContainment plants a cell whose machine configuration fails
// validation (machine.New panics) among healthy cells: the sweep must
// complete, the poisoned cell must render as a marked row, and the failure
// count must be exactly one.
func TestPanicContainment(t *testing.T) {
	w := tinyWorkload()
	rec, err := Record(AlgGNUSort, w)
	if err != nil {
		t.Fatal(err)
	}
	good := NodeFor(w.Threads, 8, w.SP)
	bad := good
	bad.Cores = -1 // fails Validate; machine.New panics
	jobs := []replayJob{
		{cfg: good, tr: rec.Trace},
		{cfg: bad, tr: rec.Trace},
		{cfg: good, tr: rec.Trace},
	}
	points := []SweepPoint{{Label: "ok-a"}, {Label: "boom"}, {Label: "ok-b"}}
	s, err := Sweep{Title: "panic containment"}.collect(&Supervisor{}, 2, jobs, points)
	if err != nil {
		t.Fatalf("supervised sweep aborted: %v", err)
	}
	if s.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1", s.Failed())
	}
	if s.Points[1].Fail != "panic" {
		t.Errorf("Fail = %q, want panic", s.Points[1].Fail)
	}
	if got := pointLabel(s.Points[1]); got != "boom [panic]" {
		t.Errorf("label = %q, want %q", got, "boom [panic]")
	}
	for _, i := range []int{0, 2} {
		if s.Points[i].Fail != "" || s.Points[i].Result.Events == 0 {
			t.Errorf("healthy cell %d damaged: fail=%q events=%d", i, s.Points[i].Fail, s.Points[i].Result.Events)
		}
	}
	// The raw error carries the cell coordinates and the panic stack.
	out := (&Supervisor{}).runCell(replayJob{cfg: bad, tr: rec.Trace, label: "boom"}, CellKey{Trace: 1, Config: 2})
	var pe *ReplayPanicError
	if !errors.As(out.err, &pe) {
		t.Fatalf("err = %v, want ReplayPanicError", out.err)
	}
	if pe.Cell != (CellKey{Trace: 1, Config: 2}) || pe.Label != "boom" || len(pe.Stack) == 0 {
		t.Errorf("panic error missing coordinates: %+v", pe)
	}
}

// TestBudgetContainment: a supervised cell that exhausts its event budget
// becomes a marked row, not a sweep abort, and the slice size does not leak
// into the reported budget error.
func TestBudgetContainment(t *testing.T) {
	w := tinyWorkload()
	rec, err := Record(AlgGNUSort, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NodeFor(w.Threads, 8, w.SP)
	cfg.MaxEvents = 999
	s, err := Sweep{Title: "budget"}.collect(&Supervisor{Slice: 100}, 1,
		[]replayJob{{cfg: cfg, tr: rec.Trace}}, []SweepPoint{{Label: "starved"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Failed() != 1 || s.Points[0].Fail != "budget" {
		t.Fatalf("Fail = %q (failed %d), want budget", s.Points[0].Fail, s.Failed())
	}
}

// TestDeterministicRetry pins the retry loop: attempts are counted, the
// reseeding chain is pure (two identical supervised runs agree bit for
// bit), and exhausted retries degrade to the tolerated MemFault outcome.
func TestDeterministicRetry(t *testing.T) {
	w := tinyWorkload()
	rec, err := Record(AlgGNUSort, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NodeFor(w.Threads, 8, w.SP)
	// Every far read faults, nothing is correctable, every fault is stuck:
	// each attempt ends in a MemFault, so the supervisor runs the full
	// retry budget and then tolerates the outcome as data.
	cfg.Fault = fault.Config{Seed: 99, BitErrorRate: 1, UncorrectableFrac: 1, StuckFrac: 1}

	run := func() replayOut {
		sup := &Supervisor{Retries: 2, RetrySeed: 7}
		keys, err := sup.cellKeys([]replayJob{{cfg: cfg, tr: rec.Trace}})
		if err != nil {
			t.Fatal(err)
		}
		return sup.runCell(replayJob{cfg: cfg, tr: rec.Trace, label: "faulty"}, keys[0])
	}
	a, b := run(), run()
	if a.err != nil {
		t.Fatalf("retry-exhausted cell must tolerate MemFault, got %v", a.err)
	}
	if !a.memFault {
		t.Error("memFault flag not set after exhausted retries")
	}
	if a.attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 initial + 2 retries)", a.attempts)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("retry chain not deterministic:\n%+v\n%+v", a, b)
	}
	// Zero retries must match the historical runTolerant outcome exactly.
	sup := &Supervisor{}
	keys, err := sup.cellKeys([]replayJob{{cfg: cfg, tr: rec.Trace}})
	if err != nil {
		t.Fatal(err)
	}
	got := sup.runCell(replayJob{cfg: cfg, tr: rec.Trace}, keys[0])
	res, mf, err := runTolerant(cfg, rec.Trace)
	if err != nil || !mf {
		t.Fatalf("runTolerant: mf=%v err=%v", mf, err)
	}
	if got.err != nil || !got.memFault || fmt.Sprintf("%+v", got.res) != fmt.Sprintf("%+v", res) {
		t.Errorf("supervised MemFault outcome differs from runTolerant")
	}
}

// TestCancellationSkipsCells: a context cancelled before the sweep starts
// cancels every cell, with the cause reachable through errors.Is.
func TestCancellationSkipsCells(t *testing.T) {
	w := tinyWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sw := w
	sw.Sup = &Supervisor{Ctx: ctx}
	s, err := BandwidthSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if s.Failed() != len(s.Points) {
		t.Fatalf("Failed() = %d, want all %d", s.Failed(), len(s.Points))
	}
	for _, p := range s.Points {
		if p.Fail != "cancelled" {
			t.Errorf("cell %q: Fail = %q, want cancelled", p.Label, p.Fail)
		}
	}
	// The raw cell error unwraps to the context cause.
	out := sw.Sup.runCell(replayJob{cfg: NodeFor(w.Threads, 8, w.SP)}, CellKey{})
	if !errors.Is(out.err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", out.err)
	}
}

// TestTimelineSupervised: telemetry cells run under the supervisor but
// never consult the manifest — the recorder must actually record on every
// run, including one whose manifest already holds other cells.
func TestTimelineSupervised(t *testing.T) {
	w := tinyWorkload()
	man := NewManifest(filepath.Join(t.TempDir(), "m.json"))
	sw := w
	sw.Sup = &Supervisor{Manifest: man}
	res1, tel1, err := RunTimeline(AlgNMSort, sw, 8, 50*units.Microsecond, fault.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res2, tel2, err := RunTimeline(AlgNMSort, sw, 8, 50*units.Microsecond, fault.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tel1 == nil || tel2 == nil {
		t.Fatal("telemetry recorder missing")
	}
	if res1.SimTime != res2.SimTime || res1.Events != res2.Events {
		t.Errorf("supervised timeline not deterministic: %+v vs %+v", res1, res2)
	}
	if man.Len() != 0 {
		t.Errorf("telemetry cells leaked into the manifest: %d entries", man.Len())
	}
}

// TestManifestRoundTrip: complete → reopen → lookup returns the identical
// cell, including the full nested machine.Result.
func TestManifestRoundTrip(t *testing.T) {
	w := tinyWorkload()
	rec, err := Record(AlgGNUSort, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NodeFor(w.Threads, 8, w.SP)
	res, err := machine.Run(cfg, rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := NewManifest(path)
	key := CellKey{Trace: 0xAB, Config: 0xCD}
	if err := m.Complete(key, CellOutcome{MemFault: true, Attempts: 2, Result: res}); err != nil {
		t.Fatal(err)
	}
	re, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.Lookup(key)
	if !ok {
		t.Fatal("completed cell missing after reopen")
	}
	if fmt.Sprintf("%+v", got.Result) != fmt.Sprintf("%+v", res) || !got.MemFault || got.Attempts != 2 {
		t.Errorf("cell did not round-trip:\ngot  %+v\nwant %+v", got.Result, res)
	}
}

// TestManifestCorruption: every tampered form of the file is rejected with
// ErrManifestCorrupt; a missing file is an empty manifest, not an error.
func TestManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	m := NewManifest(path)
	if err := m.Complete(CellKey{Trace: 1, Config: 2}, CellOutcome{Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	missing, err := OpenManifest(filepath.Join(dir, "nope.json"))
	if err != nil || missing.Len() != 0 {
		t.Fatalf("missing file: len=%d err=%v, want empty manifest", missing.Len(), err)
	}

	cases := map[string][]byte{
		"not json":      []byte("]{"),
		"bad version":   []byte(strings.Replace(string(raw), `"version": 1`, `"version": 9`, 1)),
		"flipped cell":  []byte(strings.Replace(string(raw), `"attempts": 1`, `"attempts": 7`, 1)),
		"bad checksum":  []byte(strings.Replace(string(raw), `"crc64": "`, `"crc64": "0`, 1)),
		"bad trace key": []byte(strings.Replace(string(raw), `"trace": "0`, `"trace": "z`, 1)),
	}
	for name, mut := range cases {
		p := filepath.Join(dir, "corrupt.json")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenManifest(p); !errors.Is(err, ErrManifestCorrupt) {
			t.Errorf("%s: err = %v, want ErrManifestCorrupt", name, err)
		}
	}
}

// TestCellKeyStability: the key is content-addressed — equal traces and
// configs agree across processes and shard settings, different content
// disagrees.
func TestCellKeyStability(t *testing.T) {
	w := tinyWorkload()
	rec, err := Record(AlgGNUSort, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NodeFor(w.Threads, 8, w.SP)
	sup := &Supervisor{}
	keys, err := sup.cellKeys([]replayJob{{cfg: cfg, tr: rec.Trace}})
	if err != nil {
		t.Fatal(err)
	}
	sharded := cfg
	sharded.Shards = 4
	keys2, err := sup.cellKeys([]replayJob{{cfg: sharded, tr: rec.Trace}})
	if err != nil {
		t.Fatal(err)
	}
	if keys[0] != keys2[0] {
		t.Errorf("Shards leaked into the cell key: %v vs %v", keys[0], keys2[0])
	}
	other := cfg
	other.MaxEvents = 12345
	keys3, err := sup.cellKeys([]replayJob{{cfg: other, tr: rec.Trace}})
	if err != nil {
		t.Fatal(err)
	}
	if keys[0] == keys3[0] {
		t.Error("config change did not change the cell key")
	}
	if got, want := (CellKey{Trace: 0xAB, Config: 0xCD}).String(), "t00000000000000ab-c00000000000000cd"; got != want {
		t.Errorf("key format drifted: %q, want %q", got, want)
	}
}

// TestTable1Supervised: Table1 under a do-nothing supervisor matches the
// unsupervised golden table byte for byte, and a supervised failure leaves
// a marked row with a non-zero Failed count instead of an abort.
func TestTable1Supervised(t *testing.T) {
	w := tinyWorkload()
	golden, err := Table1(w, false)
	if err != nil {
		t.Fatal(err)
	}
	sw := w
	sw.Sup = &Supervisor{}
	got, err := Table1(sw, false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Failed() != 0 {
		t.Fatalf("Failed() = %d", got.Failed())
	}
	if got.String() != golden.String() {
		t.Errorf("supervised Table1 differs:\n%s\nwant:\n%s", got.String(), golden.String())
	}

	// Starve the table's replays: every row fails, none aborts.
	bw := sw
	bw.MaxEvents = 9
	starved, err := Table1(bw, false)
	if err != nil {
		t.Fatalf("supervised table aborted: %v", err)
	}
	if starved.Failed() != len(starved.Rows) {
		t.Errorf("Failed() = %d, want %d", starved.Failed(), len(starved.Rows))
	}
	for _, r := range starved.Rows {
		if !strings.Contains(r.Name, "[budget]") {
			t.Errorf("row %q not budget-marked", r.Name)
		}
	}
}
