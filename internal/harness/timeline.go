package harness

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// RunTimeline records the algorithm once and replays it on a NodeFor node
// with a telemetry recorder attached, sampling every probe at the given
// epoch, under the fault environment fc (the zero config for perfect
// memory). It returns the replay result and the sealed recorder, ready for
// ExportChrome/WriteCSV. A MemFault outcome is tolerated like everywhere
// else in the harness (the timeline of a faulting run is exactly what one
// wants to look at).
func RunTimeline(alg Algorithm, w Workload, nearChannels int, epoch units.Time, fc fault.Config) (machine.Result, *telemetry.Recorder, error) {
	rec, err := Record(alg, w)
	if err != nil {
		return machine.Result{}, nil, err
	}
	tel := telemetry.New(epoch)
	cfg := NodeFor(w.Threads, nearChannels, w.SP)
	cfg.MaxEvents = w.MaxEvents
	cfg.Shards = w.Shards
	cfg.Fault = fc
	cfg.Telemetry = tel
	// One-job pool: with w.Sup set this replay is supervised like any
	// sweep cell (sliced, panic-contained, cancellable); telemetry cells
	// never use the manifest, so the recorder always actually records.
	o := runReplays(w.Sup, 1, []replayJob{{cfg: cfg, tr: rec.Trace, label: string(alg)}})[0]
	if o.err != nil {
		return o.res, nil, o.err
	}
	return o.res, tel, nil
}

// TimelineSweep runs the timeline experiment: NMsort and the merge baseline
// replayed with telemetry attached, reported as an ordinary sweep — whose
// phase breakdown is the experiment's point. The recorders are discarded;
// use RunTimeline to keep one for export.
func TimelineSweep(w Workload, nearChannels int, epoch units.Time) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("Timeline sweep, N=%d keys, %d cores, %dX near bandwidth, epoch %s",
		w.N, w.Threads, nearChannels/4, epoch)}
	var jobs []replayJob
	var points []SweepPoint
	for _, alg := range []Algorithm{AlgGNUSort, AlgNMSort} {
		rec, err := Record(alg, w)
		if err != nil {
			return s, err
		}
		cfg := NodeFor(w.Threads, nearChannels, w.SP)
		cfg.MaxEvents = w.MaxEvents
		cfg.Shards = w.Shards
		// Each point owns a private recorder (they are single-use, like
		// machines), so telemetry-instrumented replays pool like any other.
		cfg.Telemetry = telemetry.New(epoch)
		jobs = append(jobs, replayJob{cfg: cfg, tr: rec.Trace})
		points = append(points, SweepPoint{
			Label: string(alg),
			Cores: w.Threads,
			Rho:   float64(nearChannels) / 4,
		})
	}
	return s.collect(w.Sup, replayPar(w.Par, len(jobs)), jobs, points)
}
