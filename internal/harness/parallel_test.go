package harness

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/units"
)

// TestReplayPar pins the knob-resolution rules: 0 means GOMAXPROCS, the
// pool never exceeds the job count, and the floor is one worker.
func TestReplayPar(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	auto := procs
	if auto > 100 {
		auto = 100
	}
	cases := []struct {
		p, n, want int
	}{
		{0, 100, auto},
		{0, 1, 1},
		{1, 100, 1},
		{8, 4, 4},
		{3, 100, 3},
		{-2, 100, auto},
		{5, 0, 1},
	}
	for _, tc := range cases {
		if got := replayPar(tc.p, tc.n); got != tc.want {
			t.Errorf("replayPar(%d, %d) = %d, want %d", tc.p, tc.n, got, tc.want)
		}
	}
}

// TestRunReplaysMatchesSequential replays one batch sequentially and on an
// oversubscribed pool: every output slot must hold the identical result —
// the slot-indexed write discipline the sweeps' byte-identity rests on.
func TestRunReplaysMatchesSequential(t *testing.T) {
	w := Workload{N: 1 << 12, Seed: 7, Threads: 8, SP: 64 * units.KiB}
	rec, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []replayJob
	for _, ch := range []int{8, 16, 32, 8, 16, 32} {
		jobs = append(jobs, replayJob{cfg: NodeFor(w.Threads, ch, w.SP), tr: rec.Trace})
	}
	seq := runReplays(nil, 1, jobs)
	for _, workers := range []int{2, 8} {
		got := runReplays(nil, workers, jobs)
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: %d outputs, want %d", workers, len(got), len(seq))
		}
		for i := range seq {
			if seq[i].err != nil || got[i].err != nil {
				t.Fatalf("workers=%d job %d: errors %v / %v", workers, i, seq[i].err, got[i].err)
			}
			if !reflect.DeepEqual(got[i], seq[i]) {
				t.Errorf("workers=%d: job %d result differs from sequential run", workers, i)
			}
		}
	}
	if out := runReplays(nil, 4, nil); len(out) != 0 {
		t.Errorf("runReplays with no jobs returned %d outputs", len(out))
	}
}
