package harness

import (
	"runtime"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/trace"
)

// Sweep points are independent replays of immutable recorded traces: each
// point owns a private engine, machine, and fault injector, and the fault
// injector is counter-keyed (order-independent by construction), so points
// may run concurrently in any order. runReplays is the deterministic worker
// pool every sweep goes through — each job writes only its pre-assigned
// output slot, so a sweep's rendered report is byte-identical at any worker
// count, including 1.

// replayJob is one independent sweep point: a machine configuration plus
// the recorded trace to replay on it. The trace is shared read-only across
// jobs — replay never mutates a stream — and may be a decoded *Trace or a
// columnar v3 file replayed in place. label is the point's report label,
// carried so supervised failures name their cell.
type replayJob struct {
	cfg   machine.Config
	tr    trace.Source
	label string
}

// replayOut is one job's outcome, written into the job's slot.
type replayOut struct {
	res      machine.Result
	memFault bool // the replay completed but returned uncorrected data
	attempts int  // supervised replay attempts (0 on the unsupervised path)
	err      error
}

// replayPar resolves a Workload.Par knob against a job count: 0 means
// GOMAXPROCS, and a pool never has more workers than jobs.
func replayPar(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runReplays replays every job on a pool of `workers` goroutines (via
// par.Run, the module's one sanctioned fork-join). Workers pull the next
// unclaimed job index from a shared cursor — dynamic scheduling, because
// sweep points differ wildly in event count — and write results by index,
// never by completion order.
//
// With a nil supervisor each job is one undivided replay and errors are
// the caller's to handle (the historical path — byte-identical to every
// pre-supervision release). With a supervisor, each job runs as a
// supervised cell: sliced, panic-contained, retried, checkpointed.
func runReplays(sup *Supervisor, workers int, jobs []replayJob) []replayOut {
	out := make([]replayOut, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	run := func(i int) { out[i] = runJob(jobs[i]) }
	if sup != nil {
		keys, err := sup.cellKeys(jobs)
		if err != nil {
			for i := range out {
				out[i] = replayOut{err: err}
			}
			return out
		}
		run = func(i int) { out[i] = sup.runCell(jobs[i], keys[i]) }
	}
	if workers <= 1 {
		for i := range jobs {
			run(i)
		}
		return out
	}
	var next atomic.Int64
	par.Run(workers, nil, func(int, *trace.TP) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			run(i)
		}
	})
	return out
}

// runJob replays one job with the harness's usual MemFault tolerance.
func runJob(j replayJob) replayOut {
	res, memFault, err := runTolerant(j.cfg, j.tr)
	return replayOut{res: res, memFault: memFault, err: err}
}
