package harness

import (
	"runtime"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/par"
	"repro/internal/trace"
)

// Sweep points are independent replays of immutable recorded traces: each
// point owns a private engine, machine, and fault injector, and the fault
// injector is counter-keyed (order-independent by construction), so points
// may run concurrently in any order. runReplays is the deterministic worker
// pool every sweep goes through — each job writes only its pre-assigned
// output slot, so a sweep's rendered report is byte-identical at any worker
// count, including 1.

// replayJob is one independent sweep point: a machine configuration plus
// the recorded trace to replay on it. The trace is shared read-only across
// jobs — replay never mutates a stream.
type replayJob struct {
	cfg machine.Config
	tr  *trace.Trace
}

// replayOut is one job's outcome, written into the job's slot.
type replayOut struct {
	res      machine.Result
	memFault bool // the replay completed but returned uncorrected data
	err      error
}

// replayPar resolves a Workload.Par knob against a job count: 0 means
// GOMAXPROCS, and a pool never has more workers than jobs.
func replayPar(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runReplays replays every job on a pool of `workers` goroutines (via
// par.Run, the module's one sanctioned fork-join). Workers pull the next
// unclaimed job index from a shared cursor — dynamic scheduling, because
// sweep points differ wildly in event count — and write results by index,
// never by completion order.
func runReplays(workers int, jobs []replayJob) []replayOut {
	out := make([]replayOut, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if workers <= 1 {
		for i, j := range jobs {
			out[i] = runJob(j)
		}
		return out
	}
	var next atomic.Int64
	par.Run(workers, nil, func(int, *trace.TP) {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(jobs) {
				return
			}
			out[i] = runJob(jobs[i])
		}
	})
	return out
}

// runJob replays one job with the harness's usual MemFault tolerance.
func runJob(j replayJob) replayOut {
	res, memFault, err := runTolerant(j.cfg, j.tr)
	return replayOut{res: res, memFault: memFault, err: err}
}
