package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/machine"
)

// The sweep checkpoint manifest: a checksummed JSON progress file holding
// one entry per completed sweep cell, keyed content-addressably by
// (trace digest, config digest). Every completed cell is written through
// atomically (temp + rename), so the file on disk is always a complete,
// verifiable manifest — a killed sweep leaves either the previous
// manifest or the new one, never a torn hybrid. cmd/sweep's -resume flag
// loads it and skips completed cells; because cells are deterministic,
// the resumed report is byte-identical to an uninterrupted run's.

// manifestVersion guards the file format.
const manifestVersion = 1

// ErrManifestCorrupt marks a manifest whose checksum or structure failed
// verification. errors.Is-reachable through OpenManifest's wrap chain.
var ErrManifestCorrupt = errors.New("harness: manifest corrupt")

// CellOutcome is one completed cell's checkpoint: everything a sweep
// needs to rebuild the cell's report row without replaying. machine.Result
// round-trips JSON exactly (all fields exported, integers and float64s —
// Go encodes float64 with the shortest representation that parses back to
// the same bits), which the manifest round-trip test pins. The field
// order and tags are part of the manifest file format — resume
// byte-identity tests depend on them.
type CellOutcome struct {
	MemFault bool           `json:"mem_fault,omitempty"`
	Attempts int            `json:"attempts"`
	Result   machine.Result `json:"result"`
}

// manifestEntry is one cell in the file, with its key in stable hex.
type manifestEntry struct {
	Trace  string      `json:"trace"`
	Config string      `json:"config"`
	Cell   CellOutcome `json:"cell"`
}

// manifestFile is the on-disk layout. CRC covers the marshaled entries.
type manifestFile struct {
	Version int             `json:"version"`
	Cells   []manifestEntry `json:"cells"`
	CRC     string          `json:"crc64"`
}

// Manifest is the in-memory view of a checkpoint file, safe for
// concurrent completion from pool workers.
type Manifest struct {
	path string

	mu    sync.Mutex
	cells map[CellKey]CellOutcome
}

// Manifest is the on-disk CellCache implementation.
var _ CellCache = (*Manifest)(nil)

// NewManifest returns an empty manifest that will persist to path.
func NewManifest(path string) *Manifest {
	return &Manifest{path: path, cells: make(map[CellKey]CellOutcome)}
}

// OpenManifest loads the manifest at path. A missing file yields an empty
// manifest bound to the path (resuming a sweep that never checkpointed is
// just a fresh run); a present-but-unverifiable file yields an error
// wrapping ErrManifestCorrupt — resuming from it would silently produce a
// report that matches nothing.
func OpenManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewManifest(path), nil
	}
	if err != nil {
		return nil, fmt.Errorf("harness: reading manifest %s: %w", path, err)
	}
	var f manifestFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrManifestCorrupt, path, err)
	}
	if f.Version != manifestVersion {
		return nil, fmt.Errorf("%w: %s: version %d, want %d", ErrManifestCorrupt, path, f.Version, manifestVersion)
	}
	sum, err := cellsCRC(f.Cells)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrManifestCorrupt, path, err)
	}
	if sum != f.CRC {
		return nil, fmt.Errorf("%w: %s: checksum %s, want %s", ErrManifestCorrupt, path, f.CRC, sum)
	}
	m := NewManifest(path)
	for _, e := range f.Cells {
		var k CellKey
		k.Trace, err = strconv.ParseUint(e.Trace, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: bad trace key %q", ErrManifestCorrupt, path, e.Trace)
		}
		k.Config, err = strconv.ParseUint(e.Config, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: bad config key %q", ErrManifestCorrupt, path, e.Config)
		}
		m.cells[k] = e.Cell
	}
	return m, nil
}

// Len reports the number of checkpointed cells.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cells)
}

// Lookup returns the checkpoint for key, if one exists.
func (m *Manifest) Lookup(key CellKey) (CellOutcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.cells[key]
	return c, ok
}

// Complete records a finished cell and persists the whole manifest
// atomically. Serialized under the mutex: concurrent completions from
// pool workers each leave a complete file behind.
func (m *Manifest) Complete(key CellKey, cell CellOutcome) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cells[key] = cell
	return m.writeLocked()
}

// Flush persists the current state (a no-op beyond what complete already
// wrote, but gives shutdown paths an explicit sync point).
func (m *Manifest) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeLocked()
}

// cellsCRC checksums the marshaled cells — the integrity seal the loader
// verifies.
func cellsCRC(cells []manifestEntry) (string, error) {
	raw, err := json.Marshal(cells)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", crc64.Checksum(raw, cellCRCTable)), nil
}

// writeLocked marshals the manifest (cells sorted by key for a stable
// file) and renames it into place. Callers hold m.mu.
func (m *Manifest) writeLocked() error {
	entries := make([]manifestEntry, 0, len(m.cells))
	for k, c := range m.cells {
		entries = append(entries, manifestEntry{
			Trace:  fmt.Sprintf("%016x", k.Trace),
			Config: fmt.Sprintf("%016x", k.Config),
			Cell:   c,
		})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Trace != entries[j].Trace {
			return entries[i].Trace < entries[j].Trace
		}
		return entries[i].Config < entries[j].Config
	})
	sum, err := cellsCRC(entries)
	if err != nil {
		return fmt.Errorf("harness: marshaling manifest: %w", err)
	}
	raw, err := json.MarshalIndent(manifestFile{Version: manifestVersion, Cells: entries, CRC: sum}, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: marshaling manifest: %w", err)
	}
	raw = append(raw, '\n')
	// Atomic replace: write a sibling temp file, fsync-free (the manifest
	// is a cache — a lost update means re-running a cell, never a torn
	// read), then rename over the destination.
	tmp, err := os.CreateTemp(filepath.Dir(m.path), ".manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("harness: writing manifest: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: writing manifest: %w", werr)
	}
	if err := os.Rename(tmp.Name(), m.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: writing manifest: %w", err)
	}
	return nil
}
