package harness

import (
	"context"
	"errors"
	"fmt"
	"hash/crc64"
	"runtime/debug"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// The supervised execution runtime: every replay of every sweep can run
// under a Supervisor, which slices the replay's event budget (via the
// engine's byte-identical RunBudget resume), polls for cancellation and
// chaos between slices, contains panics to their cell, retries transient
// MemFault outcomes deterministically, and checkpoints completed cells in
// a Manifest so an interrupted sweep resumes to a byte-identical report.
// A nil Supervisor (the default everywhere) is the pre-supervision
// fast path: one undivided replay per cell, first error aborts the sweep.

// DefaultSlice is the per-slice event budget when Supervisor.Slice is
// zero: small enough that cancellation latency stays in the milliseconds
// on the paper's configurations, large enough that slice bookkeeping is
// noise next to event execution.
const DefaultSlice uint64 = 1 << 16

// CellKey identifies one sweep cell content-addressably: the digest of
// the recorded trace and the digest of the machine configuration (plus
// the supervisor's retry policy, which changes fault outcomes). Equal
// keys mean byte-identical replays, so a manifest entry under this key
// can stand in for re-running the cell.
type CellKey struct {
	Trace  uint64 // trace.Digest of the recorded stream
	Config uint64 // ConfigDigest of the machine.Config + retry policy
}

// String renders the key in the manifest's stable hex form.
func (k CellKey) String() string { return fmt.Sprintf("t%016x-c%016x", k.Trace, k.Config) }

// ReplayPanicError is a panic contained to its sweep cell: the panic
// value, the goroutine stack at the panic, and the cell's coordinates.
// The sweep continues; the cell renders as a marked row.
type ReplayPanicError struct {
	Cell  CellKey
	Label string // the cell's report label, when the sweep provided one
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() captured inside the recover
}

// Error implements error.
func (e *ReplayPanicError) Error() string {
	return fmt.Sprintf("harness: replay %s (cell %s) panicked: %v", e.Label, e.Cell, e.Value)
}

// CancelledError marks a cell abandoned by cancellation — a context
// deadline, a signal, or a chaos interrupt — between event-budget slices.
// Unwrap exposes the cause, so errors.Is(err, context.Canceled) works.
type CancelledError struct {
	Cell  CellKey
	Label string
	Cause error
}

// Error implements error.
func (e *CancelledError) Error() string {
	return fmt.Sprintf("harness: replay %s (cell %s) cancelled: %v", e.Label, e.Cell, e.Cause)
}

// Unwrap exposes the cancellation cause to errors.Is/As.
func (e *CancelledError) Unwrap() error { return e.Cause }

// Supervisor wraps sweep replays in the supervised runtime. The zero
// value is usable: no context, no manifest, no retries, default slice.
// One Supervisor may serve many sweeps in sequence; its methods are
// goroutine-safe with respect to the worker pool (cells run concurrently).
type Supervisor struct {
	// Ctx, when non-nil, is polled between event-budget slices: a
	// deadline or cancellation abandons the running cell with a
	// CancelledError and skips all cells not yet started.
	Ctx context.Context

	// Slice is the per-slice event budget; 0 means DefaultSlice.
	Slice uint64

	// Retries bounds deterministic re-replays of cells whose replay
	// completed with a transient MemFault outcome while fault injection
	// is active. Each retry reseeds the fault stream from
	// xrand.Mix(RetrySeed, trace, config, attempt) — no wall clock
	// anywhere in the decision, so retry outcomes are reproducible.
	Retries   int
	RetrySeed uint64

	// Manifest, when non-nil, checkpoints completed cells: lookups skip
	// replays already on disk, and every completed cell is written
	// through atomically. Cells with telemetry recorders attached never
	// use the manifest (their recorder must actually record).
	Manifest *Manifest

	// Cache, when non-nil, takes precedence over Manifest as the cell
	// checkpoint store — the serving layer plugs its in-memory result
	// cache in here. The same rules apply: equal keys stand in for
	// byte-identical replays, and telemetry cells bypass the cache.
	Cache CellCache

	// Records, when non-nil, memoizes Record() results for workloads run
	// under this supervisor, so many sweeps against the same (algorithm,
	// workload) share one recorded trace. Byte-neutral: equal workloads
	// record byte-identical traces, so a cached trace replays identically
	// to a re-recorded one.
	Records RecordCache

	// Interrupt, when non-nil, is polled between slices alongside Ctx —
	// the deterministic chaos hook. It must be goroutine-safe. A non-nil
	// return cancels like a context cancellation.
	Interrupt func() error

	// stop latches the first cancellation cause: once any cell observes
	// cancellation, every later poll fails fast without re-deriving it.
	stop atomic.Pointer[error]
}

// CellCache is a checkpoint store for completed sweep cells, keyed
// content-addressably by CellKey. Implementations must be goroutine-safe:
// pool workers look up and complete cells concurrently. *Manifest is the
// on-disk implementation; internal/serve provides an in-memory LRU.
type CellCache interface {
	// Lookup returns the stored outcome for key, if any.
	Lookup(key CellKey) (CellOutcome, bool)
	// Complete stores a finished cell's outcome. An error fails the cell
	// (a checkpoint that cannot persist must not be silently dropped).
	Complete(key CellKey, cell CellOutcome) error
}

// RecordCache memoizes Record() results. The key workload is normalized
// by the caller (replay-only knobs zeroed), so implementations may use it
// directly as a map key. Must be goroutine-safe.
type RecordCache interface {
	LookupRecord(alg Algorithm, w Workload) (RecordResult, bool)
	CompleteRecord(alg Algorithm, w Workload, res RecordResult)
}

// cache resolves the active cell checkpoint store: an explicit Cache wins,
// else the Manifest, else none.
func (sup *Supervisor) cache() CellCache {
	if sup.Cache != nil {
		return sup.Cache
	}
	if sup.Manifest != nil {
		return sup.Manifest
	}
	return nil
}

// interrupted reports the sticky cancellation state, latching the first
// cause it observes from the context or the chaos hook.
func (sup *Supervisor) interrupted() error {
	if p := sup.stop.Load(); p != nil {
		return *p
	}
	var cause error
	if sup.Ctx != nil {
		cause = sup.Ctx.Err()
	}
	if cause == nil && sup.Interrupt != nil {
		cause = sup.Interrupt()
	}
	if cause == nil {
		return nil
	}
	sup.stop.CompareAndSwap(nil, &cause)
	return *sup.stop.Load()
}

// ConfigDigest fingerprints a machine configuration for cell keying —
// the one keying function shared by the checkpoint manifest and the
// serving layer's result cache, so the two can never drift. Shards is
// zeroed because sharding is result-neutral by construction (a manifest
// written at -shards 4 must resume a -shards 0 run), and Telemetry is
// zeroed because a recorder pointer has no stable rendering (telemetry
// cells are excluded from cache use anyway). The retry policy is folded
// in because it changes fault outcomes.
var cellCRCTable = crc64.MakeTable(crc64.ECMA)

func ConfigDigest(cfg machine.Config, retries int, retrySeed uint64) uint64 {
	cfg.Shards = 0
	cfg.Telemetry = nil
	return crc64.Checksum(
		[]byte(fmt.Sprintf("%+v|retries=%d|retryseed=%d", cfg, retries, retrySeed)),
		cellCRCTable)
}

// cellKeys derives every job's CellKey. Trace digests are memoized on the
// trace itself (sweeps share one recorded trace across many cells), so
// this is cheap after the first digest. Runs on the sweep goroutine
// before the fan-out.
func (sup *Supervisor) cellKeys(jobs []replayJob) ([]CellKey, error) {
	keys := make([]CellKey, len(jobs))
	for i, j := range jobs {
		td, err := j.tr.Digest()
		if err != nil {
			return nil, fmt.Errorf("harness: digesting trace for cell %d: %w", i, err)
		}
		keys[i] = CellKey{Trace: td, Config: ConfigDigest(j.cfg, sup.Retries, sup.RetrySeed)}
	}
	return keys, nil
}

// ReplayCell runs one supervised cell by itself — the serving layer's
// entry point into the supervised runtime. It derives the cell's key,
// then executes the full runCell path: cache lookup, sliced replay with
// panic containment, deterministic MemFault retries, checkpoint write.
// The returned outcome is valid whenever err is nil.
func (sup *Supervisor) ReplayCell(cfg machine.Config, tr trace.Source, label string) (CellKey, CellOutcome, error) {
	td, err := tr.Digest()
	if err != nil {
		return CellKey{}, CellOutcome{}, fmt.Errorf("harness: digesting trace: %w", err)
	}
	key := CellKey{Trace: td, Config: ConfigDigest(cfg, sup.Retries, sup.RetrySeed)}
	out := sup.runCell(replayJob{cfg: cfg, tr: tr, label: label}, key)
	if out.err != nil {
		return key, CellOutcome{}, out.err
	}
	return key, CellOutcome{MemFault: out.memFault, Attempts: out.attempts, Result: out.res}, nil
}

// runCell executes one supervised cell end to end: manifest lookup,
// sliced replay with panic containment, deterministic MemFault retries,
// and the checkpoint write. Called concurrently from pool workers.
func (sup *Supervisor) runCell(j replayJob, key CellKey) replayOut {
	cache := sup.cache()
	useCache := cache != nil && j.cfg.Telemetry == nil
	if useCache {
		if c, ok := cache.Lookup(key); ok {
			return replayOut{res: c.Result, memFault: c.MemFault, attempts: c.Attempts}
		}
	}
	if err := sup.interrupted(); err != nil {
		return replayOut{err: &CancelledError{Cell: key, Label: j.label, Cause: err}}
	}
	out := sup.attempt(j, key)
	attempts := 1
	var mf *fault.MemFaultError
	for errors.As(out.err, &mf) && attempts <= sup.Retries {
		// The outcome is valid data but the simulated program read
		// uncorrected bits — the transient class worth re-running. Reseed
		// the fault stream deterministically and replay the cell.
		rj := j
		rj.cfg.Fault.Seed = xrand.Mix(sup.RetrySeed, key.Trace, key.Config, uint64(attempts))
		out = sup.attempt(rj, key)
		attempts++
	}
	if errors.As(out.err, &mf) {
		// Retries exhausted (or disabled): tolerate the MemFault outcome
		// as data, exactly like the unsupervised runTolerant path.
		out.memFault = true
		out.err = nil
	}
	out.attempts = attempts
	if out.err == nil && useCache {
		if err := cache.Complete(key, CellOutcome{
			MemFault: out.memFault, Attempts: attempts, Result: out.res,
		}); err != nil {
			out.err = err
		}
	}
	return out
}

// attempt runs one sliced replay with panic containment. The machine is
// built inside the recover scope, so a config that fails validation (New
// panics) becomes a ReplayPanicError for its cell instead of killing the
// sweep.
func (sup *Supervisor) attempt(j replayJob, key CellKey) (out replayOut) {
	defer func() {
		if r := recover(); r != nil {
			out = replayOut{err: &ReplayPanicError{
				Cell: key, Label: j.label, Value: r, Stack: debug.Stack(),
			}}
		}
	}()
	slice := sup.Slice
	if slice == 0 {
		slice = DefaultSlice
	}
	pause := func() error {
		if err := sup.interrupted(); err != nil {
			return &CancelledError{Cell: key, Label: j.label, Cause: err}
		}
		return nil
	}
	res, err := machine.New(j.cfg).ReplaySliced(j.tr, slice, pause)
	return replayOut{res: res, err: err}
}

// FailKind classifies a supervised cell's terminal error for report
// marking: "" (success), "panic", "cancelled", "budget", "stall", or
// "error" for anything else. Every class is errors.As-reachable through
// the wrap chain, pinned by the error-taxonomy test.
func FailKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.As(err, new(*ReplayPanicError)):
		return "panic"
	case errors.As(err, new(*CancelledError)):
		return "cancelled"
	case errors.As(err, new(*engine.BudgetError)):
		return "budget"
	case errors.As(err, new(*engine.StallError)):
		return "stall"
	default:
		return "error"
	}
}
