// Package harness drives the paper's experiments end to end: it records an
// algorithm's trace once (native execution + instrumentation, the Ariel
// role), replays it on simulated nodes with varying near-memory bandwidth
// and core counts (the SST role), and formats the results as the paper's
// Table I and the sweeps behind the Section V claims.
package harness

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/noc"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// The harness simulates a cache hierarchy scaled down 8x from Figure 4
// (2KiB L1, 32KiB L2 per quad-core group) together with a scaled workload,
// preserving the ratios that drive the paper's effects: a per-thread run
// exceeds its L2 share (so the baseline's run formation spills to far
// memory) and an NMsort chunk exceeds the aggregate L2 (so in-scratchpad
// sorting really exercises the near-memory channels). EXPERIMENTS.md
// documents the scaling argument.
var (
	// ScaledL1 is the record-time private cache.
	ScaledL1 = trace.L1Geometry{Capacity: 2 * units.KiB, LineSize: 64, Ways: 2}
	// ScaledL2 is the replay-time shared cache per quad-core group.
	ScaledL2 units.Bytes = 32 * units.KiB
)

// Algorithm selects which sort to record.
type Algorithm string

// The algorithms under study.
const (
	AlgGNUSort   Algorithm = "gnusort"        // baseline: far-memory-only parallel multiway mergesort
	AlgNMSort    Algorithm = "nmsort"         // the paper's near-memory sort
	AlgNMSortDM  Algorithm = "nmsort-dma"     // NMsort with §VII DMA engines
	AlgNMScatter Algorithm = "nmsort-scatter" // ablation A1: per-bucket small appends, no metadata batching
	AlgParSort   Algorithm = "parsort"        // the Theorem 10 recursive parallel scratchpad sort
	AlgGNUExact  Algorithm = "gnusort-exact"  // baseline with exact multisequence splitting
)

// Workload describes one sorting experiment.
type Workload struct {
	N       int           // keys to sort
	Seed    uint64        // input generation seed
	Threads int           // logical threads (= simulated cores used)
	SP      units.Bytes   // scratchpad capacity M
	Buckets int           // NMsort bucket count override (0 = automatic)
	Dist    workload.Dist // key distribution ("" = uniform, the paper's)

	// MaxEvents bounds each replay's event count (the engine's
	// runaway-schedule guard); 0 means machine.DefaultEventBudget.
	MaxEvents uint64

	// Par is the replay worker count for sweeps: independent sweep points
	// replay concurrently on up to Par workers, each writing its result into
	// its pre-assigned slot, so output stays byte-identical at any value.
	// 0 means GOMAXPROCS; 1 forces sequential replay.
	Par int

	// Shards selects the intra-replay parallel engine for every replay the
	// workload drives (machine.Config.Shards): 0 keeps the sequential
	// engine, a positive count shards each replay's event queue, negative
	// picks min(groups, GOMAXPROCS). Orthogonal to Par — Par spreads sweep
	// points across replays, Shards parallelizes inside each one — and,
	// like Par, byte-neutral: results are identical at any value.
	Shards int

	// Sup, when non-nil, runs every replay under the supervised runtime:
	// sliced event budgets with cancellation polling, panic containment
	// (failed cells become marked report rows instead of aborting the
	// sweep), deterministic MemFault retries, and manifest checkpointing.
	// Nil keeps the historical fail-fast behavior, byte for byte.
	Sup *Supervisor
}

// DefaultWorkload returns the scaled Table I workload: the paper sorts 10M
// keys on 256 cores with a multi-hundred-MB scratchpad; we preserve the
// ratios (several chunks per input, runs exceeding the per-thread L2
// share) at a size a discrete-event simulation sweeps in seconds.
func DefaultWorkload() Workload {
	return Workload{N: 1 << 21, Seed: 2015, Threads: 256, SP: 8 * units.MiB}
}

// RecordResult is one recorded algorithm run.
type RecordResult struct {
	Trace   *trace.Trace
	Sorted  bool
	NMStats core.NMStats // meaningful for the NMsort algorithms
	Counts  trace.LevelCounts
}

// RecordKey normalizes a workload for Record memoization: only the fields
// that shape the recorded trace remain. Replay-only knobs (MaxEvents, Par,
// Shards, the supervisor pointer) are zeroed — they change how a trace is
// replayed, never what gets recorded.
func RecordKey(w Workload) Workload {
	w.MaxEvents = 0
	w.Par = 0
	w.Shards = 0
	w.Sup = nil
	return w
}

// Record executes the algorithm natively under instrumentation and returns
// its trace. The input is regenerated deterministically from the workload
// seed, so equal workloads yield byte-identical traces. When the
// workload's supervisor carries a RecordCache, equal (algorithm, RecordKey)
// pairs share one recorded trace across sweeps — byte-neutral, since a
// re-recording would be identical.
func Record(alg Algorithm, w Workload) (RecordResult, error) {
	if w.N < 0 || w.Threads <= 0 || w.SP <= 0 {
		return RecordResult{}, fmt.Errorf("harness: bad workload %+v", w)
	}
	var records RecordCache
	if w.Sup != nil && w.Sup.Records != nil {
		records = w.Sup.Records
		if res, ok := records.LookupRecord(alg, RecordKey(w)); ok {
			return res, nil
		}
	}
	// Pre-size each per-thread op buffer: a sort touches every key a small
	// constant number of times post-L1-filter, so ~3 ops per owned key plus
	// slack for phase markers and barriers absorbs nearly all growth
	// reallocations during recording without overshooting small workloads.
	rec := trace.NewRecorderCfg(trace.RecorderConfig{
		Threads:  w.Threads,
		L1:       ScaledL1,
		Costs:    trace.DefaultCosts(),
		SizeHint: 3*w.N/w.Threads + 64,
	})
	env := core.NewEnv(w.Threads, w.SP, rec, w.Seed)
	a := env.AllocFar(w.N)
	dist := w.Dist
	if dist == "" {
		dist = workload.Uniform
	}
	workload.Fill(a.D, dist, w.Seed^0xDA7A)
	sum := core.Checksum(a.D)

	var res RecordResult
	switch alg {
	case AlgGNUSort:
		core.GNUSort(env, a)
	case AlgNMSort:
		res.NMStats = core.NMSort(env, a, core.NMOptions{Buckets: w.Buckets})
	case AlgNMSortDM:
		res.NMStats = core.NMSort(env, a, core.NMOptions{Buckets: w.Buckets, DMA: true})
	case AlgNMScatter:
		res.NMStats = core.NMSortSmallAppends(env, a, core.NMOptions{Buckets: w.Buckets})
	case AlgParSort:
		core.ParScratchpadSort(env, a, core.SeqOptions{})
	case AlgGNUExact:
		core.GNUSortOpt(env, a, core.GNUOptions{Exact: true})
	default:
		return RecordResult{}, fmt.Errorf("harness: unknown algorithm %q", alg)
	}

	res.Sorted = core.IsSorted(a.D) && core.Checksum(a.D) == sum
	if !res.Sorted {
		return res, fmt.Errorf("harness: %s corrupted its input", alg)
	}
	res.Trace = rec.Finish()
	if err := res.Trace.Validate(); err != nil {
		return res, fmt.Errorf("harness: invalid trace: %w", err)
	}
	res.Counts = res.Trace.Count()
	if records != nil {
		records.CompleteRecord(alg, RecordKey(w), res)
	}
	return res, nil
}

// NodeFor builds the simulated node: the Figure 4 machine with the given
// core count (a multiple of 4) and near-memory channel count (8/16/32 for
// 2X/4X/8X), scratchpad capacity to match the workload, and DMA engines
// enabled iff the recorded algorithm issued DMA descriptors.
func NodeFor(cores, nearChannels int, sp units.Bytes) machine.Config {
	cfg := machine.PaperConfig(nearChannels, sp)
	cfg.Cores = cores
	cfg.L2Capacity = ScaledL2
	cfg.NoC = noc.Paper(cores / cfg.CoresPerGroup)
	return cfg
}

// Row is one line of a Table-I-style report.
type Row struct {
	Name    string
	Rho     float64 // near/far bandwidth expansion (0 for the baseline's n/a)
	Result  machine.Result
	RelTime float64 // time relative to the first (baseline) row

	// Fail is the supervised failure kind ("panic", "cancelled", ...) when
	// this row's replay did not complete; empty on success. Failed rows
	// keep their place in the table with a marked name.
	Fail string
}

// Table is a Table-I-style report.
type Table struct {
	Title string
	Rows  []Row
}

// Failed counts rows whose supervised replay did not complete.
func (t Table) Failed() int {
	n := 0
	for _, r := range t.Rows {
		if r.Fail != "" {
			n++
		}
	}
	return n
}

// Table1 reproduces the paper's Table I on the given workload: the GNU
// baseline plus NMsort under 2X, 4X, and 8X near-memory bandwidth, all on
// nodes with w.Threads cores. Traces are recorded once per algorithm and
// replayed per configuration, exactly as the paper replays one binary
// against varying memory systems.
func Table1(w Workload, dma bool) (Table, error) {
	return Table1Faults(w, dma, fault.Config{})
}

// Table1Faults is Table1 under an injected fault environment: every node
// carries fc, so the table shows how the co-design comparison shifts when
// the memory system is imperfect. A zero (or Seed == 0) config is
// bit-identical to Table1. Replays ending in a MemFault outcome keep their
// row — the timing is valid, the simulated program's output is not — and
// are marked with a trailing "!".
func Table1Faults(w Workload, dma bool, fc fault.Config) (Table, error) {
	t := Table{Title: fmt.Sprintf("SST-style simulation, N=%d keys, %d cores", w.N, w.Threads)}

	gnu, err := Record(AlgGNUSort, w)
	if err != nil {
		return t, err
	}
	alg := AlgNMSort
	if dma {
		alg = AlgNMSortDM
	}
	nm, err := Record(alg, w)
	if err != nil {
		return t, err
	}

	// Replays pool in row order: the baseline on the 2X node (it never
	// touches near memory, so its result is identical on any near
	// configuration), then NMsort at 2X/4X/8X — all sharing the two
	// recorded traces read-only.
	channels := []int{8, 8, 16, 32}
	traces := []*trace.Trace{gnu.Trace, nm.Trace, nm.Trace, nm.Trace}
	labels := []string{"GNU Sort", "NMsort (2X)", "NMsort (4X)", "NMsort (8X)"}
	jobs := make([]replayJob, len(channels))
	for i, ch := range channels {
		cfg := NodeFor(w.Threads, ch, w.SP)
		cfg.Fault = fc
		cfg.MaxEvents = w.MaxEvents
		cfg.Shards = w.Shards
		jobs[i] = replayJob{cfg: cfg, tr: traces[i], label: labels[i]}
	}
	outs := runReplays(w.Sup, replayPar(w.Par, len(jobs)), jobs)
	if w.Sup == nil {
		// Unsupervised: the historical fail-fast contract.
		for _, o := range outs {
			if o.err != nil {
				return t, o.err
			}
		}
	}
	baseTime := outs[0].res.SimTime.Seconds()
	for i, o := range outs {
		r := Row{
			Name:   report.FailMark(mark(labels[i], o.memFault), FailKind(o.err)),
			Fail:   FailKind(o.err),
			Result: o.res,
		}
		if i > 0 {
			r.Rho = jobs[i].cfg.BandwidthExpansion()
		}
		switch {
		case i == 0:
			r.RelTime = 1
		case baseTime > 0:
			r.RelTime = o.res.SimTime.Seconds() / baseTime
		}
		t.Rows = append(t.Rows, r)
	}
	return t, nil
}

// runTolerant replays tr on cfg, treating a MemFault outcome as data (the
// result is complete and correctly timed; the simulated output is
// poisoned) and every other error — stalls, budget exhaustion — as fatal.
func runTolerant(cfg machine.Config, tr trace.Source) (machine.Result, bool, error) {
	res, err := machine.Run(cfg, tr)
	var mf *fault.MemFaultError
	if errors.As(err, &mf) {
		return res, true, nil
	}
	return res, false, err
}

// mark appends the MemFault marker to a row name.
func mark(name string, faulted bool) string {
	if faulted {
		return name + " !"
	}
	return name
}

// Report converts the table into a renderable grid (text/CSV/markdown):
// one row per algorithm configuration, the transposed layout that suits
// CSV consumers better than the paper's row-per-metric layout.
func (t Table) Report() *report.Table {
	rt := report.New(t.Title, "config", "rho", "sim_time", "scratchpad_acc", "dram_acc", "rel_time",
		"corrected", "retries", "mem_faults")
	for _, r := range t.Rows {
		rho := "-"
		if r.Rho > 0 {
			rho = fmt.Sprintf("%g", r.Rho)
		}
		f := r.Result.Faults
		rt.AddRowf(r.Name, rho, r.Result.SimTime.String(),
			r.Result.NearAccesses, r.Result.FarAccesses,
			fmt.Sprintf("%.3f", r.RelTime),
			f.FarCorrected, f.FarRetries, f.MemFaults)
	}
	return rt
}

// String renders the table in the layout of the paper's Table I.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-22s", "")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%16s", r.Name)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "%-22s", "Sim Time")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%16s", r.Result.SimTime)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "%-22s", "Scratchpad Accesses")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%16d", r.Result.NearAccesses)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "%-22s", "DRAM Accesses")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%16d", r.Result.FarAccesses)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "%-22s", "Relative Time")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%15.3fx", r.RelTime)
	}
	b.WriteByte('\n')
	return b.String()
}

// ModelFor translates a workload plus node description into the
// algorithmic model's parameters (Section II), for predicted-vs-measured
// comparisons.
func ModelFor(w Workload, cfg machine.Config) model.Params {
	return model.Params{
		N:      int64(w.N),
		Elem:   8,
		B:      cfg.LineSize,
		Rho:    cfg.BandwidthExpansion(),
		M:      w.SP,
		Z:      cfg.L2Capacity * units.Bytes(cfg.Cores/cfg.CoresPerGroup),
		P:      cfg.Cores,
		PPrime: cfg.Cores,
	}
}
