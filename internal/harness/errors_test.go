package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/trace"
)

// TestErrorTaxonomy audits the failure vocabulary end to end: every error
// class the harness and the commands branch on must stay reachable through
// errors.Is / errors.As even when wrapped — callers classify with the
// taxonomy, never by string matching, so a silent wrap change would break
// retry, resume, and exit-code decisions without failing any other test.
func TestErrorTaxonomy(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", err)) }

	cancelled := &CancelledError{Cell: CellKey{Trace: 1}, Label: "c", Cause: context.Canceled}
	cases := []struct {
		name string
		err  error
		as   func(error) bool
		kind string // FailKind through the same wrap chain
	}{
		{
			name: "replay panic",
			err:  &ReplayPanicError{Cell: CellKey{Trace: 1, Config: 2}, Value: "boom"},
			as:   func(e error) bool { return errors.As(e, new(*ReplayPanicError)) },
			kind: "panic",
		},
		{
			name: "cancelled",
			err:  cancelled,
			as:   func(e error) bool { return errors.As(e, new(*CancelledError)) },
			kind: "cancelled",
		},
		{
			name: "budget",
			err:  &engine.BudgetError{MaxEvents: 10, LastEventAt: 5, Pending: 3},
			as:   func(e error) bool { return errors.As(e, new(*engine.BudgetError)) },
			kind: "budget",
		},
		{
			name: "stall",
			err:  &engine.StallError{Now: 7},
			as:   func(e error) bool { return errors.As(e, new(*engine.StallError)) },
			kind: "stall",
		},
		{
			name: "mem fault",
			err:  &fault.MemFaultError{Count: 1},
			as:   func(e error) bool { return errors.As(e, new(*fault.MemFaultError)) },
			kind: "error",
		},
		{
			name: "manifest corrupt",
			err:  fmt.Errorf("%w: details", ErrManifestCorrupt),
			as:   func(e error) bool { return errors.Is(e, ErrManifestCorrupt) },
			kind: "error",
		},
		{
			name: "trace decode",
			err:  &trace.DecodeError{Section: "header", Offset: 4, Err: errors.New("bad")},
			as:   func(e error) bool { return errors.As(e, new(*trace.DecodeError)) },
			kind: "error",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !c.as(c.err) {
				t.Error("not reachable unwrapped")
			}
			if !c.as(wrap(c.err)) {
				t.Error("not reachable through a double wrap")
			}
			if got := FailKind(wrap(c.err)); got != c.kind {
				t.Errorf("FailKind = %q, want %q", got, c.kind)
			}
		})
	}

	// Cross-type leakage: errors.As must not confuse the classes.
	if errors.As(wrap(cancelled), new(*ReplayPanicError)) {
		t.Error("CancelledError matched ReplayPanicError")
	}
	// CancelledError unwraps to its cause for errors.Is.
	if !errors.Is(wrap(cancelled), context.Canceled) {
		t.Error("CancelledError cause unreachable via errors.Is")
	}
	if FailKind(nil) != "" {
		t.Errorf("FailKind(nil) = %q, want empty", FailKind(nil))
	}
}

// TestErrorTaxonomyLive drives two classes through their real production
// paths — an actual starved replay and an actual torn trace file — so the
// taxonomy test cannot rot into checking only hand-built values.
func TestErrorTaxonomyLive(t *testing.T) {
	w := tinyWorkload()
	rec, err := Record(AlgGNUSort, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NodeFor(w.Threads, 8, w.SP)
	cfg.MaxEvents = 99
	_, rerr := machine.Run(cfg, rec.Trace)
	var be *engine.BudgetError
	if !errors.As(rerr, &be) || be.MaxEvents != 99 {
		t.Errorf("starved replay error = %v, want BudgetError{MaxEvents: 99}", rerr)
	}

	var buf bytes.Buffer
	if _, err := rec.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	_, derr := trace.ReadTrace(bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
	var de *trace.DecodeError
	if !errors.As(derr, &de) {
		t.Fatalf("torn trace error = %v, want DecodeError", derr)
	}
	if de.Section == "" || de.Offset < 0 {
		t.Errorf("DecodeError missing coordinates: %+v", de)
	}
}
