package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kmeans"
	"repro/internal/trace"
	"repro/internal/units"
)

// KMeansWorkload describes one clustering experiment (the §VII extension).
type KMeansWorkload struct {
	Points int
	Dims   int
	K      int
	Iters  int
	Seed   uint64
	Th     int         // logical threads
	SP     units.Bytes // scratchpad capacity

	// Par is the replay worker count (like Workload.Par): 0 means
	// GOMAXPROCS, 1 forces sequential replay; byte-identical at any value.
	Par int

	// Sup, when non-nil, supervises every replay (like Workload.Sup).
	Sup *Supervisor
}

// DefaultKMeans returns a clustering workload whose point set fits the
// scratchpad — the "many sizes of data and k" regime of §VII — with a
// small enough k·d that the assignment step is memory-bandwidth bound on
// a 256-core node (distance arithmetic is a few dozen cycles per point
// while every iteration streams the whole point set).
func DefaultKMeans() KMeansWorkload {
	// 2^18 points x 4 dims x 8B = 8MiB: larger than the 256-core node's
	// 2MiB aggregate L2 (so iterations stream from memory), smaller than
	// the 12MiB scratchpad (so pinning is possible).
	return KMeansWorkload{Points: 1 << 18, Dims: 4, K: 4, Iters: 6, Seed: 31, Th: 256, SP: 12 * units.MiB}
}

// RecordKMeans records one k-means run (scratchpad-pinned or far-only)
// and returns its trace.
func RecordKMeans(w KMeansWorkload, scratch bool) (*trace.Trace, kmeans.Result, error) {
	rec := trace.NewRecorder(w.Th, ScaledL1, trace.DefaultCosts())
	env := core.NewEnv(w.Th, w.SP, rec, w.Seed)
	pts := kmeans.Points{V: env.AllocFar(w.Points * w.Dims), Dims: w.Dims}
	kmeans.GenerateClustered(pts, w.K, w.Seed)
	cfg := kmeans.DefaultConfig(w.K, w.Dims)
	cfg.MaxIters = w.Iters
	cfg.Tol = 0 // fixed iteration count: identical work across variants
	var res kmeans.Result
	if scratch {
		res = kmeans.Scratchpad(env, pts, cfg)
	} else {
		res = kmeans.Far(env, pts, cfg)
	}
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		return nil, res, fmt.Errorf("harness: kmeans trace invalid: %w", err)
	}
	return tr, res, nil
}

// KMeansSweep reproduces experiment K1 on the full simulator: the far-only
// baseline and the scratchpad-pinned variant replayed at 2X/4X/8X near
// bandwidth. The paper's claim — "all our k-means algorithms run a factor
// of ρ faster using scratchpad" — shows as the scratchpad variant's time
// falling with ρ while the baseline stays flat.
func KMeansSweep(w KMeansWorkload) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("k-means sweep, %d points x %d dims, k=%d, %d iterations, %d cores",
		w.Points, w.Dims, w.K, w.Iters, w.Th)}

	farTr, _, err := RecordKMeans(w, false)
	if err != nil {
		return s, err
	}
	spTr, _, err := RecordKMeans(w, true)
	if err != nil {
		return s, err
	}
	var jobs []replayJob
	var points []SweepPoint
	for _, ch := range []int{8, 16, 32} {
		for _, v := range []struct {
			name string
			tr   *trace.Trace
		}{{"kmeans-far", farTr}, {"kmeans-sp", spTr}} {
			cfg := NodeFor(w.Th, ch, w.SP)
			jobs = append(jobs, replayJob{cfg: cfg, tr: v.tr})
			points = append(points, SweepPoint{
				Label: fmt.Sprintf("%s@%dX", v.name, ch/4), Cores: w.Th,
				Rho: cfg.BandwidthExpansion(),
			})
		}
	}
	return s.collect(w.Sup, replayPar(w.Par, len(jobs)), jobs, points)
}
