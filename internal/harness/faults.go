package harness

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/report"
)

// FaultPoint is one (algorithm, fault rate) cell of a fault sweep.
type FaultPoint struct {
	Label    string
	Rate     float64 // far-memory bit error rate (the sweep axis)
	Result   machine.Result
	Slowdown float64 // sim time over the same algorithm's fault-free run
	MemFault bool    // the replay returned uncorrected data
}

// FaultSweep is the robustness experiment the perfect-memory harness could
// not ask: how the co-design claims degrade as the far memory's error rate
// rises — slowdown from ECC corrections, controller retries, degraded near
// channels, and NoC retransmissions, and the rate at which replays start
// returning uncorrected data (MemFaults).
type FaultSweep struct {
	Title  string
	Points []FaultPoint
}

// FaultRates is the default sweep axis: per-read transient error rates
// from a healthy part to one on its way out.
var FaultRates = []float64{1e-5, 1e-4, 1e-3, 1e-2}

// RunFaultSweep records NMsort and the merge baseline once each, then
// replays both under the fault environment fault.Profile(seed, rate) for
// every rate, on nodes with the given near-memory channel count. A rate of
// zero (always included as the first point per algorithm) anchors the
// slowdown column. Replays that end in a MemFault outcome are reported as
// data, not failures.
func RunFaultSweep(w Workload, nearChannels int, seed uint64, rates []float64) (FaultSweep, error) {
	s := FaultSweep{Title: fmt.Sprintf(
		"Fault sweep, N=%d keys, %d cores, %dX near bandwidth, fault seed %d",
		w.N, w.Threads, nearChannels/4, seed)}
	if len(rates) == 0 {
		rates = FaultRates
	}

	for _, alg := range []Algorithm{AlgGNUSort, AlgNMSort} {
		rec, err := Record(alg, w)
		if err != nil {
			return s, err
		}
		var base float64
		for _, rate := range append([]float64{0}, rates...) {
			cfg := NodeFor(w.Threads, nearChannels, w.SP)
			cfg.MaxEvents = w.MaxEvents
			if rate > 0 {
				cfg.Fault = fault.Profile(seed, rate)
			}
			res, err := machine.Run(cfg, rec.Trace)
			var mf *fault.MemFaultError
			memFault := errors.As(err, &mf)
			if err != nil && !memFault {
				return s, err
			}
			if rate == 0 {
				base = res.SimTime.Seconds()
			}
			s.Points = append(s.Points, FaultPoint{
				Label:    string(alg),
				Rate:     rate,
				Result:   res,
				Slowdown: res.SimTime.Seconds() / base,
				MemFault: memFault,
			})
		}
	}
	return s, nil
}

// Report converts the sweep into a renderable table (text/CSV/markdown).
func (s FaultSweep) Report() *report.Table {
	t := report.New(s.Title, "config", "rate", "sim_time", "slowdown",
		"corrected", "retries", "mem_faults", "degraded", "retrans")
	for _, p := range s.Points {
		f := p.Result.Faults
		t.AddRowf(p.Label, fmt.Sprintf("%.0e", p.Rate), p.Result.SimTime.String(),
			fmt.Sprintf("%.3f", p.Slowdown),
			f.FarCorrected, f.FarRetries, f.MemFaults, f.NearDegraded, f.NoCRetransmits)
	}
	return t
}

// String renders the sweep as an aligned series.
func (s FaultSweep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-16s %8s %14s %9s %10s %8s %10s %9s %8s\n",
		"config", "rate", "sim time", "slowdown", "corrected", "retries", "mem faults", "degraded", "retrans")
	for _, p := range s.Points {
		f := p.Result.Faults
		fmt.Fprintf(&b, "%-16s %8.0e %14s %8.3fx %10d %8d %10d %9d %8d\n",
			p.Label, p.Rate, p.Result.SimTime, p.Slowdown,
			f.FarCorrected, f.FarRetries, f.MemFaults, f.NearDegraded, f.NoCRetransmits)
	}
	return b.String()
}
