package harness

import (
	"fmt"

	"repro/internal/fault"
)

// FaultRates is the default fault-sweep axis: per-read transient error rates
// from a healthy part to one on its way out.
var FaultRates = []float64{1e-5, 1e-4, 1e-3, 1e-2}

// RunFaultSweep is the robustness experiment the perfect-memory harness
// could not ask: how the co-design claims degrade as the far memory's error
// rate rises — slowdown from ECC corrections, controller retries, degraded
// near channels, and NoC retransmissions, and the rate at which replays
// start returning uncorrected data (MemFaults).
//
// It records NMsort and the merge baseline once each, then replays both
// under the fault environment fault.Profile(seed, rate) for every rate, on
// nodes with the given near-memory channel count. A rate of zero (always
// included as the first point per algorithm) anchors the slowdown column.
// Replays that end in a MemFault outcome are reported as data, not
// failures. The result is an ordinary Sweep with the fault axis switched
// on, so fault and plain sweeps render through the same table path.
func RunFaultSweep(w Workload, nearChannels int, seed uint64, rates []float64) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf(
		"Fault sweep, N=%d keys, %d cores, %dX near bandwidth, fault seed %d",
		w.N, w.Threads, nearChannels/4, seed),
		FaultAxis: true}
	if len(rates) == 0 {
		rates = FaultRates
	}

	// Record each algorithm once, then pool every (algorithm, rate) replay.
	// The rate-0 anchor leads each algorithm's job run; slowdowns are
	// computed after the pool drains, from the anchor's slot.
	axis := append([]float64{0}, rates...)
	var jobs []replayJob
	var points []SweepPoint
	for _, alg := range []Algorithm{AlgGNUSort, AlgNMSort} {
		rec, err := Record(alg, w)
		if err != nil {
			return s, err
		}
		for _, rate := range axis {
			cfg := NodeFor(w.Threads, nearChannels, w.SP)
			cfg.MaxEvents = w.MaxEvents
			cfg.Shards = w.Shards
			if rate > 0 {
				cfg.Fault = fault.Profile(seed, rate)
			}
			jobs = append(jobs, replayJob{cfg: cfg, tr: rec.Trace})
			points = append(points, SweepPoint{
				Label: string(alg),
				Cores: w.Threads,
				Rho:   float64(nearChannels) / 4,
				Rate:  rate,
			})
		}
	}
	s, err := s.collect(w.Sup, replayPar(w.Par, len(jobs)), jobs, points)
	if err != nil {
		return s, err
	}
	var base float64
	for i := range s.Points {
		if s.Points[i].Rate == 0 {
			base = s.Points[i].Result.SimTime.Seconds()
		}
		if base > 0 {
			// A supervised sweep can carry a failed anchor (base 0, from a
			// panicking or cancelled cell); its Slowdown column stays 0
			// instead of dividing by zero.
			s.Points[i].Slowdown = s.Points[i].Result.SimTime.Seconds() / base
		}
	}
	return s, nil
}
