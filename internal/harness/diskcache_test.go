package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestDiskRecordCacheRoundTrip pins byte-neutrality of the on-disk record
// cache: a completion followed by a lookup returns a trace with the same
// digest as the fresh recording, persisted as a columnar .nmt3 file.
func TestDiskRecordCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rc, err := NewDiskRecordCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{N: 1 << 10, Seed: 3, Threads: 4, SP: 64 * units.KiB}

	if _, ok := rc.LookupRecord(AlgNMSort, RecordKey(w)); ok {
		t.Fatal("empty cache reported a hit")
	}
	fresh, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	rc.CompleteRecord(AlgNMSort, RecordKey(w), fresh)

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !strings.HasSuffix(ents[0].Name(), ".nmt3") {
		t.Fatalf("cache dir contents: %v, want one .nmt3 file", ents)
	}

	got, ok := rc.LookupRecord(AlgNMSort, RecordKey(w))
	if !ok {
		t.Fatal("completed record not found")
	}
	if !got.Sorted || got.Counts != fresh.Counts {
		t.Fatalf("cached result mismatch: %+v vs %+v", got.Counts, fresh.Counts)
	}
	wantD, err := fresh.Trace.Digest()
	if err != nil {
		t.Fatal(err)
	}
	gotD, err := got.Trace.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if gotD != wantD {
		t.Fatalf("cached trace digest %016x != fresh %016x", gotD, wantD)
	}

	// A different workload is a separate key.
	w2 := w
	w2.Seed = 4
	if _, ok := rc.LookupRecord(AlgNMSort, RecordKey(w2)); ok {
		t.Fatal("different workload hit the same cache entry")
	}
}

// TestDiskRecordCacheCorruptIsMiss: a truncated cache file must read as a
// miss, not an error — the caller re-records and overwrites.
func TestDiskRecordCacheCorruptIsMiss(t *testing.T) {
	dir := t.TempDir()
	rc, err := NewDiskRecordCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{N: 1 << 9, Seed: 5, Threads: 2, SP: 64 * units.KiB}
	fresh, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	rc.CompleteRecord(AlgNMSort, RecordKey(w), fresh)

	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("cache dir contents: %v", ents)
	}
	path := filepath.Join(dir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := rc.LookupRecord(AlgNMSort, RecordKey(w)); ok {
		t.Fatal("truncated cache file reported a hit")
	}
}

// TestRecordUsesDiskCache wires the cache through a Supervisor the way
// -trace-cache does and checks Record itself takes the hit path.
func TestRecordUsesDiskCache(t *testing.T) {
	rc, err := NewDiskRecordCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sup := &Supervisor{Records: rc}
	w := Workload{N: 1 << 10, Seed: 7, Threads: 4, SP: 64 * units.KiB, Sup: sup}

	first, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := first.Trace.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := second.Trace.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("disk-cached recording digest %016x != fresh %016x", d2, d1)
	}
}
