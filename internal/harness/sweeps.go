package harness

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/report"
)

// SweepPoint is one (configuration, result) pair of a sweep.
type SweepPoint struct {
	Label  string
	Cores  int
	Rho    float64
	Result machine.Result
}

// Sweep is a labelled series of simulation results.
type Sweep struct {
	Title  string
	Points []SweepPoint
}

// Report converts the sweep into a renderable table (text/CSV/markdown).
func (s Sweep) Report() *report.Table {
	t := report.New(s.Title, "config", "cores", "rho", "sim_time", "near_acc", "far_acc", "far_util", "near_util")
	for _, p := range s.Points {
		t.AddRowf(p.Label, p.Cores, p.Rho, p.Result.SimTime.String(),
			p.Result.NearAccesses, p.Result.FarAccesses,
			fmt.Sprintf("%.3f", p.Result.FarUtilization),
			fmt.Sprintf("%.3f", p.Result.NearUtilization))
	}
	return t
}

// String renders the sweep as an aligned series.
func (s Sweep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-24s %8s %6s %14s %14s %14s %8s %8s\n",
		"config", "cores", "rho", "sim time", "near acc", "far acc", "farU", "nearU")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-24s %8d %6.1f %14s %14d %14d %7.1f%% %7.1f%%\n",
			p.Label, p.Cores, p.Rho, p.Result.SimTime,
			p.Result.NearAccesses, p.Result.FarAccesses,
			100*p.Result.FarUtilization, 100*p.Result.NearUtilization)
	}
	return b.String()
}

// BandwidthSweep reproduces claim C1 (§I-A: "a linear reduction in running
// time ... when increasing the bandwidth from two to eight times"): NMsort
// replayed at 2X/4X/8X near bandwidth, plus the ρ-insensitive baseline.
func BandwidthSweep(w Workload) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("Bandwidth sweep, N=%d keys, %d cores", w.N, w.Threads)}

	gnu, err := Record(AlgGNUSort, w)
	if err != nil {
		return s, err
	}
	nm, err := Record(AlgNMSort, w)
	if err != nil {
		return s, err
	}
	for _, ch := range []int{8, 16, 32} {
		cfg := NodeFor(w.Threads, ch, w.SP)
		gres, err := machine.Run(cfg, gnu.Trace)
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points, SweepPoint{
			Label: fmt.Sprintf("gnusort@%dX", ch/4), Cores: w.Threads,
			Rho: cfg.BandwidthExpansion(), Result: gres,
		})
		nres, err := machine.Run(NodeFor(w.Threads, ch, w.SP), nm.Trace)
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points, SweepPoint{
			Label: fmt.Sprintf("nmsort@%dX", ch/4), Cores: w.Threads,
			Rho: cfg.BandwidthExpansion(), Result: nres,
		})
	}
	return s, nil
}

// CoreSweep reproduces claim C2 (§V: "sorting is memory bound if the
// number of cores is 256 and not memory bound when that number is reduced
// to 128"): both algorithms at 8X bandwidth across core counts. In the
// memory-bound regime NMsort wins; below it the scratchpad buys little.
func CoreSweep(w Workload, coreCounts []int) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("Core-count sweep, N=%d keys, 8X near bandwidth", w.N)}
	for _, cores := range coreCounts {
		cw := w
		cw.Threads = cores
		gnu, err := Record(AlgGNUSort, cw)
		if err != nil {
			return s, err
		}
		nm, err := Record(AlgNMSort, cw)
		if err != nil {
			return s, err
		}
		gres, err := machine.Run(NodeFor(cores, 32, w.SP), gnu.Trace)
		if err != nil {
			return s, err
		}
		nres, err := machine.Run(NodeFor(cores, 32, w.SP), nm.Trace)
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points,
			SweepPoint{Label: "gnusort", Cores: cores, Rho: 8, Result: gres},
			SweepPoint{Label: "nmsort", Cores: cores, Rho: 8, Result: nres},
		)
	}
	return s, nil
}

// AblationSmallAppends compares NMsort against the scattered
// per-bucket-append variant the paper abandoned (experiment A1). Both
// variants run with the paper's Θ(M/B) bucket count, where the average
// (chunk, bucket) segment is a handful of elements — the regime in which
// "these appends can be inefficient".
func AblationSmallAppends(w Workload, nearChannels int) (Sweep, error) {
	if w.Buckets == 0 {
		w.Buckets = int(w.SP / 256) // Θ(M/B) with a modest constant
		if w.Buckets < 16 {
			w.Buckets = 16
		}
	}
	s := Sweep{Title: fmt.Sprintf("Small-appends ablation, N=%d keys, %d cores, %dX, %d buckets", w.N, w.Threads, nearChannels/4, w.Buckets)}
	for _, alg := range []Algorithm{AlgNMSort, AlgNMScatter} {
		r, err := Record(alg, w)
		if err != nil {
			return s, err
		}
		res, err := machine.Run(NodeFor(w.Threads, nearChannels, w.SP), r.Trace)
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points, SweepPoint{
			Label: string(alg), Cores: w.Threads, Rho: float64(nearChannels) / 4, Result: res,
		})
	}
	return s, nil
}

// AblationDMA compares NMsort with and without the §VII DMA engines at the
// given bandwidth expansion (experiment A2).
func AblationDMA(w Workload, nearChannels int) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("DMA ablation, N=%d keys, %d cores, %dX", w.N, w.Threads, nearChannels/4)}
	for _, alg := range []Algorithm{AlgNMSort, AlgNMSortDM} {
		r, err := Record(alg, w)
		if err != nil {
			return s, err
		}
		res, err := machine.Run(NodeFor(w.Threads, nearChannels, w.SP), r.Trace)
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points, SweepPoint{
			Label: string(alg), Cores: w.Threads, Rho: float64(nearChannels) / 4, Result: res,
		})
	}
	return s, nil
}
