package harness

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
)

// SweepPoint is one (configuration, result) pair of a sweep. The fault-axis
// fields (Rate, Slowdown, MemFault) are meaningful only in sweeps with
// FaultAxis set; elsewhere they stay zero.
type SweepPoint struct {
	Label  string
	Cores  int
	Rho    float64
	Result machine.Result

	Rate     float64 // far-memory bit error rate (fault sweeps)
	Slowdown float64 // sim time over the same algorithm's fault-free run
	MemFault bool    // the replay returned uncorrected data

	// Fail is the supervised failure kind ("panic", "cancelled",
	// "budget", "stall", "error") when this point's replay did not
	// complete; empty on success. Failed points keep their place in the
	// series with a marked label instead of aborting the sweep.
	Fail string
}

// Sweep is a labelled series of simulation results. Plain sweeps and fault
// sweeps share this one type — and therefore one table path — so the fault
// counters appear in every report and the fault-axis columns switch on.
type Sweep struct {
	Title     string
	FaultAxis bool // points vary a fault rate: add rate/slowdown/degraded/retrans columns
	Points    []SweepPoint

	// Par records the replay worker count the sweep ran with (after
	// resolving Workload.Par against the job count). Informational only —
	// it is deliberately excluded from String/Report so rendered output
	// stays byte-identical at every worker count.
	Par int
}

// Failed counts points whose supervised replay did not complete. Zero for
// every unsupervised sweep (failures abort those instead).
func (s Sweep) Failed() int {
	n := 0
	for _, p := range s.Points {
		if p.Fail != "" {
			n++
		}
	}
	return n
}

// pointLabel renders a point's label with its MemFault and failure marks.
func pointLabel(p SweepPoint) string {
	return report.FailMark(mark(p.Label, p.MemFault), p.Fail)
}

// Report converts the sweep into a renderable table (text/CSV/markdown).
// Fault counters are always present; fault-axis sweeps additionally carry
// the rate, slowdown, and the fault-layer detail columns.
func (s Sweep) Report() *report.Table {
	cols := []string{"config", "cores", "rho"}
	if s.FaultAxis {
		cols = append(cols, "rate", "slowdown")
	}
	cols = append(cols, "sim_time", "near_acc", "far_acc", "far_util", "near_util",
		"corrected", "retries", "mem_faults")
	if s.FaultAxis {
		cols = append(cols, "degraded", "retrans")
	}
	t := report.New(s.Title, cols...)
	for _, p := range s.Points {
		f := p.Result.Faults
		row := []any{pointLabel(p), p.Cores, p.Rho}
		if s.FaultAxis {
			row = append(row, fmt.Sprintf("%.0e", p.Rate), fmt.Sprintf("%.3f", p.Slowdown))
		}
		row = append(row, p.Result.SimTime.String(),
			p.Result.NearAccesses, p.Result.FarAccesses,
			fmt.Sprintf("%.3f", p.Result.FarUtilization),
			fmt.Sprintf("%.3f", p.Result.NearUtilization),
			f.FarCorrected, f.FarRetries, f.MemFaults)
		if s.FaultAxis {
			row = append(row, f.NearDegraded, f.NoCRetransmits)
		}
		t.AddRowf(row...)
	}
	return t
}

// String renders the sweep as an aligned series followed by the per-phase
// traffic breakdown of every point whose replay carried phase markers.
func (s Sweep) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.Title)
	fmt.Fprintf(&b, "%-24s %8s %6s", "config", "cores", "rho")
	if s.FaultAxis {
		fmt.Fprintf(&b, " %8s %9s", "rate", "slowdown")
	}
	fmt.Fprintf(&b, " %14s %14s %14s %8s %8s %10s %8s %10s",
		"sim time", "near acc", "far acc", "farU", "nearU",
		"corrected", "retries", "mem faults")
	if s.FaultAxis {
		fmt.Fprintf(&b, " %9s %8s", "degraded", "retrans")
	}
	b.WriteByte('\n')
	for _, p := range s.Points {
		f := p.Result.Faults
		fmt.Fprintf(&b, "%-24s %8d %6.1f", pointLabel(p), p.Cores, p.Rho)
		if s.FaultAxis {
			fmt.Fprintf(&b, " %8.0e %8.3fx", p.Rate, p.Slowdown)
		}
		fmt.Fprintf(&b, " %14s %14d %14d %7.1f%% %7.1f%% %10d %8d %10d",
			p.Result.SimTime,
			p.Result.NearAccesses, p.Result.FarAccesses,
			100*p.Result.FarUtilization, 100*p.Result.NearUtilization,
			f.FarCorrected, f.FarRetries, f.MemFaults)
		if s.FaultAxis {
			fmt.Fprintf(&b, " %9d %8d", f.NearDegraded, f.NoCRetransmits)
		}
		b.WriteByte('\n')
	}
	b.WriteString(s.phaseBreakdown())
	return b.String()
}

// phaseBreakdown renders one aligned block attributing each point's
// bandwidth and channel utilization to its algorithm phases. Points whose
// traces carried no markers are skipped; an empty string means none did.
func (s Sweep) phaseBreakdown() string {
	var b strings.Builder
	for _, p := range s.Points {
		if len(p.Result.Phases) == 0 {
			continue
		}
		if b.Len() == 0 {
			fmt.Fprintf(&b, "\nphase breakdown\n")
			fmt.Fprintf(&b, "  %-24s %-18s %6s %9s %6s %9s %6s\n",
				"config", "phase", "time%", "far GB/s", "farU", "near GB/s", "nearU")
		}
		label := p.Label
		if s.FaultAxis {
			label = fmt.Sprintf("%s@%.0e", p.Label, p.Rate)
		}
		total := p.Result.SimTime
		for _, ph := range p.Result.Phases {
			share := 0.0
			if total > 0 {
				share = 100 * float64(ph.Duration()) / float64(total)
			}
			fmt.Fprintf(&b, "  %-24s %-18s %5.1f%% %9.2f %5.1f%% %9.2f %5.1f%%\n",
				report.FailMark(mark(label, p.MemFault), p.Fail), ph.Name, share,
				ph.FarGBps(), 100*ph.FarUtil(), ph.NearGBps(), 100*ph.NearUtil())
		}
	}
	return b.String()
}

// PhaseTable converts a phase-attribution series into a renderable table —
// the same numbers as the sweep's phase-breakdown block, for standalone
// export (nmsim's telemetry report, the timeline experiment).
func PhaseTable(title string, total units.Time, phases []telemetry.PhaseUsage) *report.Table {
	t := report.New(title, "phase", "start", "duration", "time_pct",
		"far_gbps", "far_util", "near_gbps", "near_util")
	for _, ph := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(ph.Duration()) / float64(total)
		}
		t.AddRowf(ph.Name, ph.Start.String(), ph.Duration().String(),
			fmt.Sprintf("%.1f", share),
			fmt.Sprintf("%.2f", ph.FarGBps()), fmt.Sprintf("%.3f", ph.FarUtil()),
			fmt.Sprintf("%.2f", ph.NearGBps()), fmt.Sprintf("%.3f", ph.NearUtil()))
	}
	return t
}

// BandwidthSweep reproduces claim C1 (§I-A: "a linear reduction in running
// time ... when increasing the bandwidth from two to eight times"): NMsort
// replayed at 2X/4X/8X near bandwidth, plus the ρ-insensitive baseline.
func BandwidthSweep(w Workload) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("Bandwidth sweep, N=%d keys, %d cores", w.N, w.Threads)}

	gnu, err := Record(AlgGNUSort, w)
	if err != nil {
		return s, err
	}
	nm, err := Record(AlgNMSort, w)
	if err != nil {
		return s, err
	}
	var jobs []replayJob
	var points []SweepPoint // point metadata, parallel to jobs
	for _, ch := range []int{8, 16, 32} {
		for _, a := range []struct {
			name string
			tr   *trace.Trace
		}{{"gnusort", gnu.Trace}, {"nmsort", nm.Trace}} {
			cfg := NodeFor(w.Threads, ch, w.SP)
			cfg.MaxEvents = w.MaxEvents
			cfg.Shards = w.Shards
			jobs = append(jobs, replayJob{cfg: cfg, tr: a.tr})
			points = append(points, SweepPoint{
				Label: fmt.Sprintf("%s@%dX", a.name, ch/4), Cores: w.Threads,
				Rho: cfg.BandwidthExpansion(),
			})
		}
	}
	return s.collect(w.Sup, replayPar(w.Par, len(jobs)), jobs, points)
}

// collect runs the jobs on the pool and merges each outcome into its
// pre-built point, in job order. Unsupervised (sup == nil), the first
// fatal error aborts the sweep — the historical contract. Supervised,
// failed cells stay in the series with their failure kind recorded and
// the sweep always completes; callers inspect Sweep.Failed().
func (s Sweep) collect(sup *Supervisor, workers int, jobs []replayJob, points []SweepPoint) (Sweep, error) {
	s.Par = workers
	for i := range jobs {
		// Jobs and points are parallel; carry the report label onto the
		// job so supervised failures name their cell.
		jobs[i].label = points[i].Label
	}
	outs := runReplays(sup, workers, jobs)
	for i, o := range outs {
		if o.err != nil && sup == nil {
			return s, o.err
		}
		p := points[i]
		p.Result = o.res
		p.MemFault = o.memFault
		p.Fail = FailKind(o.err)
		s.Points = append(s.Points, p)
	}
	return s, nil
}

// CoreSweep reproduces claim C2 (§V: "sorting is memory bound if the
// number of cores is 256 and not memory bound when that number is reduced
// to 128"): both algorithms at 8X bandwidth across core counts. In the
// memory-bound regime NMsort wins; below it the scratchpad buys little.
func CoreSweep(w Workload, coreCounts []int) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("Core-count sweep, N=%d keys, 8X near bandwidth", w.N)}
	var jobs []replayJob
	var points []SweepPoint
	for _, cores := range coreCounts {
		cw := w
		cw.Threads = cores
		gnu, err := Record(AlgGNUSort, cw)
		if err != nil {
			return s, err
		}
		nm, err := Record(AlgNMSort, cw)
		if err != nil {
			return s, err
		}
		for _, a := range []struct {
			name string
			tr   *trace.Trace
		}{{"gnusort", gnu.Trace}, {"nmsort", nm.Trace}} {
			cfg := NodeFor(cores, 32, w.SP)
			cfg.MaxEvents = w.MaxEvents
			cfg.Shards = w.Shards
			jobs = append(jobs, replayJob{cfg: cfg, tr: a.tr})
			points = append(points, SweepPoint{Label: a.name, Cores: cores, Rho: 8})
		}
	}
	return s.collect(w.Sup, replayPar(w.Par, len(jobs)), jobs, points)
}

// AblationSmallAppends compares NMsort against the scattered
// per-bucket-append variant the paper abandoned (experiment A1). Both
// variants run with the paper's Θ(M/B) bucket count, where the average
// (chunk, bucket) segment is a handful of elements — the regime in which
// "these appends can be inefficient".
func AblationSmallAppends(w Workload, nearChannels int) (Sweep, error) {
	if w.Buckets == 0 {
		w.Buckets = int(w.SP / 256) // Θ(M/B) with a modest constant
		if w.Buckets < 16 {
			w.Buckets = 16
		}
	}
	s := Sweep{Title: fmt.Sprintf("Small-appends ablation, N=%d keys, %d cores, %dX, %d buckets", w.N, w.Threads, nearChannels/4, w.Buckets)}
	return s.ablate(w, nearChannels, AlgNMSort, AlgNMScatter)
}

// AblationDMA compares NMsort with and without the §VII DMA engines at the
// given bandwidth expansion (experiment A2).
func AblationDMA(w Workload, nearChannels int) (Sweep, error) {
	s := Sweep{Title: fmt.Sprintf("DMA ablation, N=%d keys, %d cores, %dX", w.N, w.Threads, nearChannels/4)}
	return s.ablate(w, nearChannels, AlgNMSort, AlgNMSortDM)
}

// ablate records each algorithm and replays them as one pooled batch on
// identical nodes — the shared body of the two ablation experiments.
func (s Sweep) ablate(w Workload, nearChannels int, algs ...Algorithm) (Sweep, error) {
	var jobs []replayJob
	var points []SweepPoint
	for _, alg := range algs {
		r, err := Record(alg, w)
		if err != nil {
			return s, err
		}
		cfg := NodeFor(w.Threads, nearChannels, w.SP)
		cfg.MaxEvents = w.MaxEvents
		cfg.Shards = w.Shards
		jobs = append(jobs, replayJob{cfg: cfg, tr: r.Trace})
		points = append(points, SweepPoint{
			Label: string(alg), Cores: w.Threads, Rho: float64(nearChannels) / 4,
		})
	}
	return s.collect(w.Sup, replayPar(w.Par, len(jobs)), jobs, points)
}
