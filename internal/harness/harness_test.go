package harness

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// tinyWorkload keeps harness tests fast: 16 cores, small input.
func tinyWorkload() Workload {
	return Workload{N: 1 << 13, Seed: 7, Threads: 16, SP: 64 * units.KiB}
}

func TestRecordAlgorithms(t *testing.T) {
	w := tinyWorkload()
	for _, alg := range []Algorithm{AlgGNUSort, AlgNMSort, AlgNMSortDM} {
		r, err := Record(alg, w)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !r.Sorted {
			t.Errorf("%s: output not sorted", alg)
		}
		if r.Trace.Ops() == 0 {
			t.Errorf("%s: empty trace", alg)
		}
	}
}

func TestRecordRejectsBadInput(t *testing.T) {
	if _, err := Record(AlgGNUSort, Workload{N: -1, Threads: 4, SP: units.KiB}); err == nil {
		t.Error("expected error for negative N")
	}
	if _, err := Record(Algorithm("bogus"), tinyWorkload()); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestRecordDeterministic(t *testing.T) {
	w := tinyWorkload()
	a, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Errorf("traces differ: %+v vs %+v", a.Counts, b.Counts)
	}
	if a.Trace.Ops() != b.Trace.Ops() {
		t.Errorf("op counts differ: %d vs %d", a.Trace.Ops(), b.Trace.Ops())
	}
}

func TestNodeFor(t *testing.T) {
	cfg := NodeFor(128, 16, units.MiB)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("invalid node: %v", err)
	}
	if cfg.Cores != 128 || cfg.NoC.Groups != 32 {
		t.Errorf("cfg = %+v", cfg)
	}
	if got := cfg.BandwidthExpansion(); got != 4 {
		t.Errorf("expansion = %v", got)
	}
	if cfg.L2Capacity != ScaledL2 {
		t.Errorf("L2 = %v, want scaled %v", cfg.L2Capacity, ScaledL2)
	}
}

func TestTable1Shape(t *testing.T) {
	tb, err := Table1(tinyWorkload(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	if tb.Rows[0].Name != "GNU Sort" || tb.Rows[0].Result.NearAccesses != 0 {
		t.Errorf("baseline row wrong: %+v", tb.Rows[0])
	}
	for i, wantRho := range []float64{2, 4, 8} {
		r := tb.Rows[i+1]
		if r.Rho != wantRho {
			t.Errorf("row %d rho = %v, want %v", i+1, r.Rho, wantRho)
		}
		if r.Result.NearAccesses == 0 {
			t.Errorf("row %d: NMsort must touch near memory", i+1)
		}
	}
	// NMsort sim time must be non-increasing in bandwidth.
	if tb.Rows[1].Result.SimTime < tb.Rows[3].Result.SimTime {
		t.Errorf("more near bandwidth slowed NMsort: %v -> %v",
			tb.Rows[1].Result.SimTime, tb.Rows[3].Result.SimTime)
	}
	// At this tiny scale the working set fits the aggregate L2, so the
	// far-traffic halving can't fully show; just require NMsort not to
	// inflate far traffic. TestClaimC3AtScale checks the real ratio.
	if f := float64(tb.Rows[1].Result.FarAccesses) / float64(tb.Rows[0].Result.FarAccesses); f > 1.1 {
		t.Errorf("NMsort far-access ratio %.2f, want <= ~1", f)
	}
	out := tb.String()
	for _, want := range []string{"Sim Time", "Scratchpad Accesses", "DRAM Accesses", "NMsort (8X)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Deterministic(t *testing.T) {
	a, err := Table1(tinyWorkload(), false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(tinyWorkload(), false)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("Table1 not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestBandwidthSweep(t *testing.T) {
	s, err := BandwidthSweep(tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(s.Points))
	}
	// The baseline must be exactly ρ-insensitive.
	if s.Points[0].Result.SimTime != s.Points[4].Result.SimTime {
		t.Errorf("gnusort time varies with near channels: %v vs %v",
			s.Points[0].Result.SimTime, s.Points[4].Result.SimTime)
	}
	if !strings.Contains(s.String(), "nmsort@8X") {
		t.Error("sweep output missing labels")
	}
}

func TestCoreSweep(t *testing.T) {
	s, err := CoreSweep(tinyWorkload(), []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(s.Points))
	}
	for _, p := range s.Points {
		if p.Result.SimTime <= 0 {
			t.Errorf("point %q has zero time", p.Label)
		}
	}
}

func TestAblationDMA(t *testing.T) {
	s, err := AblationDMA(tinyWorkload(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
}

func TestModelFor(t *testing.T) {
	w := DefaultWorkload()
	p := ModelFor(w, NodeFor(w.Threads, 16, w.SP))
	if err := p.Validate(); err != nil {
		t.Errorf("derived model params invalid: %v", err)
	}
	if p.Rho != 4 {
		t.Errorf("rho = %v", p.Rho)
	}
}

func TestRecordExtendedAlgorithms(t *testing.T) {
	w := tinyWorkload()
	for _, alg := range []Algorithm{AlgNMScatter, AlgParSort, AlgGNUExact} {
		r, err := Record(alg, w)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !r.Sorted || r.Trace.Ops() == 0 {
			t.Errorf("%s: bad record result", alg)
		}
	}
}

func TestParSortSimulates(t *testing.T) {
	w := tinyWorkload()
	r, err := Record(AlgParSort, w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(NodeFor(w.Threads, 16, w.SP), r.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.NearAccesses == 0 {
		t.Error("Theorem 10 sort must exercise the scratchpad")
	}
}

func TestClaimC3AtScale(t *testing.T) {
	// Claim C3 at a scale where runs exceed L2 shares and chunks exceed
	// the aggregate L2: NMsort's device-level far accesses must be well
	// below half of the baseline's.
	if testing.Short() {
		t.Skip("scaled workload; skipped with -short")
	}
	w := Workload{N: 1 << 17, Seed: 2015, Threads: 64, SP: units.MiB}
	gnu, err := Record(AlgGNUSort, w)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := Record(AlgNMSort, w)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := machine.Run(NodeFor(w.Threads, 8, w.SP), gnu.Trace)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := machine.Run(NodeFor(w.Threads, 8, w.SP), nm.Trace)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(nres.FarAccesses) / float64(gres.FarAccesses)
	if ratio > 0.5 {
		t.Errorf("NMsort far-access ratio %.2f, want < 0.5 (gnu=%d nm=%d)",
			ratio, gres.FarAccesses, nres.FarAccesses)
	}
	// And the baseline must never touch the scratchpad.
	if gres.NearAccesses != 0 {
		t.Errorf("baseline near accesses = %d", gres.NearAccesses)
	}
}

func TestRecordAllDistributions(t *testing.T) {
	// Robustness: every algorithm must sort every distribution correctly
	// (skew exercises NMsort's direct-merge fallback and the exact
	// splitter's tie handling).
	w := tinyWorkload()
	for _, d := range workload.All() {
		w.Dist = d
		for _, alg := range []Algorithm{AlgGNUSort, AlgGNUExact, AlgNMSort, AlgParSort} {
			r, err := Record(alg, w)
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, d, err)
			}
			if !r.Sorted {
				t.Errorf("%s/%s: not sorted", alg, d)
			}
		}
	}
}

func TestKMeansSweepShape(t *testing.T) {
	w := DefaultKMeans()
	w.Points = 1 << 11
	w.Th = 8
	w.Iters = 4
	s, err := KMeansSweep(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 6 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Far variant must be rho-insensitive; scratchpad variant must never
	// slow down with added channels and must touch near memory.
	if s.Points[0].Result.SimTime != s.Points[4].Result.SimTime {
		t.Error("far k-means varies with near channels")
	}
	if s.Points[1].Result.NearAccesses == 0 {
		t.Error("scratchpad k-means never touched near memory")
	}
	if s.Points[5].Result.SimTime > s.Points[1].Result.SimTime {
		t.Errorf("more near bandwidth slowed scratchpad k-means: %v -> %v",
			s.Points[1].Result.SimTime, s.Points[5].Result.SimTime)
	}
}

func TestReportRenderers(t *testing.T) {
	tb, err := Table1(tinyWorkload(), false)
	if err != nil {
		t.Fatal(err)
	}
	rt := tb.Report()
	if len(rt.Rows) != 4 || len(rt.Columns) != 9 {
		t.Errorf("table report shape: %dx%d", len(rt.Rows), len(rt.Columns))
	}
	var buf strings.Builder
	if err := rt.Render(&buf, report.CSV); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GNU Sort") {
		t.Error("CSV missing baseline row")
	}

	s, err := BandwidthSweep(tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	sr := s.Report()
	if len(sr.Rows) != 6 {
		t.Errorf("sweep report rows = %d", len(sr.Rows))
	}
	buf.Reset()
	if err := sr.Render(&buf, report.Markdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| config |") {
		t.Error("markdown header missing")
	}
}

func TestAblationSmallAppendsSweep(t *testing.T) {
	s, err := AblationSmallAppends(tinyWorkload(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points = %d", len(s.Points))
	}
	if s.Points[0].Label != string(AlgNMSort) || s.Points[1].Label != string(AlgNMScatter) {
		t.Errorf("labels = %q, %q", s.Points[0].Label, s.Points[1].Label)
	}
	for _, p := range s.Points {
		if p.Result.SimTime <= 0 || p.Result.NearAccesses == 0 {
			t.Errorf("point %q implausible: %+v", p.Label, p.Result)
		}
	}
}
