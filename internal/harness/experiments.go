package harness

import "repro/internal/units"

// The experiment registry: the single catalogue of the paper's sweeps,
// shared by cmd/sweep (flags) and internal/serve (JSON requests) so the
// two front ends can never drift on what an experiment name means. Each
// entry maps parsed parameters plus a workload to a Sweep; front ends own
// only the string-to-parameter parsing.

// ExperimentParams carries the per-experiment knobs beyond the workload,
// already parsed. Zero values select the registry's defaults, which are
// the same defaults cmd/sweep has always had — so an empty params struct
// renders byte-identically to a flagless sweep run.
type ExperimentParams struct {
	// CoreList is the -exp=cores axis; empty means DefaultCoreList.
	CoreList []int
	// FaultSeed seeds -exp=faults injection (0 disables injection).
	FaultSeed uint64
	// FaultRates is the -exp=faults error-rate axis; empty means the
	// FaultRates default axis.
	FaultRates []float64
	// Epoch is the -exp=timeline sampling epoch; 0 means DefaultEpoch.
	Epoch units.Time
}

// DefaultCoreList is the -exp=cores axis when none is given — the
// paper's §V core counts.
func DefaultCoreList() []int { return []int{64, 128, 192, 256} }

// DefaultEpoch is the -exp=timeline sampling epoch when none is given.
const DefaultEpoch = 10 * units.Microsecond

// Experiment is one registered experiment: a stable name (the -exp value
// and the serving API's exp field), a one-line description (usage text is
// generated from these), and the runner.
type Experiment struct {
	Name string
	Desc string
	Run  func(p ExperimentParams, w Workload) (Sweep, error)
}

// Experiments is the registry, in display order. Adding an experiment
// here is the whole job: flag validation, usage text, and the serving
// API's experiment set all follow.
var Experiments = []Experiment{
	{"bandwidth", "claim C1 — NMsort's runtime falls as near bandwidth rises 2X→8X; the baseline is insensitive",
		func(p ExperimentParams, w Workload) (Sweep, error) {
			return BandwidthSweep(w)
		}},
	{"cores", "claim C2 — the scratchpad pays off in the memory-bound regime (256 cores) and not below it",
		func(p ExperimentParams, w Workload) (Sweep, error) {
			cc := p.CoreList
			if len(cc) == 0 {
				cc = DefaultCoreList()
			}
			return CoreSweep(w, cc)
		}},
	{"dma", "experiment A2 — the §VII DMA-engine extension",
		func(p ExperimentParams, w Workload) (Sweep, error) {
			return AblationDMA(w, 16)
		}},
	{"appends", "experiment A1 — bucket-metadata batching ablation",
		func(p ExperimentParams, w Workload) (Sweep, error) {
			return AblationSmallAppends(w, 16)
		}},
	{"kmeans", "the §VII k-means extension",
		func(p ExperimentParams, w Workload) (Sweep, error) {
			kw := DefaultKMeans()
			kw.Th = w.Threads
			kw.Par = w.Par
			kw.Sup = w.Sup
			return KMeansSweep(kw)
		}},
	{"faults", "experiment F1 — slowdown, retry counts, and MemFault outcomes vs. the far memory's error rate",
		func(p ExperimentParams, w Workload) (Sweep, error) {
			return RunFaultSweep(w, 16, p.FaultSeed, p.FaultRates)
		}},
	{"timeline", "telemetry-instrumented replay at 4X — per-phase bandwidth and utilization, NMsort vs. the baseline",
		func(p ExperimentParams, w Workload) (Sweep, error) {
			epoch := p.Epoch
			if epoch <= 0 {
				epoch = DefaultEpoch
			}
			return TimelineSweep(w, 16, epoch)
		}},
}

// FindExperiment looks a name up in the registry.
func FindExperiment(name string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExperimentNames returns the registered names in display order.
func ExperimentNames() []string {
	names := make([]string, len(Experiments))
	for i, e := range Experiments {
		names[i] = e.Name
	}
	return names
}
