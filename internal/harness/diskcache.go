package harness

import (
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

// DiskRecordCache memoizes Record() results as columnar v3 trace files in
// a directory, so recorded traces survive process restarts: the first
// sweep against a workload pays the recording cost, every later sweep —
// in any process — opens the file. Byte-neutral like every RecordCache:
// equal workloads record byte-identical traces, and the digest-checked
// on-disk copy replays identically to a fresh recording.
//
// Only the trace is persisted. Counts are rebuilt from the trace on load
// and Sorted is implied (Record never caches an unsorted result); NMStats
// is not persisted, so a disk hit reports zero NMStats — nothing in the
// replay pipeline reads it, which is why the loss is acceptable here and
// the in-memory serve memo (which does keep NMStats) remains the daemon's
// cache.
//
// Safe for concurrent use: lookups only read, and completions write via
// an atomic temp-file rename, so a torn write can never be observed. Two
// processes racing the same key converge on identical bytes.
type DiskRecordCache struct {
	dir string
}

// NewDiskRecordCache returns a cache rooted at dir, creating it if needed.
func NewDiskRecordCache(dir string) (*DiskRecordCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: trace cache dir: %w", err)
	}
	return &DiskRecordCache{dir: dir}, nil
}

// path derives the cache file base path (no extension) for a normalized
// workload: a stable CRC64 of the algorithm and the RecordKey fields.
func (c *DiskRecordCache) path(alg Algorithm, w Workload) string {
	key := crc64.Checksum([]byte(fmt.Sprintf("%s|%+v", alg, w)), cellCRCTable)
	return filepath.Join(c.dir, fmt.Sprintf("%s-%016x", alg, key))
}

// LookupRecord implements RecordCache: it tries the key's .nmt3 (columnar)
// then .nmt (v2) file. A missing, unreadable, or invalid file is a miss —
// the caller re-records and overwrites.
func (c *DiskRecordCache) LookupRecord(alg Algorithm, w Workload) (RecordResult, bool) {
	base := c.path(alg, w)
	for _, ext := range []string{".nmt3", ".nmt"} {
		src, err := trace.Load(base + ext)
		if err != nil {
			continue
		}
		tr, err := materialize(src)
		if err != nil {
			continue
		}
		return RecordResult{Trace: tr, Sorted: true, Counts: tr.Count()}, true
	}
	return RecordResult{}, false
}

// materialize decodes a loaded Source into a validated *Trace.
func materialize(src trace.Source) (*trace.Trace, error) {
	var tr *trace.Trace
	switch s := src.(type) {
	case *trace.Trace:
		tr = s
	case *trace.Columnar:
		defer s.Close()
		t, err := s.Decode()
		if err != nil {
			return nil, err
		}
		tr = t
	default:
		return nil, fmt.Errorf("harness: unknown trace source %T", src)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// CompleteRecord implements RecordCache: it writes the trace as a columnar
// v3 file via an atomic temp-file rename. Persistence is best-effort — a
// failed write only costs a future re-recording, so errors are swallowed
// (the RecordCache interface has no error channel by design: the record
// itself succeeded).
func (c *DiskRecordCache) CompleteRecord(alg Algorithm, w Workload, res RecordResult) {
	data, err := trace.EncodeColumnar(res.Trace)
	if err != nil {
		return
	}
	dst := c.path(alg, w) + ".nmt3"
	tmp, err := os.CreateTemp(c.dir, "tmp-*.nmt3")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
		if err == nil {
			err = os.Rename(tmp.Name(), dst)
		}
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
	}
}
