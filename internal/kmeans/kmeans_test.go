package kmeans

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/units"
)

func mkPoints(e *core.Env, n, d int, seed uint64) Points {
	pts := Points{V: e.AllocFar(n * d), Dims: d}
	GenerateClustered(pts, 4, seed)
	return pts
}

func TestFarConverges(t *testing.T) {
	e := core.NewEnv(4, units.MiB, nil, 1)
	pts := mkPoints(e, 1024, 4, 11)
	res := Far(e, pts, DefaultConfig(4, 4))
	if !res.Converged {
		t.Errorf("did not converge in %d iters (inertia %v)", res.Iters, res.Inertia)
	}
	if len(res.Centroids) != 4 || len(res.Assign) != 1024 {
		t.Fatalf("result shape wrong")
	}
}

func TestScratchpadMatchesFar(t *testing.T) {
	// Same data, same seed: both variants must produce identical
	// assignments and centroids — the scratchpad changes where bytes live,
	// never what is computed.
	mk := func() (*core.Env, Points) {
		e := core.NewEnv(4, units.MiB, nil, 1)
		return e, mkPoints(e, 512, 8, 22)
	}
	e1, p1 := mk()
	r1 := Far(e1, p1, DefaultConfig(4, 8))
	e2, p2 := mk()
	r2 := Scratchpad(e2, p2, DefaultConfig(4, 8))
	if r1.Iters != r2.Iters || r1.Converged != r2.Converged {
		t.Fatalf("iteration mismatch: %d vs %d", r1.Iters, r2.Iters)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatalf("assignment mismatch at %d", i)
		}
	}
	for c := range r1.Centroids {
		for j := range r1.Centroids[c] {
			if math.Abs(r1.Centroids[c][j]-r2.Centroids[c][j]) > 1e-9 {
				t.Fatalf("centroid mismatch at %d/%d", c, j)
			}
		}
	}
}

func TestRecoversPlantedClusters(t *testing.T) {
	e := core.NewEnv(2, units.MiB, nil, 1)
	pts := Points{V: e.AllocFar(2000 * 2), Dims: 2}
	centers := GenerateClustered(pts, 4, 33)
	res := Far(e, pts, DefaultConfig(4, 2))
	// Every found centroid should be near some planted center (blobs have
	// sigma 10, centers are hundreds apart).
	for _, c := range res.Centroids {
		best := math.Inf(1)
		for _, g := range centers {
			d := 0.0
			for j := range g {
				d += (c[j] - g[j]) * (c[j] - g[j])
			}
			if d < best {
				best = d
			}
		}
		if math.Sqrt(best) > 50 {
			t.Errorf("centroid %v is %f away from every planted center", c, math.Sqrt(best))
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	run := func(p int) Result {
		e := core.NewEnv(p, units.MiB, nil, 1)
		pts := mkPoints(e, 600, 4, 44)
		return Far(e, pts, DefaultConfig(4, 4))
	}
	a, b := run(1), run(8)
	if a.Iters != b.Iters {
		t.Fatalf("iters differ: %d vs %d", a.Iters, b.Iters)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("assignment differs at %d with different thread counts", i)
		}
	}
	if math.Abs(a.Inertia-b.Inertia) > math.Abs(a.Inertia)*1e-9 {
		t.Fatalf("inertia differs: %v vs %v", a.Inertia, b.Inertia)
	}
}

func TestTrafficSplit(t *testing.T) {
	// Far variant: all point traffic hits far memory every iteration.
	// Scratchpad variant: one far read, then near traffic per iteration —
	// the §VII mechanism. Compare recorded line counts.
	mkTraced := func(scratch bool) trace.LevelCounts {
		rec := trace.NewRecorder(4, trace.L1Geometry{Capacity: 4 * units.KiB, LineSize: 64, Ways: 2}, trace.DefaultCosts())
		e := core.NewEnv(4, units.MiB, rec, 1)
		pts := mkPoints(e, 2048, 8, 55)
		cfg := DefaultConfig(8, 8)
		cfg.MaxIters = 6
		cfg.Tol = 0 // force all iterations
		if scratch {
			Scratchpad(e, pts, cfg)
		} else {
			Far(e, pts, cfg)
		}
		return rec.Finish().Count()
	}
	far := mkTraced(false)
	sp := mkTraced(true)
	if far.Near() != 0 {
		t.Errorf("far variant touched near memory %d times", far.Near())
	}
	if sp.Near() == 0 {
		t.Error("scratchpad variant never touched near memory")
	}
	// Scratchpad far traffic should be a small fraction: one ingest vs six
	// iteration scans.
	if ratio := float64(sp.Far()) / float64(far.Far()); ratio > 0.5 {
		t.Errorf("scratchpad variant far-traffic ratio %.2f, want < 0.5 (far=%d sp=%d)",
			ratio, far.Far(), sp.Far())
	}
}

func TestScratchpadTooSmallPanics(t *testing.T) {
	e := core.NewEnv(2, 4*units.KiB, nil, 1)
	pts := mkPoints(e, 4096, 8, 66)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when points exceed scratchpad")
		}
	}()
	Scratchpad(e, pts, DefaultConfig(4, 8))
}

func TestPointsAccessors(t *testing.T) {
	e := core.NewEnv(1, units.MiB, nil, 1)
	pts := Points{V: e.AllocFar(10 * 3), Dims: 3}
	pts.Set(nil, 2, 1, -7.5)
	if got := pts.Get(nil, 2, 1); got != -7.5 {
		t.Errorf("Get = %v", got)
	}
	if pts.Len() != 10 {
		t.Errorf("Len = %d", pts.Len())
	}
}
