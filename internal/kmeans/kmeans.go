// Package kmeans implements the paper's §VII extension: k-means clustering
// that exploits the scratchpad's bandwidth through algorithmically
// predictable prefetching. The paper reports that all its k-means variants
// "run a factor of ρ faster using scratchpad for many sizes of data and k".
//
// The mechanism: Lloyd's algorithm re-reads the full point set every
// iteration. When the point set fits the scratchpad, paying one far-memory
// transfer to pin it near the processor converts every subsequent
// iteration's traffic into near-memory traffic at ρ times the bandwidth —
// exactly the scratchpad's intended use ("prefetching data that is known to
// be needed", Section VI-B1).
package kmeans

import (
	"math"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Config parameterizes a clustering run.
type Config struct {
	K        int     // clusters
	Dims     int     // point dimensionality
	MaxIters int     // iteration cap
	Tol      float64 // mean-squared centroid movement threshold for convergence
	Seed     uint64  // centroid initialization seed

	// CyclesPerDim is the compute charge per dimension per centroid
	// distance evaluation (multiply-add plus loop overhead).
	CyclesPerDim int64
}

// DefaultConfig returns a workload shaped like a small clustering job.
func DefaultConfig(k, dims int) Config {
	return Config{K: k, Dims: dims, MaxIters: 20, Tol: 1e-6, Seed: 7, CyclesPerDim: 4}
}

// Result reports a clustering outcome.
type Result struct {
	Centroids [][]float64
	Assign    []int32
	Iters     int
	Converged bool
	Inertia   float64 // sum of squared distances to assigned centroids
}

// Points is a traced point matrix: n points of Dims float64 coordinates,
// stored row-major as IEEE-754 bit patterns in a traced array.
type Points struct {
	V    trace.U64
	Dims int
}

// Len returns the number of points.
func (p Points) Len() int { return p.V.Len() / p.Dims }

// Get reads coordinate j of point i through tp.
func (p Points) Get(tp *trace.TP, i, j int) float64 {
	return math.Float64frombits(p.V.Get(tp, i*p.Dims+j))
}

// Set writes coordinate j of point i through tp.
func (p Points) Set(tp *trace.TP, i, j int, v float64) {
	p.V.Set(tp, i*p.Dims+j, math.Float64bits(v))
}

// GenerateClustered fills pts with k well-separated Gaussian blobs so the
// clustering has ground truth to find. Returns the blob centers.
func GenerateClustered(pts Points, k int, seed uint64) [][]float64 {
	rng := xrand.New(seed)
	d := pts.Dims
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = float64(rng.Intn(2000)) - 1000
		}
	}
	n := pts.Len()
	for i := 0; i < n; i++ {
		c := centers[i%k]
		for j := 0; j < d; j++ {
			pts.Set(nil, i, j, c[j]+gauss(rng)*10)
		}
	}
	return centers
}

// gauss draws a standard normal via Box-Muller.
func gauss(rng *xrand.RNG) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Far runs Lloyd's algorithm with the point set resident in far memory —
// the DRAM-only baseline. Every iteration streams all points from far
// memory.
func Far(e *core.Env, pts Points, cfg Config) Result {
	return lloyd(e, pts, cfg)
}

// Scratchpad pins the point set in near memory first (one far read), then
// runs every iteration against the scratchpad. The point set must fit; the
// caller sizes M accordingly (the "many sizes of data" regime of §VII).
func Scratchpad(e *core.Env, pts Points, cfg Config) Result {
	spv, ok := e.AllocSP(pts.V.Len())
	if !ok {
		panic("kmeans: point set does not fit the scratchpad; use Far")
	}
	near := Points{V: spv, Dims: pts.Dims}
	par.Run(e.P, e.Rec, func(tid int, tp *trace.TP) {
		lo, hi := par.Span(pts.V.Len(), e.P, tid)
		trace.Copy(tp, spv.Slice(lo, hi), pts.V.Slice(lo, hi))
	})
	res := lloyd(e, near, cfg)
	e.FreeSP(spv.Base)
	return res
}

// lloyd is the shared iteration engine. Centroids are tiny and treated as
// cache-resident working state (plain values, compute charged); the point
// stream is what moves through the memory system.
func lloyd(e *core.Env, pts Points, cfg Config) Result {
	n, d, k := pts.Len(), cfg.Dims, cfg.K
	if k <= 0 || d != pts.Dims || n == 0 {
		panic("kmeans: bad configuration")
	}

	// Initialize centroids from k distinct points (deterministic).
	rng := xrand.New(cfg.Seed)
	cent := make([][]float64, k)
	init := rng.SampleNoReplace(n, min(k, n))
	for c := range cent {
		cent[c] = make([]float64, d)
		for j := 0; j < d; j++ {
			cent[c][j] = pts.Get(nil, init[c%len(init)], j)
		}
	}

	assign := make([]int32, n)
	res := Result{Assign: assign}
	bar := par.NewBarrier(e.P)

	sums := make([][][]float64, e.P) // per-thread [k][d] accumulators
	counts := make([][]int64, e.P)
	inertia := make([]float64, e.P)
	for t := range sums {
		sums[t] = make([][]float64, k)
		for c := range sums[t] {
			sums[t][c] = make([]float64, d)
		}
		counts[t] = make([]int64, k)
	}

	var moved float64
	var stop bool
	par.Run(e.P, e.Rec, func(tid int, tp *trace.TP) {
		lo, hi := par.Span(n, e.P, tid)
		for it := 0; ; it++ {
			// Assignment step: each thread scans its points.
			for c := range sums[tid] {
				for j := range sums[tid][c] {
					sums[tid][c][j] = 0
				}
				counts[tid][c] = 0
			}
			inertia[tid] = 0
			for i := lo; i < hi; i++ {
				best, bestD := 0, math.Inf(1)
				for c := 0; c < k; c++ {
					var dist float64
					for j := 0; j < d; j++ {
						diff := pts.Get(tp, i, j) - cent[c][j]
						dist += diff * diff
					}
					tp.Compute(int64(d) * cfg.CyclesPerDim)
					if dist < bestD {
						best, bestD = c, dist
					}
					tp.Compare(1)
				}
				assign[i] = int32(best)
				inertia[tid] += bestD
				for j := 0; j < d; j++ {
					sums[tid][best][j] += pts.Get(tp, i, j)
				}
				counts[tid][best]++
			}
			bar.Wait(tp)

			// Update step: thread 0 reduces and moves centroids.
			if tid == 0 {
				moved = 0
				res.Inertia = 0
				for t := 0; t < e.P; t++ {
					res.Inertia += inertia[t]
				}
				for c := 0; c < k; c++ {
					var cnt int64
					sum := make([]float64, d)
					for t := 0; t < e.P; t++ {
						cnt += counts[t][c]
						for j := 0; j < d; j++ {
							sum[j] += sums[t][c][j]
						}
					}
					if cnt == 0 {
						continue // empty cluster keeps its centroid
					}
					for j := 0; j < d; j++ {
						nc := sum[j] / float64(cnt)
						moved += (nc - cent[c][j]) * (nc - cent[c][j])
						cent[c][j] = nc
					}
				}
				tp.Compute(int64(k) * int64(d) * int64(e.P) * 2)
				res.Iters = it + 1
				stop = moved/float64(k) < cfg.Tol || it+1 >= cfg.MaxIters
				if moved/float64(k) < cfg.Tol {
					res.Converged = true
				}
			}
			bar.Wait(tp)
			if stop {
				break
			}
		}
	})

	res.Centroids = cent
	return res
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
