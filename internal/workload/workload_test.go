package workload

import (
	"testing"
)

func TestParse(t *testing.T) {
	for _, d := range All() {
		got, err := Parse(string(d))
		if err != nil || got != d {
			t.Errorf("Parse(%q) = %v, %v", d, got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestFillDeterministic(t *testing.T) {
	for _, d := range All() {
		a := make([]uint64, 4096)
		b := make([]uint64, 4096)
		Fill(a, d, 7)
		Fill(b, d, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", d, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := make([]uint64, 1024)
	b := make([]uint64, 1024)
	Fill(a, Uniform, 1)
	Fill(b, Uniform, 2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func isSorted(a []uint64) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}

func TestSortedAndReverse(t *testing.T) {
	a := make([]uint64, 4096)
	Fill(a, Sorted, 3)
	if !isSorted(a) {
		t.Error("Sorted distribution not sorted")
	}
	Fill(a, Reverse, 3)
	for i := 1; i < len(a); i++ {
		if a[i-1] < a[i] {
			t.Fatal("Reverse distribution not decreasing")
		}
	}
}

func TestFewKeysCardinality(t *testing.T) {
	a := make([]uint64, 8192)
	Fill(a, FewKeys, 5)
	seen := map[uint64]bool{}
	for _, v := range a {
		seen[v] = true
	}
	if len(seen) > 16 {
		t.Errorf("FewKeys produced %d distinct values", len(seen))
	}
	if len(seen) < 8 {
		t.Errorf("FewKeys produced only %d distinct values", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	a := make([]uint64, 1<<15)
	Fill(a, Zipf, 9)
	counts := map[uint64]int{}
	for _, v := range a {
		counts[v]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// The head rank of a zipf(1.1) should dominate: far more than the
	// uniform expectation, far less than everything.
	if max < len(a)/100 {
		t.Errorf("zipf head count %d too small for heavy tail", max)
	}
	if max == len(a) {
		t.Error("zipf degenerated to a constant")
	}
	if len(counts) < 100 {
		t.Errorf("zipf produced only %d distinct values", len(counts))
	}
}

func TestRunBlendRuns(t *testing.T) {
	a := make([]uint64, 1<<14)
	Fill(a, RunBlend, 11)
	if isSorted(a) {
		t.Error("RunBlend should not be globally sorted")
	}
	// Each 16th must be sorted.
	run := (len(a) + 15) / 16
	for lo := 0; lo < len(a); lo += run {
		hi := lo + run
		if hi > len(a) {
			hi = len(a)
		}
		if !isSorted(a[lo:hi]) {
			t.Fatalf("run at %d not sorted", lo)
		}
	}
}

func TestGaussianCentered(t *testing.T) {
	a := make([]uint64, 1<<14)
	Fill(a, Gaussian, 13)
	// Mean of 8 uniforms over [0, 2^61) sums to ~2^63; check the sample
	// mean is within 5% of that.
	var mean float64
	for _, v := range a {
		mean += float64(v) / float64(len(a))
	}
	center := float64(uint64(1) << 63)
	if mean < center*0.95 || mean > center*1.05 {
		t.Errorf("gaussian mean %.3g, want ~%.3g", mean, center)
	}
}

func TestFillUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fill(make([]uint64, 8), Dist("bogus"), 1)
}
