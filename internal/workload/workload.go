// Package workload generates the key distributions the sorting experiments
// run on. The paper evaluates uniform random 64-bit integers; the
// additional distributions here probe the algorithms' robustness — skew is
// exactly what stresses NMsort's bucket batching and the sampled splitters
// of the baseline.
package workload

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Dist identifies a key distribution.
type Dist string

// Supported distributions.
const (
	Uniform  Dist = "uniform"  // the paper's workload: uniform uint64
	Zipf     Dist = "zipf"     // heavy-tailed ranks (s ≈ 1.1) over 2^20 values
	Sorted   Dist = "sorted"   // already non-decreasing
	Reverse  Dist = "reverse"  // strictly decreasing
	FewKeys  Dist = "fewkeys"  // 16 distinct values (extreme duplication)
	Gaussian Dist = "gaussian" // sum-of-uniforms bell around 2^63
	RunBlend Dist = "runblend" // long pre-sorted runs spliced together
)

// All lists every supported distribution.
func All() []Dist {
	return []Dist{Uniform, Zipf, Sorted, Reverse, FewKeys, Gaussian, RunBlend}
}

// Parse validates a -dist flag value.
func Parse(s string) (Dist, error) {
	for _, d := range All() {
		if Dist(s) == d {
			return d, nil
		}
	}
	return "", fmt.Errorf("workload: unknown distribution %q", s)
}

// Fill writes n keys of the distribution into dst using the seed.
func Fill(dst []uint64, d Dist, seed uint64) {
	rng := xrand.New(seed)
	n := len(dst)
	switch d {
	case Uniform:
		rng.Keys(dst)
	case Zipf:
		z := newZipf(rng, 1.1, 1<<20)
		for i := range dst {
			// Spread ranks over the key space deterministically so equal
			// ranks collide (heavy duplication at the head).
			dst[i] = z.next() * 0x9e3779b97f4a7c15
		}
	case Sorted:
		rng.Keys(dst)
		sortInPlace(dst)
	case Reverse:
		rng.Keys(dst)
		sortInPlace(dst)
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			dst[i], dst[j] = dst[j], dst[i]
		}
	case FewKeys:
		for i := range dst {
			dst[i] = uint64(rng.Intn(16)) * 0x0123456789abcdef
		}
	case Gaussian:
		for i := range dst {
			// Irwin-Hall sum of 8 uniforms: cheap, deterministic bell.
			var s uint64
			for k := 0; k < 8; k++ {
				s += rng.Uint64() >> 3
			}
			dst[i] = s
		}
	case RunBlend:
		// 16 pre-sorted runs concatenated: the best case for merge-based
		// sorts' branch predictors, a realistic "partially sorted" input.
		run := (n + 15) / 16
		for lo := 0; lo < n; lo += run {
			hi := lo + run
			if hi > n {
				hi = n
			}
			rng.Keys(dst[lo:hi])
			sortInPlace(dst[lo:hi])
		}
	default:
		panic(fmt.Sprintf("workload: unknown distribution %q", d))
	}
}

// sortInPlace is a dependency-free pattern-defeating-free heapsort; the
// generator must not depend on internal/core (which it exists to test).
func sortInPlace(a []uint64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []uint64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// zipf draws ranks with P(k) ∝ 1/k^s via inverse-CDF over a precomputed
// table (n is small enough to tabulate; deterministic by construction).
type zipf struct {
	rng *xrand.RNG
	cdf []float64
}

func newZipf(rng *xrand.RNG, s float64, n int) *zipf {
	// Tabulate a truncated harmonic CDF over min(n, 64K) ranks; the tail
	// beyond the table carries negligible mass at s > 1.
	if n > 1<<16 {
		n = 1 << 16
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipf{rng: rng, cdf: cdf}
}

func (z *zipf) next() uint64 {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo + 1)
}
