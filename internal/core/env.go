// Package core implements the paper's algorithmic contribution: sorting for
// the two-level main memory. It contains
//
//   - the sequential recursive scratchpad sample sort of Section III
//     (random pivots, bucketizing scans, recursion until buckets fit the
//     scratchpad),
//   - NMsort, the practical two-phase multithreaded near-memory sort of
//     Section IV-D (chunk sorting with BucketPos/BucketTot metadata, then
//     batched bucket merging),
//   - the baseline the paper benchmarks against: a GNU-parallel-style
//     multiway mergesort that uses only far memory, and
//   - the shared primitives both need: cache-friendly mergesort, traced
//     quicksort (Corollary 7's in-scratchpad alternative), loser-tree
//     multiway merge, sample-based splitter selection, and multithreaded
//     bucket-boundary extraction.
//
// Every algorithm runs natively on Go slices while reporting its memory
// behaviour through trace probes (see internal/trace), so one code path
// serves correctness tests, native benchmarks, block-transfer counting
// against the model, and full machine simulation.
package core

import (
	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/xrand"
)

// Env carries the resources an algorithm run needs: the thread count, the
// optional recorder (nil = pure mode), the far-memory arena, and the
// scratchpad allocator of capacity M.
type Env struct {
	P    int               // logical threads (simulated cores)
	Rec  *trace.Recorder   // nil for pure (untraced) execution
	Seed uint64            // RNG seed for pivot sampling
	M    units.Bytes       // scratchpad capacity
	Far  *addr.Arena       // far-memory address arena
	SP   *addr.SPAllocator // scratchpad allocator (the paper's modified malloc)
}

// NewEnv builds an environment with a scratchpad of capacity m.
func NewEnv(p int, m units.Bytes, rec *trace.Recorder, seed uint64) *Env {
	if p <= 0 {
		panic("core: need at least one thread")
	}
	if rec != nil && rec.Threads() < p {
		panic("core: recorder has fewer threads than Env.P")
	}
	return &Env{
		P:    p,
		Rec:  rec,
		Seed: seed,
		M:    m,
		Far:  addr.NewFarArena(),
		SP:   addr.NewSPAllocator(uint64(m)),
	}
}

// AllocFar allocates an n-element array in far memory.
func (e *Env) AllocFar(n int) trace.U64 {
	base := e.Far.Alloc(uint64(n)*8, 64)
	return trace.U64{Base: base, D: make([]uint64, n)}
}

// AllocFarI64 allocates an n-element metadata array in far memory.
func (e *Env) AllocFarI64(n int) trace.I64 {
	base := e.Far.Alloc(uint64(n)*8, 64)
	return trace.I64{Base: base, D: make([]int64, n)}
}

// AllocSP allocates an n-element array in the scratchpad, reporting whether
// the scratchpad had room.
func (e *Env) AllocSP(n int) (trace.U64, bool) {
	base, ok := e.SP.SPMalloc(uint64(n) * 8)
	if !ok {
		return trace.U64{}, false
	}
	return trace.U64{Base: base, D: make([]uint64, n)}, true
}

// MustAllocSP allocates an n-element scratchpad array, panicking on
// exhaustion — used where the algorithm has already sized its working set
// to fit.
func (e *Env) MustAllocSP(n int) trace.U64 {
	v, ok := e.AllocSP(n)
	if !ok {
		panic("core: scratchpad exhausted; working set was mis-sized")
	}
	return v
}

// MustAllocSPI64 allocates an n-element scratchpad metadata array.
func (e *Env) MustAllocSPI64(n int) trace.I64 {
	base, ok := e.SP.SPMalloc(uint64(n) * 8)
	if !ok {
		panic("core: scratchpad exhausted; working set was mis-sized")
	}
	return trace.I64{Base: base, D: make([]int64, n)}
}

// FreeSP releases a scratchpad allocation.
func (e *Env) FreeSP(base addr.Addr) { e.SP.SPFree(base) }

// RNG returns a deterministic generator derived from the environment seed
// and a stream id.
func (e *Env) RNG(stream uint64) *xrand.RNG {
	return xrand.New(e.Seed*0x9e3779b97f4a7c15 + stream + 1)
}

// SPElems returns how many uint64 elements the scratchpad can hold.
func (e *Env) SPElems() int { return int(e.M / 8) }
