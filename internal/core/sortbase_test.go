package core

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func farView(d []uint64) trace.U64 {
	return trace.U64{Base: addr.FarBase, D: d}
}

func randKeys(n int, seed uint64) []uint64 {
	d := make([]uint64, n)
	xrand.New(seed).Keys(d)
	return d
}

func checkSorted(t *testing.T, name string, got []uint64, wantSum uint64) {
	t.Helper()
	if !IsSorted(got) {
		t.Fatalf("%s: output not sorted", name)
	}
	if Checksum(got) != wantSum {
		t.Fatalf("%s: output is not a permutation of the input", name)
	}
}

func TestMergeSortInPlace(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 4096} {
		d := randKeys(n, uint64(n)+1)
		sum := Checksum(d)
		a := farView(d)
		tmp := trace.U64{Base: addr.FarBase + addr.Addr(n*8+64), D: make([]uint64, n)}
		MergeSortInPlace(nil, a, tmp)
		checkSorted(t, "MergeSortInPlace", d, sum)
	}
}

func TestMergeSortInto(t *testing.T) {
	d := randKeys(1000, 5)
	sum := Checksum(d)
	dst := make([]uint64, 1000)
	tmp := make([]uint64, 1000)
	MergeSortInto(nil, farView(dst), farView(d), trace.U64{Base: addr.NearBase, D: tmp})
	checkSorted(t, "MergeSortInto", dst, sum)
}

func TestMergeSortIntoDstAliasesTmp(t *testing.T) {
	d := randKeys(512, 9)
	sum := Checksum(d)
	buf := trace.U64{Base: addr.NearBase, D: make([]uint64, 512)}
	MergeSortInto(nil, buf, farView(d), buf)
	checkSorted(t, "MergeSortInto(alias)", buf.D, sum)
}

func TestMergeSortStability(t *testing.T) {
	// Equal keys: output must equal sort.Slice result exactly (values
	// equal), trivially true for uint64; check duplicates preserved.
	d := []uint64{5, 3, 5, 1, 3, 3, 9, 0, 5}
	want := append([]uint64(nil), d...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	tmp := make([]uint64, len(d))
	MergeSortInPlace(nil, farView(d), trace.U64{Base: addr.NearBase, D: tmp})
	for i := range d {
		if d[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, d, want)
		}
	}
}

func TestQuickSort(t *testing.T) {
	for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 1000, 5000} {
		d := randKeys(n, uint64(n)*7+3)
		sum := Checksum(d)
		QuickSort(nil, farView(d))
		checkSorted(t, "QuickSort", d, sum)
	}
}

func TestQuickSortAdversarial(t *testing.T) {
	cases := [][]uint64{
		{},
		{1},
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
		{9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{^uint64(0), 0, ^uint64(0), 0, ^uint64(0)},
	}
	// Sorted, reverse-sorted and constant arrays of awkward lengths.
	for n := 17; n <= 200; n += 61 {
		asc := make([]uint64, n)
		desc := make([]uint64, n)
		same := make([]uint64, n)
		for i := range asc {
			asc[i] = uint64(i)
			desc[i] = uint64(n - i)
			same[i] = 42
		}
		cases = append(cases, asc, desc, same)
	}
	for i, d := range cases {
		sum := Checksum(d)
		QuickSort(nil, farView(d))
		if !IsSorted(d) || Checksum(d) != sum {
			t.Fatalf("case %d failed: %v", i, d)
		}
	}
}

func TestQuickSortProperty(t *testing.T) {
	f := func(d []uint64) bool {
		sum := Checksum(d)
		QuickSort(nil, farView(d))
		return IsSorted(d) && Checksum(d) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergeSortProperty(t *testing.T) {
	f := func(d []uint64) bool {
		sum := Checksum(d)
		tmp := make([]uint64, len(d))
		MergeSortInPlace(nil, farView(d), trace.U64{Base: addr.NearBase, D: tmp})
		return IsSorted(d) && Checksum(d) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInsertionSort(t *testing.T) {
	d := []uint64{5, 2, 9, 1, 7}
	insertionSort(nil, farView(d), 0, len(d))
	if !IsSorted(d) {
		t.Fatalf("insertionSort failed: %v", d)
	}
	// Partial range.
	e := []uint64{9, 5, 2, 8, 0}
	insertionSort(nil, farView(e), 1, 4)
	want := []uint64{9, 2, 5, 8, 0}
	for i := range e {
		if e[i] != want[i] {
			t.Fatalf("partial insertionSort: %v, want %v", e, want)
		}
	}
}

func TestBounds(t *testing.T) {
	d := []uint64{1, 3, 3, 3, 7, 9}
	a := farView(d)
	cases := []struct {
		key    uint64
		lb, ub int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 1}, {3, 1, 4}, {5, 4, 4}, {9, 5, 6}, {10, 6, 6},
	}
	for _, c := range cases {
		if got := lowerBound(nil, a, c.key); got != c.lb {
			t.Errorf("lowerBound(%d) = %d, want %d", c.key, got, c.lb)
		}
		if got := upperBound(nil, a, c.key); got != c.ub {
			t.Errorf("upperBound(%d) = %d, want %d", c.key, got, c.ub)
		}
	}
}

func TestBoundsProperty(t *testing.T) {
	f := func(d []uint64, key uint64) bool {
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		a := farView(d)
		lb, ub := lowerBound(nil, a, key), upperBound(nil, a, key)
		if lb > ub || lb < 0 || ub > len(d) {
			return false
		}
		for i := 0; i < lb; i++ {
			if d[i] >= key {
				return false
			}
		}
		for i := ub; i < len(d); i++ {
			if d[i] <= key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	d := randKeys(100, 1)
	sum := Checksum(d)
	d[50]++
	if Checksum(d) == sum {
		t.Error("checksum missed a mutation")
	}
	d[50]--
	// Permutation leaves it unchanged.
	d[0], d[99] = d[99], d[0]
	if Checksum(d) != sum {
		t.Error("checksum should be order-independent")
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]uint64{1}) || !IsSorted([]uint64{1, 1, 2}) {
		t.Error("IsSorted false negatives")
	}
	if IsSorted([]uint64{2, 1}) {
		t.Error("IsSorted false positive")
	}
}
