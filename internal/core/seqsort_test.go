package core

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestSeqSortSmallInput(t *testing.T) {
	// Input fits in the scratchpad: single leaf sort, depth 1.
	e := pureEnv(1, 64*units.KiB)
	a := e.AllocFar(1000)
	copy(a.D, randKeys(1000, 1))
	sum := Checksum(a.D)
	st := SeqScratchpadSort(e, a, SeqOptions{})
	checkSorted(t, "SeqSort small", a.D, sum)
	if st.Scans != 0 || st.LeafSorts != 1 || st.Depth != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSeqSortRecursive(t *testing.T) {
	// Input much larger than the scratchpad: at least one bucketizing scan.
	e := pureEnv(1, 16*units.KiB) // 2048 elements of scratchpad
	n := 1 << 14
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 2))
	sum := Checksum(a.D)
	st := SeqScratchpadSort(e, a, SeqOptions{SampleSize: 64})
	checkSorted(t, "SeqSort recursive", a.D, sum)
	if st.Scans < 1 {
		t.Errorf("expected a bucketizing scan: %+v", st)
	}
	if st.Depth < 2 {
		t.Errorf("expected recursion: %+v", st)
	}
	if st.Buckets == 0 || st.LeafSorts == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSeqSortQuicksortVariant(t *testing.T) {
	e := pureEnv(1, 16*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 3))
	sum := Checksum(a.D)
	SeqScratchpadSort(e, a, SeqOptions{Quicksort: true, SampleSize: 64})
	checkSorted(t, "SeqSort quicksort", a.D, sum)
}

func TestSeqSortDuplicates(t *testing.T) {
	e := pureEnv(1, 16*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	for i := range a.D {
		a.D[i] = uint64(i % 5)
	}
	sum := Checksum(a.D)
	SeqScratchpadSort(e, a, SeqOptions{SampleSize: 32})
	checkSorted(t, "SeqSort dup", a.D, sum)
}

func TestSeqSortAlreadySorted(t *testing.T) {
	e := pureEnv(1, 16*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	for i := range a.D {
		a.D[i] = uint64(i)
	}
	sum := Checksum(a.D)
	SeqScratchpadSort(e, a, SeqOptions{SampleSize: 32})
	checkSorted(t, "SeqSort sorted", a.D, sum)
}

func TestSeqSortRequiresSingleThread(t *testing.T) {
	e := pureEnv(2, 64*units.KiB)
	a := e.AllocFar(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for P != 1")
		}
	}()
	SeqScratchpadSort(e, a, SeqOptions{})
}

// TestLemma5SplitQuality validates the randomized analysis: with sample
// size m, the probability of a bad split (child > parent/sqrt(m)) is
// roughly e^{-sqrt(m)}, so good splits must dominate overwhelmingly.
func TestLemma5SplitQuality(t *testing.T) {
	e := pureEnv(1, 16*units.KiB)
	n := 1 << 15
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 44))
	st := SeqScratchpadSort(e, a, SeqOptions{SampleSize: 256})
	if !IsSorted(a.D) {
		t.Fatal("not sorted")
	}
	frac := float64(st.BadSplits) / float64(st.GoodSplits+st.BadSplits)
	// e^{-sqrt(256)} is astronomically small; allow generous slack for the
	// constant-factor differences of a real implementation.
	if frac > 0.05 {
		t.Errorf("bad-split fraction %.4f too high (stats %+v)", frac, st)
	}
}

// TestLemma5ScanCount checks the recursion depth stays within a small
// constant of log_m(N/M) + 1.
func TestLemma5ScanCount(t *testing.T) {
	e := pureEnv(1, 16*units.KiB) // group ≈ 800 elements with m=256
	n := 1 << 15
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 45))
	st := SeqScratchpadSort(e, a, SeqOptions{SampleSize: 256})
	// log_m(N/group): group ~ 768, N/group ~ 43, log_256(43) < 1, so depth
	// should be 2 (one scan) — allow up to 3 for sampling variance.
	want := 1 + math.Ceil(math.Log(float64(n)/768)/math.Log(256))
	if float64(st.Depth) > want+1 {
		t.Errorf("depth %d exceeds Lemma 5 expectation %v (stats %+v)", st.Depth, want, st)
	}
}

func TestSeqSortTracedTheorem6Shape(t *testing.T) {
	// Block-transfer validation at the trace level: the sequential sort's
	// far traffic should scale ~linearly in N while the input exceeds the
	// scratchpad by a constant factor (a fixed number of scans).
	run := func(n int) uint64 {
		e := tracedEnv(1, 16*units.KiB)
		a := e.AllocFar(n)
		copy(a.D, randKeys(n, uint64(n)))
		SeqScratchpadSort(e, a, SeqOptions{SampleSize: 64})
		if !IsSorted(a.D) {
			t.Fatal("not sorted")
		}
		return e.Rec.Finish().Count().Far()
	}
	f1, f2 := run(1<<13), run(1<<14)
	ratio := float64(f2) / float64(f1)
	if ratio < 1.6 || ratio > 3.2 {
		t.Errorf("far traffic ratio for 2x input = %.2f, want ~2 (f1=%d f2=%d)", ratio, f1, f2)
	}
}
