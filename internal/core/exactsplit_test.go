package core

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/units"
)

// checkSelection verifies the defining property of exact selection: the
// union of the per-run prefixes is exactly the multiset of the r smallest
// elements.
func checkSelection(t *testing.T, runs []trace.U64, pos []int, r int) {
	t.Helper()
	var all, prefix []uint64
	sum := 0
	for i, run := range runs {
		if pos[i] < 0 || pos[i] > run.Len() {
			t.Fatalf("pos[%d] = %d out of range [0,%d]", i, pos[i], run.Len())
		}
		all = append(all, run.D...)
		prefix = append(prefix, run.D[:pos[i]]...)
		sum += pos[i]
	}
	if sum != r {
		t.Fatalf("selection covers %d elements, want %d", sum, r)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	sort.Slice(prefix, func(a, b int) bool { return prefix[a] < prefix[b] })
	for i := range prefix {
		if prefix[i] != all[i] {
			t.Fatalf("prefix[%d] = %d, want %d (not the r smallest)", i, prefix[i], all[i])
		}
	}
}

func TestExactSelectBasic(t *testing.T) {
	runs, all := sortedRuns(1, []int{10, 20, 5})
	for _, r := range []int{0, 1, 5, 17, 34, len(all)} {
		pos := ExactSelect(nil, runs, r)
		checkSelection(t, runs, pos, r)
	}
}

func TestExactSelectEmptyAndSkewedRuns(t *testing.T) {
	runs, all := sortedRuns(2, []int{0, 100, 0, 1, 0})
	for r := 0; r <= len(all); r += 13 {
		checkSelection(t, runs, ExactSelect(nil, runs, r), r)
	}
}

func TestExactSelectAllEqual(t *testing.T) {
	runs := []trace.U64{
		{Base: addr.FarBase, D: []uint64{7, 7, 7}},
		{Base: addr.FarBase + 1024, D: []uint64{7, 7}},
		{Base: addr.FarBase + 2048, D: []uint64{7, 7, 7, 7}},
	}
	for r := 0; r <= 9; r++ {
		checkSelection(t, runs, ExactSelect(nil, runs, r), r)
	}
}

func TestExactSelectRankBoundsPanic(t *testing.T) {
	runs, _ := sortedRuns(3, []int{4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactSelect(nil, runs, 5)
}

func TestExactSelectProperty(t *testing.T) {
	f := func(raw [][]uint64, rankRaw uint16) bool {
		runs := make([]trace.U64, len(raw))
		total := 0
		base := addr.FarBase
		for i, d := range raw {
			d := append([]uint64(nil), d...)
			sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
			runs[i] = trace.U64{Base: base, D: d}
			base += addr.Addr(len(d)*8 + 64)
			total += len(d)
		}
		if total == 0 {
			return true
		}
		r := int(rankRaw) % (total + 1)
		pos := ExactSelect(nil, runs, r)
		var all, prefix []uint64
		sum := 0
		for i, run := range runs {
			all = append(all, run.D...)
			prefix = append(prefix, run.D[:pos[i]]...)
			sum += pos[i]
		}
		if sum != r {
			return false
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		sort.Slice(prefix, func(a, b int) bool { return prefix[a] < prefix[b] })
		for i := range prefix {
			if prefix[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExactCutsBalanced(t *testing.T) {
	// Exact cuts must produce perfectly balanced parts (±1) even on
	// pathologically skewed keys, where sampled splitting collapses.
	runs := make([]trace.U64, 8)
	base := addr.FarBase
	for i := range runs {
		d := make([]uint64, 1000)
		for j := range d {
			d[j] = 42 // all keys identical: the sampling worst case
		}
		runs[i] = trace.U64{Base: base, D: d}
		base += addr.Addr(8 * 1024)
	}
	const p = 16
	cuts := ExactCuts(nil, runs, p)
	want := 8 * 1000 / p
	for t2 := 0; t2 < p; t2++ {
		if got := PartLen(cuts, t2); got < want-1 || got > want+1 {
			t.Errorf("part %d has %d elements, want %d±1", t2, got, want)
		}
	}
}

func TestGNUSortExact(t *testing.T) {
	for _, n := range []int{100, 1 << 13, 1 << 15} {
		e := pureEnv(8, units.MiB)
		a := e.AllocFar(n)
		copy(a.D, randKeys(n, uint64(n)+5))
		sum := Checksum(a.D)
		GNUSortOpt(e, a, GNUOptions{Exact: true})
		checkSorted(t, "GNUSort exact", a.D, sum)
	}
}

func TestGNUSortExactSkewed(t *testing.T) {
	// Constant keys: sampled splitting degenerates to one giant part;
	// exact splitting must still sort (trivially) with balanced parts.
	e := pureEnv(8, units.MiB)
	n := 1 << 14
	a := e.AllocFar(n)
	for i := range a.D {
		a.D[i] = uint64(i % 2)
	}
	sum := Checksum(a.D)
	GNUSortOpt(e, a, GNUOptions{Exact: true})
	checkSorted(t, "GNUSort exact skew", a.D, sum)
}

func TestPMMergeExactMatchesSampled(t *testing.T) {
	mk := func(exact bool) []uint64 {
		e := pureEnv(4, units.MiB)
		n := 1 << 12
		a := e.AllocFar(n)
		copy(a.D, randKeys(n, 17))
		GNUSortOpt(e, a, GNUOptions{Exact: exact})
		return a.D
	}
	x, s := mk(true), mk(false)
	for i := range x {
		if x[i] != s[i] {
			t.Fatalf("exact and sampled sorts disagree at %d", i)
		}
	}
}
