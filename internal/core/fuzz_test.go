package core

import (
	"encoding/binary"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/units"
)

// Fuzz targets complement the testing/quick properties: the native fuzzer
// mutates raw byte corpora toward branch coverage, which finds boundary
// bugs (equal keys at part boundaries, degenerate run shapes) that
// uniform random generation rarely hits. `go test` runs the seed corpus;
// `go test -fuzz=FuzzX` explores further.

// decodeKeys turns fuzz bytes into a key slice with deliberately high
// collision probability (keys drawn from few distinct byte patterns).
func decodeKeys(data []byte) []uint64 {
	n := len(data) / 2
	if n == 0 {
		return nil
	}
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		b := data[2*i]
		mode := data[2*i+1] % 4
		switch mode {
		case 0:
			keys[i] = uint64(b)
		case 1:
			keys[i] = uint64(b) << 56
		case 2:
			keys[i] = ^uint64(0) - uint64(b)
		default:
			keys[i] = uint64(b) * 0x0101010101010101
		}
	}
	return keys
}

func FuzzNMSort(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1, 3, 2, 255, 3})
	f.Add(make([]byte, 300))
	f.Add([]byte("the quick brown fox jumps over the lazy dog repeatedly and then some"))
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := decodeKeys(data)
		if len(keys) > 1<<14 {
			keys = keys[:1<<14]
		}
		p := 1 + len(data)%7
		e := NewEnv(p, 32*units.KiB, nil, 1)
		a := e.AllocFar(len(keys))
		copy(a.D, keys)
		sum := Checksum(a.D)
		NMSort(e, a, NMOptions{})
		if !IsSorted(a.D) || Checksum(a.D) != sum {
			t.Fatalf("NMSort corrupted %d keys (p=%d)", len(keys), p)
		}
	})
}

func FuzzGNUSortExact(f *testing.F) {
	f.Add([]byte{9, 1, 9, 1, 9, 1, 9, 1})
	f.Add([]byte{0, 0, 255, 2, 128, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := decodeKeys(data)
		if len(keys) > 1<<13 {
			keys = keys[:1<<13]
		}
		p := 1 + len(data)%9
		e := NewEnv(p, units.MiB, nil, 1)
		a := e.AllocFar(len(keys))
		copy(a.D, keys)
		sum := Checksum(a.D)
		GNUSortOpt(e, a, GNUOptions{Exact: true})
		if !IsSorted(a.D) || Checksum(a.D) != sum {
			t.Fatalf("exact GNUSort corrupted %d keys (p=%d)", len(keys), p)
		}
	})
}

func FuzzExactSelect(f *testing.F) {
	f.Add([]byte{4, 1, 2, 3, 4, 5, 6, 7, 8}, uint16(3))
	f.Add([]byte{0, 0, 0, 0}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, rank uint16) {
		if len(data) == 0 {
			return
		}
		// First byte: run count; remainder: keys distributed round-robin.
		k := int(data[0])%6 + 1
		keys := decodeKeys(data[1:])
		runsD := make([][]uint64, k)
		for i, v := range keys {
			runsD[i%k] = append(runsD[i%k], v)
		}
		runs := make([]trace.U64, k)
		base := addr.FarBase
		total := 0
		for i, d := range runsD {
			sortInPlaceU64(d)
			runs[i] = trace.U64{Base: base, D: d}
			base += addr.Addr(len(d)*8 + 64)
			total += len(d)
		}
		r := int(rank) % (total + 1)
		pos := ExactSelect(nil, runs, r)
		sum := 0
		for i := range pos {
			if pos[i] < 0 || pos[i] > runs[i].Len() {
				t.Fatalf("pos out of range")
			}
			sum += pos[i]
		}
		if sum != r {
			t.Fatalf("selected %d elements, want %d", sum, r)
		}
		// Prefix-max must not exceed suffix-min (downward closure).
		var prefMax uint64
		sufMin := ^uint64(0)
		havePref, haveSuf := false, false
		for i, run := range runs {
			if pos[i] > 0 {
				if v := run.D[pos[i]-1]; !havePref || v > prefMax {
					prefMax, havePref = v, true
				}
			}
			if pos[i] < run.Len() {
				if v := run.D[pos[i]]; !haveSuf || v < sufMin {
					sufMin, haveSuf = v, true
				}
			}
		}
		if havePref && haveSuf && prefMax > sufMin {
			t.Fatalf("selection not downward closed: prefix max %d > suffix min %d", prefMax, sufMin)
		}
	})
}

func sortInPlaceU64(a []uint64) {
	// Insertion sort: fuzz runs are tiny.
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

func FuzzQuickSortMatchesMergeSort(f *testing.F) {
	f.Add([]byte{5, 4, 3, 2, 1, 0, 255, 254})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		n := len(data) / 8
		q := make([]uint64, n)
		for i := range q {
			q[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		m := append([]uint64(nil), q...)
		QuickSort(nil, farView(q))
		tmp := make([]uint64, n)
		MergeSortInPlace(nil, farView(m), trace.U64{Base: addr.NearBase, D: tmp})
		for i := range q {
			if q[i] != m[i] {
				t.Fatalf("sorts disagree at %d", i)
			}
		}
	})
}
