package core

import "repro/internal/trace"

// MultiwayMergeSort sorts a using tmp as a ping-pong buffer via Z/B-way
// merge rounds — the algorithm of Corollary 3 ("multi-way merge sort with
// a branching factor of Z/B", the GNU library sort the paper calls inside
// the scratchpad). Initial runs of runElems elements are formed with the
// cache-resident binary mergesort; thereafter each round merges fanout
// consecutive runs with a loser tree, multiplying the run length by fanout
// and costing one read+write pass over the data. Total passes:
// 1 + ceil(log_fanout(n/runElems)) — the log_{Z/B}(x/B) of the theory.
//
// The sorted result ends in either a or tmp; the returned view says which.
func MultiwayMergeSort(tp *trace.TP, a, tmp trace.U64, runElems, fanout int) trace.U64 {
	n := a.Len()
	if tmp.Len() != n {
		panic("core: MultiwayMergeSort buffer length mismatch")
	}
	if runElems < 2 {
		runElems = 2
	}
	if fanout < 2 {
		fanout = 2
	}
	if n <= 1 {
		return a
	}

	// Form cache-resident initial runs in place.
	for lo := 0; lo < n; lo += runElems {
		hi := lo + runElems
		if hi > n {
			hi = n
		}
		MergeSortInPlace(tp, a.Slice(lo, hi), tmp.Slice(lo, hi))
	}

	cur, other := a, tmp
	for runLen := runElems; runLen < n; runLen *= fanout {
		// One merge round: groups of fanout runs stream cur -> other.
		for lo := 0; lo < n; lo += runLen * fanout {
			groupHi := lo + runLen*fanout
			if groupHi > n {
				groupHi = n
			}
			runs := make([]trace.U64, 0, fanout)
			for r := lo; r < groupHi; r += runLen {
				rHi := r + runLen
				if rHi > groupHi {
					rHi = groupHi
				}
				runs = append(runs, cur.Slice(r, rHi))
			}
			if len(runs) == 1 {
				// A lone tail run still has to change buffers to keep the
				// round's output consistent.
				trace.Copy(tp, other.Slice(lo, groupHi), runs[0])
				continue
			}
			MultiwayMerge(tp, runs, other.Slice(lo, groupHi))
		}
		cur, other = other, cur
	}
	return cur
}
