package core
