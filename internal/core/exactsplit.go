package core

import "repro/internal/trace"

// Exact multisequence selection — the splitting strategy of GNU parallel
// mode's exact variant (multiseq_selection.h in the MCSTL the paper cites).
// Given k sorted runs and a global rank r, ExactSelect finds per-run cut
// positions pos with Σpos = r such that every element before a cut is <=
// every element after any cut: the prefix union of the cuts is exactly the
// r smallest elements (ties broken by run index, making the answer unique
// and the parallel merge parts deterministic).
//
// The implementation binary-searches the value domain using the runs' own
// elements as candidates: each iteration picks the median of the runs'
// probe values, counts how many elements fall below it, and narrows
// per-run search intervals — O(k·log(maxlen)·log k) probes overall,
// troughly the classic bound, and every probe is a traced access so the
// splitting cost shows up in the experiments honestly.

// ExactSelect returns cut positions for global rank r over the sorted
// runs. 0 <= r <= Σlen is required.
func ExactSelect(tp *trace.TP, runs []trace.U64, r int) []int {
	k := len(runs)
	lo := make([]int, k) // per-run search interval [lo, hi]
	hi := make([]int, k)
	total := 0
	for i, run := range runs {
		hi[i] = run.Len()
		total += run.Len()
	}
	if r < 0 || r > total {
		panic("core: ExactSelect rank out of range")
	}

	// Invariant: the answer pos satisfies lo[i] <= pos[i] <= hi[i] for all
	// runs, and Σlo <= r <= Σhi. Narrow until every interval is empty.
	for {
		sumLo, sumHi := 0, 0
		for i := range runs {
			sumLo += lo[i]
			sumHi += hi[i]
		}
		if sumLo == sumHi {
			break
		}

		// Candidate pivot: the (value, run) pair at each open interval's
		// midpoint; choose the weighted median candidate so intervals
		// shrink geometrically.
		type cand struct {
			v      uint64
			run    int
			weight int
		}
		var cands []cand
		for i, run := range runs {
			if lo[i] < hi[i] {
				mid := (lo[i] + hi[i]) / 2
				cands = append(cands, cand{v: run.Get(tp, mid), run: i, weight: hi[i] - lo[i]})
				tp.Compare(1)
			}
		}
		// Weighted-median selection over the (few) candidates: sort by
		// (value, run) with insertion sort — k is small.
		for a := 1; a < len(cands); a++ {
			c := cands[a]
			b := a - 1
			for b >= 0 && (cands[b].v > c.v || (cands[b].v == c.v && cands[b].run > c.run)) {
				cands[b+1] = cands[b]
				b--
			}
			cands[b+1] = c
			tp.Compare(int64(a - b))
		}
		half := 0
		for _, c := range cands {
			half += c.weight
		}
		half /= 2
		sel := cands[0]
		acc := 0
		for _, c := range cands {
			acc += c.weight
			if acc > half {
				sel = c
				break
			}
		}

		// Partition every run against (sel.v, sel.run): positions strictly
		// before the pivot in the global tie-broken order.
		cut := make([]int, k)
		sum := 0
		for i, run := range runs {
			var c int
			if i < sel.run {
				c = clampSearch(tp, run, lo[i], hi[i], sel.v, true) // <= v
			} else if i == sel.run {
				c = (lo[i] + hi[i]) / 2 // the pivot's own position
			} else {
				c = clampSearch(tp, run, lo[i], hi[i], sel.v, false) // < v
			}
			cut[i] = c
			sum += c
		}
		if sum < r {
			// The answer lies at or above the pivot in every run.
			for i := range runs {
				if cut[i]+boolInt(i == sel.run) > lo[i] {
					lo[i] = cut[i]
					if i == sel.run {
						lo[i]++
					}
					if lo[i] > hi[i] {
						lo[i] = hi[i]
					}
				}
			}
		} else {
			// The answer lies at or below the pivot in every run.
			for i := range runs {
				if cut[i] < hi[i] {
					hi[i] = cut[i]
					if hi[i] < lo[i] {
						hi[i] = lo[i]
					}
				}
			}
		}
	}

	// Σlo may not equal r exactly when equal keys straddle the boundary;
	// distribute the remainder among runs whose next element equals the
	// boundary value, in run order (the tie-break).
	sum := 0
	for i := range runs {
		sum += lo[i]
	}
	if sum < r {
		// Find the smallest next value among the runs.
		for sum < r {
			best := -1
			var bestV uint64
			for i, run := range runs {
				if lo[i] < run.Len() {
					v := run.Get(tp, lo[i])
					tp.Compare(1)
					if best == -1 || v < bestV {
						best, bestV = i, v
					}
				}
			}
			if best == -1 {
				panic("core: ExactSelect ran out of elements")
			}
			lo[best]++
			sum++
		}
	}
	return lo
}

// clampSearch finds, within run[lo:hi], the first index whose element is
// >= v (orEq=false) or > v (orEq=true), returning it as an absolute index.
func clampSearch(tp *trace.TP, run trace.U64, lo, hi int, v uint64, orEq bool) int {
	sub := run.Slice(lo, hi)
	var off int
	if orEq {
		off = upperBound(tp, sub, v)
	} else {
		off = lowerBound(tp, sub, v)
	}
	return lo + off
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ExactCuts computes the full (p+1) x k cut table for p exactly balanced
// output parts — the drop-in alternative to SplitRuns for callers that
// want GNU's exact splitting: part t receives exactly its fair share of
// elements (±1), regardless of key skew.
func ExactCuts(tp *trace.TP, runs []trace.U64, p int) [][]int {
	k := len(runs)
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	cuts := make([][]int, p+1)
	cuts[0] = make([]int, k)
	for t := 1; t < p; t++ {
		cuts[t] = ExactSelect(tp, runs, t*total/p)
	}
	last := make([]int, k)
	for i, r := range runs {
		last[i] = r.Len()
	}
	cuts[p] = last
	return cuts
}
