package core

import "repro/internal/trace"

// This file implements k-way merging with a tournament (loser) tree and the
// sample-based splitter selection that lets p threads merge disjoint output
// ranges in parallel — the two primitives of the GNU parallel multiway
// mergesort (MCSTL) the paper uses both as its baseline and as the
// in-scratchpad sort.

// LoserTree merges k sorted runs. The tree itself is tiny (2k ints) and
// lives in registers/L1; only the run cursor advances touch traced memory.
type LoserTree struct {
	runs []trace.U64
	pos  []int
	tree []int    // internal nodes: loser run indices; tree[0] = winner
	key  []uint64 // current head key per run (sentinel ^0 when exhausted)
	done []bool
	k    int
	left int // total elements remaining
}

// NewLoserTree builds a tree over the given runs, loading each run's head
// through tp.
func NewLoserTree(tp *trace.TP, runs []trace.U64) *LoserTree {
	k := len(runs)
	if k == 0 {
		panic("core: LoserTree needs at least one run")
	}
	t := &LoserTree{
		runs: runs,
		pos:  make([]int, k),
		tree: make([]int, k),
		key:  make([]uint64, k),
		done: make([]bool, k),
		k:    k,
	}
	for i, r := range runs {
		t.left += r.Len()
		if r.Len() == 0 {
			t.done[i] = true
			t.key[i] = ^uint64(0)
		} else {
			t.key[i] = r.Get(tp, 0)
		}
	}
	t.rebuild(tp)
	return t
}

// rebuild initializes the loser tree by playing all runs (O(k log k)
// comparisons, charged to tp).
func (t *LoserTree) rebuild(tp *trace.TP) {
	winner := make([]int, 2*t.k)
	for i := 0; i < t.k; i++ {
		winner[t.k+i] = i
	}
	for n := t.k - 1; n >= 1; n-- {
		a, b := winner[2*n], winner[2*n+1]
		tp.Compare(1)
		if t.less(a, b) {
			winner[n], t.tree[n] = a, b
		} else {
			winner[n], t.tree[n] = b, a
		}
	}
	t.tree[0] = winner[1]
}

// less orders runs by (live, key, run index) so ties resolve
// deterministically and — crucially — an exhausted run (whose key is the
// ^0 sentinel) never beats a live run holding a real ^0 value.
func (t *LoserTree) less(a, b int) bool {
	if t.done[a] != t.done[b] {
		return !t.done[a]
	}
	if t.key[a] != t.key[b] {
		return t.key[a] < t.key[b]
	}
	return a < b
}

// Len returns how many elements remain.
func (t *LoserTree) Len() int { return t.left }

// Next pops the smallest remaining element. Calling Next on an empty tree
// panics.
func (t *LoserTree) Next(tp *trace.TP) uint64 {
	if t.left == 0 {
		panic("core: Next on drained LoserTree")
	}
	w := t.tree[0]
	out := t.key[w]
	t.left--

	// Advance the winner's cursor.
	t.pos[w]++
	if t.pos[w] >= t.runs[w].Len() {
		t.done[w] = true
		t.key[w] = ^uint64(0)
	} else {
		t.key[w] = t.runs[w].Get(tp, t.pos[w])
	}

	// Replay the path from leaf w to the root.
	cur := w
	for n := (t.k + w) / 2; n >= 1; n /= 2 {
		tp.Compare(1)
		if t.less(t.tree[n], cur) {
			cur, t.tree[n] = t.tree[n], cur
		}
	}
	t.tree[0] = cur
	return out
}

// MergeInto drains the tree into dst, which must have exactly Len()
// capacity remaining from offset 0.
func (t *LoserTree) MergeInto(tp *trace.TP, dst trace.U64) {
	if dst.Len() != t.left {
		panic("core: MergeInto destination length mismatch")
	}
	for i := 0; t.left > 0; i++ {
		dst.Set(tp, i, t.Next(tp))
	}
}

// MultiwayMerge merges the sorted runs into dst (len = sum of run lens).
func MultiwayMerge(tp *trace.TP, runs []trace.U64, dst trace.U64) {
	t := NewLoserTree(tp, runs)
	t.MergeInto(tp, dst)
}

// sampleRuns has each conceptual position i of out filled with an evenly
// spaced sample from run r — the splitter-sampling step. The caller decides
// which thread loads which run.
func sampleRun(tp *trace.TP, run trace.U64, out trace.U64, perRun int) {
	n := run.Len()
	for s := 0; s < perRun; s++ {
		var v uint64
		if n == 0 {
			v = ^uint64(0)
		} else {
			// Evenly spaced, offset to avoid always sampling index 0.
			idx := (2*s + 1) * n / (2 * perRun)
			if idx >= n {
				idx = n - 1
			}
			v = run.Get(tp, idx)
		}
		out.Set(tp, s, v)
	}
}

// SplitRuns computes, for each of p output parts, the half-open slice of
// every run that part merges, using sorted sample splitters. splitters has
// p-1 values; part t receives run elements in [splitters[t-1], splitters[t])
// by value (ties broken by position via lowerBound consistency). The
// returned cuts[t][r] is the starting index of part t in run r, with a
// final row cuts[p][r] = len(run r).
func SplitRuns(tp *trace.TP, runs []trace.U64, splitters []uint64) [][]int {
	p := len(splitters) + 1
	cuts := make([][]int, p+1)
	cuts[0] = make([]int, len(runs))
	for t := 1; t < p; t++ {
		cuts[t] = make([]int, len(runs))
		for r, run := range runs {
			cuts[t][r] = lowerBound(tp, run, splitters[t-1])
		}
	}
	cuts[p] = make([]int, len(runs))
	for r, run := range runs {
		cuts[p][r] = run.Len()
	}
	return cuts
}

// PartRuns materializes part t's run slices from SplitRuns output.
func PartRuns(runs []trace.U64, cuts [][]int, t int) []trace.U64 {
	parts := make([]trace.U64, 0, len(runs))
	for r, run := range runs {
		lo, hi := cuts[t][r], cuts[t+1][r]
		if hi < lo {
			// Sample splitters are monotone, and lowerBound on a sorted
			// run is monotone in the key, so this cannot happen; guard
			// against silent corruption anyway.
			panic("core: non-monotone run cuts")
		}
		parts = append(parts, run.Slice(lo, hi))
	}
	return parts
}

// PartLen returns the total number of elements part t merges.
func PartLen(cuts [][]int, t int) int {
	n := 0
	for r := range cuts[t] {
		n += cuts[t+1][r] - cuts[t][r]
	}
	return n
}
