package core

import (
	"repro/internal/par"
	"repro/internal/trace"
)

// GNUOptions tunes the baseline sort.
type GNUOptions struct {
	// Exact uses exact multisequence selection for the merge splitters
	// (GNU parallel mode's _GLIBCXX... exact-splitting variant) instead of
	// the default sampling strategy.
	Exact bool
}

// GNUSort sorts a in place using the paper's baseline: a GNU-parallel-style
// multiway mergesort (MCSTL) that uses only far memory. Each of the p
// threads sorts a static span into a run, the runs are cooperatively merged
// along sampled splitters into a far-memory buffer, and the result is
// copied back — the structure of __gnu_parallel::sort with the sampling
// splitter strategy.
//
// This is "the fastest CPU-based multithreaded sort" of Section V and the
// comparison column of Table I; it never touches the scratchpad.
func GNUSort(e *Env, a trace.U64) { GNUSortOpt(e, a, GNUOptions{}) }

// GNUSortOpt is GNUSort with explicit options.
func GNUSortOpt(e *Env, a trace.U64, opt GNUOptions) {
	n := a.Len()
	if n <= 1 {
		return
	}
	buf := e.AllocFar(n)
	sample := e.AllocFar(SampleLen(e.P))
	sampleTmp := e.AllocFar(SampleLen(e.P))

	// Dst aliases Tmp: run formation scratch is dead before merging.
	bar := par.NewBarrier(e.P)
	ps := NewPMSort(e.P, a, buf, buf, sample, sampleTmp, bar)
	ps.exact = opt.Exact
	ps.phases = true // top-level sort: mark run-formation and merge phases
	par.RunPoison(e.P, e.Rec, bar, func(tid int, tp *trace.TP) {
		ps.Run(tid, tp)
		// Copy the merged result back so the sort is in-place for the
		// caller, as __gnu_parallel::sort is.
		if tid == 0 {
			tp.Phase("copy-back")
		}
		lo, hi := par.Span(n, e.P, tid)
		trace.Copy(tp, a.Slice(lo, hi), buf.Slice(lo, hi))
	})
}
