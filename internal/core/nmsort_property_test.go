package core

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestNMSortGeometryProperty drives NMSort across randomized geometry
// (input size, thread count, scratchpad size, bucket count, oversampling,
// DMA on/off) and requires a correct sort every time.
func TestNMSortGeometryProperty(t *testing.T) {
	f := func(nRaw uint16, pRaw, mRaw, bRaw, ovRaw uint8, dma bool) bool {
		n := int(nRaw)%20000 + 2
		p := int(pRaw)%12 + 1
		m := units.Bytes(int(mRaw)%96+32) * units.KiB
		opt := NMOptions{DMA: dma}
		if bRaw%2 == 0 {
			opt.Buckets = int(bRaw)%120 + 2
		}
		if ovRaw%2 == 0 {
			opt.Oversample = int(ovRaw)%14 + 1
		}
		e := NewEnv(p, m, nil, uint64(nRaw)+1)
		a := e.AllocFar(n)
		xrand.New(uint64(n * p)).Keys(a.D)
		sum := Checksum(a.D)
		NMSort(e, a, opt)
		if !IsSorted(a.D) || Checksum(a.D) != sum {
			t.Logf("n=%d p=%d m=%v opt=%+v", n, p, m, opt)
			return false
		}
		return e.SP.InUse() == 0 // no scratchpad leaks either
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAllSortsAgreeOnAllDistributions cross-checks every sorting algorithm
// against every key distribution: identical outputs across algorithms.
func TestAllSortsAgreeOnAllDistributions(t *testing.T) {
	const n = 1 << 12
	for _, d := range workload.All() {
		keys := make([]uint64, n)
		workload.Fill(keys, d, 77)

		var ref []uint64
		run := func(name string, sortFn func(e *Env, a trace.U64)) {
			t.Helper()
			e := NewEnv(4, 48*units.KiB, nil, 9)
			a := e.AllocFar(n)
			copy(a.D, keys)
			sum := Checksum(a.D)
			sortFn(e, a)
			checkSorted(t, string(d)+"/"+name, a.D, sum)
			if ref == nil {
				ref = append([]uint64(nil), a.D...)
				return
			}
			for i := range ref {
				if a.D[i] != ref[i] {
					t.Fatalf("%s/%s: disagrees with reference at %d", d, name, i)
				}
			}
		}
		run("gnusort", func(e *Env, a trace.U64) { GNUSort(e, a) })
		run("gnusort-exact", func(e *Env, a trace.U64) { GNUSortOpt(e, a, GNUOptions{Exact: true}) })
		run("nmsort", func(e *Env, a trace.U64) { NMSort(e, a, NMOptions{}) })
		run("nmsort-dma", func(e *Env, a trace.U64) { NMSort(e, a, NMOptions{DMA: true}) })
		run("nmsort-scatter", func(e *Env, a trace.U64) { NMSortSmallAppends(e, a, NMOptions{}) })
		run("parsort", func(e *Env, a trace.U64) { ParScratchpadSort(e, a, SeqOptions{SampleSize: 64}) })
	}
}
