package core

import (
	"math"

	"repro/internal/addr"
	"repro/internal/trace"
)

// This file implements the sequential scratchpad sorting algorithm of
// Section III: recursively bucketize the input with a random
// scratchpad-resident sample X of m = Θ(M/B) pivots until every bucket fits
// in the scratchpad, then sort each bucket inside the scratchpad. It is the
// algorithm Theorem 6 analyzes; SeqStats captures the split-quality data
// behind Lemma 5's high-probability bound on the recursion depth.

// SeqStats instruments one SeqScratchpadSort run.
type SeqStats struct {
	Depth      int // deepest recursion level (1 = no bucketizing needed)
	Scans      int // bucketizing scans performed (Lemma 5 bounds these)
	Buckets    int // buckets created across all scans
	GoodSplits int // child at most parent/sqrt(m) (Lemma 5's good splits)
	BadSplits  int // child larger than parent/sqrt(m)
	LeafSorts  int // scratchpad-resident sorts at the recursion leaves
}

// SeqOptions tunes the sequential sort.
type SeqOptions struct {
	// Quicksort uses the in-place quicksort of Corollary 7 for
	// scratchpad-resident sorting instead of the multiway mergesort of
	// Corollary 3.
	Quicksort bool
	// SampleSize overrides m = Θ(M/B) (0 = M/B exactly, the paper's
	// choice with B the 64-byte line).
	SampleSize int
	// RunElems is the initial (cache-resident) run length of the multiway
	// mergesort (0 = 128, roughly Z/2 in elements for the scaled
	// hierarchy).
	RunElems int
	// Fanout is the merge branching factor (0 = 8). The theory's Z/B
	// fanout needs exactly Z of cache for the cursors alone; a practical
	// merge keeps fanout near Z/4B so cursor lines survive between
	// touches.
	Fanout int
}

// SeqScratchpadSort sorts a in place using one processor and the
// scratchpad. The environment's thread count must be 1: this is the
// Section III sequential algorithm (Section IV parallelizes it as NMsort).
func SeqScratchpadSort(e *Env, a trace.U64, opt SeqOptions) SeqStats {
	if e.P != 1 {
		panic("core: SeqScratchpadSort is the sequential algorithm; use Env with P=1")
	}
	var st SeqStats
	n := a.Len()
	if n <= 1 {
		st.Depth = 1
		return st
	}

	m := opt.SampleSize
	if m == 0 {
		m = int(e.M / 64) // m = M/B with the 64-byte line as B
	}
	if m < 2 {
		m = 2
	}

	// Scratchpad layout: a resident pivot area (m + scratch) plus two
	// group buffers for ingest/sort. The group size is what remains.
	group := (e.SPElems() - 2*m) / 2
	if group < 2 {
		panic("core: scratchpad too small for the sequential sort")
	}
	spA := e.MustAllocSP(group)
	spB := e.MustAllocSP(group)
	spX := e.MustAllocSP(m)
	spXT := e.MustAllocSP(m)

	runElems, fanout := opt.RunElems, opt.Fanout
	if runElems == 0 {
		runElems = 128
	}
	if fanout == 0 {
		fanout = 8
	}
	tp := e.Rec.Thread(0)
	s := &seqSorter{e: e, tp: tp, spA: spA, spB: spB, spX: spX, spXT: spXT,
		m: m, group: group, quick: opt.Quicksort,
		runElems: runElems, fanout: fanout, st: &st}
	s.sort(a, 1)

	e.FreeSP(spA.Base)
	e.FreeSP(spB.Base)
	e.FreeSP(spX.Base)
	e.FreeSP(spXT.Base)
	return st
}

type seqSorter struct {
	e         *Env
	tp        *trace.TP
	spA, spB  trace.U64
	spX, spXT trace.U64
	m, group  int
	quick     bool
	runElems  int
	fanout    int
	st        *SeqStats
	rngStream uint64
}

// spSort sorts the scratchpad-resident view in (backed by spA) and returns
// the view holding the sorted data, using the Corollary 3 multiway
// mergesort or the Corollary 7 quicksort.
func (s *seqSorter) spSort(in trace.U64, tmp trace.U64) trace.U64 {
	if s.quick {
		QuickSort(s.tp, in)
		return in
	}
	return MultiwayMergeSort(s.tp, in, tmp, s.runElems, s.fanout)
}

// sort recursively sorts the far-memory view a.
func (s *seqSorter) sort(a trace.U64, depth int) {
	if depth > s.st.Depth {
		s.st.Depth = depth
	}
	n := a.Len()
	if n <= 1 {
		return
	}

	// Base case: the bucket fits in a scratchpad group buffer — ingest,
	// sort inside the scratchpad, write back (Corollary 3).
	if n <= s.group {
		s.st.LeafSorts++
		in := s.spA.Slice(0, n)
		trace.Copy(s.tp, in, a)
		sorted := s.spSort(in, s.spB.Slice(0, n))
		trace.Copy(s.tp, a, sorted)
		return
	}

	// Choose and sort the sample X in the scratchpad (Section III-A).
	s.st.Scans++
	s.rngStream++
	rng := s.e.RNG(s.rngStream)
	for i := 0; i < s.m; i++ {
		s.spX.Set(s.tp, i, a.Get(s.tp, rng.Intn(n)))
	}
	pivotsV := s.spSort(s.spX, s.spXT)
	// Deduplicate the sorted sample in place. The paper assumes distinct
	// elements "but this assumption can be removed": we remove it with
	// three-way splits — each distinct pivot value also gets an
	// equal-to-pivot bucket that is sorted by construction and never
	// recursed, so duplicate-heavy inputs always make progress.
	q := 1
	for i := 1; i < s.m; i++ {
		v := pivotsV.Get(s.tp, i)
		s.tp.Compare(1)
		if v != pivotsV.Get(s.tp, q-1) {
			pivotsV.Set(s.tp, q, v)
			q++
		}
	}

	// Bucketizing scan (Section III-B): ingest groups, sort them against
	// the resident sample, and append each segment to its bucket's own
	// piece of DRAM. Bucket layout: 2i = keys strictly below pivot i (and
	// above pivot i-1), 2i+1 = keys equal to pivot i, 2q = keys above the
	// last pivot. Equal buckets are sorted by construction.
	nb := 2*q + 1
	buckets := make([]growU64, nb)
	for b := range buckets {
		// Address space is over-committed (far memory is arbitrarily
		// large in the model); native backing grows with actual content.
		buckets[b] = growU64{base: s.e.Far.Alloc(uint64(n)*8, 64)}
	}
	for lo := 0; lo < n; lo += s.group {
		hi := lo + s.group
		if hi > n {
			hi = n
		}
		g := hi - lo
		in := s.spA.Slice(0, g)
		trace.Copy(s.tp, in, a.Slice(lo, hi))
		sorted := s.spSort(in, s.spB.Slice(0, g))
		// Segment the sorted group by the pivots and append each segment
		// to its bucket.
		start := 0
		for i := 0; i < q; i++ {
			piv := pivotsV.Get(s.tp, i)
			below := start + lowerBound(s.tp, sorted.Slice(start, g), piv)
			for j := start; j < below; j++ {
				buckets[2*i].append(s.tp, sorted.Get(s.tp, j))
			}
			equal := below + upperBound(s.tp, sorted.Slice(below, g), piv)
			for j := below; j < equal; j++ {
				buckets[2*i+1].append(s.tp, sorted.Get(s.tp, j))
			}
			start = equal
		}
		for j := start; j < g; j++ {
			buckets[2*q].append(s.tp, sorted.Get(s.tp, j))
		}
	}

	// Split-quality accounting for Lemma 5: a good split shrinks the
	// bucket by at least a sqrt(m) factor.
	goodLimit := int(math.Ceil(float64(n) / math.Sqrt(float64(s.m))))
	for b := range buckets {
		s.st.Buckets++
		if len(buckets[b].d) <= goodLimit {
			s.st.GoodSplits++
		} else {
			s.st.BadSplits++
		}
	}

	// Recurse into each strict bucket (equal-to-pivot buckets are already
	// sorted), then concatenate back into a.
	off := 0
	for b := range buckets {
		bv := buckets[b].view()
		if b%2 == 0 { // strict bucket
			s.sort(bv, depth+1)
		}
		trace.Copy(s.tp, a.Slice(off, off+bv.Len()), bv)
		off += bv.Len()
	}
	if off != n {
		panic("core: sequential sort lost elements during bucketizing")
	}
}

// growU64 is an append-only traced array: a bucket's "separate piece of
// DRAM memory" whose eventual size is unknown when writing begins.
type growU64 struct {
	base addr.Addr
	d    []uint64
}

func (g *growU64) append(tp *trace.TP, v uint64) {
	tp.Store(g.base+addr.Addr(len(g.d)*8), 8)
	g.d = append(g.d, v)
}

func (g *growU64) view() trace.U64 {
	return trace.U64{Base: g.base, D: g.d}
}
