package core

import (
	"testing"

	"repro/internal/units"
)

func TestParScratchpadSortBasic(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		m    units.Bytes
	}{
		{1000, 4, 64 * units.KiB},    // single leaf
		{1 << 14, 4, 32 * units.KiB}, // recursion
		{1 << 14, 8, 16 * units.KiB}, // deeper recursion
		{1 << 12, 1, 16 * units.KiB}, // degenerate single thread
		{1, 4, 32 * units.KiB},
		{0, 4, 32 * units.KiB},
	} {
		e := pureEnv(tc.p, tc.m)
		a := e.AllocFar(tc.n)
		copy(a.D, randKeys(tc.n, uint64(tc.n+tc.p)+11))
		sum := Checksum(a.D)
		st := ParScratchpadSort(e, a, SeqOptions{SampleSize: 64})
		checkSorted(t, "ParScratchpadSort", a.D, sum)
		if tc.n > 1<<13 && st.Scans == 0 {
			t.Errorf("n=%d: expected bucketizing scans, stats %+v", tc.n, st)
		}
	}
}

func TestParScratchpadSortQuicksortVariant(t *testing.T) {
	e := pureEnv(4, 32*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 3))
	sum := Checksum(a.D)
	ParScratchpadSort(e, a, SeqOptions{Quicksort: true, SampleSize: 32})
	checkSorted(t, "ParScratchpadSort quick", a.D, sum)
}

func TestParScratchpadSortDuplicates(t *testing.T) {
	e := pureEnv(8, 16*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	for i := range a.D {
		a.D[i] = uint64(i % 4)
	}
	sum := Checksum(a.D)
	ParScratchpadSort(e, a, SeqOptions{SampleSize: 32})
	checkSorted(t, "ParScratchpadSort dup", a.D, sum)
}

func TestParScratchpadSortMatchesSequential(t *testing.T) {
	// The parallel algorithm must produce identical output to the
	// sequential one (both are correct sorts, so this is mostly a
	// determinism sanity check on the same keys).
	n := 1 << 13
	mk := func(p int) []uint64 {
		e := pureEnv(p, 32*units.KiB)
		a := e.AllocFar(n)
		copy(a.D, randKeys(n, 5))
		if p == 1 {
			SeqScratchpadSort(e, a, SeqOptions{SampleSize: 64})
		} else {
			ParScratchpadSort(e, a, SeqOptions{SampleSize: 64})
		}
		return a.D
	}
	seq, parr := mk(1), mk(8)
	for i := range seq {
		if seq[i] != parr[i] {
			t.Fatalf("outputs differ at %d", i)
		}
	}
}

// TestTheorem10Scaling: the parallel sort's per-thread traced traffic
// should drop roughly as 1/p' — the block-transfer-step claim of Theorem
// 10. Total traffic stays ~constant; the simulated wall time (not measured
// here) divides it across cores.
func TestTheorem10TrafficInvariant(t *testing.T) {
	n := 1 << 14
	measure := func(p int) uint64 {
		e := tracedEnv(p, 32*units.KiB)
		a := e.AllocFar(n)
		copy(a.D, randKeys(n, 7))
		ParScratchpadSort(e, a, SeqOptions{SampleSize: 64})
		if !IsSorted(a.D) {
			t.Fatal("not sorted")
		}
		c := e.Rec.Finish().Count()
		return c.Far() + c.Near()
	}
	t1, t8 := measure(1), measure(8)
	// Total line transfers must be within 2x across thread counts: the
	// work is divided, not multiplied.
	ratio := float64(t8) / float64(t1)
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("total traffic changed %vx from p=1 to p=8 (t1=%d t8=%d)", ratio, t1, t8)
	}
}

func TestParScratchpadSortTracedBarriersBalanced(t *testing.T) {
	e := tracedEnv(4, 32*units.KiB)
	a := e.AllocFar(1 << 13)
	copy(a.D, randKeys(1<<13, 21))
	ParScratchpadSort(e, a, SeqOptions{SampleSize: 64})
	tr := e.Rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

func TestParScratchpadSortScratchpadReleased(t *testing.T) {
	e := pureEnv(4, 32*units.KiB)
	a := e.AllocFar(1 << 12)
	copy(a.D, randKeys(1<<12, 23))
	ParScratchpadSort(e, a, SeqOptions{SampleSize: 64})
	if e.SP.InUse() != 0 {
		t.Errorf("scratchpad leak: %d bytes", e.SP.InUse())
	}
}
