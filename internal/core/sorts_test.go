package core

import (
	"testing"

	"repro/internal/par"
	"repro/internal/trace"
	"repro/internal/units"
)

// pureEnv builds an untraced environment.
func pureEnv(p int, m units.Bytes) *Env { return NewEnv(p, m, nil, 42) }

// tracedEnv builds a recording environment with a small L1.
func tracedEnv(p int, m units.Bytes) *Env {
	rec := trace.NewRecorder(p, trace.L1Geometry{Capacity: 4 * units.KiB, LineSize: 64, Ways: 2},
		trace.DefaultCosts())
	return NewEnv(p, m, rec, 42)
}

func TestGNUSortPure(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{0, 4}, {1, 4}, {100, 1}, {100, 4}, {1000, 3}, {1 << 14, 8}, {1 << 14, 16},
	} {
		e := pureEnv(tc.p, units.MiB)
		a := e.AllocFar(tc.n)
		copy(a.D, randKeys(tc.n, uint64(tc.n+tc.p)))
		sum := Checksum(a.D)
		GNUSort(e, a)
		checkSorted(t, "GNUSort", a.D, sum)
	}
}

func TestGNUSortMoreThreadsThanElements(t *testing.T) {
	e := pureEnv(16, units.MiB)
	a := e.AllocFar(5)
	copy(a.D, []uint64{5, 4, 3, 2, 1})
	sum := Checksum(a.D)
	GNUSort(e, a)
	checkSorted(t, "GNUSort tiny", a.D, sum)
}

func TestGNUSortDuplicateHeavy(t *testing.T) {
	e := pureEnv(8, units.MiB)
	a := e.AllocFar(4096)
	for i := range a.D {
		a.D[i] = uint64(i % 7)
	}
	sum := Checksum(a.D)
	GNUSort(e, a)
	checkSorted(t, "GNUSort dup", a.D, sum)
}

func TestNMSortPure(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		m    units.Bytes
	}{
		{1 << 14, 4, 32 * units.KiB}, // many chunks
		{1 << 14, 8, 64 * units.KiB},
		{1 << 12, 1, 32 * units.KiB}, // sequential NMsort
		{1000, 4, 256 * units.KiB},   // single chunk
		{1, 4, 32 * units.KiB},
		{0, 4, 32 * units.KiB},
	} {
		e := pureEnv(tc.p, tc.m)
		a := e.AllocFar(tc.n)
		copy(a.D, randKeys(tc.n, uint64(tc.n+tc.p)+7))
		sum := Checksum(a.D)
		st := NMSort(e, a, NMOptions{})
		checkSorted(t, "NMSort", a.D, sum)
		if tc.n > 1 && st.Chunks < 1 {
			t.Errorf("n=%d: stats chunks = %d", tc.n, st.Chunks)
		}
	}
}

func TestNMSortMultipleChunksAndBatches(t *testing.T) {
	e := pureEnv(8, 32*units.KiB) // ~4K elements of scratchpad
	n := 1 << 15                  // forces many chunks
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 99))
	sum := Checksum(a.D)
	st := NMSort(e, a, NMOptions{})
	checkSorted(t, "NMSort multi", a.D, sum)
	if st.Chunks < 4 {
		t.Errorf("expected several chunks, got %d", st.Chunks)
	}
	if st.Batches < 2 {
		t.Errorf("expected several batches, got %d", st.Batches)
	}
	if st.MaxBatchElems > st.ChunkElems {
		t.Errorf("batch %d exceeds scratchpad buffer %d", st.MaxBatchElems, st.ChunkElems)
	}
}

func TestNMSortDuplicateHeavy(t *testing.T) {
	e := pureEnv(8, 32*units.KiB)
	n := 1 << 14
	a := e.AllocFar(n)
	for i := range a.D {
		a.D[i] = uint64(i % 3) // three distinct keys: brutal bucket skew
	}
	sum := Checksum(a.D)
	// With three distinct values, buckets necessarily exceed the chunk
	// buffer; those fall back to direct far-to-far merging and the sort
	// must still be correct.
	st := NMSort(e, a, NMOptions{})
	checkSorted(t, "NMSort skew", a.D, sum)
	if st.Batches == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNMSortExplicitGeometry(t *testing.T) {
	e := pureEnv(4, 128*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 123))
	sum := Checksum(a.D)
	st := NMSort(e, a, NMOptions{Buckets: 64, ChunkElems: 2048, Oversample: 4})
	checkSorted(t, "NMSort explicit", a.D, sum)
	if st.Buckets != 64 || st.ChunkElems != 2048 || st.Chunks != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNMSortDMA(t *testing.T) {
	e := pureEnv(8, 64*units.KiB)
	n := 1 << 14
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 321))
	sum := Checksum(a.D)
	NMSort(e, a, NMOptions{DMA: true})
	checkSorted(t, "NMSort DMA", a.D, sum)
}

func TestNMSortMetadataOverheadSmall(t *testing.T) {
	// The paper bounds the metadata overhead below 1% for B=128; with our
	// default geometry it must stay a small fraction.
	e := pureEnv(8, 256*units.KiB)
	n := 1 << 16
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 55))
	st := NMSort(e, a, NMOptions{})
	if ov := st.MetadataOverhead(); ov > 0.10 {
		t.Errorf("metadata overhead %.3f too large (stats %+v)", ov, st)
	}
}

func TestNMSortScratchpadReleased(t *testing.T) {
	e := pureEnv(4, 64*units.KiB)
	a := e.AllocFar(1 << 12)
	copy(a.D, randKeys(1<<12, 77))
	NMSort(e, a, NMOptions{})
	if e.SP.InUse() != 0 {
		t.Errorf("scratchpad leak: %d bytes still allocated", e.SP.InUse())
	}
	// A second run on the same Env must work.
	b := e.AllocFar(1 << 12)
	copy(b.D, randKeys(1<<12, 78))
	sum := Checksum(b.D)
	NMSort(e, b, NMOptions{})
	checkSorted(t, "NMSort reuse", b.D, sum)
}

func TestNMSortTraced(t *testing.T) {
	e := tracedEnv(4, 32*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 13))
	sum := Checksum(a.D)
	NMSort(e, a, NMOptions{})
	checkSorted(t, "NMSort traced", a.D, sum)
	tr := e.Rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	c := tr.Count()
	if c.Near() == 0 {
		t.Error("NMsort must touch near memory")
	}
	if c.Far() == 0 {
		t.Error("NMsort must touch far memory")
	}
}

func TestGNUSortTracedNeverTouchesNear(t *testing.T) {
	e := tracedEnv(4, 32*units.KiB)
	n := 1 << 13
	a := e.AllocFar(n)
	copy(a.D, randKeys(n, 14))
	GNUSort(e, a)
	tr := e.Rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if c := tr.Count(); c.Near() != 0 {
		t.Errorf("baseline touched near memory %d times", c.Near())
	}
}

func TestNMSortHalvesFarTraffic(t *testing.T) {
	// The headline Table I observation: NMsort makes roughly half the far
	// accesses of the baseline because every comparison pass runs against
	// the scratchpad. Check the L1-filtered far line counts.
	n := 1 << 14
	gnu := tracedEnv(4, 32*units.KiB)
	ag := gnu.AllocFar(n)
	copy(ag.D, randKeys(n, 15))
	GNUSort(gnu, ag)
	gc := gnu.Rec.Finish().Count()

	nm := tracedEnv(4, 32*units.KiB)
	an := nm.AllocFar(n)
	copy(an.D, randKeys(n, 15))
	NMSort(nm, an, NMOptions{})
	nc := nm.Rec.Finish().Count()

	if ratio := float64(nc.Far()) / float64(gc.Far()); ratio > 0.7 {
		t.Errorf("NMsort far traffic ratio %.2f; want well below 1 (gnu=%d nm=%d)",
			ratio, gc.Far(), nc.Far())
	}
}

func TestDeterministicTraces(t *testing.T) {
	mk := func() trace.LevelCounts {
		e := tracedEnv(4, 32*units.KiB)
		a := e.AllocFar(1 << 12)
		copy(a.D, randKeys(1<<12, 200))
		NMSort(e, a, NMOptions{})
		return e.Rec.Finish().Count()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("recorded traffic not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPMSortStandalone(t *testing.T) {
	// PMSort via GNUSort is covered above; exercise it directly with
	// p > n and odd lengths.
	e := pureEnv(8, units.MiB)
	for _, n := range []int{3, 17, 255, 1024} {
		src := e.AllocFar(n)
		dst := e.AllocFar(n)
		sample := e.AllocFar(SampleLen(8))
		sampleTmp := e.AllocFar(SampleLen(8))
		copy(src.D, randKeys(n, uint64(n)))
		sum := Checksum(src.D)
		ps := NewPMSort(8, src, dst, dst, sample, sampleTmp, par.NewBarrier(8))
		runAll(8, ps.Run)
		checkSorted(t, "PMSort", dst.D, sum)
	}
}

// runAll drives a phase function from p logical threads in pure mode
// (nil recorder, so every probe is nil) through the par.Run fork-join.
func runAll(p int, f func(tid int, tp *trace.TP)) {
	par.Run(p, nil, f)
}

func TestNMSortSmallAppendsCorrect(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		m    units.Bytes
	}{
		{1 << 13, 4, 64 * units.KiB},
		{1 << 14, 8, 64 * units.KiB},
		{1 << 12, 1, 32 * units.KiB},
		{100, 4, 64 * units.KiB},
	} {
		e := pureEnv(tc.p, tc.m)
		a := e.AllocFar(tc.n)
		copy(a.D, randKeys(tc.n, uint64(tc.n)+31))
		sum := Checksum(a.D)
		st := NMSortSmallAppends(e, a, NMOptions{})
		checkSorted(t, "NMSortSmallAppends", a.D, sum)
		if tc.n > 1 && st.Buckets < 2 {
			t.Errorf("stats = %+v", st)
		}
	}
}

func TestNMSortSmallAppendsCostsMore(t *testing.T) {
	// The whole point of the ablation: the scattered variant must record
	// more atomics (cursor bumps) and at least as much far traffic as the
	// metadata-batched NMsort on the same input.
	n := 1 << 14
	run := func(scatter bool) trace.LevelCounts {
		e := tracedEnv(8, 64*units.KiB)
		a := e.AllocFar(n)
		copy(a.D, randKeys(n, 77))
		if scatter {
			NMSortSmallAppends(e, a, NMOptions{})
		} else {
			NMSort(e, a, NMOptions{})
		}
		if !IsSorted(a.D) {
			t.Fatal("not sorted")
		}
		return e.Rec.Finish().Count()
	}
	batched, scattered := run(false), run(true)
	if scattered.Atomics == 0 {
		t.Error("scattered variant must use atomic cursor reservations")
	}
	if batched.Atomics >= scattered.Atomics {
		t.Errorf("batched NMsort uses %d atomics vs scattered %d; ablation inverted",
			batched.Atomics, scattered.Atomics)
	}
}

func TestNMSortSmallAppendsScratchpadReleased(t *testing.T) {
	e := pureEnv(4, 64*units.KiB)
	a := e.AllocFar(1 << 12)
	copy(a.D, randKeys(1<<12, 9))
	NMSortSmallAppends(e, a, NMOptions{})
	if e.SP.InUse() != 0 {
		t.Errorf("scratchpad leak: %d bytes", e.SP.InUse())
	}
}
