package core

import "repro/internal/trace"

// This file holds the single-thread sorting primitives the parallel
// algorithms are built from: a cache-friendly top-down ping-pong mergesort
// (the default in-scratchpad sort, matching the paper's use of the GNU
// multiway mergesort inside the scratchpad), a traced in-place quicksort
// (Corollary 7's alternative), and binary merging.

// MergeSortInto sorts src into dst using recursive ping-pong merging; tmp
// must have the same length as src and dst. src is left in an unspecified
// (partially permuted) state. The depth-first recursion keeps small
// subproblems cache-resident, so traced traffic shows the external-memory
// pass structure of Theorem 2.
func MergeSortInto(tp *trace.TP, dst, src, tmp trace.U64) {
	n := src.Len()
	if dst.Len() != n || tmp.Len() != n {
		panic("core: MergeSortInto length mismatch")
	}
	if n == 0 {
		return
	}
	msort(tp, src, tmp, 0, n, false)
	// msort left the result in tmp (toSrc=false); move it to dst if dst is
	// not already tmp's storage.
	if &tmp.D[0] == &dst.D[0] && tmp.Base == dst.Base {
		return
	}
	trace.Copy(tp, dst, tmp)
}

// MergeSortInPlace sorts a using tmp as scratch.
func MergeSortInPlace(tp *trace.TP, a, tmp trace.U64) {
	n := a.Len()
	if tmp.Len() != n {
		panic("core: MergeSortInPlace length mismatch")
	}
	if n <= 1 {
		return
	}
	msort(tp, a, tmp, 0, n, true)
}

// msort sorts a[lo:hi). If toA, the sorted run ends in a; otherwise in b.
func msort(tp *trace.TP, a, b trace.U64, lo, hi int, toA bool) {
	n := hi - lo
	if n <= 1 {
		if n == 1 && !toA {
			b.Set(tp, lo, a.Get(tp, lo))
		}
		return
	}
	mid := lo + n/2
	// Sort halves into the opposite buffer, then merge back into ours.
	msort(tp, a, b, lo, mid, !toA)
	msort(tp, a, b, mid, hi, !toA)
	if toA {
		mergeRange(tp, b, a, lo, mid, hi)
	} else {
		mergeRange(tp, a, b, lo, mid, hi)
	}
}

// mergeRange merges the sorted runs src[lo:mid) and src[mid:hi) into
// dst[lo:hi).
func mergeRange(tp *trace.TP, src, dst trace.U64, lo, mid, hi int) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		switch {
		case i >= mid:
			dst.Set(tp, k, src.Get(tp, j))
			j++
		case j >= hi:
			dst.Set(tp, k, src.Get(tp, i))
			i++
		default:
			tp.Compare(1)
			x, y := src.Get(tp, i), src.Get(tp, j)
			if x <= y {
				dst.Set(tp, k, x)
				i++
			} else {
				dst.Set(tp, k, y)
				j++
			}
		}
	}
}

// QuickSort sorts a in place — the in-scratchpad alternative of
// Corollary 7. Median-of-three pivoting with Hoare partitioning and
// insertion sort below a small threshold; recursion always descends into
// the smaller side so stack depth is O(log n) even on adversarial inputs.
func QuickSort(tp *trace.TP, a trace.U64) {
	quicksort(tp, a, 0, a.Len())
}

const insertionThreshold = 16

func quicksort(tp *trace.TP, a trace.U64, lo, hi int) {
	for hi-lo > insertionThreshold {
		j := partition(tp, a, lo, hi)
		// Recurse into the smaller side, loop on the larger: O(log n) stack.
		if j+1-lo < hi-j-1 {
			quicksort(tp, a, lo, j+1)
			lo = j + 1
		} else {
			quicksort(tp, a, j+1, hi)
			hi = j + 1
		}
	}
	insertionSort(tp, a, lo, hi)
}

// partition performs Hoare partitioning of a[lo:hi) around a
// median-of-three pivot placed at lo, returning j with lo <= j <= hi-2 such
// that a[lo:j+1] <= pivot <= a[j+1:hi) — both sides always non-empty.
func partition(tp *trace.TP, a trace.U64, lo, hi int) int {
	// Select the median of first/middle/last and move it to lo so the
	// classic Hoare scan invariants (pivot == a[lo]) hold.
	mid := int(uint(lo+hi) >> 1)
	lov, midv, hiv := a.Get(tp, lo), a.Get(tp, mid), a.Get(tp, hi-1)
	tp.Compare(3)
	switch {
	case (midv <= lov) == (lov <= hiv): // lov is the median
	case (lov <= midv) == (midv <= hiv): // midv is the median
		a.Set(tp, lo, midv)
		a.Set(tp, mid, lov)
	default: // hiv is the median
		a.Set(tp, lo, hiv)
		a.Set(tp, hi-1, lov)
	}
	pivot := a.Get(tp, lo)

	i, j := lo-1, hi
	for {
		for {
			j--
			tp.Compare(1)
			if a.Get(tp, j) <= pivot {
				break
			}
		}
		for {
			i++
			tp.Compare(1)
			if a.Get(tp, i) >= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		x, y := a.Get(tp, i), a.Get(tp, j)
		a.Set(tp, i, y)
		a.Set(tp, j, x)
	}
}

// insertionSort sorts a[lo:hi) in place.
func insertionSort(tp *trace.TP, a trace.U64, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		x := a.Get(tp, i)
		j := i - 1
		for j >= lo {
			tp.Compare(1)
			v := a.Get(tp, j)
			if v <= x {
				break
			}
			a.Set(tp, j+1, v)
			j--
		}
		a.Set(tp, j+1, x)
	}
}

// IsSorted reports whether a is non-decreasing (untraced; a test helper on
// the hot path of every experiment's verification step).
func IsSorted(a []uint64) bool {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	return true
}

// Checksum returns an order-independent fingerprint (sum and xor folded
// together) used to verify an algorithm permuted its input rather than
// corrupting it.
func Checksum(a []uint64) uint64 {
	var sum, x uint64
	for _, v := range a {
		sum += v
		x ^= v*0x9e3779b97f4a7c15 + 1
	}
	return sum ^ (x * 0xff51afd7ed558ccd)
}

// lowerBound returns the first index i in sorted a with a[i] >= key,
// tracing its probes. This is the primitive behind bucket-boundary
// extraction ("a multithreaded algorithm that determines bucket boundaries
// in a sorted list", Section V) and run splitting.
func lowerBound(tp *trace.TP, a trace.U64, key uint64) int {
	lo, hi := 0, a.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		tp.Compare(1)
		if a.Get(tp, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first index i in sorted a with a[i] > key.
func upperBound(tp *trace.TP, a trace.U64, key uint64) int {
	lo, hi := 0, a.Len()
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		tp.Compare(1)
		if a.Get(tp, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
