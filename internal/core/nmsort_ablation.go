package core

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/trace"
)

// NMSortSmallAppends is the ablation of Section IV-D's key innovation
// (experiment A1 in DESIGN.md): the bucket-scattering implementation the
// paper abandoned — "Empirically, the number of elements destined for any
// given bucket might be small, so these appends can be inefficient ...
// Without this innovation, we were unable to exploit the scratchpad
// effectively."
//
// Phase 1 sorts each chunk in the scratchpad exactly as NMSort does, but
// then physically appends every bucket's segment to that bucket's own
// region of far memory, paying an atomic cursor reservation plus a small,
// typically line-misaligned write per (chunk, bucket) pair. Phase 2 merges
// each bucket's per-chunk fragments individually, one bucket per thread at
// a time, without scratchpad batching.
//
// The result is correct; the point is the cost difference against NMSort's
// metadata-batched design under identical machine configurations.
func NMSortSmallAppends(e *Env, a trace.U64, opt NMOptions) NMStats {
	n := a.Len()
	if n <= 1 {
		return NMStats{N: n, Chunks: 1}
	}
	opt.DMA = false // the scattered variant predates the DMA extension
	pl := planNM(e, n, opt)

	// Each bucket gets its own region of far memory, over-provisioned by a
	// skew factor: the scattering design must guess capacities up front
	// (another of its practical problems; NMSort needs no such guess).
	const skew = 4
	bucketCap := skew*(n/pl.buckets) + 64
	areas := make([]trace.U64, pl.buckets)
	for b := range areas {
		areas[b] = e.AllocFar(bucketCap)
	}
	// Per-bucket write cursors live in far memory and are bumped with
	// traced atomics — the synchronization the paper's design implies.
	cursors := e.AllocFarI64(pl.buckets)
	// fragLen[ci*buckets+b] is chunk ci's contribution to bucket b
	// (derived bookkeeping; the real system would store it in DRAM too).
	fragLen := make([]int64, pl.chunks*pl.buckets)

	spIn := e.MustAllocSP(pl.chunkElems)
	spOut := e.MustAllocSP(pl.chunkElems)
	pivots := e.MustAllocSP(pl.buckets - 1)
	bpos := e.MustAllocSPI64(pl.buckets + 1)
	sample := e.AllocFar(pl.sampleElems)
	sampleTmp := e.AllocFar(pl.sampleElems)

	st := NMStats{
		N:          n,
		Chunks:     pl.chunks,
		ChunkElems: pl.chunkElems,
		Buckets:    pl.buckets,
		// The scattered design's "metadata" is its cursor array plus the
		// address-space overprovisioning; report the cursors.
		MetadataBytes: int64(cursors.Len()) * 8,
	}

	bar := par.NewBarrier(e.P)
	var ps *PMSort
	var chunkSplits []uint64
	var outOff []int64 // per-bucket output offsets (prefix sums), by thread 0

	par.RunPoison(e.P, e.Rec, bar, func(tid int, tp *trace.TP) {
		// Pivot selection, identical to NMSort's.
		ns := pl.pivotSample
		if tid == 0 {
			rng := e.RNG(0)
			for i := 0; i < ns; i++ {
				spIn.Set(tp, i, a.Get(tp, rng.Intn(n)))
			}
			ps = NewPMSort(e.P, spIn.Slice(0, ns), spOut.Slice(0, ns),
				spOut.Slice(0, ns), sample, sampleTmp, bar)
		}
		bar.Wait(tp)
		ps.Run(tid, tp)
		if tid == 0 {
			for j := 1; j < pl.buckets; j++ {
				pivots.Set(tp, j-1, spOut.Get(tp, j*ns/pl.buckets))
			}
			for b := 0; b < pl.buckets; b++ {
				cursors.Set(tp, b, 0)
			}
			chunkSplits = pivotSplitters(tp, pivots, e.P, 0, pl.buckets)
		}
		bar.Wait(tp)

		// Phase 1: sort each chunk in the scratchpad, then scatter its
		// bucket segments with per-bucket atomic appends.
		for ci := 0; ci < pl.chunks; ci++ {
			cLen := pl.chunkLen(n, ci)
			chunk := a.Slice(ci*pl.chunkElems, ci*pl.chunkElems+cLen)
			lo, hi := par.Span(cLen, e.P, tid)
			trace.Copy(tp, spIn.Slice(lo, hi), chunk.Slice(lo, hi))
			bar.Wait(tp)

			if tid == 0 {
				ps = NewPMSortPresplit(e.P, spIn.Slice(0, cLen), spOut.Slice(0, cLen),
					spOut.Slice(0, cLen), chunkSplits, bar)
			}
			bar.Wait(tp)
			ps.Run(tid, tp)

			sorted := spOut.Slice(0, cLen)
			bLo, bHi := par.Span(pl.buckets-1, e.P, tid)
			for j := bLo; j < bHi; j++ {
				bpos.Set(tp, j+1, int64(lowerBound(tp, sorted, pivots.Get(tp, j))))
			}
			if tid == 0 {
				bpos.Set(tp, 0, 0)
				bpos.Set(tp, pl.buckets, int64(cLen))
			}
			bar.Wait(tp)

			// Scatter: thread tid owns a bucket range; for each of its
			// buckets, reserve space with an atomic add and copy the
			// segment out of the scratchpad into the bucket's region.
			sLo, sHi := par.Span(pl.buckets, e.P, tid)
			for b := sLo; b < sHi; b++ {
				segLo := int(bpos.Get(tp, b))
				segHi := int(bpos.Get(tp, b+1))
				cnt := segHi - segLo
				fragLen[ci*pl.buckets+b] = int64(cnt)
				if cnt == 0 {
					continue
				}
				off := cursors.AtomicAdd(tp, b, int64(cnt)) - int64(cnt)
				if int(off)+cnt > bucketCap {
					panic(fmt.Sprintf("core: small-appends bucket %d overflowed its %d-element guess (skewed input); NMSort has no such failure mode", b, bucketCap))
				}
				trace.Copy(tp, areas[b].Slice(int(off), int(off)+cnt),
					sorted.Slice(segLo, segHi))
			}
			bar.Wait(tp)
		}

		// Phase 2: thread 0 lays out the output; then each thread merges
		// whole buckets (its round-robin share) fragment-by-fragment,
		// directly in far memory — no batching, no scratchpad staging.
		if tid == 0 {
			outOff = make([]int64, pl.buckets+1)
			for b := 0; b < pl.buckets; b++ {
				outOff[b+1] = outOff[b] + cursors.Get(tp, b)
			}
			if outOff[pl.buckets] != int64(n) {
				panic("core: small-appends lost elements during scattering")
			}
		}
		bar.Wait(tp)

		for b := tid; b < pl.buckets; b += e.P {
			total := int(outOff[b+1] - outOff[b])
			if total == 0 {
				continue
			}
			runs := make([]trace.U64, 0, pl.chunks)
			off := 0
			for ci := 0; ci < pl.chunks; ci++ {
				fl := int(fragLen[ci*pl.buckets+b])
				if fl > 0 {
					runs = append(runs, areas[b].Slice(off, off+fl))
					off += fl
				}
			}
			MultiwayMerge(tp, runs, a.Slice(int(outOff[b]), int(outOff[b])+total))
		}
		bar.Wait(tp)
	})

	st.Batches = pl.buckets // every bucket is its own "batch"
	st.SPPeakBytes = e.SP.Peak()

	e.FreeSP(spIn.Base)
	e.FreeSP(spOut.Base)
	e.FreeSP(pivots.Base)
	e.SP.SPFree(bpos.Base)
	return st
}
