package core

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func sortedRuns(seed uint64, lens []int) ([]trace.U64, []uint64) {
	rng := xrand.New(seed)
	var all []uint64
	runs := make([]trace.U64, len(lens))
	base := addr.FarBase
	for i, n := range lens {
		d := make([]uint64, n)
		rng.Keys(d)
		sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
		runs[i] = trace.U64{Base: base, D: d}
		base += addr.Addr(n*8 + 64)
		all = append(all, d...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	return runs, all
}

func TestMultiwayMerge(t *testing.T) {
	for _, lens := range [][]int{
		{10},
		{5, 5},
		{0, 10, 0},
		{1, 100, 3, 50, 7},
		{0, 0, 0},
		{64, 64, 64, 64, 64, 64, 64, 64},
	} {
		runs, want := sortedRuns(uint64(len(lens))+1, lens)
		dst := make([]uint64, len(want))
		MultiwayMerge(nil, runs, trace.U64{Base: addr.NearBase, D: dst})
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("lens %v: mismatch at %d", lens, i)
			}
		}
	}
}

func TestMultiwayMergeWithMaxValues(t *testing.T) {
	// Runs containing the ^0 sentinel value must merge correctly (the
	// loser tree must not confuse them with exhausted runs).
	m := ^uint64(0)
	runs := []trace.U64{
		{Base: addr.FarBase, D: []uint64{1, m, m}},
		{Base: addr.FarBase + 1024, D: []uint64{2, m}},
		{Base: addr.FarBase + 2048, D: []uint64{m}},
	}
	dst := make([]uint64, 6)
	MultiwayMerge(nil, runs, trace.U64{Base: addr.NearBase, D: dst})
	want := []uint64{1, 2, m, m, m, m}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("got %v, want %v", dst, want)
		}
	}
}

func TestLoserTreeNext(t *testing.T) {
	runs, want := sortedRuns(3, []int{7, 13, 2})
	lt := NewLoserTree(nil, runs)
	if lt.Len() != len(want) {
		t.Fatalf("Len = %d", lt.Len())
	}
	for i, w := range want {
		if got := lt.Next(nil); got != w {
			t.Fatalf("Next %d = %d, want %d", i, got, w)
		}
	}
	if lt.Len() != 0 {
		t.Error("tree should be drained")
	}
}

func TestLoserTreeDrainedPanics(t *testing.T) {
	lt := NewLoserTree(nil, []trace.U64{{Base: addr.FarBase, D: []uint64{1}}})
	lt.Next(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lt.Next(nil)
}

func TestLoserTreeSingleRun(t *testing.T) {
	runs, want := sortedRuns(4, []int{20})
	dst := make([]uint64, 20)
	MultiwayMerge(nil, runs, trace.U64{Base: addr.NearBase, D: dst})
	for i := range want {
		if dst[i] != want[i] {
			t.Fatal("single-run merge broken")
		}
	}
}

func TestMultiwayMergeProperty(t *testing.T) {
	f := func(raw [][]uint64) bool {
		if len(raw) == 0 {
			return true
		}
		runs := make([]trace.U64, len(raw))
		var all []uint64
		base := addr.FarBase
		for i, d := range raw {
			d := append([]uint64(nil), d...)
			sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
			runs[i] = trace.U64{Base: base, D: d}
			base += addr.Addr(len(d)*8 + 64)
			all = append(all, d...)
		}
		sum := Checksum(all)
		dst := make([]uint64, len(all))
		MultiwayMerge(nil, runs, trace.U64{Base: addr.NearBase, D: dst})
		return IsSorted(dst) && Checksum(dst) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitRunsPartition(t *testing.T) {
	runs, all := sortedRuns(8, []int{50, 30, 70, 10})
	// Splitters at the quartiles of the union.
	splitters := []uint64{all[40], all[80], all[120]}
	cuts := SplitRuns(nil, runs, splitters)
	if len(cuts) != 5 {
		t.Fatalf("cuts rows = %d", len(cuts))
	}
	total := 0
	for p := 0; p < 4; p++ {
		total += PartLen(cuts, p)
	}
	if total != len(all) {
		t.Fatalf("parts cover %d of %d elements", total, len(all))
	}
	// Part boundaries respect values: everything in part p is <= everything
	// in part p+1 (via splitter semantics).
	var prevMax uint64
	for p := 0; p < 4; p++ {
		parts := PartRuns(runs, cuts, p)
		for _, pr := range parts {
			for i := 0; i < pr.Len(); i++ {
				v := pr.Get(nil, i)
				if p > 0 && v < prevMax && v < splitters[p-1] {
					t.Fatalf("part %d holds %d below splitter %d", p, v, splitters[p-1])
				}
			}
		}
		for _, pr := range parts {
			if pr.Len() > 0 {
				if v := pr.Get(nil, pr.Len()-1); v > prevMax {
					prevMax = v
				}
			}
		}
	}
}

func TestSampleRun(t *testing.T) {
	d := make([]uint64, 100)
	for i := range d {
		d[i] = uint64(i)
	}
	out := trace.U64{Base: addr.NearBase, D: make([]uint64, 8)}
	sampleRun(nil, farView(d), out, 8)
	for i := 1; i < 8; i++ {
		if out.D[i] <= out.D[i-1] {
			t.Fatalf("samples not increasing over sorted run: %v", out.D)
		}
	}
	// Empty run yields sentinels.
	sampleRun(nil, trace.U64{Base: addr.FarBase, D: nil}, out, 8)
	for _, v := range out.D {
		if v != ^uint64(0) {
			t.Fatal("empty run should sample sentinels")
		}
	}
}

func TestMultiwayMergeSort(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 127, 128, 129, 1000, 1 << 14} {
		d := randKeys(n, uint64(n)+3)
		sum := Checksum(d)
		tmp := make([]uint64, n)
		out := MultiwayMergeSort(nil, farView(d),
			trace.U64{Base: addr.NearBase, D: tmp}, 128, 8)
		if !IsSorted(out.D) || Checksum(out.D) != sum {
			t.Fatalf("n=%d: MultiwayMergeSort failed", n)
		}
	}
}

func TestMultiwayMergeSortOddGeometry(t *testing.T) {
	// Run lengths and fanouts that don't divide n.
	for _, tc := range []struct{ run, fan int }{{1, 2}, {3, 3}, {7, 5}, {100, 2}} {
		n := 1000
		d := randKeys(n, 77)
		sum := Checksum(d)
		tmp := make([]uint64, n)
		out := MultiwayMergeSort(nil, farView(d),
			trace.U64{Base: addr.NearBase, D: tmp}, tc.run, tc.fan)
		if !IsSorted(out.D) || Checksum(out.D) != sum {
			t.Fatalf("run=%d fan=%d: failed", tc.run, tc.fan)
		}
	}
}

func TestCorollary3TransferOrdering(t *testing.T) {
	// Corollary 3/7: for scratchpad-resident sorts much larger than the
	// cache, quicksort's lg(x/Z) passes exceed the multiway mergesort's
	// log_{Z/B}(x/B) passes, so its near-memory transfers must be higher —
	// and the gap must grow with x.
	measure := func(n int, quick bool) float64 {
		rec := trace.NewRecorder(1, trace.L1Geometry{Capacity: 2 * 1024, LineSize: 64, Ways: 2},
			trace.DefaultCosts())
		env := NewEnv(1, 1<<26, rec, 3)
		a := env.MustAllocSP(n)
		tmp := env.MustAllocSP(n)
		copy(a.D, randKeys(n, 9))
		tp := rec.Thread(0)
		if quick {
			QuickSort(tp, a)
		} else {
			MultiwayMergeSort(tp, a, tmp, 128, 8)
		}
		return float64(rec.Finish().Count().Near()) / float64(n)
	}
	const big = 1 << 18
	qBig, mBig := measure(big, true), measure(big, false)
	if qBig <= mBig {
		t.Errorf("quicksort %.2f lines/elem <= mergesort %.2f at n=%d; Corollary 3 ordering violated",
			qBig, mBig, big)
	}
	qSmall, mSmall := measure(1<<15, true), measure(1<<15, false)
	if (qBig - mBig) <= (qSmall - mSmall) {
		t.Errorf("quicksort/mergesort gap must grow with x: small %.2f, big %.2f",
			qSmall-mSmall, qBig-mBig)
	}
}
