package core

import (
	"math"

	"repro/internal/addr"
	"repro/internal/par"
	"repro/internal/trace"
)

// ParScratchpadSort is the general parallel scratchpad sorting algorithm of
// Section IV-C, the one Theorem 10 analyzes: the sequential recursive
// sample sort of Section III with its two subroutines parallelized — groups
// are ingested into the scratchpad by all p threads cooperatively, and
// scratchpad-resident sorting uses the PEM-style parallel multiway
// mergesort (Theorem 8). Buckets still recurse until they fit the
// scratchpad.
//
// NMsort (Section IV-D) is the practical, nonrecursive restructuring of
// this algorithm; ParScratchpadSort exists to realize the analyzed
// algorithm exactly, including its recursion, for the model-validation
// experiments.
func ParScratchpadSort(e *Env, a trace.U64, opt SeqOptions) SeqStats {
	var st SeqStats
	n := a.Len()
	if n <= 1 {
		st.Depth = 1
		return st
	}

	m := opt.SampleSize
	if m == 0 {
		m = int(e.M / 64)
	}
	if m < 2 {
		m = 2
	}
	group := (e.SPElems() - 2*m) / 2
	if group < 2*e.P || group < 64 {
		panic("core: scratchpad too small for the parallel sort")
	}

	s := &parSorter{
		e:     e,
		bar:   par.NewBarrier(e.P),
		spA:   e.MustAllocSP(group),
		spB:   e.MustAllocSP(group),
		spX:   e.MustAllocSP(m),
		spXT:  e.MustAllocSP(m),
		far:   e.AllocFar(SampleLen(e.P)),
		farT:  e.AllocFar(SampleLen(e.P)),
		m:     m,
		group: group,
		quick: opt.Quicksort,
		st:    &st,
	}

	par.RunPoison(e.P, e.Rec, s.bar, func(tid int, tp *trace.TP) {
		s.sort(tid, tp, a, 1)
	})

	e.FreeSP(s.spA.Base)
	e.FreeSP(s.spB.Base)
	e.FreeSP(s.spX.Base)
	e.FreeSP(s.spXT.Base)
	return st
}

// parSorter carries the shared state of one ParScratchpadSort run. All p
// threads execute the same lockstep recursion; thread 0 publishes shared
// per-level decisions (sample, bucket layout) across barriers.
type parSorter struct {
	e          *Env
	bar        *par.Barrier
	spA, spB   trace.U64 // group ingest / sort buffers
	spX, spXT  trace.U64 // resident sample + scratch
	far, farT  trace.U64 // splitter-sample buffers for PMSort
	m, group   int
	quick      bool
	st         *SeqStats
	rngStream  uint64
	sortedView trace.U64 // published by thread 0: result view of spSort
	ps         *PMSort   // current in-scratchpad parallel sort
	shared     *parLevel // current level's shared bucket state
}

// parLevel is the shared state of one bucketizing level.
type parLevel struct {
	q       int       // distinct pivots
	buckets []growU64 // 2q+1 bucket regions
	bpos    []int     // per-group segment boundaries (2q+2 entries)
}

// spSortGroup runs the cooperative in-scratchpad sort of the current
// group: PMSort for the mergesort variant (the PEM sort of Theorem 8) or
// a partition-parallel quicksort approximation (thread 0 only — the
// quicksort variant is sequential inside the scratchpad, as Corollary 7's
// analysis assumes a single stream of block transfers).
func (s *parSorter) spSortGroup(tid int, tp *trace.TP, g int) {
	if s.quick {
		if tid == 0 {
			QuickSort(tp, s.spA.Slice(0, g))
			s.sortedView = s.spA.Slice(0, g)
		}
		s.bar.Wait(tp)
		return
	}
	if tid == 0 {
		s.ps = NewPMSort(s.e.P, s.spA.Slice(0, g), s.spB.Slice(0, g),
			s.spB.Slice(0, g), s.far, s.farT, s.bar)
		s.sortedView = s.spB.Slice(0, g)
	}
	s.bar.Wait(tp)
	s.ps.Run(tid, tp)
}

// sort recursively sorts the far view a; all p threads call it in
// lockstep.
func (s *parSorter) sort(tid int, tp *trace.TP, a trace.U64, depth int) {
	n := a.Len()
	if tid == 0 && depth > s.st.Depth {
		s.st.Depth = depth
	}
	if n <= 1 {
		return
	}

	// Base case: ingest, sort cooperatively in the scratchpad, drain.
	if n <= s.group {
		if tid == 0 {
			s.st.LeafSorts++
		}
		lo, hi := par.Span(n, s.e.P, tid)
		trace.Copy(tp, s.spA.Slice(lo, hi), a.Slice(lo, hi))
		s.bar.Wait(tp)
		s.spSortGroup(tid, tp, n)
		sorted := s.sortedView
		trace.Copy(tp, a.Slice(lo, hi), sorted.Slice(lo, hi))
		s.bar.Wait(tp)
		return
	}

	// Sample selection (thread 0 draws; the sort is cooperative).
	if tid == 0 {
		s.st.Scans++
		s.rngStream++
		rng := s.e.RNG(s.rngStream)
		for i := 0; i < s.m; i++ {
			s.spX.Set(tp, i, a.Get(tp, rng.Intn(n)))
		}
		s.ps = NewPMSort(s.e.P, s.spX, s.spXT, s.spXT, s.far, s.farT, s.bar)
	}
	s.bar.Wait(tp)
	s.ps.Run(tid, tp)
	// Sorted sample now in spXT; thread 0 dedupes it back into spX and
	// lays out the 2q+1 buckets (three-way splits, as in the sequential
	// sort, so duplicate-heavy inputs always make progress).
	var lvl *parLevel
	if tid == 0 {
		q := 0
		for i := 0; i < s.m; i++ {
			v := s.spXT.Get(tp, i)
			tp.Compare(1)
			if q == 0 || v != s.spX.Get(tp, q-1) {
				s.spX.Set(tp, q, v)
				q++
			}
		}
		lvl = &parLevel{q: q, buckets: make([]growU64, 2*q+1), bpos: make([]int, 2*q+2)}
		for b := range lvl.buckets {
			lvl.buckets[b] = growU64{base: s.e.Far.Alloc(uint64(n)*8, 64)}
		}
		s.shared = lvl
	}
	s.bar.Wait(tp)
	lvl = s.shared

	// Bucketizing scan: all threads ingest and sort each group, extract
	// segment boundaries, and append their buckets' segments.
	for lo := 0; lo < n; lo += s.group {
		hi := lo + s.group
		if hi > n {
			hi = n
		}
		g := hi - lo
		glo, ghi := par.Span(g, s.e.P, tid)
		trace.Copy(tp, s.spA.Slice(glo, ghi), a.Slice(lo+glo, lo+ghi))
		s.bar.Wait(tp)
		s.spSortGroup(tid, tp, g)
		sorted := s.sortedView

		// Boundary extraction: bucket 2i = strictly below pivot i,
		// 2i+1 = equal to pivot i, 2q = above the last pivot. Thread t
		// computes the boundaries of its pivot span.
		pLo, pHi := par.Span(lvl.q, s.e.P, tid)
		for i := pLo; i < pHi; i++ {
			piv := s.spX.Get(tp, i)
			below := lowerBound(tp, sorted, piv)
			eq := below + upperBound(tp, sorted.Slice(below, g), piv)
			lvl.bpos[2*i+1] = below
			lvl.bpos[2*i+2] = eq
		}
		if tid == 0 {
			lvl.bpos[0] = 0
			lvl.bpos[2*lvl.q+1] = g
		}
		s.bar.Wait(tp)

		// Append: thread t owns a bucket span and copies its segments out
		// of the scratchpad (single writer per bucket, so the per-bucket
		// cursors need no atomics — a luxury NMsort's metadata design
		// also enjoys, unlike the scattered ablation).
		bLo, bHi := par.Span(2*lvl.q+1, s.e.P, tid)
		for b := bLo; b < bHi; b++ {
			seg := sorted.Slice(lvl.bpos[b], lvl.bpos[b+1])
			lvl.buckets[b].appendRange(tp, seg)
		}
		s.bar.Wait(tp)
	}

	// Split-quality accounting (Lemma 5), thread 0.
	if tid == 0 {
		goodLimit := int(math.Ceil(float64(n) / math.Sqrt(float64(s.m))))
		for b := range lvl.buckets {
			s.st.Buckets++
			if len(lvl.buckets[b].d) <= goodLimit {
				s.st.GoodSplits++
			} else {
				s.st.BadSplits++
			}
		}
	}

	// Recurse into strict buckets in lockstep, then concatenate.
	off := 0
	for b := range lvl.buckets {
		bv := lvl.buckets[b].view()
		if b%2 == 0 {
			s.sort(tid, tp, bv, depth+1)
		}
		clo, chi := par.Span(bv.Len(), s.e.P, tid)
		trace.Copy(tp, a.Slice(off+clo, off+chi), bv.Slice(clo, chi))
		off += bv.Len()
	}
	s.bar.Wait(tp)
	if off != n {
		panic("core: parallel sort lost elements during bucketizing")
	}
}

// appendRange appends src's elements to the bucket with traced bulk
// accesses.
func (g *growU64) appendRange(tp *trace.TP, src trace.U64) {
	if src.Len() == 0 {
		return
	}
	base := g.base + addr.Addr(len(g.d)*8)
	if tp != nil {
		tp.Load(src.Base, 8*src.Len())
		tp.Store(base, 8*src.Len())
	}
	g.d = append(g.d, src.D...)
}
