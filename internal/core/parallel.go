package core

import (
	"repro/internal/par"
	"repro/internal/trace"
)

// SamplesPerRun is the maximum splitter-sampling rate of the parallel
// multiway merge: each sorted run contributes up to this many evenly
// spaced samples, and the p-quantiles of the sorted sample become the
// merge splitters. The GNU parallel sort the paper benchmarks uses the
// same sampling strategy in its default configuration. The actual rate
// adapts down for short runs (see samplesFor) so the serial sample sort
// never dominates.
const SamplesPerRun = 32

// SampleLen returns the sample-buffer length PMMerge may need for k runs.
func SampleLen(k int) int { return k * SamplesPerRun }

// samplesFor picks the per-run sampling rate for runs averaging avgLen
// elements: enough samples for balanced splitting, few enough that thread
// 0's serial sample sort stays negligible.
func samplesFor(avgLen int) int {
	s := avgLen / 64
	if s < 4 {
		s = 4
	}
	if s > SamplesPerRun {
		s = SamplesPerRun
	}
	return s
}

// PMMerge is one cooperative parallel multiway merge: p threads merge k
// sorted runs into dst along sampled splitters, each thread producing a
// disjoint contiguous part of the output. It is used by the GNU-style
// baseline (merging p far-memory runs), by NMsort's in-scratchpad chunk
// sort, and by NMsort's Phase 2 bucket-batch merges.
//
// All p threads must call Run(tid, tp) exactly once; PMMerge synchronizes
// on the barrier it was given.
// splitMode selects how PMMerge derives its part boundaries.
type splitMode uint8

const (
	splitSampled splitMode = iota // sample runs, sort, take quantiles (GNU default)
	splitPreset                   // caller supplies splitter values
	splitExact                    // exact multisequence selection (GNU exact mode)
)

type PMMerge struct {
	p         int
	spr       int // samples per run (sampled mode)
	mode      splitMode
	runs      []trace.U64
	dst       trace.U64
	sample    trace.U64
	sampleTmp trace.U64
	bar       *par.Barrier

	splitters []uint64
	cuts      [][]int
}

// NewPMMerge prepares a merge of runs into dst (len = total run length).
// sample and sampleTmp must each hold SampleLen(len(runs)) elements, placed
// in whatever memory level the splitter work should be charged to. bar must
// be a barrier shared by exactly the p participating threads.
func NewPMMerge(p int, runs []trace.U64, dst, sample, sampleTmp trace.U64, bar *par.Barrier) *PMMerge {
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	if dst.Len() != total {
		panic("core: PMMerge destination length mismatch")
	}
	spr := samplesFor(total / max(len(runs), 1))
	if want := len(runs) * spr; sample.Len() < want || sampleTmp.Len() < want {
		panic("core: PMMerge sample buffers too small")
	}
	return &PMMerge{
		p:         p,
		spr:       spr,
		runs:      runs,
		dst:       dst,
		sample:    sample.Slice(0, len(runs)*spr),
		sampleTmp: sampleTmp.Slice(0, len(runs)*spr),
		bar:       bar,
		splitters: make([]uint64, p-1),
		cuts:      make([][]int, p+1),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NewPMMergePresplit prepares a merge whose p-1 splitter values are already
// known (non-decreasing). NMsort uses this for every chunk sort and batch
// merge: its globally sampled bucket pivots double as merge splitters, so
// the per-merge sampling phases — and in particular thread 0's serial
// sample sort, which otherwise throttles scaling exactly like the GNU
// baseline's — disappear entirely.
func NewPMMergePresplit(p int, runs []trace.U64, dst trace.U64, splitters []uint64, bar *par.Barrier) *PMMerge {
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	if dst.Len() != total {
		panic("core: PMMerge destination length mismatch")
	}
	if len(splitters) != p-1 {
		panic("core: PMMergePresplit needs exactly p-1 splitters")
	}
	for i := 1; i < len(splitters); i++ {
		if splitters[i] < splitters[i-1] {
			panic("core: PMMergePresplit splitters must be non-decreasing")
		}
	}
	return &PMMerge{
		p:         p,
		mode:      splitPreset,
		runs:      runs,
		dst:       dst,
		bar:       bar,
		splitters: splitters,
		cuts:      make([][]int, p+1),
	}
}

// NewPMMergeExact prepares a merge using exact multisequence selection:
// every part receives exactly its fair share of elements (±1) regardless
// of key skew, at the price of the selection's O(k·log(maxlen)) probes per
// part boundary. This is GNU parallel mode's exact splitting.
func NewPMMergeExact(p int, runs []trace.U64, dst trace.U64, bar *par.Barrier) *PMMerge {
	total := 0
	for _, r := range runs {
		total += r.Len()
	}
	if dst.Len() != total {
		panic("core: PMMerge destination length mismatch")
	}
	return &PMMerge{
		p:    p,
		mode: splitExact,
		runs: runs,
		dst:  dst,
		bar:  bar,
		cuts: make([][]int, p+1),
	}
}

// Run executes thread tid's share of the merge.
func (m *PMMerge) Run(tid int, tp *trace.TP) {
	if m.mode == splitSampled {
		// Phase B: sample the runs; run r is sampled by thread r%p.
		for r := tid; r < len(m.runs); r += m.p {
			sampleRun(tp, m.runs[r], m.sample.Slice(r*m.spr, (r+1)*m.spr), m.spr)
		}
		m.bar.Wait(tp)

		// Phase C: thread 0 sorts the sample and publishes splitters.
		if tid == 0 {
			MergeSortInPlace(tp, m.sample, m.sampleTmp)
			total := m.sample.Len()
			for t := 1; t < m.p; t++ {
				m.splitters[t-1] = m.sample.Get(tp, t*total/m.p)
			}
		}
		m.bar.Wait(tp)
	}

	// Phase D: each thread computes its own cut row; thread 0 also fills
	// the trivial first and last rows.
	row := make([]int, len(m.runs))
	if tid > 0 {
		if m.mode == splitExact {
			total := 0
			for _, run := range m.runs {
				total += run.Len()
			}
			row = ExactSelect(tp, m.runs, tid*total/m.p)
		} else {
			for r, run := range m.runs {
				row[r] = lowerBound(tp, run, m.splitters[tid-1])
			}
		}
	}
	m.cuts[tid] = row
	if tid == 0 {
		last := make([]int, len(m.runs))
		for r, run := range m.runs {
			last[r] = run.Len()
		}
		m.cuts[m.p] = last
	}
	m.bar.Wait(tp)

	// Phase E: merge my part into my disjoint slice of dst. The output
	// offset of part t equals the number of elements cut before it, which
	// is the sum of row t.
	off := 0
	for _, c := range m.cuts[tid] {
		off += c
	}
	want := PartLen(m.cuts, tid)
	if want > 0 {
		parts := PartRuns(m.runs, m.cuts, tid)
		MultiwayMerge(tp, parts, m.dst.Slice(off, off+want))
	}
	m.bar.Wait(tp)
}

// PMSort is one parallel multiway mergesort: p threads each sort a static
// span of Src into a run, then cooperatively merge the runs into Dst. It is
// the engine of both the paper's baseline (operating entirely in far
// memory) and NMsort's in-scratchpad chunk sort — the difference is only
// where the caller allocates the buffers.
//
// Dst may alias Tmp: the run-formation scratch is dead by merge time.
// All p threads must call Run(tid, tp); PMSort barriers internally. After
// the last thread returns, Dst holds the sorted data and Src/Tmp are
// clobbered.
type PMSort struct {
	p         int
	src, dst  trace.U64
	tmp       trace.U64
	sample    trace.U64
	sampleTmp trace.U64
	splitters []uint64 // non-nil: skip sampling, use these (presplit)
	exact     bool     // use exact multisequence selection for the merge
	phases    bool     // thread 0 emits trace phase markers (top-level sorts)

	bar  *par.Barrier
	runs []trace.U64
	mg   *PMMerge
}

// NewPMSort prepares a sort of src into dst. tmp must match src's length;
// sample and sampleTmp must each hold SampleLen(p) elements (unused when
// p == 1, in which case zero-length views are fine). bar must be a barrier
// shared by exactly the p participating threads (sharing one barrier per
// parallel region lets a failing thread poison every rendezvous at once).
func NewPMSort(p int, src, dst, tmp, sample, sampleTmp trace.U64, bar *par.Barrier) *PMSort {
	n := src.Len()
	if dst.Len() != n || tmp.Len() != n {
		panic("core: PMSort buffer length mismatch")
	}
	if p > 1 && (sample.Len() < SampleLen(p) || sampleTmp.Len() < SampleLen(p)) {
		panic("core: PMSort sample buffers must hold SampleLen(p) elements")
	}
	return &PMSort{
		p:         p,
		src:       src,
		dst:       dst,
		tmp:       tmp,
		sample:    sample,
		sampleTmp: sampleTmp,
		bar:       bar,
		runs:      make([]trace.U64, p),
	}
}

// Run executes thread tid's share. Every participating thread must call it
// exactly once.
func (s *PMSort) Run(tid int, tp *trace.TP) {
	n := s.src.Len()
	if s.phases && tid == 0 {
		tp.Phase("sort-runs")
	}
	if s.p == 1 {
		MergeSortInto(tp, s.dst, s.src, s.tmp)
		return
	}

	// Phase A: sort my span in place; it becomes run tid.
	lo, hi := par.Span(n, s.p, tid)
	mine := s.src.Slice(lo, hi)
	MergeSortInPlace(tp, mine, s.tmp.Slice(lo, hi))
	s.runs[tid] = mine
	s.bar.Wait(tp)

	if tid == 0 {
		if s.phases {
			tp.Phase("merge-runs")
		}
		switch {
		case s.splitters != nil:
			s.mg = NewPMMergePresplit(s.p, s.runs, s.dst, s.splitters, s.bar)
		case s.exact:
			s.mg = NewPMMergeExact(s.p, s.runs, s.dst, s.bar)
		default:
			s.mg = NewPMMerge(s.p, s.runs, s.dst, s.sample, s.sampleTmp, s.bar)
		}
	}
	s.bar.Wait(tp)
	s.mg.Run(tid, tp)
}

// NewPMSortPresplit prepares a sort whose merge splitters are already
// known; no sample buffers are required.
func NewPMSortPresplit(p int, src, dst, tmp trace.U64, splitters []uint64, bar *par.Barrier) *PMSort {
	n := src.Len()
	if dst.Len() != n || tmp.Len() != n {
		panic("core: PMSort buffer length mismatch")
	}
	if p > 1 && len(splitters) != p-1 {
		panic("core: PMSortPresplit needs exactly p-1 splitters")
	}
	return &PMSort{
		p:         p,
		src:       src,
		dst:       dst,
		tmp:       tmp,
		splitters: splitters,
		bar:       bar,
		runs:      make([]trace.U64, p),
	}
}
