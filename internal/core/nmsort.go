package core

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/trace"
)

// NMOptions tunes NMsort. The zero value requests automatic sizing.
type NMOptions struct {
	// Buckets is the number of sample-sort buckets |X| (0 = automatic:
	// enough that an average bucket is a small fraction of a chunk, so
	// Phase 2 can batch thousands-of-buckets-sized transfers as in the
	// paper).
	Buckets int
	// ChunkElems is the Phase 1 chunk size Θ(M) in elements (0 =
	// automatic: the largest chunk such that the double-buffered working
	// set fits the scratchpad).
	ChunkElems int
	// Oversample is the pivot oversampling factor (0 = 8).
	Oversample int
	// DMA uses background DMA engines for chunk ingest (double-buffered)
	// and drain instead of core-mediated copies — the paper's §VII
	// future-work extension.
	DMA bool
}

// NMStats reports what one NMSort run actually did — chunk and batch
// geometry plus the metadata overhead the paper bounds below 1%.
type NMStats struct {
	N             int
	Chunks        int
	ChunkElems    int
	Buckets       int
	Batches       int
	MaxBatchElems int
	MetadataBytes int64 // BucketPos + BucketTot + pivots
	SPPeakBytes   uint64
}

// MetadataOverhead returns metadata bytes as a fraction of input bytes.
func (s NMStats) MetadataOverhead() float64 {
	return float64(s.MetadataBytes) / float64(8*s.N)
}

// NMSort sorts a in place with the paper's practical near-memory sort
// (Section IV-D).
//
// Phase 1 streams Θ(M)-element chunks through the scratchpad: each chunk is
// ingested, sorted by a parallel multiway mergesort entirely inside the
// scratchpad, written back to far memory, and described by bucket metadata
// — the BucketPos array per chunk and the running BucketTot totals — rather
// than by physically scattering buckets ("Instead of populating individual
// buckets ... we simply record the bucket boundaries").
//
// Phase 2 walks the buckets in order, batching as many consecutive buckets
// as (almost) fill the scratchpad, gathers each batch's per-chunk sorted
// segments, k-way merges them in the scratchpad, and writes the final
// sorted output. This batching — thousands of buckets per transfer — is the
// innovation the paper credits for making the scratchpad exploitable at
// all.
func NMSort(e *Env, a trace.U64, opt NMOptions) NMStats {
	n := a.Len()
	if n <= 1 {
		return NMStats{N: n, Chunks: 1, Batches: 0}
	}
	pl := planNM(e, n, opt)

	// Far-memory allocations: the sorted-chunk staging area and the bucket
	// metadata (BucketPos rows per chunk, Figure 2(c)).
	work := e.AllocFar(n)
	bucketPos := e.AllocFarI64(pl.chunks * (pl.buckets + 1))

	// Scratchpad allocations. BucketTot "remains in scratchpad throughout
	// both phases" (Section IV-D).
	spIn := e.MustAllocSP(pl.chunkElems)
	var spInB trace.U64
	if opt.DMA {
		spInB = e.MustAllocSP(pl.chunkElems)
	}
	spOut := e.MustAllocSP(pl.chunkElems)
	pivots := e.MustAllocSP(pl.buckets - 1)
	bucketTot := e.MustAllocSPI64(pl.buckets)
	bpos := e.MustAllocSPI64(pl.buckets + 1)
	// Splitter samples are tiny and transient; they live in far memory so
	// the scratchpad budget goes to chunk buffers.
	sample := e.AllocFar(pl.sampleElems)
	sampleTmp := e.AllocFar(pl.sampleElems)

	st := NMStats{
		N:          n,
		Chunks:     pl.chunks,
		ChunkElems: pl.chunkElems,
		Buckets:    pl.buckets,
		MetadataBytes: int64(bucketPos.Len()+bucketTot.Len())*8 +
			int64(pivots.Len())*8,
	}

	bar := par.NewBarrier(e.P)
	var ps *PMSort  // current chunk sort, built by thread 0
	var mg *PMMerge // current batch merge, built by thread 0
	var batches []nmBatch
	var segs []nmSeg         // current batch's gather plan
	var chunkSplits []uint64 // pivot-derived splitters for chunk sorts

	par.RunPoison(e.P, e.Rec, bar, func(tid int, tp *trace.TP) {
		// --- Pivot selection -------------------------------------------
		// Thread 0 draws the random sample X into the scratchpad; all
		// threads then sort it in parallel (in the scratchpad) and thread
		// 0 publishes the bucket pivots, which stay scratchpad-resident
		// for both phases.
		ns := pl.pivotSample
		if tid == 0 {
			tp.Phase("pivots")
			rng := e.RNG(0)
			for i := 0; i < ns; i++ {
				v := a.Get(tp, rng.Intn(n))
				spIn.Set(tp, i, v)
			}
			ps = NewPMSort(e.P, spIn.Slice(0, ns), spOut.Slice(0, ns),
				spOut.Slice(0, ns), sample, sampleTmp, bar)
		}
		bar.Wait(tp)
		ps.Run(tid, tp)
		if tid == 0 {
			for j := 1; j < pl.buckets; j++ {
				pivots.Set(tp, j-1, spOut.Get(tp, j*ns/pl.buckets))
			}
			for b := 0; b < pl.buckets; b++ {
				bucketTot.Set(tp, b, 0)
			}
			// The global pivots double as merge splitters for every
			// in-scratchpad chunk sort: each chunk is a uniform random
			// subset, so global quantiles balance its parts too, and no
			// per-merge sampling (with its serial sample sort) is needed.
			chunkSplits = pivotSplitters(tp, pivots, e.P, 0, pl.buckets)
		}
		bar.Wait(tp)

		// --- Phase 1: sort chunks, record bucket metadata --------------
		if tid == 0 {
			tp.Phase("p1:sort-chunks")
		}
		if opt.DMA && tid == 0 {
			// Prefetch chunk 0 into the front buffer.
			dmaCopy(tp, spIn.Slice(0, pl.chunkLen(n, 0)), a.Slice(0, pl.chunkLen(n, 0)))
			tp.DMAWait()
		}
		for ci := 0; ci < pl.chunks; ci++ {
			cLen := pl.chunkLen(n, ci)
			chunk := a.Slice(ci*pl.chunkElems, ci*pl.chunkElems+cLen)

			if opt.DMA {
				// The next chunk streams into the back buffer while this
				// one sorts (Figure 2(a)/(b) made concurrent via DMA).
				if tid == 0 && ci+1 < pl.chunks {
					nLen := pl.chunkLen(n, ci+1)
					next := a.Slice((ci+1)*pl.chunkElems, (ci+1)*pl.chunkElems+nLen)
					dmaCopy(tp, spInB.Slice(0, nLen), next)
				}
			} else {
				lo, hi := par.Span(cLen, e.P, tid)
				trace.Copy(tp, spIn.Slice(lo, hi), chunk.Slice(lo, hi))
			}
			bar.Wait(tp)

			// Parallel in-scratchpad sort of the chunk.
			if tid == 0 {
				ps = NewPMSortPresplit(e.P, spIn.Slice(0, cLen), spOut.Slice(0, cLen),
					spOut.Slice(0, cLen), chunkSplits, bar)
			}
			bar.Wait(tp)
			ps.Run(tid, tp)

			// Extract bucket boundaries from the sorted chunk in parallel
			// ("a multithreaded algorithm that determines bucket
			// boundaries in a sorted list").
			sorted := spOut.Slice(0, cLen)
			bLo, bHi := par.Span(pl.buckets-1, e.P, tid)
			for j := bLo; j < bHi; j++ {
				bpos.Set(tp, j+1, int64(lowerBound(tp, sorted, pivots.Get(tp, j))))
			}
			if tid == 0 {
				bpos.Set(tp, 0, 0)
				bpos.Set(tp, pl.buckets, int64(cLen))
			}
			bar.Wait(tp)

			// Accumulate BucketTot and persist this chunk's BucketPos row.
			tLo, tHi := par.Span(pl.buckets, e.P, tid)
			for b := tLo; b < tHi; b++ {
				cnt := bpos.Get(tp, b+1) - bpos.Get(tp, b)
				bucketTot.Set(tp, b, bucketTot.Get(tp, b)+cnt)
			}
			row := bucketPos.Slice(ci*(pl.buckets+1), (ci+1)*(pl.buckets+1))
			pLo, pHi := par.Span(pl.buckets+1, e.P, tid)
			trace.CopyI64(tp, row.Slice(pLo, pHi), bpos.Slice(pLo, pHi))

			// Drain the sorted chunk to far memory (Figure 2(b)).
			dst := work.Slice(ci*pl.chunkElems, ci*pl.chunkElems+cLen)
			if opt.DMA {
				if tid == 0 {
					dmaCopy(tp, dst, sorted)
					tp.DMAWait() // spOut is reused next iteration
					if ci+1 < pl.chunks {
						spIn, spInB = spInB, spIn // swap ingest buffers
					}
				}
			} else {
				lo, hi := par.Span(cLen, e.P, tid)
				trace.Copy(tp, dst.Slice(lo, hi), sorted.Slice(lo, hi))
			}
			bar.Wait(tp)
		}

		// --- Phase 2: batch buckets, gather, merge, emit ----------------
		if tid == 0 {
			tp.Phase("p2:merge-batches")
			batches = planBatches(tp, bucketTot, pl.chunkElems)
			st.Batches = len(batches)
		}
		bar.Wait(tp)

		for bi := range batches {
			b := batches[bi]
			batchLen := b.len
			if tid == 0 {
				var gathered int
				segs, gathered = gatherPlan(tp, bucketPos, pl, n, b)
				if gathered != batchLen {
					panic(fmt.Sprintf("core: NMSort batch %d gathered %d elements, planned %d", bi, gathered, batchLen))
				}
				if batchLen > st.MaxBatchElems {
					st.MaxBatchElems = batchLen
				}
			}
			bar.Wait(tp)

			if b.direct {
				// An oversized bucket (heavily skewed keys) cannot stage in
				// the scratchpad; merge its per-chunk segments directly
				// between far-memory locations. Correct but without the
				// near-memory bandwidth advantage — the degenerate case the
				// paper's nonrecursive NMsort does not expect on random
				// keys (Section V).
				if tid == 0 {
					runs := make([]trace.U64, 0, len(segs))
					for _, sg := range segs {
						runs = append(runs, work.Slice(sg.farLo, sg.farLo+sg.n))
					}
					mg = NewPMMerge(e.P, runs, a.Slice(b.off, b.off+batchLen), sample, sampleTmp, bar)
				}
				bar.Wait(tp)
				mg.Run(tid, tp)
				continue
			}

			// Gather each chunk's segment for this bucket range into the
			// scratchpad (Figure 3(b)).
			if opt.DMA {
				if tid == 0 {
					for _, sg := range segs {
						if sg.n > 0 {
							dmaCopy(tp, spIn.Slice(sg.spLo, sg.spLo+sg.n),
								work.Slice(sg.farLo, sg.farLo+sg.n))
						}
					}
					tp.DMAWait()
				}
			} else {
				lo, hi := par.Span(batchLen, e.P, tid)
				for _, sg := range segs {
					o := overlap(sg.spLo, sg.spLo+sg.n, lo, hi)
					if o.n > 0 {
						trace.Copy(tp,
							spIn.Slice(o.lo, o.lo+o.n),
							work.Slice(sg.farLo+(o.lo-sg.spLo), sg.farLo+(o.lo-sg.spLo)+o.n))
					}
				}
			}
			bar.Wait(tp)

			// Merge the per-chunk sorted segments (multi-way search of the
			// Θ(N/M) sorted strings, Figure 3(c)).
			if tid == 0 {
				runs := make([]trace.U64, 0, len(segs))
				for _, sg := range segs {
					runs = append(runs, spIn.Slice(sg.spLo, sg.spLo+sg.n))
				}
				// Splitters: bucket boundaries interior to this batch's
				// bucket range, at p-quantile granularity.
				splits := pivotSplitters(tp, pivots, e.P, b.bLo, b.bHi)
				mg = NewPMMergePresplit(e.P, runs, spOut.Slice(0, batchLen), splits, bar)
			}
			bar.Wait(tp)
			mg.Run(tid, tp)

			// Emit the merged batch to its final position.
			final := a.Slice(b.off, b.off+batchLen)
			if opt.DMA {
				if tid == 0 {
					dmaCopy(tp, final, spOut.Slice(0, batchLen))
					tp.DMAWait()
				}
			} else {
				lo, hi := par.Span(batchLen, e.P, tid)
				trace.Copy(tp, final.Slice(lo, hi), spOut.Slice(lo, hi))
			}
			bar.Wait(tp)
		}
	})

	if nb := len(batches); nb == 0 || batches[nb-1].off+batches[nb-1].len != n {
		panic("core: NMSort batch plan did not cover the input")
	}
	st.SPPeakBytes = e.SP.Peak()

	// Release the scratchpad for subsequent runs sharing this Env.
	e.FreeSP(spIn.Base)
	if opt.DMA {
		e.FreeSP(spInB.Base)
	}
	e.FreeSP(spOut.Base)
	e.FreeSP(pivots.Base)
	e.SP.SPFree(bucketTot.Base)
	e.SP.SPFree(bpos.Base)
	return st
}

// dmaCopy issues a DMA descriptor for the transfer and performs the data
// movement natively (the descriptor carries the cost at replay; the bytes
// must move now for correctness).
func dmaCopy(tp *trace.TP, dst, src trace.U64) {
	if dst.Len() != src.Len() {
		panic("core: dmaCopy length mismatch")
	}
	tp.DMA(src.Base, dst.Base, 8*src.Len())
	copy(dst.D, src.D)
}

// nmPlan is NMsort's derived geometry.
type nmPlan struct {
	chunkElems  int
	chunks      int
	buckets     int
	pivotSample int
	sampleElems int
}

func (p nmPlan) chunkLen(n, ci int) int {
	if (ci+1)*p.chunkElems <= n {
		return p.chunkElems
	}
	return n - ci*p.chunkElems
}

// planNM derives the chunk and bucket geometry from the scratchpad budget:
// it grows the non-chunk reservation (bucket metadata + sample buffers) to
// a fixed point, giving the chunk buffers everything that remains.
func planNM(e *Env, n int, opt NMOptions) nmPlan {
	spElems := e.SPElems()
	bufs := 2
	if opt.DMA {
		bufs = 3
	}

	pl := nmPlan{}
	reserve := 0
	for iter := 0; ; iter++ {
		c := (spElems - reserve) / bufs
		if opt.ChunkElems > 0 {
			c = opt.ChunkElems
		}
		if c < 64 {
			panic(fmt.Sprintf("core: scratchpad too small for NMsort: chunk would be %d elements (scratchpad %v, threads %d)", c, e.M, e.P))
		}
		if c > n {
			c = n
		}
		pl.chunkElems = c
		pl.chunks = (n + c - 1) / c

		pl.buckets = opt.Buckets
		if pl.buckets == 0 {
			// Enough buckets that (a) Phase 2 batches span many buckets
			// and (b) the bucket pivots are fine-grained enough to double
			// as balanced p-way merge splitters.
			pl.buckets = 16 * n / c
			if min := 4 * e.P; pl.buckets < min {
				pl.buckets = min
			}
			if pl.buckets < 16 {
				pl.buckets = 16
			}
			if cap := spElems / 16; pl.buckets > cap {
				pl.buckets = cap
			}
			if pl.buckets > 8192 {
				pl.buckets = 8192
			}
		}
		if pl.buckets < 2 {
			pl.buckets = 2
		}

		k := e.P
		if pl.chunks > k {
			k = pl.chunks
		}
		pl.sampleElems = SampleLen(k)

		// pivots + BucketTot + bpos + allocator rounding across the six
		// scratchpad allocations (samples live in far memory).
		need := 3*pl.buckets + 64
		if need <= reserve || opt.ChunkElems > 0 || iter > 16 {
			break
		}
		reserve = need
	}

	ov := opt.Oversample
	if ov == 0 {
		ov = 8
	}
	pl.pivotSample = pl.buckets * ov
	if pl.pivotSample > pl.chunkElems {
		pl.pivotSample = pl.chunkElems
	}
	if pl.pivotSample > n {
		pl.pivotSample = n
	}
	return pl
}

// nmBatch is a maximal run of consecutive buckets whose total fits the
// scratchpad ingest buffer ("we find the largest k such that
// ΣBucketTot[i] <= M", Figure 3(a)), together with its precomputed output
// placement so no shared offset needs mutating during the batch loop.
type nmBatch struct {
	bLo, bHi int  // bucket range [bLo, bHi)
	off      int  // output offset of the batch's first element
	len      int  // total elements in the batch
	direct   bool // oversized bucket: merge far-to-far without staging
}

// planBatches walks BucketTot grouping consecutive buckets into
// scratchpad-sized batches and assigning output offsets.
func planBatches(tp *trace.TP, tot trace.I64, capElems int) []nmBatch {
	var out []nmBatch
	nb := tot.Len()
	cur, curLen, off := 0, 0, 0
	for b := 0; b < nb; b++ {
		t := int(tot.Get(tp, b))
		if t > capElems {
			// Oversized bucket: close the open batch, then emit the bucket
			// alone as a direct (far-to-far) merge batch.
			if curLen > 0 {
				out = append(out, nmBatch{bLo: cur, bHi: b, off: off, len: curLen})
				off += curLen
			}
			out = append(out, nmBatch{bLo: b, bHi: b + 1, off: off, len: t, direct: true})
			off += t
			cur, curLen = b+1, 0
			continue
		}
		if curLen+t > capElems {
			out = append(out, nmBatch{bLo: cur, bHi: b, off: off, len: curLen})
			off += curLen
			cur, curLen = b, 0
		}
		curLen += t
	}
	out = append(out, nmBatch{bLo: cur, bHi: nb, off: off, len: curLen})
	return out
}

// nmSeg maps one chunk's contribution to a batch: n elements starting at
// work[farLo], landing at spIn[spLo].
type nmSeg struct {
	farLo, spLo, n int
}

// gatherPlan reads the BucketPos rows for the batch's bucket range and lays
// the per-chunk segments out back to back in the ingest buffer.
func gatherPlan(tp *trace.TP, bucketPos trace.I64, pl nmPlan, n int, b nmBatch) ([]nmSeg, int) {
	segs := make([]nmSeg, 0, pl.chunks)
	off := 0
	for ci := 0; ci < pl.chunks; ci++ {
		row := ci * (pl.buckets + 1)
		sLo := int(bucketPos.Get(tp, row+b.bLo))
		sHi := int(bucketPos.Get(tp, row+b.bHi))
		segs = append(segs, nmSeg{farLo: ci*pl.chunkElems + sLo, spLo: off, n: sHi - sLo})
		off += sHi - sLo
	}
	return segs, off
}

// pivotSplitters derives p-1 non-decreasing merge splitters from the
// scratchpad-resident bucket pivots, restricted to the bucket range
// [bLo, bHi). pivots[j] is the boundary value between buckets j and j+1.
func pivotSplitters(tp *trace.TP, pivots trace.U64, p, bLo, bHi int) []uint64 {
	out := make([]uint64, p-1)
	span := bHi - bLo
	for t := 1; t < p; t++ {
		cut := bLo + t*span/p // bucket index where part t begins
		j := cut - 1          // pivot separating buckets cut-1 and cut
		if j < 0 {
			j = 0
		}
		if j > pivots.Len()-1 {
			j = pivots.Len() - 1
		}
		out[t-1] = pivots.Get(tp, j)
	}
	return out
}

type ovl struct{ lo, n int }

// overlap intersects [aLo, aHi) with [bLo, bHi).
func overlap(aLo, aHi, bLo, bHi int) ovl {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return ovl{}
	}
	return ovl{lo: lo, n: hi - lo}
}
