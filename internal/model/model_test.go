package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// paperParams builds a parameter set shaped like the paper's simulated
// system: 64-byte lines, multi-MB scratchpad, ~1MB aggregate cache.
func paperParams() Params {
	return Params{
		N:      1 << 20,
		Elem:   8,
		B:      64,
		Rho:    4,
		M:      16 * units.MiB,
		Z:      units.MiB,
		P:      256,
		PPrime: 64,
	}
}

func TestValidate(t *testing.T) {
	p := paperParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}

	bad := []func(*Params){
		func(p *Params) { p.N = 0 },
		func(p *Params) { p.Elem = 0 },
		func(p *Params) { p.B = 0 },
		func(p *Params) { p.Rho = 1 },
		func(p *Params) { p.M = p.Z },
		func(p *Params) { p.Z = 32 },
		func(p *Params) { p.P = 0 },
		func(p *Params) { p.PPrime = 0 },
		func(p *Params) { p.PPrime = p.P + 1 },
		func(p *Params) { p.B = 16 * units.KiB }, // tall-cache violation: B²=2048² elems > M elems
	}
	for i, mut := range bad {
		q := paperParams()
		mut(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := paperParams()
	if got := p.BlockElems(); got != 8 {
		t.Errorf("BlockElems = %v, want 8", got)
	}
	if got := p.SPBlockElems(); got != 32 {
		t.Errorf("SPBlockElems = %v, want 32", got)
	}
	if got := p.CacheElems(); got != 1<<17 {
		t.Errorf("CacheElems = %v, want %v", got, 1<<17)
	}
	if got := p.SPElems(); got != 1<<21 {
		t.Errorf("SPElems = %v, want %v", got, 1<<21)
	}
	if got := p.SampleSize(); got != (16*1024*1024)/64 {
		t.Errorf("SampleSize = %v", got)
	}
}

func TestTheorem1MatchesClosedForm(t *testing.T) {
	p := paperParams()
	n, l, z := float64(p.N), 8.0, float64(1<<17)
	want := n / l * math.Log(n/l) / math.Log(z/l)
	if got := p.SortDRAMOnly(p.B); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("SortDRAMOnly = %v, want %v", got, want)
	}
}

func TestTheorem2MatchesClosedForm(t *testing.T) {
	p := paperParams()
	n := float64(p.N)
	want := n / 8 * math.Log2(n/float64(1<<17))
	if got := p.MergeSortDRAMOnly(p.B); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("MergeSortDRAMOnly = %v, want %v", got, want)
	}
}

func TestTheorem6Decomposition(t *testing.T) {
	p := paperParams()
	c := p.ScratchpadSort()
	if c.DRAMBlocks <= 0 || c.SPBlocks <= 0 {
		t.Fatalf("non-positive costs: %+v", c)
	}
	if got := c.Total(); got != c.DRAMBlocks+c.SPBlocks {
		t.Errorf("Total mismatch")
	}
	// DRAM side equals (N/B)·max(1, log_{M/B}(N/B)): here N/B = 2^17 is
	// below the branching factor M/B = 2^18, so the pass count clamps to
	// one full scan and the cost is exactly N/B block transfers.
	n, b := float64(p.N), 8.0
	wantDRAM := n / b
	if math.Abs(c.DRAMBlocks-wantDRAM)/wantDRAM > 1e-12 {
		t.Errorf("DRAMBlocks = %v, want %v", c.DRAMBlocks, wantDRAM)
	}
	// In a bigger-than-scratchpad instance the log factor engages.
	p.N = 1 << 40
	c = p.ScratchpadSort()
	nb := float64(p.N) / b
	wantDRAM = nb * math.Log(nb) / math.Log(float64(1<<21)/b)
	if math.Abs(c.DRAMBlocks-wantDRAM)/wantDRAM > 1e-12 {
		t.Errorf("big-N DRAMBlocks = %v, want %v", c.DRAMBlocks, wantDRAM)
	}
}

func TestScratchpadSortBeatsDRAMOnly(t *testing.T) {
	// The abstract's claim — a ρ-factor speedup "under certain
	// architectural parameter settings" — requires the scratchpad to be
	// large relative to the cache: M/B ≥ (Z/B)^ρ, which makes the
	// DRAM-pass count drop by a ρ factor while the scratchpad passes are
	// a ρ-fraction of the DRAM-only transfers. In that regime the model
	// must predict a speedup above 1 and growing as Θ(ρ).
	for _, rho := range []float64{2, 3, 4} {
		p := paperParams()
		p.Rho = rho
		p.Z = 64 * units.KiB       // Z/B = 2^10
		p.M = units.Bytes(1) << 51 // M/B = 2^45 ≫ (Z/B)^ρ
		p.N = 1 << 58              // deep recursion: log_{Z/B}(N/B) = 5.5
		s := p.Speedup()
		if s <= 1 {
			t.Errorf("rho=%v: asymptotic speedup %v <= 1", rho, s)
		}
		if s < rho/4 {
			t.Errorf("rho=%v: speedup %v below rho/4; should be Θ(rho)", rho, s)
		}
	}
}

func TestSpeedupMonotoneInRho(t *testing.T) {
	p := paperParams()
	prev := 0.0
	for _, rho := range []float64{1.5, 2, 3, 4, 6, 8, 16} {
		p.Rho = rho
		s := p.Speedup()
		if s < prev {
			t.Errorf("speedup not monotone at rho=%v: %v < %v", rho, s, prev)
		}
		prev = s
	}
}

func TestSpeedupBoundedByRho(t *testing.T) {
	// The scratchpad can't buy more than a ρ-factor plus log-base effects;
	// sanity-check the prediction stays within [1, 2ρ] in the paper regime.
	for _, rho := range []float64{2, 4, 8} {
		p := paperParams()
		p.Rho = rho
		if s := p.Speedup(); s > 2*rho {
			t.Errorf("rho=%v: speedup %v implausibly large", rho, s)
		}
	}
}

func TestLowerBoundMatchesUpper(t *testing.T) {
	p := paperParams()
	if got, want := p.LowerBound(), p.ScratchpadSort().Total(); got != want {
		t.Errorf("LowerBound = %v, want %v (matching bound)", got, want)
	}
}

func TestCorollary3Ordering(t *testing.T) {
	// For realistic parameters quicksort's lg(x/Z) exceeds mergesort's
	// log_{Z/B}(x/B) pass count, so quicksort should cost at least as much.
	p := paperParams()
	x := p.SPElems()
	if q, m := p.InScratchpadQuicksort(x), p.InScratchpadMergeSort(x); q < m {
		t.Errorf("quicksort %v < mergesort %v in scratchpad", q, m)
	}
}

func TestCorollary7Threshold(t *testing.T) {
	p := paperParams()
	thr, opt := p.QuicksortOptimal()
	if thr <= 0 {
		t.Fatalf("threshold = %v", thr)
	}
	// M/Z = 16, lg = 4, so rho=4 meets the threshold exactly.
	if math.Abs(thr-4) > 1e-12 {
		t.Errorf("threshold = %v, want 4", thr)
	}
	if !opt {
		t.Errorf("rho=4 should be optimal at threshold 4")
	}
	p.Rho = 2
	if _, opt := p.QuicksortOptimal(); opt {
		t.Errorf("rho=2 should not be optimal at threshold 4")
	}
}

func TestCorollary7AtLeastTheorem6(t *testing.T) {
	p := paperParams()
	if q, m := p.ScratchpadSortQuicksort().Total(), p.ScratchpadSort().Total(); q+1e-9 < m {
		t.Errorf("quicksort variant %v cheaper than optimal %v", q, m)
	}
}

func TestLemma4ScanLinearInN(t *testing.T) {
	p := paperParams()
	c1 := p.BucketizingScan(float64(p.N))
	c2 := p.BucketizingScan(2 * float64(p.N))
	if math.Abs(c2.DRAMBlocks/c1.DRAMBlocks-2) > 1e-9 {
		t.Errorf("DRAM scan cost not linear: %v vs %v", c1.DRAMBlocks, c2.DRAMBlocks)
	}
	if math.Abs(c2.SPBlocks/c1.SPBlocks-2) > 1e-9 {
		t.Errorf("SP scan cost not linear")
	}
}

func TestLemma5ScanCount(t *testing.T) {
	p := paperParams()
	// N = 2^20 elements of 8B = 8MiB < M = 16MiB, so one scan suffices.
	if got := p.ScanCount(); got != 1 {
		t.Errorf("ScanCount = %v, want 1 (input smaller than scratchpad)", got)
	}
	p.N = 1 << 30 // 8GiB input, m = 2^18, N/M elems = 2^9: still one scan.
	if got := p.ScanCount(); got < 1 || got > 2 {
		t.Errorf("ScanCount = %v, want in [1,2]", got)
	}
}

func TestTheorem8PEMScaling(t *testing.T) {
	p := paperParams()
	one := p.PEMSort(p.B) * float64(p.PPrime)
	p.PPrime = 1
	if single := p.PEMSort(p.B); math.Abs(single-one)/one > 1e-12 {
		t.Errorf("PEM cost does not scale 1/p': %v vs %v", single, one)
	}
}

func TestTheorem10ParallelScaling(t *testing.T) {
	p := paperParams()
	seq := p.ScratchpadSort()
	par := p.ParallelScratchpadSort()
	pp := float64(p.PPrime)
	if math.Abs(par.DRAMBlocks*pp-seq.DRAMBlocks)/seq.DRAMBlocks > 1e-12 {
		t.Errorf("parallel DRAM cost != sequential/p'")
	}
	if math.Abs(par.SPBlocks*pp-seq.SPBlocks)/seq.SPBlocks > 1e-12 {
		t.Errorf("parallel SP cost != sequential/p'")
	}
}

func TestLemma9ParallelScan(t *testing.T) {
	p := paperParams()
	seq := p.BucketizingScan(float64(p.N))
	par := p.ParallelScanCost(float64(p.N))
	if math.Abs(par.DRAMBlocks*float64(p.PPrime)-seq.DRAMBlocks) > 1e-6 {
		t.Errorf("Lemma 9 DRAM scaling broken")
	}
}

func TestCostsPositiveProperty(t *testing.T) {
	f := func(nExp uint8, rhoQ uint8) bool {
		p := paperParams()
		p.N = int64(1) << (12 + nExp%12) // 2^12 .. 2^23
		p.Rho = 1.5 + float64(rhoQ%16)   // 1.5 .. 16.5
		c := p.ScratchpadSort()
		return c.DRAMBlocks > 0 && c.SPBlocks > 0 &&
			p.SortDRAMOnly(p.B) > 0 && p.Speedup() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRAMCostMonotoneInN(t *testing.T) {
	p := paperParams()
	prev := 0.0
	for e := 16; e <= 26; e++ {
		p.N = 1 << e
		c := p.ScratchpadSort().Total()
		if c <= prev {
			t.Errorf("cost not increasing at N=2^%d", e)
		}
		prev = c
	}
}
