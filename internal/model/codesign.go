package model

import "math"

// Co-design guidance — the quantities the paper says should "guide vendors
// in the design of future scratchpad-based systems": given the traffic
// profile of a near-memory algorithm and its far-memory-only competitor,
// when does the scratchpad pay off, and how much bandwidth expansion does
// it need?
//
// In the bandwidth-bound regime an algorithm's time is its traffic divided
// by the bandwidth serving it. With far bandwidth W and expansion ρ:
//
//	T_base = baseFar / W
//	T_nm   = nmFar / W + nmNear / (ρ·W)
//
// so NMsort wins exactly when ρ > nmNear / (baseFar − nmFar).

// TrafficProfile describes the bytes (or blocks — only ratios matter) each
// algorithm moves per element sorted.
type TrafficProfile struct {
	BaseFar float64 // far traffic of the far-only baseline
	NMFar   float64 // far traffic of the near-memory algorithm
	NMNear  float64 // near traffic of the near-memory algorithm
}

// Valid reports whether the profile can ever favor the near-memory
// algorithm: it must save far traffic, and all terms must be positive.
func (p TrafficProfile) Valid() bool {
	return p.BaseFar > 0 && p.NMFar > 0 && p.NMNear > 0 && p.NMFar < p.BaseFar
}

// MinRho returns the smallest bandwidth-expansion factor at which the
// near-memory algorithm beats the baseline in the bandwidth-bound regime.
// It returns +Inf when the profile can never win (no far-traffic saving).
func (p TrafficProfile) MinRho() float64 {
	if p.NMFar >= p.BaseFar {
		return inf()
	}
	return p.NMNear / (p.BaseFar - p.NMFar)
}

// Speedup returns the bandwidth-bound time ratio T_base/T_nm at the given
// expansion factor (values above 1 mean the near-memory algorithm wins).
func (p TrafficProfile) Speedup(rho float64) float64 {
	if rho <= 0 {
		panic("model: non-positive rho")
	}
	return p.BaseFar / (p.NMFar + p.NMNear/rho)
}

// AsymptoticSpeedup returns the ρ→∞ limit of the speedup: the far-traffic
// ratio, the hard ceiling any scratchpad can buy this algorithm pair.
func (p TrafficProfile) AsymptoticSpeedup() float64 {
	return p.BaseFar / p.NMFar
}

// PaperProfile returns the traffic profile implied by the paper's own
// Table I access counts (GNU 394.8M far; NMsort ~160M far + ~385M near).
func PaperProfile() TrafficProfile {
	return TrafficProfile{BaseFar: 394.8, NMFar: 160.2, NMNear: 385.4}
}

// Guidance bundles the vendor-facing numbers for one node design.
type Guidance struct {
	MinCores    int     // cores at which sorting becomes memory bound (§V-A)
	MinRho      float64 // expansion below which the scratchpad loses
	SpeedupAt2X float64
	SpeedupAt4X float64
	SpeedupAt8X float64
	Ceiling     float64 // ρ→∞ speedup limit
}

// VendorGuidance combines the Section V-A boundedness analysis with the
// traffic-profile arithmetic: the two numbers the paper's conclusion says
// this co-design study should hand to hardware designers.
func VendorGuidance(coreHz, cyclesPerCompare, bwBytes, elemBytes, zBlocks float64, p TrafficProfile) Guidance {
	return Guidance{
		MinCores:    MinCoresForMemoryBound(coreHz, cyclesPerCompare, bwBytes, elemBytes, zBlocks),
		MinRho:      p.MinRho(),
		SpeedupAt2X: p.Speedup(2),
		SpeedupAt4X: p.Speedup(4),
		SpeedupAt8X: p.Speedup(8),
		Ceiling:     p.AsymptoticSpeedup(),
	}
}

func inf() float64 { return math.Inf(1) }
