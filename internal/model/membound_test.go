package model

import (
	"math"
	"testing"
)

func TestPaperNumbersSectionVA(t *testing.T) {
	// The paper plugs in Z ≈ 10⁶ blocks, x ≈ 10¹⁰ ops/s, y ≈ 10⁹ elems/s
	// and observes 10⁹·log 10⁶ ≈ 10¹⁰ — the quantities are comparable.
	a := MemoryBound(1e10, 1e9, 1e6)
	if a.Ratio < 0.3 || a.Ratio > 3 {
		t.Errorf("paper's point was the sides are comparable; ratio = %v", a.Ratio)
	}
}

func TestMemoryBoundFlips(t *testing.T) {
	// Doubling processing rate while holding bandwidth should eventually
	// flip the system into the memory-bound regime.
	if a := MemoryBound(1e12, 1e9, 1e6); !a.MemoryBound {
		t.Errorf("fast cores, slow memory should be memory bound: %+v", a)
	}
	if a := MemoryBound(1e8, 1e9, 1e6); a.MemoryBound {
		t.Errorf("slow cores, fast memory should be compute bound: %+v", a)
	}
}

func TestInstanceSizeCancels(t *testing.T) {
	// The inequality does not involve N at all; both sides of the original
	// comparison scale by N·logN identically. Verify the derived form is
	// consistent: time ratio equals rate ratio for any N.
	x, y, z := 1e10, 1e9, 1e6
	for _, n := range []float64{1e6, 1e7, 1e9} {
		procTime := n * math.Log2(n) / x
		memTime := n * math.Log2(n) / (y * math.Log2(z))
		a := MemoryBound(x, y, z)
		if (procTime < memTime) != a.MemoryBound {
			t.Errorf("N=%v: inconsistent memory-bound classification", n)
		}
	}
}

func TestNodeRates(t *testing.T) {
	// 256 cores at 1.7GHz, 40 cycles/comparison, 60GB/s STREAM, 8B elems.
	x, y := NodeRates(256, 1.7e9, 40, 60e9, 8)
	if math.Abs(x-256*1.7e9/40) > 1 {
		t.Errorf("x = %v", x)
	}
	if math.Abs(y-7.5e9) > 1 {
		t.Errorf("y = %v", y)
	}
}

func TestCoreCountCrossover(t *testing.T) {
	// The paper's simulations find 256 cores memory bound and 128 not.
	// With the Figure 4 machine and a comparison cost calibrated near the
	// paper's x ≈ 10¹⁰ for 256 cores, the crossover must sit in (128, 256].
	// The paper takes y ≈ 10⁹ useful elements per second (the effective
	// rate of a sorting pass, well below the 60GB/s raw STREAM figure once
	// reads+writes and non-streaming merge access are accounted), Z ≈ 10⁶
	// cache blocks, and x within a small factor of 10¹⁰. A per-comparison
	// cost of 16 core cycles puts the 256-core node at x ≈ 2.7·10¹⁰ and
	// the 128-core node at 1.4·10¹⁰, straddling y·lg Z ≈ 2·10¹⁰ exactly as
	// the simulations observe.
	const (
		coreHz    = 1.7e9
		cyclesCmp = 16
		yElems    = 1e9
		zBlocks   = 1e6
	)
	min := MinCoresForMemoryBound(coreHz, cyclesCmp, yElems*8, 8, zBlocks)
	if min <= 128 || min > 256 {
		t.Errorf("crossover core count = %d, paper places it in (128, 256]", min)
	}
	x256, _ := NodeRates(256, coreHz, cyclesCmp, yElems*8, 8)
	if !MemoryBound(x256, yElems, zBlocks).MemoryBound {
		t.Errorf("256 cores should be memory bound")
	}
	x128, _ := NodeRates(128, coreHz, cyclesCmp, yElems*8, 8)
	if MemoryBound(x128, yElems, zBlocks).MemoryBound {
		t.Errorf("128 cores should not be memory bound")
	}
}

func TestMinCoresAtLeastOne(t *testing.T) {
	if got := MinCoresForMemoryBound(1e9, 1, 1, 8, 2); got < 1 {
		t.Errorf("MinCores = %d", got)
	}
}
