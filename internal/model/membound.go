package model

// This file implements the back-of-envelope memory-boundedness analysis of
// Section V-A of the paper: given a processing rate x (comparisons per
// second), a memory bandwidth y (elements per second between off-chip
// memory and cache), and Z blocks of on-chip memory, sorting is
// memory-bandwidth bound when
//
//	N·log N / x  <  N·log N / (y·log Z)   ⇔   y·log Z < x.
//
// The instance size N cancels, which is the paper's observation that
// whether sorting is bandwidth bound does not depend on how much data is
// sorted. The paper plugs in Z ≈ 10⁶, x ≈ 10¹⁰, y ≈ 10⁹ and finds the two
// sides comparable, with 256 cores tipping the system into the
// memory-bound regime and 128 cores not.

// BoundAnalysis reports the two sides of the Section V-A inequality for a
// machine description.
type BoundAnalysis struct {
	ProcessingRate float64 // x: aggregate comparisons per second
	MemoryRate     float64 // y·log₂(Z): effective element delivery rate
	MemoryBound    bool    // true when y·log Z < x
	Ratio          float64 // x / (y·log Z); > 1 means memory bound
}

// MemoryBound evaluates the inequality. x is the node's aggregate
// processing rate in comparisons per second, y the off-chip bandwidth in
// elements per second, and zBlocks the number of blocks of on-chip memory.
func MemoryBound(x, y float64, zBlocks float64) BoundAnalysis {
	eff := y * lg(zBlocks)
	return BoundAnalysis{
		ProcessingRate: x,
		MemoryRate:     eff,
		MemoryBound:    eff < x,
		Ratio:          x / eff,
	}
}

// NodeRates derives x and y for a node built like the paper's simulated
// system: cores at coreHz each retiring one comparison every
// cyclesPerCompare cycles, and an off-chip bandwidth of bwBytes bytes per
// second moving elemBytes-sized elements.
func NodeRates(cores int, coreHz float64, cyclesPerCompare float64, bwBytes float64, elemBytes float64) (x, y float64) {
	x = float64(cores) * coreHz / cyclesPerCompare
	y = bwBytes / elemBytes
	return x, y
}

// MinCoresForMemoryBound returns the smallest core count at which the node
// becomes memory-bandwidth bound, holding the other rates fixed. This is
// the quantity the paper uses to argue scratchpads matter once core counts
// grow ("we estimate the number of cores that must be on a node ... for the
// scratchpad to be of benefit"). Returns a core count >= 1.
func MinCoresForMemoryBound(coreHz, cyclesPerCompare, bwBytes, elemBytes, zBlocks float64) int {
	perCore := coreHz / cyclesPerCompare
	eff := bwBytes / elemBytes * lg(zBlocks)
	cores := int(eff/perCore) + 1
	if cores < 1 {
		cores = 1
	}
	return cores
}
