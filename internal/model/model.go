// Package model implements the algorithmic scratchpad model of Section II
// of the paper "Two-Level Main Memory Co-Design: Multi-Threaded Algorithmic
// Primitives, Analysis, and Simulation" (IPDPS 2015).
//
// The model generalizes the Aggarwal-Vitter external-memory model to a
// hierarchy in which DRAM and a high-bandwidth scratchpad sit side by side
// below the cache: DRAM transfers blocks of size B, the scratchpad transfers
// blocks of size ρB (ρ > 1), and each block transfer costs 1 regardless of
// size. The cache has size Z, the scratchpad size M ≫ Z, and DRAM is
// arbitrarily large. The parallel variant (Section IV-A) adds p processors,
// of which p′ ≤ p may transfer blocks simultaneously.
//
// All cost functions return expected leading-order block-transfer counts
// (the Θ(·) expressions with constant 1), so callers comparing measured
// counters against the model should expect agreement up to a small constant
// factor with the correct growth in every parameter.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/units"
)

// Params describes one instance of the scratchpad model.
type Params struct {
	N      int64       // input size in elements
	Elem   units.Bytes // element size in bytes (8 for the paper's uint64 keys)
	B      units.Bytes // DRAM block size in bytes
	Rho    float64     // scratchpad bandwidth expansion factor ρ > 1
	M      units.Bytes // scratchpad capacity in bytes
	Z      units.Bytes // cache capacity in bytes
	P      int         // processors on the node
	PPrime int         // processors that may transfer blocks simultaneously
}

// Validate reports whether the parameters satisfy the model's structural
// assumptions: positive sizes, ρ > 1, Z < M, and the tall-cache assumption
// M > B² (in elements, as in the paper's analysis).
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return errors.New("model: N must be positive")
	case p.Elem <= 0:
		return errors.New("model: element size must be positive")
	case p.B <= 0:
		return errors.New("model: B must be positive")
	case p.Rho <= 1:
		return errors.New("model: rho must exceed 1")
	case p.M <= p.Z:
		return errors.New("model: scratchpad must be larger than cache (M > Z)")
	case p.Z < p.B:
		return errors.New("model: cache must hold at least one block (Z >= B)")
	case p.P <= 0 || p.PPrime <= 0:
		return errors.New("model: processor counts must be positive")
	case p.PPrime > p.P:
		return errors.New("model: p' cannot exceed p")
	}
	// Tall cache: M > B² with both in elements.
	bElems := float64(p.B) / float64(p.Elem)
	mElems := float64(p.M) / float64(p.Elem)
	if mElems <= bElems*bElems {
		return fmt.Errorf("model: tall-cache assumption violated: M=%v elems <= B²=%v elems",
			mElems, bElems*bElems)
	}
	return nil
}

// Derived model quantities, all in element units.

// BlockElems returns B in elements: how many keys one DRAM block holds.
func (p Params) BlockElems() float64 { return float64(p.B) / float64(p.Elem) }

// SPBlockElems returns ρB in elements: how many keys one scratchpad block
// holds.
func (p Params) SPBlockElems() float64 { return p.Rho * p.BlockElems() }

// CacheElems returns Z in elements.
func (p Params) CacheElems() float64 { return float64(p.Z) / float64(p.Elem) }

// SPElems returns M in elements.
func (p Params) SPElems() float64 { return float64(p.M) / float64(p.Elem) }

// SampleSize returns m = Θ(M/B), the pivot sample size used by the
// bucketizing scans (Section III-A).
func (p Params) SampleSize() int64 {
	m := int64(float64(p.M) / float64(p.B))
	if m < 2 {
		m = 2
	}
	return m
}

// logBase returns log_base(x) clamped below at 1, the convention used when
// evaluating Θ-expressions of the form log_b(x) that appear as pass counts:
// an algorithm always makes at least one pass. It panics if base <= 1.
func logBase(base, x float64) float64 {
	if base <= 1 {
		panic(fmt.Sprintf("model: log base %v <= 1", base))
	}
	if x <= base {
		return 1
	}
	return math.Log(x) / math.Log(base)
}

// lg is log2 clamped below at 1.
func lg(x float64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(x)
}

// SortDRAMOnly evaluates Theorem 1: sorting N numbers from DRAM with a
// cache of size Z and block (line) size L and no scratchpad requires
// Θ((N/L)·log_{Z/L}(N/L)) block transfers, achieved by multiway merge sort
// with branching factor Z/L. L is given in bytes.
func (p Params) SortDRAMOnly(l units.Bytes) float64 {
	lElems := float64(l) / float64(p.Elem)
	n := float64(p.N)
	return n / lElems * logBase(p.CacheElems()/lElems, n/lElems)
}

// MergeSortDRAMOnly evaluates Theorem 2: binary merge sort from DRAM takes
// Θ((N/L)·lg(N/Z)) block transfers.
func (p Params) MergeSortDRAMOnly(l units.Bytes) float64 {
	lElems := float64(l) / float64(p.Elem)
	n := float64(p.N)
	return n / lElems * lg(n/p.CacheElems())
}

// InScratchpadMergeSort evaluates the first half of Corollary 3: sorting x
// elements resident in the scratchpad with multiway merge sort (branching
// factor Z/B) uses Θ((x/ρB)·log_{Z/B}(x/B)) scratchpad block transfers.
func (p Params) InScratchpadMergeSort(x float64) float64 {
	b := p.BlockElems()
	return x / p.SPBlockElems() * logBase(p.CacheElems()/b, x/b)
}

// InScratchpadQuicksort evaluates the second half of Corollary 3: sorting x
// scratchpad-resident elements with quicksort uses Θ((x/ρB)·lg(x/Z))
// scratchpad block transfers in expectation.
func (p Params) InScratchpadQuicksort(x float64) float64 {
	return x / p.SPBlockElems() * lg(x/p.CacheElems())
}

// ScanCost captures Lemma 4: the costs of one bucketizing scan.
type ScanCost struct {
	DRAMBlocks float64 // O(N/B) transfers from DRAM
	SPBlocks   float64 // O((N/ρB)·log_{Z/ρB}(M/ρB)) transfers from scratchpad
	RAMOps     float64 // O(N·lg M) operations in the RAM model
}

// BucketizingScan evaluates Lemma 4 for one scan over n elements.
func (p Params) BucketizingScan(n float64) ScanCost {
	rb := p.SPBlockElems()
	return ScanCost{
		DRAMBlocks: n / p.BlockElems(),
		SPBlocks:   n / rb * logBase(p.CacheElems()/rb, p.SPElems()/rb),
		RAMOps:     n * lg(p.SPElems()),
	}
}

// ScanCount evaluates Lemma 5: with high probability every bucket fits in
// the scratchpad after O(log_m(N/M)) bucketizing scans, where m = Θ(M/B).
// An input that already fits in the scratchpad needs no bucketizing at all,
// so the count is 1 (the single ingest-and-sort pass).
func (p Params) ScanCount() float64 {
	if float64(p.N) <= p.SPElems() {
		return 1
	}
	m := float64(p.SampleSize())
	return 1 + logBase(m, float64(p.N)/p.SPElems())
}

// SortCost decomposes the total sorting cost by memory level, mirroring the
// statement of Theorem 6.
type SortCost struct {
	DRAMBlocks float64 // block transfers between DRAM and cache
	SPBlocks   float64 // block transfers between scratchpad and cache
}

// Total returns the combined block-transfer count. Under the model both
// kinds cost 1, so the total is the model's running time.
func (c SortCost) Total() float64 { return c.DRAMBlocks + c.SPBlocks }

// ScratchpadSort evaluates Theorem 6: sorting with the scratchpad performs
// Θ((N/B)·log_{M/B}(N/B)) DRAM block transfers and
// Θ((N/ρB)·log_{Z/ρB}(N/B)) scratchpad block transfers w.h.p., which is
// optimal.
func (p Params) ScratchpadSort() SortCost {
	n := float64(p.N)
	b := p.BlockElems()
	rb := p.SPBlockElems()
	return SortCost{
		DRAMBlocks: n / b * logBase(p.SPElems()/b, n/b),
		SPBlocks:   n / rb * logBase(p.CacheElems()/rb, n/b),
	}
}

// ScratchpadSortQuicksort evaluates Corollary 7: using quicksort within the
// scratchpad costs O((N/B)·log_{M/B}(N/B) + (N/ρB)·lg(M/Z)·log_{M/B}(N/B))
// block transfers in expectation.
func (p Params) ScratchpadSortQuicksort() SortCost {
	n := float64(p.N)
	b := p.BlockElems()
	passes := logBase(p.SPElems()/b, n/b)
	return SortCost{
		DRAMBlocks: n / b * passes,
		SPBlocks:   n / p.SPBlockElems() * lg(p.SPElems()/p.CacheElems()) * passes,
	}
}

// QuicksortOptimal reports the condition of Corollary 7: the quicksort
// variant is optimal when ρ = Ω(lg(M/Z)). The returned threshold is
// lg(M/Z); the variant is optimal (up to constants) when ρ >= that value.
func (p Params) QuicksortOptimal() (threshold float64, optimal bool) {
	threshold = lg(p.SPElems() / p.CacheElems())
	return threshold, p.Rho >= threshold
}

// LowerBound evaluates the matching lower bound from Theorem 6:
// Ω((N/B)·log_{M/B}(N/B) + (N/ρB)·log_{Z/ρB}(N/B)) block transfers.
func (p Params) LowerBound() float64 { return p.ScratchpadSort().Total() }

// PEMSort evaluates Theorem 8 (Arge et al.): sorting N numbers in the PEM
// model with p′ processors, caches of size Z, and block size L requires
// Θ((N/(p′L))·log_{Z/L}(N/L)) block-transfer steps. L is in bytes.
func (p Params) PEMSort(l units.Bytes) float64 {
	lElems := float64(l) / float64(p.Elem)
	n := float64(p.N)
	return n / (float64(p.PPrime) * lElems) * logBase(p.CacheElems()/lElems, n/lElems)
}

// ParallelScanCost evaluates Lemma 9: one parallel bucketizing scan costs
// O(N/(p′B)) DRAM block-transfer steps plus
// O((N/(p′ρB))·log_{Z/ρB}(M/ρB)) scratchpad block-transfer steps.
func (p Params) ParallelScanCost(n float64) ScanCost {
	c := p.BucketizingScan(n)
	pp := float64(p.PPrime)
	return ScanCost{DRAMBlocks: c.DRAMBlocks / pp, SPBlocks: c.SPBlocks / pp, RAMOps: c.RAMOps / pp}
}

// ParallelScratchpadSort evaluates Theorem 10: sorting on a node that
// allows p′ simultaneous block transfers takes
// O((N/(p′B))·log_{M/B}(N/B) + (N/(p′ρB))·log_{Z/ρB}(N/B)) block-transfer
// steps w.h.p.
func (p Params) ParallelScratchpadSort() SortCost {
	c := p.ScratchpadSort()
	pp := float64(p.PPrime)
	return SortCost{DRAMBlocks: c.DRAMBlocks / pp, SPBlocks: c.SPBlocks / pp}
}

// Speedup returns the model-predicted ratio of DRAM-only sorting cost
// (Theorem 1 with L = B) to scratchpad sorting cost (Theorem 6). Under the
// architectural regimes the paper targets this approaches ρ.
func (p Params) Speedup() float64 {
	return p.SortDRAMOnly(p.B) / p.ScratchpadSort().Total()
}
