package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperProfileShape(t *testing.T) {
	p := PaperProfile()
	if !p.Valid() {
		t.Fatal("paper profile should be valid")
	}
	// With the paper's own Table I traffic, the minimum useful expansion
	// must sit below 2 (their 2X configuration already won).
	if mr := p.MinRho(); mr >= 2 {
		t.Errorf("MinRho = %v; the paper's 2X column won, so it must be < 2", mr)
	}
	// Predicted bandwidth-bound speedups at the paper's three expansions
	// should be modest and increasing, consistent with their 0.84/0.77/0.71
	// relative times (speedups 1.19/1.30/1.40).
	s2, s4, s8 := p.Speedup(2), p.Speedup(4), p.Speedup(8)
	if !(s2 > 1 && s4 > s2 && s8 > s4) {
		t.Errorf("speedups not increasing: %v %v %v", s2, s4, s8)
	}
	if s8 > p.AsymptoticSpeedup() {
		t.Errorf("speedup %v above its own ceiling %v", s8, p.AsymptoticSpeedup())
	}
	// The paper's measured 8X speedup was 1.40; the pure bandwidth model
	// should land in its neighborhood (it ignores compute, so it can
	// overshoot somewhat).
	if s8 < 1.2 || s8 > 2.5 {
		t.Errorf("8X speedup prediction %v implausible vs paper's 1.40", s8)
	}
}

func TestMinRhoThresholdExact(t *testing.T) {
	p := TrafficProfile{BaseFar: 10, NMFar: 5, NMNear: 10}
	// rho* = 10/(10-5) = 2: below it NM loses, above it wins.
	if got := p.MinRho(); got != 2 {
		t.Fatalf("MinRho = %v, want 2", got)
	}
	if s := p.Speedup(2); math.Abs(s-1) > 1e-12 {
		t.Errorf("speedup at threshold = %v, want 1", s)
	}
	if p.Speedup(1.9) >= 1 {
		t.Error("should lose below threshold")
	}
	if p.Speedup(2.1) <= 1 {
		t.Error("should win above threshold")
	}
}

func TestMinRhoUnwinnable(t *testing.T) {
	p := TrafficProfile{BaseFar: 5, NMFar: 6, NMNear: 1}
	if p.Valid() {
		t.Error("profile with no far saving should be invalid")
	}
	if !math.IsInf(p.MinRho(), 1) && p.MinRho() < 1e300 {
		t.Errorf("MinRho = %v, want effectively infinite", p.MinRho())
	}
}

func TestSpeedupMonotoneProperty(t *testing.T) {
	f := func(b, nf, nn uint16, r1, r2 uint8) bool {
		p := TrafficProfile{
			BaseFar: float64(b%1000) + 1,
			NMFar:   float64(nf%1000) + 1,
			NMNear:  float64(nn%1000) + 1,
		}
		lo := 1 + float64(r1%50)/10
		hi := lo + float64(r2%50)/10 + 0.1
		return p.Speedup(hi) >= p.Speedup(lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedupPanicsOnBadRho(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PaperProfile().Speedup(0)
}

func TestVendorGuidance(t *testing.T) {
	g := VendorGuidance(1.7e9, 16, 8e9, 8, 1e6, PaperProfile())
	if g.MinCores <= 0 {
		t.Errorf("MinCores = %d", g.MinCores)
	}
	if g.MinRho <= 0 || g.MinRho >= 2 {
		t.Errorf("MinRho = %v", g.MinRho)
	}
	if g.SpeedupAt8X <= g.SpeedupAt2X || g.Ceiling < g.SpeedupAt8X {
		t.Errorf("guidance inconsistent: %+v", g)
	}
}
