package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func small() *Cache { return New(1*units.KiB, 64, 2) } // 8 sets, 2 ways

func TestGeometry(t *testing.T) {
	c := small()
	if c.Sets() != 8 {
		t.Errorf("Sets = %d, want 8", c.Sets())
	}
	if c.LineSize() != 64 {
		t.Errorf("LineSize = %v", c.LineSize())
	}
	if c.Capacity() != units.KiB {
		t.Errorf("Capacity = %v", c.Capacity())
	}
	// The paper's L1: 16KB 2-way with 64B lines -> 128 sets.
	l1 := New(16*units.KiB, 64, 2)
	if l1.Sets() != 128 {
		t.Errorf("paper L1 sets = %d, want 128", l1.Sets())
	}
	// The paper's L2: 512KB 16-way -> 512 sets.
	l2 := New(512*units.KiB, 64, 16)
	if l2.Sets() != 512 {
		t.Errorf("paper L2 sets = %d, want 512", l2.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, 64, 2) },
		func() { New(units.KiB, 48, 2) },   // non-power-of-two line
		func() { New(units.KiB, 64, 3) },   // capacity not divisible
		func() { New(3*units.KiB, 64, 2) }, // set count not power of two
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("cold access should miss")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access should hit")
	}
	if r := c.Access(0x1038, false); !r.Hit {
		t.Error("same-line access should hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small() // 8 sets: lines 64B apart, same set every 8*64=512 bytes
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent; b is LRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !c.Contains(d) {
		t.Error("d should be resident")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := small()
	c.Access(0x0000, true)       // dirty
	c.Access(0x0200, false)      // fills other way
	r := c.Access(0x0400, false) // evicts 0x0000 (LRU, dirty)
	if !r.HasWB || r.Writeback != 0x0000 {
		t.Errorf("expected writeback of 0x0000, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writeback count = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small()
	c.Access(0x0000, false)
	c.Access(0x0200, false)
	if r := c.Access(0x0400, false); r.HasWB {
		t.Errorf("clean victim should not write back: %+v", r)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := small()
	c.Access(0x0000, false) // clean fill
	c.Access(0x0000, true)  // write hit -> dirty
	c.Access(0x0200, false)
	if r := c.Access(0x0400, false); !r.HasWB {
		t.Error("write-hit line should be dirty on eviction")
	}
}

func TestFlushDirty(t *testing.T) {
	c := small()
	c.Access(0x0000, true)
	c.Access(0x0040, true)
	c.Access(0x0080, false)
	dirty := c.FlushDirty()
	if len(dirty) != 2 {
		t.Fatalf("FlushDirty returned %d lines, want 2", len(dirty))
	}
	// Second flush: nothing dirty anymore.
	if again := c.FlushDirty(); len(again) != 0 {
		t.Errorf("second flush returned %d lines", len(again))
	}
}

func TestReset(t *testing.T) {
	c := small()
	c.Access(0x0000, true)
	c.Reset()
	if c.Contains(0x0000) {
		t.Error("Reset should invalidate")
	}
	if s := c.Stats(); s.Hits+s.Misses+s.Writebacks != 0 {
		t.Errorf("Reset should clear stats: %+v", s)
	}
}

func TestStreamingMissRate(t *testing.T) {
	// Sequential byte-stream over 64B lines: one miss per line, 7 hits per
	// line at 8B stride.
	c := New(4*units.KiB, 64, 4)
	for a := uint64(0); a < 64*1024; a += 8 {
		c.Access(a, false)
	}
	s := c.Stats()
	if s.Misses != 1024 {
		t.Errorf("misses = %d, want 1024", s.Misses)
	}
	if got := s.MissRate(); got != 0.125 {
		t.Errorf("miss rate = %v, want 0.125", got)
	}
}

func TestWorkingSetFitsHasNoCapacityMisses(t *testing.T) {
	c := New(4*units.KiB, 64, 4)
	// Touch 4KiB twice: second pass must be all hits.
	for a := uint64(0); a < 4096; a += 64 {
		c.Access(a, false)
	}
	before := c.Stats().Misses
	for a := uint64(0); a < 4096; a += 64 {
		if r := c.Access(a, false); !r.Hit {
			t.Fatalf("unexpected miss at %#x on second pass", a)
		}
	}
	if c.Stats().Misses != before {
		t.Error("second pass should add no misses")
	}
}

func TestThrashingWorkingSet(t *testing.T) {
	// A working set 2x the capacity streamed repeatedly with LRU misses
	// every access (the classic LRU worst case).
	c := New(1*units.KiB, 64, 2)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 2048; a += 64 {
			c.Access(a, false)
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Errorf("LRU cyclic thrash should never hit; got %d hits", s.Hits)
	}
}

// TestInclusionProperty checks a resident line stays resident across
// accesses that map to other sets (set isolation).
func TestSetIsolationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		c := New(2*units.KiB, 64, 2)
		home := uint64(0x10000)
		c.Access(home, false)
		// Access 100 lines that all map to a different set.
		a := uint64(seed%1000)*2048 + 64 // offset 64: set 1, home is set 0
		for i := uint64(0); i < 100; i++ {
			c.Access(a+i*2048, false)
		}
		return c.Contains(home)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWritebackConservation: every dirty fill eventually produces exactly
// one writeback (on eviction or flush) — no lost or duplicated dirty data.
func TestWritebackConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(512, 64, 2)
		dirtied := map[uint64]int{} // line -> writes observed
		wb := uint64(0)
		var writes uint64
		for _, op := range ops {
			a := uint64(op%32) * 64
			write := op%3 == 0
			r := c.Access(a, write)
			if write {
				dirtied[a&^63]++
				writes++
			}
			if r.HasWB {
				wb++
			}
		}
		wb += uint64(len(c.FlushDirty()))
		// Every line written at least once must be written back exactly
		// once per dirty episode; total writebacks can't exceed writes and
		// must be at least the number of distinct dirty lines... with
		// re-dirtying, bounds are: distinct-dirty <= wb is false (a line
		// can be evicted dirty multiple times). Conservation bound: wb >= 1
		// if any write happened, and wb <= total writes.
		if writes == 0 {
			return wb == 0
		}
		return wb >= 1 && wb <= writes+uint64(len(dirtied))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(16*units.KiB, 64, 2)
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*8, i%4 == 0)
	}
}
