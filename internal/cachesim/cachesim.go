// Package cachesim provides a set-associative, write-back, write-allocate
// cache model with true LRU replacement. It is used twice in the
// simulation pipeline:
//
//   - as the per-core private L1 (16KB-class, 2-way) that filters the raw
//     access stream at trace-record time, playing the role Ariel's cache
//     components play in the paper's SST configuration (Figure 5), and
//   - as the shared per-group L2 (512KB-class, 16-way) simulated at replay
//     time, where the interleaving of the four cores in a group determines
//     its contents.
//
// The model tracks tags only: data values live in the native Go arrays the
// algorithms operate on, so the cache decides *timing and traffic*, never
// correctness.
package cachesim

import (
	"fmt"

	"repro/internal/units"
)

// Result describes the consequence of one cache access.
type Result struct {
	Hit       bool
	Writeback uint64 // line address of the dirty victim; valid when HasWB
	HasWB     bool   // a dirty line was evicted and must be written back
}

// Stats aggregates cache activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRate returns misses over total accesses (0 for no accesses).
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type way struct {
	tag   uint64 // line address; valid bit folded in via valid flag
	valid bool
	dirty bool
	used  uint64 // global LRU clock value at last touch
}

// Cache is a single set-associative cache. Not safe for concurrent use;
// each L1 belongs to one recording thread and the L2s are touched only from
// the single-threaded event loop.
type Cache struct {
	lineSize  uint64
	setMask   uint64
	setShift  uint
	ways      int
	sets      [][]way
	clock     uint64
	stats     Stats
	capacity  units.Bytes
	setsCount int
}

// New builds a cache of the given capacity, line size, and associativity.
// Capacity must be ways*lineSize*2^k for some k ≥ 0.
func New(capacity, lineSize units.Bytes, ways int) *Cache {
	if capacity <= 0 || lineSize <= 0 || ways <= 0 {
		panic("cachesim: non-positive geometry")
	}
	if uint64(lineSize)&(uint64(lineSize)-1) != 0 {
		panic("cachesim: line size must be a power of two")
	}
	lines := int64(capacity) / int64(lineSize)
	sets := lines / int64(ways)
	if sets <= 0 || sets*int64(ways)*int64(lineSize) != int64(capacity) {
		panic(fmt.Sprintf("cachesim: capacity %v not divisible into %d-way sets of %v lines",
			capacity, ways, lineSize))
	}
	if uint64(sets)&(uint64(sets)-1) != 0 {
		panic("cachesim: set count must be a power of two")
	}
	var shift uint
	for l := uint64(lineSize); l > 1; l >>= 1 {
		shift++
	}
	c := &Cache{
		lineSize:  uint64(lineSize),
		setMask:   uint64(sets) - 1,
		setShift:  shift,
		ways:      ways,
		sets:      make([][]way, sets),
		capacity:  capacity,
		setsCount: int(sets),
	}
	backing := make([]way, int(sets)*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c
}

// Access performs one access to the line containing addr. write marks the
// line dirty (write-allocate). The returned Result reports hit/miss and any
// dirty victim the caller must write back toward memory.
func (c *Cache) Access(addr uint64, write bool) Result {
	line := addr &^ (c.lineSize - 1)
	set := c.sets[(line>>c.setShift)&c.setMask]
	c.clock++

	// Hit path.
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].used = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}

	// Miss: find an invalid way or the LRU victim.
	c.stats.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto fill
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
fill:
	res := Result{}
	if set[victim].valid && set[victim].dirty {
		res.HasWB = true
		res.Writeback = set[victim].tag
		c.stats.Writebacks++
	}
	set[victim] = way{tag: line, valid: true, dirty: write, used: c.clock}
	return res
}

// Contains reports whether the line holding addr is currently cached,
// without perturbing LRU state. Used by tests.
func (c *Cache) Contains(addr uint64) bool {
	line := addr &^ (c.lineSize - 1)
	set := c.sets[(line>>c.setShift)&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			return true
		}
	}
	return false
}

// FlushDirty returns the addresses of all dirty lines and marks them clean.
// Used at the end of a recorded phase to account for the final writeback
// wave (the paper's sorted chunks "scheduled for transfer back to DRAM").
func (c *Cache) FlushDirty() []uint64 {
	var out []uint64
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				out = append(out, set[i].tag)
				set[i].dirty = false
				c.stats.Writebacks++
			}
		}
	}
	return out
}

// Reset invalidates every line and clears statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
	c.stats = Stats{}
	c.clock = 0
}

// Stats returns a copy of the access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// LineSize returns the cache's line size in bytes.
func (c *Cache) LineSize() units.Bytes { return units.Bytes(c.lineSize) }

// Capacity returns the cache's total data capacity.
func (c *Cache) Capacity() units.Bytes { return c.capacity }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() int { return c.setsCount }
