package machine

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/trace"
	"repro/internal/units"
)

// core replays one thread's op stream as an in-order issue processor with
// miss-level parallelism: compute gaps advance time, line fills are issued
// without blocking until MaxOutstanding are in flight, writebacks post,
// barriers and atomics drain outstanding misses first, DMA descriptors hand
// off to the background engine.
type core struct {
	m     *Machine
	id    int
	group int
	shard int // home shard on the sharded engine (0 when sequential)

	// cur streams the thread's ops. For a decoded *Trace it walks the op
	// slice; for an mmapped v3 trace it decodes each op on the fly from the
	// thread's column segments — either way the core only ever sees cur.Cur.
	// eos latches once the stream is exhausted (it is the cursor-world
	// pc >= len(stream)); the current op stays addressable across the
	// stall-return-resume cycles below because Next is only called by
	// advance, never by a resume.
	cur    trace.Cursor
	eos    bool
	period units.Time

	// Pre-bound method-value events, created once per replay. Evaluating a
	// method value (c.run) allocates a bound-method closure every time, so
	// the hot scheduling sites below schedule these fields instead — the
	// three dominant per-op schedules (gap resume, fill completion, DMA
	// completion) then allocate nothing.
	runEv      engine.Event // c.run
	fillDoneEv engine.Event // c.fillDone
	dmaDoneEv  engine.Event // c.dmaDone

	gapDone   bool // the current op's leading gap has been consumed
	inflight  int  // outstanding line fills
	stallFull bool // stalled because all MSHR slots are busy
	draining  bool // stalled until inflight drains to zero
	dmaOut    int  // outstanding DMA copies issued by this core
	dmaWait   bool
	done      bool
}

// run advances the core from the current simulated time. It either
// processes ops until it must wait or finishes the stream. This is the
// per-core replay callback — the dominant event body of every experiment.
//
//nmlint:hotpath
func (c *core) run() {
	for !c.eos {
		op := c.cur.Cur

		// Consume the op's leading compute gap exactly once.
		if !c.gapDone && op.Gap > 0 {
			c.gapDone = true
			c.m.sim.After(units.Time(op.Gap)*c.period, c.runEv)
			return
		}

		switch op.Kind {
		case trace.OpGap:
			// Pure compute carrier; the gap was consumed above.
			c.next()

		case trace.OpAccess:
			if op.Write {
				// Posted writeback: occupies the L2 port but the core
				// continues immediately.
				c.m.writeback(c.group, addr.Addr(op.Addr))
				c.next()
				continue
			}
			if c.inflight >= c.m.cfg.MaxOutstanding {
				c.stallFull = true
				return // fillDone resumes us without advancing the cursor
			}
			done := c.m.fill(c.group, addr.Addr(op.Addr))
			c.inflight++
			c.m.sim.At(done, c.fillDoneEv)
			c.next()

		case trace.OpAtomic:
			if !c.drained() {
				return
			}
			done := c.m.atomic(c.group, addr.Addr(op.Addr))
			c.next()
			if done > c.m.sim.Now() {
				c.m.sim.At(done, c.runEv)
				return
			}

		case trace.OpBarrier:
			if !c.drained() {
				return
			}
			c.next()
			c.m.barrier.arrive(c)
			return

		case trace.OpDMA:
			c.dmaOut++
			c.m.dma.enqueue(c, addr.Addr(op.Addr), addr.Addr(op.Addr2), units.Bytes(op.Size))
			c.next()

		case trace.OpDMAWait:
			if c.dmaOut > 0 {
				c.dmaWait = true
				c.next()
				return // dmaEngine resumes us when the last copy lands
			}
			c.next()

		case trace.OpEnd:
			if !c.drained() {
				return
			}
			c.done = true
			c.next()
			return

		case trace.OpPhase:
			// Timing-neutral marker: snapshot device counters for phase
			// attribution, no memory traffic, no simulated time.
			c.m.notePhase(int(op.Addr))
			c.next()

		default:
			panic(fmt.Sprintf("machine: core %d hit unknown op kind %d", c.id, op.Kind))
		}
	}
	// Replay runs over validated sources, whose cursors never fail; a
	// failure here means the backing bytes changed underneath the replay.
	if err := c.cur.Err(); err != nil {
		panic(fmt.Sprintf("machine: core %d stream broke mid-replay: %v", c.id, err))
	}
}

// outstanding counts the work this core has issued or still owes: line
// fills in flight, unfinished DMA copies, and the op stream itself until
// OpEnd retires. The engine's watchdog flags any nonzero count once the
// event queue drains.
func (c *core) outstanding() int {
	n := c.inflight + c.dmaOut
	if !c.done {
		n++
	}
	return n
}

// drained reports whether all outstanding fills have landed, arranging to
// resume at the drain point if not. Ordering points (atomics, barriers,
// stream end) call this before proceeding.
func (c *core) drained() bool {
	if c.inflight == 0 {
		return true
	}
	c.draining = true
	return false
}

// fillDone retires one outstanding fill and wakes the core if it was
// stalled on a full MSHR or draining.
//
//nmlint:hotpath
func (c *core) fillDone() {
	c.inflight--
	if c.stallFull {
		c.stallFull = false
		c.run()
		return
	}
	if c.draining && c.inflight == 0 {
		c.draining = false
		c.run()
	}
}

// dmaDone retires one background copy issued by this core and wakes it if
// it was parked on an OpDMAWait.
//
//nmlint:hotpath
func (c *core) dmaDone() {
	c.dmaOut--
	if c.dmaWait && c.dmaOut == 0 {
		c.dmaWait = false
		c.run()
	}
}

func (c *core) next() {
	c.eos = !c.cur.Next()
	c.gapDone = false
}

// barrierCtl synchronizes the replaying cores at recorded barrier points
// and logs each release time (the algorithm's phase boundaries).
type barrierCtl struct {
	need     int
	waiting  []*core
	arrivals []units.Time // arrival time of each waiting core, same order
	releases []units.Time
}

func (b *barrierCtl) arrive(c *core) {
	//nmlint:ignore hotpath amortized: the release below recycles the backing array, so growth stops after the first cycle
	b.waiting = append(b.waiting, c)
	//nmlint:ignore hotpath amortized: recycled with waiting at release
	b.arrivals = append(b.arrivals, c.m.sim.Now())
	if len(b.waiting) < b.need {
		return
	}
	released := b.waiting
	arrivals := b.arrivals
	now := c.m.sim.Now()
	//nmlint:ignore hotpath one append per global barrier; bounded by the trace's barrier count
	b.releases = append(b.releases, now)
	if tel := c.m.tel; tel != nil {
		// One wait slice per core, arrival to release, on its own track —
		// the Perfetto view of load imbalance at each phase boundary.
		for i, w := range released {
			tel.Span(c.m.coreTracks[w.id], "barrier-wait", arrivals[i], now)
		}
	}
	for _, w := range released {
		// A release is a cross-shard handoff: the wake executes on behalf
		// of the released core, so route it to that core's home shard
		// rather than letting every wake pile onto the last arriver's.
		c.m.sim.AtShard(w.shard, now, w.runEv)
	}
	// Recycle the buffers for the next cycle: every release is fully walked
	// above (only the scheduled runEv values outlive this call), so the next
	// barrier's arrivals can safely reuse the backing arrays instead of
	// reallocating them once per cycle.
	b.waiting = released[:0]
	b.arrivals = arrivals[:0]
}

// dmaEngine streams bulk copies between the memory devices in the
// background — the paper's §VII future-work extension. A copy occupies
// bandwidth on both the source and destination devices; its completion is
// bounded by the slower side. Copies from different cores proceed
// concurrently (each device's channel resources serialize as needed).
type dmaEngine struct {
	m      *Machine
	issued uint64
	bytes  uint64
}

func (d *dmaEngine) enqueue(c *core, src, dst addr.Addr, n units.Bytes) {
	d.issued++
	d.bytes += uint64(n)
	now := d.m.sim.Now()
	// The source device streams the copy out (reads), the destination
	// absorbs it (writes); each side accounts its own direction.
	var read, write units.Time
	//nmlint:ignore escape-check inlined LevelOf panic formatting; only the cold out-of-window exit allocates
	if addr.LevelOf(src) == addr.Near {
		read = d.m.near.BulkAcquire(now, n, false)
	} else {
		read = d.m.far.BulkAcquire(now, n, false)
	}
	//nmlint:ignore escape-check inlined LevelOf panic formatting; cold exit only
	if addr.LevelOf(dst) == addr.Near {
		write = d.m.near.BulkAcquire(now, n, true)
	} else {
		write = d.m.far.BulkAcquire(now, n, true)
	}
	done := read
	if write > done {
		done = write
	}
	if tel := d.m.tel; tel != nil {
		tel.Span("dma", "copy", now, done)
	}
	d.m.sim.At(done, c.dmaDoneEv)
}
