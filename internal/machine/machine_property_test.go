package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/units"
)

// randomTrace builds a structurally valid trace from fuzz input: every
// thread performs the same number of barriers and the addresses stay
// inside the memory windows. withDMA mixes in background bulk copies;
// the monotonicity property excludes them because a copy occupies every
// channel of both devices, so its contention with demand fills is not
// monotone in channel count.
func randomTrace(ops []uint32, threads int, withDMA bool) *trace.Trace {
	rec := trace.NewRecorder(threads, tinyL1(), trace.DefaultCosts())
	barriers := 0
	for i, o := range ops {
		tp := rec.Thread(i % threads)
		a := addr.FarBase + addr.Addr(o%(1<<22))*8
		if o%3 == 0 {
			a = addr.NearBase + addr.Addr(o%(1<<20))*8
		}
		switch o % 6 {
		case 0, 1:
			tp.Load(a, 8)
		case 2:
			tp.Store(a, 8)
		case 3:
			tp.Compute(int64(o % 4096))
		case 4:
			tp.Atomic(a)
		case 5:
			if !withDMA {
				tp.Compute(int64(o % 512))
				break
			}
			// Background bulk copies in both directions, sometimes waited
			// on, sometimes left outstanding at stream end (the replay
			// must drain them either way).
			n := int(o%256+1) * 64
			far := addr.FarBase + addr.Addr(o%4096)*64
			near := addr.NearBase + addr.Addr(o%4096)*64
			if o%2 == 0 {
				tp.DMA(far, near, n)
			} else {
				tp.DMA(near, far, n)
			}
			if o%7 == 0 {
				tp.DMAWait()
			}
		}
		if o%97 == 0 {
			// Global barrier: every thread must cross it.
			for t := 0; t < threads; t++ {
				rec.Thread(t).Barrier()
			}
			barriers++
		}
	}
	_ = barriers
	return rec.Finish()
}

// TestReplayPropertyInvariants replays fuzzed traces and checks structural
// invariants of the result.
func TestReplayPropertyInvariants(t *testing.T) {
	f := func(ops []uint32, threadsRaw uint8) bool {
		threads := int(threadsRaw%8) + 1
		tr := randomTrace(ops, threads, true)
		m := New(TinyConfig(8, 64*units.MiB))
		res, err := m.Replay(tr)
		if err != nil {
			t.Logf("replay error: %v", err)
			return false
		}
		// (1) Simulated time advances iff the trace has content.
		if tr.Ops() > threads && res.SimTime <= 0 {
			t.Logf("no time advanced for %d ops", tr.Ops())
			return false
		}
		// (2) Device accesses cannot exceed the trace's line ops plus L2
		// writebacks (the L2 only filters, never amplifies reads). Each
		// DMA copy adds its line count on both the source (reads) and the
		// destination (writes) device.
		c := tr.Count()
		var dmaLines uint64
		for _, s := range tr.Streams {
			for _, op := range s {
				if op.Kind == trace.OpDMA {
					dmaLines += uint64(op.Size+63) / 64
				}
			}
		}
		maxDev := c.Far() + c.Near() + c.Atomics + res.L2.Writebacks + 2*dmaLines
		if res.FarAccesses+res.NearAccesses > maxDev {
			t.Logf("device accesses %d exceed trace lines %d",
				res.FarAccesses+res.NearAccesses, maxDev)
			return false
		}
		// (3) Atomics bypass caches entirely: device writes at least the
		// atomic count.
		if res.FarStats.Writes+res.NearStats.Writes < c.Atomics {
			t.Logf("atomics lost: %d device writes < %d atomics",
				res.FarStats.Writes+res.NearStats.Writes, c.Atomics)
			return false
		}
		// (4) Utilization is a fraction of elapsed time: 0 <= u <= 1 for
		// every device. Values above 1 mean Run() returned before posted
		// traffic drained.
		for _, u := range []float64{res.FarUtilization, res.NearUtilization, res.NoCUtilization} {
			if u < 0 || u > 1 {
				t.Logf("utilization %v outside [0,1] (far=%v near=%v noc=%v)",
					u, res.FarUtilization, res.NearUtilization, res.NoCUtilization)
				return false
			}
		}
		// (5) The replay drained: no resource is still busy past SimTime.
		if res.SimTime < m.far.BusyUntil() || res.SimTime < m.near.BusyUntil() ||
			res.SimTime < m.nw.BusyUntil() {
			t.Logf("SimTime %v before busy end (far=%v near=%v noc=%v)",
				res.SimTime, m.far.BusyUntil(), m.near.BusyUntil(), m.nw.BusyUntil())
			return false
		}
		// (6) Every recorded barrier must have released.
		wantBarriers := 0
		for _, op := range tr.Streams[0] {
			if op.Kind == trace.OpBarrier {
				wantBarriers++
			}
		}
		return len(res.BarrierTimes) == wantBarriers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReplayMonotoneInBandwidth: for a fixed trace, more near-memory
// channels can never make the replay slower.
func TestReplayMonotoneInBandwidth(t *testing.T) {
	f := func(ops []uint32) bool {
		if len(ops) == 0 {
			return true
		}
		tr := randomTrace(ops, 4, false)
		var prev units.Time
		first := true
		for _, ch := range []int{2, 8, 32} {
			res, err := Run(TinyConfig(ch, 64*units.MiB), tr)
			if err != nil {
				return false
			}
			if !first && res.SimTime > prev {
				t.Logf("channels %d slower: %v > %v", ch, res.SimTime, prev)
				return false
			}
			prev, first = res.SimTime, false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestReplayTimeLowerBound: the simulated time is at least the slowest
// single thread's pure compute (gaps can only be extended by memory
// stalls, never compressed).
func TestReplayTimeLowerBound(t *testing.T) {
	tr := record(3, func(tid int, tp *trace.TP) {
		tp.Compute(int64(1000 * (tid + 1)))
		tp.Load(addr.FarBase+addr.Addr(tid*4096), 8)
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	period := units.Hz(1.7e9).Period()
	if res.SimTime < 3000*period {
		t.Errorf("SimTime %v below slowest thread's compute %v", res.SimTime, 3000*period)
	}
}

// TestMSHRLimitRespected: with MaxOutstanding=1 a burst of independent
// loads serializes; deeper MSHRs overlap them.
func TestMSHRLimitRespected(t *testing.T) {
	mk := func() *trace.Trace {
		return record(1, func(tid int, tp *trace.TP) {
			for i := 0; i < 64; i++ {
				tp.Load(addr.FarBase+addr.Addr(i*4096), 8)
			}
		})
	}
	shallow := TinyConfig(8, units.MiB)
	shallow.MaxOutstanding = 1
	deep := TinyConfig(8, units.MiB)
	deep.MaxOutstanding = 16
	rs, err := Run(shallow, mk())
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(deep, mk())
	if err != nil {
		t.Fatal(err)
	}
	if speedup := float64(rs.SimTime) / float64(rd.SimTime); speedup < 3 {
		t.Errorf("MSHR depth 16 vs 1 only sped up %.1fx", speedup)
	}
}

// TestL2SharingWithinGroup: cores of one group share an L2; cores of
// different groups do not.
func TestL2SharingWithinGroup(t *testing.T) {
	// Threads 0 and 1 are in group 0 (4 cores/group); thread 4 would be
	// group 1. Same-line loads from the same group hit; from different
	// groups both miss.
	sameGroup := record(2, func(tid int, tp *trace.TP) {
		tp.Load(addr.FarBase, 8)
	})
	res, err := Run(TinyConfig(8, units.MiB), sameGroup)
	if err != nil {
		t.Fatal(err)
	}
	if res.FarAccesses != 1 {
		t.Errorf("same-group sharing broken: %d far accesses", res.FarAccesses)
	}

	rec := trace.NewRecorder(5, tinyL1(), trace.DefaultCosts())
	rec.Thread(0).Load(addr.FarBase, 8)
	rec.Thread(4).Load(addr.FarBase, 8) // different quad-core group
	tr := rec.Finish()
	res, err = Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FarAccesses != 2 {
		t.Errorf("cross-group isolation broken: %d far accesses, want 2", res.FarAccesses)
	}
}
