package machine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/units"
)

// TestReplaySlicedMatchesReplay: running a replay in small event-budget
// slices with a pause callback between them must produce a Result equal in
// every field to an undivided Replay — sequential and sharded. This is the
// machine-level guarantee the harness supervisor's cancellation polling
// stands on.
func TestReplaySlicedMatchesReplay(t *testing.T) {
	tr := shardTestTrace(t, 21, 4000, 8)
	mk := func(shards int) Config {
		cfg := TinyConfig(8, 2*units.MiB)
		cfg.Shards = shards
		return cfg
	}
	for _, shards := range []int{0, 2} {
		ref, err := New(mk(shards)).Replay(tr)
		if err != nil {
			t.Fatalf("shards %d: reference replay: %v", shards, err)
		}
		want := resultKey(ref)
		for _, slice := range []uint64{1, 97, 4096} {
			pauses := 0
			res, err := New(mk(shards)).ReplaySliced(tr, slice, func() error {
				pauses++
				return nil
			})
			if err != nil {
				t.Fatalf("shards %d slice %d: %v", shards, slice, err)
			}
			if pauses == 0 {
				t.Fatalf("shards %d slice %d: pause never ran — test not exercising resume", shards, slice)
			}
			if got := resultKey(res); got != want {
				t.Errorf("shards %d slice %d: result diverged\n got %s\nwant %s", shards, slice, got, want)
			}
		}
	}
}

// TestReplaySlicedBudgetError: when the total budget exhausts across
// slices, the returned error must be indistinguishable from the one an
// unsliced Replay produces — same MaxEvents, last-event time, and pending
// count — so supervised and plain sweeps classify runaways identically.
func TestReplaySlicedBudgetError(t *testing.T) {
	tr := shardTestTrace(t, 9, 2000, 8)
	cfg := TinyConfig(8, 2*units.MiB)
	cfg.MaxEvents = 500
	_, refErr := New(cfg).Replay(tr)
	var refBE *engine.BudgetError
	if !errors.As(refErr, &refBE) {
		t.Fatalf("reference error %v, want BudgetError", refErr)
	}
	for _, slice := range []uint64{7, 100, 499, 500, 1000} {
		_, err := New(cfg).ReplaySliced(tr, slice, func() error { return nil })
		if fmt.Sprint(err) != fmt.Sprint(refErr) {
			t.Fatalf("slice %d: budget error %q, want %q", slice, err, refErr)
		}
	}
}

// TestReplaySlicedPauseAbandons: a pause error abandons the replay — the
// error comes back verbatim (errors.Is-reachable) with the partial result.
func TestReplaySlicedPauseAbandons(t *testing.T) {
	tr := shardTestTrace(t, 3, 2000, 8)
	cause := errors.New("deadline exceeded")
	calls := 0
	res, err := New(TinyConfig(8, 2*units.MiB)).ReplaySliced(tr, 50, func() error {
		calls++
		if calls == 3 {
			return cause
		}
		return nil
	})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the pause error", err)
	}
	if calls != 3 {
		t.Fatalf("pause ran %d times after returning an error, want exactly 3", calls)
	}
	if res.Events == 0 {
		t.Fatal("partial result carries no executed events")
	}
}
