package machine

import (
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/units"
)

func tinyL1() trace.L1Geometry {
	return trace.L1Geometry{Capacity: 256, LineSize: 64, Ways: 2}
}

// record builds a trace with p threads by running body per thread
// sequentially (deterministic, no goroutines needed for these tests).
func record(p int, body func(tid int, tp *trace.TP)) *trace.Trace {
	rec := trace.NewRecorder(p, tinyL1(), trace.DefaultCosts())
	for i := 0; i < p; i++ {
		body(i, rec.Thread(i))
	}
	return rec.Finish()
}

func TestConfigValidate(t *testing.T) {
	cfg := TinyConfig(8, units.MiB)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("TinyConfig invalid: %v", err)
	}
	p := PaperConfig(16, 64*units.MiB)
	if err := p.Validate(); err != nil {
		t.Fatalf("PaperConfig invalid: %v", err)
	}
	bad := p
	bad.Cores = 255 // not divisible by 4
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error")
	}
	bad = p
	bad.NoC.Groups = 3
	if err := bad.Validate(); err == nil {
		t.Error("expected NoC mismatch error")
	}
}

func TestBandwidthExpansion(t *testing.T) {
	for _, tc := range []struct {
		channels int
		want     float64
	}{{8, 2}, {16, 4}, {32, 8}} {
		cfg := PaperConfig(tc.channels, 64*units.MiB)
		if got := cfg.BandwidthExpansion(); got != tc.want {
			t.Errorf("%d near channels: rho = %v, want %v", tc.channels, got, tc.want)
		}
	}
}

func TestSingleFillTiming(t *testing.T) {
	tr := record(1, func(tid int, tp *trace.TP) {
		tp.Load(addr.FarBase, 8)
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	// One fill: L2 port+latency, NoC hop, DRAM closed-row access
	// (tRCD+tCAS = 26ns) + 64B bus, NoC hop back. Must land in a
	// plausible 40–200ns window.
	if res.SimTime < 40*units.Nanosecond || res.SimTime > 200*units.Nanosecond {
		t.Errorf("single fill took %v", res.SimTime)
	}
	if res.FarAccesses != 1 {
		t.Errorf("FarAccesses = %d, want 1", res.FarAccesses)
	}
	if res.NearAccesses != 0 {
		t.Errorf("NearAccesses = %d, want 0", res.NearAccesses)
	}
}

func TestL2HitFasterThanMiss(t *testing.T) {
	// Two threads in the same group touching the same line: the second
	// thread's fill should hit in the shared L2.
	tr := record(2, func(tid int, tp *trace.TP) {
		tp.Load(addr.FarBase, 8)
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FarAccesses != 1 {
		t.Errorf("FarAccesses = %d, want 1 (second fill is an L2 hit)", res.FarAccesses)
	}
	if res.L2.Hits != 1 || res.L2.Misses != 1 {
		t.Errorf("L2 stats = %+v", res.L2)
	}
}

func TestNearAndFarRouted(t *testing.T) {
	tr := record(1, func(tid int, tp *trace.TP) {
		tp.Load(addr.FarBase, 8)
		tp.Load(addr.NearBase, 8)
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FarAccesses != 1 || res.NearAccesses != 1 {
		t.Errorf("far=%d near=%d, want 1/1", res.FarAccesses, res.NearAccesses)
	}
}

func TestWritebackReachesDevice(t *testing.T) {
	// Store then evict through the tiny L1 (2 sets): lines 128B apart
	// share a set; two more fills evict the dirty line. The L2 in
	// TinyConfig is big enough to hold all lines, so the dirty line
	// parks in L2 — it reaches the device only via L1->L2 writeback
	// then L2 remains dirty. Use a store whose final flush pushes it out.
	tr := record(1, func(tid int, tp *trace.TP) {
		tp.Store(addr.FarBase, 8)
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	// The L1 flush at Finish emits a writeback; it lands in L2 (dirty)
	// and never reaches DRAM in this short run. Far sees only the
	// write-allocate fill.
	if res.FarStats.Reads != 1 {
		t.Errorf("FarReads = %d, want 1", res.FarStats.Reads)
	}
	if res.L2.Writebacks != 0 {
		t.Errorf("L2 writebacks = %d, want 0 (line still resident)", res.L2.Writebacks)
	}
}

func TestNearBandwidthScalesTime(t *testing.T) {
	// Stream 64KiB of near-memory lines from 8 threads; quadrupling the
	// near channels should cut the bandwidth-bound portion ~4x.
	mk := func() *trace.Trace {
		return record(8, func(tid int, tp *trace.TP) {
			base := addr.NearBase + addr.Addr(tid*65536)
			for off := 0; off < 65536; off += 64 {
				tp.Load(base+addr.Addr(off), 8)
			}
		})
	}
	// Deep MLP so 8 cores can offer more than the 2-channel capacity.
	slowCfg := TinyConfig(2, 16*units.MiB)
	slowCfg.MaxOutstanding = 16
	fastCfg := TinyConfig(8, 16*units.MiB)
	fastCfg.MaxOutstanding = 16
	slow, err := Run(slowCfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(fastCfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(slow.SimTime) / float64(fast.SimTime)
	if ratio < 1.5 {
		t.Errorf("4x near bandwidth only sped up %vx (slow=%v fast=%v)",
			ratio, slow.SimTime, fast.SimTime)
	}
	if slow.NearUtilization < 0.5 {
		t.Errorf("slow config near utilization %v; workload should saturate it",
			slow.NearUtilization)
	}
}

func TestFarBandwidthUnaffectedByNearChannels(t *testing.T) {
	mk := func() *trace.Trace {
		return record(4, func(tid int, tp *trace.TP) {
			base := addr.FarBase + addr.Addr(tid*65536)
			for off := 0; off < 65536; off += 64 {
				tp.Load(base+addr.Addr(off), 8)
			}
		})
	}
	a, _ := Run(TinyConfig(2, units.MiB), mk())
	b, _ := Run(TinyConfig(32, units.MiB), mk())
	if a.SimTime != b.SimTime {
		t.Errorf("far-only workload changed with near channels: %v vs %v", a.SimTime, b.SimTime)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Thread 0 computes 1000 cycles then hits the barrier; thread 1 hits
	// it immediately, then both load. Total time must include thread 0's
	// compute before any post-barrier op of thread 1 matters.
	tr := record(2, func(tid int, tp *trace.TP) {
		if tid == 0 {
			tp.Compute(100000)
		}
		tp.Barrier()
		tp.Load(addr.FarBase+addr.Addr(tid*4096), 8)
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	period := units.Hz(1.7e9).Period()
	if res.SimTime < 100000*period {
		t.Errorf("SimTime %v shorter than thread 0's pre-barrier compute %v",
			res.SimTime, 100000*period)
	}
}

func TestDeterministicReplay(t *testing.T) {
	mk := func() *trace.Trace {
		return record(8, func(tid int, tp *trace.TP) {
			for i := 0; i < 100; i++ {
				tp.Load(addr.FarBase+addr.Addr((tid*997+i*131)%8192*64), 8)
				tp.Compute(int64(i % 7))
			}
			tp.Barrier()
			tp.Store(addr.NearBase+addr.Addr(tid*4096), 8)
		})
	}
	a, err := Run(TinyConfig(8, units.MiB), mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(TinyConfig(8, units.MiB), mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.FarStats != b.FarStats || a.NearStats != b.NearStats ||
		a.L2 != b.L2 || a.Events != b.Events {
		t.Errorf("replay not deterministic:\n%+v\n%+v", a, b)
	}
	if len(a.BarrierTimes) != len(b.BarrierTimes) {
		t.Fatalf("barrier timelines differ in length")
	}
	for i := range a.BarrierTimes {
		if a.BarrierTimes[i] != b.BarrierTimes[i] {
			t.Errorf("barrier %d released at %v vs %v", i, a.BarrierTimes[i], b.BarrierTimes[i])
		}
	}
}

func TestBarrierTimeline(t *testing.T) {
	tr := record(2, func(tid int, tp *trace.TP) {
		tp.Barrier()
		tp.Compute(1000)
		tp.Barrier()
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BarrierTimes) != 2 {
		t.Fatalf("barrier releases = %d, want 2", len(res.BarrierTimes))
	}
	if res.BarrierTimes[1] <= res.BarrierTimes[0] {
		t.Errorf("barrier times not increasing: %v", res.BarrierTimes)
	}
}

func TestAtomicsReachDevice(t *testing.T) {
	tr := record(2, func(tid int, tp *trace.TP) {
		for i := 0; i < 3; i++ {
			tp.Atomic(addr.NearBase)
		}
	})
	res, err := Run(TinyConfig(8, units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.NearStats.Writes != 6 {
		t.Errorf("near writes = %d, want 6 (atomics bypass caches)", res.NearStats.Writes)
	}
}

func TestDMAOverlapsCompute(t *testing.T) {
	// A core kicks off a 1MiB far->near DMA, computes for a long time,
	// then waits. With DMA the copy hides under compute; the explicit
	// copy (load+store per line) would serialize.
	const n = 1 << 20
	dmaTrace := record(1, func(tid int, tp *trace.TP) {
		tp.DMA(addr.FarBase, addr.NearBase, n)
		tp.Compute(3_000_000) // ~1.7ms at 1.7GHz
		tp.DMAWait()
	})
	res, err := Run(TinyConfig(8, 16*units.MiB), dmaTrace)
	if err != nil {
		t.Fatal(err)
	}
	period := units.Hz(1.7e9).Period()
	compute := 3_000_000 * period
	// 1MiB over one far channel at 8.5GB/s is ~123us < 1.7ms of compute,
	// so the copy must hide entirely (within 5% slack).
	if res.SimTime > compute+compute/20 {
		t.Errorf("DMA did not overlap: total %v vs compute %v", res.SimTime, compute)
	}
}

func TestDMAWaitBlocks(t *testing.T) {
	const n = 1 << 20
	tr := record(1, func(tid int, tp *trace.TP) {
		tp.DMA(addr.FarBase, addr.NearBase, n)
		tp.DMAWait() // no compute: must wait the full transfer
	})
	res, err := Run(TinyConfig(8, 16*units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	// 1MiB at 8.5GB/s ≈ 123us minimum.
	if res.SimTime < 100*units.Microsecond {
		t.Errorf("DMAWait returned too fast: %v", res.SimTime)
	}
}

func TestTooManyThreadsRejected(t *testing.T) {
	tr := record(9, func(tid int, tp *trace.TP) { tp.Compute(1) })
	if _, err := Run(TinyConfig(8, units.MiB), tr); err == nil {
		t.Error("expected error for 9 threads on 8 cores")
	}
}

func TestMachineSingleUse(t *testing.T) {
	tr := record(1, func(tid int, tp *trace.TP) { tp.Load(addr.FarBase, 8) })
	m := New(TinyConfig(8, units.MiB))
	if _, err := m.Replay(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Replay(tr); err == nil {
		t.Error("expected single-use error")
	}
}

func TestInvalidTraceRejected(t *testing.T) {
	rec := trace.NewRecorder(2, tinyL1(), trace.DefaultCosts())
	rec.Thread(0).Barrier() // thread 1 never reaches it
	tr := rec.Finish()
	if _, err := Run(TinyConfig(8, units.MiB), tr); err == nil {
		t.Error("expected barrier-mismatch rejection")
	}
}

func TestRowBufferLocalityVisible(t *testing.T) {
	// Sequential lines in one row should mostly row-hit; random far lines
	// spread over many rows should not.
	seq := record(1, func(tid int, tp *trace.TP) {
		for off := 0; off < 8192; off += 64 {
			tp.Load(addr.FarBase+addr.Addr(off), 8)
		}
	})
	rnd := record(1, func(tid int, tp *trace.TP) {
		for i := 0; i < 128; i++ {
			tp.Load(addr.FarBase+addr.Addr((i*7919)%1024*8192), 8)
		}
	})
	rs, _ := Run(TinyConfig(8, units.MiB), seq)
	rr, _ := Run(TinyConfig(8, units.MiB), rnd)
	if rs.FarStats.RowHitRate() <= rr.FarStats.RowHitRate() {
		t.Errorf("sequential row-hit rate %v not above random %v",
			rs.FarStats.RowHitRate(), rr.FarStats.RowHitRate())
	}
}

func TestDMADirectionStats(t *testing.T) {
	// A far->near copy streams out of the far device (reads) and into the
	// near device (writes); the reverse copy mirrors it. Before the
	// direction fix both devices counted their configured default
	// regardless of which side of the copy they were on.
	const n = 1 << 16
	lines := uint64(n / 64)
	run := func(src, dst addr.Addr) Result {
		t.Helper()
		tr := record(1, func(tid int, tp *trace.TP) {
			tp.DMA(src, dst, n)
			tp.DMAWait()
		})
		res, err := Run(TinyConfig(8, 16*units.MiB), tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fwd := run(addr.FarBase, addr.NearBase)
	if fwd.FarStats.Reads != lines || fwd.FarStats.Writes != 0 {
		t.Errorf("far->near: far stats %+v, want %d reads / 0 writes", fwd.FarStats, lines)
	}
	if fwd.NearStats.Writes != lines || fwd.NearStats.Reads != 0 {
		t.Errorf("far->near: near stats %+v, want %d writes / 0 reads", fwd.NearStats, lines)
	}

	rev := run(addr.NearBase, addr.FarBase)
	if rev.NearStats.Reads != lines || rev.NearStats.Writes != 0 {
		t.Errorf("near->far: near stats %+v, want %d reads / 0 writes", rev.NearStats, lines)
	}
	if rev.FarStats.Writes != lines || rev.FarStats.Reads != 0 {
		t.Errorf("near->far: far stats %+v, want %d writes / 0 reads", rev.FarStats, lines)
	}

	// Round-trip symmetry: source reads equal destination writes.
	if fwd.FarStats.Reads != fwd.NearStats.Writes || rev.NearStats.Reads != rev.FarStats.Writes {
		t.Errorf("DMA read/write accounting asymmetric: %+v / %+v", fwd, rev)
	}
}

func TestPostedWriteDrain(t *testing.T) {
	// Stream dirty lines through the tiny L1 and L2 so the trace ends in a
	// burst of posted writebacks, then check the replay ran until every
	// resource drained. Before the drain fix Run() returned while device
	// buses were still busy, so SimTime undershot and Utilization could
	// exceed 1.
	tr := record(1, func(tid int, tp *trace.TP) {
		// 1024 distinct far lines (64KiB) overflow the 16KiB L2.
		for i := 0; i < 1024; i++ {
			tp.Store(addr.FarBase+addr.Addr(i*64), 8)
		}
	})
	m := New(TinyConfig(8, units.MiB))
	res, err := m.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FarStats.Writes == 0 {
		t.Fatal("workload produced no posted writes; test is vacuous")
	}
	drained := func(name string, b units.Time) {
		t.Helper()
		if res.SimTime < b {
			t.Errorf("SimTime %v inside %s busy period ending %v", res.SimTime, name, b)
		}
	}
	drained("far", m.far.BusyUntil())
	drained("near", m.near.BusyUntil())
	drained("noc", m.nw.BusyUntil())
	for g := range m.l2bus {
		drained(fmt.Sprintf("l2bus[%d]", g), m.l2bus[g].BusyUntil())
	}
	bounded := func(name string, u float64) {
		t.Helper()
		if u < 0 || u > 1 {
			t.Errorf("%s utilization %v outside [0,1]", name, u)
		}
	}
	bounded("far", res.FarUtilization)
	bounded("near", res.NearUtilization)
	bounded("noc", res.NoCUtilization)
}

func TestDMAStatsReported(t *testing.T) {
	tr := record(1, func(tid int, tp *trace.TP) {
		tp.DMA(addr.FarBase, addr.NearBase, 4096)
		tp.DMA(addr.NearBase, addr.FarBase+65536, 8192)
		tp.DMAWait()
	})
	res, err := Run(TinyConfig(8, 16*units.MiB), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.DMACopies != 2 || res.DMABytes != 4096+8192 {
		t.Errorf("DMA stats: copies=%d bytes=%d", res.DMACopies, res.DMABytes)
	}
}
