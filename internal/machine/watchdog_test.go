package machine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/addr"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/units"
)

// TestWatchdogCatchesDroppedCompletion is the acceptance test for the
// stall detector: a core with a fill in flight whose completion event was
// never scheduled (the bug class the watchdog exists for) must surface as
// a StallError naming that core, not as a silently short SimTime.
func TestWatchdogCatchesDroppedCompletion(t *testing.T) {
	m := New(TinyConfig(8, units.MiB))
	tr := record(1, func(tid int, tp *trace.TP) {
		tp.Load(addr.FarBase, 8)
	})
	m.barrier = &barrierCtl{need: 1}
	c := &core{m: m, id: 5, group: 1, cur: tr.CursorAt(0), period: m.cfg.CoreHz.Period()}
	c.eos = !c.cur.Next()
	m.cores = []*core{c}
	m.watch()

	// Issue the fill by hand exactly as core.run does — except the
	// completion event (fillDone) is deliberately dropped.
	m.sim.At(0, func() {
		m.fill(c.group, addr.FarBase)
		c.inflight++
		// Bug under test: no m.sim.At(done, c.fillDone) here.
	})
	_, err := m.sim.RunBudget(DefaultEventBudget)
	var st *engine.StallError
	if !errors.As(err, &st) {
		t.Fatalf("RunBudget = %v, want StallError", err)
	}
	var hit bool
	for _, s := range st.Stalls {
		if s.Component == "core[5]" {
			hit = true
			if s.Outstanding < 1 {
				t.Errorf("core[5] stall reports %d outstanding, want >= 1", s.Outstanding)
			}
		}
	}
	if !hit {
		t.Fatalf("StallError does not name the stalled core: %v", st)
	}
	if !strings.Contains(st.Error(), "core[5]") {
		t.Fatalf("Error() = %q, want core[5] named", st.Error())
	}
}

// TestWatchdogQuietOnCleanReplay confirms a complete replay reports no
// stalls: every watcher drains below its horizon.
func TestWatchdogQuietOnCleanReplay(t *testing.T) {
	tr := record(2, func(tid int, tp *trace.TP) {
		for i := 0; i < 64; i++ {
			if i%3 == 0 {
				tp.Store(addr.FarBase+addr.Addr(4096*i+64*tid), 8)
			} else {
				tp.Load(addr.FarBase+addr.Addr(4096*i+64*tid), 8)
			}
		}
		tp.Barrier()
	})
	if _, err := Run(TinyConfig(8, units.MiB), tr); err != nil {
		t.Fatalf("clean replay: %v", err)
	}
}

// TestReplayBudgetError confirms Config.MaxEvents aborts a replay with a
// BudgetError carrying the budget, and that the default budget passes.
func TestReplayBudgetError(t *testing.T) {
	tr := record(2, func(tid int, tp *trace.TP) {
		for i := 0; i < 256; i++ {
			tp.Load(addr.FarBase+addr.Addr(4096*i+64*tid), 8)
		}
	})
	cfg := TinyConfig(8, units.MiB)
	cfg.MaxEvents = 10
	_, err := Run(cfg, tr)
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Run with MaxEvents=10 = %v, want BudgetError", err)
	}
	if be.MaxEvents != 10 {
		t.Fatalf("budget error carries %d, want 10", be.MaxEvents)
	}

	cfg.MaxEvents = 0 // DefaultEventBudget
	if _, err := Run(cfg, tr); err != nil {
		t.Fatalf("Run with default budget: %v", err)
	}
}

// TestReplayMemFaultOutcome drives the far memory at a brutal error rate
// with a stuck-fault fraction of one, so uncorrectable errors exhaust
// their retries: Replay must complete, return the full result, and surface
// the machine-level fault as a MemFaultError.
func TestReplayMemFaultOutcome(t *testing.T) {
	tr := record(2, func(tid int, tp *trace.TP) {
		for i := 0; i < 512; i++ {
			tp.Load(addr.FarBase+addr.Addr(4096*i+64*tid), 8)
		}
	})
	cfg := TinyConfig(8, units.MiB)
	cfg.Fault = fault.Config{
		Seed:              12345,
		BitErrorRate:      0.5,
		UncorrectableFrac: 1,
		StuckFrac:         1, // every uncorrectable error defeats its retries
		CorrectLatency:    20 * units.Nanosecond,
		RetryBackoff:      100 * units.Nanosecond,
		MaxRetries:        2,
	}
	res, err := Run(cfg, tr)
	var mf *fault.MemFaultError
	if !errors.As(err, &mf) {
		t.Fatalf("Run = %v, want MemFaultError", err)
	}
	if mf.Count == 0 || res.Faults.MemFaults != mf.Count {
		t.Fatalf("MemFaultError count %d vs result %d", mf.Count, res.Faults.MemFaults)
	}
	if res.SimTime == 0 || res.FarAccesses == 0 {
		t.Fatalf("result alongside MemFaultError is empty: %+v", res)
	}
	if mf.First.At == 0 {
		t.Fatalf("first fault has no timestamp: %+v", mf.First)
	}

	// The same replay with the fault layer disabled must be strictly
	// faster: retries and backoff only ever add occupancy.
	cfg.Fault = fault.Config{}
	clean, err := Run(cfg, tr)
	if err != nil {
		t.Fatalf("clean replay: %v", err)
	}
	if clean.SimTime >= res.SimTime {
		t.Fatalf("faulted replay (%v) not slower than clean (%v)", res.SimTime, clean.SimTime)
	}
}
