package machine

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/xrand"
)

// shardTestTrace builds a dense multi-threaded trace with every op kind —
// fills, posted writes, atomics, barriers, DMA with and without waits —
// so a sharded replay exercises every cross-shard path: barrier wakes,
// DMA completions, posted-write drains.
func shardTestTrace(t *testing.T, seed uint64, ops, threads int) *trace.Trace {
	t.Helper()
	r := xrand.New(seed)
	raw := make([]uint32, ops)
	for i := range raw {
		raw[i] = uint32(r.Uint64())
	}
	tr := randomTrace(raw, threads, true)
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	return tr
}

// resultKey flattens every field of a Result that could diverge if event
// order did. Equality of keys across shard counts is the machine-level
// byte-identity check.
func resultKey(res Result) string {
	return fmt.Sprintf("%v|%d|%d|%+v|%+v|%+v|%.9f|%.9f|%.9f|%d|%d|%d|%+v|%+v|%v",
		res.SimTime, res.FarAccesses, res.NearAccesses,
		res.FarStats, res.NearStats, res.L2,
		res.FarUtilization, res.NearUtilization, res.NoCUtilization,
		res.DMACopies, res.DMABytes, res.Events,
		res.Phases, res.Faults, res.BarrierTimes)
}

// TestShardedReplayMatchesSequential replays identical traces on the
// sequential engine and on every shard count, requiring every Result
// field to match exactly.
func TestShardedReplayMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		tr := shardTestTrace(t, seed, 4000, 8)
		mk := func(shards int) Config {
			cfg := TinyConfig(8, 2*units.MiB)
			cfg.Shards = shards
			return cfg
		}
		ref, err := New(mk(0)).Replay(tr)
		if err != nil {
			t.Fatalf("sequential replay: %v", err)
		}
		want := resultKey(ref)
		for _, shards := range []int{1, 2, 7, -1} {
			res, err := New(mk(shards)).Replay(tr)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if got := resultKey(res); got != want {
				t.Errorf("seed %d shards %d: result diverged\n got %s\nwant %s", seed, shards, got, want)
			}
		}
	}
}

// TestShardedReplayWithFaults repeats the identity check with an active
// fault injector: injection is counter-keyed, so fault counters and fault
// timestamps must match the sequential engine bit for bit.
func TestShardedReplayWithFaults(t *testing.T) {
	tr := shardTestTrace(t, 5, 3000, 8)
	mk := func(shards int) Config {
		cfg := TinyConfig(8, 2*units.MiB)
		cfg.Fault = fault.Profile(1234, 1e-3)
		cfg.Shards = shards
		return cfg
	}
	ref, refErr := New(mk(0)).Replay(tr)
	want := resultKey(ref)
	for _, shards := range []int{2, -1} {
		res, err := New(mk(shards)).Replay(tr)
		if fmt.Sprint(err) != fmt.Sprint(refErr) {
			t.Fatalf("shards %d: err %v, want %v", shards, err, refErr)
		}
		if got := resultKey(res); got != want {
			t.Errorf("shards %d: faulted result diverged\n got %s\nwant %s", shards, got, want)
		}
	}
}

// TestShardedReplayBudget: the runaway guard must trip identically — same
// error text (event counts, times, pending) — on both engines.
func TestShardedReplayBudget(t *testing.T) {
	tr := shardTestTrace(t, 9, 2000, 8)
	mk := func(shards int) Config {
		cfg := TinyConfig(8, 2*units.MiB)
		cfg.MaxEvents = 500
		cfg.Shards = shards
		return cfg
	}
	_, refErr := New(mk(0)).Replay(tr)
	if refErr == nil {
		t.Fatal("budget of 500 did not trip on the reference replay")
	}
	_, err := New(mk(4)).Replay(tr)
	if fmt.Sprint(err) != fmt.Sprint(refErr) {
		t.Fatalf("sharded budget error %q, want %q", err, refErr)
	}
}

// TestResolveShards pins the auto/clamp policy.
func TestResolveShards(t *testing.T) {
	cases := []struct {
		shards, groups, want int
	}{
		{0, 8, 0},  // sequential stays sequential
		{1, 8, 1},  // explicit single shard uses the sharded engine
		{4, 8, 4},  // explicit count
		{16, 8, 8}, // clamped to groups
		{-1, 1, 1}, // auto never exceeds groups
	}
	for _, c := range cases {
		if got := resolveShards(c.shards, c.groups); got != c.want {
			t.Errorf("resolveShards(%d, %d) = %d, want %d", c.shards, c.groups, got, c.want)
		}
	}
	if got := resolveShards(-1, 1<<20); got < 1 || got > 1<<20 {
		t.Errorf("auto resolveShards = %d, want within [1, groups]", got)
	}
}

// TestShardLookaheadPositive: the derived window must be positive for the
// paper and tiny configurations, or Shard() would reject it.
func TestShardLookaheadPositive(t *testing.T) {
	for _, cfg := range []Config{TinyConfig(8, 2*units.MiB), PaperConfig(16, 128*units.MiB)} {
		if la := cfg.shardLookahead(); la <= 0 {
			t.Errorf("shardLookahead = %v, want > 0", la)
		}
	}
}
