// Package machine assembles the whole simulated node of the paper's
// Figures 4, 5, and 7 — cores in quad-core groups with shared L2s, an
// on-chip network, a far DDR memory, a near scratchpad memory, optional
// DMA engines — and replays recorded traces through it.
//
// Replay is the second half of the Ariel-style pipeline: internal/trace
// records each thread's L1-filtered memory operations once; Replay runs
// those identical streams against any memory configuration, which is how
// the 2X/4X/8X near-memory experiments of Table I are produced.
package machine

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/addr"
	"repro/internal/cachesim"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/par"
	"repro/internal/spmem"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config describes one node. Zero values are invalid; start from
// PaperConfig or TinyConfig and adjust.
type Config struct {
	Cores         int
	CoresPerGroup int
	CoreHz        units.Hz

	L2Capacity units.Bytes
	L2Ways     int
	L2Latency  units.Time
	L2BW       units.BytesPerSecond // L2 port service bandwidth per group
	LineSize   units.Bytes

	// MaxOutstanding is the per-core miss-level parallelism: how many line
	// fills may be in flight before the core stalls (MSHR depth plus the
	// effect of hardware prefetch on streaming code). Without it a core's
	// demand bandwidth would be capped at one line per round-trip latency
	// and no bandwidth experiment could saturate the channels.
	MaxOutstanding int

	NoC  noc.Config   // Groups is filled in from Cores/CoresPerGroup
	Far  dram.Config  // far (capacity) memory
	Near spmem.Config // near (scratchpad) memory

	// Fault describes the injected fault environment. The zero value (or
	// any config with Seed == 0) models perfect memory and a lossless NoC,
	// bit-identical to a machine without a fault layer.
	Fault fault.Config

	// MaxEvents bounds the events one replay may execute — the
	// runaway-schedule guard. Zero means DefaultEventBudget.
	MaxEvents uint64

	// Shards selects the intra-replay parallel engine: 0 (the default)
	// replays on the sequential engine, a positive count partitions the
	// machine into that many shards (cores binned by home channel group,
	// clamped to the group count), and any negative value picks
	// min(groups, GOMAXPROCS) automatically. Results are byte-identical
	// across every value — sharding only changes where event-queue work
	// happens, never event order.
	Shards int

	// Telemetry, when non-nil, attaches a time-series recorder: every
	// device registers its probes, the engine samples them each epoch, and
	// barrier waits, DMA copies, and MemFaults land on event tracks. Nil
	// (the default) costs nothing — no probes, no samples, no events.
	// Recorders are single-use, like machines.
	Telemetry *telemetry.Recorder
}

// DefaultEventBudget is the generous per-replay event bound used when
// Config.MaxEvents is zero: far beyond any legitimate replay (the Table I
// runs execute tens of millions of events), close enough to abort a
// runaway schedule in reasonable wall time.
const DefaultEventBudget uint64 = 1 << 36

// PaperConfig returns the Figure 4 node: 256 cores at 1.7GHz in quad-core
// groups, 512KB 16-way shared L2 per group, 72GB/s group links with 20ns
// NoC latency, 4-channel DDR-1066 far memory, and a near memory with the
// given channel count (8, 16, 32 → bandwidth expansion 2X, 4X, 8X) and
// capacity.
func PaperConfig(nearChannels int, nearCapacity units.Bytes) Config {
	return Config{
		Cores:          256,
		CoresPerGroup:  4,
		CoreHz:         units.Hz(1.7e9),
		L2Capacity:     512 * units.KiB,
		L2Ways:         16,
		L2Latency:      10 * units.Nanosecond,
		L2BW:           units.GBps(64),
		LineSize:       64,
		MaxOutstanding: 4,
		NoC:            noc.Paper(64),
		Far:            dram.DDR1066(4),
		Near:           spmem.Paper(nearChannels, nearCapacity),
	}
}

// TinyConfig returns a scaled-down node for fast tests: 8 cores in groups
// of 4 with small caches, one far channel, and a near memory with the given
// channels.
func TinyConfig(nearChannels int, nearCapacity units.Bytes) Config {
	cfg := Config{
		Cores:          8,
		CoresPerGroup:  4,
		CoreHz:         units.Hz(1.7e9),
		L2Capacity:     16 * units.KiB,
		L2Ways:         4,
		L2Latency:      10 * units.Nanosecond,
		L2BW:           units.GBps(64),
		LineSize:       64,
		MaxOutstanding: 4,
		NoC:            noc.Paper(2),
		Far:            dram.DDR1066(1),
		Near:           spmem.Paper(nearChannels, nearCapacity),
	}
	return cfg
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.CoresPerGroup <= 0:
		return fmt.Errorf("machine: bad core counts %d/%d", c.Cores, c.CoresPerGroup)
	case c.Cores%c.CoresPerGroup != 0:
		return fmt.Errorf("machine: %d cores not divisible into groups of %d", c.Cores, c.CoresPerGroup)
	case c.NoC.Groups != c.Cores/c.CoresPerGroup:
		return fmt.Errorf("machine: NoC has %d endpoints, want %d groups", c.NoC.Groups, c.Cores/c.CoresPerGroup)
	case c.LineSize != c.Far.LineSize || c.LineSize != c.Near.LineSize:
		return fmt.Errorf("machine: line size mismatch across levels")
	case c.CoreHz <= 0:
		return fmt.Errorf("machine: bad core clock")
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("machine: MaxOutstanding must be positive")
	}
	return c.Fault.Validate()
}

// BandwidthExpansion returns ρ: near aggregate bandwidth over far aggregate
// bandwidth.
func (c Config) BandwidthExpansion() float64 {
	return float64(c.Near.TotalBandwidth()) / float64(c.Far.TotalBandwidth())
}

// Result summarizes one replay.
type Result struct {
	SimTime units.Time // time at which the last event drained

	FarAccesses  uint64 // far-memory device requests (Table I "DRAM Accesses")
	NearAccesses uint64 // near-memory device requests (Table I "Scratchpad Accesses")

	FarStats  dram.Stats
	NearStats spmem.Stats
	L2        cachesim.Stats // aggregated over groups

	FarUtilization  float64
	NearUtilization float64
	NoCUtilization  float64

	DMACopies uint64 // background DMA transfers completed
	DMABytes  uint64 // bytes moved by DMA engines

	Events uint64 // discrete events executed (simulation effort)

	// Phases attributes memory traffic to the algorithm phases the trace
	// marked (trace.OpPhase): one entry per marker, in order, covering
	// [marker, next marker), plus an "(init)" head segment when the first
	// marker arrives after time zero. Empty for traces without markers.
	Phases []telemetry.PhaseUsage

	// Faults summarizes injected-fault activity (zero without a fault
	// layer): ECC corrections, controller retries, uncorrectable faults,
	// degraded near accesses, and NoC retransmissions.
	Faults fault.Stats

	// BarrierTimes records the simulated time of every global barrier
	// release, in order — the phase boundaries of the replayed algorithm.
	// Inter-barrier deltas attribute sim time to algorithm phases.
	BarrierTimes []units.Time
}

// Machine is an instantiated node ready to replay one trace. Machines are
// single-use: build a fresh one per replay so cache and bank state never
// leaks between experiments.
type Machine struct {
	cfg     Config
	sim     *engine.Sim
	l2      []*cachesim.Cache
	l2bus   []*engine.Resource
	nw      *noc.Network
	far     *dram.Device
	near    *spmem.Device
	dma     *dmaEngine
	barrier *barrierCtl
	cores   []*core
	inj     *fault.Injector

	tel        *telemetry.Recorder // nil: telemetry disabled
	coreTracks []string            // per-core span track names (telemetry only)
	phaseNames []string            // the replayed trace's phase-name table
	phaseSnaps []phaseSnap         // device-counter snapshot per OpPhase marker

	// postFree is the LIFO free list of posted-write carriers. Replay is
	// single-threaded inside one engine, so a plain slice is deterministic;
	// pooling makes the posted-write schedule site allocation-free once the
	// list warms up.
	postFree []*postOp
}

// shardLookahead derives the conservative window from the machine's
// minimum cross-component latencies: no memory request completes sooner
// than one NoC transit plus the faster device's minimum service time after
// it is issued, so that sum is a natural batching granularity for the
// sharded engine's horizon windows. (Correctness never depends on it —
// the engine merges globally — but windows much smaller than the real
// event spacing would degenerate to one event per dispatch.)
func (c Config) shardLookahead() units.Time {
	min := c.Far.MinService()
	if n := c.Near.MinService(); n < min {
		min = n
	}
	return c.NoC.MinTransit() + min
}

// resolveShards turns Config.Shards into a concrete shard count for a
// machine with the given group count: 0 stays 0 (sequential engine),
// negative means min(groups, GOMAXPROCS), and explicit counts clamp to
// the groups so no shard is structurally empty.
func resolveShards(shards, groups int) int {
	if shards == 0 {
		return 0
	}
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > groups {
		shards = groups
	}
	return shards
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sim := engine.New()
	groups := cfg.Cores / cfg.CoresPerGroup
	shards := resolveShards(cfg.Shards, groups)
	if shards > 0 {
		sim.Shard(shards, cfg.shardLookahead())
	}
	m := &Machine{
		cfg:   cfg,
		sim:   sim,
		l2:    make([]*cachesim.Cache, groups),
		l2bus: make([]*engine.Resource, groups),
		nw:    noc.New(sim, cfg.NoC),
		far:   dram.New(sim, cfg.Far, addr.FarBase),
		near:  spmem.New(sim, cfg.Near, addr.NearBase),
	}
	for g := 0; g < groups; g++ {
		m.l2[g] = cachesim.New(cfg.L2Capacity, cfg.LineSize, cfg.L2Ways)
		m.l2bus[g] = engine.NewResource(sim, cfg.L2BW)
	}
	m.dma = &dmaEngine{m: m}
	m.inj = fault.New(cfg.Fault)
	m.far.SetFaults(m.inj)
	m.near.SetFaults(m.inj)
	m.nw.SetFaults(m.inj)
	if cfg.Telemetry != nil {
		m.attachTelemetry(cfg.Telemetry)
	}
	return m
}

// attachTelemetry registers every component's probes on tel and installs
// the engine's epoch sampler. Registration order fixes export column order,
// so it must stay deterministic: memory devices, network, fault layer, then
// the machine-level aggregates.
func (m *Machine) attachTelemetry(tel *telemetry.Recorder) {
	tel.Attach()
	m.tel = tel
	m.far.RegisterProbes(tel)
	m.near.RegisterProbes(tel)
	m.nw.RegisterProbes(tel)
	m.inj.RegisterProbes(tel)
	tel.Counter("l2", "hits", func() uint64 { return m.l2Stats().Hits })
	tel.Counter("l2", "misses", func() uint64 { return m.l2Stats().Misses })
	tel.Counter("l2", "writebacks", func() uint64 { return m.l2Stats().Writebacks })
	tel.Counter("dma", "copies", func() uint64 { return m.dma.issued })
	tel.Counter("dma", "bytes", func() uint64 { return m.dma.bytes })
	tel.Counter("sim", "events", m.sim.Executed)
	m.sim.SetSampler(tel.Epoch(), tel.Sample)
}

// l2Stats aggregates the per-group L2 counters.
func (m *Machine) l2Stats() cachesim.Stats {
	var s cachesim.Stats
	for _, l2 := range m.l2 {
		t := l2.Stats()
		s.Hits += t.Hits
		s.Misses += t.Misses
		s.Writebacks += t.Writebacks
	}
	return s
}

// Replay runs the trace to completion and returns the result. The trace
// must have at most Config.Cores threads; thread i runs on core i. It
// accepts any trace.Source: a decoded *Trace or an mmapped *Columnar — the
// replay cores stream either through cursors, so a v3 file replays without
// ever being materialized into op slices.
func (m *Machine) Replay(src trace.Source) (Result, error) {
	return m.ReplaySliced(src, 0, nil)
}

// ReplaySliced is Replay with cooperative preemption: the event budget is
// spent in slices of at most `slice` events (0 means one undivided slice),
// and between slices the pause callback runs on the replay goroutine. A
// non-nil error from pause abandons the replay — the partial result is
// returned with that error. Slicing is observationally invisible
// (engine.RunBudget resume is byte-identical, pinned by engine/slice_test
// and machine's sliced-replay tests), so a supervisor can poll deadlines
// and cancellation between slices without perturbing simulation state.
func (m *Machine) ReplaySliced(src trace.Source, slice uint64, pause func() error) (Result, error) {
	if err := src.Validate(); err != nil {
		return Result{}, err
	}
	threads := src.Threads()
	if threads > m.cfg.Cores {
		return Result{}, fmt.Errorf("machine: trace has %d threads but machine has %d cores",
			threads, m.cfg.Cores)
	}
	if m.cores != nil {
		return Result{}, fmt.Errorf("machine: machines are single-use; build a new one per replay")
	}
	m.barrier = &barrierCtl{need: threads}
	m.cores = make([]*core, threads)
	m.phaseNames = src.PhaseTable()
	if m.tel != nil {
		m.coreTracks = make([]string, threads)
		for i := range m.coreTracks {
			m.coreTracks[i] = fmt.Sprintf("core%d", i)
		}
	}
	// Pre-size the event queue for this trace's steady state: per core one
	// resume event, MaxOutstanding fill completions, and headroom for
	// posted-write and DMA drains. Small traces never reach the bound, so
	// cap it by the total op count; either way it is only a hint. (The op
	// count is Validate-verified above, so a hostile header cannot inflate
	// the reservation.)
	pending := threads*(m.cfg.MaxOutstanding+4) + 64
	if total := src.Ops(); total < pending {
		pending = total + 16
	}
	m.sim.Reserve(pending)
	period := m.cfg.CoreHz.Period()
	nshards := m.sim.Shards()
	for i := 0; i < threads; i++ {
		c := &core{m: m, id: i, group: i / m.cfg.CoresPerGroup, cur: src.CursorAt(i), period: period}
		c.eos = !c.cur.Next() // prime the first op
		if nshards > 0 {
			// Bin cores by home channel group: group g lives on shard
			// g mod shards, so each shard carries a contiguous-ish slice
			// of the machine's traffic.
			c.shard = c.group % nshards
		}
		c.runEv = c.run
		c.fillDoneEv = c.fillDone
		c.dmaDoneEv = c.dmaDone
		m.cores[i] = c
		m.sim.AtShard(c.shard, 0, c.runEv)
	}
	m.watch()
	if nshards > 1 {
		// The pool lives for exactly one replay; without it the sharded
		// engine runs its windows inline (same bytes, no parallelism).
		pool := par.NewPool(nshards)
		defer pool.Close()
		m.sim.SetShardRunner(pool)
	}
	budget := m.cfg.MaxEvents
	if budget == 0 {
		budget = DefaultEventBudget
	}
	sliceSize := slice
	if sliceSize == 0 || sliceSize > budget {
		sliceSize = budget
	}
	var (
		end    units.Time
		runErr error
		ran    uint64
	)
	for {
		step := sliceSize
		if rem := budget - ran; step > rem {
			step = rem
		}
		end, runErr = m.sim.RunBudget(step)
		if runErr == nil {
			break // drained: the replay completed
		}
		var be *engine.BudgetError
		if !errors.As(runErr, &be) {
			break // stall or other terminal failure
		}
		ran += step
		if ran >= budget {
			// The whole budget is spent: report the same error an unsliced
			// RunBudget(budget) would have produced, not the last slice's.
			runErr = &engine.BudgetError{MaxEvents: budget, LastEventAt: be.LastEventAt, Pending: be.Pending}
			break
		}
		runErr = nil
		if pause != nil {
			if err := pause(); err != nil {
				runErr = err
				break
			}
		}
	}

	var res Result
	res.SimTime = end
	res.FarStats = m.far.Stats()
	res.NearStats = m.near.Stats()
	res.FarAccesses = res.FarStats.Accesses()
	res.NearAccesses = res.NearStats.Accesses()
	for _, l2 := range m.l2 {
		s := l2.Stats()
		res.L2.Hits += s.Hits
		res.L2.Misses += s.Misses
		res.L2.Writebacks += s.Writebacks
	}
	res.FarUtilization = m.far.Utilization()
	res.NearUtilization = m.near.Utilization()
	res.NoCUtilization = m.nw.Utilization()
	res.DMACopies = m.dma.issued
	res.DMABytes = m.dma.bytes
	res.Events = m.sim.Executed()
	res.BarrierTimes = m.barrier.releases
	res.Faults = m.inj.Stats()
	res.Phases = m.phaseUsages(end)
	if m.tel != nil {
		for _, f := range res.Faults.Faults {
			m.tel.Instant("faults", "mem_fault", f.At)
		}
		m.tel.Finish(end)
	}
	if runErr != nil {
		// A stalled or runaway replay: the result is returned for diagnosis
		// but its SimTime is not a completion time.
		return res, runErr
	}
	if res.Faults.MemFaults > 0 {
		// The replay ran to completion, but some reads returned uncorrected
		// data: surface the machine-level fault outcome while keeping the
		// full result (fault sweeps treat this as data, not failure).
		return res, &fault.MemFaultError{Count: res.Faults.MemFaults, First: res.Faults.Faults[0]}
	}
	return res, nil
}

// watch registers every component whose pending work the engine's
// watchdog must cross-check when the event queue drains: the memory
// devices and buses (busy horizons) and the cores and barrier (outstanding
// requests). A dropped completion event then yields a StallError naming
// the stuck component instead of a silently short SimTime.
func (m *Machine) watch() {
	m.sim.Watch("far", m.far.BusyUntil, nil)
	m.sim.Watch("near", m.near.BusyUntil, nil)
	m.sim.Watch("noc", m.nw.BusyUntil, nil)
	for g := range m.l2bus {
		m.sim.Watch(fmt.Sprintf("l2bus[%d]", g), m.l2bus[g].BusyUntil, nil)
	}
	for _, c := range m.cores {
		c := c
		m.sim.Watch(fmt.Sprintf("core[%d]", c.id), nil, c.outstanding)
	}
	m.sim.Watch("barrier", nil, func() int { return len(m.barrier.waiting) })
}

// Run is a convenience wrapper: build a machine from cfg and replay src.
func Run(cfg Config, src trace.Source) (Result, error) {
	return New(cfg).Replay(src)
}

// device routes an address to its backing memory.
func (m *Machine) deviceAccess(at units.Time, a addr.Addr, write bool) units.Time {
	//nmlint:ignore escape-check inlined LevelOf panic formatting; only the cold out-of-window exit allocates
	if addr.LevelOf(a) == addr.Near {
		return m.near.Access(at, a, write)
	}
	return m.far.Access(at, a, write)
}

// fill performs a blocking line read for group g and returns the time the
// line reaches the core.
func (m *Machine) fill(g int, a addr.Addr) units.Time {
	t := m.l2bus[g].Acquire(m.cfg.LineSize) + m.cfg.L2Latency
	r := m.l2[g].Access(uint64(a), false)
	if r.Hit {
		return t
	}
	if r.HasWB {
		m.postToMemory(t, g, addr.Addr(r.Writeback))
	}
	arr := m.nw.Send(t, g, 0) // read command, no payload
	dev := m.deviceAccess(arr, a, false)
	resp := m.nw.Deliver(dev, g, m.cfg.LineSize)
	return resp + m.cfg.L2Latency
}

// writeback absorbs an L1 victim into the L2 (write-allocate, full line so
// no fetch); a dirty L2 victim is posted toward memory. Never blocks the
// core beyond the L2 port.
func (m *Machine) writeback(g int, a addr.Addr) units.Time {
	t := m.l2bus[g].Acquire(m.cfg.LineSize) + m.cfg.L2Latency
	r := m.l2[g].Access(uint64(a), true)
	if r.HasWB {
		m.postToMemory(t, g, addr.Addr(r.Writeback))
	} else {
		// Nothing downstream waits on a posted write, so keep the event
		// loop alive until the L2 port drains; otherwise a replay ending
		// in writebacks reports a SimTime inside the port's busy period.
		//nmlint:ignore escape-check capture-free literal; codegen uses one static closure (see TestReplayAllocsPerEvent)
		m.sim.At(t, func() {})
	}
	return t
}

// postOp carries one posted write toward its device. Each carrier's ev
// field is bound to its run method exactly once, at allocation; recycling
// through Machine.postFree then makes posting a write allocation-free. A
// carrier has at most one pending schedule — it returns itself to the free
// list only from inside run, after its fields have been consumed.
type postOp struct {
	m  *Machine
	g  int
	a  addr.Addr
	ev engine.Event // bound to run once; reused across recycles
}

// postFreeCap bounds the postFree free list. The list's length tracks the
// peak number of concurrently posted writes, which a writeback storm can
// spike far above the steady state; carriers past the cap are dropped to
// the GC instead of pinning that peak for the rest of the replay. 256
// carriers (~64 bytes each) comfortably cover the deepest sustained
// posted-write concurrency the paper's configurations reach.
const postFreeCap = 256

// run drains the posted write: route it over the NoC to its device, then
// keep the event loop alive until the write finishes with a no-op
// completion event (see postToMemory).
//
//nmlint:hotpath
func (p *postOp) run() {
	m := p.m
	g, a := p.g, p.a
	if len(m.postFree) < postFreeCap {
		//nmlint:ignore hotpath recycle push bounded by postFreeCap; the backing array stops growing once warm
		m.postFree = append(m.postFree, p)
	}
	arr := m.nw.Send(m.sim.Now(), g, m.cfg.LineSize)
	done := m.deviceAccess(arr, a, true)
	//nmlint:ignore escape-check capture-free literal; codegen uses one static closure (see TestReplayAllocsPerEvent)
	m.sim.At(done, func() {})
}

// postToMemory sends a dirty line toward its device without anything
// waiting for it (posted write). A no-op completion event marks the time
// the write finishes draining: without it Run() can return while the NoC
// and device buses are still busy, making SimTime undershoot the real end
// of traffic and pushing Utilization past 1 on writeback-heavy replays.
func (m *Machine) postToMemory(at units.Time, g int, a addr.Addr) {
	var p *postOp
	if n := len(m.postFree); n > 0 {
		p = m.postFree[n-1]
		m.postFree = m.postFree[:n-1]
	} else {
		//nmlint:ignore hotpath pool miss: one carrier per concurrently posted write, recycled thereafter
		p = &postOp{m: m}
		//nmlint:ignore hotpath bound once per carrier lifetime, at allocation
		p.ev = p.run
	}
	p.g, p.a = g, a
	m.sim.At(at, p.ev)
}

// atomic performs a serialized uncached read-modify-write and returns the
// acknowledgment time.
func (m *Machine) atomic(g int, a addr.Addr) units.Time {
	arr := m.nw.Send(m.sim.Now(), g, m.cfg.LineSize)
	dev := m.deviceAccess(arr, a, true)
	return m.nw.Deliver(dev, g, 0)
}

// phaseSnap captures device totals at the moment an OpPhase marker replays.
// Deltas between consecutive snapshots attribute traffic to phases.
type phaseSnap struct {
	id        int // index into phaseNames, or -1 for synthetic boundaries
	at        units.Time
	farBytes  uint64
	nearBytes uint64
	farBusy   units.Time
	nearBusy  units.Time
}

func (m *Machine) snap(id int, at units.Time) phaseSnap {
	return phaseSnap{
		id: id, at: at,
		farBytes:  m.far.BytesMoved(),
		nearBytes: m.near.BytesMoved(),
		farBusy:   m.far.BusyTime(),
		nearBusy:  m.near.BusyTime(),
	}
}

// notePhase handles a replayed OpPhase marker: snapshot the device counters
// and, with telemetry attached, mark the phase on the recorder's phase track.
func (m *Machine) notePhase(id int) {
	now := m.sim.Now()
	//nmlint:ignore hotpath one append per OpPhase marker; bounded by the trace's marker count
	m.phaseSnaps = append(m.phaseSnaps, m.snap(id, now))
	if m.tel != nil {
		m.tel.MarkPhase(m.phaseNames[id], now)
	}
}

// phaseUsages converts the marker snapshots into per-phase traffic deltas.
// Each phase covers [its marker, the next marker); the last runs to end. A
// synthetic "(init)" segment covers any traffic before the first marker.
func (m *Machine) phaseUsages(end units.Time) []telemetry.PhaseUsage {
	snaps := m.phaseSnaps
	if len(snaps) == 0 {
		return nil
	}
	if snaps[0].at > 0 {
		head := phaseSnap{id: -1}
		snaps = append([]phaseSnap{head}, snaps...)
	}
	final := m.snap(-1, end)
	out := make([]telemetry.PhaseUsage, 0, len(snaps))
	for i, s := range snaps {
		next := final
		if i+1 < len(snaps) {
			next = snaps[i+1]
		}
		name := "(init)"
		if s.id >= 0 {
			name = m.phaseNames[s.id]
		}
		out = append(out, telemetry.PhaseUsage{
			Name:         name,
			Start:        s.at,
			End:          next.at,
			FarBytes:     next.farBytes - s.farBytes,
			NearBytes:    next.nearBytes - s.nearBytes,
			FarBusy:      next.farBusy - s.farBusy,
			NearBusy:     next.nearBusy - s.nearBusy,
			FarChannels:  m.far.Channels(),
			NearChannels: m.near.Channels(),
		})
	}
	return out
}
