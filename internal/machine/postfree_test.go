package machine

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/units"
)

// TestPostFreeCapBound posts far more concurrent writes than postFreeCap
// and checks the free list never retains more than the cap: a writeback
// storm must not pin its peak carrier population for the rest of the replay.
func TestPostFreeCapBound(t *testing.T) {
	m := New(TinyConfig(8, units.MiB))
	const posted = 4 * postFreeCap
	for i := 0; i < posted; i++ {
		// All at time zero: the free list is empty, so every post allocates
		// a fresh carrier and postFreeCap of them can be recycled at most.
		m.postToMemory(0, 0, addr.FarBase+addr.Addr(i*64))
	}
	m.sim.Run()
	if n := len(m.postFree); n != postFreeCap {
		t.Errorf("after %d concurrent posted writes, free list holds %d carriers, want exactly postFreeCap=%d",
			posted, n, postFreeCap)
	}
}

// TestPostFreeReuse checks the steady state: sequential posted writes (each
// drained before the next posts) recycle one carrier instead of allocating.
func TestPostFreeReuse(t *testing.T) {
	m := New(TinyConfig(8, units.MiB))
	m.postToMemory(0, 0, addr.FarBase)
	m.sim.Run()
	if len(m.postFree) != 1 {
		t.Fatalf("free list holds %d carriers after one drained post, want 1", len(m.postFree))
	}
	first := m.postFree[0]
	for i := 1; i <= 32; i++ {
		m.postToMemory(m.sim.Now(), 0, addr.FarBase+addr.Addr(i*64))
		m.sim.Run()
		if len(m.postFree) != 1 {
			t.Fatalf("post %d: free list holds %d carriers, want 1", i, len(m.postFree))
		}
		if m.postFree[0] != first {
			t.Fatalf("post %d: carrier was not recycled", i)
		}
	}
}
