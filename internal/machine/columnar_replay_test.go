package machine

import (
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/units"
)

// TestReplayColumnarEqualsDecoded pins the tentpole replay contract: running
// the machine against a columnar v3 file (decoding each op from mapped
// column bytes inside the event loop) produces a Result deep-equal to
// running it against the decoded *Trace — on both the sequential and the
// sharded engine.
func TestReplayColumnarEqualsDecoded(t *testing.T) {
	tr := record(4, func(tid int, tp *trace.TP) {
		for i := 0; i < 400; i++ {
			tp.Compute(int64(50 + i%9))
			tp.Load(addr.FarBase+addr.Addr(tid<<22+i*64), 8)
			if i%4 == 1 {
				tp.Store(addr.NearBase+addr.Addr(tid<<18+(i%128)*64), 8)
			}
			if i%128 == 64 {
				tp.Atomic(addr.NearBase + addr.Addr(tid<<18))
				tp.DMA(addr.FarBase+addr.Addr(tid<<22), addr.NearBase+addr.Addr(tid<<18), 2048)
				tp.DMAWait()
				tp.Barrier()
			}
		}
		tp.Barrier()
	})
	data, err := trace.EncodeColumnar(tr)
	if err != nil {
		t.Fatal(err)
	}
	col, err := trace.OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{0, 2} {
		cfg := TinyConfig(4, units.MiB)
		cfg.Shards = shards
		want, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("shards=%d decoded: %v", shards, err)
		}
		got, err := Run(cfg, col)
		if err != nil {
			t.Fatalf("shards=%d columnar: %v", shards, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: columnar replay result differs from decoded replay:\n got %+v\nwant %+v",
				shards, got, want)
		}
	}
}
