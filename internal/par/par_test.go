package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/units"
)

func TestRunExecutesAllThreads(t *testing.T) {
	var count int64
	Run(16, nil, func(tid int, tp *trace.TP) {
		if tp != nil {
			t.Error("nil recorder should yield nil probes")
		}
		atomic.AddInt64(&count, 1)
	})
	if count != 16 {
		t.Errorf("ran %d threads, want 16", count)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Run(4, nil, func(tid int, tp *trace.TP) {
		if tid == 2 {
			panic("boom")
		}
	})
}

func TestRunWithRecorder(t *testing.T) {
	rec := trace.NewRecorder(4, trace.L1Geometry{Capacity: 256, LineSize: 64, Ways: 2}, trace.DefaultCosts())
	Run(4, rec, func(tid int, tp *trace.TP) {
		if tp == nil || tp.Tid() != tid {
			t.Errorf("thread %d got wrong probe", tid)
		}
	})
}

func TestBarrierPhases(t *testing.T) {
	const p = 8
	b := NewBarrier(p)
	var phase [p]int32
	Run(p, nil, func(tid int, tp *trace.TP) {
		for ph := 0; ph < 5; ph++ {
			atomic.StoreInt32(&phase[tid], int32(ph))
			b.Wait(tp)
			// After the barrier, every thread must be in this phase or later.
			for i := 0; i < p; i++ {
				if got := atomic.LoadInt32(&phase[i]); got < int32(ph) {
					t.Errorf("thread %d at phase %d while %d passed barrier %d", i, got, tid, ph)
				}
			}
			b.Wait(tp)
		}
	})
}

func TestBarrierRecordsMarkers(t *testing.T) {
	rec := trace.NewRecorder(3, trace.L1Geometry{Capacity: 256, LineSize: 64, Ways: 2}, trace.DefaultCosts())
	b := NewBarrier(3)
	Run(3, rec, func(tid int, tp *trace.TP) {
		b.Wait(tp)
		b.Wait(tp)
	})
	tr := rec.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBarrierSingleParticipant(t *testing.T) {
	b := NewBarrier(1)
	done := false
	Run(1, nil, func(tid int, tp *trace.TP) {
		b.Wait(tp)
		done = true
	})
	if !done {
		t.Error("single-participant barrier must not block")
	}
}

func TestNewBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}

func TestSpanCoversExactly(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw % 10000)
		p := int(pRaw%64) + 1
		covered := 0
		prevHi := 0
		for tid := 0; tid < p; tid++ {
			lo, hi := Span(n, p, tid)
			if lo != prevHi {
				return false // gaps or overlaps
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpanBalanced(t *testing.T) {
	// No thread's share may exceed another's by more than one item.
	n, p := 1000, 7
	min, max := n, 0
	for tid := 0; tid < p; tid++ {
		lo, hi := Span(n, p, tid)
		if sz := hi - lo; sz < min {
			min = sz
		} else if sz > max {
			max = sz
		}
	}
	if max-min > 1 {
		t.Errorf("imbalance: min=%d max=%d", min, max)
	}
}

func TestSpanEmptyInput(t *testing.T) {
	for tid := 0; tid < 4; tid++ {
		lo, hi := Span(0, 4, tid)
		if lo != hi {
			t.Errorf("thread %d got non-empty span of empty input", tid)
		}
	}
}

var _ = units.KiB // keep units import for geometry literals above

func TestBarrierPoisonReleasesWaiters(t *testing.T) {
	// One thread panics before its barrier; the others must fail fast via
	// the poison rather than deadlock, and Run must re-raise the root
	// cause, not the poison sentinel.
	defer func() {
		if r := recover(); r != "root-cause" {
			t.Fatalf("recovered %v, want root-cause", r)
		}
	}()
	b := NewBarrier(4)
	RunPoison(4, nil, b, func(tid int, tp *trace.TP) {
		if tid == 0 {
			panic("root-cause")
		}
		b.Wait(tp)
	})
}

func TestBarrierPoisonedStaysPoisoned(t *testing.T) {
	b := NewBarrier(2)
	b.Poison()
	defer func() {
		if recover() == nil {
			t.Fatal("Wait on poisoned barrier must panic")
		}
	}()
	b.Wait(nil)
}

func TestRunPoisonNilBarrier(t *testing.T) {
	// RunPoison with a nil barrier degrades to plain Run semantics. Each
	// thread writes only its own slot — the join makes the writes visible.
	var ran [3]bool
	RunPoison(3, nil, nil, func(tid int, tp *trace.TP) { ran[tid] = true })
	for tid, ok := range ran {
		if !ok {
			t.Errorf("thread %d did not run", tid)
		}
	}
}
