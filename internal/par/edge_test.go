package par

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// TestSpanEdgeCases pins the partition at the boundaries: fewer items
// than threads, empty input, a single thread, and uneven remainders.
func TestSpanEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		n, p int
		want [][2]int // per-tid [lo, hi)
	}{
		{"fewer items than threads", 3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 3}, {3, 3}}},
		{"one item many threads", 1, 4, [][2]int{{0, 1}, {1, 1}, {1, 1}, {1, 1}}},
		{"empty input", 0, 3, [][2]int{{0, 0}, {0, 0}, {0, 0}}},
		{"single thread", 9, 1, [][2]int{{0, 9}}},
		{"even split", 8, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{"remainder to low tids", 10, 4, [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for tid, want := range tc.want {
				lo, hi := Span(tc.n, tc.p, tid)
				if lo != want[0] || hi != want[1] {
					t.Errorf("Span(%d, %d, %d) = [%d, %d), want [%d, %d)",
						tc.n, tc.p, tid, lo, hi, want[0], want[1])
				}
			}
		})
	}
}

// TestSpanRemaindersSumToN sweeps uneven divisions and checks the shares
// tile [0, n) exactly, each within one item of n/p.
func TestSpanRemaindersSumToN(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 63, 64, 65, 1023} {
		for _, p := range []int{1, 2, 3, 7, 64, 100} {
			prevHi, total := 0, 0
			for tid := 0; tid < p; tid++ {
				lo, hi := Span(n, p, tid)
				if lo != prevHi || hi < lo {
					t.Fatalf("Span(%d, %d, %d) = [%d, %d), prev hi %d: not a tiling",
						n, p, tid, lo, hi, prevHi)
				}
				if sz := hi - lo; sz != n/p && sz != n/p+1 {
					t.Fatalf("Span(%d, %d, %d) share %d not within one of %d",
						n, p, tid, sz, n/p)
				}
				total += hi - lo
				prevHi = hi
			}
			if total != n || prevHi != n {
				t.Fatalf("Span(%d, %d, ·) shares sum to %d, end at %d", n, p, total, prevHi)
			}
		}
	}
}

// TestBarrierPoisonRacesWait drives Poison concurrently with waiters mid
// Wait, repeatedly, so the race detector sees every interleaving class:
// poison before Wait, poison while blocked, poison after release. Every
// waiter must return (by panicking with the sentinel) — no deadlocks.
func TestBarrierPoisonRacesWait(t *testing.T) {
	const waiters = 8
	for round := 0; round < 50; round++ {
		b := NewBarrier(waiters + 1) // never completes: one participant poisons instead
		var wg sync.WaitGroup
		wg.Add(waiters + 1)
		for i := 0; i < waiters; i++ {
			go func() {
				defer wg.Done()
				defer func() {
					if r := recover(); r == nil {
						t.Error("waiter returned without poison panic")
					} else if _, ok := r.(poisonPanic); !ok {
						t.Errorf("waiter recovered %v, want poisonPanic", r)
					}
				}()
				b.Wait(nil)
			}()
		}
		go func() {
			defer wg.Done()
			b.Poison()
		}()
		wg.Wait() // deadlock here means a waiter was never released
	}
}

// TestBarrierPoisonDuringCycles poisons while the barrier is mid-cycle
// under real Run scaffolding: every surviving thread must exit via the
// poison path and RunPoison must surface the root cause.
func TestBarrierPoisonDuringCycles(t *testing.T) {
	defer func() {
		if r := recover(); r != "late-root" {
			t.Fatalf("recovered %v, want late-root", r)
		}
	}()
	const p = 6
	b := NewBarrier(p)
	RunPoison(p, nil, b, func(tid int, tp *trace.TP) {
		for i := 0; i < 3; i++ {
			b.Wait(tp)
		}
		if tid == p-1 {
			panic("late-root")
		}
		b.Wait(tp) // never completes: tid p-1 is gone
	})
}
