package par

// Pool is a persistent fork-join worker pool: k goroutines that park
// between dispatches. It exists for callers that need the fork-join shape
// of Run at a much finer grain — the sharded replay engine dispatches one
// round per conservative time window, tens of thousands of times per
// replay, where spawning fresh goroutines each round would dominate the
// work being parallelized.
//
// Do(task) runs task(0..k-1), one call per worker, and returns when all
// have finished. The channel handoff gives the usual happens-before
// guarantees: writes made by the caller before Do are visible to the
// tasks, and writes made by the tasks are visible to the caller after Do
// returns — so a dispatch is a synchronization barrier, exactly like Run.
//
// Pools must be Closed when done; an unclosed pool leaks its parked
// goroutines. A Pool is not safe for concurrent Do calls.
type Pool struct {
	k      int
	cmd    []chan func(int)
	ack    chan int
	panics []any
	closed bool
}

// NewPool starts a pool of k parked workers.
func NewPool(k int) *Pool {
	if k <= 0 {
		panic("par: pool needs at least one worker")
	}
	p := &Pool{k: k, cmd: make([]chan func(int), k), ack: make(chan int, k), panics: make([]any, k)}
	for i := 0; i < k; i++ {
		p.cmd[i] = make(chan func(int), 1)
		go p.worker(i)
	}
	return p
}

// worker runs tasks from its private command channel until Close. A
// panicking task is captured (not crashed): the panic value is stored in
// the worker's slot and re-raised by Do on the dispatching goroutine, so
// failures surface where the work was requested.
func (p *Pool) worker(i int) {
	for task := range p.cmd[i] {
		p.runOne(i, task)
		p.ack <- i
	}
}

// runOne executes one task with panic capture.
func (p *Pool) runOne(i int, task func(int)) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[i] = r
		}
	}()
	task(i)
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.k }

// Do runs task(i) for every worker index i in [0, k) and blocks until all
// complete. If any task panicked, Do re-raises the panic of the
// lowest-indexed failed worker after every worker has finished (a
// deterministic choice, so tests see a stable failure).
func (p *Pool) Do(task func(k int)) {
	if p.closed {
		panic("par: Do on a closed pool")
	}
	for i := 0; i < p.k; i++ {
		p.cmd[i] <- task
	}
	for i := 0; i < p.k; i++ {
		<-p.ack
	}
	var first any
	for i, r := range p.panics {
		if r != nil {
			if first == nil {
				first = r
			}
			p.panics[i] = nil
		}
	}
	if first != nil {
		panic(first)
	}
}

// Close terminates the workers. Idempotent; Do after Close panics.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for i := 0; i < p.k; i++ {
		close(p.cmd[i])
	}
}
