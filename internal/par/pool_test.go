package par

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryWorkerEveryDispatch checks the fork-join contract over
// many reuses: each Do runs exactly one task per worker index.
func TestPoolRunsEveryWorkerEveryDispatch(t *testing.T) {
	const k, rounds = 4, 100
	p := NewPool(k)
	defer p.Close()
	counts := make([]int64, k)
	for r := 0; r < rounds; r++ {
		p.Do(func(i int) { atomic.AddInt64(&counts[i], 1) })
	}
	for i, c := range counts {
		if c != rounds {
			t.Errorf("worker %d ran %d tasks, want %d", i, c, rounds)
		}
	}
}

// TestPoolHappensBefore verifies the barrier property Do documents: plain
// (non-atomic) writes by the caller are visible to tasks, and task writes
// are visible after Do returns. Run under -race this is a real check, not
// just an assertion.
func TestPoolHappensBefore(t *testing.T) {
	const k = 3
	p := NewPool(k)
	defer p.Close()
	in := make([]int, k)
	out := make([]int, k)
	for r := 1; r <= 50; r++ {
		for i := range in {
			in[i] = r * (i + 1)
		}
		p.Do(func(i int) { out[i] = in[i] * 2 })
		for i := range out {
			if out[i] != 2*r*(i+1) {
				t.Fatalf("round %d worker %d: out = %d, want %d", r, i, out[i], 2*r*(i+1))
			}
		}
	}
}

// TestPoolPanicPropagates requires a task panic to surface on the Do
// caller — deterministically the lowest failed worker index — while the
// pool stays usable for the next dispatch.
func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Do did not propagate the task panic")
			}
			if r != "boom-1" {
				t.Fatalf("Do panicked with %v, want boom-1 (lowest failed worker)", r)
			}
		}()
		p.Do(func(i int) {
			if i == 1 || i == 3 {
				panic("boom-" + string(rune('0'+i)))
			}
		})
	}()
	// The pool must have fully joined and recovered: a clean dispatch works.
	var n int64
	p.Do(func(int) { atomic.AddInt64(&n, 1) })
	if n != 4 {
		t.Fatalf("post-panic dispatch ran %d tasks, want 4", n)
	}
}

// TestPoolCloseIdempotentAndGuarded covers the lifecycle edges.
func TestPoolCloseIdempotentAndGuarded(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Do on a closed pool did not panic")
		}
	}()
	p.Do(func(int) {})
}

// TestPoolSingleWorker degenerates to sequential execution.
func TestPoolSingleWorker(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	sum := 0
	p.Do(func(i int) { sum += i + 7 })
	if sum != 7 {
		t.Fatalf("sum = %d, want 7", sum)
	}
}
