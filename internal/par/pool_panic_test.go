package par

import (
	"fmt"
	"sync"
	"testing"
)

// TestPoolPanicPropagation pins the pool's panic contract under real
// concurrency (run with -race): one worker panics while the others are
// still parked in the dispatch — some panic later, some return normally —
// and Do must (a) wait for every worker before raising, (b) re-raise the
// lowest-indexed panic deterministically, and (c) leave the pool reusable.
func TestPoolPanicPropagation(t *testing.T) {
	p := NewPool(3)
	defer p.Close()

	for round := 0; round < 50; round++ {
		// release opens once worker 2 has panicked, so workers 0 and 1 are
		// provably blocked mid-dispatch while a panic is already captured.
		release := make(chan struct{})
		var once sync.Once
		got := func() (r any) {
			defer func() { r = recover() }()
			p.Do(func(k int) {
				switch k {
				case 2:
					once.Do(func() { close(release) })
					panic(fmt.Sprintf("w2-round%d", round))
				case 0:
					<-release
					panic("w0")
				case 1:
					<-release // returns normally after the first panic
				}
			})
			return nil
		}()
		// Worker 0's panic wins despite worker 2 panicking first in time:
		// the tie-break is by index, not arrival order.
		if got != "w0" {
			t.Fatalf("round %d: recovered %v, want w0", round, got)
		}

		// The pool must be clean for the next dispatch: no stale panics,
		// no stuck workers, results visible after Do (happens-before).
		sums := make([]int, p.Workers())
		p.Do(func(k int) { sums[k] = k + 1 })
		for k, s := range sums {
			if s != k+1 {
				t.Fatalf("round %d: worker %d result %d after panic round", round, k, s)
			}
		}
	}
}

// TestPoolSinglePanicIdentity: a lone panic re-raises with its value
// untouched, including non-string values.
func TestPoolSinglePanicIdentity(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	type marker struct{ n int }
	val := marker{n: 41}
	got := func() (r any) {
		defer func() { r = recover() }()
		p.Do(func(k int) {
			if k == 3 {
				panic(val)
			}
		})
		return nil
	}()
	if got != val {
		t.Fatalf("recovered %#v, want %#v", got, val)
	}
}
