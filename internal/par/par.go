// Package par provides the multi-threaded execution scaffolding the
// algorithms run on at record time: a fork-join runner that gives each
// logical thread its own probe, a reusable cyclic barrier that pairs real
// synchronization with the recorded barrier markers, and static range
// partitioning helpers.
//
// The simulated machine may have far more cores (256) than the host; each
// logical thread is a goroutine, and determinism comes from static work
// partitioning plus barrier-separated phases, never from timing.
package par

import (
	"sync"

	"repro/internal/trace"
)

// Barrier is a reusable cyclic barrier for p participants that also emits
// the trace marker: Wait(tp) records trace.OpBarrier in tp's stream and
// then blocks until all p threads arrive. Replay re-synchronizes the
// simulated cores at exactly these points.
//
// A panicking participant must Poison the barrier (Run's body wrapper in
// the algorithms does this) so the surviving threads fail fast instead of
// deadlocking.
type Barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	p        int
	count    int
	gen      uint64
	poisoned bool
}

// poisonPanic is the value re-raised in threads released by Poison. Run
// prefers reporting any other panic over this sentinel.
type poisonPanic struct{}

func (poisonPanic) String() string { return "par: barrier poisoned by a concurrent panic" }

// NewBarrier returns a barrier for p participants.
func NewBarrier(p int) *Barrier {
	if p <= 0 {
		panic("par: barrier needs at least one participant")
	}
	b := &Barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait records the barrier marker on tp (which may be nil in pure mode)
// and blocks until all participants have called Wait, or panics if the
// barrier has been poisoned.
func (b *Barrier) Wait(tp *trace.TP) {
	tp.Barrier()
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		panic(poisonPanic{})
	}
	gen := b.gen
	b.count++
	if b.count == b.p {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen && !b.poisoned {
			b.cond.Wait()
		}
	}
	poisoned := b.poisoned
	b.mu.Unlock()
	if poisoned {
		panic(poisonPanic{})
	}
}

// Poison permanently releases all current and future waiters with a panic.
// Called from a deferred recover when a participant fails.
func (b *Barrier) Poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Run forks p goroutines executing body(tid, probe) and joins them. rec may
// be nil: every probe is then nil and the algorithms run pure. Panics in a
// body are re-raised on the calling goroutine so test failures surface;
// when several threads panicked (e.g. one root cause plus barrier-poison
// cascades), the first root cause wins.
func Run(p int, rec *trace.Recorder, body func(tid int, tp *trace.TP)) {
	RunPoison(p, rec, nil, body)
}

// RunPoison is Run with barrier-poisoning: if any thread panics, bar (when
// non-nil) is poisoned so siblings blocked on it fail fast instead of
// deadlocking the join.
func RunPoison(p int, rec *trace.Recorder, bar *Barrier, body func(tid int, tp *trace.TP)) {
	if p <= 0 {
		panic("par: need at least one thread")
	}
	var wg sync.WaitGroup
	panics := make([]any, p)
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(tid int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[tid] = r
					if bar != nil {
						bar.Poison()
					}
				}
			}()
			body(tid, rec.Thread(tid))
		}(i)
	}
	wg.Wait()
	var poison any
	for _, pv := range panics {
		if pv == nil {
			continue
		}
		if _, isPoison := pv.(poisonPanic); isPoison {
			poison = pv
			continue
		}
		panic(pv)
	}
	if poison != nil {
		panic(poison)
	}
}

// Span returns the half-open range [lo, hi) of items that thread tid of p
// owns when n items are divided as evenly as possible (the first n%p
// threads get one extra). Static partitioning keeps recorded traces
// deterministic under any goroutine interleaving.
func Span(n, p, tid int) (lo, hi int) {
	q, r := n/p, n%p
	lo = tid*q + min(tid, r)
	hi = lo + q
	if tid < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
