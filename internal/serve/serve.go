// Package serve turns the deterministic replay kernel into a service: a
// content-addressed trace store (record or upload once, share one
// immutable *trace.Trace across every concurrent replay), a result cache
// keyed by the supervisor's CellKey (identical (trace, config) jobs are
// answered without re-simulation, byte for byte), a bounded admission
// gate in front of the supervised worker pool (429 on overload), and
// NDJSON progress/telemetry streaming for long jobs.
//
// The determinism argument is the same one every sweep relies on, lifted
// to the serving layer: traces are immutable after recording, replays are
// pure functions of (trace, config), and cell keys content-address both —
// so a cache hit returns the same bytes a fresh replay would produce, at
// any concurrency, in any arrival order. The package is registered with
// nmlint's simulator-package analyzers: no wall-clock reads and no
// map-iteration-order dependence anywhere in the serving path.
package serve

import "container/list"

// lruIndex is a small mutex-free LRU bookkeeping core shared by the
// result cache and the record memo: a map for lookup plus an intrusive
// recency list for eviction order, so no code path ever ranges over the
// map (Go map order is the canonical nondeterminism source nmlint bans
// from simulator packages). Callers provide their own locking.
type lruIndex[K comparable, V any] struct {
	limit   int // max entries; <= 0 means unbounded
	entries map[K]*list.Element
	order   *list.List // front = most recently used; holds lruPair[K, V]
}

type lruPair[K comparable, V any] struct {
	key K
	val V
}

func newLRUIndex[K comparable, V any](limit int) *lruIndex[K, V] {
	return &lruIndex[K, V]{limit: limit, entries: make(map[K]*list.Element), order: list.New()}
}

// get returns the value for k, marking it most recently used.
func (x *lruIndex[K, V]) get(k K) (V, bool) {
	if e, ok := x.entries[k]; ok {
		x.order.MoveToFront(e)
		return e.Value.(lruPair[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes k, evicting the least recently used entries
// beyond the limit.
func (x *lruIndex[K, V]) put(k K, v V) {
	if e, ok := x.entries[k]; ok {
		e.Value = lruPair[K, V]{key: k, val: v}
		x.order.MoveToFront(e)
		return
	}
	x.entries[k] = x.order.PushFront(lruPair[K, V]{key: k, val: v})
	for x.limit > 0 && x.order.Len() > x.limit {
		oldest := x.order.Back()
		x.order.Remove(oldest)
		delete(x.entries, oldest.Value.(lruPair[K, V]).key)
	}
}

// len reports the entry count.
func (x *lruIndex[K, V]) len() int { return x.order.Len() }
