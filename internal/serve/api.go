package serve

import (
	"fmt"
	"strconv"

	"repro/internal/machine"
)

// The wire types of the nmsimd HTTP/JSON API, shared by the server and
// the Go client so the two cannot drift. All digests travel as 16-hex
// strings (the manifest's stable key form).

// TraceInfo describes one stored trace.
type TraceInfo struct {
	Digest  string `json:"digest"`  // 16-hex trace digest
	Threads int    `json:"threads"` // recorded thread count
	Ops     int64  `json:"ops"`     // total recorded ops
	Bytes   int64  `json:"bytes"`   // resident footprint estimate
}

// RecordRequest asks the server to record an algorithm trace
// (POST /v1/traces/record). Equal requests record byte-identical traces,
// so the response digest is stable and the server memoizes the work.
type RecordRequest struct {
	Alg     string `json:"alg"`               // harness.Algorithm name, e.g. "nmsort"
	N       int    `json:"n"`                 // keys to sort
	Seed    uint64 `json:"seed"`              // input seed
	Threads int    `json:"threads"`           // logical threads (simulated cores)
	SPMiB   int    `json:"sp_mib"`            // scratchpad capacity in MiB
	Buckets int    `json:"buckets,omitempty"` // NMsort bucket override (0 = automatic)
	Dist    string `json:"dist,omitempty"`    // key distribution ("" = uniform)
}

// JobRequest submits one replay cell (POST /v1/jobs): a stored trace
// replayed on one node configuration under the supervised runtime.
type JobRequest struct {
	TraceDigest  string  `json:"trace_digest"`
	Cores        int     `json:"cores"`         // simulated cores (multiple of 4)
	NearChannels int     `json:"near_channels"` // 8/16/32 for the paper's 2X/4X/8X
	SPMiB        int     `json:"sp_mib"`
	FaultSeed    uint64  `json:"fault_seed,omitempty"` // 0 disables injection
	FaultRate    float64 `json:"fault_rate,omitempty"` // far-memory bit error rate in [0, 1]
	MaxEvents    uint64  `json:"max_events,omitempty"` // per-job event budget (0 = server default)
	Shards       int     `json:"shards,omitempty"`     // intra-replay engine shards (byte-neutral)
	Retries      int     `json:"retries,omitempty"`    // deterministic MemFault retries
	RetrySeed    uint64  `json:"retry_seed,omitempty"`
	Label        string  `json:"label,omitempty"` // report label for failure messages

	// Stream switches the response to NDJSON progress: telemetry sample
	// rows as the replay crosses slice boundaries, then phase rows, then
	// one final result (or error) object. Streamed jobs attach a recorder
	// and therefore bypass the result cache (a cached outcome has no
	// samples to stream).
	Stream  bool  `json:"stream,omitempty"`
	EpochPS int64 `json:"epoch_ps,omitempty"` // telemetry epoch in simulated ps (0 = 10us)
}

// JobResponse is one completed replay cell. Identical requests — cold,
// cached, or raced — marshal to identical bytes; the cache-hit indicator
// travels in the X-Nmsimd-Cache header precisely so it cannot perturb
// the body.
type JobResponse struct {
	TraceKey  string         `json:"trace_key"`  // CellKey.Trace, 16-hex
	ConfigKey string         `json:"config_key"` // CellKey.Config, 16-hex
	MemFault  bool           `json:"mem_fault,omitempty"`
	Attempts  int            `json:"attempts"`
	Result    machine.Result `json:"result"`
}

// SweepRequest runs a whole registry experiment server-side
// (POST /v1/sweeps) and returns the rendered report — the same bytes the
// cmd/sweep front end prints for the same parameters, which is the
// client-parity contract the smoke test cmp's. Exp "table1" mirrors
// cmd/nmsim's Table I instead (DMA/Dist/FaultRate apply there).
type SweepRequest struct {
	Exp    string `json:"exp"`
	N      int    `json:"n,omitempty"`      // 0 = 1<<20
	Seed   uint64 `json:"seed,omitempty"`   // 0 = 2015
	Cores  int    `json:"cores,omitempty"`  // 0 = 256
	SPMiB  int    `json:"sp_mib,omitempty"` // 0 = 8
	Format string `json:"format,omitempty"` // "" = text

	CoreList   []int     `json:"core_list,omitempty"`   // -exp=cores axis
	FaultSeed  uint64    `json:"fault_seed,omitempty"`  // -exp=faults / table1 seed
	FaultRates []float64 `json:"fault_rates,omitempty"` // -exp=faults axis
	EpochPS    int64     `json:"epoch_ps,omitempty"`    // -exp=timeline epoch

	Par       int    `json:"par,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Retries   int    `json:"retries,omitempty"`
	RetrySeed uint64 `json:"retry_seed,omitempty"`
	Slice     uint64 `json:"slice,omitempty"`
	MaxEvents uint64 `json:"max_events,omitempty"`

	DMA       bool    `json:"dma,omitempty"`        // table1: §VII DMA engines
	Dist      string  `json:"dist,omitempty"`       // table1: key distribution
	FaultRate float64 `json:"fault_rate,omitempty"` // table1: far bit error rate
}

// Stats is the GET /v1/stats snapshot. TraceBytes counts decoded traces'
// heap footprint; TraceMappedBytes counts mmapped columnar traces' file
// bytes (address space and page cache, not Go heap). The store budget
// spans both.
type Stats struct {
	Traces           int    `json:"traces"`
	TraceBytes       int64  `json:"trace_bytes"`
	TraceMappedBytes int64  `json:"trace_mapped_bytes"`
	CacheEntries     int    `json:"cache_entries"`
	CacheHits        uint64 `json:"cache_hits"`
	CacheMisses      uint64 `json:"cache_misses"`
	Records          int    `json:"records"`
	JobsRunning      int    `json:"jobs_running"`
	JobsAdmitted     int    `json:"jobs_admitted"`
	JobsDone         uint64 `json:"jobs_done"`
	JobsRejected     uint64 `json:"jobs_rejected"`
	SweepsDone       uint64 `json:"sweeps_done"`
}

// ExperimentInfo is one GET /v1/experiments row.
type ExperimentInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

// errorBody is the JSON error envelope on every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"` // supervised failure kind, when one applies
}

// digestString renders a digest in the API's 16-hex form.
func digestString(d uint64) string { return fmt.Sprintf("%016x", d) }

// parseDigest parses the API's 16-hex digest form.
func parseDigest(s string) (uint64, error) {
	d, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: bad digest %q", s)
	}
	return d, nil
}
