package serve_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/harness"
	"repro/internal/serve"
	"repro/internal/trace"
)

// TestUploadColumnarSameDigest pins serialization-independent content
// addressing through the daemon: uploading the v2 stream and the columnar
// v3 encoding of one logical trace yields one digest and one resident
// store entry, and jobs served from the v3 copy answer byte-identically
// to jobs served from the v2 copy.
func TestUploadColumnarSameDigest(t *testing.T) {
	ctx := context.Background()
	rec, err := harness.Record(harness.AlgNMSort, tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	v3, err := trace.EncodeColumnar(rec.Trace)
	if err != nil {
		t.Fatal(err)
	}

	// Server A sees only the v2 stream; server B only the v3 file.
	_, ca := newTestServer(t, serve.Config{})
	srvB, cb := newTestServer(t, serve.Config{})
	infoA, err := ca.UploadTrace(ctx, rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := cb.UploadTraceBytes(ctx, v3)
	if err != nil {
		t.Fatal(err)
	}
	if infoA.Digest != infoB.Digest {
		t.Fatalf("v2 upload digest %s != v3 upload digest %s", infoA.Digest, infoB.Digest)
	}

	rawA, _, _, err := ca.SubmitJob(ctx, tinyJob(infoA.Digest))
	if err != nil {
		t.Fatal(err)
	}
	rawB, _, _, err := cb.SubmitJob(ctx, tinyJob(infoB.Digest))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("job served from v3 differs from v2:\nv2: %s\nv3: %s", rawA, rawB)
	}

	// Re-uploading the other serialization must not duplicate the entry.
	if _, err := cb.UploadTrace(ctx, rec.Trace); err != nil {
		t.Fatal(err)
	}
	if srvB.Store().Len() != 1 {
		t.Fatalf("store holds %d traces after cross-serialization re-upload, want 1", srvB.Store().Len())
	}
}

// TestStoreMappedAccounting pins the heap/mapped budget split: a mapped
// columnar file charges MappedBytes, an uploaded (heap-backed) columnar
// charges Bytes, and both spend the same LRU budget.
func TestStoreMappedAccounting(t *testing.T) {
	tr := storeTrace(t, 0)
	data, err := trace.EncodeColumnar(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.nmt3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	col, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	s := serve.NewStore(1 << 20)
	if _, err := s.Put(col); err != nil {
		t.Fatal(err)
	}
	if s.MappedBytes() != int64(len(data)) {
		t.Fatalf("MappedBytes = %d, want %d", s.MappedBytes(), len(data))
	}
	if s.Bytes() != 0 {
		t.Fatalf("mapped trace charged %d heap bytes", s.Bytes())
	}

	heapCol, err := trace.OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	s2 := serve.NewStore(1 << 20)
	if _, err := s2.Put(heapCol); err != nil {
		t.Fatal(err)
	}
	if s2.Bytes() != int64(len(data)) || s2.MappedBytes() != 0 {
		t.Fatalf("heap columnar charged heap %d / mapped %d, want %d / 0",
			s2.Bytes(), s2.MappedBytes(), len(data))
	}
}

// TestStorePinnedColumnarSurvivesEviction pins the never-unmap-under-a-
// reader contract at the store layer: a pinned columnar trace evicted by
// budget pressure stays fully readable through its cursors until released.
func TestStorePinnedColumnarSurvivesEviction(t *testing.T) {
	tr := storeTrace(t, 0)
	data, err := trace.EncodeColumnar(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.nmt3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	col, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	s := serve.NewStore(int64(len(data))) // room for exactly one entry
	d, err := s.Put(col)
	if err != nil {
		t.Fatal(err)
	}
	src, release, err := s.Pin(d)
	if err != nil {
		t.Fatal(err)
	}
	// Overflow the budget: the pinned mapped entry must survive.
	if _, err := s.Put(storeTrace(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(d); !ok {
		t.Fatal("pinned columnar trace was evicted")
	}
	cur := src.CursorAt(0)
	n := 0
	for cur.Next() {
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("pinned columnar cursor failed: %v", err)
	}
	if n != src.ThreadOps(0) {
		t.Fatalf("pinned cursor produced %d ops, want %d", n, src.ThreadOps(0))
	}
	release()
}
