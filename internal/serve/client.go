package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/trace"
)

// Client is the Go client for the nmsimd API — the remote path behind
// cmd/sweep -server and cmd/nmsim -server, and the test harness's way of
// driving a Server end to end. Job timeouts are the caller's business:
// set HTTP.Timeout or pass deadline contexts.
type Client struct {
	BaseURL string       // e.g. "http://127.0.0.1:8080"
	HTTP    *http.Client // nil means http.DefaultClient
}

// ValidateServerURL checks a -server flag value: an absolute http(s) URL
// with a host. Shared by the cmd front ends so their validation agrees.
func ValidateServerURL(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return fmt.Errorf("-server %q: %v", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("-server %q must be an http:// or https:// URL", s)
	}
	if u.Host == "" {
		return fmt.Errorf("-server %q has no host", s)
	}
	return nil
}

// httpClient resolves the transport.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError turns a non-2xx response into an error carrying the server's
// JSON envelope.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e errorBody
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		if e.Kind != "" {
			return fmt.Errorf("serve: server %s (%s): %s", resp.Status, e.Kind, e.Error)
		}
		return fmt.Errorf("serve: server %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("serve: server %s: %s", resp.Status, bytes.TrimSpace(body))
}

// postJSON POSTs a JSON body and returns the response on 2xx.
func (c *Client) postJSON(ctx context.Context, path string, v any) (*http.Response, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, apiError(resp)
	}
	return resp, nil
}

// UploadTrace ships a trace's serialized stream to the store and returns
// its metadata (digest included).
func (c *Client) UploadTrace(ctx context.Context, tr *trace.Trace) (TraceInfo, error) {
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		return TraceInfo{}, err
	}
	return c.UploadTraceBytes(ctx, buf.Bytes())
}

// UploadTraceBytes ships an already-serialized trace file — either the v2
// stream or the columnar v3 layout; the server sniffs the magic — and
// returns its metadata. Both serializations of one logical trace land on
// the same digest.
func (c *Client) UploadTraceBytes(ctx context.Context, data []byte) (TraceInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/traces", bytes.NewReader(data))
	if err != nil {
		return TraceInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return TraceInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return TraceInfo{}, apiError(resp)
	}
	var info TraceInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// Record asks the server to record an algorithm trace and returns its
// metadata.
func (c *Client) Record(ctx context.Context, req RecordRequest) (TraceInfo, error) {
	resp, err := c.postJSON(ctx, "/v1/traces/record", req)
	if err != nil {
		return TraceInfo{}, err
	}
	defer resp.Body.Close()
	var info TraceInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// FetchTrace downloads a stored trace by digest.
func (c *Client) FetchTrace(ctx context.Context, digest string) (*trace.Trace, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/traces/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp)
	}
	return trace.ReadTrace(resp.Body)
}

// SubmitJob runs one replay cell and returns the response body bytes
// (exactly as served — the byte-identity unit), the decoded response, and
// whether the server answered from its result cache.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (raw []byte, jr JobResponse, cacheHit bool, err error) {
	req.Stream = false
	resp, err := c.postJSON(ctx, "/v1/jobs", req)
	if err != nil {
		return nil, JobResponse{}, false, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, JobResponse{}, false, err
	}
	cacheHit = resp.Header.Get("X-Nmsimd-Cache") == "hit"
	err = json.Unmarshal(raw, &jr)
	return raw, jr, cacheHit, err
}

// StreamJob runs one replay cell with NDJSON streaming, forwarding every
// line to out verbatim. The caller parses the final result line if it
// needs the numbers; the common consumer is a terminal.
func (c *Client) StreamJob(ctx context.Context, req JobRequest, out io.Writer) error {
	req.Stream = true
	resp, err := c.postJSON(ctx, "/v1/jobs", req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(out, resp.Body)
	return err
}

// Sweep runs a whole experiment server-side, returning the rendered
// report body and the failed-cell count (the local exit-code contract's
// remote half).
func (c *Client) Sweep(ctx context.Context, req SweepRequest) (body []byte, failed int, err error) {
	resp, err := c.postJSON(ctx, "/v1/sweeps", req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if h := resp.Header.Get("X-Nmsimd-Failed"); h != "" {
		failed, _ = strconv.Atoi(h)
	}
	return body, failed, nil
}

// Stats fetches the serving counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return Stats{}, apiError(resp)
	}
	var st Stats
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
