package serve

import (
	"sync"

	"repro/internal/harness"
)

// ResultCache is the in-memory harness.CellCache: completed cell outcomes
// keyed content-addressably by CellKey, bounded LRU. Because cell keys
// fingerprint both the trace bytes and the full replay configuration
// (including the retry policy), a hit is byte-equivalent to re-running
// the replay — the whole point of the serving layer's "identical jobs
// answered without re-simulation" contract.
type ResultCache struct {
	mu   sync.Mutex
	idx  *lruIndex[harness.CellKey, harness.CellOutcome]
	hits uint64
	miss uint64
}

// ResultCache implements the supervisor's checkpoint-store interface.
var _ harness.CellCache = (*ResultCache)(nil)

// NewResultCache returns a cache holding at most limit outcomes (<= 0
// means a 4096-entry default).
func NewResultCache(limit int) *ResultCache {
	if limit <= 0 {
		limit = 4096
	}
	return &ResultCache{idx: newLRUIndex[harness.CellKey, harness.CellOutcome](limit)}
}

// Lookup returns the cached outcome for key, if any.
func (c *ResultCache) Lookup(key harness.CellKey) (harness.CellOutcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.idx.get(key)
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return out, ok
}

// Complete stores a finished cell. In-memory completion cannot fail, so
// the error is always nil (the CellCache contract reserves it for stores
// that persist).
func (c *ResultCache) Complete(key harness.CellKey, cell harness.CellOutcome) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.put(key, cell)
	return nil
}

// Peek reports whether key is cached without counting a hit or miss and
// without refreshing recency — the HTTP layer's way to label a response
// cold vs. cached while the supervisor's own Lookup keeps the stats.
func (c *ResultCache) Peek(key harness.CellKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.idx.entries[key]
	return ok
}

// Stats returns (entries, hits, misses) — the cache-hit observability the
// smoke test asserts on.
func (c *ResultCache) Stats() (entries int, hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.len(), c.hits, c.miss
}

// recordMemo memoizes harness.Record results so many requests against
// the same (algorithm, workload) share one recorded trace — the "record
// once" half of the serving story. Keys are RecordKey-normalized
// workloads (replay-only knobs zeroed), so the struct is directly
// comparable. Concurrent first-records of the same key may both run; the
// results are byte-identical by Record's determinism contract, and the
// memo keeps one.
type recordMemo struct {
	mu  sync.Mutex
	idx *lruIndex[recordMemoKey, harness.RecordResult]
}

type recordMemoKey struct {
	alg harness.Algorithm
	w   harness.Workload
}

var _ harness.RecordCache = (*recordMemo)(nil)

func newRecordMemo(limit int) *recordMemo {
	if limit <= 0 {
		limit = 64
	}
	return &recordMemo{idx: newLRUIndex[recordMemoKey, harness.RecordResult](limit)}
}

// LookupRecord implements harness.RecordCache. w must already be
// RecordKey-normalized (Record normalizes before calling).
func (m *recordMemo) LookupRecord(alg harness.Algorithm, w harness.Workload) (harness.RecordResult, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idx.get(recordMemoKey{alg: alg, w: w})
}

// CompleteRecord implements harness.RecordCache.
func (m *recordMemo) CompleteRecord(alg harness.Algorithm, w harness.Workload, res harness.RecordResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.idx.put(recordMemoKey{alg: alg, w: w}, res)
}

// Len reports the memoized record count.
func (m *recordMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.idx.len()
}
