package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config sizes one Server. Zero values select the documented defaults.
type Config struct {
	// Workers bounds concurrently running jobs (0 = 4). Each job may
	// itself fan out over Par replay workers, so total CPU use is
	// Workers x Par in the worst case; daemons size both.
	Workers int
	// Queue bounds jobs waiting beyond Workers before 429 (0 = 64).
	Queue int
	// StoreBytes is the trace store budget (0 = 256 MiB).
	StoreBytes int64
	// CacheEntries bounds the result cache (0 = 4096).
	CacheEntries int
	// Slice is the default supervised per-slice event budget (0 =
	// harness.DefaultSlice) — also the streaming granularity.
	Slice uint64
	// MaxEvents is the default per-job event budget when a request does
	// not set one (0 = machine.DefaultEventBudget).
	MaxEvents uint64
	// MaxUploadBytes bounds POST /v1/traces bodies (0 = 1 GiB).
	MaxUploadBytes int64
}

// Server is the nmsimd serving core: store + cache + gate + handlers.
// Jobs execute synchronously on their request goroutines — the package
// spawns no goroutines of its own, so concurrency is exactly what the
// HTTP layer and the gate admit.
type Server struct {
	cfg     Config
	store   *Store
	cache   *ResultCache
	records *recordMemo
	gate    *Gate
	mux     *http.ServeMux

	jobsDone     atomic.Uint64
	jobsRejected atomic.Uint64
	sweepsDone   atomic.Uint64
}

// New returns a ready Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Queue == 0 {
		cfg.Queue = 64
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 1 << 30
	}
	s := &Server{
		cfg:     cfg,
		store:   NewStore(cfg.StoreBytes),
		cache:   NewResultCache(cfg.CacheEntries),
		records: newRecordMemo(0),
		gate:    NewGate(cfg.Workers, cfg.Queue),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/traces", s.handleUpload)
	s.mux.HandleFunc("POST /v1/traces/record", s.handleRecord)
	s.mux.HandleFunc("GET /v1/traces/{digest}", s.handleFetchTrace)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJob)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	return s
}

// Handler returns the HTTP handler; the daemon wraps it in an
// http.Server, tests in httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the trace store (tests, stats).
func (s *Server) Store() *Store { return s.store }

// Cache exposes the result cache (tests, stats).
func (s *Server) Cache() *ResultCache { return s.cache }

// fail writes the JSON error envelope with a status derived from the
// error's supervised failure kind.
func fail(w http.ResponseWriter, err error, status int) {
	kind := ""
	switch {
	case errors.As(err, new(*harness.ReplayPanicError)):
		kind, status = "panic", http.StatusInternalServerError
	case errors.As(err, new(*harness.CancelledError)):
		kind, status = "cancelled", http.StatusServiceUnavailable
	case errors.Is(err, ErrBusy):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrTraceNotFound):
		status = http.StatusNotFound
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Kind: kind})
}

// writeJSON writes one JSON response body. json.Marshal is deterministic
// for struct types (field order is declaration order), so equal payloads
// are byte-identical — the property the cache-hit cmp test rides on.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(v)
	if err != nil {
		fail(w, fmt.Errorf("serve: encoding response: %w", err), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Write(b)
}

// traceInfo builds the metadata response for a stored trace.
func traceInfo(digest uint64, src trace.Source) TraceInfo {
	heap, mapped := sourceBytes(src)
	return TraceInfo{
		Digest:  digestString(digest),
		Threads: src.Threads(),
		Ops:     int64(src.Ops()),
		Bytes:   heap + mapped,
	}
}

// handleUpload ingests a serialized trace stream into the store, in either
// serialization: v1/v2 (trace.WriteTo bytes, checksum-verified by
// ReadTrace) or columnar v3, sniffed by magic. A v3 upload is stored as a
// *trace.Columnar and replayed straight from its column bytes — but only
// after Verify recomputes both its payload CRC and its content digest: the
// store is content-addressed by the footer's digest claim, so a forged
// footer could otherwise poison the cache entry of a different trace.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	var src trace.Source
	if body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)); err != nil {
		fail(w, fmt.Errorf("serve: reading trace: %w", err), http.StatusBadRequest)
		return
	} else if trace.IsColumnar(body) {
		col, err := trace.OpenBytes(body)
		if err != nil {
			fail(w, fmt.Errorf("serve: reading trace: %w", err), http.StatusBadRequest)
			return
		}
		if err := col.Verify(); err != nil {
			fail(w, fmt.Errorf("serve: reading trace: %w", err), http.StatusBadRequest)
			return
		}
		if err := col.Validate(); err != nil {
			fail(w, fmt.Errorf("serve: invalid trace: %w", err), http.StatusBadRequest)
			return
		}
		src = col
	} else {
		tr, err := trace.ReadTrace(bytes.NewReader(body))
		if err != nil {
			fail(w, fmt.Errorf("serve: reading trace: %w", err), http.StatusBadRequest)
			return
		}
		if err := tr.Validate(); err != nil {
			fail(w, fmt.Errorf("serve: invalid trace: %w", err), http.StatusBadRequest)
			return
		}
		src = tr
	}
	d, err := s.store.Put(src)
	if err != nil {
		fail(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, traceInfo(d, src))
}

// handleRecord records an algorithm trace server-side and stores it.
// Recording is replay-grade CPU work, so it passes the admission gate;
// the record memo makes repeats free.
func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	var req RecordRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, fmt.Errorf("serve: decoding record request: %w", err), http.StatusBadRequest)
		return
	}
	dist, err := parseDist(req.Dist)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	if req.N < 0 || req.Threads <= 0 || req.Threads%4 != 0 || req.SPMiB <= 0 {
		fail(w, fmt.Errorf("serve: bad record workload %+v", req), http.StatusBadRequest)
		return
	}
	release, err := s.gate.Acquire(r.Context())
	if err != nil {
		s.jobsRejected.Add(1)
		fail(w, err, http.StatusTooManyRequests)
		return
	}
	defer release()
	wl := harness.Workload{
		N: req.N, Seed: req.Seed, Threads: req.Threads,
		SP: units.Bytes(req.SPMiB) * units.MiB, Buckets: req.Buckets, Dist: dist,
		Sup: &harness.Supervisor{Ctx: r.Context(), Records: s.records},
	}
	res, err := harness.Record(harness.Algorithm(req.Alg), wl)
	if err != nil {
		fail(w, err, http.StatusUnprocessableEntity)
		return
	}
	d, err := s.store.Put(res.Trace)
	if err != nil {
		fail(w, err, http.StatusInternalServerError)
		return
	}
	s.jobsDone.Add(1)
	writeJSON(w, traceInfo(d, res.Trace))
}

// handleFetchTrace streams a stored trace back in its serialized form —
// v2 bytes for a decoded trace, the raw v3 file for a columnar one (both
// WriteTo implementations satisfy io.WriterTo). The trace stays pinned
// for the duration of the write.
func (s *Server) handleFetchTrace(w http.ResponseWriter, r *http.Request) {
	d, err := parseDigest(r.PathValue("digest"))
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	src, release, err := s.store.Pin(d)
	if err != nil {
		fail(w, err, http.StatusNotFound)
		return
	}
	defer release()
	wt, ok := src.(io.WriterTo)
	if !ok {
		fail(w, fmt.Errorf("serve: trace %016x is not serializable", d), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	wt.WriteTo(w)
}

// jobConfig translates a JobRequest into the machine configuration,
// applying the server's default event budget.
func (s *Server) jobConfig(req JobRequest) machine.Config {
	cfg := harness.NodeFor(req.Cores, req.NearChannels, units.Bytes(req.SPMiB)*units.MiB)
	if req.FaultRate > 0 {
		cfg.Fault = fault.Profile(req.FaultSeed, req.FaultRate)
	}
	cfg.MaxEvents = req.MaxEvents
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = s.cfg.MaxEvents
	}
	cfg.Shards = req.Shards
	return cfg
}

// validateJob rejects malformed job parameters up front.
func validateJob(req JobRequest) error {
	switch {
	case req.Cores <= 0 || req.Cores%4 != 0:
		return fmt.Errorf("serve: cores %d must be a positive multiple of 4", req.Cores)
	case req.NearChannels <= 0:
		return fmt.Errorf("serve: near_channels %d must be positive", req.NearChannels)
	case req.SPMiB <= 0:
		return fmt.Errorf("serve: sp_mib %d must be positive", req.SPMiB)
	case req.FaultRate < 0 || req.FaultRate > 1 || req.FaultRate != req.FaultRate:
		return fmt.Errorf("serve: fault_rate %v must be in [0, 1]", req.FaultRate)
	case req.Retries < 0:
		return fmt.Errorf("serve: retries %d is negative", req.Retries)
	case req.Shards < -1:
		return fmt.Errorf("serve: shards %d is invalid", req.Shards)
	case req.EpochPS < 0:
		return fmt.Errorf("serve: epoch_ps %d is negative", req.EpochPS)
	}
	return nil
}

// handleJob runs one replay cell: admission gate, trace pin, supervised
// replay (panic-contained, deterministically retried, cache-backed), one
// JSON result. Stream requests answer in NDJSON instead.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, fmt.Errorf("serve: decoding job request: %w", err), http.StatusBadRequest)
		return
	}
	if err := validateJob(req); err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	digest, err := parseDigest(req.TraceDigest)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	release, err := s.gate.Acquire(r.Context())
	if err != nil {
		s.jobsRejected.Add(1)
		fail(w, err, http.StatusTooManyRequests)
		return
	}
	defer release()
	tr, unpin, err := s.store.Pin(digest)
	if err != nil {
		fail(w, err, http.StatusNotFound)
		return
	}
	defer unpin()

	cfg := s.jobConfig(req)
	sup := &harness.Supervisor{
		Ctx: r.Context(), Slice: s.cfg.Slice,
		Retries: req.Retries, RetrySeed: req.RetrySeed,
		Cache: s.cache,
	}
	if req.Stream {
		s.streamJob(w, req, sup, cfg, tr, digest)
		return
	}
	hit := s.cache.Peek(harness.CellKey{Trace: digest, Config: harness.ConfigDigest(cfg, sup.Retries, sup.RetrySeed)})
	key, out, err := sup.ReplayCell(cfg, tr, req.Label)
	if err != nil {
		fail(w, err, http.StatusInternalServerError)
		return
	}
	s.jobsDone.Add(1)
	if hit {
		w.Header().Set("X-Nmsimd-Cache", "hit")
	} else {
		w.Header().Set("X-Nmsimd-Cache", "miss")
	}
	writeJSON(w, JobResponse{
		TraceKey:  digestString(key.Trace),
		ConfigKey: digestString(key.Config),
		MemFault:  out.MemFault,
		Attempts:  out.Attempts,
		Result:    out.Result,
	})
}

// streamJob is the NDJSON variant: a telemetry recorder samples the
// replay, and the supervisor's between-slice hook flushes new sample rows
// to the client as they appear — live progress derived purely from
// simulated time, so the stream contents are byte-deterministic even
// though their pacing is not. The final line is the job's result object
// (or an error object; the HTTP status is already committed by then).
func (s *Server) streamJob(w http.ResponseWriter, req JobRequest, sup *harness.Supervisor, cfg machine.Config, tr trace.Source, digest uint64) {
	epoch := units.Time(req.EpochPS)
	if epoch <= 0 {
		epoch = harness.DefaultEpoch
	}
	rec := telemetry.New(epoch)
	cfg.Telemetry = rec // also disqualifies the cell from the result cache

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Nmsimd-Cache", "bypass")
	flusher, _ := w.(http.Flusher)
	sent := 0
	drain := func() error {
		for ; sent < rec.Samples(); sent++ {
			if err := rec.WriteSampleNDJSON(w, sent); err != nil {
				return fmt.Errorf("serve: client gone: %w", err)
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	// The between-slice hook runs on this goroutine (the replay executes
	// synchronously below), so drain needs no locking. A write error
	// cancels the replay at the next slice boundary — abandoned clients
	// stop burning simulation time.
	sup.Interrupt = drain

	key, out, err := sup.ReplayCell(cfg, tr, req.Label)
	if derr := drain(); err == nil && derr != nil {
		err = derr
	}
	if err != nil {
		json.NewEncoder(w).Encode(struct {
			Type string `json:"type"`
			errorBody
		}{Type: "error", errorBody: errorBody{Error: err.Error(), Kind: harness.FailKind(err)}})
		return
	}
	telemetry.WritePhasesNDJSON(w, out.Result.Phases)
	resp := struct {
		Type string `json:"type"`
		JobResponse
	}{Type: "result", JobResponse: JobResponse{
		TraceKey:  digestString(key.Trace),
		ConfigKey: digestString(key.Config),
		MemFault:  out.MemFault,
		Attempts:  out.Attempts,
		Result:    out.Result,
	}}
	s.jobsDone.Add(1)
	json.NewEncoder(w).Encode(resp)
}

// parseDist parses a distribution name, "" meaning uniform.
func parseDist(s string) (workload.Dist, error) {
	if s == "" {
		return "", nil
	}
	return workload.Parse(s)
}

// normalizeSweep fills a sweep request's defaulted fields with the
// cmd/sweep flag defaults, so a minimal request renders the same bytes a
// flagless sweep run prints.
func normalizeSweep(req SweepRequest) SweepRequest {
	if req.N == 0 {
		req.N = 1 << 20
	}
	if req.Seed == 0 {
		req.Seed = 2015
	}
	if req.Cores == 0 {
		req.Cores = 256
	}
	if req.SPMiB == 0 {
		req.SPMiB = 8
	}
	if req.Format == "" {
		req.Format = "text"
	}
	return req
}

// handleSweep runs a whole experiment server-side and returns the
// rendered report — the cmd/sweep parity path. The count of failed cells
// travels in X-Nmsimd-Failed so remote clients can reproduce the local
// exit-code contract.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(w, fmt.Errorf("serve: decoding sweep request: %w", err), http.StatusBadRequest)
		return
	}
	req = normalizeSweep(req)
	f, err := report.ParseFormat(req.Format)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	dist, err := parseDist(req.Dist)
	if err != nil {
		fail(w, err, http.StatusBadRequest)
		return
	}
	_, known := harness.FindExperiment(req.Exp)
	if !known && req.Exp != "table1" {
		fail(w, fmt.Errorf("serve: unknown experiment %q (want table1 or one of: %s)",
			req.Exp, strings.Join(harness.ExperimentNames(), ", ")), http.StatusBadRequest)
		return
	}
	if req.Cores <= 0 || req.Cores%4 != 0 {
		fail(w, fmt.Errorf("serve: cores %d must be a positive multiple of 4", req.Cores), http.StatusBadRequest)
		return
	}
	release, err := s.gate.Acquire(r.Context())
	if err != nil {
		s.jobsRejected.Add(1)
		fail(w, err, http.StatusTooManyRequests)
		return
	}
	defer release()

	sup := &harness.Supervisor{
		Ctx: r.Context(), Slice: req.Slice,
		Retries: req.Retries, RetrySeed: req.RetrySeed,
		Cache: s.cache, Records: s.records,
	}
	if sup.Slice == 0 {
		sup.Slice = s.cfg.Slice
	}
	wl := harness.Workload{
		N: req.N, Seed: req.Seed, Threads: req.Cores,
		SP: units.Bytes(req.SPMiB) * units.MiB, Dist: dist,
		MaxEvents: req.MaxEvents, Par: req.Par, Shards: req.Shards,
		Sup: sup,
	}

	// Render into a buffer first: a failed experiment must still be able
	// to answer with a clean error status.
	var body strings.Builder
	var failed int
	if req.Exp == "table1" {
		var fc fault.Config
		if req.FaultRate > 0 {
			fc = fault.Profile(req.FaultSeed, req.FaultRate)
		}
		t, err := harness.Table1Faults(wl, req.DMA, fc)
		if err != nil {
			fail(w, err, http.StatusUnprocessableEntity)
			return
		}
		failed = t.Failed()
		if f == report.Text {
			fmt.Fprint(&body, t.String())
		} else if err := t.Report().Render(&body, f); err != nil {
			fail(w, err, http.StatusInternalServerError)
			return
		}
	} else {
		e, _ := harness.FindExperiment(req.Exp)
		p := harness.ExperimentParams{
			CoreList:   req.CoreList,
			FaultSeed:  req.FaultSeed,
			FaultRates: req.FaultRates,
			Epoch:      units.Time(req.EpochPS),
		}
		sw, err := e.Run(p, wl)
		if err != nil {
			fail(w, err, http.StatusUnprocessableEntity)
			return
		}
		failed = sw.Failed()
		if f == report.Text {
			fmt.Fprint(&body, sw.String())
		} else if err := sw.Report().Render(&body, f); err != nil {
			fail(w, err, http.StatusInternalServerError)
			return
		}
	}
	s.sweepsDone.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Nmsimd-Failed", fmt.Sprintf("%d", failed))
	io.WriteString(w, body.String())
}

// handleStats snapshots the serving counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, hits, misses := s.cache.Stats()
	writeJSON(w, Stats{
		Traces:           s.store.Len(),
		TraceBytes:       s.store.Bytes(),
		TraceMappedBytes: s.store.MappedBytes(),
		CacheEntries:     entries,
		CacheHits:        hits,
		CacheMisses:      misses,
		Records:          s.records.Len(),
		JobsRunning:      s.gate.Running(),
		JobsAdmitted:     s.gate.Admitted(),
		JobsDone:         s.jobsDone.Load(),
		JobsRejected:     s.jobsRejected.Load(),
		SweepsDone:       s.sweepsDone.Load(),
	})
}

// handleExperiments lists the shared registry.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	infos := make([]ExperimentInfo, 0, len(harness.Experiments)+1)
	for _, e := range harness.Experiments {
		infos = append(infos, ExperimentInfo{Name: e.Name, Desc: e.Desc})
	}
	infos = append(infos, ExperimentInfo{Name: "table1", Desc: "the paper's Table I (cmd/nmsim parity); dma/dist/fault_rate apply"})
	writeJSON(w, infos)
}
