package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/serve"
	"repro/internal/units"
)

// tinyWorkload mirrors the harness test workload: 16 cores, small input,
// fast enough to record and replay many times under -race.
func tinyWorkload() harness.Workload {
	return harness.Workload{N: 1 << 13, Seed: 7, Threads: 16, SP: 64 * units.KiB}
}

// newTestServer starts a serving stack on httptest and returns a client
// bound to it.
func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	srv := serve.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, &serve.Client{BaseURL: hs.URL, HTTP: hs.Client()}
}

// recordAndUpload records the tiny NMsort trace locally and uploads it.
func recordAndUpload(t *testing.T, c *serve.Client) serve.TraceInfo {
	t.Helper()
	rec, err := harness.Record(harness.AlgNMSort, tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadTrace(context.Background(), rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// tinyJob is the golden job the determinism tests submit.
func tinyJob(digest string) serve.JobRequest {
	return serve.JobRequest{
		TraceDigest:  digest,
		Cores:        16,
		NearChannels: 16,
		SPMiB:        1,
	}
}

// TestUploadRoundTrip pins content addressing end to end: upload, fetch,
// re-digest — same bytes, same digest, and a second upload of the same
// trace does not grow the store.
func TestUploadRoundTrip(t *testing.T) {
	srv, c := newTestServer(t, serve.Config{})
	info := recordAndUpload(t, c)
	if srv.Store().Len() != 1 {
		t.Fatalf("store has %d traces, want 1", srv.Store().Len())
	}
	got, err := c.FetchTrace(context.Background(), info.Digest)
	if err != nil {
		t.Fatal(err)
	}
	d, err := got.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%016x", d) != info.Digest {
		t.Fatalf("fetched trace digest %016x, uploaded %s", d, info.Digest)
	}
	recordAndUpload(t, c)
	if srv.Store().Len() != 1 {
		t.Fatalf("re-upload duplicated the trace: store has %d", srv.Store().Len())
	}
}

// TestJobCacheHit pins the result-cache contract: the second identical
// submission is answered from the cache (zero replay work — the hit
// counter moves, the replay is skipped) with byte-identical bytes.
func TestJobCacheHit(t *testing.T) {
	srv, c := newTestServer(t, serve.Config{})
	info := recordAndUpload(t, c)
	ctx := context.Background()

	cold, _, hit1, err := c.SubmitJob(ctx, tinyJob(info.Digest))
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first submission reported a cache hit")
	}
	warm, _, hit2, err := c.SubmitJob(ctx, tinyJob(info.Digest))
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("second identical submission missed the cache")
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cache hit changed the response bytes:\ncold: %s\nwarm: %s", cold, warm)
	}
	if _, hits, _ := srv.Cache().Stats(); hits == 0 {
		t.Fatal("cache stats recorded no hit")
	}
}

// TestJobMatchesDirectReplay is the cross-package cell-keying equality
// test: the server's response keys equal harness.ConfigDigest /
// trace.Digest computed directly, and the served result equals a direct
// supervised replay of the same cell.
func TestJobMatchesDirectReplay(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	ctx := context.Background()
	rec, err := harness.Record(harness.AlgNMSort, tinyWorkload())
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.UploadTrace(ctx, rec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	_, jr, _, err := c.SubmitJob(ctx, tinyJob(info.Digest))
	if err != nil {
		t.Fatal(err)
	}

	cfg := harness.NodeFor(16, 16, 1*units.MiB)
	sup := &harness.Supervisor{}
	key, out, err := sup.ReplayCell(cfg, rec.Trace, "")
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%016x", harness.ConfigDigest(cfg, 0, 0)); jr.ConfigKey != want {
		t.Fatalf("served config key %s, local ConfigDigest %s", jr.ConfigKey, want)
	}
	if want := fmt.Sprintf("%016x", key.Trace); jr.TraceKey != want {
		t.Fatalf("served trace key %s, local %s", jr.TraceKey, want)
	}
	if jr.Result.SimTime != out.Result.SimTime ||
		jr.Result.FarAccesses != out.Result.FarAccesses ||
		jr.Result.NearAccesses != out.Result.NearAccesses {
		t.Fatalf("served result %+v differs from direct replay %+v", jr.Result, out.Result)
	}
}

// TestConcurrentClientsDeterministic is the serving determinism test: N
// concurrent clients submit a mix of identical and differing jobs; every
// response for the same cell is byte-identical, cold or cached, in any
// completion order.
func TestConcurrentClientsDeterministic(t *testing.T) {
	_, c := newTestServer(t, serve.Config{Workers: 4, Queue: 64})
	info := recordAndUpload(t, c)
	ctx := context.Background()

	channels := []int{8, 16, 32}
	const perChannel = 4
	got := make([][]byte, len(channels)*perChannel)
	var wg sync.WaitGroup
	for ci, ch := range channels {
		for k := 0; k < perChannel; k++ {
			wg.Add(1)
			go func(slot, ch int) {
				defer wg.Done()
				req := tinyJob(info.Digest)
				req.NearChannels = ch
				raw, _, _, err := c.SubmitJob(ctx, req)
				if err != nil {
					t.Errorf("job ch=%d: %v", ch, err)
					return
				}
				got[slot] = raw
			}(ci*perChannel+k, ch)
		}
	}
	wg.Wait()
	for ci := range channels {
		base := got[ci*perChannel]
		for k := 1; k < perChannel; k++ {
			if !bytes.Equal(base, got[ci*perChannel+k]) {
				t.Fatalf("channel %d: response %d differs from response 0:\n%s\nvs\n%s",
					channels[ci], k, got[ci*perChannel+k], base)
			}
		}
	}
	// Differing configs must differ (they key different cells).
	if bytes.Equal(got[0], got[perChannel]) {
		t.Fatal("2X and 4X jobs returned identical bodies")
	}
}

// TestSweepMatchesDirectHarness pins the sweep endpoint against the same
// experiment run directly through the registry: same bytes, which is the
// cmd/sweep client-parity contract (the CI smoke script checks the
// process-level half with cmp).
func TestSweepMatchesDirectHarness(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	ctx := context.Background()
	req := serve.SweepRequest{
		Exp: "dma", N: 1 << 13, Seed: 7, Cores: 16, SPMiB: 1,
	}
	body, failed, err := c.Sweep(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Fatalf("sweep reported %d failed cells", failed)
	}

	wl := harness.Workload{
		N: 1 << 13, Seed: 7, Threads: 16, SP: 1 * units.MiB,
		Sup: &harness.Supervisor{},
	}
	e, ok := harness.FindExperiment("dma")
	if !ok {
		t.Fatal("dma experiment missing from registry")
	}
	sw, err := e.Run(harness.ExperimentParams{}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if want := sw.String(); string(body) != want {
		t.Fatalf("served sweep differs from direct harness run:\n--- served\n%s\n--- direct\n%s", body, want)
	}
}

// TestRecordEndpointMemoized pins record-once: two identical record
// requests return the same digest and the second is served from the memo
// (the record count stays 1).
func TestRecordEndpointMemoized(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	ctx := context.Background()
	req := serve.RecordRequest{Alg: "nmsort", N: 1 << 13, Seed: 7, Threads: 16, SPMiB: 1}
	// SPMiB 1 differs from tinyWorkload's 64 KiB — independent cell.
	a, err := c.Record(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Record(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("repeat record changed the digest: %s vs %s", a.Digest, b.Digest)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("record memo holds %d entries, want 1", st.Records)
	}
}

// TestStreamJob checks the NDJSON path: sample lines, phase rows, and a
// final result object whose sim time equals the plain job's.
func TestStreamJob(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	info := recordAndUpload(t, c)
	ctx := context.Background()

	_, plain, _, err := c.SubmitJob(ctx, tinyJob(info.Digest))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	req := tinyJob(info.Digest)
	req.EpochPS = int64(10 * units.Microsecond)
	if err := c.StreamJob(ctx, req, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"type":"sample"`) {
		t.Fatalf("stream carried no samples:\n%s", out)
	}
	if !strings.Contains(out, `"type":"phase"`) {
		t.Fatalf("stream carried no phase rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"type":"result"`) {
		t.Fatalf("stream did not end with a result line: %s", last)
	}
	if want := fmt.Sprintf(`"SimTime":%d`, plain.Result.SimTime); !strings.Contains(last, want) {
		t.Fatalf("streamed result sim time differs from plain job:\n%s\nwant %s", last, want)
	}
}

// TestJobValidation checks malformed jobs are refused up front with 400s.
func TestJobValidation(t *testing.T) {
	_, c := newTestServer(t, serve.Config{})
	info := recordAndUpload(t, c)
	ctx := context.Background()
	bad := []serve.JobRequest{
		{TraceDigest: info.Digest, Cores: 10, NearChannels: 16, SPMiB: 1}, // cores not multiple of 4
		{TraceDigest: info.Digest, Cores: 16, NearChannels: 0, SPMiB: 1},  // no channels
		{TraceDigest: info.Digest, Cores: 16, NearChannels: 16, SPMiB: 0}, // no scratchpad
		{TraceDigest: info.Digest, Cores: 16, NearChannels: 16, SPMiB: 1, FaultRate: 2},
		{TraceDigest: "zz", Cores: 16, NearChannels: 16, SPMiB: 1}, // bad digest
	}
	for i, req := range bad {
		if _, _, _, err := c.SubmitJob(ctx, req); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
	// Unknown digest: 404, not 400.
	miss := tinyJob("0000000000000001")
	if _, _, _, err := c.SubmitJob(ctx, miss); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown digest error = %v, want 404", err)
	}
}
