package serve_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/serve"
	"repro/internal/trace"
)

// storeTrace records a distinct small trace: 64 far loads at addresses
// offset by stamp, so each stamp yields a different digest but the same
// footprint (64 ops ≈ 2 KiB at 32 bytes/op).
func storeTrace(t *testing.T, stamp int) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder(1, trace.DefaultL1(), trace.DefaultCosts())
	tp := rec.Thread(0)
	for i := 0; i < 64; i++ {
		tp.Load(addr.FarBase+addr.Addr(stamp*64+i)*4096, 8)
	}
	tp.Barrier()
	return rec.Finish()
}

// TestStoreLRUEviction fills a tiny store past its budget and checks the
// oldest unpinned trace is evicted while newer ones survive.
func TestStoreLRUEviction(t *testing.T) {
	// Each trace is ~(64+stamp+1) ops * 32 bytes ≈ 2 KiB; budget two.
	s := serve.NewStore(2 * 70 * 32)
	var digests []uint64
	for i := 0; i < 3; i++ {
		d, err := s.Put(storeTrace(t, i))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	if s.Len() != 2 {
		t.Fatalf("store holds %d traces, want 2 after eviction", s.Len())
	}
	if _, ok := s.Get(digests[0]); ok {
		t.Fatal("oldest trace survived eviction")
	}
	if _, ok := s.Get(digests[2]); !ok {
		t.Fatal("newest trace was evicted")
	}
}

// TestStorePinBlocksEviction pins a trace, overflows the budget, and
// checks the pinned trace survives until release.
func TestStorePinBlocksEviction(t *testing.T) {
	s := serve.NewStore(70 * 32) // room for ~one trace
	d0, err := s.Put(storeTrace(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, release, err := s.Pin(d0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(storeTrace(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(d0); !ok {
		t.Fatal("pinned trace was evicted")
	}
	release()
	// Releasing converges the store back under budget: the unpinned LRU
	// entry (d0, refreshed by Get above... insert a newer touch first).
	if s.Bytes() > 2*70*32 {
		t.Fatalf("store did not converge after release: %d bytes", s.Bytes())
	}
	// Double release is a no-op.
	release()
}

// TestStorePinMissing checks pinning an absent digest fails cleanly.
func TestStorePinMissing(t *testing.T) {
	s := serve.NewStore(0)
	if _, _, err := s.Pin(42); !errors.Is(err, serve.ErrTraceNotFound) {
		t.Fatalf("Pin(missing) = %v, want ErrTraceNotFound", err)
	}
}

// TestGateBackpressure pins the 429 contract: workers+queue admissions,
// then ErrBusy immediately (no blocking).
func TestGateBackpressure(t *testing.T) {
	g := serve.NewGate(1, 1)
	ctx := context.Background()
	rel1, err := g.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Second acquisition is admitted but would block on the run slot;
	// use a cancelled context to observe admission without blocking.
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := g.Acquire(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire = %v, want context.Canceled", err)
	}
	// The cancelled waiter released its admission; fill queue then overflow.
	done := make(chan struct{})
	go func() {
		defer close(done)
		rel2, err := g.Acquire(ctx) // takes the queue slot, blocks for the run slot
		if err != nil {
			t.Errorf("queued acquire: %v", err)
			return
		}
		rel2()
	}()
	// Busy-wait until the goroutine is admitted (queue occupied).
	for g.Admitted() < 2 {
	}
	if _, err := g.Acquire(ctx); !errors.Is(err, serve.ErrBusy) {
		t.Fatalf("overflow acquire = %v, want ErrBusy", err)
	}
	rel1() // hands the run slot to the waiter
	<-done
	rel3, err := g.Acquire(ctx)
	if err != nil {
		t.Fatalf("post-drain acquire = %v", err)
	}
	rel3()
}
