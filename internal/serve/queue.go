package serve

import (
	"context"
	"errors"
)

// The admission gate: bounded concurrency plus a bounded wait queue in
// front of the replay workers. A job is first admitted (or refused with
// ErrBusy when workers + queue are all taken — the HTTP layer's 429),
// then waits for a run slot. Built from two channels and no goroutines:
// jobs run on their request goroutines, so the gate only meters them.

// ErrBusy is returned when the queue is full; clients should back off and
// resubmit. Maps to 429 Too Many Requests.
var ErrBusy = errors.New("serve: job queue full")

// Gate meters job admission. Safe for concurrent use.
type Gate struct {
	admit chan struct{} // capacity workers+queue: admitted jobs (running or waiting)
	slots chan struct{} // capacity workers: running jobs
}

// NewGate returns a gate running at most workers jobs with at most queue
// more waiting (workers <= 0 means 1; queue < 0 means 0).
func NewGate(workers, queue int) *Gate {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{
		admit: make(chan struct{}, workers+queue),
		slots: make(chan struct{}, workers),
	}
}

// Acquire admits the caller and blocks until a run slot is free or ctx is
// done. On success the caller owns a slot until it calls the returned
// release. A full queue fails immediately with ErrBusy — overload is
// answered now, not after a timeout.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case g.admit <- struct{}{}:
	default:
		return nil, ErrBusy
	}
	select {
	case g.slots <- struct{}{}:
		return func() {
			<-g.slots
			<-g.admit
		}, nil
	case <-ctx.Done():
		<-g.admit
		return nil, context.Cause(ctx)
	}
}

// Running reports the jobs currently holding run slots.
func (g *Gate) Running() int { return len(g.slots) }

// Admitted reports admitted jobs (running plus waiting).
func (g *Gate) Admitted() int { return len(g.admit) }
