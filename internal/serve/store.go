package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"repro/internal/trace"
)

// The content-addressed trace store: every trace lives in memory exactly
// once, keyed by its digest, shared read-only by every replay that needs
// it. Eviction is LRU within a byte budget, but a trace pinned by an
// in-flight job is never evicted — a replay must keep its streams for its
// whole run. The budget is therefore soft under load: pinned bytes can
// exceed it, and the store converges back under it as pins release.

// ErrTraceNotFound marks a digest the store does not (or no longer does)
// hold; callers re-upload or re-record.
var ErrTraceNotFound = errors.New("serve: trace not found")

// opBytes is the in-memory footprint charged per recorded op: the Op
// struct is 26 bytes padded to 32 in a slice.
const opBytes = 32

// traceBytes estimates a trace's resident footprint from its stream
// lengths — the accounting unit for the store budget.
func traceBytes(tr *trace.Trace) int64 {
	var n int64
	for _, s := range tr.Streams {
		n += int64(len(s)) * opBytes
	}
	return n
}

// storeEntry is one resident trace.
type storeEntry struct {
	tr    *trace.Trace
	size  int64
	pins  int
	elem  *list.Element // position in the recency list; value is the digest
}

// Store is the content-addressed trace store. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[uint64]*storeEntry
	order   *list.List // front = most recently used; element values are uint64 digests
}

// NewStore returns a store bounded by budget bytes (<= 0 means a 256 MiB
// default).
func NewStore(budget int64) *Store {
	if budget <= 0 {
		budget = 256 << 20
	}
	return &Store{budget: budget, entries: make(map[uint64]*storeEntry), order: list.New()}
}

// Put inserts tr under its digest (recording it if needed) and returns
// the digest. A trace already resident is not duplicated — the store
// keeps the first copy and refreshes its recency — so concurrent uploads
// of the same bytes cost one resident copy.
func (s *Store) Put(tr *trace.Trace) (uint64, error) {
	d, err := tr.Digest()
	if err != nil {
		return 0, fmt.Errorf("serve: digesting trace: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[d]; ok {
		s.order.MoveToFront(e.elem)
		return d, nil
	}
	e := &storeEntry{tr: tr, size: traceBytes(tr)}
	e.elem = s.order.PushFront(d)
	s.entries[d] = e
	s.used += e.size
	s.evictLocked()
	return d, nil
}

// Pin returns the trace for digest and pins it resident until release is
// called. Pin/release pairs bracket every replay, so eviction can never
// pull a stream out from under a running job.
func (s *Store) Pin(digest uint64) (tr *trace.Trace, release func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %016x", ErrTraceNotFound, digest)
	}
	e.pins++
	s.order.MoveToFront(e.elem)
	var once sync.Once
	release = func() {
		once.Do(func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			e.pins--
			s.evictLocked()
		})
	}
	return e.tr, release, nil
}

// Get returns the trace for digest without pinning (metadata reads).
func (s *Store) Get(digest uint64) (*trace.Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(e.elem)
	return e.tr, true
}

// evictLocked drops least-recently-used unpinned traces until the store
// fits its budget. Walks the recency list back to front — never the map —
// skipping pinned entries.
func (s *Store) evictLocked() {
	for el := s.order.Back(); el != nil && s.used > s.budget; {
		prev := el.Prev()
		d := el.Value.(uint64)
		if e := s.entries[d]; e.pins == 0 {
			s.order.Remove(el)
			delete(s.entries, d)
			s.used -= e.size
		}
		el = prev
	}
}

// Len reports the resident trace count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the resident footprint estimate.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}
