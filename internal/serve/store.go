package serve

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"repro/internal/trace"
)

// The content-addressed trace store: every trace lives in memory exactly
// once, keyed by its digest, shared read-only by every replay that needs
// it. Eviction is LRU within a byte budget, but a trace pinned by an
// in-flight job is never evicted — a replay must keep its streams for its
// whole run. The budget is therefore soft under load: pinned bytes can
// exceed it, and the store converges back under it as pins release.
//
// Entries are trace.Sources: decoded *Trace uploads charge heap bytes,
// columnar (v3) traces charge their raw file size — split into heap bytes
// (OpenBytes over an upload body) and mapped bytes (Open over a local
// file), because a mapped trace holds address space and page cache, not Go
// heap. Both spend the same budget; Stats reports the split. Eviction only
// drops the store's reference: a pinned Source stays valid for its
// borrower, and a mapped Columnar's pages are released by the finalizer
// trace.Open installs once the last reference (store, pin, or cursor)
// goes away — the store never unmaps under a reader.

// ErrTraceNotFound marks a digest the store does not (or no longer does)
// hold; callers re-upload or re-record.
var ErrTraceNotFound = errors.New("serve: trace not found")

// opBytes is the in-memory footprint charged per recorded op: the Op
// struct is 26 bytes padded to 32 in a slice.
const opBytes = 32

// traceBytes estimates a decoded trace's resident footprint from its
// stream lengths — the accounting unit for the store budget.
func traceBytes(tr *trace.Trace) int64 {
	var n int64
	for _, s := range tr.Streams {
		n += int64(len(s)) * opBytes
	}
	return n
}

// sourceBytes splits a source's resident footprint into heap and mapped
// bytes.
func sourceBytes(src trace.Source) (heap, mapped int64) {
	switch s := src.(type) {
	case *trace.Trace:
		return traceBytes(s), 0
	case *trace.Columnar:
		if s.Mapped() {
			return 0, s.Size()
		}
		return s.Size(), 0
	default:
		return int64(src.Ops()) * opBytes, 0
	}
}

// storeEntry is one resident trace.
type storeEntry struct {
	src    trace.Source
	heap   int64
	mapped int64
	pins   int
	elem   *list.Element // position in the recency list; value is the digest
}

// Store is the content-addressed trace store. Safe for concurrent use.
type Store struct {
	mu         sync.Mutex
	budget     int64
	usedHeap   int64
	usedMapped int64
	entries    map[uint64]*storeEntry
	order      *list.List // front = most recently used; element values are uint64 digests
}

// NewStore returns a store bounded by budget bytes (<= 0 means a 256 MiB
// default). The budget covers heap and mapped bytes together.
func NewStore(budget int64) *Store {
	if budget <= 0 {
		budget = 256 << 20
	}
	return &Store{budget: budget, entries: make(map[uint64]*storeEntry), order: list.New()}
}

// Put inserts src under its digest and returns the digest. A trace already
// resident is not duplicated — the store keeps the first copy and
// refreshes its recency — so concurrent uploads of the same logical trace
// (in either serialization; the digest is encoding-independent) cost one
// resident copy.
func (s *Store) Put(src trace.Source) (uint64, error) {
	d, err := src.Digest()
	if err != nil {
		return 0, fmt.Errorf("serve: digesting trace: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[d]; ok {
		s.order.MoveToFront(e.elem)
		return d, nil
	}
	e := &storeEntry{src: src}
	e.heap, e.mapped = sourceBytes(src)
	e.elem = s.order.PushFront(d)
	s.entries[d] = e
	s.usedHeap += e.heap
	s.usedMapped += e.mapped
	s.evictLocked()
	return d, nil
}

// Pin returns the trace for digest and pins it resident until release is
// called. Pin/release pairs bracket every replay, so eviction can never
// pull a stream — or unmap a columnar file — out from under a running job.
func (s *Store) Pin(digest uint64) (src trace.Source, release func(), err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %016x", ErrTraceNotFound, digest)
	}
	e.pins++
	s.order.MoveToFront(e.elem)
	var once sync.Once
	release = func() {
		once.Do(func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			e.pins--
			s.evictLocked()
		})
	}
	return e.src, release, nil
}

// Get returns the trace for digest without pinning (metadata reads).
func (s *Store) Get(digest uint64) (trace.Source, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(e.elem)
	return e.src, true
}

// evictLocked drops least-recently-used unpinned traces until the store
// fits its budget. Walks the recency list back to front — never the map —
// skipping pinned entries.
func (s *Store) evictLocked() {
	for el := s.order.Back(); el != nil && s.usedHeap+s.usedMapped > s.budget; {
		prev := el.Prev()
		d := el.Value.(uint64)
		if e := s.entries[d]; e.pins == 0 {
			s.order.Remove(el)
			delete(s.entries, d)
			s.usedHeap -= e.heap
			s.usedMapped -= e.mapped
		}
		el = prev
	}
}

// Len reports the resident trace count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the resident heap footprint estimate.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usedHeap
}

// MappedBytes reports the resident mmap footprint.
func (s *Store) MappedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usedMapped
}
