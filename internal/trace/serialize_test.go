package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	return got
}

func sampleTrace(t *testing.T) *Trace {
	t.Helper()
	rec := NewRecorder(3, tinyL1(), DefaultCosts())
	for tid := 0; tid < 3; tid++ {
		tp := rec.Thread(tid)
		tp.Compute(int64(100 * (tid + 1)))
		tp.Load(addr.FarBase+addr.Addr(tid*4096), 8)
		tp.Store(addr.NearBase+addr.Addr(tid*4096), 16)
		tp.Barrier()
		tp.Atomic(addr.NearBase)
		tp.DMA(addr.FarBase, addr.NearBase+65536, 4096)
		tp.DMAWait()
		tp.Compute(7)
		tp.Load(addr.FarBase+addr.Addr(tid*4096)+128, 8)
	}
	return rec.Finish()
}

func TestSerializeRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	got := roundTrip(t, tr)

	if len(got.Streams) != len(tr.Streams) {
		t.Fatalf("streams: %d vs %d", len(got.Streams), len(tr.Streams))
	}
	for tid := range tr.Streams {
		if len(got.Streams[tid]) != len(tr.Streams[tid]) {
			t.Fatalf("thread %d: %d ops vs %d", tid, len(got.Streams[tid]), len(tr.Streams[tid]))
		}
		for i := range tr.Streams[tid] {
			if got.Streams[tid][i] != tr.Streams[tid][i] {
				t.Fatalf("thread %d op %d: %+v vs %+v", tid, i,
					got.Streams[tid][i], tr.Streams[tid][i])
			}
		}
	}
	if got.Costs != tr.Costs || got.L1 != tr.L1 {
		t.Errorf("metadata mismatch: %+v/%+v vs %+v/%+v", got.Costs, got.L1, tr.Costs, tr.L1)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped trace invalid: %v", err)
	}
	if got.Count() != tr.Count() {
		t.Errorf("counts differ after round trip")
	}
}

func TestSerializeDetectsCorruption(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a payload byte: the checksum must catch it.
	raw[len(raw)/2] ^= 0xff
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted payload accepted")
	}
}

func TestSerializeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0}, 64),
		[]byte("NOPE" + string(bytes.Repeat([]byte{0}, 100))),
	}
	for i, c := range cases {
		if _, err := ReadTrace(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestSerializeTruncation(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{8, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadTrace(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// dmaStream hand-assembles a checksummed single-thread stream holding one
// OpDMA with the given size followed by OpEnd — the encoder can never emit
// an out-of-range size, so the corrupt stream must be built byte by byte.
func dmaStream(t *testing.T, size uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	hdr := []int64{traceVersion, 1, 3, 30, 20, 256, 64, 2, 1}
	if err := binary.Write(&buf, binary.LittleEndian, hdr); err != nil {
		t.Fatal(err)
	}
	// Empty v2 phase-name table, then the stream length.
	for _, n := range []int64{0, 2} {
		if err := binary.Write(&buf, binary.LittleEndian, n); err != nil {
			t.Fatal(err)
		}
	}
	var v [binary.MaxVarintLen64]byte
	buf.WriteByte(byte(OpDMA))
	buf.Write(v[:binary.PutUvarint(v[:], 0)])    // src
	buf.Write(v[:binary.PutUvarint(v[:], 4096)]) // dst
	buf.Write(v[:binary.PutUvarint(v[:], size)])
	buf.WriteByte(byte(OpEnd))
	sum := crc64.Checksum(buf.Bytes(), crcTable)
	if err := binary.Write(&buf, binary.LittleEndian, sum); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSerializeRejectsOversizedDMA(t *testing.T) {
	// A valid checksum over a size that overflows uint32 must be rejected,
	// not silently truncated into a different workload.
	for _, size := range []uint64{1 << 32, 1<<32 + 4096, 1 << 63} {
		_, err := ReadTrace(bytes.NewReader(dmaStream(t, size)))
		if err == nil || !strings.Contains(err.Error(), "dma size") {
			t.Errorf("size %d: want dma size overflow error, got %v", size, err)
		}
	}
	// Boundary control: the largest encodable size still decodes.
	got, err := ReadTrace(bytes.NewReader(dmaStream(t, uint64(^uint32(0)))))
	if err != nil {
		t.Fatalf("max uint32 size rejected: %v", err)
	}
	if op := got.Streams[0][0]; op.Kind != OpDMA || op.Size != ^uint32(0) {
		t.Errorf("decoded op = %+v", op)
	}
}

func TestSerializeEmptyStreams(t *testing.T) {
	rec := NewRecorder(2, tinyL1(), DefaultCosts())
	tr := rec.Finish() // streams contain only OpEnd
	got := roundTrip(t, tr)
	if got.Ops() != tr.Ops() {
		t.Errorf("ops: %d vs %d", got.Ops(), tr.Ops())
	}
}

// TestSerializePropertyRandomWorkloads fuzzes the encoder with randomized
// access patterns and checks exact round-tripping.
func TestSerializePropertyRandomWorkloads(t *testing.T) {
	f := func(ops []uint32, threadsRaw uint8) bool {
		p := int(threadsRaw%4) + 1
		rec := NewRecorder(p, tinyL1(), DefaultCosts())
		for i, o := range ops {
			tp := rec.Thread(i % p)
			a := addr.FarBase + addr.Addr(o%1<<20)*8
			if o%5 == 0 {
				a = addr.NearBase + addr.Addr(o%1<<20)*8
			}
			switch o % 4 {
			case 0:
				tp.Load(a, 8)
			case 1:
				tp.Store(a, 8)
			case 2:
				tp.Compute(int64(o % 1000))
			case 3:
				tp.Atomic(a)
			}
		}
		tr := rec.Finish()
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if got.Ops() != tr.Ops() || got.Count() != tr.Count() {
			return false
		}
		for tid := range tr.Streams {
			for i := range tr.Streams[tid] {
				if got.Streams[tid][i] != tr.Streams[tid][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSerializeCompact(t *testing.T) {
	// Streaming access patterns should compress well below 16 bytes/op.
	rec := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := rec.Thread(0)
	for i := 0; i < 10000; i++ {
		tp.Load(addr.FarBase+addr.Addr(i*64), 8)
	}
	tr := rec.Finish()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	perOp := float64(buf.Len()) / float64(tr.Ops())
	if perOp > 8 {
		t.Errorf("%.1f bytes/op; delta encoding should be well under 8 for streams", perOp)
	}
}

// TestWriteToRejectsZeroThreads: the writer mirrors the reader's
// plausibility check. A zero-thread trace fails at write time with
// nothing written, instead of producing a stream ReadTrace rejects at
// the far end of the pipeline.
func TestWriteToRejectsZeroThreads(t *testing.T) {
	var buf bytes.Buffer
	n, err := (&Trace{Costs: DefaultCosts(), L1: tinyL1()}).WriteTo(&buf)
	if err == nil || !strings.Contains(err.Error(), "no threads") {
		t.Fatalf("WriteTo with zero threads: err = %v, want refusal", err)
	}
	if n != 0 || buf.Len() != 0 {
		t.Fatalf("WriteTo wrote %d bytes (reported %d) before refusing", buf.Len(), n)
	}
}

// TestRoundTripThreadBoundary covers the smallest serializable trace —
// one thread — right at the boundary the reader polices.
func TestRoundTripThreadBoundary(t *testing.T) {
	rec := NewRecorder(1, tinyL1(), DefaultCosts())
	rec.Thread(0).Load(addr.FarBase, 8)
	tr := rec.Finish()
	got := roundTrip(t, tr)
	if len(got.Streams) != 1 {
		t.Fatalf("round-tripped %d streams, want 1", len(got.Streams))
	}
	for i := range tr.Streams[0] {
		if got.Streams[0][i] != tr.Streams[0][i] {
			t.Fatalf("op %d: %+v vs %+v", i, got.Streams[0][i], tr.Streams[0][i])
		}
	}
}

// taggedStream hand-assembles a checksummed single-thread stream whose one
// op carries the given raw tag byte — the writer can never emit reserved
// bits, so exercising the reader's rejection needs a byte-level stream.
func taggedStream(t *testing.T, tag byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	hdr := []int64{traceVersion, 1, 3, 30, 20, 256, 64, 2, 1}
	if err := binary.Write(&buf, binary.LittleEndian, hdr); err != nil {
		t.Fatal(err)
	}
	// Empty v2 phase-name table, then the one-op stream length.
	for _, n := range []int64{0, 1} {
		if err := binary.Write(&buf, binary.LittleEndian, n); err != nil {
			t.Fatal(err)
		}
	}
	buf.WriteByte(tag)
	sum := crc64.Checksum(buf.Bytes(), crcTable)
	if err := binary.Write(&buf, binary.LittleEndian, sum); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSerializeRejectsReservedTagBits: a stream setting either reserved
// flag bit is rejected even under a valid checksum, so the bits stay free
// for a future format revision. The same op without the bits decodes.
func TestSerializeRejectsReservedTagBits(t *testing.T) {
	for _, bits := range []byte{0x40, 0x80, 0xc0} {
		_, err := ReadTrace(bytes.NewReader(taggedStream(t, byte(OpEnd)|bits)))
		if err == nil || !strings.Contains(err.Error(), "reserved tag bits") {
			t.Errorf("tag bits %#x: want reserved-bit rejection, got %v", bits, err)
		}
	}
	got, err := ReadTrace(bytes.NewReader(taggedStream(t, byte(OpEnd))))
	if err != nil {
		t.Fatalf("control stream rejected: %v", err)
	}
	if op := got.Streams[0][0]; op.Kind != OpEnd {
		t.Errorf("decoded op = %+v, want OpEnd", op)
	}
}

// TestDecodeErrorSections: every decode failure is a *DecodeError naming
// the broken section and a byte offset inside the stream, so a torn or
// corrupted file is diagnosable from the error text alone.
func TestDecodeErrorSections(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	seed := buf.Bytes()

	corrupt := func(at int, v uint64) []byte {
		mut := bytes.Clone(seed)
		putLE64(mut[at:], v)
		refreshChecksum(mut)
		return mut
	}
	const (
		offThreads   = 4 + 8*8 // hdr[8]
		offNameCount = 4 + 9*8 // v2 phase-name count
		offOpCount   = 4 + 10*8
	)
	cases := []struct {
		name    string
		raw     []byte
		section string
		offset  int64
	}{
		{"empty stream", nil, "stream", 0},
		{"truncated below checksum", seed[:5], "stream", 5},
		{"checksum mismatch", func() []byte {
			mut := bytes.Clone(seed)
			mut[len(mut)/2] ^= 0xff
			return mut
		}(), "checksum", int64(len(seed) - 8)},
		{"bad magic", func() []byte {
			mut := bytes.Clone(seed)
			mut[0] = 'X'
			refreshChecksum(mut)
			return mut
		}(), "header", 0},
		{"implausible thread count", corrupt(offThreads, 1<<19), "header", offThreads},
		{"implausible phase-name count", corrupt(offNameCount, 1<<13), "phase table", offNameCount},
		{"implausible op count", corrupt(offOpCount, 1<<33), "thread 0 ops", offOpCount},
		{"torn ops body", func() []byte {
			// Cut the last op byte and graft a fresh checksum: the CRC
			// gate passes and decoding fails inside a thread section.
			torn := bytes.Clone(seed[:len(seed)-9])
			torn = append(torn, make([]byte, 8)...)
			refreshChecksum(torn)
			return torn
		}(), "thread 2 ops", -1},
	}
	for _, tc := range cases {
		_, err := ReadTrace(bytes.NewReader(tc.raw))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("%s: error %v is not a *DecodeError", tc.name, err)
			continue
		}
		if de.Section != tc.section {
			t.Errorf("%s: section %q, want %q (err: %v)", tc.name, de.Section, tc.section, err)
		}
		if tc.offset >= 0 && de.Offset != tc.offset {
			t.Errorf("%s: offset %d, want %d (err: %v)", tc.name, de.Offset, tc.offset, err)
		}
		if tc.offset < 0 && (de.Offset <= 0 || de.Offset > int64(len(tc.raw))) {
			t.Errorf("%s: offset %d out of stream bounds", tc.name, de.Offset)
		}
		if !strings.Contains(err.Error(), "at byte") {
			t.Errorf("%s: error text %q lacks the byte offset", tc.name, err)
		}
	}
}

// TestDigestStability: Digest is a pure function of the serialized bytes —
// stable across calls, sensitive to any op change. Since the digest is
// memoized on the (immutable-by-contract) Trace, sensitivity is asserted
// through a fresh Trace header over the mutated streams; the original
// keeps returning its memoized fingerprint.
func TestDigestStability(t *testing.T) {
	tr := sampleTrace(t)
	d1, err := tr.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tr.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not stable: %#x != %#x", d1, d2)
	}
	tr.Streams[0][0].Gap++
	mutated := &Trace{Streams: tr.Streams, L1: tr.L1, Costs: tr.Costs, PhaseNames: tr.PhaseNames}
	d3, err := mutated.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("digest unchanged after op mutation")
	}
	if d4, _ := tr.Digest(); d4 != d1 {
		t.Fatalf("memoized digest changed under the caller: %#x != %#x", d4, d1)
	}
}
