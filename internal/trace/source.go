package trace

// Source is a replayable trace, whatever its in-memory representation: the
// fully decoded *Trace the recorder produces, or the mmap-backed *Columnar
// view of a v3 file that decodes ops lazily through cursors. The machine,
// the harness, and the serving layer all accept a Source, so a daemon can
// replay straight from a mapped file without ever materializing []Op.
//
// A Source is immutable and safe for concurrent use: CursorAt hands every
// replay its own iteration state over the shared backing data.
type Source interface {
	// Threads returns the number of per-thread op streams.
	Threads() int
	// ThreadOps returns the number of ops in thread tid's stream.
	ThreadOps(tid int) int
	// Ops returns the total op count across all threads.
	Ops() int
	// PhaseTable resolves OpPhase markers: an OpPhase op's Addr indexes it.
	PhaseTable() []string
	// Geometry returns the record-time L1 filter geometry.
	Geometry() L1Geometry
	// CostModel returns the record-time core cycle charges.
	CostModel() Costs
	// CursorAt returns a fresh cursor positioned before thread tid's first
	// op. Cursors are single-goroutine values; take one per replay core.
	CursorAt(tid int) Cursor
	// Validate checks stream well-formedness (termination, barrier
	// agreement, address routing, phase ids) without retaining decoded ops.
	Validate() error
	// Digest returns the stable 64-bit content fingerprint shared by every
	// encoding of the same logical trace (see Trace.Digest).
	Digest() (uint64, error)
}

// Compile-time checks: both representations satisfy Source.
var (
	_ Source = (*Trace)(nil)
	_ Source = (*Columnar)(nil)
)

// Threads returns the number of per-thread op streams.
func (tr *Trace) Threads() int { return len(tr.Streams) }

// ThreadOps returns the number of ops in thread tid's stream.
func (tr *Trace) ThreadOps(tid int) int { return len(tr.Streams[tid]) }

// PhaseTable returns the phase-name table.
func (tr *Trace) PhaseTable() []string { return tr.PhaseNames }

// Geometry returns the record-time L1 geometry.
func (tr *Trace) Geometry() L1Geometry { return tr.L1 }

// CostModel returns the record-time cycle charges.
func (tr *Trace) CostModel() Costs { return tr.Costs }

// CursorAt returns a cursor over thread tid's decoded op slice.
func (tr *Trace) CursorAt(tid int) Cursor {
	return Cursor{ops: tr.Streams[tid], tid: tid}
}
