package trace

import "repro/internal/addr"

// U64 is a traced view of a uint64 array: a native Go slice paired with its
// simulated physical base address. Every Get/Set both touches the real data
// and reports the access to the thread's probe, so algorithm correctness
// and traffic accounting come from one code path.
//
// Views are values; Slice produces sub-views sharing the backing array,
// exactly like Go slices.
//
// Nil-probe contract: every operation in the view API — U64/I64 method or
// package-level Copy — accepts a nil *TP and then performs only the real
// data movement, recording nothing. This is "pure mode" (see TP): the same
// algorithm code runs instrumented or native depending solely on the probe
// it is handed, so none of these helpers may ever assume a non-nil probe.
// The probe methods themselves (Load, Store, Atomic) are nil-receiver-safe,
// which is the only thing the contract rests on; TestViewsNilProbe pins it.
type U64 struct {
	Base addr.Addr
	D    []uint64
}

// Len returns the number of elements.
func (v U64) Len() int { return len(v.D) }

// Get reads element i through probe t.
func (v U64) Get(t *TP, i int) uint64 {
	t.Load(v.Base+addr.Addr(i*8), 8)
	return v.D[i]
}

// Set writes element i through probe t.
func (v U64) Set(t *TP, i int, x uint64) {
	t.Store(v.Base+addr.Addr(i*8), 8)
	v.D[i] = x
}

// Addr returns the simulated address of element i.
func (v U64) Addr(i int) addr.Addr { return v.Base + addr.Addr(i*8) }

// Slice returns the sub-view [lo, hi).
func (v U64) Slice(lo, hi int) U64 {
	return U64{Base: v.Base + addr.Addr(lo*8), D: v.D[lo:hi]}
}

// Copy copies src into dst through probe t, reporting the loads and stores.
// It panics if the lengths differ — a silent partial copy would corrupt an
// experiment. Like every view operation, a nil probe copies without
// recording.
func Copy(t *TP, dst, src U64) {
	if dst.Len() != src.Len() {
		panic("trace: Copy length mismatch")
	}
	t.Load(src.Base, 8*src.Len())
	t.Store(dst.Base, 8*dst.Len())
	copy(dst.D, src.D)
}

// I64 is a traced view of an int64 array, used for bucket metadata
// (BucketPos/BucketTot in the paper's Phase 1).
type I64 struct {
	Base addr.Addr
	D    []int64
}

// Len returns the number of elements.
func (v I64) Len() int { return len(v.D) }

// Get reads element i through probe t.
func (v I64) Get(t *TP, i int) int64 {
	t.Load(v.Base+addr.Addr(i*8), 8)
	return v.D[i]
}

// Set writes element i through probe t.
func (v I64) Set(t *TP, i int, x int64) {
	t.Store(v.Base+addr.Addr(i*8), 8)
	v.D[i] = x
}

// AtomicAdd performs a traced atomic add on element i. At record time the
// caller must guarantee real mutual exclusion (the algorithms only use this
// from barrier-separated single-writer phases or under static partitioning,
// so recorded values are deterministic).
func (v I64) AtomicAdd(t *TP, i int, delta int64) int64 {
	t.Atomic(v.Base + addr.Addr(i*8))
	v.D[i] += delta
	return v.D[i]
}

// Slice returns the sub-view [lo, hi).
func (v I64) Slice(lo, hi int) I64 {
	return I64{Base: v.Base + addr.Addr(lo*8), D: v.D[lo:hi]}
}

// CopyI64 copies src into dst through probe t, reporting the loads and
// stores. It panics if the lengths differ. Like every view operation, a
// nil probe copies without recording.
func CopyI64(t *TP, dst, src I64) {
	if dst.Len() != src.Len() {
		panic("trace: CopyI64 length mismatch")
	}
	t.Load(src.Base, 8*src.Len())
	t.Store(dst.Base, 8*dst.Len())
	copy(dst.D, src.D)
}
