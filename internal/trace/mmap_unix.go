//go:build unix

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only, reporting whether the returned bytes are a
// real mapping (and so must go back through unmapFile) or a plain read.
// mmap failures — exotic filesystems, zero-length files — fall back to
// reading; only open/stat errors surface.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, false, fmt.Errorf("trace: cannot map %q (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		data, rerr := os.ReadFile(path)
		return data, false, rerr
	}
	return data, true, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(data []byte) error { return syscall.Munmap(data) }
