package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

// encodeColumnar is the test-side helper: encode tr and open the bytes.
func encodeColumnar(t testing.TB, tr *Trace) (*Columnar, []byte) {
	t.Helper()
	data, err := EncodeColumnar(tr)
	if err != nil {
		t.Fatalf("EncodeColumnar: %v", err)
	}
	col, err := OpenBytes(data)
	if err != nil {
		t.Fatalf("OpenBytes: %v", err)
	}
	return col, data
}

// cursorOps drains a cursor into a slice, failing the test on a decode
// error.
func cursorOps(t testing.TB, cur Cursor) []Op {
	t.Helper()
	var ops []Op
	for cur.Next() {
		ops = append(ops, cur.Cur)
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	return ops
}

// sortishTrace records a trace shaped like the sorting workloads the
// format is tuned for: line-aligned sequential accesses in both windows,
// compute gaps drawn from a few distinct cost sums, alternating loads and
// stores, occasional barriers and DMA.
func sortishTrace(t testing.TB, threads, opsPerThread int) *Trace {
	t.Helper()
	rec := NewRecorder(threads, tinyL1(), DefaultCosts())
	gaps := []int64{180, 200, 220, 200, 180, 4}
	for tid := 0; tid < threads; tid++ {
		tp := rec.Thread(tid)
		for i := 0; i < opsPerThread; i += 32 {
			// A burst of streaming far loads, then a burst of near
			// stores — the run structure L1 filtering leaves behind.
			for j := 0; j < 16; j++ {
				tp.Compute(gaps[(i+j)%len(gaps)])
				tp.Load(addr.FarBase+addr.Addr(tid<<24+(i+j)*64), 8)
			}
			for j := 0; j < 15; j++ {
				tp.Compute(gaps[(i+j)%len(gaps)])
				tp.Store(addr.NearBase+addr.Addr(tid<<20+((i+j)%1024)*64), 8)
			}
			tp.Atomic(addr.NearBase + addr.Addr(tid<<20))
			if i%512 == 480 {
				tp.DMA(addr.FarBase+addr.Addr(tid<<24+i*64),
					addr.NearBase+addr.Addr(tid<<20), 4096)
				tp.DMAWait()
				tp.Barrier()
			}
		}
		tp.Barrier()
	}
	return rec.Finish()
}

// TestColumnarRoundTrip pins the core contract: every op stream read
// through a columnar cursor equals the decoded stream, Decode reproduces
// the trace, and the digest is the v2 digest.
func TestColumnarRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(t), sortishTrace(t, 3, 600)} {
		col, _ := encodeColumnar(t, tr)
		if err := col.Verify(); err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if err := col.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		if col.Threads() != len(tr.Streams) || col.Ops() != tr.Ops() {
			t.Fatalf("shape: %d/%d threads, %d/%d ops",
				col.Threads(), len(tr.Streams), col.Ops(), tr.Ops())
		}
		wantD, err := tr.Digest()
		if err != nil {
			t.Fatalf("Digest: %v", err)
		}
		gotD, _ := col.Digest()
		if gotD != wantD {
			t.Fatalf("digest %016x != v2 digest %016x", gotD, wantD)
		}
		for tid := range tr.Streams {
			got := cursorOps(t, col.CursorAt(tid))
			if len(got) != len(tr.Streams[tid]) {
				t.Fatalf("thread %d: %d ops, want %d", tid, len(got), len(tr.Streams[tid]))
			}
			for i := range got {
				if got[i] != tr.Streams[tid][i] {
					t.Fatalf("thread %d op %d: %+v != %+v", tid, i, got[i], tr.Streams[tid][i])
				}
			}
		}
		dec, err := col.Decode()
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if dec.Ops() != tr.Ops() || dec.Count() != tr.Count() {
			t.Fatalf("Decode shape mismatch")
		}
		if dec.L1 != tr.L1 || dec.Costs != tr.Costs {
			t.Fatalf("Decode metadata mismatch")
		}
	}
}

// TestColumnarOpenFile exercises the mmap path end to end: write, Open,
// iterate, Close.
func TestColumnarOpenFile(t *testing.T) {
	tr := sortishTrace(t, 2, 400)
	data, err := EncodeColumnar(tr)
	if err != nil {
		t.Fatalf("EncodeColumnar: %v", err)
	}
	path := filepath.Join(t.TempDir(), "t.nmt3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	col, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer col.Close()
	if col.Size() != int64(len(data)) {
		t.Fatalf("Size %d != %d", col.Size(), len(data))
	}
	for tid := range tr.Streams {
		got := cursorOps(t, col.CursorAt(tid))
		for i := range got {
			if got[i] != tr.Streams[tid][i] {
				t.Fatalf("thread %d op %d mismatch", tid, i)
			}
		}
	}
	if err := col.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestLoadSniffsFormat pins trace.Load's magic sniffing: the same logical
// trace loads from either serialization with one digest.
func TestLoadSniffsFormat(t *testing.T) {
	tr := sampleTrace(t)
	dir := t.TempDir()
	v2p, v3p := filepath.Join(dir, "a.nmt"), filepath.Join(dir, "a.nmt3")
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2p, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeColumnar(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v3p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(v2p)
	if err != nil {
		t.Fatalf("Load v2: %v", err)
	}
	if _, ok := s2.(*Trace); !ok {
		t.Fatalf("Load v2 returned %T", s2)
	}
	s3, err := Load(v3p)
	if err != nil {
		t.Fatalf("Load v3: %v", err)
	}
	col, ok := s3.(*Columnar)
	if !ok {
		t.Fatalf("Load v3 returned %T", s3)
	}
	defer col.Close()
	d2, _ := s2.Digest()
	d3, _ := s3.Digest()
	if d2 != d3 {
		t.Fatalf("digest differs across serializations: %016x != %016x", d2, d3)
	}
}

// TestCursorAllocs is the zero-allocation bound for the replay hot path:
// a full columnar iteration — every op of every thread — must allocate
// nothing.
func TestCursorAllocs(t *testing.T) {
	tr := sortishTrace(t, 2, 512)
	col, _ := encodeColumnar(t, tr)
	var sink uint64
	avg := testing.AllocsPerRun(10, func() {
		for tid := 0; tid < col.Threads(); tid++ {
			cur := col.CursorAt(tid)
			for cur.Next() {
				sink += cur.Cur.Addr
			}
			if cur.Err() != nil {
				t.Fatal("cursor failed")
			}
		}
	})
	if avg != 0 {
		t.Fatalf("columnar iteration allocates %.1f times per run, want 0", avg)
	}
	_ = sink
}

// TestColumnarSmaller is the compression acceptance bound: on a
// sort-shaped trace the columnar encoding must be at least 20% smaller
// than the v2 stream.
func TestColumnarSmaller(t *testing.T) {
	tr := sortishTrace(t, 4, 4096)
	var v2 bytes.Buffer
	if _, err := tr.WriteTo(&v2); err != nil {
		t.Fatal(err)
	}
	v3, err := EncodeColumnar(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(v3)) / float64(v2.Len()); ratio > 0.8 {
		t.Fatalf("v3 is %d bytes, v2 %d: ratio %.3f, want <= 0.8", len(v3), v2.Len(), ratio)
	}
}

// TestColumnarDigestProperty: for random recorded workloads, the v3
// footer digest always equals the v2 digest of the same logical trace —
// the property the content-addressed store depends on.
func TestColumnarDigestProperty(t *testing.T) {
	f := func(ops []uint32, threadsRaw uint8) bool {
		p := int(threadsRaw%4) + 1
		rec := NewRecorder(p, tinyL1(), DefaultCosts())
		for i, o := range ops {
			tp := rec.Thread(i % p)
			a := addr.FarBase + addr.Addr(o%1<<20)*8
			if o%5 == 0 {
				a = addr.NearBase + addr.Addr(o%1<<20)*8
			}
			switch o % 4 {
			case 0:
				tp.Load(a, 8)
			case 1:
				tp.Store(a, 8)
			case 2:
				tp.Compute(int64(o % 1000))
			case 3:
				tp.Atomic(a)
			}
		}
		tr := rec.Finish()
		data, err := EncodeColumnar(tr)
		if err != nil {
			return false
		}
		col, err := OpenBytes(data)
		if err != nil {
			return false
		}
		if err := col.Verify(); err != nil {
			return false
		}
		want, err := tr.Digest()
		if err != nil {
			return false
		}
		got, _ := col.Digest()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestColumnarValidateParity pins Validate's semantic checks against the
// decoded validator: an unterminated stream and a barrier mismatch are
// rejected with the same classes of error *Trace.Validate reports.
func TestColumnarValidateParity(t *testing.T) {
	unterminated := &Trace{
		Streams: [][]Op{{{Kind: OpAccess, Addr: uint64(addr.FarBase)}}},
		Costs:   DefaultCosts(),
		L1:      tinyL1(),
	}
	col, _ := encodeColumnar(t, unterminated)
	if err := col.Validate(); err == nil {
		t.Fatal("Validate accepted an unterminated stream")
	}

	mismatch := &Trace{
		Streams: [][]Op{
			{{Kind: OpBarrier}, {Kind: OpEnd}},
			{{Kind: OpEnd}},
		},
		Costs: DefaultCosts(),
		L1:    tinyL1(),
	}
	col, _ = encodeColumnar(t, mismatch)
	if err := col.Validate(); err == nil {
		t.Fatal("Validate accepted a barrier mismatch")
	}

	badAddr := &Trace{
		Streams: [][]Op{{{Kind: OpAccess, Addr: 0x1000}, {Kind: OpEnd}}},
		Costs:   DefaultCosts(),
		L1:      tinyL1(),
	}
	col, _ = encodeColumnar(t, badAddr)
	if err := col.Validate(); err == nil {
		t.Fatal("Validate accepted an out-of-window address")
	}
}

// TestColumnarSections sanity-checks the stat surface: five sections per
// thread, 64-byte aligned, in file order.
func TestColumnarSections(t *testing.T) {
	tr := sampleTrace(t)
	col, _ := encodeColumnar(t, tr)
	secs := col.Sections()
	if len(secs) != col.Threads()*numCols {
		t.Fatalf("%d sections, want %d", len(secs), col.Threads()*numCols)
	}
	prevEnd := int64(0)
	for _, s := range secs {
		if s.Offset%columnarAlign != 0 {
			t.Fatalf("section %+v misaligned", s)
		}
		if s.Offset < prevEnd {
			t.Fatalf("section %+v overlaps previous end %d", s, prevEnd)
		}
		prevEnd = s.Offset + s.Bytes
	}
}
