//go:build !unix

package trace

import "os"

// mapFile on platforms without the unix mmap syscall surface: plain read.
// The Columnar API is identical; only the mapped-bytes accounting and the
// O(1)-memory property differ.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

// unmapFile is never reached: mapFile never reports mapped bytes here.
func unmapFile([]byte) error { return nil }
