package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The open-path benchmark pair: how long until a trace file is ready to
// replay. V2 must read and decode the whole stream into []Op; V3 maps the
// file and validates the footer and section table only. Each benchmark
// also reports its file size, so scripts/bench.sh records the on-disk
// cost of the two serializations side by side.

func benchOpenTrace(b *testing.B) *Trace {
	b.Helper()
	return sortishTrace(b, 8, 8192)
}

func BenchmarkTraceOpenV2(b *testing.B) {
	tr := benchOpenTrace(b)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "t.nmt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := os.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReadTrace(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "file-bytes")
}

func BenchmarkTraceOpenV3(b *testing.B) {
	tr := benchOpenTrace(b)
	data, err := EncodeColumnar(tr)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "t.nmt3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		col.Close()
	}
	b.ReportMetric(float64(len(data)), "file-bytes")
}

// BenchmarkCursorNext measures the per-op decode cost of the columnar
// cursor — the incremental price replay pays for reading column bytes
// instead of a decoded []Op.
func BenchmarkCursorNext(b *testing.B) {
	tr := benchOpenTrace(b)
	data, err := EncodeColumnar(tr)
	if err != nil {
		b.Fatal(err)
	}
	col, err := OpenBytes(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; {
		for tid := 0; tid < col.Threads() && i < b.N; tid++ {
			cur := col.CursorAt(tid)
			for cur.Next() {
				sink += cur.Cur.Addr
				i++
			}
		}
	}
	_ = sink
}
