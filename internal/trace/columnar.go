package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math/bits"
	"os"
	"runtime"
	"sort"
	"sync"

	"repro/internal/addr"
	"repro/internal/units"
)

// levelCheck is the non-panicking twin of addr.LevelOf: Columnar.Validate
// runs over untrusted files (daemon uploads), where a stray address is
// hostile input to reject, not a recorder bug to crash on. Every address at
// or above the far window's base routes to a level.
func levelCheck(a uint64) error {
	if addr.Addr(a) < addr.FarBase {
		return fmt.Errorf("address %#x outside both memory windows", a)
	}
	return nil
}

// Serialization v3: a read-only columnar layout designed for mmap. Where
// v2 interleaves every field of every op into one varint stream that must
// be fully decoded before the first replay event, v3 stores each thread's
// ops as five parallel column segments that a Cursor scans sequentially —
// the same per-thread sequential access pattern the replay cores have.
// Open validates structure in O(1) (footer, section table, header) and
// never touches the column bytes until a cursor reads them.
//
// Layout (all integers little-endian):
//
//	header:  magic "NMT3" | 9 x i64 (version=3, 4 costs, l1 cap/line/ways,
//	         threads) | phase names: count i64, per name uvarint len + bytes
//	per thread, five column sections, each zero-padded to a 64-byte
//	boundary, in file order tags, gaps, addrs, dma, phase:
//	  tags:  blocks: control uvarint c; c&1 = 1 is a run — one tag byte
//	         (same bits as v2) repeated (c>>1)+3 times; c&1 = 0 is a
//	         literal — (c>>1)+1 raw tag bytes follow. Real traces
//	         alternate tags every op or two, where plain RLE expands;
//	         literal blocks keep those regions at ~1 byte/op while long
//	         runs still collapse.
//	  gaps:  uvarint dictionary size D, then D gap values as fixed-width
//	         u32 little-endian (frequency-descending, value-ascending on
//	         ties, so hot gaps get 1-byte indices), then one uvarint dict
//	         index per op whose tag sets tagHasGap. Recorded gaps draw
//	         from a few hundred distinct cost sums, so indices beat the
//	         raw values; fixed-width entries keep cursor lookup O(1).
//	  addrs: signed varint delta of (addr >> shift) per OpAccess/OpAtomic;
//	         shift is the thread's shared trailing-zero count, so line-
//	         aligned addresses shed their always-zero low bits
//	  dma:   uvarint src, dst, size per OpDMA
//	  phase: uvarint phase id per OpPhase
//	section table (64-byte aligned): per thread, i64 ops, i64 shift, then
//	  per column i64 offset + i64 length (96 bytes per thread)
//	footer, the final 64 bytes:
//	  0:  section table offset      8: section table length
//	  16: thread count             24: total op count
//	  32: content digest           40: crc64(ECMA) of file[:len-64]
//	  48: crc64(ECMA) of footer[:48]
//	  56: magic "NMT3FOOT"
//
// The content digest is the canonical v2 payload CRC (Trace.Digest), so
// every encoding of the same logical trace shares one digest and the
// daemon's content-addressed store serves v3 uploads transparently. Open
// trusts the stored digest (O(1)); Verify recomputes both checksums.
const (
	columnarMagic       = "NMT3"
	columnarFooterMagic = "NMT3FOOT"
	columnarVersion     = 3
	columnarAlign       = 64
	footerSize          = 64
	tableEntrySize      = (2 + 2*numCols) * 8 // ops, shift, 5 x (off, len)

	// maxOpsPerColByte bounds the op count a thread section may claim
	// relative to its encoded size. Tag runs compress field-free ops
	// (barriers, DMA waits) to a fraction of a byte each, but real traces
	// never sustain runs past a few thousand; the cap keeps a hostile
	// header from claiming 2^60 ops in a 1KB file and turning Validate or
	// Decode into a CPU/allocation amplifier. The additive slack admits
	// tiny legitimate streams (an OpEnd-only thread encodes in 2 bytes).
	maxOpsPerColByte = 64
	opsClaimSlack    = 4096

	// minTagRun is the shortest tag repetition worth a run block: a run
	// block costs 2 bytes, so runs of 1-2 are cheaper inside literals.
	minTagRun = 3
)

// colThread is one parsed section-table entry.
type colThread struct {
	ops   int64
	shift uint
	off   [numCols]int64
	end   [numCols]int64
}

// Columnar is an opened v3 trace: a read-only view over the raw file bytes
// (mmap-backed when the platform allows) that implements Source without
// materializing []Op. It is immutable and safe for concurrent cursors.
type Columnar struct {
	data   []byte
	mapped bool

	costs      Costs
	l1         L1Geometry
	phaseNames []string
	threads    []colThread
	totalOps   int64
	digest     uint64
	payloadCRC uint64
	tableOff   int64

	// validateOnce memoizes Validate: the walk is O(ops) and the daemon
	// validates once per upload, then replays many times.
	validateOnce sync.Once
	validateErr  error
}

// EncodeColumnar serializes src into the v3 columnar format.
func EncodeColumnar(src Source) ([]byte, error) {
	threads := src.Threads()
	if threads == 0 {
		return nil, fmt.Errorf("trace: refusing to serialize a trace with no threads")
	}
	if threads > maxThreads {
		return nil, fmt.Errorf("trace: refusing to serialize %d threads (max %d)", threads, maxThreads)
	}
	names := src.PhaseTable()
	if len(names) > maxPhaseNames {
		return nil, fmt.Errorf("trace: refusing to serialize %d phase names (max %d)", len(names), maxPhaseNames)
	}
	digest, err := src.Digest()
	if err != nil {
		return nil, err
	}

	var out bytes.Buffer
	out.WriteString(columnarMagic)
	costs, l1 := src.CostModel(), src.Geometry()
	hdr := []int64{
		columnarVersion,
		costs.IssueCycles, costs.L1HitCycles, costs.CompareCycles, costs.AtomicCycles,
		int64(l1.Capacity), int64(l1.LineSize), int64(l1.Ways),
		int64(threads),
	}
	if err := binary.Write(&out, binary.LittleEndian, hdr); err != nil {
		return nil, err
	}
	var vbuf [binary.MaxVarintLen64]byte
	if err := binary.Write(&out, binary.LittleEndian, int64(len(names))); err != nil {
		return nil, err
	}
	for _, name := range names {
		out.Write(vbuf[:binary.PutUvarint(vbuf[:], uint64(len(name)))])
		out.WriteString(name)
	}

	align := func() {
		for out.Len()%columnarAlign != 0 {
			out.WriteByte(0)
		}
	}

	table := make([]colThread, threads)
	totalOps := int64(0)
	for t := 0; t < threads; t++ {
		// Pass 1: the thread's address shift is the trailing-zero count
		// shared by every access/atomic address (line alignment makes this
		// at least log2(line size) in practice).
		var orAddr uint64
		cur := src.CursorAt(t)
		n := int64(0)
		for cur.Next() {
			if k := cur.Cur.Kind; k == OpAccess || k == OpAtomic {
				orAddr |= cur.Cur.Addr
			}
			n++
		}
		if err := cur.Err(); err != nil {
			return nil, err
		}
		shift := uint(0)
		if orAddr != 0 {
			shift = uint(bits.TrailingZeros64(orAddr))
		}
		table[t].ops = n
		table[t].shift = shift
		totalOps += n

		// Pass 2: encode the five columns. Tags and gaps buffer their raw
		// streams first — block and dictionary encoding both need to see
		// the whole thread.
		var cols [numCols][]byte
		putU := func(col int, v uint64) {
			cols[col] = append(cols[col], vbuf[:binary.PutUvarint(vbuf[:], v)]...)
		}
		putV := func(col int, v int64) {
			cols[col] = append(cols[col], vbuf[:binary.PutVarint(vbuf[:], v)]...)
		}
		tags := make([]byte, 0, n)
		gaps := make([]uint32, 0, n)
		var prev uint64
		cur = src.CursorAt(t)
		for cur.Next() {
			op := cur.Cur
			tag := byte(op.Kind) & tagKindMask
			if op.Write {
				tag |= tagWrite
			}
			if op.Gap != 0 {
				tag |= tagHasGap
				gaps = append(gaps, op.Gap)
			}
			tags = append(tags, tag)
			switch op.Kind {
			case OpAccess, OpAtomic:
				sa := op.Addr >> shift
				putV(colAddrs, int64(sa-prev))
				prev = sa
			case OpDMA:
				putU(colDMAs, op.Addr)
				putU(colDMAs, op.Addr2)
				putU(colDMAs, uint64(op.Size))
			case OpPhase:
				putU(colPhases, op.Addr)
			}
		}
		if err := cur.Err(); err != nil {
			return nil, err
		}
		cols[colTags] = encodeTagBlocks(tags)
		cols[colGaps] = encodeGapDict(gaps)
		for col := range cols {
			align()
			table[t].off[col] = int64(out.Len())
			out.Write(cols[col])
			table[t].end[col] = int64(out.Len())
		}
	}

	align()
	tableOff := out.Len()
	for t := range table {
		ent := []int64{table[t].ops, int64(table[t].shift)}
		for col := 0; col < numCols; col++ {
			ent = append(ent, table[t].off[col], table[t].end[col]-table[t].off[col])
		}
		if err := binary.Write(&out, binary.LittleEndian, ent); err != nil {
			return nil, err
		}
	}

	var ftr [footerSize]byte
	le := binary.LittleEndian
	le.PutUint64(ftr[0:], uint64(tableOff))
	le.PutUint64(ftr[8:], uint64(threads*tableEntrySize))
	le.PutUint64(ftr[16:], uint64(threads))
	le.PutUint64(ftr[24:], uint64(totalOps))
	le.PutUint64(ftr[32:], digest)
	le.PutUint64(ftr[40:], crc64.Checksum(out.Bytes(), crcTable))
	le.PutUint64(ftr[48:], crc64.Checksum(ftr[:48], crcTable))
	copy(ftr[56:], columnarFooterMagic)
	out.Write(ftr[:])
	return out.Bytes(), nil
}

// encodeTagBlocks block-encodes a thread's raw tag stream: greedy runs of
// minTagRun or more become run blocks, everything between them one literal
// block. Deterministic, so re-encoding a decoded trace is byte-identical.
func encodeTagBlocks(tags []byte) []byte {
	var vbuf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, len(tags)+len(tags)/64+1)
	for i := 0; i < len(tags); {
		j := i
		for j < len(tags) && tags[j] == tags[i] {
			j++
		}
		if j-i >= minTagRun {
			out = append(out, vbuf[:binary.PutUvarint(vbuf[:], uint64(j-i-minTagRun)<<1|1)]...)
			out = append(out, tags[i])
			i = j
			continue
		}
		// Literal: extend across short runs until a compressible run starts.
		k := i
		for k < len(tags) {
			j = k
			for j < len(tags) && tags[j] == tags[k] {
				j++
			}
			if j-k >= minTagRun {
				break
			}
			k = j
		}
		out = append(out, vbuf[:binary.PutUvarint(vbuf[:], uint64(k-i-1)<<1)]...)
		out = append(out, tags[i:k]...)
		i = k
	}
	return out
}

// encodeGapDict dictionary-encodes a thread's gap values: the distinct
// values sorted by frequency (ties by value, for determinism) as
// fixed-width u32 entries, then each gap as a uvarint index. The hottest
// values land in the 1-byte index range.
func encodeGapDict(gaps []uint32) []byte {
	sorted := append([]uint32(nil), gaps...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	type valCount struct {
		v uint32
		c int
	}
	var vals []valCount
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		vals = append(vals, valCount{sorted[i], j - i})
		i = j
	}
	sort.Slice(vals, func(a, b int) bool {
		if vals[a].c != vals[b].c {
			return vals[a].c > vals[b].c
		}
		return vals[a].v < vals[b].v
	})
	// rank, sorted by value for binary-search lookup during the index pass.
	type valRank struct {
		v uint32
		r uint64
	}
	lookup := make([]valRank, len(vals))
	for r, e := range vals {
		lookup[r] = valRank{e.v, uint64(r)}
	}
	sort.Slice(lookup, func(a, b int) bool { return lookup[a].v < lookup[b].v })

	var vbuf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 1+4*len(vals)+len(gaps))
	out = append(out, vbuf[:binary.PutUvarint(vbuf[:], uint64(len(vals)))]...)
	for _, e := range vals {
		var b4 [4]byte
		binary.LittleEndian.PutUint32(b4[:], e.v)
		out = append(out, b4[:]...)
	}
	for _, g := range gaps {
		i := sort.Search(len(lookup), func(k int) bool { return lookup[k].v >= g })
		out = append(out, vbuf[:binary.PutUvarint(vbuf[:], lookup[i].r)]...)
	}
	return out
}

// IsColumnar reports whether data begins with the v3 magic — the sniff the
// upload handler and Load use to pick a decoder.
func IsColumnar(data []byte) bool {
	return len(data) >= len(columnarMagic) && string(data[:len(columnarMagic)]) == columnarMagic
}

// Open maps the v3 file at path (falling back to a plain read where mmap is
// unavailable) and validates its structure — footer, section table, header —
// in O(1) without decoding any ops. The returned Columnar is ready to hand
// out cursors immediately; a finalizer releases the mapping if the caller
// never calls Close.
func Open(path string) (*Columnar, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	c, err := openBytes(data, mapped)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, err
	}
	return c, nil
}

// OpenBytes opens a v3 trace held in memory (an uploaded request body, a
// test fixture). The Columnar aliases data; the caller must not mutate it.
func OpenBytes(data []byte) (*Columnar, error) { return openBytes(data, false) }

func openBytes(data []byte, mapped bool) (*Columnar, error) {
	le := binary.LittleEndian
	if len(data) < footerSize {
		return nil, decodeErrf("footer", len(data), "file too small for a v3 footer (%d bytes)", len(data))
	}
	fOff := len(data) - footerSize
	ftr := data[fOff:]
	if string(ftr[56:64]) != columnarFooterMagic {
		return nil, decodeErrf("footer", fOff+56, "bad footer magic %q", ftr[56:64])
	}
	if got, want := crc64.Checksum(ftr[:48], crcTable), le.Uint64(ftr[48:56]); got != want {
		return nil, decodeErrf("footer", fOff+48, "footer checksum mismatch (%#x != %#x)", got, want)
	}
	tableOff := int64(le.Uint64(ftr[0:8]))
	tableLen := int64(le.Uint64(ftr[8:16]))
	threads := int64(le.Uint64(ftr[16:24]))
	totalOps := int64(le.Uint64(ftr[24:32]))
	if threads <= 0 || threads > maxThreads {
		return nil, decodeErrf("footer", fOff+16, "implausible thread count %d", threads)
	}
	if tableLen != threads*tableEntrySize {
		return nil, decodeErrf("footer", fOff+8, "section table length %d != %d threads x %d", tableLen, threads, tableEntrySize)
	}
	if tableOff < 0 || tableOff+tableLen != int64(fOff) {
		return nil, decodeErrf("footer", fOff, "section table [%d,%d) does not abut the footer at %d", tableOff, tableOff+tableLen, fOff)
	}
	if totalOps < 0 {
		return nil, decodeErrf("footer", fOff+24, "negative total op count")
	}

	// Header: same field set as v2 behind the v3 magic.
	br := bytes.NewReader(data[:tableOff])
	off := func() int { return int(tableOff) - br.Len() }
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, decodeErr("header", off(), fmt.Errorf("reading magic: %w", err))
	}
	if string(magic) != columnarMagic {
		return nil, decodeErrf("header", 0, "bad magic %q", magic)
	}
	hdr := make([]int64, 9)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, decodeErr("header", off(), fmt.Errorf("reading fields: %w", err))
	}
	if hdr[0] != columnarVersion {
		return nil, decodeErrf("header", 4, "unsupported version %d", hdr[0])
	}
	if hdr[8] != threads {
		return nil, decodeErrf("header", off()-8, "header thread count %d != footer %d", hdr[8], threads)
	}
	c := &Columnar{
		data:   data,
		mapped: mapped,
		costs: Costs{
			IssueCycles: hdr[1], L1HitCycles: hdr[2],
			CompareCycles: hdr[3], AtomicCycles: hdr[4],
		},
		l1: L1Geometry{
			Capacity: units.Bytes(hdr[5]),
			LineSize: units.Bytes(hdr[6]),
			Ways:     int(hdr[7]),
		},
		totalOps:   totalOps,
		digest:     le.Uint64(ftr[32:40]),
		payloadCRC: le.Uint64(ftr[40:48]),
		tableOff:   tableOff,
	}
	var nNames int64
	if err := binary.Read(br, binary.LittleEndian, &nNames); err != nil {
		return nil, decodeErr("phase table", off(), fmt.Errorf("phase-name count: %w", err))
	}
	if nNames < 0 || nNames > maxPhaseNames {
		return nil, decodeErrf("phase table", off()-8, "implausible phase-name count %d", nNames)
	}
	for i := int64(0); i < nNames; i++ {
		at := off()
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, decodeErr("phase table", at, fmt.Errorf("phase name %d length: %w", i, err))
		}
		if l > uint64(br.Len()) {
			return nil, decodeErrf("phase table", at, "phase name %d length %d exceeds header", i, l)
		}
		name := make([]byte, l)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, decodeErr("phase table", at, fmt.Errorf("phase name %d: %w", i, err))
		}
		c.phaseNames = append(c.phaseNames, string(name))
	}
	headerEnd := int64(off())

	// Section table: every column 64-byte aligned, in file order, disjoint,
	// inside (headerEnd, tableOff], with a plausible claimed op count.
	c.threads = make([]colThread, threads)
	table := data[tableOff : tableOff+tableLen]
	prevEnd := headerEnd
	sumOps := int64(0)
	for t := int64(0); t < threads; t++ {
		ent := table[t*tableEntrySize:]
		entOff := int(tableOff + t*tableEntrySize)
		ops := int64(le.Uint64(ent[0:8]))
		shift := le.Uint64(ent[8:16])
		if ops < 0 {
			return nil, decodeErrf("section table", entOff, "thread %d: negative op count", t)
		}
		if shift > 63 {
			return nil, decodeErrf("section table", entOff+8, "thread %d: address shift %d out of range", t, shift)
		}
		th := &c.threads[t]
		th.ops = ops
		th.shift = uint(shift)
		colBytes := int64(0)
		for col := 0; col < numCols; col++ {
			fieldOff := entOff + 16 + col*16
			secOff := int64(le.Uint64(ent[16+col*16:]))
			secLen := int64(le.Uint64(ent[24+col*16:]))
			sec := fmt.Sprintf("thread %d %s column", t, colNames[col])
			if secOff < 0 || secLen < 0 || secOff > int64(fOff) || secLen > tableOff-secOff {
				return nil, decodeErrf(sec, fieldOff, "section [%d,%d) out of bounds", secOff, secOff+secLen)
			}
			if secOff%columnarAlign != 0 {
				return nil, decodeErrf(sec, fieldOff, "misaligned section offset %d", secOff)
			}
			if secOff < prevEnd {
				return nil, decodeErrf(sec, fieldOff, "section at %d overlaps previous section ending at %d", secOff, prevEnd)
			}
			th.off[col] = secOff
			th.end[col] = secOff + secLen
			prevEnd = th.end[col]
			colBytes += secLen
		}
		if ops > maxOpsPerColByte*colBytes+opsClaimSlack {
			return nil, decodeErrf("section table", entOff, "thread %d: implausible op count %d for %d column bytes", t, ops, colBytes)
		}
		sumOps += ops
	}
	if sumOps != totalOps {
		return nil, decodeErrf("footer", fOff+24, "total op count %d != section table sum %d", totalOps, sumOps)
	}
	if mapped {
		runtime.SetFinalizer(c, (*Columnar).Close)
	}
	return c, nil
}

// Close releases the mapping, if any. After Close every cursor over the
// Columnar is invalid; only call it once no replays reference the trace
// (the serving layer guarantees this by holding pins, and otherwise leaves
// cleanup to the finalizer installed by Open).
func (c *Columnar) Close() error {
	if !c.mapped {
		return nil
	}
	c.mapped = false
	runtime.SetFinalizer(c, nil)
	data := c.data
	c.data = nil
	return unmapFile(data)
}

// Size returns the file size in bytes.
func (c *Columnar) Size() int64 { return int64(len(c.data)) }

// Mapped reports whether the bytes are an mmap rather than heap memory.
func (c *Columnar) Mapped() bool { return c.mapped }

// Threads returns the number of per-thread op streams.
func (c *Columnar) Threads() int { return len(c.threads) }

// ThreadOps returns thread tid's claimed op count (verified by Validate).
func (c *Columnar) ThreadOps(tid int) int { return int(c.threads[tid].ops) }

// Ops returns the total claimed op count (verified by Validate).
func (c *Columnar) Ops() int { return int(c.totalOps) }

// PhaseTable returns the phase-name table.
func (c *Columnar) PhaseTable() []string { return c.phaseNames }

// Geometry returns the record-time L1 geometry.
func (c *Columnar) Geometry() L1Geometry { return c.l1 }

// CostModel returns the record-time cycle charges.
func (c *Columnar) CostModel() Costs { return c.costs }

// Digest returns the content digest stored in the footer — the canonical
// digest every encoding of this trace shares. Open trusts the stored value
// so the call is O(1); Verify recomputes it from the decoded ops.
func (c *Columnar) Digest() (uint64, error) { return c.digest, nil }

// Shift returns thread tid's address shift (for nmtrace stat).
func (c *Columnar) Shift(tid int) uint { return c.threads[tid].shift }

// Section describes one column segment (for nmtrace stat).
type Section struct {
	Thread int
	Column string
	Offset int64
	Bytes  int64
}

// Sections lists every column segment in file order.
func (c *Columnar) Sections() []Section {
	secs := make([]Section, 0, len(c.threads)*numCols)
	for t := range c.threads {
		for col := 0; col < numCols; col++ {
			secs = append(secs, Section{
				Thread: t,
				Column: colNames[col],
				Offset: c.threads[t].off[col],
				Bytes:  c.threads[t].end[col] - c.threads[t].off[col],
			})
		}
	}
	return secs
}

// CursorAt returns a fresh columnar cursor over thread tid's columns. The
// gap column's dictionary header is parsed here, once per cursor; a
// malformed header latches the cursor failed so the first Next reports it
// through Err.
func (c *Columnar) CursorAt(tid int) Cursor {
	th := &c.threads[tid]
	cur := Cursor{
		columnar: true,
		owner:    c,
		tid:      tid,
		n:        th.ops,
		shift:    th.shift,
		tags:     c.data[th.off[colTags]:th.end[colTags]],
		addrs:    c.data[th.off[colAddrs]:th.end[colAddrs]],
		dmas:     c.data[th.off[colDMAs]:th.end[colDMAs]],
		phases:   c.data[th.off[colPhases]:th.end[colPhases]],
		ends:     th.end,
	}
	g := c.data[th.off[colGaps]:th.end[colGaps]]
	if th.ops == 0 && len(g) == 0 {
		return cur // an all-empty thread carries no dict header
	}
	dictLen, m := binary.Uvarint(g)
	if m <= 0 || dictLen > uint64(len(g)-m)/4 {
		cur.failed = true
		cur.col = colGaps
		return cur
	}
	cur.dict = g[m : m+4*int(dictLen)]
	cur.gaps = g[m+4*int(dictLen):]
	return cur
}

// Validate streams every thread's columns once, checking what
// Trace.Validate checks on decoded streams — OpEnd termination, barrier
// agreement, address routing, phase-id bounds — plus the columnar framing:
// the claimed op count decodes exactly and consumes every column byte. It
// allocates no op slices, so a hostile header cannot turn validation into
// an allocation amplifier. The result is memoized.
func (c *Columnar) Validate() error {
	c.validateOnce.Do(func() { c.validateErr = c.validate() })
	return c.validateErr
}

func (c *Columnar) validate() error {
	barriers := -1
	for t := range c.threads {
		cur := c.CursorAt(t)
		b := 0
		n := int64(0)
		endSeen := false
		for cur.Next() {
			if endSeen {
				return fmt.Errorf("trace: thread %d has interior OpEnd at %d", t, n-1)
			}
			n++
			op := cur.Cur
			switch op.Kind {
			case OpEnd:
				endSeen = true
			case OpBarrier:
				b++
			case OpAccess, OpAtomic:
				if err := levelCheck(op.Addr); err != nil {
					return fmt.Errorf("trace: thread %d op %d: %w", t, n-1, err)
				}
			case OpDMA:
				if err := levelCheck(op.Addr); err != nil {
					return fmt.Errorf("trace: thread %d op %d: %w", t, n-1, err)
				}
				if err := levelCheck(op.Addr2); err != nil {
					return fmt.Errorf("trace: thread %d op %d: %w", t, n-1, err)
				}
			case OpPhase:
				if op.Addr >= uint64(len(c.phaseNames)) {
					return fmt.Errorf("trace: thread %d op %d names phase %d of %d",
						t, n-1, op.Addr, len(c.phaseNames))
				}
			}
		}
		if err := cur.Err(); err != nil {
			return err
		}
		if n != c.threads[t].ops {
			return decodeErrf("section table", int(c.tableOff)+t*tableEntrySize,
				"thread %d decoded %d ops, table claims %d", t, n, c.threads[t].ops)
		}
		if !endSeen {
			return fmt.Errorf("trace: thread %d stream not terminated", t)
		}
		if col := cur.remaining(); col >= 0 {
			return decodeErrf(cur.colSection(col), int(cur.colOffset(col)),
				"%d trailing bytes past the claimed %d ops",
				cur.ends[col]-cur.colOffset(col), c.threads[t].ops)
		}
		if barriers == -1 {
			barriers = b
		} else if b != barriers {
			return fmt.Errorf("trace: thread %d reached %d barriers, thread 0 reached %d",
				t, b, barriers)
		}
	}
	return nil
}

// Verify recomputes both footer checksums: the whole-payload CRC (torn or
// corrupted file) and the content digest (the canonical digest of the
// decoded ops, guarding the daemon's content-addressed store against a v3
// file whose footer claims another trace's digest). O(file + ops) — Open
// deliberately skips it; callers that ingest untrusted files (uploads,
// nmtrace convert) run it explicitly.
func (c *Columnar) Verify() error {
	payload := c.data[:len(c.data)-footerSize]
	if got := crc64.Checksum(payload, crcTable); got != c.payloadCRC {
		return decodeErrf("checksum", len(payload), "mismatch (%#x != %#x): torn or corrupted stream", got, c.payloadCRC)
	}
	_, got, err := writePayload(io.Discard, c)
	if err != nil {
		return err
	}
	if got != c.digest {
		return decodeErrf("footer", len(c.data)-footerSize+32,
			"content digest %#x does not match decoded ops (%#x)", c.digest, got)
	}
	return nil
}

// Decode materializes the legacy in-memory representation. It validates
// first, so the per-thread allocations are exactly sized by verified
// counts — a hostile header cannot inflate them.
func (c *Columnar) Decode() (*Trace, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{
		Streams:    make([][]Op, len(c.threads)),
		L1:         c.l1,
		Costs:      c.costs,
		PhaseNames: c.phaseNames,
	}
	for t := range c.threads {
		ops := make([]Op, 0, c.threads[t].ops)
		cur := c.CursorAt(t)
		for cur.Next() {
			ops = append(ops, cur.Cur)
		}
		if err := cur.Err(); err != nil {
			return nil, err
		}
		tr.Streams[t] = ops
	}
	return tr, nil
}

// WriteTo copies the raw v3 bytes — what the daemon's fetch handler
// streams back for a stored columnar trace.
func (c *Columnar) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(c.data)
	return int64(n), err
}

// Load opens the trace file at path in whichever serialization it carries:
// v3 files (magic "NMT3") are mmapped via Open, v1/v2 files are fully
// decoded via ReadTrace.
func Load(path string) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	_, err = io.ReadFull(f, magic[:])
	if err != nil {
		f.Close()
		return nil, decodeErr("header", 0, fmt.Errorf("reading magic: %w", err))
	}
	if IsColumnar(magic[:]) {
		f.Close()
		return Open(path)
	}
	defer f.Close()
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ReadTrace(f)
}
