package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"testing"
)

// fuzzSeedColumnar encodes the shared seed traces as v3 plus a set of
// structurally-hostile mutants: truncated sections, misaligned and
// overlapping section offsets, corrupt footers, and implausible op
// counts. Every mutant keeps a valid footer CRC where the attack is
// upstream of it, so the fuzzer starts past the cheap gates.
func fuzzSeedColumnar(t testing.TB) [][]byte {
	t.Helper()
	var out [][]byte
	for _, raw := range fuzzSeedTraces(t) {
		tr, err := ReadTrace(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("seed: %v", err)
		}
		data, err := EncodeColumnar(tr)
		if err != nil {
			t.Fatalf("seed encode: %v", err)
		}
		out = append(out, data)

		// Truncated mid-section.
		out = append(out, data[:len(data)-footerSize-1])

		// Footer magic flipped.
		mut := bytes.Clone(data)
		mut[len(mut)-1] ^= 0xff
		out = append(out, mut)

		// Footer CRC flipped.
		mut = bytes.Clone(data)
		mut[len(mut)-footerSize+48] ^= 0xff
		out = append(out, mut)

		// Misaligned section offset (patch table, refresh footer CRC so
		// the mutation is reached).
		out = append(out, patchTable(data, 16, func(v uint64) uint64 { return v + 1 }))

		// Overlapping sections: point the gaps column at the tags column.
		out = append(out, patchTable(data, 32, func(uint64) uint64 { return 0 }))

		// Implausible op count with a matching footer total.
		huge := patchTable(data, 0, func(uint64) uint64 { return 1 << 60 })
		fOff := len(huge) - footerSize
		binary.LittleEndian.PutUint64(huge[fOff+24:], 1<<60)
		binary.LittleEndian.PutUint64(huge[fOff+48:], crc64.Checksum(huge[fOff:fOff+48], crcTable))
		out = append(out, huge)
	}
	return out
}

// patchTable mutates one u64 field of thread 0's section-table entry and
// refreshes the footer CRC so validation reaches the mutated field.
func patchTable(data []byte, field int, f func(uint64) uint64) []byte {
	mut := bytes.Clone(data)
	le := binary.LittleEndian
	fOff := len(mut) - footerSize
	tableOff := int(le.Uint64(mut[fOff:]))
	v := le.Uint64(mut[tableOff+field:])
	le.PutUint64(mut[tableOff+field:], f(v))
	le.PutUint64(mut[fOff+48:], crc64.Checksum(mut[fOff:fOff+48], crcTable))
	return mut
}

// FuzzOpenColumnar asserts the v3 decode contract on arbitrary bytes:
// OpenBytes either fails with a *DecodeError naming a section and offset
// or yields a Columnar whose cursors, Validate, Verify, and Decode never
// panic, never allocate past verified op counts, and surface every
// malformation as a *DecodeError.
func FuzzOpenColumnar(f *testing.F) {
	for _, seed := range fuzzSeedColumnar(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := OpenBytes(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("OpenBytes error is %T, want *DecodeError: %v", err, err)
			}
			if de.Section == "" {
				t.Fatalf("DecodeError without a section name: %v", de)
			}
			return
		}
		// Structure accepted: every deeper layer must degrade gracefully.
		for tid := 0; tid < col.Threads(); tid++ {
			cur := col.CursorAt(tid)
			n := 0
			for cur.Next() {
				n++
			}
			if n > col.ThreadOps(tid) {
				t.Fatalf("thread %d produced %d ops past its claim %d", tid, n, col.ThreadOps(tid))
			}
			if err := cur.Err(); err != nil {
				var de *DecodeError
				if !errors.As(err, &de) {
					t.Fatalf("cursor error is %T, want *DecodeError: %v", err, err)
				}
			}
		}
		col.Verify()
		if col.Validate() == nil {
			if _, err := col.Decode(); err != nil {
				t.Fatalf("Decode failed on a validated trace: %v", err)
			}
		}
	})
}

// TestOpenColumnarSeeds runs every fuzz seed through the fuzz target's
// assertions without the fuzzing engine — the deterministic tier-1 slice
// of the fuzz contract — and pins that each hostile mutant is rejected.
func TestOpenColumnarSeeds(t *testing.T) {
	seeds := fuzzSeedColumnar(t)
	for i, data := range seeds {
		col, err := OpenBytes(data)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("seed %d: error %T, want *DecodeError: %v", i, err, err)
			}
			continue
		}
		for tid := 0; tid < col.Threads(); tid++ {
			cur := col.CursorAt(tid)
			for cur.Next() {
			}
			if err := cur.Err(); err != nil {
				var de *DecodeError
				if !errors.As(err, &de) {
					t.Fatalf("seed %d: cursor error %T, want *DecodeError", i, err)
				}
			}
		}
	}
	// The unmutated seeds (every 7th entry) must open cleanly; the six
	// mutants that follow each must be rejected by Open or Verify.
	for i := 0; i < len(seeds); i += 7 {
		if _, err := OpenBytes(seeds[i]); err != nil {
			t.Fatalf("clean seed %d rejected: %v", i, err)
		}
		for j := i + 1; j < i+7 && j < len(seeds); j++ {
			col, err := OpenBytes(seeds[j])
			if err == nil {
				err = col.Verify()
			}
			if err == nil {
				t.Fatalf("hostile seed %d accepted by Open and Verify", j)
			}
		}
	}
}
