package trace

import (
	"encoding/binary"
	"io"
	"sync"
	"testing"

	"repro/internal/addr"
)

// digestTrace builds a modest multi-thread trace for the digest tests.
func digestTrace(threads, opsPerThread int) *Trace {
	rec := NewRecorder(threads, DefaultL1(), DefaultCosts())
	for t := 0; t < threads; t++ {
		tp := rec.Thread(t)
		for i := 0; i < opsPerThread; i++ {
			tp.Load(addr.FarBase+addr.Addr(t*opsPerThread+i)*64, 8)
			tp.Compare(3)
		}
		tp.Barrier()
	}
	return rec.Finish()
}

// TestDigestMatchesStreamChecksum pins the digest's defining property: it
// is the trailing checksum WriteTo appends, so an in-memory digest can be
// compared against a file on disk without re-reading the stream.
func TestDigestMatchesStreamChecksum(t *testing.T) {
	tr := digestTrace(4, 200)
	d, err := tr.Digest()
	if err != nil {
		t.Fatal(err)
	}
	var buf writerBuf
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tail := buf.b[len(buf.b)-8:]
	if got := binary.LittleEndian.Uint64(tail); got != d {
		t.Fatalf("Digest() = %#x, stream checksum = %#x", d, got)
	}
}

// TestDigestMemoized checks repeated and concurrent calls return the same
// value: the memo is computed once and is safe under the concurrent keying
// the serving layer does against one shared trace.
func TestDigestMemoized(t *testing.T) {
	tr := digestTrace(2, 100)
	first, err := tr.Digest()
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	got := make([]uint64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := tr.Digest()
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			got[i] = d
		}(i)
	}
	wg.Wait()
	for i, d := range got {
		if d != first {
			t.Fatalf("caller %d saw digest %#x, first call saw %#x", i, d, first)
		}
	}
}

// TestDigestErrorMemoized: a trace the serializer rejects keeps returning
// the same error without re-serializing.
func TestDigestErrorMemoized(t *testing.T) {
	tr := &Trace{} // zero threads: refused by writePayload
	if _, err := tr.Digest(); err == nil {
		t.Fatal("digest of a zero-thread trace must fail")
	}
	if _, err := tr.Digest(); err == nil {
		t.Fatal("memoized digest lost the error")
	}
}

// BenchmarkTraceDigestFirst measures the cold digest: a full serialization
// of the stream. Each iteration uses a fresh Trace header sharing the same
// recorded streams, so only the memo is cold.
func BenchmarkTraceDigestFirst(b *testing.B) {
	tr := digestTrace(8, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := &Trace{Streams: tr.Streams, L1: tr.L1, Costs: tr.Costs, PhaseNames: tr.PhaseNames}
		if _, err := fresh.Digest(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDigestMemoized measures every call after the first: it
// must be O(1) — a Once check and two field reads — independent of trace
// size.
func BenchmarkTraceDigestMemoized(b *testing.B) {
	tr := digestTrace(8, 4096)
	if _, err := tr.Digest(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Digest(); err != nil {
			b.Fatal(err)
		}
	}
}

// writerBuf is a minimal in-memory io.Writer capturing the stream.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

var _ io.Writer = (*writerBuf)(nil)
