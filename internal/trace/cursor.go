package trace

import (
	"encoding/binary"
	"fmt"
)

// Column indices within a v3 per-thread section group. The file stores the
// five columns of one thread contiguously in this order; colNames names
// them in DecodeErrors and nmtrace stat output.
const (
	colTags   = iota // run/literal blocks of tag bytes (see columnar.go)
	colGaps          // u32 dictionary + uvarint index per op whose tag sets tagHasGap
	colAddrs         // signed varint delta of (addr >> shift) per OpAccess/OpAtomic
	colDMAs          // uvarint src, dst, size triple per OpDMA
	colPhases        // uvarint phase id per OpPhase
	numCols
)

// colNames names the columns for DecodeError sections and stat output.
var colNames = [numCols]string{"tags", "gaps", "addrs", "dma", "phase"}

// Cursor streams one thread's ops in order. It is a value type: CursorAt
// returns it on the stack and the replay core embeds it, so iteration
// allocates nothing. Two modes share the API: a decoded-slice walk over a
// *Trace stream, and a columnar walk that decodes each op on the fly from
// a v3 file's per-thread column segments.
//
// Usage:
//
//	cur := src.CursorAt(tid)
//	for cur.Next() {
//		op := cur.Cur
//		...
//	}
//	if err := cur.Err(); err != nil { ... }
//
// Next never allocates, including on malformed input: a decode failure
// latches the cursor into a terminal failed state and Next reports false;
// Err materializes the *DecodeError afterwards, off the hot path. A
// columnar cursor holds its owning *Columnar, so the mapped file cannot be
// unmapped by the finalizer while any cursor can still read it.
type Cursor struct {
	// Cur is the current op: valid after each Next that returned true.
	Cur Op

	// Decoded-slice mode.
	ops []Op
	idx int

	// Columnar mode.
	columnar bool
	owner    *Columnar // keeps the mapping alive while cursors exist
	n        int64     // claimed ops not yet produced
	run      uint64    // ops remaining in the current tag run block
	lit      uint64    // tag bytes remaining in the current literal block
	tag      byte      // current op's tag byte
	prev     uint64    // shifted-address accumulator (see Columnar shift)
	shift    uint      // per-thread address shift
	dict     []byte    // gap dictionary: fixed-width u32 entries
	tags     []byte    // unconsumed remainder of each column
	gaps     []byte    // (gaps: the index stream past the dictionary)
	addrs    []byte
	dmas     []byte
	phases   []byte
	ends     [numCols]int64 // file offset one past each column, for Err

	failed bool
	col    int // column that failed, valid when failed
	tid    int
}

// Next advances to the next op, reporting false at end of stream or on a
// decode failure (distinguish with Err). This is the replay kernel's
// per-event decode step, so the failure paths only latch state: building
// the error is deferred to Err.
//
//nmlint:hotpath
func (c *Cursor) Next() bool {
	if !c.columnar {
		if c.idx >= len(c.ops) {
			return false
		}
		c.Cur = c.ops[c.idx]
		c.idx++
		return true
	}
	if c.failed || c.n <= 0 {
		return false
	}
	if c.run == 0 && c.lit == 0 {
		ctl, m := binary.Uvarint(c.tags)
		if m <= 0 {
			return c.fail(colTags)
		}
		c.tags = c.tags[m:]
		if ctl&1 != 0 {
			rl := (ctl >> 1) + minTagRun
			if rl > uint64(c.n) || len(c.tags) == 0 {
				return c.fail(colTags)
			}
			tag := c.tags[0]
			if tag&tagReserved != 0 || Kind(tag&tagKindMask) > OpPhase {
				return c.fail(colTags)
			}
			c.tags = c.tags[1:]
			c.tag = tag
			c.run = rl
		} else {
			ll := (ctl >> 1) + 1
			if ll > uint64(c.n) {
				return c.fail(colTags)
			}
			c.lit = ll
		}
	}
	if c.run > 0 {
		c.run--
	} else {
		if len(c.tags) == 0 {
			return c.fail(colTags)
		}
		tag := c.tags[0]
		if tag&tagReserved != 0 || Kind(tag&tagKindMask) > OpPhase {
			return c.fail(colTags)
		}
		c.tags = c.tags[1:]
		c.tag = tag
		c.lit--
	}
	c.n--
	op := Op{Kind: Kind(c.tag & tagKindMask), Write: c.tag&tagWrite != 0}
	if c.tag&tagHasGap != 0 {
		idx, m := binary.Uvarint(c.gaps)
		if m <= 0 || idx >= uint64(len(c.dict))/4 {
			return c.fail(colGaps)
		}
		c.gaps = c.gaps[m:]
		g := binary.LittleEndian.Uint32(c.dict[idx*4:])
		if g == 0 {
			return c.fail(colGaps)
		}
		op.Gap = g
	}
	switch op.Kind {
	case OpAccess, OpAtomic:
		d, m := binary.Varint(c.addrs)
		if m <= 0 {
			return c.fail(colAddrs)
		}
		c.addrs = c.addrs[m:]
		c.prev += uint64(d)
		op.Addr = c.prev << c.shift
	case OpDMA:
		src, m := binary.Uvarint(c.dmas)
		if m <= 0 {
			return c.fail(colDMAs)
		}
		c.dmas = c.dmas[m:]
		dst, m := binary.Uvarint(c.dmas)
		if m <= 0 {
			return c.fail(colDMAs)
		}
		c.dmas = c.dmas[m:]
		sz, m := binary.Uvarint(c.dmas)
		if m <= 0 || sz > uint64(^uint32(0)) {
			return c.fail(colDMAs)
		}
		c.dmas = c.dmas[m:]
		op.Addr, op.Addr2, op.Size = src, dst, uint32(sz)
	case OpPhase:
		id, m := binary.Uvarint(c.phases)
		if m <= 0 {
			return c.fail(colPhases)
		}
		c.phases = c.phases[m:]
		op.Addr = id
	}
	c.Cur = op
	return true
}

// fail latches the cursor into its terminal failed state. It allocates
// nothing: Err builds the *DecodeError on demand.
func (c *Cursor) fail(col int) bool {
	c.failed = true
	c.col = col
	return false
}

// Err returns the decode failure that stopped the cursor, or nil if Next
// reported false because the stream is simply exhausted. The error is a
// *DecodeError naming the thread's column and the file byte offset at
// which decoding stopped. Decoded-slice cursors never fail.
func (c *Cursor) Err() error {
	if !c.failed {
		return nil
	}
	return decodeErrf(c.colSection(c.col), int(c.colOffset(c.col)),
		"truncated or malformed column data (%d ops still claimed)", c.n)
}

// colSection names column col of this cursor's thread for error reporting.
func (c *Cursor) colSection(col int) string {
	return fmt.Sprintf("thread %d %s column", c.tid, colNames[col])
}

// colOffset returns the file byte offset at which column col's next
// unconsumed byte sits (== the column's end offset once fully consumed).
func (c *Cursor) colOffset(col int) int64 {
	rem := [numCols]int{len(c.tags), len(c.gaps), len(c.addrs), len(c.dmas), len(c.phases)}
	return c.ends[col] - int64(rem[col])
}

// remaining reports the first column with unconsumed bytes, or -1 when the
// walk consumed every column exactly. Columnar.Validate uses it to reject
// files whose columns carry trailing garbage past the claimed op count.
func (c *Cursor) remaining() int {
	if !c.columnar {
		return -1
	}
	for col, rem := range [numCols]int{len(c.tags), len(c.gaps), len(c.addrs), len(c.dmas), len(c.phases)} {
		if rem != 0 {
			return col
		}
	}
	return -1
}
