package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"

	"repro/internal/units"
)

// Trace serialization: a compact little-endian binary format so traces can
// be recorded once (expensive: native execution under instrumentation) and
// replayed many times or inspected offline — the workflow of cmd/nmtrace.
//
// Layout:
//
//	magic "NMTR" | version u32
//	costs: 4 x i64 | l1: cap i64, line i64, ways i64
//	threads u32
//	phase names (version >= 2): count i64, then per name len uvarint + bytes
//	per thread: ops u32, then packed ops
//	crc64(ECMA) of everything before it
//
// Ops are delta-packed per kind: a leading tag byte (kind | flags) followed
// by only the fields that kind uses.
//
// Version history: v1 had no phase-name table and no OpPhase ops; v2 added
// both. The writer emits v2; the reader accepts both.

const (
	traceMagic     = "NMTR"
	traceVersion   = 2
	traceVersionV1 = 1

	// maxPhaseNames bounds the phase table a hostile stream can request;
	// real traces mark a handful of phases.
	maxPhaseNames = 1 << 12

	// maxThreads bounds the thread count on both sides of the format: the
	// reader rejects hostile headers above it, and the writer refuses to
	// produce a stream the reader would reject.
	maxThreads = 1 << 20
)

const (
	tagKindMask = 0x0f
	tagWrite    = 0x10 // OpAccess direction
	tagHasGap   = 0x20 // a uvarint gap follows

	// tagReserved covers the two remaining flag bits. Bit 0x40 was once
	// described as a small-address marker that was "always set", but no
	// writer ever emitted it; both bits are now explicitly reserved and
	// must be zero. The reader rejects streams that set them, so a future
	// format revision can assign them without old readers silently
	// misdecoding the new streams.
	tagReserved = 0xc0
)

// WriteTo serializes the trace. It returns the bytes written. A trace
// with zero threads (or an implausibly large thread count) is rejected
// here, with nothing written: ReadTrace refuses such headers, so
// serializing one would only manufacture an unreadable file whose failure
// surfaces at the far end of the pipeline instead of at the writer.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	if len(tr.Streams) == 0 {
		return 0, fmt.Errorf("trace: refusing to serialize a trace with no threads")
	}
	if len(tr.Streams) > maxThreads {
		return 0, fmt.Errorf("trace: refusing to serialize %d threads (max %d)", len(tr.Streams), maxThreads)
	}
	cw := &countingWriter{w: w, crc: crc64.New(crcTable)}
	bw := bufio.NewWriterSize(cw, 1<<20)

	put := func(data any) error { return binary.Write(bw, binary.LittleEndian, data) }
	if _, err := bw.WriteString(traceMagic); err != nil {
		return cw.n, err
	}
	hdr := []int64{
		traceVersion,
		tr.Costs.IssueCycles, tr.Costs.L1HitCycles, tr.Costs.CompareCycles, tr.Costs.AtomicCycles,
		int64(tr.L1.Capacity), int64(tr.L1.LineSize), int64(tr.L1.Ways),
		int64(len(tr.Streams)),
	}
	if err := put(hdr); err != nil {
		return cw.n, err
	}

	var buf [3 * binary.MaxVarintLen64]byte
	if err := put(int64(len(tr.PhaseNames))); err != nil {
		return cw.n, err
	}
	for _, name := range tr.PhaseNames {
		n := binary.PutUvarint(buf[:], uint64(len(name)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return cw.n, err
		}
		if _, err := bw.WriteString(name); err != nil {
			return cw.n, err
		}
	}
	for _, s := range tr.Streams {
		if err := put(int64(len(s))); err != nil {
			return cw.n, err
		}
		var prevAddr uint64
		for _, op := range s {
			tag := byte(op.Kind) & tagKindMask
			if op.Write {
				tag |= tagWrite
			}
			if op.Gap != 0 {
				tag |= tagHasGap
			}
			if err := bw.WriteByte(tag); err != nil {
				return cw.n, err
			}
			n := 0
			if op.Gap != 0 {
				n += binary.PutUvarint(buf[n:], uint64(op.Gap))
			}
			switch op.Kind {
			case OpAccess, OpAtomic:
				n += binary.PutVarint(buf[n:], int64(op.Addr-prevAddr))
				prevAddr = op.Addr
			case OpDMA:
				n += binary.PutUvarint(buf[n:], op.Addr)
				n += binary.PutUvarint(buf[n:], op.Addr2)
				n += binary.PutUvarint(buf[n:], uint64(op.Size))
			case OpPhase:
				n += binary.PutUvarint(buf[n:], op.Addr)
			}
			if _, err := bw.Write(buf[:n]); err != nil {
				return cw.n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	// Trailing checksum (not itself checksummed).
	sum := cw.crc.Sum64()
	if err := binary.Write(cw.w, binary.LittleEndian, sum); err != nil {
		return cw.n, err
	}
	return cw.n + 8, nil
}

var crcTable = crc64.MakeTable(crc64.ECMA)

type countingWriter struct {
	w   io.Writer
	crc interface {
		io.Writer
		Sum64() uint64
	}
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc.Write(p[:n])
	return n, err
}

// ReadTrace deserializes a trace written by WriteTo, verifying its
// checksum. The entire stream is buffered in memory first (traces are tens
// of MB at most), which keeps the checksum handling trivial.
func ReadTrace(r io.Reader) (*Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading stream: %w", err)
	}
	if len(raw) < 8 {
		return nil, fmt.Errorf("trace: truncated stream (%d bytes)", len(raw))
	}
	payload, tail := raw[:len(raw)-8], raw[len(raw)-8:]
	want := binary.LittleEndian.Uint64(tail)
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("trace: checksum mismatch (%#x != %#x)", got, want)
	}

	br := bytes.NewReader(payload)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	hdr := make([]int64, 9)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	version := hdr[0]
	if version != traceVersion && version != traceVersionV1 {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	// Every stream costs at least its 8-byte length field, so a thread
	// count beyond the remaining payload can only come from corruption;
	// checking before allocating keeps a hostile header from forcing a
	// huge allocation.
	threads := hdr[8]
	if threads <= 0 || threads > maxThreads || threads > int64(br.Len())/8 {
		return nil, fmt.Errorf("trace: implausible thread count %d", threads)
	}
	tr := &Trace{
		Streams: make([][]Op, threads),
		Costs: Costs{
			IssueCycles: hdr[1], L1HitCycles: hdr[2],
			CompareCycles: hdr[3], AtomicCycles: hdr[4],
		},
		L1: L1Geometry{
			Capacity: units.Bytes(hdr[5]),
			LineSize: units.Bytes(hdr[6]),
			Ways:     int(hdr[7]),
		},
	}

	if version >= 2 {
		var nNames int64
		if err := binary.Read(br, binary.LittleEndian, &nNames); err != nil {
			return nil, fmt.Errorf("trace: phase-name count: %w", err)
		}
		if nNames < 0 || nNames > maxPhaseNames {
			return nil, fmt.Errorf("trace: implausible phase-name count %d", nNames)
		}
		for i := int64(0); i < nNames; i++ {
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: phase name %d length: %w", i, err)
			}
			if l > uint64(br.Len()) {
				return nil, fmt.Errorf("trace: phase name %d length %d exceeds payload", i, l)
			}
			name := make([]byte, l)
			if _, err := io.ReadFull(br, name); err != nil {
				return nil, fmt.Errorf("trace: phase name %d: %w", i, err)
			}
			tr.PhaseNames = append(tr.PhaseNames, string(name))
		}
	}

	for t := int64(0); t < threads; t++ {
		var nOps int64
		if err := binary.Read(br, binary.LittleEndian, &nOps); err != nil {
			return nil, fmt.Errorf("trace: thread %d length: %w", t, err)
		}
		// Each op occupies at least its tag byte, so the remaining
		// payload bounds the count; this rejects corrupt lengths before
		// the allocation they would inflate.
		if nOps < 0 || nOps > int64(br.Len()) {
			return nil, fmt.Errorf("trace: implausible op count %d", nOps)
		}
		ops := make([]Op, nOps)
		if err := decodeOps(br, ops, t); err != nil {
			return nil, err
		}
		tr.Streams[t] = ops
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("trace: %d trailing payload bytes", br.Len())
	}
	return tr, nil
}

// decodeOps decodes thread t's op stream into ops, which the caller sized
// from the validated per-thread count. This is the replay pipeline's decode
// hot loop — tens of millions of iterations for the Table I traces — so it
// fills the caller-allocated slice in place and allocates only on the error
// exits.
//
//nmlint:hotpath
func decodeOps(br *bytes.Reader, ops []Op, t int64) error {
	var prevAddr uint64
	for i := range ops {
		tag, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: thread %d op %d: %w", t, i, err)
		}
		if tag&tagReserved != 0 {
			return fmt.Errorf("trace: thread %d op %d: reserved tag bits %#x set", t, i, tag&tagReserved)
		}
		op := Op{Kind: Kind(tag & tagKindMask), Write: tag&tagWrite != 0}
		if tag&tagHasGap != 0 {
			g, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("trace: gap: %w", err)
			}
			if g > uint64(^uint32(0)) {
				return fmt.Errorf("trace: gap %d overflows", g)
			}
			op.Gap = uint32(g)
		}
		switch op.Kind {
		case OpAccess, OpAtomic:
			d, err := binary.ReadVarint(br)
			if err != nil {
				return fmt.Errorf("trace: addr delta: %w", err)
			}
			op.Addr = prevAddr + uint64(d)
			prevAddr = op.Addr
		case OpDMA:
			if op.Addr, err = binary.ReadUvarint(br); err != nil {
				return fmt.Errorf("trace: dma src: %w", err)
			}
			if op.Addr2, err = binary.ReadUvarint(br); err != nil {
				return fmt.Errorf("trace: dma dst: %w", err)
			}
			sz, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("trace: dma size: %w", err)
			}
			// Mirror the gap overflow check: silently truncating to
			// uint32 would decode a corrupt stream into a different
			// (smaller) workload instead of rejecting it.
			if sz > uint64(^uint32(0)) {
				return fmt.Errorf("trace: dma size %d overflows", sz)
			}
			op.Size = uint32(sz)
		case OpPhase:
			if op.Addr, err = binary.ReadUvarint(br); err != nil {
				return fmt.Errorf("trace: phase id: %w", err)
			}
		case OpBarrier, OpDMAWait, OpGap, OpEnd:
			// tag only
		default:
			return fmt.Errorf("trace: unknown op kind %d", op.Kind)
		}
		ops[i] = op
	}
	return nil
}
