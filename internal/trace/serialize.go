package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"

	"repro/internal/units"
)

// Trace serialization: a compact little-endian binary format so traces can
// be recorded once (expensive: native execution under instrumentation) and
// replayed many times or inspected offline — the workflow of cmd/nmtrace.
//
// Layout:
//
//	magic "NMTR" | version u32
//	costs: 4 x i64 | l1: cap i64, line i64, ways i64
//	threads u32
//	phase names (version >= 2): count i64, then per name len uvarint + bytes
//	per thread: ops u32, then packed ops
//	crc64(ECMA) of everything before it
//
// Ops are delta-packed per kind: a leading tag byte (kind | flags) followed
// by only the fields that kind uses.
//
// Version history: v1 had no phase-name table and no OpPhase ops; v2 added
// both. The writer emits v2; the reader accepts both.

const (
	traceMagic     = "NMTR"
	traceVersion   = 2
	traceVersionV1 = 1

	// maxPhaseNames bounds the phase table a hostile stream can request;
	// real traces mark a handful of phases.
	maxPhaseNames = 1 << 12

	// maxThreads bounds the thread count on both sides of the format: the
	// reader rejects hostile headers above it, and the writer refuses to
	// produce a stream the reader would reject.
	maxThreads = 1 << 20
)

const (
	tagKindMask = 0x0f
	tagWrite    = 0x10 // OpAccess direction
	tagHasGap   = 0x20 // a uvarint gap follows

	// tagReserved covers the two remaining flag bits. Bit 0x40 was once
	// described as a small-address marker that was "always set", but no
	// writer ever emitted it; both bits are now explicitly reserved and
	// must be zero. The reader rejects streams that set them, so a future
	// format revision can assign them without old readers silently
	// misdecoding the new streams.
	tagReserved = 0xc0
)

// WriteTo serializes the trace. It returns the bytes written. A trace
// with zero threads (or an implausibly large thread count) is rejected
// here, with nothing written: ReadTrace refuses such headers, so
// serializing one would only manufacture an unreadable file whose failure
// surfaces at the far end of the pipeline instead of at the writer.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	return writeV2(w, tr)
}

// writeV2 serializes any Source in the canonical v2 format — the encoding
// Digest is defined over. nmtrace convert uses it to turn an opened v3
// file back into v2 bytes without materializing a *Trace first.
func writeV2(w io.Writer, src Source) (int64, error) {
	n, sum, err := writePayload(w, src)
	if err != nil {
		return n, err
	}
	// Trailing checksum (not itself checksummed).
	if err := binary.Write(w, binary.LittleEndian, sum); err != nil {
		return n, err
	}
	return n + 8, nil
}

// writePayload writes everything before the trailing checksum and returns
// the bytes written plus the payload's CRC64 — shared between writeV2
// (which appends the CRC as the checksum) and Digest (which returns it).
// It iterates src through cursors, so a columnar trace serializes — and
// digests — without ever allocating op slices; for a *Trace the cursor
// walk degenerates to the stream slices and the bytes are unchanged from
// every earlier release.
func writePayload(w io.Writer, src Source) (int64, uint64, error) {
	threads := src.Threads()
	if threads == 0 {
		return 0, 0, fmt.Errorf("trace: refusing to serialize a trace with no threads")
	}
	if threads > maxThreads {
		return 0, 0, fmt.Errorf("trace: refusing to serialize %d threads (max %d)", threads, maxThreads)
	}
	cw := &countingWriter{w: w, crc: crc64.New(crcTable)}
	bw := bufio.NewWriterSize(cw, 1<<20)

	put := func(data any) error { return binary.Write(bw, binary.LittleEndian, data) }
	if _, err := bw.WriteString(traceMagic); err != nil {
		return cw.n, 0, err
	}
	costs, l1 := src.CostModel(), src.Geometry()
	hdr := []int64{
		traceVersion,
		costs.IssueCycles, costs.L1HitCycles, costs.CompareCycles, costs.AtomicCycles,
		int64(l1.Capacity), int64(l1.LineSize), int64(l1.Ways),
		int64(threads),
	}
	if err := put(hdr); err != nil {
		return cw.n, 0, err
	}

	names := src.PhaseTable()
	var buf [3 * binary.MaxVarintLen64]byte
	if err := put(int64(len(names))); err != nil {
		return cw.n, 0, err
	}
	for _, name := range names {
		n := binary.PutUvarint(buf[:], uint64(len(name)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return cw.n, 0, err
		}
		if _, err := bw.WriteString(name); err != nil {
			return cw.n, 0, err
		}
	}
	for t := 0; t < threads; t++ {
		if err := put(int64(src.ThreadOps(t))); err != nil {
			return cw.n, 0, err
		}
		var prevAddr uint64
		cur := src.CursorAt(t)
		for cur.Next() {
			op := cur.Cur
			tag := byte(op.Kind) & tagKindMask
			if op.Write {
				tag |= tagWrite
			}
			if op.Gap != 0 {
				tag |= tagHasGap
			}
			if err := bw.WriteByte(tag); err != nil {
				return cw.n, 0, err
			}
			n := 0
			if op.Gap != 0 {
				n += binary.PutUvarint(buf[n:], uint64(op.Gap))
			}
			switch op.Kind {
			case OpAccess, OpAtomic:
				n += binary.PutVarint(buf[n:], int64(op.Addr-prevAddr))
				prevAddr = op.Addr
			case OpDMA:
				n += binary.PutUvarint(buf[n:], op.Addr)
				n += binary.PutUvarint(buf[n:], op.Addr2)
				n += binary.PutUvarint(buf[n:], uint64(op.Size))
			case OpPhase:
				n += binary.PutUvarint(buf[n:], op.Addr)
			}
			if _, err := bw.Write(buf[:n]); err != nil {
				return cw.n, 0, err
			}
		}
		if err := cur.Err(); err != nil {
			return cw.n, 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, 0, err
	}
	return cw.n, cw.crc.Sum64(), nil
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Digest returns a stable 64-bit fingerprint of the trace: the CRC64-ECMA
// of its serialized payload — the same value WriteTo appends as the
// stream's trailing checksum, so the digest of an in-memory trace matches
// the checksum of its file on disk. Equal digests mean byte-identical
// streams, and therefore byte-identical replays on equal machine
// configurations — the property the harness's sweep checkpoint manifest
// keys cells by. (Hashing the whole stream would be wrong, not just
// redundant: the CRC of payload‖crc(payload) is a message-independent
// constant residue.)
//
// The digest is memoized: the first call serializes the stream, every
// later call returns the stored value in O(1). Traces are immutable once
// finished, so the memo never needs invalidating — but a caller that
// mutates a Trace after digesting it gets the stale fingerprint, which is
// why nothing in this module mutates a finished trace.
func (tr *Trace) Digest() (uint64, error) {
	tr.digestOnce.Do(func() {
		_, tr.digestVal, tr.digestErr = writePayload(io.Discard, tr)
	})
	return tr.digestVal, tr.digestErr
}

// DecodeError is the diagnosable failure every ReadTrace error path
// produces: which section of the stream broke (header, phase table,
// thread N ops, checksum, stream framing) and the byte offset at which
// decoding stopped — enough to tell a torn partial write (early offset,
// stream/checksum section) from in-body corruption without a hex dump.
type DecodeError struct {
	Section string // "stream", "header", "phase table", "thread N ops", "checksum"
	Offset  int64  // byte offset into the stream where decoding stopped
	Err     error  // underlying cause
}

// Error implements error.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: %s at byte %d: %v", e.Section, e.Offset, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *DecodeError) Unwrap() error { return e.Err }

// decodeErr wraps a cause into a DecodeError.
func decodeErr(section string, off int, err error) error {
	return &DecodeError{Section: section, Offset: int64(off), Err: err}
}

// decodeErrf is decodeErr over a freshly formatted cause.
func decodeErrf(section string, off int, format string, args ...any) error {
	return decodeErr(section, off, fmt.Errorf(format, args...))
}

type countingWriter struct {
	w   io.Writer
	crc interface {
		io.Writer
		Sum64() uint64
	}
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc.Write(p[:n])
	return n, err
}

// ReadTrace deserializes a trace written by WriteTo, verifying its
// checksum. The entire stream is buffered in memory first (traces are tens
// of MB at most), which keeps the checksum handling trivial. Every decode
// failure is a *DecodeError naming the broken section and the byte offset
// at which decoding stopped, so a torn partial write (a crashed recorder,
// an interrupted copy) is diagnosable from the error alone.
func ReadTrace(r io.Reader) (*Trace, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, decodeErr("stream", len(raw), fmt.Errorf("reading: %w", err))
	}
	if len(raw) < 8 {
		return nil, decodeErrf("stream", len(raw), "truncated stream (%d bytes, need at least the 8-byte checksum)", len(raw))
	}
	payload, tail := raw[:len(raw)-8], raw[len(raw)-8:]
	want := binary.LittleEndian.Uint64(tail)
	if got := crc64.Checksum(payload, crcTable); got != want {
		return nil, decodeErrf("checksum", len(payload), "mismatch (%#x != %#x): torn or corrupted stream", got, want)
	}

	br := bytes.NewReader(payload)
	// off is the current decode position within the stream, for error
	// reporting: everything before br's remaining bytes has been consumed.
	off := func() int { return len(payload) - br.Len() }
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, decodeErr("header", off(), fmt.Errorf("reading magic: %w", err))
	}
	if string(magic) != traceMagic {
		return nil, decodeErrf("header", 0, "bad magic %q", magic)
	}
	hdr := make([]int64, 9)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, decodeErr("header", off(), fmt.Errorf("reading fields: %w", err))
	}
	version := hdr[0]
	if version != traceVersion && version != traceVersionV1 {
		return nil, decodeErrf("header", 4, "unsupported version %d", version)
	}
	// Every stream costs at least its 8-byte length field, so a thread
	// count beyond the remaining payload can only come from corruption;
	// checking before allocating keeps a hostile header from forcing a
	// huge allocation.
	threads := hdr[8]
	if threads <= 0 || threads > maxThreads || threads > int64(br.Len())/8 {
		return nil, decodeErrf("header", off()-8, "implausible thread count %d", threads)
	}
	tr := &Trace{
		Streams: make([][]Op, threads),
		Costs: Costs{
			IssueCycles: hdr[1], L1HitCycles: hdr[2],
			CompareCycles: hdr[3], AtomicCycles: hdr[4],
		},
		L1: L1Geometry{
			Capacity: units.Bytes(hdr[5]),
			LineSize: units.Bytes(hdr[6]),
			Ways:     int(hdr[7]),
		},
	}

	if version >= 2 {
		var nNames int64
		if err := binary.Read(br, binary.LittleEndian, &nNames); err != nil {
			return nil, decodeErr("phase table", off(), fmt.Errorf("phase-name count: %w", err))
		}
		if nNames < 0 || nNames > maxPhaseNames {
			return nil, decodeErrf("phase table", off()-8, "implausible phase-name count %d", nNames)
		}
		for i := int64(0); i < nNames; i++ {
			at := off()
			l, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, decodeErr("phase table", at, fmt.Errorf("phase name %d length: %w", i, err))
			}
			if l > uint64(br.Len()) {
				return nil, decodeErrf("phase table", at, "phase name %d length %d exceeds payload", i, l)
			}
			name := make([]byte, l)
			if _, err := io.ReadFull(br, name); err != nil {
				return nil, decodeErr("phase table", at, fmt.Errorf("phase name %d: %w", i, err))
			}
			tr.PhaseNames = append(tr.PhaseNames, string(name))
		}
	}

	for t := int64(0); t < threads; t++ {
		at := off()
		var nOps int64
		if err := binary.Read(br, binary.LittleEndian, &nOps); err != nil {
			return nil, decodeErr(threadSection(t), at, fmt.Errorf("op count: %w", err))
		}
		// Each op occupies at least its tag byte, so the remaining
		// payload bounds the count; this rejects corrupt lengths before
		// the allocation they would inflate.
		if nOps < 0 || nOps > int64(br.Len()) {
			return nil, decodeErrf(threadSection(t), at, "implausible op count %d", nOps)
		}
		ops := make([]Op, nOps)
		if err := decodeOps(br, ops, t, len(payload)); err != nil {
			return nil, err
		}
		tr.Streams[t] = ops
	}
	if br.Len() != 0 {
		return nil, decodeErrf("stream", off(), "%d trailing payload bytes", br.Len())
	}
	return tr, nil
}

// threadSection names thread t's op section for DecodeError reporting.
func threadSection(t int64) string { return fmt.Sprintf("thread %d ops", t) }

// decodeOps decodes thread t's op stream into ops, which the caller sized
// from the validated per-thread count; plen is the payload length, used to
// recover the byte offset of a broken op from br's remaining length. This
// is the replay pipeline's decode hot loop — tens of millions of
// iterations for the Table I traces — so it fills the caller-allocated
// slice in place and allocates only on the error exits.
//
//nmlint:hotpath
func decodeOps(br *bytes.Reader, ops []Op, t int64, plen int) error {
	var prevAddr uint64
	for i := range ops {
		at := plen - br.Len()
		tag, err := br.ReadByte()
		if err != nil {
			return decodeErr(threadSection(t), at, fmt.Errorf("op %d tag: %w", i, err))
		}
		if tag&tagReserved != 0 {
			return decodeErrf(threadSection(t), at, "op %d: reserved tag bits %#x set", i, tag&tagReserved)
		}
		op := Op{Kind: Kind(tag & tagKindMask), Write: tag&tagWrite != 0}
		if tag&tagHasGap != 0 {
			g, err := binary.ReadUvarint(br)
			if err != nil {
				return decodeErr(threadSection(t), at, fmt.Errorf("op %d gap: %w", i, err))
			}
			if g > uint64(^uint32(0)) {
				return decodeErrf(threadSection(t), at, "op %d gap %d overflows", i, g)
			}
			op.Gap = uint32(g)
		}
		switch op.Kind {
		case OpAccess, OpAtomic:
			d, err := binary.ReadVarint(br)
			if err != nil {
				return decodeErr(threadSection(t), at, fmt.Errorf("op %d addr delta: %w", i, err))
			}
			op.Addr = prevAddr + uint64(d)
			prevAddr = op.Addr
		case OpDMA:
			if op.Addr, err = binary.ReadUvarint(br); err != nil {
				return decodeErr(threadSection(t), at, fmt.Errorf("op %d dma src: %w", i, err))
			}
			if op.Addr2, err = binary.ReadUvarint(br); err != nil {
				return decodeErr(threadSection(t), at, fmt.Errorf("op %d dma dst: %w", i, err))
			}
			sz, err := binary.ReadUvarint(br)
			if err != nil {
				return decodeErr(threadSection(t), at, fmt.Errorf("op %d dma size: %w", i, err))
			}
			// Mirror the gap overflow check: silently truncating to
			// uint32 would decode a corrupt stream into a different
			// (smaller) workload instead of rejecting it.
			if sz > uint64(^uint32(0)) {
				return decodeErrf(threadSection(t), at, "op %d dma size %d overflows", i, sz)
			}
			op.Size = uint32(sz)
		case OpPhase:
			if op.Addr, err = binary.ReadUvarint(br); err != nil {
				return decodeErr(threadSection(t), at, fmt.Errorf("op %d phase id: %w", i, err))
			}
		case OpBarrier, OpDMAWait, OpGap, OpEnd:
			// tag only
		default:
			return decodeErrf(threadSection(t), at, "op %d: unknown op kind %d", i, op.Kind)
		}
		ops[i] = op
	}
	return nil
}
