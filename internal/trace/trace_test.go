package trace

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/units"
)

func tinyL1() L1Geometry {
	return L1Geometry{Capacity: 256, LineSize: 64, Ways: 2} // 4 lines
}

func TestNilProbeIsNoop(t *testing.T) {
	var tp *TP
	// None of these may panic or record anything.
	tp.Load(addr.FarBase, 8)
	tp.Store(addr.FarBase, 8)
	tp.Compute(10)
	tp.Compare(3)
	tp.Atomic(addr.FarBase)
	tp.Barrier()
	tp.DMA(addr.FarBase, addr.NearBase, 64)
	tp.DMAWait()
	if tp.Tid() != 0 {
		t.Error("nil Tid should be 0")
	}
}

func TestL1FilterHitsProduceNoOps(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	tp.Load(addr.FarBase, 8)   // miss: one fill op
	tp.Load(addr.FarBase+8, 8) // same line: hit, no op
	tp.Load(addr.FarBase+16, 8)
	tr := r.Finish()
	var fills int
	for _, op := range tr.Streams[0] {
		if op.Kind == OpAccess && !op.Write {
			fills++
		}
	}
	if fills != 1 {
		t.Errorf("fills = %d, want 1 (L1 should absorb same-line accesses)", fills)
	}
}

func TestGapAccounting(t *testing.T) {
	c := DefaultCosts()
	r := NewRecorder(1, tinyL1(), c)
	tp := r.Thread(0)
	tp.Compute(100)
	tp.Load(addr.FarBase, 8) // miss
	tr := r.Finish()
	op := tr.Streams[0][0]
	if op.Kind != OpAccess || op.Write {
		t.Fatalf("first op = %+v", op)
	}
	if want := uint32(100 + c.IssueCycles); op.Gap != want {
		t.Errorf("gap = %d, want %d", op.Gap, want)
	}
}

func TestHitLatencyFoldsIntoGap(t *testing.T) {
	c := DefaultCosts()
	r := NewRecorder(1, tinyL1(), c)
	tp := r.Thread(0)
	tp.Load(addr.FarBase, 8)   // miss (gap flushed into it)
	tp.Load(addr.FarBase+8, 8) // hit: issue+hit cycles pend
	tp.Load(addr.FarBase+64, 8)
	tr := r.Finish()
	second := tr.Streams[0][1]
	if want := uint32(c.IssueCycles + c.L1HitCycles + c.IssueCycles); second.Gap != want {
		t.Errorf("gap = %d, want %d", second.Gap, want)
	}
}

func TestDirtyEvictionEmitsWriteback(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	tp.Store(addr.FarBase, 8) // dirty line in set 0
	// Evict it: tiny L1 has 2 sets of 2 ways; lines 128B apart share a set.
	tp.Load(addr.FarBase+128, 8)
	tp.Load(addr.FarBase+256, 8) // evicts the dirty line
	tr := r.Finish()
	var wbs int
	for _, op := range tr.Streams[0] {
		if op.Kind == OpAccess && op.Write && op.Addr == uint64(addr.FarBase) {
			wbs++
		}
	}
	if wbs != 1 {
		t.Errorf("writebacks of dirty line = %d, want 1", wbs)
	}
}

func TestFinishFlushesDirtyLines(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	tp.Store(addr.NearBase, 8)
	tr := r.Finish()
	c := tr.Count()
	if c.NearWrites != 1 {
		t.Errorf("NearWrites = %d, want 1 (final flush)", c.NearWrites)
	}
	last := tr.Streams[0][len(tr.Streams[0])-1]
	if last.Kind != OpEnd {
		t.Errorf("stream must end with OpEnd, got %+v", last)
	}
}

func TestFinishTwicePanics(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	r.Finish()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Finish()
}

func TestMultiLineAccess(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	tp.Load(addr.FarBase+60, 16) // straddles two lines
	tr := r.Finish()
	var fills int
	for _, op := range tr.Streams[0] {
		if op.Kind == OpAccess && !op.Write {
			fills++
		}
	}
	if fills != 2 {
		t.Errorf("fills = %d, want 2 for straddling access", fills)
	}
}

func TestCountByLevel(t *testing.T) {
	r := NewRecorder(2, tinyL1(), DefaultCosts())
	r.Thread(0).Load(addr.FarBase, 8)
	r.Thread(0).Store(addr.NearBase, 8)
	r.Thread(1).Load(addr.NearBase+4096, 8)
	r.Thread(1).Atomic(addr.FarBase + 4096)
	tr := r.Finish()
	c := tr.Count()
	// Thread 0's store misses write-allocate (one near fill) and the dirty
	// line flushes at Finish (one near writeback); thread 1 adds a near
	// fill. Hence 2 near reads + 1 near write.
	if c.FarReads != 1 || c.NearReads != 2 || c.NearWrites != 1 || c.Atomics != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.Far() != 1 || c.Near() != 3 {
		t.Errorf("totals: far=%d near=%d", c.Far(), c.Near())
	}
}

func TestValidateCatchesBarrierMismatch(t *testing.T) {
	r := NewRecorder(2, tinyL1(), DefaultCosts())
	r.Thread(0).Barrier()
	tr := r.Finish()
	if err := tr.Validate(); err == nil {
		t.Error("expected barrier-mismatch error")
	}
}

func TestValidateAcceptsBalancedTrace(t *testing.T) {
	r := NewRecorder(3, tinyL1(), DefaultCosts())
	for i := 0; i < 3; i++ {
		tp := r.Thread(i)
		tp.Load(addr.FarBase+addr.Addr(i*4096), 8)
		tp.Barrier()
		tp.Store(addr.NearBase+addr.Addr(i*4096), 8)
		tp.Barrier()
	}
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if tr.Ops() == 0 {
		t.Error("Ops = 0")
	}
}

func TestAtomicEmitsEveryTime(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	for i := 0; i < 5; i++ {
		tp.Atomic(addr.FarBase)
	}
	tr := r.Finish()
	if c := tr.Count(); c.Atomics != 5 {
		t.Errorf("atomics = %d, want 5 (atomics bypass the L1 filter)", c.Atomics)
	}
}

func TestDMARecorded(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	tp.DMA(addr.FarBase, addr.NearBase, 4096)
	tp.DMAWait()
	tr := r.Finish()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.Streams[0][0].Kind != OpDMA || tr.Streams[0][1].Kind != OpDMAWait {
		t.Errorf("stream = %+v", tr.Streams[0][:2])
	}
}

func TestViewGetSet(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	v := U64{Base: addr.FarBase, D: make([]uint64, 16)}
	v.Set(tp, 3, 42)
	if got := v.Get(tp, 3); got != 42 {
		t.Errorf("Get = %d", got)
	}
	sub := v.Slice(2, 6)
	if sub.Len() != 4 {
		t.Errorf("sub len = %d", sub.Len())
	}
	if got := sub.Get(tp, 1); got != 42 {
		t.Errorf("sub.Get(1) = %d, want 42 (aliasing)", got)
	}
	if sub.Addr(1) != v.Addr(3) {
		t.Error("sub-view addresses misaligned")
	}
}

func TestViewCopy(t *testing.T) {
	src := U64{Base: addr.FarBase, D: []uint64{1, 2, 3}}
	dst := U64{Base: addr.NearBase, D: make([]uint64, 3)}
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	Copy(r.Thread(0), dst, src)
	if dst.D[2] != 3 {
		t.Error("Copy did not copy data")
	}
	tr := r.Finish()
	c := tr.Count()
	if c.FarReads == 0 || c.NearWrites == 0 {
		t.Errorf("Copy traffic not recorded: %+v", c)
	}
}

func TestViewCopyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Copy(nil, U64{D: make([]uint64, 2)}, U64{D: make([]uint64, 3)})
}

func TestI64View(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	v := I64{Base: addr.NearBase, D: make([]int64, 8)}
	v.Set(tp, 0, -5)
	if v.Get(tp, 0) != -5 {
		t.Error("I64 get/set broken")
	}
	if got := v.AtomicAdd(tp, 0, 7); got != 2 {
		t.Errorf("AtomicAdd = %d, want 2", got)
	}
	s := v.Slice(0, 2)
	if s.Len() != 2 || s.Get(tp, 0) != 2 {
		t.Error("I64 slice broken")
	}
}

func TestGapOverflowSplits(t *testing.T) {
	r := NewRecorder(1, tinyL1(), DefaultCosts())
	tp := r.Thread(0)
	tp.Compute(5_000_000_000) // exceeds uint32
	tp.Load(addr.FarBase, 8)
	tr := r.Finish()
	var total uint64
	for _, op := range tr.Streams[0] {
		total += uint64(op.Gap)
	}
	if want := uint64(5_000_000_000 + 1); total != want {
		t.Errorf("total gap = %d, want %d", total, want)
	}
	if tr.Streams[0][0].Kind != OpGap {
		t.Errorf("expected leading OpGap, got %+v", tr.Streams[0][0])
	}
}

func TestDefaultL1MatchesPaper(t *testing.T) {
	g := DefaultL1()
	if g.Capacity != 16*units.KiB || g.LineSize != 64 || g.Ways != 2 {
		t.Errorf("DefaultL1 = %+v", g)
	}
}

// TestViewsNilProbe pins the uniform nil-probe contract documented on the
// view API: every U64/I64 operation and both package-level copies accept a
// nil *TP, perform the real data movement, and record nothing.
func TestViewsNilProbe(t *testing.T) {
	u := U64{Base: addr.FarBase, D: make([]uint64, 8)}
	u.Set(nil, 2, 99)
	if u.Get(nil, 2) != 99 {
		t.Error("U64 Set/Get with nil probe lost data")
	}
	if u.Slice(1, 4).Get(nil, 1) != 99 {
		t.Error("U64 Slice+Get with nil probe lost aliasing")
	}
	dst := U64{Base: addr.NearBase, D: make([]uint64, 8)}
	Copy(nil, dst, u)
	if dst.D[2] != 99 {
		t.Error("Copy with nil probe did not move data")
	}

	v := I64{Base: addr.NearBase, D: make([]int64, 8)}
	v.Set(nil, 0, -3)
	if v.Get(nil, 0) != -3 {
		t.Error("I64 Set/Get with nil probe lost data")
	}
	if got := v.AtomicAdd(nil, 0, 5); got != 2 {
		t.Errorf("I64 AtomicAdd with nil probe = %d, want 2", got)
	}
	idst := I64{Base: addr.FarBase, D: make([]int64, 8)}
	CopyI64(nil, idst, v)
	if idst.D[0] != 2 {
		t.Error("CopyI64 with nil probe did not move data")
	}
}
