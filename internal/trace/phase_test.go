package trace

import (
	"bytes"
	"testing"

	"repro/internal/addr"
)

// phaseTrace records a two-thread stream where thread 0 marks phases —
// the single-thread marking convention the algorithms follow.
func phaseTrace(t *testing.T) *Trace {
	t.Helper()
	rec := NewRecorder(2, tinyL1(), DefaultCosts())
	for tid := 0; tid < 2; tid++ {
		tp := rec.Thread(tid)
		if tid == 0 {
			tp.Phase("sort")
		}
		tp.Compute(50)
		tp.Load(addr.FarBase+addr.Addr(tid*4096), 8)
		tp.Barrier()
		if tid == 0 {
			tp.Phase("merge")
		}
		tp.Store(addr.FarBase+addr.Addr(tid*4096), 8)
		if tid == 0 {
			tp.Phase("sort") // re-entering a phase reuses its interned id
		}
	}
	return rec.Finish()
}

func TestPhaseInterning(t *testing.T) {
	tr := phaseTrace(t)
	if len(tr.PhaseNames) != 2 || tr.PhaseNames[0] != "sort" || tr.PhaseNames[1] != "merge" {
		t.Fatalf("PhaseNames = %v", tr.PhaseNames)
	}
	var ids []uint64
	for _, op := range tr.Streams[0] {
		if op.Kind == OpPhase {
			ids = append(ids, op.Addr)
		}
	}
	want := []uint64{0, 1, 0}
	if len(ids) != len(want) {
		t.Fatalf("phase ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("phase ids = %v, want %v", ids, want)
		}
	}
	// Thread 1 marked nothing.
	for _, op := range tr.Streams[1] {
		if op.Kind == OpPhase {
			t.Fatal("thread 1 has a phase marker")
		}
	}
}

func TestPhaseGapCarried(t *testing.T) {
	// A marker attaches the pending compute gap exactly as the next op
	// would, so total gap cycles match a marker-free recording of the same
	// work (timing neutrality).
	record := func(mark bool) *Trace {
		rec := NewRecorder(1, tinyL1(), DefaultCosts())
		tp := rec.Thread(0)
		tp.Compute(100)
		if mark {
			tp.Phase("p")
		}
		tp.Load(addr.FarBase, 8)
		return rec.Finish()
	}
	gaps := func(tr *Trace) (total uint64, phase uint64) {
		for _, op := range tr.Streams[0] {
			total += uint64(op.Gap)
			if op.Kind == OpPhase {
				phase = uint64(op.Gap)
			}
		}
		return
	}
	markedTotal, phaseGap := gaps(record(true))
	plainTotal, _ := gaps(record(false))
	if markedTotal != plainTotal {
		t.Errorf("marked trace carries %d gap cycles, marker-free %d", markedTotal, plainTotal)
	}
	if phaseGap != 100 {
		t.Errorf("phase marker absorbed gap %d, want 100", phaseGap)
	}
}

func TestPhaseRoundTrip(t *testing.T) {
	tr := phaseTrace(t)
	got := roundTrip(t, tr)
	if len(got.PhaseNames) != len(tr.PhaseNames) {
		t.Fatalf("PhaseNames: %v vs %v", got.PhaseNames, tr.PhaseNames)
	}
	for i := range tr.PhaseNames {
		if got.PhaseNames[i] != tr.PhaseNames[i] {
			t.Fatalf("PhaseNames: %v vs %v", got.PhaseNames, tr.PhaseNames)
		}
	}
	for tid := range tr.Streams {
		if len(got.Streams[tid]) != len(tr.Streams[tid]) {
			t.Fatalf("thread %d: %d ops vs %d", tid, len(got.Streams[tid]), len(tr.Streams[tid]))
		}
		for i := range tr.Streams[tid] {
			if got.Streams[tid][i] != tr.Streams[tid][i] {
				t.Fatalf("thread %d op %d: %+v vs %+v", tid, i, got.Streams[tid][i], tr.Streams[tid][i])
			}
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadPhaseID(t *testing.T) {
	tr := phaseTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Point a marker past the name table.
	for i, op := range tr.Streams[0] {
		if op.Kind == OpPhase {
			tr.Streams[0][i].Addr = uint64(len(tr.PhaseNames))
			break
		}
	}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range phase id accepted")
	}
}

func TestPhaseNilTP(t *testing.T) {
	// A nil TP ignores markers like every other probe call.
	var tp *TP
	tp.Phase("p") // must not panic
}

func TestReadTraceRejectsOversizedPhaseTable(t *testing.T) {
	tr := phaseTrace(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The phase-name count lives right after the magic and 9-int64 header.
	off := len(traceMagic) + 9*8
	for i := 0; i < 8; i++ {
		raw[off+i] = 0xff // count = -1 (and any huge value) must be rejected
	}
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt phase-name count accepted")
	}
}
