package trace

import (
	"bytes"
	"hash/crc64"
	"testing"
)

// fuzzSeedTraces builds a few small valid traces covering every op kind,
// so the fuzzer starts from inputs that reach deep into the decoder.
func fuzzSeedTraces(t testing.TB) [][]byte {
	t.Helper()
	traces := []*Trace{
		{
			Streams: [][]Op{{{Kind: OpEnd}}},
			Costs:   DefaultCosts(),
			L1:      L1Geometry{Capacity: 2048, LineSize: 64, Ways: 2},
		},
		{
			Streams: [][]Op{
				{
					{Kind: OpGap, Gap: 12},
					{Kind: OpAccess, Addr: 0x1000},
					{Kind: OpAccess, Addr: 0x1040, Write: true, Gap: 3},
					{Kind: OpAtomic, Addr: 0x2000},
					{Kind: OpBarrier},
					{Kind: OpEnd},
				},
				{
					{Kind: OpDMA, Addr: 0x1000, Addr2: 0x8000, Size: 4096},
					{Kind: OpDMAWait},
					{Kind: OpBarrier},
					{Kind: OpEnd},
				},
			},
			Costs: DefaultCosts(),
			L1:    L1Geometry{Capacity: 2048, LineSize: 64, Ways: 2},
		},
	}
	var out [][]byte
	for _, tr := range traces {
		var b bytes.Buffer
		if _, err := tr.WriteTo(&b); err != nil {
			t.Fatalf("seed trace: %v", err)
		}
		out = append(out, b.Bytes())
	}
	return out
}

// FuzzReadTrace asserts the decoder's contract on arbitrary input: it
// returns an error or a trace, never panics, and never claims success on
// a stream it cannot round-trip.
func FuzzReadTrace(f *testing.F) {
	for _, seed := range fuzzSeedTraces(f) {
		f.Add(seed)
		// Also seed a checksum-valid but body-corrupted variant so the
		// fuzzer crosses the CRC gate from the start.
		mut := bytes.Clone(seed)
		if len(mut) > 20 {
			mut[16] ^= 0xff
			refreshChecksum(mut)
			f.Add(mut)
		}
		// Truncated prefixes model torn partial writes (a crashed
		// recorder, an interrupted copy): cuts inside the checksum tail,
		// mid-ops, mid-header, and the empty stream.
		for _, cut := range []int{len(seed) - 3, len(seed) / 2, 9, 0} {
			if cut >= 0 && cut < len(seed) {
				f.Add(bytes.Clone(seed[:cut]))
			}
		}
		// A torn prefix whose checksum was refreshed crosses the CRC gate
		// and fails deeper, in a body section cut mid-record.
		if len(seed) > 24 {
			torn := bytes.Clone(seed[:len(seed)-9])
			torn = append(torn, make([]byte, 8)...)
			refreshChecksum(torn)
			f.Add(torn)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded trace must serialize and decode again
		// to the same stream shape.
		var b bytes.Buffer
		if _, err := tr.WriteTo(&b); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := ReadTrace(&b)
		if err != nil {
			t.Fatalf("round-trip of accepted trace failed: %v", err)
		}
		if len(tr2.Streams) != len(tr.Streams) {
			t.Fatalf("round-trip changed thread count: %d != %d",
				len(tr2.Streams), len(tr.Streams))
		}
		for i := range tr.Streams {
			if len(tr2.Streams[i]) != len(tr.Streams[i]) {
				t.Fatalf("round-trip changed stream %d length", i)
			}
		}
	})
}

// refreshChecksum rewrites the trailing CRC so a mutated body still passes
// the checksum gate.
func refreshChecksum(raw []byte) {
	payload := raw[:len(raw)-8]
	sum := crc64.Checksum(payload, crcTable)
	for i := 0; i < 8; i++ {
		raw[len(raw)-8+i] = byte(sum >> (8 * i))
	}
}

// TestReadTraceRejectsHugeCounts pins the allocation bounds: headers
// announcing more threads or ops than the payload could possibly hold are
// rejected before any large allocation.
func TestReadTraceRejectsHugeCounts(t *testing.T) {
	for _, seed := range fuzzSeedTraces(t) {
		// hdr[8] (thread count) lives at bytes 4+8*8 .. 4+9*8.
		mut := bytes.Clone(seed)
		putLE64(mut[4+8*8:], 1<<19)
		refreshChecksum(mut)
		if _, err := ReadTrace(bytes.NewReader(mut)); err == nil {
			t.Fatal("huge thread count accepted")
		}
		// The first stream length follows the header.
		mut = bytes.Clone(seed)
		putLE64(mut[4+9*8:], 1<<33)
		refreshChecksum(mut)
		if _, err := ReadTrace(bytes.NewReader(mut)); err == nil {
			t.Fatal("huge op count accepted")
		}
	}
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
