// Package trace is the instrumentation seam between the algorithms and the
// machine simulator — the role the Ariel/Pin pipeline plays in the paper's
// SST setup (Figure 5). Algorithms execute natively on Go slices while a
// per-thread probe observes every logical memory access. The probe filters
// the raw stream through a private L1 model (so L1 hits never become
// simulation events, they fold into compute gaps) and records the surviving
// L2-level line operations, compute gaps, barriers, and DMA descriptors.
//
// A recorded trace is replayed by internal/machine under any memory
// configuration. Recording once and replaying under 2X/4X/8X near-memory
// bandwidth mirrors the paper's methodology: the instruction stream is
// identical across configurations, only the memory system differs.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/addr"
	"repro/internal/cachesim"
	"repro/internal/units"
)

// Kind discriminates trace operations.
type Kind uint8

// Operation kinds.
const (
	OpAccess  Kind = iota // line fill (Write=false) or writeback (Write=true)
	OpAtomic              // serialized read-modify-write of one line
	OpBarrier             // all threads rendezvous
	OpDMA                 // enqueue an asynchronous bulk copy (paper §VII future work)
	OpDMAWait             // block until all DMA copies issued by this thread finish
	OpGap                 // pure compute time (only for gaps overflowing a uint32)
	OpEnd                 // end of thread stream
	OpPhase               // algorithm phase marker (Addr = index into Trace.PhaseNames)
)

// Op is one recorded event in a thread's stream. Gap carries the core
// compute cycles that elapsed since the previous recorded op, so replay can
// reconstruct the full timeline without storing per-instruction detail.
type Op struct {
	Addr  uint64 // line-aligned address (OpAccess/OpAtomic); DMA source
	Addr2 uint64 // DMA destination
	Size  uint32 // DMA bytes
	Gap   uint32 // core cycles of compute preceding this op
	Kind  Kind
	Write bool // OpAccess direction: true = toward memory (writeback)
}

// Costs are the core's cycle charges — the calibration constants that set
// the paper's processing rate x. The defaults put a 256-core 1.7GHz node
// near the paper's x ≈ 10¹⁰ comparisons/s, which is what makes sorting
// memory-bound at 256 cores and compute-bound at 128 (Section V-A).
type Costs struct {
	IssueCycles   int64 // every load/store issue
	L1HitCycles   int64 // additional latency of an L1 hit (2ns ≈ 3 cycles)
	CompareCycles int64 // one key comparison incl. branch logic
	AtomicCycles  int64 // local cost of an atomic RMW (bus time modeled at replay)
}

// DefaultCosts returns the calibrated defaults (see EXPERIMENTS.md).
func DefaultCosts() Costs {
	return Costs{IssueCycles: 1, L1HitCycles: 3, CompareCycles: 30, AtomicCycles: 20}
}

// L1Geometry describes the private L1 used as the record-time filter.
type L1Geometry struct {
	Capacity units.Bytes
	LineSize units.Bytes
	Ways     int
}

// DefaultL1 matches the paper's per-core 16KB 2-way data cache.
func DefaultL1() L1Geometry {
	return L1Geometry{Capacity: 16 * units.KiB, LineSize: 64, Ways: 2}
}

// TP is a per-thread probe. All methods are safe on a nil receiver and do
// nothing, so algorithms run uninstrumented ("pure mode") when handed a nil
// *TP — the mode used for correctness tests and native benchmarks.
type TP struct {
	tid   int
	l1    *cachesim.Cache
	line  uint64
	pend  int64 // compute cycles since last recorded op
	costs Costs
	ops   []Op
	rec   *Recorder // owning recorder, for phase-name interning
}

// Tid returns the probe's thread id.
func (t *TP) Tid() int {
	if t == nil {
		return 0
	}
	return t.tid
}

// access runs one line-granular access through the L1 filter.
func (t *TP) access(a uint64, write bool) {
	r := t.l1.Access(a, write)
	if r.Hit {
		t.pend += t.costs.IssueCycles + t.costs.L1HitCycles
		return
	}
	t.pend += t.costs.IssueCycles
	if r.HasWB {
		t.emit(Op{Addr: r.Writeback, Kind: OpAccess, Write: true})
	}
	t.emit(Op{Addr: a &^ (t.line - 1), Kind: OpAccess, Write: false})
}

func (t *TP) emit(op Op) {
	if t.pend > 0 {
		const max = int64(^uint32(0))
		for t.pend > max {
			t.ops = append(t.ops, Op{Kind: OpGap, Gap: uint32(max)})
			t.pend -= max
		}
		op.Gap = uint32(t.pend)
		t.pend = 0
	}
	t.ops = append(t.ops, op)
}

// Load records a read of size bytes at address a.
func (t *TP) Load(a addr.Addr, size int) {
	if t == nil {
		return
	}
	first := uint64(a) &^ (t.line - 1)
	last := (uint64(a) + uint64(size) - 1) &^ (t.line - 1)
	for l := first; l <= last; l += t.line {
		t.access(l, false)
	}
}

// Store records a write of size bytes at address a (write-allocate).
func (t *TP) Store(a addr.Addr, size int) {
	if t == nil {
		return
	}
	first := uint64(a) &^ (t.line - 1)
	last := (uint64(a) + uint64(size) - 1) &^ (t.line - 1)
	for l := first; l <= last; l += t.line {
		t.access(l, true)
	}
}

// Compute charges raw compute cycles.
func (t *TP) Compute(cycles int64) {
	if t == nil {
		return
	}
	t.pend += cycles
}

// Compare charges the cost of n key comparisons.
func (t *TP) Compare(n int64) {
	if t == nil {
		return
	}
	t.pend += n * t.costs.CompareCycles
}

// Atomic records an atomic read-modify-write of the line at a. The line is
// treated as uncached (it is shared across cores), so every atomic reaches
// the memory system.
func (t *TP) Atomic(a addr.Addr) {
	if t == nil {
		return
	}
	t.pend += t.costs.AtomicCycles
	t.emit(Op{Addr: uint64(a) &^ (t.line - 1), Kind: OpAtomic})
}

// Barrier records a rendezvous point. The algorithm must pair every
// recorded barrier with its own real synchronization (see internal/par);
// replay re-synchronizes the simulated cores at the same points.
func (t *TP) Barrier() {
	if t == nil {
		return
	}
	t.emit(Op{Kind: OpBarrier})
}

// Phase records an algorithm phase boundary: everything the thread does
// from here until the next marker (or the stream's end) belongs to the
// named phase. Replay snapshots device counters at each marker, turning the
// deltas into per-phase bandwidth and utilization breakdowns.
//
// Phase markers carry no memory traffic and attach the pending compute gap
// exactly as the next op would, so a trace with markers replays to the
// identical timeline as the same trace without them. By convention exactly
// one thread (thread 0) marks phases: the names are interned in the shared
// Recorder, which is not synchronized.
func (t *TP) Phase(name string) {
	if t == nil {
		return
	}
	t.emit(Op{Addr: uint64(t.rec.phaseID(name)), Kind: OpPhase})
}

// DMA records an asynchronous bulk copy of n bytes from src to dst, the
// paper's future-work DMA engine (§VII). Replay charges the transfer to
// the memory channels in the background while the core continues.
func (t *TP) DMA(src, dst addr.Addr, n int) {
	if t == nil {
		return
	}
	t.emit(Op{Addr: uint64(src), Addr2: uint64(dst), Size: uint32(n), Kind: OpDMA})
}

// DMAWait records a block-until-DMA-drained point for this thread.
func (t *TP) DMAWait() {
	if t == nil {
		return
	}
	t.emit(Op{Kind: OpDMAWait})
}

// flushEnd drains the L1's dirty lines as writebacks and terminates the
// stream. Called by Recorder.Finish.
func (t *TP) flushEnd() {
	for _, l := range t.l1.FlushDirty() {
		t.emit(Op{Addr: l, Kind: OpAccess, Write: true})
	}
	t.emit(Op{Kind: OpEnd})
}

// Recorder owns the per-thread probes for one recorded run.
type Recorder struct {
	costs    Costs
	l1       L1Geometry
	threads  []*TP
	finished bool

	phaseNames []string       // interned phase names, in first-use order
	phaseIDs   map[string]int // lookup only (never ranged): name -> index
}

// RecorderConfig parameterizes NewRecorderCfg. Threads, L1, and Costs are
// required; SizeHint is optional.
type RecorderConfig struct {
	Threads int
	L1      L1Geometry
	Costs   Costs

	// SizeHint, when positive, is the expected number of ops per thread
	// stream: each probe's op buffer is pre-sized to it, so recording a
	// workload of known scale appends without growth reallocations. Purely
	// a capacity hint — streams grow past it on demand and shorter streams
	// waste only the slack.
	SizeHint int
}

// NewRecorder creates probes for p threads.
func NewRecorder(p int, l1 L1Geometry, costs Costs) *Recorder {
	return NewRecorderCfg(RecorderConfig{Threads: p, L1: l1, Costs: costs})
}

// NewRecorderCfg creates probes for cfg.Threads threads, pre-sizing each
// op buffer to cfg.SizeHint.
func NewRecorderCfg(cfg RecorderConfig) *Recorder {
	if cfg.Threads <= 0 {
		panic("trace: need at least one thread")
	}
	if cfg.SizeHint < 0 {
		panic("trace: negative recorder size hint")
	}
	r := &Recorder{costs: cfg.Costs, l1: cfg.L1, threads: make([]*TP, cfg.Threads), phaseIDs: map[string]int{}}
	for i := range r.threads {
		r.threads[i] = &TP{
			tid:   i,
			l1:    cachesim.New(cfg.L1.Capacity, cfg.L1.LineSize, cfg.L1.Ways),
			line:  uint64(cfg.L1.LineSize),
			costs: cfg.Costs,
			ops:   make([]Op, 0, cfg.SizeHint),
			rec:   r,
		}
	}
	return r
}

// phaseID interns a phase name, returning its stable index. Called only
// from the single phase-marking thread (see TP.Phase).
func (r *Recorder) phaseID(name string) int {
	if id, ok := r.phaseIDs[name]; ok {
		return id
	}
	id := len(r.phaseNames)
	r.phaseNames = append(r.phaseNames, name)
	r.phaseIDs[name] = id
	return id
}

// Thread returns thread i's probe. Probes are single-goroutine objects:
// exactly one goroutine may use a given probe.
func (r *Recorder) Thread(i int) *TP {
	if r == nil {
		return nil
	}
	return r.threads[i]
}

// Threads returns the number of recorded threads.
func (r *Recorder) Threads() int { return len(r.threads) }

// Finish seals the recording: dirty L1 lines become trailing writebacks and
// every stream gets an end marker. It returns the completed trace. Calling
// Finish twice panics.
func (r *Recorder) Finish() *Trace {
	if r.finished {
		panic("trace: Recorder.Finish called twice")
	}
	r.finished = true
	tr := &Trace{Streams: make([][]Op, len(r.threads)), L1: r.l1, Costs: r.costs,
		PhaseNames: r.phaseNames}
	for i, t := range r.threads {
		t.flushEnd()
		tr.Streams[i] = t.ops
	}
	return tr
}

// Trace is a completed recording: one op stream per thread. Traces are
// immutable once finished (or deserialized): replay, sweeps, and the
// serving layer all share one *Trace read-only across concurrent replays.
type Trace struct {
	Streams [][]Op
	L1      L1Geometry
	Costs   Costs

	// PhaseNames resolves OpPhase markers: an OpPhase op's Addr indexes
	// this table. Empty for traces recorded without phase markers.
	PhaseNames []string

	// digestOnce memoizes Digest(): the fingerprint serializes the whole
	// stream, so computing it per cell key would make keying O(trace) on
	// every sweep and every served job. Immutability makes the memo
	// invalidation-free; the Once makes concurrent digest requests (many
	// clients keying jobs against one stored trace) safe.
	digestOnce sync.Once
	digestVal  uint64
	digestErr  error
}

// Ops returns the total number of recorded operations.
func (tr *Trace) Ops() int {
	n := 0
	for _, s := range tr.Streams {
		n += len(s)
	}
	return n
}

// Validate checks stream well-formedness: every stream ends with exactly
// one OpEnd, barrier counts agree across all threads (replay would deadlock
// otherwise), and every access address routes to a memory level.
func (tr *Trace) Validate() error {
	barriers := -1
	for tid, s := range tr.Streams {
		if len(s) == 0 || s[len(s)-1].Kind != OpEnd {
			return fmt.Errorf("trace: thread %d stream not terminated", tid)
		}
		b := 0
		for i, op := range s {
			switch op.Kind {
			case OpEnd:
				if i != len(s)-1 {
					return fmt.Errorf("trace: thread %d has interior OpEnd at %d", tid, i)
				}
			case OpBarrier:
				b++
			case OpAccess, OpAtomic:
				addr.LevelOf(addr.Addr(op.Addr)) // panics on stray address
			case OpDMA:
				addr.LevelOf(addr.Addr(op.Addr))
				addr.LevelOf(addr.Addr(op.Addr2))
			case OpPhase:
				if op.Addr >= uint64(len(tr.PhaseNames)) {
					return fmt.Errorf("trace: thread %d op %d names phase %d of %d",
						tid, i, op.Addr, len(tr.PhaseNames))
				}
			}
		}
		if barriers == -1 {
			barriers = b
		} else if b != barriers {
			return fmt.Errorf("trace: thread %d reached %d barriers, thread 0 reached %d",
				tid, b, barriers)
		}
	}
	return nil
}

// LevelCounts tallies line transfers per memory level, split by direction.
// This is the raw material for Table I's access columns and for the
// block-transfer model validation (Theorem 6).
type LevelCounts struct {
	FarReads   uint64
	FarWrites  uint64
	NearReads  uint64
	NearWrites uint64
	Atomics    uint64
}

// Far returns total far-memory line transfers.
func (c LevelCounts) Far() uint64 { return c.FarReads + c.FarWrites }

// Near returns total near-memory line transfers.
func (c LevelCounts) Near() uint64 { return c.NearReads + c.NearWrites }

// Count tallies the trace's line transfers per level. Note these are the
// L1-filtered counts; the replay-time shared L2 filters them further before
// they reach the memory devices.
func (tr *Trace) Count() LevelCounts {
	var c LevelCounts
	for _, s := range tr.Streams {
		for _, op := range s {
			switch op.Kind {
			case OpAccess:
				switch addr.LevelOf(addr.Addr(op.Addr)) {
				case addr.Far:
					if op.Write {
						c.FarWrites++
					} else {
						c.FarReads++
					}
				case addr.Near:
					if op.Write {
						c.NearWrites++
					} else {
						c.NearReads++
					}
				}
			case OpAtomic:
				c.Atomics++
			}
		}
	}
	return c
}
