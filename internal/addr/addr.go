// Package addr defines the simulated physical address space of the
// two-level main memory and implements the paper's programmatic interface
// (Section VI-B2): the scratchpad occupies a fixed portion of the physical
// address range, loads and stores treat both spaces identically, and a
// modified malloc hands out scratchpad space.
//
// The far (capacity) memory and the near (scratchpad) memory each own a
// disjoint address window; routing a memory request is a pure function of
// its address, exactly as in the paper's directory-controller design
// ("references to scratchpad data ... on the basis of a fixed address
// range").
package addr

import "fmt"

// Addr is a simulated physical byte address.
type Addr uint64

// Address-space layout. The far window is placed low and the near window
// high, with a guard gap so arithmetic overflow bugs surface as routing
// panics rather than silent misrouting.
const (
	FarBase  Addr = 0x0000_1000_0000_0000
	NearBase Addr = 0x4000_0000_0000_0000
)

// Level identifies which main-memory device backs an address.
type Level uint8

// The two levels of main memory.
const (
	Far  Level = iota // capacity DRAM, block size B
	Near              // scratchpad, block size ρB
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Far:
		return "far"
	case Near:
		return "near"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// LevelOf routes an address to its backing memory. It panics on an address
// outside both windows: in this simulator every access must come from an
// arena allocation, so a stray address is a bug.
func LevelOf(a Addr) Level {
	switch {
	case a >= NearBase:
		return Near
	case a >= FarBase:
		return Far
	default:
		panic(fmt.Sprintf("addr: address %#x outside both memory windows", uint64(a)))
	}
}

// Line returns the cache-line index of an address for the given line size,
// which must be a power of two.
func Line(a Addr, lineSize uint64) uint64 {
	return uint64(a) &^ (lineSize - 1)
}

// Arena is a bump allocator carving a memory window into named regions.
// The far memory is modeled as arbitrarily large, so its arena never
// refuses an allocation; the near arena is bounded by the scratchpad
// capacity and refusals are real (callers fall back to SPAllocator for
// dynamic use, or size their chunks to fit).
type Arena struct {
	name   string
	base   Addr
	limit  Addr // zero means unbounded
	next   Addr
	budget uint64
}

// NewFarArena returns the arena for the capacity memory window.
func NewFarArena() *Arena {
	return &Arena{name: "far", base: FarBase, next: FarBase}
}

// NewNearArena returns the arena for a scratchpad of the given byte
// capacity.
func NewNearArena(capacity uint64) *Arena {
	return &Arena{
		name:   "near",
		base:   NearBase,
		next:   NearBase,
		limit:  NearBase + Addr(capacity),
		budget: capacity,
	}
}

// Alloc reserves n bytes aligned to align (a power of two; 0 means 64) and
// returns the base address. Alloc panics when a bounded arena is exhausted:
// the algorithms size their scratchpad working sets deliberately, so
// exhaustion is a programming error, not a runtime condition.
func (ar *Arena) Alloc(n uint64, align uint64) Addr {
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		panic("addr: alignment must be a power of two")
	}
	p := (uint64(ar.next) + align - 1) &^ (align - 1)
	end := p + n
	if ar.limit != 0 && Addr(end) > ar.limit {
		panic(fmt.Sprintf("addr: %s arena exhausted: want %d bytes, %d free",
			ar.name, n, uint64(ar.limit)-uint64(ar.next)))
	}
	ar.next = Addr(end)
	return Addr(p)
}

// Used reports the bytes consumed so far.
func (ar *Arena) Used() uint64 { return uint64(ar.next - ar.base) }

// Free reports the bytes remaining, or ^uint64(0) for an unbounded arena.
func (ar *Arena) Free() uint64 {
	if ar.limit == 0 {
		return ^uint64(0)
	}
	return uint64(ar.limit - ar.next)
}

// Reset returns the arena to empty. Used between independent experiment
// runs that reuse one machine description.
func (ar *Arena) Reset() { ar.next = ar.base }

// Capacity returns the total size of a bounded arena (0 if unbounded).
func (ar *Arena) Capacity() uint64 { return ar.budget }
