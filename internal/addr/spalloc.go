package addr

import (
	"fmt"
	"sort"
)

// SPAllocator is the paper's "modified malloc() call to allocate a portion
// of the scratchpad space" (Section VI-B2): a first-fit free-list allocator
// with immediate coalescing over the near-memory window. The OS/runtime
// virtual-to-physical concerns the paper delegates are out of scope; this
// allocator hands out simulated physical addresses directly.
//
// SPAllocator is not safe for concurrent use; in this codebase allocation
// happens on the coordinating goroutine between parallel phases, matching
// the algorithms' structure.
type SPAllocator struct {
	base     Addr
	capacity uint64
	free     []span          // sorted by address, pairwise non-adjacent
	live     map[Addr]uint64 // allocation base -> size
	inUse    uint64
	peak     uint64
}

type span struct {
	base Addr
	size uint64
}

// NewSPAllocator returns an allocator managing a scratchpad of the given
// byte capacity.
func NewSPAllocator(capacity uint64) *SPAllocator {
	return &SPAllocator{
		base:     NearBase,
		capacity: capacity,
		free:     []span{{base: NearBase, size: capacity}},
		live:     make(map[Addr]uint64),
	}
}

// SPMalloc allocates n bytes of scratchpad (64-byte aligned, like a cache
// line) and reports whether the allocation succeeded. A false return means
// the scratchpad cannot currently satisfy the request — the algorithmic
// signal to spill to far memory instead.
func (s *SPAllocator) SPMalloc(n uint64) (Addr, bool) {
	if n == 0 {
		return 0, false
	}
	n = (n + 63) &^ 63
	for i, f := range s.free {
		if f.size < n {
			continue
		}
		a := f.base
		if f.size == n {
			s.free = append(s.free[:i], s.free[i+1:]...)
		} else {
			s.free[i] = span{base: f.base + Addr(n), size: f.size - n}
		}
		s.live[a] = n
		s.inUse += n
		if s.inUse > s.peak {
			s.peak = s.inUse
		}
		return a, true
	}
	return 0, false
}

// SPFree releases an allocation made by SPMalloc. Freeing an address that
// is not a live allocation base panics: the simulator would rather crash
// than silently corrupt its accounting.
func (s *SPAllocator) SPFree(a Addr) {
	n, ok := s.live[a]
	if !ok {
		panic(fmt.Sprintf("addr: SPFree of non-allocated address %#x", uint64(a)))
	}
	delete(s.live, a)
	s.inUse -= n

	// Insert the span in address order, then coalesce with neighbors.
	i := sort.Search(len(s.free), func(i int) bool { return s.free[i].base > a })
	s.free = append(s.free, span{})
	copy(s.free[i+1:], s.free[i:])
	s.free[i] = span{base: a, size: n}

	// Coalesce with successor first so the predecessor merge sees the
	// combined span.
	if i+1 < len(s.free) && s.free[i].base+Addr(s.free[i].size) == s.free[i+1].base {
		s.free[i].size += s.free[i+1].size
		s.free = append(s.free[:i+1], s.free[i+2:]...)
	}
	if i > 0 && s.free[i-1].base+Addr(s.free[i-1].size) == s.free[i].base {
		s.free[i-1].size += s.free[i].size
		s.free = append(s.free[:i], s.free[i+1:]...)
	}
}

// InUse returns the bytes currently allocated.
func (s *SPAllocator) InUse() uint64 { return s.inUse }

// Peak returns the high-water mark of allocated bytes, used to verify the
// sub-1% metadata overhead claim of Section IV-D.
func (s *SPAllocator) Peak() uint64 { return s.peak }

// Capacity returns the managed scratchpad size.
func (s *SPAllocator) Capacity() uint64 { return s.capacity }

// LargestFree returns the size of the largest free span — what the next
// SPMalloc could satisfy.
func (s *SPAllocator) LargestFree() uint64 {
	var max uint64
	for _, f := range s.free {
		if f.size > max {
			max = f.size
		}
	}
	return max
}

// CheckInvariants verifies the free list is sorted, non-overlapping,
// non-adjacent (fully coalesced), inside the window, and that free+live
// bytes account for the whole capacity. Used by property tests.
func (s *SPAllocator) CheckInvariants() error {
	var freeBytes uint64
	prevEnd := Addr(0)
	for i, f := range s.free {
		if f.size == 0 {
			return fmt.Errorf("free[%d]: zero-size span", i)
		}
		if f.base < s.base || f.base+Addr(f.size) > s.base+Addr(s.capacity) {
			return fmt.Errorf("free[%d]: span outside window", i)
		}
		if i > 0 {
			if f.base < prevEnd {
				return fmt.Errorf("free[%d]: overlaps predecessor", i)
			}
			if f.base == prevEnd {
				return fmt.Errorf("free[%d]: not coalesced with predecessor", i)
			}
		}
		prevEnd = f.base + Addr(f.size)
		freeBytes += f.size
	}
	var liveBytes uint64
	for _, n := range s.live {
		liveBytes += n
	}
	if freeBytes+liveBytes != s.capacity {
		return fmt.Errorf("accounting: free %d + live %d != capacity %d",
			freeBytes, liveBytes, s.capacity)
	}
	if liveBytes != s.inUse {
		return fmt.Errorf("inUse counter %d != live bytes %d", s.inUse, liveBytes)
	}
	return nil
}
