package addr

import (
	"testing"
	"testing/quick"
)

func TestLevelOf(t *testing.T) {
	if LevelOf(FarBase) != Far {
		t.Error("FarBase should route far")
	}
	if LevelOf(FarBase+123456) != Far {
		t.Error("far window should route far")
	}
	if LevelOf(NearBase) != Near {
		t.Error("NearBase should route near")
	}
	if LevelOf(NearBase+1<<30) != Near {
		t.Error("near window should route near")
	}
}

func TestLevelOfPanicsBelowWindows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for null-ish address")
		}
	}()
	LevelOf(0x1000)
}

func TestLevelString(t *testing.T) {
	if Far.String() != "far" || Near.String() != "near" {
		t.Error("Level strings wrong")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level string wrong")
	}
}

func TestLine(t *testing.T) {
	if got := Line(FarBase+100, 64); got != uint64(FarBase)+64 {
		t.Errorf("Line = %#x", got)
	}
	if got := Line(FarBase, 64); got != uint64(FarBase) {
		t.Errorf("Line of aligned = %#x", got)
	}
}

func TestArenaAlloc(t *testing.T) {
	ar := NewFarArena()
	a := ar.Alloc(100, 0)
	if a != FarBase {
		t.Errorf("first alloc at %#x, want FarBase", uint64(a))
	}
	b := ar.Alloc(8, 64)
	if uint64(b)%64 != 0 {
		t.Errorf("alignment violated: %#x", uint64(b))
	}
	if b < a+100 {
		t.Errorf("allocations overlap")
	}
	if ar.Used() == 0 {
		t.Error("Used should be positive")
	}
}

func TestArenaBounded(t *testing.T) {
	ar := NewNearArena(1024)
	ar.Alloc(512, 64)
	ar.Alloc(512, 64)
	if ar.Free() != 0 {
		t.Errorf("Free = %d, want 0", ar.Free())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	ar.Alloc(1, 1)
}

func TestArenaReset(t *testing.T) {
	ar := NewNearArena(4096)
	ar.Alloc(4096, 64)
	ar.Reset()
	if ar.Used() != 0 {
		t.Error("Reset did not clear usage")
	}
	ar.Alloc(4096, 64) // must succeed again
}

func TestArenaBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	NewFarArena().Alloc(8, 3)
}

func TestSPMallocBasic(t *testing.T) {
	s := NewSPAllocator(1 << 20)
	a, ok := s.SPMalloc(1000)
	if !ok {
		t.Fatal("SPMalloc failed")
	}
	if uint64(a)%64 != 0 {
		t.Error("allocation not line aligned")
	}
	if s.InUse() != 1024 { // rounded to 64
		t.Errorf("InUse = %d, want 1024", s.InUse())
	}
	s.SPFree(a)
	if s.InUse() != 0 {
		t.Errorf("InUse after free = %d", s.InUse())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSPMallocExhaustion(t *testing.T) {
	s := NewSPAllocator(4096)
	a, ok := s.SPMalloc(4096)
	if !ok {
		t.Fatal("full-capacity alloc should succeed")
	}
	if _, ok := s.SPMalloc(64); ok {
		t.Error("alloc from exhausted scratchpad should fail")
	}
	s.SPFree(a)
	if _, ok := s.SPMalloc(4096); !ok {
		t.Error("full capacity should be reusable after free")
	}
}

func TestSPMallocZero(t *testing.T) {
	s := NewSPAllocator(4096)
	if _, ok := s.SPMalloc(0); ok {
		t.Error("zero-byte alloc should fail")
	}
}

func TestSPFreeCoalesces(t *testing.T) {
	s := NewSPAllocator(3 * 64)
	a, _ := s.SPMalloc(64)
	b, _ := s.SPMalloc(64)
	c, _ := s.SPMalloc(64)
	// Free in an order that requires both-side coalescing for the middle.
	s.SPFree(a)
	s.SPFree(c)
	s.SPFree(b)
	if got := s.LargestFree(); got != 3*64 {
		t.Errorf("LargestFree = %d, want %d (full coalescing)", got, 3*64)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSPFreeDoubleFreePanics(t *testing.T) {
	s := NewSPAllocator(4096)
	a, _ := s.SPMalloc(64)
	s.SPFree(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double free")
		}
	}()
	s.SPFree(a)
}

func TestSPPeakTracking(t *testing.T) {
	s := NewSPAllocator(1 << 16)
	a, _ := s.SPMalloc(1 << 10)
	b, _ := s.SPMalloc(1 << 12)
	s.SPFree(a)
	s.SPFree(b)
	if got := s.Peak(); got != 1<<10+1<<12 {
		t.Errorf("Peak = %d", got)
	}
}

// TestSPAllocatorRandomWorkload drives the allocator through a randomized
// alloc/free sequence and checks the free-list invariants at every step —
// the property-based workout for the paper's modified-malloc substrate.
func TestSPAllocatorRandomWorkload(t *testing.T) {
	f := func(ops []uint16, seed uint8) bool {
		s := NewSPAllocator(1 << 16)
		var live []Addr
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				n := uint64(op%2048) + 1
				if a, ok := s.SPMalloc(n); ok {
					live = append(live, a)
				}
			} else {
				i := int(op/3) % len(live)
				s.SPFree(live[i])
				live = append(live[:i], live[i+1:]...)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		for _, a := range live {
			s.SPFree(a)
		}
		if s.InUse() != 0 {
			return false
		}
		if got := s.LargestFree(); got != s.Capacity() {
			t.Logf("fragmentation after freeing everything: largest %d of %d", got, s.Capacity())
			return false
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	s := NewSPAllocator(1 << 16)
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for i := 0; i < 100; i++ {
		n := uint64(i%7)*64 + 64
		a, ok := s.SPMalloc(n)
		if !ok {
			break
		}
		ivs = append(ivs, iv{uint64(a), uint64(a) + n})
	}
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].lo < ivs[j].hi && ivs[j].lo < ivs[i].hi {
				t.Fatalf("allocations %d and %d overlap", i, j)
			}
		}
	}
}
