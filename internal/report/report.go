// Package report renders experiment results in machine- and
// human-friendly formats: aligned text (the default the cmd tools print),
// CSV (for plotting the paper's series externally), and Markdown (for
// EXPERIMENTS.md-style documents). It is deliberately dumb — a grid of
// cells with typed columns — so every experiment driver can feed it.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New creates a table with the given columns.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; the cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns",
			len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from values formatted with %v.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// FailMark annotates a row label with a supervised-replay failure kind
// ("panic", "stall", "budget", "cancelled", "error"): the cell stays in
// the table as a marked row instead of aborting the sweep. An empty kind
// returns the label unchanged, so successful cells render identically to
// an unsupervised run.
func FailMark(label, kind string) string {
	if kind == "" {
		return label
	}
	return label + " [" + kind + "]"
}

// Format identifies an output encoding.
type Format string

// Supported encodings.
const (
	Text     Format = "text"
	CSV      Format = "csv"
	Markdown Format = "markdown"
)

// ParseFormat validates a -format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case Text, CSV, Markdown:
		return Format(s), nil
	case "md":
		return Markdown, nil
	default:
		return "", fmt.Errorf("report: unknown format %q (want text, csv, or markdown)", s)
	}
}

// Render writes the table in the requested format.
func (t *Table) Render(w io.Writer, f Format) error {
	switch f {
	case Text:
		return t.renderText(w)
	case CSV:
		return t.renderCSV(w)
	case Markdown:
		return t.renderMarkdown(w)
	default:
		return fmt.Errorf("report: unknown format %q", f)
	}
}

func (t *Table) renderText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (t *Table) renderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func (t *Table) renderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(escaped, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}
