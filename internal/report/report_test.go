package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Sample", "config", "rho", "time")
	t.AddRow("gnusort", "2", "11.5ms")
	t.AddRowf("nmsort", 2.0, "6.1ms")
	return t
}

func TestTextAligned(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, Text); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Sample") {
		t.Errorf("missing title")
	}
	// Columns align: "rho" starts at the same offset in header and rows.
	if strings.Index(lines[1], "rho") != strings.Index(lines[2], "2  ") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, CSV); err != nil {
		t.Fatal(err)
	}
	want := "config,rho,time\ngnusort,2,11.5ms\nnmsort,2,6.1ms\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestMarkdown(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, Markdown); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Sample**", "| config | rho | time |", "| --- | --- | --- |", "| gnusort | 2 | 11.5ms |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tab := New("", "a")
	tab.AddRow("x|y")
	var b bytes.Buffer
	if err := tab.Render(&b, Markdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x\|y`) {
		t.Errorf("pipe not escaped: %s", b.String())
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "markdown", "md"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("expected error for xml")
	}
}

func TestAddRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("", "a", "b").AddRow("only-one")
}

func TestRenderUnknownFormat(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, Format("bogus")); err == nil {
		t.Error("expected error")
	}
}
