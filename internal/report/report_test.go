package report

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Sample", "config", "rho", "time")
	t.AddRow("gnusort", "2", "11.5ms")
	t.AddRowf("nmsort", 2.0, "6.1ms")
	return t
}

func TestTextAligned(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, Text); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Sample") {
		t.Errorf("missing title")
	}
	// Columns align: "rho" starts at the same offset in header and rows.
	if strings.Index(lines[1], "rho") != strings.Index(lines[2], "2  ") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, CSV); err != nil {
		t.Fatal(err)
	}
	want := "config,rho,time\ngnusort,2,11.5ms\nnmsort,2,6.1ms\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestMarkdown(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, Markdown); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"**Sample**", "| config | rho | time |", "| --- | --- | --- |", "| gnusort | 2 | 11.5ms |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tab := New("", "a")
	tab.AddRow("x|y")
	var b bytes.Buffer
	if err := tab.Render(&b, Markdown); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x\|y`) {
		t.Errorf("pipe not escaped: %s", b.String())
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "csv", "markdown", "md"} {
		if _, err := ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%q): %v", ok, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("expected error for xml")
	}
}

func TestAddRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("", "a", "b").AddRow("only-one")
}

func TestRenderUnknownFormat(t *testing.T) {
	var b bytes.Buffer
	if err := sample().Render(&b, Format("bogus")); err == nil {
		t.Error("expected error")
	}
}

func TestCSVQuoting(t *testing.T) {
	// encoding/csv must quote the delicate cells: embedded commas, quotes,
	// and newlines all survive a round trip through a standards-compliant
	// reader.
	tab := New("", "label", "note")
	tab.AddRow("a,b", `say "hi"`)
	tab.AddRow("line1\nline2", "plain")
	var b bytes.Buffer
	if err := tab.Render(&b, CSV); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"a,b"`, `"say ""hi"""`, "\"line1\nline2\""} {
		if !strings.Contains(out, want) {
			t.Errorf("csv output missing %q:\n%s", want, out)
		}
	}
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1][0] != "a,b" || rows[1][1] != `say "hi"` || rows[2][0] != "line1\nline2" {
		t.Errorf("round trip = %q", rows)
	}
}

func TestEmptyTable(t *testing.T) {
	// A table with columns but no rows renders its header in every format
	// without error — sweeps over empty axes must not crash the renderers.
	tab := New("Empty", "a", "b")
	for _, f := range []Format{Text, CSV, Markdown} {
		var b bytes.Buffer
		if err := tab.Render(&b, f); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !strings.Contains(b.String(), "a") {
			t.Errorf("%s: header missing:\n%s", f, b.String())
		}
	}

	// Text output of an untitled empty table is exactly the header line.
	var b bytes.Buffer
	if err := New("", "x", "y").Render(&b, Text); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x  y\n" {
		t.Errorf("text = %q, want %q", b.String(), "x  y\n")
	}
}

func TestMarkdownUntitled(t *testing.T) {
	// No title → no bold header line; the table starts at the column row.
	var b bytes.Buffer
	tab := New("", "a")
	tab.AddRow("1")
	if err := tab.Render(&b, Markdown); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "**") {
		t.Errorf("untitled markdown renders a bold title:\n%s", b.String())
	}
	if !strings.HasPrefix(b.String(), "| a |") {
		t.Errorf("markdown = %q", b.String())
	}
}

func TestTextWideCellWidensColumn(t *testing.T) {
	// A cell longer than its header widens the whole column so later
	// columns still align.
	tab := New("", "c", "d")
	tab.AddRow("very-long-cell", "x")
	tab.AddRow("s", "y")
	var b bytes.Buffer
	if err := tab.Render(&b, Text); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	want := strings.Index(lines[1], "x")
	for _, line := range []string{lines[0], lines[2]} {
		if idx := strings.IndexAny(line, "dy"); idx != want {
			t.Errorf("second column misaligned:\n%s", b.String())
		}
	}
}
