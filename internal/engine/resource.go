package engine

import "repro/internal/units"

// Resource models a serially-occupied, bandwidth-limited facility — a NoC
// link, a DRAM channel data bus, a scratchpad channel. A request occupies
// the resource for a service time derived from its size and the resource
// bandwidth; requests queue FIFO behind the busy period. This is the
// standard busy-until abstraction: cheap (no queue data structure needed —
// arrival order is event order) yet it produces the queueing delays that
// make bandwidth-bound workloads bandwidth-bound.
type Resource struct {
	sim       *Sim
	bw        units.BytesPerSecond
	busyUntil units.Time

	// Stats.
	busyTime units.Time // total occupied time
	served   uint64     // requests served
	bytes    uint64     // bytes transferred
	waited   units.Time // total queueing delay imposed
}

// NewResource returns a resource of the given bandwidth attached to sim.
func NewResource(sim *Sim, bw units.BytesPerSecond) *Resource {
	return &Resource{sim: sim, bw: bw}
}

// Acquire claims the resource for n bytes starting no earlier than the
// current simulated time, and returns the time at which the transfer
// completes. The caller schedules its continuation at the returned time.
func (r *Resource) Acquire(n units.Bytes) units.Time {
	start := r.sim.Now()
	if r.busyUntil > start {
		r.waited += r.busyUntil - start
		start = r.busyUntil
	}
	//nmlint:ignore escape-check inlined TransferTime panic string; the escape is on the cold bad-bandwidth exit
	svc := r.bw.TransferTime(n)
	r.busyUntil = start + svc
	r.busyTime += svc
	r.served++
	r.bytes += uint64(n)
	return r.busyUntil
}

// AcquireAt is Acquire but with an explicit earliest-start time (used when
// a request reaches this resource only after an upstream latency).
func (r *Resource) AcquireAt(earliest units.Time, n units.Bytes) units.Time {
	return r.AcquireAtFactor(earliest, n, 1)
}

// AcquireAtFactor is AcquireAt with the service time stretched by factor
// (>= 1): the request occupies the resource as if it ran at bandwidth/factor.
// The fault layer uses it to model a degraded channel; bytes and request
// counts are unaffected, only occupancy grows.
func (r *Resource) AcquireAtFactor(earliest units.Time, n units.Bytes, factor int64) units.Time {
	if factor < 1 {
		panic("engine: resource slowdown factor must be >= 1")
	}
	start := earliest
	if start < r.sim.Now() {
		start = r.sim.Now()
	}
	if r.busyUntil > start {
		r.waited += r.busyUntil - start
		start = r.busyUntil
	}
	//nmlint:ignore escape-check inlined TransferTime panic string; cold bad-bandwidth exit only
	svc := r.bw.TransferTime(n) * units.Time(factor)
	r.busyUntil = start + svc
	r.busyTime += svc
	r.served++
	r.bytes += uint64(n)
	return r.busyUntil
}

// Utilization returns busy time divided by total elapsed time (0 when no
// time has passed).
func (r *Resource) Utilization() float64 {
	if r.sim.Now() == 0 {
		return 0
	}
	return float64(r.busyTime) / float64(r.sim.Now())
}

// BusyUntil returns the time the current busy period ends (zero when the
// resource was never acquired). A fully drained simulation satisfies
// BusyUntil() <= sim.Now() for every resource; callers use this to verify
// that posted traffic was run to completion.
func (r *Resource) BusyUntil() units.Time { return r.busyUntil }

// BusyTime returns the total time the resource has been occupied — the
// numerator of Utilization, exposed for telemetry probes and per-phase
// utilization deltas.
func (r *Resource) BusyTime() units.Time { return r.busyTime }

// Served returns the number of requests this resource has serviced.
func (r *Resource) Served() uint64 { return r.served }

// Bytes returns the number of bytes transferred through the resource.
func (r *Resource) Bytes() uint64 { return r.bytes }

// TotalWait returns the cumulative queueing delay imposed on requests.
func (r *Resource) TotalWait() units.Time { return r.waited }

// Bandwidth returns the resource's configured bandwidth.
func (r *Resource) Bandwidth() units.BytesPerSecond { return r.bw }
