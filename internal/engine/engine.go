// Package engine is the discrete-event simulation kernel underneath the
// machine model — the role SST's core plays in the paper's experimental
// setup. It provides a single global event queue ordered by simulated time
// with deterministic FIFO tie-breaking, so that a given component graph and
// input trace always produce bit-identical results.
package engine

import (
	"fmt"

	"repro/internal/units"
)

// Event is a callback scheduled to run at a simulated time.
type Event func()

type item struct {
	at  units.Time
	seq uint64
	fn  Event
}

// before is the queue's total order: time first, then schedule order. The
// seq tie-break is what makes same-timestamp events FIFO and the whole
// simulation deterministic.
func before(a, b item) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// queue is the event queue: a hand-specialized 4-ary min-heap over a flat
// []item ordered by (at, seq). Replacing container/heap removes the
// Push(x any)/Pop() any interface boxing — one heap allocation per
// scheduled event on the replay hot path — and the 4-ary shape halves the
// tree depth versus a binary heap, trading a slightly wider child scan
// (cheap: the four items are adjacent in one or two cache lines) for fewer
// sift levels. push/pop sift a hole instead of swapping, so each level
// costs one copy rather than three.
type queue struct {
	a []item
}

func (q *queue) len() int { return len(q.a) }

// push inserts it, keeping the heap order. Amortized zero allocations: the
// backing array grows geometrically and is pre-sized by NewWithCap/Reserve.
func (q *queue) push(it item) {
	//nmlint:ignore hotpath amortized growth; NewWithCap/Reserve pre-size the array for the replay's steady state
	q.a = append(q.a, it)
	a := q.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(it, a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = it
}

// pop removes and returns the minimum item. The vacated slot is zeroed so
// the popped callback's closure (if any) is not retained by the backing
// array.
func (q *queue) pop() item {
	a := q.a
	root := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = item{}
	q.a = a[:n]
	if n > 0 {
		a = q.a
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if before(a[j], a[min]) {
					min = j
				}
			}
			if !before(a[min], last) {
				break
			}
			a[i] = a[min]
			i = min
		}
		a[i] = last
	}
	return root
}

// peek returns the minimum item without removing it; ok is false when the
// queue is empty.
func (q *queue) peek() (item, bool) {
	if len(q.a) == 0 {
		return item{}, false
	}
	return q.a[0], true
}

// Sim is a discrete-event simulator. The zero value is not usable; use New.
type Sim struct {
	now      units.Time
	seq      uint64
	events   queue
	nRun     uint64
	lastAt   units.Time // timestamp of the most recently executed event
	watchers []watcher  // components registered with the stall detector

	// sh, when non-nil, switches the simulator into sharded mode (see
	// shard.go): events live in per-shard queues and RunBudget executes
	// them through the conservative horizon loop. Nil costs the sequential
	// hot path one pointer check per schedule.
	sh *shardState

	// Epoch sampler (telemetry hook). The engine stays decoupled from the
	// telemetry package: it only promises to call sampler at every multiple
	// of epoch that event execution crosses. Disabled cost is one nil check
	// per event; no events are ever scheduled for sampling.
	sampler    func(units.Time)
	epoch      units.Time
	nextSample units.Time
}

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// NewWithCap returns an empty simulator whose event queue is pre-sized for
// capacity pending events, so a replay of known shape schedules without
// growth reallocations. Capacity is a hint: the queue still grows past it
// on demand.
func NewWithCap(capacity int) *Sim {
	s := &Sim{}
	s.Reserve(capacity)
	return s
}

// Reserve grows the event queue's capacity to hold at least n pending
// events without reallocating. A no-op when the queue is already that
// large; never shrinks. On a sharded simulator the capacity is divided
// evenly across the shard queues (any shard can still grow past its
// share on demand).
func (s *Sim) Reserve(n int) {
	if s.sh != nil {
		s.sh.reserve(n)
		return
	}
	if n <= cap(s.events.a) {
		return
	}
	a := make([]item, len(s.events.a), n)
	copy(a, s.events.a)
	s.events.a = a
}

// Now returns the current simulated time.
func (s *Sim) Now() units.Time { return s.now }

// At schedules fn to run at absolute simulated time t. Scheduling into the
// past panics: it would silently violate causality.
//
//nmlint:hotpath
func (s *Sim) At(t units.Time, fn Event) {
	if t < s.now {
		panic(fmt.Sprintf("engine: scheduling at %v, before now %v", t, s.now))
	}
	s.seq++
	if s.sh != nil {
		// Sharded routing: the event belongs to the shard whose event is
		// currently executing (cross-shard handoffs go through AtShard).
		//nmlint:ignore hotpath dispatch boundary: scheduled callbacks are verified at their own hotpath roots
		s.sh.schedule(item{at: t, seq: s.seq, fn: fn}, s.sh.cur)
		return
	}
	//nmlint:ignore hotpath dispatch boundary: scheduled callbacks are verified at their own hotpath roots
	s.events.push(item{at: t, seq: s.seq, fn: fn})
}

// AtShard schedules fn at absolute time t on the given shard of a sharded
// simulator — the cross-shard mailbox entry of the conservative engine.
// Callers use it when the scheduling event executes on behalf of a
// component homed on a different shard (a barrier release waking another
// shard's core, a DMA completion landing on the issuing core). On an
// unsharded simulator the shard is ignored and AtShard is exactly At, so
// machine code can route unconditionally. Shard assignment affects only
// which queue carries the event — never execution order, which is globally
// merged by (time, seq) — so a wrong shard is a load-balance bug, not a
// correctness bug.
//
//nmlint:hotpath
func (s *Sim) AtShard(shard int, t units.Time, fn Event) {
	if s.sh == nil {
		s.At(t, fn)
		return
	}
	if shard < 0 || shard >= s.sh.n {
		panic(fmt.Sprintf("engine: AtShard(%d) outside [0, %d)", shard, s.sh.n))
	}
	if t < s.now {
		panic(fmt.Sprintf("engine: scheduling at %v, before now %v", t, s.now))
	}
	s.seq++
	//nmlint:ignore hotpath dispatch boundary: scheduled callbacks are verified at their own hotpath roots
	s.sh.schedule(item{at: t, seq: s.seq, fn: fn}, shard)
}

// After schedules fn to run d after the current time. A negative delay
// panics, and so does a delay that overflows units.Time past the end of
// representable simulated time — silently wrapping would schedule the event
// into the past and corrupt causality without a trace.
//
//nmlint:hotpath
func (s *Sim) After(d units.Time, fn Event) {
	if d < 0 {
		panic("engine: negative delay")
	}
	t := s.now + d
	if t < s.now {
		panic(fmt.Sprintf("engine: delay %v from now %v overflows units.Time", d, s.now))
	}
	s.At(t, fn)
}

// SetSampler installs fn as the epoch sampler: before executing the first
// event at or after each multiple of epoch, the engine calls fn with that
// boundary time. Boundaries are visited in order and exactly once, so fn
// sees a complete, evenly spaced time series; state between events is
// piecewise-constant, so sampling at the boundary from the following
// event's execution point observes exactly the state that held at the
// boundary. Sampling costs no scheduled events. Installing a non-positive
// epoch or nil fn panics.
//
// Boundaries start at the first multiple of epoch >= the install-time
// Now() — time zero for a fresh simulator. Installing mid-run therefore
// begins the series at the next boundary rather than replaying every past
// boundary in a burst (boundaries already behind Now() are unobservable:
// the state that held at them is gone).
func (s *Sim) SetSampler(epoch units.Time, fn func(units.Time)) {
	if epoch <= 0 {
		panic("engine: sampler epoch must be positive")
	}
	if fn == nil {
		panic("engine: nil sampler")
	}
	//nmlint:ignore hotpath installation-time hook; the telemetry sampler is verified at Recorder.Sample's own root
	s.sampler = fn
	s.epoch = epoch
	next := (s.now / epoch) * epoch
	if next < s.now {
		next += epoch
	}
	s.nextSample = next
}

// fire executes one already-dequeued event: sampler boundary crossings,
// then the clock/accounting update, then the event body. Both the
// sequential step cycle and the sharded window merge funnel through here,
// which is what keeps their observable behavior identical.
//
//nmlint:hotpath
func (s *Sim) fire(it item) {
	if s.sampler != nil {
		for s.nextSample <= it.at {
			s.sampler(s.nextSample)
			s.nextSample += s.epoch
		}
	}
	s.now = it.at
	s.lastAt = it.at
	s.nRun++
	it.fn()
}

// step pops and executes the next event unconditionally; callers check the
// queue first. This is the schedule/pop cycle of the replay kernel: every
// sequential simulated event funnels through here.
//
//nmlint:hotpath
func (s *Sim) step() {
	s.fire(s.events.pop())
}

// checkUnsharded guards the sequential-only entry points: the sharded
// engine runs in conservative windows and supports only RunBudget.
func (s *Sim) checkUnsharded(op string) {
	if s.sh != nil {
		panic("engine: " + op + " on a sharded simulator; use RunBudget")
	}
}

// Run executes events until the queue drains, returning the final time.
// RunBudget adds a runaway guard and the watchdog cross-check.
func (s *Sim) Run() units.Time {
	s.checkUnsharded("Run")
	for s.events.len() > 0 {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained, false if events at later times remain.
//
// Time semantics on a false return: Now() is the timestamp of the last
// *executed* event, which can be well short of the deadline — the clock
// only advances by executing events, and the first event past the deadline
// stays queued. Callers computing residual or idle time must measure
// against the deadline they passed, not Now(), or they over-count the gap
// between the last in-window event and the deadline as simulated activity.
// On a true return (queue drained) the same holds: Now() is the last
// event's time, or is unchanged when no event ran at all. Callers that
// stop at the deadline can consult Stalled() for components caught mid-
// request.
func (s *Sim) RunUntil(deadline units.Time) bool {
	s.checkUnsharded("RunUntil")
	for {
		head, ok := s.events.peek()
		if !ok {
			return true
		}
		if head.at > deadline {
			return false
		}
		s.step()
	}
}

// Step executes exactly one event; it reports false when none remain.
func (s *Sim) Step() bool {
	s.checkUnsharded("Step")
	if s.events.len() == 0 {
		return false
	}
	s.step()
	return true
}

// Pending returns the number of scheduled events not yet executed.
func (s *Sim) Pending() int {
	if s.sh != nil {
		return s.sh.nq
	}
	return s.events.len()
}

// Executed returns the total number of events run, a cheap progress and
// complexity metric for simulations.
func (s *Sim) Executed() uint64 { return s.nRun }
