// Package engine is the discrete-event simulation kernel underneath the
// machine model — the role SST's core plays in the paper's experimental
// setup. It provides a single global event queue ordered by simulated time
// with deterministic FIFO tie-breaking, so that a given component graph and
// input trace always produce bit-identical results.
package engine

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Event is a callback scheduled to run at a simulated time.
type Event func()

type item struct {
	at  units.Time
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h eventHeap) Peek() (item, bool) { // valid only when non-empty
	if len(h) == 0 {
		return item{}, false
	}
	return h[0], true
}

// Sim is a discrete-event simulator. The zero value is not usable; use New.
type Sim struct {
	now      units.Time
	seq      uint64
	events   eventHeap
	nRun     uint64
	lastAt   units.Time // timestamp of the most recently executed event
	watchers []watcher  // components registered with the stall detector

	// Epoch sampler (telemetry hook). The engine stays decoupled from the
	// telemetry package: it only promises to call sampler at every multiple
	// of epoch that event execution crosses. Disabled cost is one nil check
	// per event; no events are ever scheduled for sampling.
	sampler    func(units.Time)
	epoch      units.Time
	nextSample units.Time
}

// New returns an empty simulator at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() units.Time { return s.now }

// At schedules fn to run at absolute simulated time t. Scheduling into the
// past panics: it would silently violate causality.
func (s *Sim) At(t units.Time, fn Event) {
	if t < s.now {
		panic(fmt.Sprintf("engine: scheduling at %v, before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, item{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (s *Sim) After(d units.Time, fn Event) {
	if d < 0 {
		panic("engine: negative delay")
	}
	s.At(s.now+d, fn)
}

// SetSampler installs fn as the epoch sampler: before executing the first
// event at or after each multiple of epoch (starting at time zero), the
// engine calls fn with that boundary time. Boundaries are visited in order
// and exactly once, so fn sees a complete, evenly spaced time series; state
// between events is piecewise-constant, so sampling at the boundary from
// the following event's execution point observes exactly the state that
// held at the boundary. Sampling costs no scheduled events. Installing a
// non-positive epoch or nil fn panics.
func (s *Sim) SetSampler(epoch units.Time, fn func(units.Time)) {
	if epoch <= 0 {
		panic("engine: sampler epoch must be positive")
	}
	if fn == nil {
		panic("engine: nil sampler")
	}
	s.sampler = fn
	s.epoch = epoch
	s.nextSample = 0
}

// step pops and executes the next event unconditionally; callers check the
// queue first.
func (s *Sim) step() {
	it := heap.Pop(&s.events).(item)
	if s.sampler != nil {
		for s.nextSample <= it.at {
			s.sampler(s.nextSample)
			s.nextSample += s.epoch
		}
	}
	s.now = it.at
	s.lastAt = it.at
	s.nRun++
	it.fn()
}

// Run executes events until the queue drains, returning the final time.
// RunBudget adds a runaway guard and the watchdog cross-check.
func (s *Sim) Run() units.Time {
	for len(s.events) > 0 {
		s.step()
	}
	return s.now
}

// RunUntil executes events with timestamps <= deadline. It returns true if
// the queue drained, false if events at later times remain. Callers that
// stop at the deadline can consult Stalled() for components caught mid-
// request.
func (s *Sim) RunUntil(deadline units.Time) bool {
	for {
		head, ok := s.events.Peek()
		if !ok {
			return true
		}
		if head.at > deadline {
			return false
		}
		s.step()
	}
}

// Step executes exactly one event; it reports false when none remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	s.step()
	return true
}

// Pending returns the number of scheduled events not yet executed.
func (s *Sim) Pending() int { return len(s.events) }

// Executed returns the total number of events run, a cheap progress and
// complexity metric for simulations.
func (s *Sim) Executed() uint64 { return s.nRun }
