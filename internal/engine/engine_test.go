package engine

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: position %d got %d", i, v)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	s := New()
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 10 {
			depth++
			s.After(7, recurse)
		}
	}
	s.After(0, recurse)
	end := s.Run()
	if depth != 10 {
		t.Errorf("depth = %d", depth)
	}
	if end != 70 {
		t.Errorf("end = %v, want 70", end)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling into the past")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	ran := 0
	s.At(10, func() { ran++ })
	s.At(20, func() { ran++ })
	s.At(30, func() { ran++ })
	if s.RunUntil(20) {
		t.Error("queue should not have drained")
	}
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
	if !s.RunUntil(100) {
		t.Error("queue should drain")
	}
	if ran != 3 {
		t.Errorf("ran = %d, want 3", ran)
	}
}

func TestStepAndPending(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	if !s.Step() || s.Pending() != 1 {
		t.Error("Step bookkeeping wrong")
	}
	s.Step()
	if s.Step() {
		t.Error("Step on empty queue should report false")
	}
	if s.Executed() != 2 {
		t.Errorf("Executed = %d", s.Executed())
	}
}

// TestFIFOTieBreakAcrossHeapChurn grows and shrinks the heap while a
// population of same-timestamp events is resident: each wave adds a batch
// of t=1000 events (heap growth, sift-ups) and then drains a batch of
// earlier filler events (heap shrink, sift-downs rearranging the array).
// The physical positions of the t=1000 events get shuffled thoroughly; the
// seq tie-break must still run them in exact schedule order.
func TestFIFOTieBreakAcrossHeapChurn(t *testing.T) {
	s := New()
	var order []int
	next := 0
	for wave := 0; wave < 8; wave++ {
		for i := 0; i < 25; i++ {
			id := next
			next++
			s.At(1000, func() { order = append(order, id) })
		}
		for i := 0; i < 40; i++ {
			s.At(units.Time(wave*100+i%13), func() {})
		}
		if s.RunUntil(units.Time(wave*100 + 99)) {
			t.Fatal("queue drained early: the t=1000 cohort should remain")
		}
	}
	s.Run()
	if len(order) != next {
		t.Fatalf("ran %d tied events, want %d", len(order), next)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated after heap churn: position %d got event %d", i, v)
		}
	}
}

func TestPeek(t *testing.T) {
	s := New()
	if _, ok := s.events.peek(); ok {
		t.Error("peek on empty heap should report !ok")
	}
	s.At(30, func() {})
	s.At(10, func() {})
	s.At(20, func() {})
	head, ok := s.events.peek()
	if !ok || head.at != 10 {
		t.Errorf("peek = (%v, %v), want earliest event at 10", head.at, ok)
	}
	if s.Pending() != 3 {
		t.Errorf("peek must not consume: Pending = %d, want 3", s.Pending())
	}
	// peek tracks the minimum as the heap drains.
	s.Step()
	if head, ok := s.events.peek(); !ok || head.at != 20 {
		t.Errorf("after one Step, peek at %v, want 20", head.at)
	}
}

func TestRunUntilEmptyAndEarlyDeadline(t *testing.T) {
	s := New()
	if !s.RunUntil(100) {
		t.Error("RunUntil on an empty queue must report drained")
	}
	if s.Now() != 0 {
		t.Errorf("RunUntil with nothing to run must not advance time, now = %v", s.Now())
	}
	ran := false
	s.At(50, func() { ran = true })
	if s.RunUntil(49) {
		t.Error("deadline before the first event: queue must not drain")
	}
	if ran || s.Now() != 0 {
		t.Errorf("no event may run before its time: ran=%v now=%v", ran, s.Now())
	}
	// A deadline exactly at the event's timestamp is inclusive.
	if !s.RunUntil(50) || !ran {
		t.Error("RunUntil deadline is inclusive of events at the deadline")
	}
	if s.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", s.Executed())
	}
}

// TestRunUntilNowIsLastEventTime pins the documented time contract: after
// RunUntil returns, Now() is the last *executed* event's time — never the
// deadline. Callers computing residual or idle time against the window
// must measure from the deadline they passed, or they count the gap
// between the last in-window event and the deadline as simulated activity.
func TestRunUntilNowIsLastEventTime(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.At(70, func() {})
	if s.RunUntil(50) {
		t.Fatal("an event at 70 remains; the queue must not report drained")
	}
	if s.Now() != 10 {
		t.Errorf("Now() = %v after stopping at deadline 50, want 10 (last executed event)", s.Now())
	}
	// The same holds on a drained (true) return: the clock stays at the
	// final event, not at the later deadline.
	if !s.RunUntil(1000) {
		t.Fatal("queue should drain")
	}
	if s.Now() != 70 {
		t.Errorf("Now() = %v after drain, want 70", s.Now())
	}
}

// TestDeterminism runs the same randomized workload twice and demands
// identical execution traces — the property the whole simulator depends on.
func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := New()
		var trace []int
		delays := []units.Time{5, 3, 3, 9, 1, 3, 7, 5, 5, 2}
		for i, d := range delays {
			i, d := i, d
			s.At(d, func() {
				trace = append(trace, i)
				if i%2 == 0 {
					s.After(d, func() { trace = append(trace, 100+i) })
				}
			})
		}
		s.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimestampsNonDecreasingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var stamps []units.Time
		for _, d := range delays {
			s.At(units.Time(d), func() { stamps = append(stamps, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < stamps[i-1] {
				return false
			}
		}
		return len(stamps) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := NewResource(s, units.GBps(1)) // 1 byte per ns
	var done []units.Time
	s.At(0, func() {
		// Three 64-byte transfers requested simultaneously must complete
		// back to back: 64ns, 128ns, 192ns.
		for i := 0; i < 3; i++ {
			at := r.Acquire(64)
			done = append(done, at)
		}
	})
	s.Run()
	want := []units.Time{64000, 128000, 192000}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("transfer %d completes at %v, want %v", i, done[i], want[i])
		}
	}
	if r.Served() != 3 || r.Bytes() != 192 {
		t.Errorf("stats: served=%d bytes=%d", r.Served(), r.Bytes())
	}
	if r.TotalWait() != 64000+128000 {
		t.Errorf("TotalWait = %v", r.TotalWait())
	}
}

func TestResourceIdleGap(t *testing.T) {
	s := New()
	r := NewResource(s, units.GBps(1))
	var second units.Time
	s.At(0, func() { r.Acquire(64) })
	s.At(1000000, func() { second = r.Acquire(64) }) // 1ms later: no queueing
	s.Run()
	if second != 1000000+64000 {
		t.Errorf("second completes at %v", second)
	}
	if r.TotalWait() != 0 {
		t.Errorf("no waiting expected, got %v", r.TotalWait())
	}
}

func TestResourceAcquireAt(t *testing.T) {
	s := New()
	r := NewResource(s, units.GBps(1))
	var at units.Time
	s.At(0, func() {
		at = r.AcquireAt(5000, 64) // arrives after 5ns upstream latency
	})
	s.Run()
	if at != 5000+64000 {
		t.Errorf("AcquireAt completion = %v", at)
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := NewResource(s, units.GBps(1))
	s.At(0, func() { r.Acquire(100) })
	s.At(200000, func() {}) // extend sim time to 200ns
	s.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	// Raw scheduler throughput: the floor under every machine simulation.
	s := New()
	var fn Event
	n := 0
	fn = func() {
		if n < b.N {
			n++
			s.After(10, fn)
		}
	}
	s.At(0, fn)
	b.ResetTimer()
	s.Run()
}

func BenchmarkResourceAcquire(b *testing.B) {
	s := New()
	r := NewResource(s, units.GBps(72))
	for i := 0; i < b.N; i++ {
		r.Acquire(64)
	}
}
