package engine

import (
	"testing"

	"repro/internal/units"
)

func TestSamplerBoundaries(t *testing.T) {
	s := New()
	var counter int
	var samples []units.Time
	var seen []int
	s.SetSampler(10, func(at units.Time) {
		samples = append(samples, at)
		seen = append(seen, counter)
	})
	s.At(5, func() { counter = 1 })
	s.At(25, func() { counter = 2 })
	s.At(40, func() { counter = 3 })
	s.Run()

	// Boundaries 0..40, each visited exactly once, in order.
	want := []units.Time{0, 10, 20, 30, 40}
	if len(samples) != len(want) {
		t.Fatalf("samples at %v, want %v", samples, want)
	}
	for i := range want {
		if samples[i] != want[i] {
			t.Fatalf("samples at %v, want %v", samples, want)
		}
	}
	// The sampler observes the state that held AT each boundary: events are
	// piecewise-constant between executions, so the boundary at 10 (sampled
	// just before the event at 25 runs) still sees counter == 1.
	wantSeen := []int{0, 1, 1, 2, 2}
	for i := range wantSeen {
		if seen[i] != wantSeen[i] {
			t.Fatalf("sampler saw %v, want %v", seen, wantSeen)
		}
	}
}

func TestSamplerZeroBaseline(t *testing.T) {
	// The time-zero boundary fires before the first event executes, giving
	// every time series a zero-state baseline row.
	s := New()
	fired := false
	var baselineBeforeEvent bool
	s.SetSampler(100, func(at units.Time) {
		if at == 0 {
			baselineBeforeEvent = !fired
		}
	})
	s.At(0, func() { fired = true })
	s.Run()
	if !baselineBeforeEvent {
		t.Error("time-zero sample did not precede the first event")
	}
}

func TestSamplerSparseEvents(t *testing.T) {
	// An event far beyond many epochs still yields every intermediate
	// boundary (no gaps when the event queue is sparse).
	s := New()
	var n int
	s.SetSampler(10, func(units.Time) { n++ })
	s.At(95, func() {})
	s.Run()
	if n != 10 { // boundaries 0, 10, ..., 90
		t.Errorf("sampled %d boundaries, want 10", n)
	}
}

func TestSamplerDisabledCostsNothing(t *testing.T) {
	// Without SetSampler the engine schedules no sampling events and runs
	// exactly the user's events.
	s := New()
	s.At(5, func() {})
	s.At(15, func() {})
	s.Run()
	if got := s.Executed(); got != 2 {
		t.Errorf("executed %d events, want 2", got)
	}
}

func TestSetSamplerPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero epoch", func() { New().SetSampler(0, func(units.Time) {}) })
	mustPanic("negative epoch", func() { New().SetSampler(-1, func(units.Time) {}) })
	mustPanic("nil fn", func() { New().SetSampler(10, nil) })
}
