package engine

import (
	"sort"
	"testing"

	"repro/internal/units"
	"repro/internal/xrand"
)

// TestQueueMatchesReferenceSort drives the 4-ary heap through random
// interleavings of pushes and pops and checks every pop against a reference
// model: the same items ordered by sort.SliceStable on (at, seq). Stable
// sort on insertion order is exactly the FIFO tie-break contract, so any
// heap-shape bug that reorders same-timestamp events shows up as a seq
// mismatch.
func TestQueueMatchesReferenceSort(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 2015} {
		rng := xrand.New(seed)
		var q queue
		var ref []item // kept sorted by (at, seq); pops take ref[0]
		var seq uint64
		resort := func() {
			sort.SliceStable(ref, func(i, j int) bool { return before(ref[i], ref[j]) })
		}
		const steps = 5000
		for i := 0; i < steps; i++ {
			// Bias toward pushes so the heap grows, but drain in bursts to
			// exercise sift-down across many shapes.
			if q.len() == 0 || rng.Intn(10) < 6 {
				n := 1 + rng.Intn(8)
				for j := 0; j < n; j++ {
					seq++
					// A narrow timestamp range forces dense seq ties.
					it := item{at: units.Time(rng.Intn(50)), seq: seq}
					q.push(it)
					ref = append(ref, it)
				}
				resort()
			} else {
				n := 1 + rng.Intn(q.len())
				for j := 0; j < n; j++ {
					got := q.pop()
					want := ref[0]
					ref = ref[1:]
					if got.at != want.at || got.seq != want.seq {
						t.Fatalf("seed %d: pop = (at=%v seq=%d), reference says (at=%v seq=%d)",
							seed, got.at, got.seq, want.at, want.seq)
					}
				}
			}
			if head, ok := q.peek(); ok {
				if head.at != ref[0].at || head.seq != ref[0].seq {
					t.Fatalf("seed %d: peek = (at=%v seq=%d), reference says (at=%v seq=%d)",
						seed, head.at, head.seq, ref[0].at, ref[0].seq)
				}
			} else if len(ref) != 0 {
				t.Fatalf("seed %d: queue empty but reference holds %d items", seed, len(ref))
			}
		}
		// Full drain: the remaining population must come out exactly sorted.
		for len(ref) > 0 {
			got := q.pop()
			want := ref[0]
			ref = ref[1:]
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d: drain pop = (at=%v seq=%d), want (at=%v seq=%d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
		}
		if q.len() != 0 {
			t.Fatalf("seed %d: queue not empty after drain: %d left", seed, q.len())
		}
	}
}

// TestPopReleasesCallback checks that pop zeroes the vacated tail slot so
// the backing array does not pin the popped event's closure.
func TestPopReleasesCallback(t *testing.T) {
	var q queue
	q.push(item{at: 1, seq: 1, fn: func() {}})
	q.pop()
	if q.a[:1][0].fn != nil {
		t.Error("pop must clear the vacated slot's callback reference")
	}
}

// TestReserve covers the pre-sizing paths: growth, no-op, and preservation
// of queued items across a grow.
func TestReserve(t *testing.T) {
	s := NewWithCap(64)
	if cap(s.events.a) < 64 {
		t.Fatalf("NewWithCap(64): cap = %d", cap(s.events.a))
	}
	s.At(10, noop)
	s.At(5, noop)
	before := cap(s.events.a)
	s.Reserve(8) // smaller than current capacity: must not shrink
	if cap(s.events.a) != before {
		t.Errorf("Reserve must never shrink: cap went %d -> %d", before, cap(s.events.a))
	}
	s.Reserve(1024)
	if cap(s.events.a) < 1024 {
		t.Errorf("Reserve(1024): cap = %d", cap(s.events.a))
	}
	if head, ok := s.events.peek(); !ok || head.at != 5 {
		t.Error("Reserve lost queued events")
	}
	if s.Run() != 10 {
		t.Error("events did not survive Reserve")
	}
}

func noop() {}

// TestSchedulePopZeroAllocs is the tentpole's contract: once the queue is
// at capacity, a schedule/execute cycle performs zero heap allocations.
// container/heap could never pass this — Push(x any) boxes every item.
func TestSchedulePopZeroAllocs(t *testing.T) {
	s := NewWithCap(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(10, noop)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule+step allocates %.1f per event, want 0", allocs)
	}
}

// TestAfterOverflowPanics pins the satellite fix: a delay that would wrap
// s.now + d past the top of units.Time must panic, not schedule into the
// past.
func TestAfterOverflowPanics(t *testing.T) {
	s := New()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on units.Time overflow")
			}
		}()
		s.After(units.Time(1<<63-1), noop)
	})
	s.Run()
}
