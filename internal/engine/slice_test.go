package engine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/units"
)

// runStormSliced drives the same storm as runStorm but through repeated
// small RunBudget slices — the execution shape the harness supervisor uses
// to poll for cancellation between slices. Slicing must be invisible: the
// event log, sampler boundaries, and final clocks must match a single
// uninterrupted run exactly.
func runStormSliced(t *testing.T, shards int, seed, slice uint64) (*stormLog, *Sim, int) {
	t.Helper()
	s := New()
	if shards > 0 {
		s.Shard(shards, 40)
	}
	log := scheduleStorm(s, seed, 32, shards)
	s.SetSampler(100, func(b units.Time) { log.samples = append(log.samples, b) })
	slices := 0
	for {
		slices++
		_, err := s.RunBudget(slice)
		if err == nil {
			return log, s, slices
		}
		var be *BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("RunBudget(shards=%d, slice=%d): %v", shards, slice, err)
		}
		if slices > 1<<20 {
			t.Fatalf("storm did not converge in %d slices", slices)
		}
	}
}

// TestSlicedRunMatchesUninterrupted is the primitive the supervised
// runtime stands on: executing a run as many small event-budget slices
// (resuming after each BudgetError) is observationally identical to one
// uninterrupted run — sequential and sharded, at slice sizes that land
// mid-window, on window boundaries, and below the smallest cascade step.
func TestSlicedRunMatchesUninterrupted(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		for _, shards := range []int{0, 4} {
			ref, refSim := runStorm(t, shards, 1, seed)
			for _, slice := range []uint64{1, 3, 17, 64, 1000} {
				got, gotSim, slices := runStormSliced(t, shards, seed, slice)
				if slice < 64 && slices < 2 {
					t.Fatalf("seed %d shards %d slice %d: only %d slices — test not exercising resume", seed, shards, slice, slices)
				}
				if fmt.Sprint(got.events) != fmt.Sprint(ref.events) {
					t.Fatalf("seed %d shards %d slice %d: event log diverged", seed, shards, slice)
				}
				if fmt.Sprint(got.samples) != fmt.Sprint(ref.samples) {
					t.Fatalf("seed %d shards %d slice %d: samples %v, want %v",
						seed, shards, slice, got.samples, ref.samples)
				}
				if gotSim.Now() != refSim.Now() || gotSim.Executed() != refSim.Executed() {
					t.Fatalf("seed %d shards %d slice %d: final (now=%v, executed=%d), want (%v, %d)",
						seed, shards, slice, gotSim.Now(), gotSim.Executed(), refSim.Now(), refSim.Executed())
				}
			}
		}
	}
}
