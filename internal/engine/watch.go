package engine

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// The watchdog closes the simulator's worst failure mode: a mis-scheduled
// or dropped completion event does not crash the event loop, it silently
// drains the queue early and yields a plausible-looking but wrong SimTime.
// Components register themselves with Watch; when a run ends (queue drain,
// event budget, or RunUntil deadline) the engine cross-checks every
// registered busy horizon and outstanding-request count and turns any
// leftover work into a structured StallError naming the component —
// a loud, diagnosable failure instead of a wrong table.

// watcher is one registered component.
type watcher struct {
	name        string
	busyUntil   func() units.Time
	outstanding func() int
}

// Watch registers a component with the stall detector. busyUntil reports
// the end of the component's last known busy period (a fully drained
// simulation must satisfy busyUntil() <= Now()); outstanding reports
// requests issued but not yet completed. Either may be nil when the
// component has no such notion.
func (s *Sim) Watch(name string, busyUntil func() units.Time, outstanding func() int) {
	s.watchers = append(s.watchers, watcher{name: name, busyUntil: busyUntil, outstanding: outstanding})
}

// ComponentStall describes one component the watchdog found with work left
// after the event queue drained.
type ComponentStall struct {
	Component   string
	Outstanding int        // pending requests the component still owes
	BusyUntil   units.Time // end of its last busy period (0 when untracked)
}

// StallError reports components with outstanding work at a point where the
// event queue had none — the signature of a dropped or mis-scheduled
// completion event.
type StallError struct {
	Stalls      []ComponentStall
	Now         units.Time // simulated time when the queue drained
	LastEventAt units.Time // timestamp of the last event the engine ran
	Executed    uint64     // total events executed
}

// Error implements error.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: stalled at t=%v after %d events (last event at t=%v): ",
		e.Now, e.Executed, e.LastEventAt)
	for i, st := range e.Stalls {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s has %d outstanding request(s)", st.Component, st.Outstanding)
		if st.BusyUntil > e.Now {
			fmt.Fprintf(&b, ", busy until t=%v", st.BusyUntil)
		}
	}
	return b.String()
}

// Stalled cross-checks every watched component against the current time
// and returns a StallError when any has outstanding requests or a busy
// period extending past Now — nil when all are quiescent. It is meaningful
// after the queue drains (Run, RunBudget) or at a RunUntil deadline.
func (s *Sim) Stalled() *StallError {
	var stalls []ComponentStall
	for _, w := range s.watchers {
		st := ComponentStall{Component: w.name}
		if w.outstanding != nil {
			st.Outstanding = w.outstanding()
		}
		if w.busyUntil != nil {
			st.BusyUntil = w.busyUntil()
		}
		if st.Outstanding > 0 || st.BusyUntil > s.now {
			stalls = append(stalls, st)
		}
	}
	if len(stalls) == 0 {
		return nil
	}
	return &StallError{Stalls: stalls, Now: s.now, LastEventAt: s.lastAt, Executed: s.nRun}
}

// BudgetError reports a run aborted because it executed more events than
// its budget allowed — the runaway-schedule guard.
type BudgetError struct {
	MaxEvents   uint64     // the budget that was exhausted
	LastEventAt units.Time // timestamp of the last executed event
	Pending     int        // events still queued at the abort
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("engine: event budget of %d exhausted at t=%v with %d event(s) still pending",
		e.MaxEvents, e.LastEventAt, e.Pending)
}

// RunBudget is Run with the watchdog armed: it executes events until the
// queue drains, aborting with a BudgetError once more than maxEvents have
// been executed by this call, and cross-checking the watched components on
// drain. The returned time is valid in either case; the error says whether
// to trust it.
func (s *Sim) RunBudget(maxEvents uint64) (units.Time, error) {
	if s.sh != nil {
		return s.runSharded(maxEvents)
	}
	var ran uint64
	for s.events.len() > 0 {
		if ran >= maxEvents {
			return s.now, &BudgetError{MaxEvents: maxEvents, LastEventAt: s.lastAt, Pending: s.events.len()}
		}
		s.step()
		ran++
	}
	if st := s.Stalled(); st != nil {
		return s.now, st
	}
	return s.now, nil
}
